// Package dmfb is a computer-aided design toolkit for fault-tolerant,
// dynamically-reconfigurable digital microfluidic biochips (DMFBs),
// reproducing Su & Chakrabarty, "Design of Fault-Tolerant and
// Dynamically-Reconfigurable Microfluidic Biochips", DATE 2005.
//
// The flow mirrors the paper's synthesis methodology:
//
//  1. Describe a bioassay as a sequencing graph (NewAssay, or the
//     built-in PCR and in-vitro case studies).
//  2. Architectural-level synthesis: bind operations to module-library
//     devices and schedule them (Bind, ScheduleAssay).
//  3. Module placement: the greedy baseline (PlaceGreedy), the
//     simulated-annealing area minimiser (PlaceAnneal), or the
//     two-stage fault-tolerant placer (PlaceFaultTolerant) which
//     maximises the fault tolerance index (FTI) while keeping area
//     small.
//  4. Analysis and operation: compute the FTI (ComputeFTI), plan and
//     apply partial reconfiguration around faulty cells (Recover),
//     run assays on the cycle-accurate chip simulator with fault
//     injection (Simulate), test arrays with droplets (TestArray),
//     and measure survivability by Monte-Carlo fault injection
//     (MonteCarloSingleFault).
//
// All stochastic components are seeded; every function is
// deterministic given its arguments.
package dmfb

import (
	"context"
	"io"
	"math"

	"dmfb/internal/actuation"
	"dmfb/internal/anneal"
	"dmfb/internal/assay"
	"dmfb/internal/campaign"
	"dmfb/internal/core"
	"dmfb/internal/defect"
	"dmfb/internal/faultsim"
	"dmfb/internal/fluidics"
	"dmfb/internal/format"
	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/invitro"
	"dmfb/internal/mixcalc"
	"dmfb/internal/modlib"
	"dmfb/internal/pcache"
	"dmfb/internal/pcr"
	"dmfb/internal/pipeline"
	"dmfb/internal/place"
	"dmfb/internal/reconfig"
	"dmfb/internal/recovery"
	"dmfb/internal/render"
	"dmfb/internal/router"
	"dmfb/internal/schedule"
	"dmfb/internal/sim"
	"dmfb/internal/telemetry"
	"dmfb/internal/testdrop"
)

// Geometry. Cells are addressed zero-based; a Rect occupies the
// half-open range [X,X+W)×[Y,Y+H); an Interval is half-open in
// schedule seconds.
type (
	// Point is a cell coordinate on the microfluidic array.
	Point = geom.Point
	// Size is a module footprint in cells.
	Size = geom.Size
	// Rect is an axis-aligned rectangle of cells.
	Rect = geom.Rect
	// Interval is a half-open time interval in seconds.
	Interval = geom.Interval
)

// Assay modelling.
type (
	// Assay is a sequencing graph of fluidic operations.
	Assay = assay.Graph
	// OpKind classifies a fluidic operation.
	OpKind = assay.OpKind
	// Op is one node of a sequencing graph.
	Op = assay.Op
)

// Operation kinds.
const (
	Dispense = assay.Dispense
	Mix      = assay.Mix
	Dilute   = assay.Dilute
	Store    = assay.Store
	Detect   = assay.Detect
	Output   = assay.Output
)

// Module library.
type (
	// Device is a module-library entry (a virtual device type).
	Device = modlib.Device
	// Library is a catalogue of devices.
	Library = modlib.Library
)

// Synthesis.
type (
	// Binding maps operation IDs to devices.
	Binding = schedule.Binding
	// Schedule is the output of architectural-level synthesis.
	Schedule = schedule.Schedule
	// ScheduleOptions configures the list scheduler.
	ScheduleOptions = schedule.Options
)

// Binding policies for automatic resource binding.
const (
	BindFastest  = schedule.BindFastest
	BindSmallest = schedule.BindSmallest
)

// Placement.
type (
	// Module is a placeable module: footprint × fixed time span.
	Module = place.Module
	// Placement assigns positions and orientations to modules.
	Placement = place.Placement
	// PlacementProblem is a module set plus the core area bounds.
	PlacementProblem = core.Problem
	// PlacerOptions configures the annealing placers; the zero value
	// gives the paper's parameters (T0 = 10000, α = 0.9,
	// N = 400 × #modules, p = 0.8).
	PlacerOptions = core.Options
	// SearchOptions configures deterministic multi-start annealing
	// (PlacerOptions.Search): Starts independent runs with splitmix64-
	// derived seeds, fanned across at most Workers goroutines, winner
	// byte-identical for a given seed at any worker count.
	SearchOptions = place.SearchOptions
	// FTOptions configures stage 2 of the fault-tolerant placer.
	FTOptions = core.FTOptions
	// PlacerStats reports annealing effort.
	PlacerStats = core.Stats
	// TwoStageResult bundles both stages of the enhanced placer.
	TwoStageResult = core.TwoStageResult
	// SweepPoint is one row of a β sweep (paper Table 2).
	SweepPoint = core.SweepPoint
)

// Fault tolerance and operation.
type (
	// FTIResult reports the fault tolerance index and coverage map.
	FTIResult = fti.Result
	// Relocation is one partial-reconfiguration step.
	Relocation = reconfig.Relocation
	// Chip is the physical electrowetting array with cell health.
	Chip = fluidics.Chip
	// SimOptions configures the chip simulator.
	SimOptions = sim.Options
	// FaultInjection schedules a cell failure during simulation.
	FaultInjection = sim.FaultInjection
	// SimResult reports a simulated assay run.
	SimResult = sim.Result
	// TestReport is the outcome of a droplet test pass.
	TestReport = testdrop.Report
	// FaultCampaign summarises Monte-Carlo fault injection.
	FaultCampaign = faultsim.Summary
	// CampaignConfig configures a parallel fault-injection campaign.
	CampaignConfig = campaign.Config
	// CampaignTrial is one trial's identity: index, derived seed, and
	// private RNG stream.
	CampaignTrial = campaign.Trial
	// CampaignOutcome is one trial's result.
	CampaignOutcome = campaign.Outcome
	// CampaignReport is a finished campaign: deterministic summary plus
	// wall-clock execution facts.
	CampaignReport = campaign.Report
	// CampaignSummary is the worker-count-independent aggregate of a
	// campaign.
	CampaignSummary = campaign.Summary
	// TrialFunc executes one campaign trial.
	TrialFunc = campaign.TrialFunc
)

// CellPitchMM is the electrode pitch of the Table 1 target chip.
const CellPitchMM = modlib.CellPitchMM

// NewAssay returns an empty sequencing graph.
func NewAssay(name string) *Assay { return assay.New(name) }

// Table1Library returns the paper's Table 1 module catalogue: the four
// Paik et al. droplet mixers plus storage and detector devices, at
// 1.5 mm pitch.
func Table1Library() *Library { return modlib.Table1() }

// AreaMM2 converts an array cell count to square millimetres at the
// Table 1 pitch (2.25 mm² per cell).
func AreaMM2(cells int) float64 { return modlib.AreaMM2(cells) }

// Bind assigns a library device to every reconfigurable operation.
func Bind(g *Assay, lib *Library, policy schedule.BindPolicy) (Binding, error) {
	return schedule.Bind(g, lib, policy)
}

// ScheduleAssay runs resource-constrained list scheduling: operations
// start when their inputs are ready and the concurrent module
// footprint fits the area budget.
func ScheduleAssay(g *Assay, b Binding, opts ScheduleOptions) (*Schedule, error) {
	return schedule.List(g, b, opts)
}

// PCRAssay returns the paper's case study: the sequencing graph of the
// PCR mixing stage (Figure 5) and the IDs of mixes M1..M7.
func PCRAssay() (*Assay, [7]int) { return pcr.Graph() }

// PCRSchedule synthesises the PCR case study with the Table 1 binding
// and the 63-cell area budget (regenerating Figure 6).
func PCRSchedule() (*Schedule, error) { return pcr.Schedule() }

// InVitroSchedule synthesises an nSamples × nAssays multiplexed
// in-vitro diagnostic workload (reference [4] of the paper) under the
// given concurrent-area budget (0 = unlimited).
func InVitroSchedule(nSamples, nAssays, areaBudget int) (*Schedule, error) {
	return invitro.Synthesize(nSamples, nAssays, areaBudget)
}

// DilutionSchedule synthesises a serial-dilution ladder of the given
// depth (a 2^-1..2^-depth concentration series), exercising the
// dilute/split path of the flow.
func DilutionSchedule(depth, areaBudget int) (*Schedule, error) {
	return invitro.SynthesizeDilution(depth, areaBudget)
}

// DilutionTreeSchedule synthesises the exponential-dilution benchmark:
// a complete binary tree of dilutions producing 2^depth measured
// droplets at concentration 2^-depth — the largest workload shipped
// with this repository (2^depth−1 dilute modules plus 2^depth
// detectors).
func DilutionTreeSchedule(depth, areaBudget int) (*Schedule, error) {
	return invitro.SynthesizeTree(depth, areaBudget)
}

// PlacementProblemOf extracts the placement problem from a schedule,
// with an automatically sized core area.
func PlacementProblemOf(s *Schedule) PlacementProblem { return core.FromSchedule(s) }

// ModulesOf extracts the placeable modules of a schedule.
func ModulesOf(s *Schedule) []Module { return place.FromSchedule(s) }

// PlaceGreedy runs the baseline placer of Section 6.1 (largest module
// first, bottom-left position). timeAware selects whether the greedy
// placer may overlap time-disjoint modules (reconfiguration-aware) or
// treats every placed module as a static obstacle.
func PlaceGreedy(prob PlacementProblem, timeAware bool) (*Placement, error) {
	return core.Greedy(prob, timeAware)
}

// PlaceAnneal runs the fault-oblivious simulated-annealing placer of
// Section 4, minimising array area.
func PlaceAnneal(prob PlacementProblem, opts PlacerOptions) (*Placement, PlacerStats, error) {
	return core.AnnealArea(prob, opts)
}

// PlaceAnnealBestOf runs the annealing placer with n seeds in parallel
// and keeps the smallest result — the practical way to spend extra
// cores on placement quality. Deterministic for fixed opts.Seed and n.
func PlaceAnnealBestOf(prob PlacementProblem, opts PlacerOptions, n int) (*Placement, PlacerStats, error) {
	return core.AnnealAreaBestOf(prob, opts, n)
}

// PlaceFaultTolerant runs the two-stage enhanced placer of Section
// 6.2: area-minimising annealing followed by low-temperature annealing
// with the FTI (weighted by ft.Beta) in the cost function.
func PlaceFaultTolerant(prob PlacementProblem, opts PlacerOptions, ft FTOptions) (TwoStageResult, error) {
	return core.TwoStage(prob, opts, ft)
}

// BetaSweep reruns the two-stage placer across β values, reproducing
// the area/fault-tolerance trade-off of Table 2.
func BetaSweep(prob PlacementProblem, opts PlacerOptions, ft FTOptions, betas []float64) ([]SweepPoint, error) {
	return core.BetaSweep(prob, opts, ft, betas)
}

// ComputeFTI evaluates the fault tolerance index of a placement on its
// bounding array (Section 5.2, fast algorithm of Section 5.3).
func ComputeFTI(p *Placement) FTIResult { return fti.Compute(p) }

// ComputeFTIOn evaluates the FTI on an explicit array.
func ComputeFTIOn(p *Placement, array Rect) FTIResult { return fti.ComputeOn(p, array) }

// PlanRecovery computes the partial reconfiguration for a faulty cell
// without modifying the placement. Earlier accumulated faults may be
// passed as obstacles; no relocated module will cover any of them.
func PlanRecovery(p *Placement, array Rect, fault Point, obstacles ...Point) ([]Relocation, error) {
	return reconfig.Plan(p, array, fault, obstacles...)
}

// Recover plans and applies partial reconfiguration for a faulty cell,
// relocating every module that uses it while avoiding the given
// obstacle cells (earlier faults).
func Recover(p *Placement, array Rect, fault Point, obstacles ...Point) ([]Relocation, error) {
	return reconfig.Recover(p, array, fault, obstacles...)
}

// Graceful-degradation recovery ladder (escalating reconfiguration).
type (
	// RecoveryLadderOptions configures a recovery Ladder.
	RecoveryLadderOptions = recovery.Options
	// RecoveryState is the execution state a ladder recovers from.
	RecoveryState = recovery.State
	// RecoveryPlan is a validated ladder plan: new placement, possibly
	// stretched schedule, downgrades and abandoned operations.
	RecoveryPlan = recovery.Plan
	// RecoveryLevel identifies a ladder rung (relocate, downgrade,
	// defragment, degrade).
	RecoveryLevel = recovery.Level
	// RecoveryAttempt is one rung tried during a ladder invocation.
	RecoveryAttempt = recovery.Attempt
	// LadderReport is the audit trail of one ladder invocation.
	LadderReport = recovery.Report
	// RecoveryMode selects the simulator's fault response (L1-only,
	// full ladder, or off).
	RecoveryMode = sim.RecoveryMode
	// SimOutcome classifies how a simulated assay ended: completed,
	// degraded (partial completion) or failed.
	SimOutcome = sim.Outcome
	// SimRecoveryReport aggregates a run's recovery activity.
	SimRecoveryReport = sim.RecoveryReport
	// FaultClassification is the outcome of a bounded-retry re-test of
	// a suspect cell.
	FaultClassification = testdrop.Classification
	// RetryPolicy bounds the re-test loop of ClassifyFault.
	RetryPolicy = testdrop.RetryPolicy
)

// Ladder rungs and simulator recovery modes.
const (
	LevelRelocate   = recovery.LevelRelocate
	LevelDowngrade  = recovery.LevelDowngrade
	LevelDefragment = recovery.LevelDefragment
	LevelDegrade    = recovery.LevelDegrade

	RecoveryL1     = sim.RecoveryL1
	RecoveryLadder = sim.RecoveryLadder
	RecoveryOff    = sim.RecoveryOff

	OutcomeCompleted = sim.OutcomeCompleted
	OutcomeDegraded  = sim.OutcomeDegraded
	OutcomeFailed    = sim.OutcomeFailed
)

// NewRecoveryLadder builds the escalating recovery ladder: L1 in-place
// relocation, L2 relocation with device downgrade and schedule
// stretch, L3 defragmenting re-placement, L4 graceful degradation.
// The zero options enable the full ladder with the Table 1 library.
func NewRecoveryLadder(opts RecoveryLadderOptions) *recovery.Ladder { return recovery.New(opts) }

// ValidateRecoveryPlan proves a ladder plan safe to adopt without
// executing it: geometry inside the array, no live-module overlap, no
// live module over a known fault, precedence intact, abandonment
// successor-closed.
func ValidateRecoveryPlan(st RecoveryState, p *RecoveryPlan) error {
	return recovery.ValidatePlan(st, p)
}

// ParseRecoveryMode parses the CLI spellings "l1", "ladder" and "off".
func ParseRecoveryMode(s string) (RecoveryMode, error) { return sim.ParseRecoveryMode(s) }

// ClassifyFault re-tests a suspect cell with bounded retries and
// deterministic backoff, distinguishing permanent faults (which force
// reconfiguration) from transient ones (which heal in place).
func ClassifyFault(c *Chip, cell Point, pol RetryPolicy) FaultClassification {
	return testdrop.ClassifyFault(c, cell, pol)
}

// AssayTrial is the end-to-end assay campaign workload: each trial
// simulates the full schedule with k injected faults (each transient
// with probability transientProb), recovering with the given mode.
func AssayTrial(s *Schedule, p *Placement, k int, mode RecoveryMode, transientProb float64) TrialFunc {
	return faultsim.AssayTrial(s, p, k, mode, transientProb)
}

// Simulate executes the schedule on the placed array with the
// cycle-accurate chip simulator, injecting the given faults at their
// scheduled times and recovering via partial reconfiguration.
func Simulate(s *Schedule, p *Placement, opts SimOptions, faults ...FaultInjection) SimResult {
	return sim.Run(s, p, opts, faults...)
}

// ArrayCell converts placed-array coordinates to simulator chip
// coordinates (the chip adds a transport ring around the array).
func ArrayCell(opts SimOptions, p Point) Point { return sim.ArrayCell(opts, p) }

// NewChip returns a fault-free w×h electrowetting array.
func NewChip(w, h int) *Chip { return fluidics.NewChip(w, h) }

// Concurrent droplet routing.
type (
	// RouteEndpoint is one droplet's transport demand.
	RouteEndpoint = router.Endpoint
	// RouteOptions configures the concurrent planner.
	RouteOptions = router.ConcurrentOptions
	// RoutePlan is a synchronised multi-droplet trajectory set.
	RoutePlan = router.ConcurrentPlan
)

// PlanDropletRoutes routes several droplets simultaneously, one cell
// per control step, under the electrowetting static and dynamic
// separation constraints (prioritised time-extended A*).
func PlanDropletRoutes(c *Chip, eps []RouteEndpoint, opts RouteOptions) (*RoutePlan, error) {
	return router.PlanConcurrent(c, eps, opts)
}

// ValidateDropletRoutes checks a plan against every routing constraint.
func ValidateDropletRoutes(c *Chip, eps []RouteEndpoint, plan *RoutePlan, keepOut []Rect) error {
	return router.ValidateConcurrent(c, eps, plan, keepOut)
}

// Electrode actuation.
type (
	// ActuationFrame is one control step's energised electrodes.
	ActuationFrame = actuation.Frame
	// ActuationProgram is a validated electrode control sequence.
	ActuationProgram = actuation.Program
)

// CompileActuation compiles a routing plan into the electrode control
// program a DMFB microcontroller would execute, and validates it.
func CompileActuation(plan *RoutePlan, w, h int) (*ActuationProgram, error) {
	frames, err := actuation.CompileTransport(plan)
	if err != nil {
		return nil, err
	}
	prog := &ActuationProgram{W: w, H: h, Frames: frames}
	if err := prog.Validate(); err != nil {
		return nil, err
	}
	return prog, nil
}

// MixerActuation generates the cyclic electrode pattern that mixes a
// droplet inside a module's functional region for the given laps.
func MixerActuation(functional Rect, laps int) ([]ActuationFrame, error) {
	return actuation.MixerPattern(functional, laps)
}

// TestArray sweeps the whole chip with a test droplet (offline
// structural test) and reports the first fault found.
func TestArray(c *Chip) TestReport { return testdrop.Offline(c) }

// TestArrayOnline sweeps only the cells outside the given keep-out
// regions, for testing concurrent with assay execution.
func TestArrayOnline(c *Chip, keepOut []Rect) TestReport { return testdrop.Online(c, keepOut) }

// LocateAllFaults repeatedly sweeps the chip, masking found faults,
// until every faulty cell is localised.
func LocateAllFaults(c *Chip) []Point { return testdrop.LocalizeAll(c) }

// MonteCarloSingleFault measures survival under uniform random
// single-cell faults; the rate converges to the placement's FTI.
func MonteCarloSingleFault(p *Placement, trials int, seed int64) FaultCampaign {
	return faultsim.SingleFault(p, trials, seed)
}

// ExhaustiveSingleFault attempts recovery for every array cell; its
// survival rate equals the FTI exactly.
func ExhaustiveSingleFault(p *Placement) FaultCampaign {
	return faultsim.ExhaustiveSingleFault(p)
}

// MonteCarloMultiFault measures survival under k sequential faults
// with partial reconfiguration between failures.
func MonteCarloMultiFault(p *Placement, k, trials int, seed int64) FaultCampaign {
	return faultsim.MultiFault(p, k, trials, seed)
}

// MonteCarloMultiFaultFull is MonteCarloMultiFault with full
// reconfiguration (FullReconfigure) as a fallback whenever partial
// reconfiguration cannot absorb a fault.
func MonteCarloMultiFaultFull(p *Placement, k, trials int, seed int64, opts PlacerOptions) FaultCampaign {
	return faultsim.MultiFaultFull(p, k, trials, seed, opts)
}

// FullReconfigure re-places the entire module set from scratch around
// the accumulated dead cells, within the original array bounds — the
// slower, stronger alternative to partial reconfiguration for faults
// the FTI marks uncoverable.
func FullReconfigure(old *Placement, dead []Point, opts PlacerOptions) (*Placement, error) {
	return core.FullReconfigure(old, dead, opts)
}

// EstimateYield measures the fraction of chips usable when every array
// cell fails independently with probability defectProb, absorbing
// defects by sequential partial reconfiguration; withFull adds full
// re-placement (FullReconfigure, configured by opts) as a fallback.
func EstimateYield(p *Placement, defectProb float64, trials int, seed int64,
	withFull bool, opts PlacerOptions) FaultCampaign {
	return faultsim.Yield(p, defectProb, trials, seed, withFull, opts)
}

// RunCampaign executes a fault-injection campaign across a worker
// pool: trials are dispatched concurrently, each drawing randomness
// only from its own deterministic stream, so the summary is identical
// at any worker count and across checkpoint resumes. The context
// cancels the campaign between trials.
func RunCampaign(ctx context.Context, cfg CampaignConfig, fn TrialFunc) (CampaignReport, error) {
	return campaign.Run(ctx, cfg, fn)
}

// SingleFaultTrial is the uniform single-fault campaign workload on p.
func SingleFaultTrial(p *Placement) TrialFunc { return faultsim.SingleFaultTrial(p) }

// MultiFaultTrial is the sequential k-fault campaign workload on p,
// with full re-placement fallback when withFull is set.
func MultiFaultTrial(p *Placement, k int, withFull bool, opts PlacerOptions) TrialFunc {
	return faultsim.MultiFaultTrial(p, k, withFull, opts)
}

// YieldTrial is the defect-density yield campaign workload on p.
func YieldTrial(p *Placement, defectProb float64, withFull bool, opts PlacerOptions) TrialFunc {
	return faultsim.YieldTrial(p, defectProb, withFull, opts)
}

// DefectParams describes a fabrication defect-map model (uniform,
// clustered or an explicit map file) for yield campaigns.
type DefectParams = defect.Params

// DefectGenerator draws one fabricated die's defect map per trial.
type DefectGenerator = defect.Generator

// DefectYieldTrial is the yield campaign workload on p under any
// defect-map model (see DefectParams.Generator).
func DefectYieldTrial(p *Placement, gen DefectGenerator, withFull bool, opts PlacerOptions) TrialFunc {
	return faultsim.DefectYieldTrial(p, gen, withFull, opts)
}

// LadderYieldTrial is the design-time local-reconfiguration yield
// workload: a die survives when the full recovery ladder absorbs its
// whole defect map before the assay starts.
func LadderYieldTrial(s *Schedule, p *Placement, gen DefectGenerator, anneal PlacerOptions) TrialFunc {
	return faultsim.LadderYieldTrial(s, p, gen, anneal)
}

// DesignReconfigure decides at design time whether a fabricated die
// with the given defect map can run the assay without re-synthesis, by
// replaying the recovery ladder over the defects before the assay
// starts.
func DesignReconfigure(s *Schedule, p *Placement, array Rect, defects []Point,
	opts defect.ReconfigureOptions) defect.Review {
	return defect.Reconfigure(s, p, array, defects, opts)
}

// InsertSpares threads cols spare columns and rows spare rows through
// the interior of a placement's bounding box — the space-redundancy
// transform for yield enhancement. SpareSplit divides a single budget
// between columns and rows the way every CLI and service does.
func InsertSpares(p *Placement, cols, rows int) *Placement {
	return place.InsertSpares(p, cols, rows)
}

// SpareSplit splits a spare-line budget between columns and rows,
// columns first.
func SpareSplit(budget int) (cols, rows int) { return place.SpareSplit(budget) }

// RenderPlacement draws a placement as ASCII art.
func RenderPlacement(p *Placement) string { return render.PlacementASCII(p) }

// RenderPlacementSVG draws a placement as a standalone SVG document.
func RenderPlacementSVG(p *Placement, cellPx int) string { return render.PlacementSVG(p, cellPx) }

// RenderSchedule draws a schedule as an ASCII Gantt chart.
func RenderSchedule(s *Schedule) string { return render.ScheduleASCII(s) }

// RenderScheduleSVG draws a schedule as a standalone SVG Gantt chart.
func RenderScheduleSVG(s *Schedule, secPx int) string { return render.GanttSVG(s, secPx) }

// ScheduleSlack returns the per-operation slack (ALAP − ASAP) at the
// given deadline; zero-slack operations are on the critical path.
func ScheduleSlack(g *Assay, b Binding, opts ScheduleOptions, deadline int) ([]int, error) {
	return schedule.Slack(g, b, opts, deadline)
}

// RenderCoverage draws an FTI coverage map as ASCII art.
func RenderCoverage(r FTIResult) string { return render.CoverageASCII(r) }

// MarshalPlacement / UnmarshalPlacement serialise placements as JSON.
func MarshalPlacement(p *Placement) ([]byte, error) { return format.MarshalPlacement(p) }

// UnmarshalPlacement decodes and validates a placement.
func UnmarshalPlacement(data []byte) (*Placement, error) { return format.UnmarshalPlacement(data) }

// MarshalAssay serialises a sequencing graph as JSON.
func MarshalAssay(g *Assay) ([]byte, error) { return format.MarshalGraph(g) }

// UnmarshalAssay decodes and validates a sequencing graph.
func UnmarshalAssay(data []byte) (*Assay, error) { return format.UnmarshalGraph(data) }

// MarshalSchedule serialises a synthesis result as JSON.
func MarshalSchedule(s *Schedule) ([]byte, error) { return format.MarshalSchedule(s) }

// UnmarshalSchedule decodes a schedule against a device library.
func UnmarshalSchedule(data []byte, lib *Library) (*Schedule, error) {
	return format.UnmarshalSchedule(data, lib)
}

// Composition analysis.
type (
	// Composition maps fluid name to exact volume (big.Rat units).
	Composition = mixcalc.Composition
	// CompositionResult holds the composition of every droplet.
	CompositionResult = mixcalc.Result
)

// AnalyzeConcentrations computes, with exact rational arithmetic, the
// composition of every droplet an assay produces — verifying protocol
// stoichiometry (e.g. each PCR reagent at 1/8 of the master mix)
// before synthesis effort is spent.
func AnalyzeConcentrations(g *Assay) (*CompositionResult, error) {
	return mixcalc.Concentrations(g)
}

// Round4 rounds to four decimals, the paper's FTI reporting precision.
func Round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }

// Observability. The telemetry layer is optional everywhere: nil
// tracers and registries are valid disabled sinks, so callers only
// pay a nil check when these are off.
type (
	// Tracer emits structured JSONL trace records (spans and events).
	Tracer = telemetry.Tracer
	// TraceFields is the free-form payload of a trace record.
	TraceFields = telemetry.Fields
	// MetricsRegistry holds named counters, gauges and histograms,
	// safe for concurrent use.
	MetricsRegistry = telemetry.Registry
	// MetricsSnapshot is a JSON-marshalable capture of a registry.
	MetricsSnapshot = telemetry.Snapshot
	// AnnealObserver receives progress callbacks from the annealing
	// placers (one per temperature level plus best-cost improvements);
	// set it on PlacerOptions.Observer.
	AnnealObserver = anneal.Observer
	// AnnealProgress is the payload of an AnnealObserver callback.
	AnnealProgress = anneal.Progress
)

// NewTracer returns a Tracer writing JSONL records to w; timestamps
// are monotonic microseconds since this call.
func NewTracer(w io.Writer) *Tracer { return telemetry.New(w) }

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return telemetry.NewRegistry() }

// ObserveAnneal adapts telemetry sinks into an AnnealObserver: each
// temperature level becomes an "anneal.level" span and updates the
// anneal.* metrics, tagged with the given stage name. Either sink may
// be nil; with both nil the returned observer is nil (zero overhead).
func ObserveAnneal(tr *Tracer, reg *MetricsRegistry, stage string) AnnealObserver {
	return telemetry.AnnealObserver(tr, reg, stage)
}

// Pipeline. RunPipeline executes the shared synth → place → analyse →
// route/test/simulate flow the CLI tools and dmfb-server are built on:
// describe the stages in a PipelineRequest and read the typed
// PipelineResult. A PlacementCache attached to the request serves
// placements by content-addressed fingerprint, byte-identical to a
// fresh run.
type (
	// PipelineRequest selects and configures the stages of one run.
	PipelineRequest = pipeline.Request
	// PipelineResult carries the outputs of the selected stages.
	PipelineResult = pipeline.Result
	// PipelineStageError tags a pipeline failure with its stage.
	PipelineStageError = pipeline.StageError
	// SynthSpec, PlaceSpec, FTISpec, RouteSpec, TestSpec and SimSpec
	// configure the individual stages.
	SynthSpec = pipeline.SynthSpec
	PlaceSpec = pipeline.PlaceSpec
	FTISpec   = pipeline.FTISpec
	RouteSpec = pipeline.RouteSpec
	TestSpec  = pipeline.TestSpec
	SimSpec   = pipeline.SimSpec
	// PlacementCache is a bounded, concurrency-safe LRU of placement
	// results keyed by canonical problem fingerprint.
	PlacementCache = pcache.Cache
	// PlacementCacheKey is a content-addressed fingerprint.
	PlacementCacheKey = pcache.Key
	// PlacementCacheStats reports hit/miss/eviction counts and
	// occupancy.
	PlacementCacheStats = pcache.Stats
)

// RunPipeline executes the requested stages in order; see
// pipeline.Run.
func RunPipeline(ctx context.Context, req PipelineRequest) (PipelineResult, error) {
	return pipeline.Run(ctx, req)
}

// PipelineExitCode maps a pipeline outcome to the dmfb tools' process
// exit status convention: 1 on error or failed assay, 2 on degraded
// completion, 0 otherwise.
func PipelineExitCode(res PipelineResult, err error) int { return pipeline.ExitCode(res, err) }

// NewPlacementCache returns a placement cache bounded to maxBytes of
// stored placement data (0 = the 64 MiB default). Metrics, when
// non-nil, receives pcache.* hit/miss/eviction counters.
func NewPlacementCache(maxBytes int, reg *MetricsRegistry) *PlacementCache {
	return pcache.New(maxBytes, reg)
}

// FingerprintPlacement computes the content-addressed cache key of a
// placement problem.
func FingerprintPlacement(in pcache.Input) PlacementCacheKey { return pcache.Fingerprint(in) }
