package dmfb

// End-to-end tests of the command-line tools: the binaries are built
// once into a temporary directory and driven the way a user would,
// including the JSON hand-offs between dmfb-synth, dmfb-place,
// dmfb-fti, dmfb-sim and dmfb-test.

import (
	"bufio"
	"encoding/json"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

var cliTools = []string{
	"dmfb-synth", "dmfb-place", "dmfb-fti", "dmfb-sim", "dmfb-bench", "dmfb-test", "dmfb-route",
	"dmfb-campaign", "dmfb-report", "dmfb-dispatch", "dmfb-simd",
}

// buildCLI compiles every tool once per test binary invocation.
func buildCLI(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("skipping CLI integration in -short mode")
	}
	dir := t.TempDir()
	for _, tool := range cliTools {
		out := filepath.Join(dir, tool)
		cmd := exec.Command("go", "build", "-o", out, "./cmd/"+tool)
		cmd.Dir = mustModuleRoot(t)
		if msg, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("building %s: %v\n%s", tool, err, msg)
		}
	}
	return dir
}

func mustModuleRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return wd
}

func run(t *testing.T, bin string, wantOK bool, args ...string) string {
	t.Helper()
	cmd := exec.Command(bin, args...)
	out, err := cmd.CombinedOutput()
	if wantOK && err != nil {
		t.Fatalf("%s %v failed: %v\n%s", filepath.Base(bin), args, err, out)
	}
	if !wantOK && err == nil {
		t.Fatalf("%s %v unexpectedly succeeded:\n%s", filepath.Base(bin), args, out)
	}
	return string(out)
}

func TestCLIPipeline(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	schedFile := filepath.Join(work, "schedule.json")
	placeFile := filepath.Join(work, "placement.json")
	svgFile := filepath.Join(work, "placement.svg")

	// synth -> schedule.json
	out := run(t, filepath.Join(bin, "dmfb-synth"), true, "-assay", "pcr", "-o", schedFile)
	if !strings.Contains(out, "makespan 19s") {
		t.Errorf("synth output missing makespan:\n%s", out)
	}
	if _, err := os.Stat(schedFile); err != nil {
		t.Fatal(err)
	}

	// place (two-stage) -> placement.json + svg
	out = run(t, filepath.Join(bin, "dmfb-place"), true,
		"-schedule", schedFile, "-placer", "twostage", "-beta", "40",
		"-o", placeFile, "-svg", svgFile, "-coverage")
	if !strings.Contains(out, "FTI") || !strings.Contains(out, "mm2") {
		t.Errorf("place output missing metrics:\n%s", out)
	}
	svg, err := os.ReadFile(svgFile)
	if err != nil || !strings.HasPrefix(string(svg), "<svg") {
		t.Errorf("SVG not written: %v", err)
	}

	// fti on the produced placement, with verification.
	out = run(t, filepath.Join(bin, "dmfb-fti"), true,
		"-placement", placeFile, "-verify", "-montecarlo", "500")
	if !strings.Contains(out, "exhaustive fault injection") {
		t.Errorf("fti output missing verification:\n%s", out)
	}

	// sim with a fault on the placed design.
	out = run(t, filepath.Join(bin, "dmfb-sim"), true,
		"-schedule", schedFile, "-placement", placeFile, "-fault", "2,1,1")
	if !strings.Contains(out, "assay completed") {
		t.Errorf("sim did not complete:\n%s", out)
	}

	// test a healthy and a faulty array (the latter exits non-zero).
	out = run(t, filepath.Join(bin, "dmfb-test"), true, "-w", "7", "-h", "5")
	if !strings.Contains(out, "PASS") {
		t.Errorf("test output missing PASS:\n%s", out)
	}
	out = run(t, filepath.Join(bin, "dmfb-test"), false, "-w", "7", "-h", "5", "-fault", "3,2")
	if !strings.Contains(out, "FAULT at (3,2)") {
		t.Errorf("fault not localised:\n%s", out)
	}

	// route two droplets around a dead cell.
	out = run(t, filepath.Join(bin, "dmfb-route"), true,
		"-w", "10", "-h", "6", "-d", "0,0:9,0", "-d", "9,5:0,5", "-fault", "5,0")
	if !strings.Contains(out, "actuation program") {
		t.Errorf("route output missing actuation:\n%s", out)
	}
}

func TestCLIBenchSmoke(t *testing.T) {
	bin := buildCLI(t)
	// A fast single experiment; the full suite runs in CI time budgets.
	out := run(t, filepath.Join(bin, "dmfb-bench"), true, "-exp", "fig7")
	if !strings.Contains(out, "141.75 mm2") && !strings.Contains(out, "cells") {
		t.Errorf("bench fig7 output unexpected:\n%s", out)
	}
	out = run(t, filepath.Join(bin, "dmfb-bench"), false, "-exp", "no-such-experiment")
	if !strings.Contains(out, "unknown experiment") {
		t.Errorf("unknown experiment not rejected:\n%s", out)
	}
}

func TestCLICampaign(t *testing.T) {
	bin := buildCLI(t)
	tool := filepath.Join(bin, "dmfb-campaign")
	dir := t.TempDir()

	// Same seed at different worker counts -> identical summary JSON.
	var sums []string
	for _, w := range []string{"1", "4"} {
		jsonPath := filepath.Join(dir, "w"+w+".json")
		out := run(t, tool, true, "-trials", "500", "-seed", "7", "-workers", w,
			"-quiet", "-json", jsonPath)
		if !strings.Contains(out, "Wilson CI") {
			t.Errorf("campaign output missing Wilson interval:\n%s", out)
		}
		var got struct {
			Summary      json.RawMessage `json:"summary"`
			PredictedFTI float64         `json:"predicted_fti"`
			Workers      int             `json:"workers"`
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("campaign JSON invalid: %v\n%s", err, data)
		}
		if got.PredictedFTI <= 0 || got.PredictedFTI > 1 {
			t.Errorf("predicted FTI %v out of range", got.PredictedFTI)
		}
		sums = append(sums, string(got.Summary))
	}
	if sums[0] != sums[1] {
		t.Errorf("summaries differ across worker counts:\n%s\nvs\n%s", sums[0], sums[1])
	}

	// Checkpointed run, then resume over the finished checkpoint:
	// resumed summary must match.
	ckpt := filepath.Join(dir, "run.jsonl")
	jsonA := filepath.Join(dir, "a.json")
	jsonB := filepath.Join(dir, "b.json")
	run(t, tool, true, "-trials", "300", "-seed", "3", "-quiet", "-checkpoint", ckpt, "-json", jsonA)
	out := run(t, tool, true, "-trials", "300", "-seed", "3", "-quiet",
		"-checkpoint", ckpt, "-resume", "-json", jsonB)
	if !strings.Contains(out, "replayed from checkpoint") {
		t.Errorf("resume did not replay the checkpoint:\n%s", out)
	}
	var a, b struct {
		Summary json.RawMessage `json:"summary"`
	}
	da, _ := os.ReadFile(jsonA)
	db, _ := os.ReadFile(jsonB)
	if err := json.Unmarshal(da, &a); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(db, &b); err != nil {
		t.Fatal(err)
	}
	if string(a.Summary) != string(b.Summary) {
		t.Errorf("resumed summary differs:\n%s\nvs\n%s", a.Summary, b.Summary)
	}

	// Error paths: unknown mode, resume without checkpoint.
	run(t, tool, false, "-mode", "bogus")
	run(t, tool, false, "-resume", "-trials", "10")
}

// TestCLICampaignYield drives the defect-map yield surface end to
// end: bad flag combinations exit with a usage hint, and a clustered
// run with spare insertion stays byte-identical across worker counts.
func TestCLICampaignYield(t *testing.T) {
	bin := buildCLI(t)
	tool := filepath.Join(bin, "dmfb-campaign")
	dir := t.TempDir()

	// Flag validation: each bad combination must fail before any work
	// starts and point the user at the yield usage line.
	bad := [][]string{
		{"-mode", "yield", "-defect-prob", "0", "-trials", "10"},
		{"-mode", "yield", "-defect-prob", "1", "-trials", "10"},
		{"-mode", "yield", "-defect-model", "bogus", "-trials", "10"},
		{"-mode", "yield", "-defect-model", "file", "-trials", "10"},
		{"-mode", "yield", "-defect-file", "nope.map", "-trials", "10"},
		{"-mode", "yield", "-defect-model", "clustered", "-cluster-size", "999", "-trials", "10"},
	}
	for _, args := range bad {
		if out := run(t, tool, false, args...); !strings.Contains(out, "usage:") {
			t.Errorf("%v: no usage hint in rejection:\n%s", args, out)
		}
	}

	// A malformed defect map file is rejected with the map format hint.
	badMap := filepath.Join(dir, "bad.map")
	if err := os.WriteFile(badMap, []byte("..?.\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out := run(t, tool, false, "-mode", "yield", "-defect-model", "file",
		"-defect-file", badMap, "-trials", "10")
	if !strings.Contains(out, "usage:") {
		t.Errorf("bad map file: no usage hint:\n%s", out)
	}

	// Clustered defects with a 2-line spare budget: worker counts must
	// not change the summary bytes.
	var sums []string
	for _, w := range []string{"1", "4"} {
		jsonPath := filepath.Join(dir, "yield-w"+w+".json")
		out := run(t, tool, true, "-mode", "yield", "-defect-model", "clustered",
			"-defect-prob", "0.03", "-spares", "2", "-trials", "96", "-seed", "11",
			"-workers", w, "-quiet", "-json", jsonPath)
		if !strings.Contains(out, "yield-clustered-q0.03-s2") {
			t.Errorf("campaign name missing the defect model and spares:\n%s", out)
		}
		var got struct {
			Summary json.RawMessage `json:"summary"`
		}
		data, err := os.ReadFile(jsonPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatalf("campaign JSON invalid: %v\n%s", err, data)
		}
		sums = append(sums, string(got.Summary))
	}
	if sums[0] != sums[1] {
		t.Errorf("clustered yield summaries differ across worker counts:\n%s\nvs\n%s", sums[0], sums[1])
	}

	// File model: a fixed map makes every trial identical.
	goodMap := filepath.Join(dir, "die.map")
	if err := os.WriteFile(goodMap, []byte("..........\n....X.....\n..........\n..........\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	out = run(t, tool, true, "-mode", "yield", "-defect-model", "file",
		"-defect-file", goodMap, "-trials", "16", "-quiet")
	if !strings.Contains(out, "yield-file") {
		t.Errorf("file-model campaign not named yield-file:\n%s", out)
	}
}

func TestCLIErrorPaths(t *testing.T) {
	bin := buildCLI(t)
	if out := run(t, filepath.Join(bin, "dmfb-synth"), false, "-assay", "warp"); !strings.Contains(out, "unknown assay") {
		t.Errorf("bad assay not rejected:\n%s", out)
	}
	if out := run(t, filepath.Join(bin, "dmfb-place"), false, "-placer", "magic"); !strings.Contains(out, "unknown placer") {
		t.Errorf("bad placer not rejected:\n%s", out)
	}
	run(t, filepath.Join(bin, "dmfb-fti"), false) // missing -placement
	if out := run(t, filepath.Join(bin, "dmfb-route"), false, "-d", "0,0:99,99"); !strings.Contains(out, "off array") {
		t.Errorf("bad endpoint not rejected:\n%s", out)
	}
}

// TestCLITelemetryFlags exercises the shared -trace/-metrics/-profile
// observability surface end to end: the trace must be valid JSONL
// with at least one span per annealing temperature level, and the
// span count must agree with the anneal.levels counter in the metrics
// snapshot.
func TestCLITelemetryFlags(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	tracePath := filepath.Join(work, "trace.jsonl")
	metricsPath := filepath.Join(work, "metrics.json")
	profileDir := filepath.Join(work, "prof")

	run(t, filepath.Join(bin, "dmfb-place"), true,
		"-trace", tracePath, "-metrics", metricsPath, "-profile", profileDir)

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	levelSpans := 0
	lastSeq := 0
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct {
			Seq  int    `json:"seq"`
			Kind string `json:"kind"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("trace is not valid JSONL at %q: %v", line, err)
		}
		if rec.Seq != lastSeq+1 {
			t.Fatalf("seq jumped from %d to %d", lastSeq, rec.Seq)
		}
		lastSeq = rec.Seq
		if rec.Kind == "span" && rec.Name == "anneal.level" {
			levelSpans++
		}
	}
	if levelSpans == 0 {
		t.Fatal("no anneal.level spans in trace")
	}

	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters map[string]int64   `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("metrics not valid JSON: %v\n%s", err, mraw)
	}
	if got := snap.Counters["anneal.levels"]; got != int64(levelSpans) {
		t.Errorf("anneal.levels counter %d != %d anneal.level spans", got, levelSpans)
	}
	if snap.Gauges["place.array_cells"] <= 0 {
		t.Errorf("place.array_cells gauge = %v, want > 0", snap.Gauges["place.array_cells"])
	}
	u := snap.Gauges["place.utilization"]
	if u <= 0 || u > 1 {
		t.Errorf("place.utilization gauge = %v, want in (0,1]", u)
	}

	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		if fi, err := os.Stat(filepath.Join(profileDir, name)); err != nil || fi.Size() == 0 {
			t.Errorf("profile %s missing or empty (err=%v)", name, err)
		}
	}
}

// TestCLIOpsEndpoints starts a campaign with -ops :0, reads the
// resolved address off stderr and polls the live endpoints mid-run;
// it then checks enabling -ops left the deterministic summary
// untouched.
func TestCLIOpsEndpoints(t *testing.T) {
	bin := buildCLI(t)
	tool := filepath.Join(bin, "dmfb-campaign")
	dir := t.TempDir()
	jsonOps := filepath.Join(dir, "ops.json")
	jsonPlain := filepath.Join(dir, "plain.json")

	cmd := exec.Command(tool, "-mode", "assay", "-trials", "3000", "-seed", "5",
		"-quiet", "-ops", "127.0.0.1:0", "-json", jsonOps)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// The listening line is the session's first stderr output, printed
	// before the (slow) placement anneal, so the server is pollable
	// for the whole run.
	sc := bufio.NewScanner(stderr)
	var addr string
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "ops listening on http://"); ok {
			addr = strings.TrimSpace(rest)
			break
		}
	}
	if addr == "" {
		t.Fatalf("no ops listening line on stderr (scan err: %v)", sc.Err())
	}
	go io.Copy(io.Discard, stderr) // keep the pipe drained

	httpGet := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := httpGet("/healthz"); code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}
	// The progress source is wired once the campaign engine starts,
	// after the placement anneal — poll until it appears.
	deadline := time.Now().Add(30 * time.Second)
	for {
		code, body := httpGet("/progress")
		if code != 200 || !strings.Contains(body, `"tool": "dmfb-campaign"`) {
			t.Fatalf("/progress = %d:\n%s", code, body)
		}
		if strings.Contains(body, `"total": 3000`) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("/progress never exposed the campaign tracker:\n%s", body)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if code, body := httpGet("/metrics"); code != 200 ||
		!strings.Contains(body, "dmfb_process_goroutines") {
		t.Errorf("/metrics = %d:\n%s", code, body)
	}

	if err := cmd.Wait(); err != nil {
		t.Fatalf("campaign with -ops failed: %v", err)
	}

	// Same seed without -ops: the summary must be byte-identical.
	run(t, tool, true, "-mode", "assay", "-trials", "3000", "-seed", "5",
		"-quiet", "-json", jsonPlain)
	var withOps, plain struct {
		Summary json.RawMessage `json:"summary"`
	}
	da, err := os.ReadFile(jsonOps)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(jsonPlain)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(da, &withOps); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(db, &plain); err != nil {
		t.Fatal(err)
	}
	if string(withOps.Summary) != string(plain.Summary) {
		t.Errorf("-ops changed the summary:\n%s\nvs\n%s", withOps.Summary, plain.Summary)
	}
}

// TestCLIReport runs a campaign with every observability sink on and
// feeds the artefacts to dmfb-report.
func TestCLIReport(t *testing.T) {
	bin := buildCLI(t)
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.jsonl")
	metricsPath := filepath.Join(dir, "m.json")
	ckptPath := filepath.Join(dir, "c.jsonl")

	run(t, filepath.Join(bin, "dmfb-campaign"), true, "-mode", "assay", "-recovery", "ladder",
		"-trials", "200", "-quiet",
		"-trace", tracePath, "-metrics", metricsPath, "-checkpoint", ckptPath)
	out := run(t, filepath.Join(bin, "dmfb-report"), true,
		"-trace", tracePath, "-metrics", metricsPath, "-checkpoint", ckptPath)
	for _, want := range []string{
		"== stage timing",
		"tool.run",
		"campaign.trial",
		"sim.run",
		"top counters:",
		"campaign.trial_ms",
		"== campaign checkpoint",
		"200/200 trials recorded",
		"Wilson CI",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// The trace tree must show the campaign hierarchy nested, i.e.
	// campaign.trial indented under campaign.run. Only the stage
	// timing section counts — the metrics tables list the same span
	// names flat.
	tree, _, _ := strings.Cut(out, "== metrics")
	var trialIndent, runIndent int
	for _, line := range strings.Split(tree, "\n") {
		trimmed := strings.TrimLeft(line, " ")
		if strings.HasPrefix(trimmed, "campaign.trial ") {
			trialIndent = len(line) - len(trimmed)
		}
		if strings.HasPrefix(trimmed, "campaign.run ") {
			runIndent = len(line) - len(trimmed)
		}
	}
	if trialIndent <= runIndent {
		t.Errorf("campaign.trial (indent %d) not nested under campaign.run (indent %d):\n%s",
			trialIndent, runIndent, out)
	}

	run(t, filepath.Join(bin, "dmfb-report"), false) // no inputs
}

// TestCLIBenchJSON checks the machine-readable benchmark output.
func TestCLIBenchJSON(t *testing.T) {
	bin := buildCLI(t)
	jsonPath := filepath.Join(t.TempDir(), "results.json")
	run(t, filepath.Join(bin, "dmfb-bench"), true, "-exp", "table1", "-json", jsonPath)

	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Experiment   string  `json:"experiment"`
		DurationMS   float64 `json:"duration_ms"`
		Measurements []struct {
			Name     string  `json:"name"`
			Measured float64 `json:"measured"`
			Paper    float64 `json:"paper"`
		} `json:"measurements"`
	}
	if err := json.Unmarshal(raw, &results); err != nil {
		t.Fatalf("bench JSON invalid: %v\n%s", err, raw)
	}
	if len(results) != 1 || results[0].Experiment != "table1" {
		t.Fatalf("results = %+v, want one table1 entry", results)
	}
	if results[0].DurationMS <= 0 {
		t.Error("duration_ms not positive")
	}
	found := false
	for _, m := range results[0].Measurements {
		if m.Name == "bound_operations" && m.Measured == 7 && m.Paper == 7 {
			found = true
		}
	}
	if !found {
		t.Errorf("bound_operations measurement missing: %+v", results[0].Measurements)
	}
}

// TestCLISimTrace cross-checks dmfb-sim's trace against its printed
// event log: every printed event line must have a sim.* trace record.
func TestCLISimTrace(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	tracePath := filepath.Join(work, "trace.jsonl")

	out := run(t, filepath.Join(bin, "dmfb-sim"), true, "-trace", tracePath)
	printed := 0
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "  t=") {
			printed++
		}
	}
	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	traced := 0
	for _, line := range strings.Split(strings.TrimSpace(string(raw)), "\n") {
		var rec struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid trace line %q: %v", line, err)
		}
		if rec.Kind == "event" && strings.HasPrefix(rec.Name, "sim.") {
			traced++
		}
	}
	if printed == 0 || traced != printed {
		t.Errorf("printed %d event lines but traced %d sim events", printed, traced)
	}
	if !strings.Contains(string(raw), `"name":"sim.run"`) {
		t.Error("no sim.run span in trace")
	}
}
