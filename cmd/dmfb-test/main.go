// dmfb-test exercises the droplet-based structural test methodology
// (references [13]/[14] of the paper): it builds a chip, injects the
// requested faults, sweeps it with a test droplet, and reports
// detection/localisation — optionally masking a placement's module
// regions to emulate testing concurrent with assay execution.
//
// Usage:
//
//	dmfb-test -w 9 -h 7 -fault 3,4 -fault 0,0
//	dmfb-test -w 9 -h 7 -fault 3,4 -placement placement.json   # online sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"dmfb"
	"dmfb/internal/telemetry/cliflags"
)

type cellList []dmfb.Point

func (c *cellList) String() string { return fmt.Sprint(*c) }

func (c *cellList) Set(s string) error {
	var x, y int
	if _, err := fmt.Sscanf(s, "%d,%d", &x, &y); err != nil {
		return fmt.Errorf("want x,y: %v", err)
	}
	*c = append(*c, dmfb.Point{X: x, Y: y})
	return nil
}

func main() { os.Exit(run()) }

func run() int {
	var faults cellList
	var (
		w         = flag.Int("w", 9, "array width in cells")
		h         = flag.Int("h", 7, "array height in cells")
		placeFile = flag.String("placement", "", "mask this placement's modules (online test)")
	)
	flag.Var(&faults, "fault", "faulty cell x,y (repeatable)")
	obs := cliflags.Register()
	flag.Parse()

	ts, err := obs.Start("dmfb-test")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-test:", err)
		return 1
	}
	defer func() {
		if err := ts.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-test:", err)
		}
	}()

	chip := dmfb.NewChip(*w, *h)
	for _, f := range faults {
		if err := chip.InjectFault(f); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-test:", err)
			return 1
		}
	}

	if *placeFile != "" {
		data, err := os.ReadFile(*placeFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-test:", err)
			return 1
		}
		p, err := dmfb.UnmarshalPlacement(data)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-test:", err)
			return 1
		}
		var keepOut []dmfb.Rect
		for i := range p.Modules {
			keepOut = append(keepOut, p.Rect(i))
		}
		doneOnline := ts.Stage("sweep_online")
		rep := dmfb.TestArrayOnline(chip, keepOut)
		doneOnline()
		fmt.Println("online sweep (module regions masked):")
		fmt.Println(" ", rep)
	}

	fmt.Println("offline sweep:")
	doneOffline := ts.Stage("sweep_offline")
	rep := dmfb.TestArray(chip)
	doneOffline()
	fmt.Println(" ", rep)
	if rep.Faulty {
		fmt.Println("localising all faults by repeated sweeps:")
		for _, f := range dmfb.LocateAllFaults(chip) {
			fmt.Println("  fault at", f)
		}
		return 1
	}
	return 0
}
