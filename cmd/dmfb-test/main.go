// dmfb-test exercises the droplet-based structural test methodology
// (references [13]/[14] of the paper): it builds a chip, injects the
// requested faults, sweeps it with a test droplet, and reports
// detection/localisation — optionally masking a placement's module
// regions to emulate testing concurrent with assay execution.
//
// Usage:
//
//	dmfb-test -w 9 -h 7 -fault 3,4 -fault 0,0
//	dmfb-test -w 9 -h 7 -fault 3,4 -placement placement.json   # online sweep
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dmfb"
	"dmfb/internal/pipeline"
	"dmfb/internal/telemetry/cliflags"
)

type cellList []dmfb.Point

func (c *cellList) String() string { return fmt.Sprint(*c) }

func (c *cellList) Set(s string) error {
	var x, y int
	if _, err := fmt.Sscanf(s, "%d,%d", &x, &y); err != nil {
		return fmt.Errorf("want x,y: %v", err)
	}
	*c = append(*c, dmfb.Point{X: x, Y: y})
	return nil
}

func main() {
	var faults cellList
	var (
		w         = flag.Int("w", 9, "array width in cells")
		h         = flag.Int("h", 7, "array height in cells")
		placeFile = flag.String("placement", "", "mask this placement's modules (online test)")
	)
	flag.Var(&faults, "fault", "faulty cell x,y (repeatable)")
	os.Exit(cliflags.Main("dmfb-test", func(ts *cliflags.Session) int {
		req := pipeline.Request{
			Tool: "dmfb-test",
			Test: &pipeline.TestSpec{
				W: *w, H: *h,
				Faults: faults,
			},
			Tracer:  ts.Tracer,
			Metrics: ts.Metrics,
		}
		if *placeFile != "" {
			p, err := pipeline.LoadPlacement(*placeFile, os.ReadFile)
			if err != nil {
				return ts.Fail(err)
			}
			req.Placement = p
			req.Test.Online = true
		}

		res, err := pipeline.Run(context.Background(), req)
		if err != nil {
			return ts.Fail(err)
		}

		if res.Test.Online != nil {
			fmt.Println("online sweep (module regions masked):")
			fmt.Println(" ", *res.Test.Online)
		}
		fmt.Println("offline sweep:")
		fmt.Println(" ", res.Test.Offline)
		if res.Test.Offline.Faulty {
			fmt.Println("localising all faults by repeated sweeps:")
			for _, f := range res.Test.Located {
				fmt.Println("  fault at", f)
			}
			return 1
		}
		return 0
	}))
}
