// dmfb-route plans simultaneous droplet transport on an array under
// the electrowetting separation constraints and compiles the result
// into an electrode actuation program.
//
// Endpoint syntax: -d x1,y1:x2,y2 routes a droplet from (x1,y1) to
// (x2,y2); repeatable. Faults: -fault x,y.
//
// Usage:
//
//	dmfb-route -w 12 -h 8 -d 0,0:11,7 -d 11,0:0,7
//	dmfb-route -w 12 -h 8 -d 0,0:11,0 -fault 5,0 -frames
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"

	"dmfb"
	"dmfb/internal/pipeline"
	"dmfb/internal/telemetry/cliflags"
)

type endpointList []dmfb.RouteEndpoint

func (e *endpointList) String() string { return fmt.Sprint(*e) }

func (e *endpointList) Set(s string) error {
	var x1, y1, x2, y2 int
	if _, err := fmt.Sscanf(s, "%d,%d:%d,%d", &x1, &y1, &x2, &y2); err != nil {
		return fmt.Errorf("want x1,y1:x2,y2: %v", err)
	}
	*e = append(*e, dmfb.RouteEndpoint{
		From: dmfb.Point{X: x1, Y: y1},
		To:   dmfb.Point{X: x2, Y: y2},
	})
	return nil
}

type cellList []dmfb.Point

func (c *cellList) String() string { return fmt.Sprint(*c) }

func (c *cellList) Set(s string) error {
	var x, y int
	if _, err := fmt.Sscanf(s, "%d,%d", &x, &y); err != nil {
		return fmt.Errorf("want x,y: %v", err)
	}
	*c = append(*c, dmfb.Point{X: x, Y: y})
	return nil
}

func main() {
	var eps endpointList
	var faults cellList
	var (
		w      = flag.Int("w", 12, "array width")
		h      = flag.Int("h", 8, "array height")
		frames = flag.Bool("frames", false, "print the electrode actuation program")
	)
	flag.Var(&eps, "d", "droplet endpoint x1,y1:x2,y2 (repeatable)")
	flag.Var(&faults, "fault", "faulty cell x,y (repeatable)")
	os.Exit(cliflags.Main("dmfb-route", func(ts *cliflags.Session) int {
		if len(eps) == 0 {
			return ts.Usage(errors.New("at least one -d endpoint required"))
		}

		res, err := pipeline.Run(context.Background(), pipeline.Request{
			Tool: "dmfb-route",
			Route: &pipeline.RouteSpec{
				W: *w, H: *h,
				Faults:    faults,
				Endpoints: eps,
				Frames:    true,
			},
			Tracer:  ts.Tracer,
			Metrics: ts.Metrics,
		})
		if err != nil {
			return ts.Fail(err)
		}

		plan := res.Route.Plan
		fmt.Printf("%d droplet(s) routed in %d control steps (%d ms), %d cell moves\n",
			len(eps), plan.Makespan, plan.Makespan*10, plan.Steps())
		for i, path := range plan.Paths {
			fmt.Printf("  droplet %d: %v", i, path[0])
			for t := 1; t < len(path); t++ {
				if path[t] != path[t-1] {
					fmt.Printf(" %v", path[t])
				}
			}
			fmt.Println()
		}

		prog := res.Route.Program
		fmt.Printf("actuation program: %d frames, %d ms\n", len(prog.Frames), prog.DurationMS())
		if *frames {
			for _, f := range prog.Frames {
				fmt.Println(" ", f)
			}
		}
		return 0
	}))
}
