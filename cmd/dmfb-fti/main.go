// dmfb-fti computes the fault tolerance index of a placement (paper
// Section 5), prints the C-coverage map, and optionally cross-checks
// against exhaustive single-fault injection.
//
// Usage:
//
//	dmfb-fti -placement placement.json
//	dmfb-fti -placement placement.json -verify -montecarlo 10000
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"dmfb"
	"dmfb/internal/pipeline"
	"dmfb/internal/telemetry/cliflags"
)

func main() {
	var (
		in         = flag.String("placement", "", "placement JSON from dmfb-place (required)")
		verify     = flag.Bool("verify", false, "cross-check with exhaustive fault injection")
		monteCarlo = flag.Int("montecarlo", 0, "additionally run N random fault trials")
		seed       = flag.Int64("seed", 1, "Monte-Carlo seed")
	)
	os.Exit(cliflags.Main("dmfb-fti", func(ts *cliflags.Session) int {
		if *in == "" {
			return ts.Usage(errors.New("-placement is required"))
		}
		p, err := pipeline.LoadPlacement(*in, os.ReadFile)
		if err != nil {
			return ts.Fail(err)
		}

		res, err := pipeline.Run(context.Background(), pipeline.Request{
			Tool:      "dmfb-fti",
			Placement: p,
			FTI: &pipeline.FTISpec{
				Verify:     *verify,
				MonteCarlo: *monteCarlo,
				Seed:       *seed,
			},
			Tracer:  ts.Tracer,
			Metrics: ts.Metrics,
		})
		if err != nil {
			return ts.Fail(err)
		}

		r := *res.FTI
		fmt.Print(dmfb.RenderCoverage(r))
		fmt.Printf("array area: %d cells = %.2f mm2\n", p.ArrayCells(), dmfb.AreaMM2(p.ArrayCells()))

		if res.Exhaustive != nil {
			fmt.Println("exhaustive fault injection:", *res.Exhaustive)
			if math.Abs(res.Exhaustive.SurvivalRate()-r.FTI()) > 1e-12 {
				fmt.Fprintln(os.Stderr, "dmfb-fti: MISMATCH between FTI and injection!")
				return 1
			}
		}
		if res.MonteCarlo != nil {
			fmt.Println("Monte-Carlo fault injection:", *res.MonteCarlo)
		}
		return 0
	}))
}
