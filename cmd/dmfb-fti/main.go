// dmfb-fti computes the fault tolerance index of a placement (paper
// Section 5), prints the C-coverage map, and optionally cross-checks
// against exhaustive single-fault injection. Instead of a ready
// placement it can take a schedule and run the two-stage fault-
// tolerant placer itself (with the shared -starts/-anneal-workers
// multi-start search group) before analysing.
//
// Usage:
//
//	dmfb-fti -placement placement.json
//	dmfb-fti -placement placement.json -verify -montecarlo 10000
//	dmfb-fti -schedule schedule.json -beta 30 -starts 8
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"

	"dmfb"
	"dmfb/internal/pipeline"
	"dmfb/internal/telemetry/cliflags"
)

func main() {
	var (
		in         = flag.String("placement", "", "placement JSON from dmfb-place")
		schedFile  = flag.String("schedule", "", "schedule JSON: place it with the two-stage placer, then analyse")
		beta       = flag.Float64("beta", 30, "fault-tolerance weight for -schedule placement")
		verify     = flag.Bool("verify", false, "cross-check with exhaustive fault injection")
		monteCarlo = flag.Int("montecarlo", 0, "additionally run N random fault trials")
		seed       = flag.Int64("seed", 1, "Monte-Carlo and placement seed")
		search     = cliflags.SearchFlags()
	)
	os.Exit(cliflags.Main("dmfb-fti", func(ts *cliflags.Session) int {
		req := pipeline.Request{
			Tool: "dmfb-fti",
			FTI: &pipeline.FTISpec{
				Verify:     *verify,
				MonteCarlo: *monteCarlo,
				Seed:       *seed,
			},
			Tracer:  ts.Tracer,
			Metrics: ts.Metrics,
		}
		switch {
		case *in != "":
			p, err := pipeline.LoadPlacement(*in, os.ReadFile)
			if err != nil {
				return ts.Fail(err)
			}
			req.Placement = p
		case *schedFile != "":
			sched, err := pipeline.LoadSchedule(*schedFile, nil, os.ReadFile)
			if err != nil {
				return ts.Fail(err)
			}
			req.Schedule = sched
			req.Place = &pipeline.PlaceSpec{
				Placer:  "twostage",
				Options: dmfb.PlacerOptions{Seed: *seed, Search: *search},
				FT:      dmfb.FTOptions{Beta: *beta},
			}
		default:
			return ts.Usage(errors.New("-placement or -schedule is required"))
		}

		res, err := pipeline.Run(context.Background(), req)
		if err != nil {
			return ts.Fail(err)
		}
		p := res.Placement

		r := *res.FTI
		fmt.Print(dmfb.RenderCoverage(r))
		fmt.Printf("array area: %d cells = %.2f mm2\n", p.ArrayCells(), dmfb.AreaMM2(p.ArrayCells()))

		if res.Exhaustive != nil {
			fmt.Println("exhaustive fault injection:", *res.Exhaustive)
			if math.Abs(res.Exhaustive.SurvivalRate()-r.FTI()) > 1e-12 {
				fmt.Fprintln(os.Stderr, "dmfb-fti: MISMATCH between FTI and injection!")
				return 1
			}
		}
		if res.MonteCarlo != nil {
			fmt.Println("Monte-Carlo fault injection:", *res.MonteCarlo)
		}
		return 0
	}))
}
