// dmfb-fti computes the fault tolerance index of a placement (paper
// Section 5), prints the C-coverage map, and optionally cross-checks
// against exhaustive single-fault injection.
//
// Usage:
//
//	dmfb-fti -placement placement.json
//	dmfb-fti -placement placement.json -verify -montecarlo 10000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dmfb"
	"dmfb/internal/telemetry/cliflags"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		in         = flag.String("placement", "", "placement JSON from dmfb-place (required)")
		verify     = flag.Bool("verify", false, "cross-check with exhaustive fault injection")
		monteCarlo = flag.Int("montecarlo", 0, "additionally run N random fault trials")
		seed       = flag.Int64("seed", 1, "Monte-Carlo seed")
	)
	obs := cliflags.Register()
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "dmfb-fti: -placement is required")
		return 2
	}
	ts, err := obs.Start("dmfb-fti")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-fti:", err)
		return 1
	}
	defer func() {
		if err := ts.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-fti:", err)
		}
	}()

	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-fti:", err)
		return 1
	}
	p, err := dmfb.UnmarshalPlacement(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-fti:", err)
		return 1
	}

	doneFTI := ts.Stage("fti")
	r := dmfb.ComputeFTI(p)
	doneFTI()
	ts.Metrics.Gauge("fti.value").Set(r.FTI())
	ts.Metrics.Gauge("place.array_cells").Set(float64(p.ArrayCells()))
	ts.Metrics.Gauge("place.utilization").Set(p.Utilization())
	fmt.Print(dmfb.RenderCoverage(r))
	fmt.Printf("array area: %d cells = %.2f mm2\n", p.ArrayCells(), dmfb.AreaMM2(p.ArrayCells()))

	if *verify {
		doneEx := ts.Stage("exhaustive")
		ex := dmfb.ExhaustiveSingleFault(p)
		doneEx()
		fmt.Println("exhaustive fault injection:", ex)
		if math.Abs(ex.SurvivalRate()-r.FTI()) > 1e-12 {
			fmt.Fprintln(os.Stderr, "dmfb-fti: MISMATCH between FTI and injection!")
			return 1
		}
	}
	if *monteCarlo > 0 {
		doneMC := ts.Stage("montecarlo")
		mc := dmfb.MonteCarloSingleFault(p, *monteCarlo, *seed)
		doneMC()
		fmt.Println("Monte-Carlo fault injection:", mc)
	}
	return 0
}
