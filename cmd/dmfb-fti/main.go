// dmfb-fti computes the fault tolerance index of a placement (paper
// Section 5), prints the C-coverage map, and optionally cross-checks
// against exhaustive single-fault injection.
//
// Usage:
//
//	dmfb-fti -placement placement.json
//	dmfb-fti -placement placement.json -verify -montecarlo 10000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"dmfb"
)

func main() {
	var (
		in         = flag.String("placement", "", "placement JSON from dmfb-place (required)")
		verify     = flag.Bool("verify", false, "cross-check with exhaustive fault injection")
		monteCarlo = flag.Int("montecarlo", 0, "additionally run N random fault trials")
		seed       = flag.Int64("seed", 1, "Monte-Carlo seed")
	)
	flag.Parse()

	if *in == "" {
		fmt.Fprintln(os.Stderr, "dmfb-fti: -placement is required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-fti:", err)
		os.Exit(1)
	}
	p, err := dmfb.UnmarshalPlacement(data)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-fti:", err)
		os.Exit(1)
	}

	r := dmfb.ComputeFTI(p)
	fmt.Print(dmfb.RenderCoverage(r))
	fmt.Printf("array area: %d cells = %.2f mm2\n", p.ArrayCells(), dmfb.AreaMM2(p.ArrayCells()))

	if *verify {
		ex := dmfb.ExhaustiveSingleFault(p)
		fmt.Println("exhaustive fault injection:", ex)
		if math.Abs(ex.SurvivalRate()-r.FTI()) > 1e-12 {
			fmt.Fprintln(os.Stderr, "dmfb-fti: MISMATCH between FTI and injection!")
			os.Exit(1)
		}
	}
	if *monteCarlo > 0 {
		mc := dmfb.MonteCarloSingleFault(p, *monteCarlo, *seed)
		fmt.Println("Monte-Carlo fault injection:", mc)
	}
}
