// dmfb-simd is the distributed campaign service's worker daemon: it
// registers with a dmfb-dispatch dispatcher, leases chunked trial
// ranges, runs them through the campaign engine over a local worker
// pool and streams per-trial results back, heartbeating so a killed
// or wedged worker's chunks are re-issued to the rest of the fleet.
// Trial RNG streams derive from (campaign seed, trial index) alone,
// so any fleet shape produces byte-identical summaries.
//
// Usage:
//
//	dmfb-simd -dispatcher http://host:9400
//	dmfb-simd -name rack7 -workers 8 -max-idle 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dmfb/internal/dispatch"
	"dmfb/internal/telemetry/cliflags"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "http://127.0.0.1:9400", "dispatcher base `URL`")
		name       = flag.String("name", "", "worker `name` (default simd-<pid>)")
		workers    = flag.Int("workers", 0, "trial pool size per lease (0 = GOMAXPROCS)")
		batch      = flag.Int("batch", 32, "trials per streamed results batch")
		maxIdle    = flag.Duration("max-idle", 0, "exit after this long without a lease (0 = run until signalled)")
		quiet      = flag.Bool("quiet", false, "suppress per-lease progress lines")
	)
	os.Exit(cliflags.Main("dmfb-simd", func(ts *cliflags.Session) int {
		wn := *name
		if wn == "" {
			wn = fmt.Sprintf("simd-%d", os.Getpid())
		}
		logf := func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "dmfb-simd %s: %s\n", wn, fmt.Sprintf(format, args...))
		}
		if *quiet {
			logf = nil
		}
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		err := dispatch.RunWorker(ctx, dispatch.WorkerOptions{
			Name:       wn,
			Dispatcher: *dispatcher,
			Workers:    *workers,
			Batch:      *batch,
			MaxIdle:    *maxIdle,
			Metrics:    ts.Metrics,
			Tracer:     ts.Tracer,
			Logf:       logf,
		})
		if err != nil {
			return ts.Fail(err)
		}
		return 0
	}))
}
