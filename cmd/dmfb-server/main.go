// dmfb-server serves the synthesis pipeline over HTTP: POST
// /v1/compile places an assay (with a content-addressed placement
// cache, so repeated requests skip the annealer), POST /v1/simulate
// additionally runs the chip simulator with fault injections, and GET
// /v1/jobs/{id} tracks async requests. The ops endpoints (/metrics,
// /healthz, /progress, /debug/pprof) are served from the same
// listener. SIGINT/SIGTERM drains in-flight requests before exiting.
//
// Usage:
//
//	dmfb-server -addr :8080
//	dmfb-server -addr 127.0.0.1:0 -workers 4 -queue 16
//	dmfb-server -replay 100 -json serve.json   # self-benchmark, then exit
//
//	curl -s localhost:8080/v1/compile -d '{"assay":"pcr","seed":1}'
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"dmfb/internal/server"
	"dmfb/internal/telemetry"
	"dmfb/internal/telemetry/cliflags"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:8080", "TCP listen `address` (port 0 picks a free port)")
		workers = flag.Int("workers", 0, "concurrent pipeline runs (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 0, "waiting requests beyond -workers before 429 (0 = default, negative = none)")
		cacheMB = flag.Int("cache-mb", 64, "placement cache budget in MiB")
		drainT  = flag.Duration("drain-timeout", 30*time.Second, "max wait for in-flight requests on shutdown")
		replay  = flag.Int("replay", 0, "serve a mixed `n`-request benchmark against itself, report and exit")
		jsonOut = flag.String("json", "", "write replay results to `file` (with -replay)")
	)
	os.Exit(cliflags.Main("dmfb-server", func(ts *cliflags.Session) int {
		reg := ts.Metrics
		if reg == nil {
			reg = telemetry.NewRegistry()
		}
		srv := server.New(server.Options{
			Workers:    *workers,
			QueueDepth: *queue,
			CacheBytes: *cacheMB << 20,
			Metrics:    reg,
			Tracer:     ts.Tracer,
		})

		ln, err := net.Listen("tcp", *addr)
		if err != nil {
			return ts.Fail(err)
		}
		hs := &http.Server{Handler: srv.Handler()}
		errc := make(chan error, 1)
		go func() { errc <- hs.Serve(ln) }()
		fmt.Fprintf(os.Stderr, "dmfb-server: listening on http://%s\n", ln.Addr())

		shutdown := func() int {
			ctx, cancel := context.WithTimeout(context.Background(), *drainT)
			defer cancel()
			if err := srv.Drain(ctx); err != nil {
				fmt.Fprintln(os.Stderr, "dmfb-server: drain:", err)
			}
			if err := hs.Shutdown(ctx); err != nil {
				return ts.Fail(err)
			}
			return 0
		}

		if *replay > 0 {
			code := runReplay(ln.Addr().String(), *replay, *workers, *jsonOut)
			if sc := shutdown(); code == 0 {
				code = sc
			}
			return code
		}

		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		select {
		case err := <-errc:
			return ts.Fail(err)
		case <-ctx.Done():
		}
		stop() // a second signal kills the process the default way
		fmt.Fprintln(os.Stderr, "dmfb-server: draining")
		return shutdown()
	}))
}

// replayResult is the -json record of a -replay run; benchreport folds
// it into BENCH_place.json as the server-throughput row.
type replayResult struct {
	Requests     int     `json:"requests"`
	Workers      int     `json:"workers"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	RPS          float64 `json:"rps"`
	CacheHits    int     `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
}

// replayBodies is the mixed workload: two PCR placements at different
// seeds, a fault-tolerant PCR placement and an in-vitro placement.
// Cycling through them makes the steady-state cache hit rate exactly
// (n - 4) / n, so the replay doubles as a cache acceptance check.
var replayBodies = []string{
	`{"assay":"pcr","placer":"sa","seed":1}`,
	`{"assay":"pcr","placer":"twostage","seed":1,"beta":30}`,
	`{"assay":"invitro","samples":2,"assays":2,"seed":2}`,
	`{"assay":"pcr","placer":"sa","seed":2}`,
}

// runReplay fires n sequential compile requests at the server's own
// listener and reports throughput and cache behaviour.
func runReplay(base string, n, workers int, jsonOut string) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	client := &http.Client{Timeout: 5 * time.Minute}
	hits := 0
	start := time.Now()
	for i := 0; i < n; i++ {
		resp, err := client.Post("http://"+base+"/v1/compile", "application/json",
			strings.NewReader(replayBodies[i%len(replayBodies)]))
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-server: replay:", err)
			return 1
		}
		body, _ := io.ReadAll(resp.Body)
		if err := resp.Body.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-server: replay:", err)
			return 1
		}
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "dmfb-server: replay request %d: %s: %s",
				i, resp.Status, body)
			return 1
		}
		if resp.Header.Get("X-Dmfb-Cache") == "hit" {
			hits++
		}
	}
	elapsed := time.Since(start)

	r := replayResult{
		Requests:     n,
		Workers:      workers,
		ElapsedMS:    float64(elapsed.Microseconds()) / 1000,
		CacheHits:    hits,
		CacheHitRate: float64(hits) / float64(n),
	}
	if elapsed > 0 {
		r.RPS = float64(n) / elapsed.Seconds()
	}
	fmt.Printf("replay: %d requests in %.1fms (%.1f req/s), %d cache hits (rate %.2f)\n",
		r.Requests, r.ElapsedMS, r.RPS, r.CacheHits, r.CacheHitRate)
	if jsonOut != "" {
		data, err := json.MarshalIndent(r, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-server:", err)
			return 1
		}
	}
	return 0
}
