// dmfb-report turns the observability artefacts of a finished (or
// interrupted) run into a human-readable report: the JSONL trace and
// JSON metrics snapshot that every tool writes with -trace/-metrics,
// plus, for campaigns, the JSONL checkpoint file.
//
// Sections (each present only when its input is given):
//
//   - stage timing tree — spans aggregated by their id/par hierarchy
//     path, so "recovery.ladder under sim.run under campaign.trial"
//     and the same span name elsewhere stay distinct lines
//   - top counters and gauges from the metrics snapshot
//   - per-trial latency quantiles estimated from the
//     campaign.trial_ms histogram buckets
//   - recovery outcomes from the checkpoint (survival, errors, the
//     recorded value distribution) and the recovery.* counters
//
// Usage:
//
//	dmfb-campaign -trials 1e5 -trace t.jsonl -metrics m.json -checkpoint c.jsonl
//	dmfb-report -trace t.jsonl -metrics m.json -checkpoint c.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"dmfb/internal/campaign"
	"dmfb/internal/stats"
	"dmfb/internal/telemetry"
)

func main() { os.Exit(run(os.Stdout, os.Args[1:])) }

func run(w io.Writer, argv []string) int {
	fs := flag.NewFlagSet("dmfb-report", flag.ContinueOnError)
	trace := fs.String("trace", "", "JSONL trace `file` written with -trace")
	metrics := fs.String("metrics", "", "JSON metrics snapshot `file` written with -metrics")
	ckpt := fs.String("checkpoint", "", "campaign checkpoint `file` written with -checkpoint")
	top := fs.Int("top", 12, "counters/gauges shown per metrics table")
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if *trace == "" && *metrics == "" && *ckpt == "" {
		fmt.Fprintln(os.Stderr, "dmfb-report: nothing to report; give -trace, -metrics and/or -checkpoint")
		fs.Usage()
		return 2
	}

	if *trace != "" {
		if err := reportTrace(w, *trace); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-report:", err)
			return 1
		}
	}
	if *metrics != "" {
		if err := reportMetrics(w, *metrics, *top); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-report:", err)
			return 1
		}
	}
	if *ckpt != "" {
		if err := reportCheckpoint(w, *ckpt); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-report:", err)
			return 1
		}
	}
	return 0
}

// traceRecord mirrors the telemetry wire format (package telemetry
// doc); only the fields the report needs are decoded.
type traceRecord struct {
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	ID    uint64 `json:"id"`
	Par   uint64 `json:"par"`
	DurUS int64  `json:"dur_us"`
}

// pathStat aggregates every span that shares one hierarchy path.
type pathStat struct {
	path  []string // name chain from root
	n     int
	durUS int64
}

// reportTrace renders the span hierarchy as an aggregated timing
// tree: spans with the same root→leaf name chain collapse into one
// line carrying the invocation count and summed duration.
func reportTrace(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	spans := make(map[uint64]traceRecord)
	events := 0
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		var rec traceRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			continue // tolerate a torn final line
		}
		switch rec.Kind {
		case "span":
			spans[rec.ID] = rec
		case "event":
			events++
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}

	// Name chain per span id, memoised; a dangling parent (span never
	// ended, e.g. after a kill) truncates the chain at the orphan.
	chains := make(map[uint64][]string)
	var chainOf func(id uint64) []string
	chainOf = func(id uint64) []string {
		if c, ok := chains[id]; ok {
			return c
		}
		rec, ok := spans[id]
		if !ok {
			return nil
		}
		chains[id] = nil // break cycles from corrupt input
		c := append(append([]string(nil), chainOf(rec.Par)...), rec.Name)
		chains[id] = c
		return c
	}

	agg := make(map[string]*pathStat)
	for id, rec := range spans {
		chain := chainOf(id)
		key := strings.Join(chain, "\x00")
		st, ok := agg[key]
		if !ok {
			st = &pathStat{path: chain}
			agg[key] = st
		}
		st.n++
		st.durUS += rec.DurUS
	}

	fmt.Fprintf(w, "== stage timing (%s: %d spans, %d events) ==\n", path, len(spans), events)
	printTree(w, agg, nil, 0)
	fmt.Fprintln(w)
	return nil
}

// printTree prints the children of the given path prefix, longest
// total duration first, then recurses.
func printTree(w io.Writer, agg map[string]*pathStat, prefix []string, depth int) {
	var kids []*pathStat
	for _, st := range agg {
		if len(st.path) == len(prefix)+1 && hasPrefix(st.path, prefix) {
			kids = append(kids, st)
		}
	}
	sort.Slice(kids, func(i, j int) bool {
		if kids[i].durUS != kids[j].durUS {
			return kids[i].durUS > kids[j].durUS
		}
		return kids[i].path[len(kids[i].path)-1] < kids[j].path[len(kids[j].path)-1]
	})
	for _, st := range kids {
		name := st.path[len(st.path)-1]
		fmt.Fprintf(w, "  %-*s%-*s %7d× %12.1f ms\n",
			2*depth, "", 36-2*depth, name, st.n, float64(st.durUS)/1000)
		printTree(w, agg, st.path, depth+1)
	}
}

func hasPrefix(path, prefix []string) bool {
	for i := range prefix {
		if path[i] != prefix[i] {
			return false
		}
	}
	return true
}

// reportMetrics renders the top counters and gauges plus quantile
// estimates for every histogram in the snapshot (campaign.trial_ms is
// the per-trial latency one).
func reportMetrics(w io.Writer, path string, top int) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var snap telemetry.Snapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		return fmt.Errorf("parse %s: %w", path, err)
	}

	fmt.Fprintf(w, "== metrics (%s) ==\n", path)
	if len(snap.Counters) > 0 {
		fmt.Fprintf(w, "top counters:\n")
		for _, kv := range topN(snap.Counters, top) {
			fmt.Fprintf(w, "  %-36s %12d\n", kv.name, kv.value)
		}
	}
	if len(snap.Gauges) > 0 {
		names := make([]string, 0, len(snap.Gauges))
		for name := range snap.Gauges {
			names = append(names, name)
		}
		sort.Strings(names)
		if len(names) > top {
			names = names[:top]
		}
		fmt.Fprintf(w, "gauges:\n")
		for _, name := range names {
			fmt.Fprintf(w, "  %-36s %12g\n", name, snap.Gauges[name])
		}
	}
	if len(snap.Histograms) > 0 {
		names := make([]string, 0, len(snap.Histograms))
		for name := range snap.Histograms {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "histograms (bucket-estimated quantiles):\n")
		fmt.Fprintf(w, "  %-30s %9s %9s %9s %9s %9s %9s\n",
			"name", "count", "mean", "p50", "p95", "p99", "max")
		for _, name := range names {
			h := snap.Histograms[name]
			if h.Count == 0 {
				fmt.Fprintf(w, "  %-30s %9d\n", name, 0)
				continue
			}
			fmt.Fprintf(w, "  %-30s %9d %9.3f %9.3f %9.3f %9.3f %9.3f\n",
				name, h.Count, h.Mean, h.Quantile(0.5), h.Quantile(0.95), h.Quantile(0.99), h.Max)
		}
	}
	if len(snap.Spans) > 0 {
		names := make([]string, 0, len(snap.Spans))
		for name := range snap.Spans {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "span durations (ms):\n")
		for _, name := range names {
			s := snap.Spans[name]
			fmt.Fprintf(w, "  %-30s %9d %9.3f %9.3f %9.3f %9.3f %9.3f\n",
				name, s.N, s.Mean, s.Median, s.P95, s.P99, s.Max)
		}
	}
	fmt.Fprintln(w)
	return nil
}

type kv struct {
	name  string
	value int64
}

// topN returns the n largest counters, value-descending then
// name-ascending for determinism.
func topN(m map[string]int64, n int) []kv {
	out := make([]kv, 0, len(m))
	for name, v := range m {
		out = append(out, kv{name, v})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].value != out[j].value {
			return out[i].value > out[j].value
		}
		return out[i].name < out[j].name
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}

// reportCheckpoint summarises the recorded trial outcomes of a
// campaign checkpoint: completion, survival with a Wilson interval,
// error breakdown and the recorded value (for assay campaigns: ladder
// depth) distribution.
func reportCheckpoint(w io.Writer, path string) error {
	info, err := campaign.ReadCheckpoint(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "== campaign checkpoint (%s) ==\n", path)
	fmt.Fprintf(w, "campaign %q, seed %d: %d/%d trials recorded\n",
		info.Campaign, info.Seed, info.Done, info.Trials)
	if info.Done > 0 {
		lo, hi := stats.Wilson95(info.Survived, info.Done)
		fmt.Fprintf(w, "survival %d/%d = %.4f, 95%% Wilson CI [%.4f, %.4f]\n",
			info.Survived, info.Done, float64(info.Survived)/float64(info.Done), lo, hi)
		vs := stats.Describe(info.Values)
		fmt.Fprintf(w, "values: mean %.3f, median %.1f, p95 %.1f, p99 %.1f, max %.1f\n",
			vs.Mean, vs.Median, vs.P95, vs.P99, vs.Max)
	}
	if strings.HasPrefix(info.Campaign, "yield") && info.Done > 0 {
		reportYieldBuckets(w, info.Results)
	}
	if info.Errors > 0 {
		fmt.Fprintf(w, "errors: %d\n", info.Errors)
		msgs := make([]string, 0, len(info.ErrorCounts))
		for msg := range info.ErrorCounts {
			msgs = append(msgs, msg)
		}
		sort.Strings(msgs)
		for _, msg := range msgs {
			fmt.Fprintf(w, "  %4d× %s\n", info.ErrorCounts[msg], msg)
		}
	}
	fmt.Fprintln(w)
	return nil
}

// yieldBuckets are the defect-count-per-die bands of the yield
// breakdown. A yield trial records the die's defect count as its
// value, so bucketing by value is bucketing by defect density on a
// fixed-size array.
var yieldBuckets = []struct {
	label  string
	lo, hi float64 // inclusive bounds on defects per die
}{
	{"0 defects", 0, 0},
	{"1 defect", 1, 1},
	{"2 defects", 2, 2},
	{"3-4 defects", 3, 4},
	{"5-8 defects", 5, 8},
	{"9+ defects", 9, 1e18},
}

// reportYieldBuckets prints the survival rate of each defect-density
// band of a yield campaign, with a Wilson 95% interval per band — the
// yield-vs-density checkpoints of the space-redundancy analysis.
func reportYieldBuckets(w io.Writer, results []campaign.TrialResult) {
	fmt.Fprintf(w, "yield by defects per die (Wilson 95%%):\n")
	for _, b := range yieldBuckets {
		trials, survived := 0, 0
		for _, r := range results {
			if r.Value >= b.lo && r.Value <= b.hi {
				trials++
				if r.Survived {
					survived++
				}
			}
		}
		if trials == 0 {
			continue
		}
		lo, hi := stats.Wilson95(survived, trials)
		fmt.Fprintf(w, "  %-12s %6d trials  yield %.4f  [%.4f, %.4f]\n",
			b.label, trials, float64(survived)/float64(trials), lo, hi)
	}
}
