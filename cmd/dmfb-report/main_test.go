package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeFile(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sampleTrace = `{"seq":1,"t_us":0,"kind":"event","name":"tool.start"}
{"seq":2,"t_us":10,"kind":"span","name":"recovery.ladder","id":5,"par":4,"dur_us":300}
{"seq":3,"t_us":5,"kind":"span","name":"sim.run","id":4,"par":3,"dur_us":900}
{"seq":4,"t_us":2,"kind":"span","name":"campaign.trial","id":3,"par":2,"dur_us":1000}
{"seq":5,"t_us":40,"kind":"span","name":"campaign.trial","id":6,"par":2,"dur_us":2000}
{"seq":6,"t_us":1,"kind":"span","name":"campaign.run","id":2,"par":1,"dur_us":5000}
{"seq":7,"t_us":0,"kind":"span","name":"tool.run","id":1,"dur_us":6000}
`

func TestReportTraceTree(t *testing.T) {
	trace := writeFile(t, "t.jsonl", sampleTrace)
	var buf strings.Builder
	if code := run(&buf, []string{"-trace", trace}); code != 0 {
		t.Fatalf("run = %d", code)
	}
	out := buf.String()
	// The two campaign.trial spans aggregate into one line nested
	// under campaign.run under tool.run; the ladder sits three deep.
	wantOrder := []string{
		"6 spans, 1 events",
		"tool.run",
		"  campaign.run",
		"    campaign.trial",
		"      sim.run",
		"        recovery.ladder",
	}
	pos := 0
	for _, want := range wantOrder {
		i := strings.Index(out[pos:], want)
		if i < 0 {
			t.Fatalf("output missing %q after offset %d:\n%s", want, pos, out)
		}
		pos += i + len(want)
	}
	if !strings.Contains(out, "2×") {
		t.Errorf("campaign.trial aggregation lost its count:\n%s", out)
	}
	if !strings.Contains(out, "3.0 ms") { // 1000+2000 µs of campaign.trial
		t.Errorf("campaign.trial aggregation lost its duration:\n%s", out)
	}
}

const sampleMetrics = `{
  "counters": {"campaign.trials": 100, "recovery.invocations": 40, "campaign.trials_survived": 70},
  "gauges": {"anneal.temp": 0.5},
  "histograms": {
    "campaign.trial_ms": {
      "count": 4, "sum": 10, "mean": 2.5, "min": 1, "max": 4,
      "buckets": [{"le": 1, "n": 1}, {"le": 2.5, "n": 1}, {"le": 5, "n": 2}, {"le": "inf", "n": 0}]
    }
  },
  "spans": {"sim.run": {"N": 4, "Mean": 2.5, "Median": 2.0, "P95": 4.0, "P99": 4.0, "Max": 4.0}}
}`

func TestReportMetrics(t *testing.T) {
	metrics := writeFile(t, "m.json", sampleMetrics)
	var buf strings.Builder
	if code := run(&buf, []string{"-metrics", metrics}); code != 0 {
		t.Fatalf("run = %d", code)
	}
	out := buf.String()
	for _, want := range []string{
		"top counters:",
		"campaign.trials",
		"recovery.invocations",
		"anneal.temp",
		"campaign.trial_ms",
		"span durations (ms):",
		"sim.run",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics report missing %q:\n%s", want, out)
		}
	}
	// Counters sort by value: trials (100) before survived (70).
	if strings.Index(out, "campaign.trials ") > strings.Index(out, "campaign.trials_survived") {
		t.Errorf("counters not value-sorted:\n%s", out)
	}
}

const sampleCheckpoint = `{"v":1,"campaign":"assay-k2-l1","seed":7,"trials":10}
{"trial":0,"survived":true,"value":1}
{"trial":1,"survived":true}
{"trial":2,"survived":false,"value":2,"err":"boom"}
{"trial":3,"survived":false,"err":"boom"}
{"trial":4,"survived":true,"value":1}
{"trial":5,"surv` // torn final line

func TestReportCheckpoint(t *testing.T) {
	ckpt := writeFile(t, "c.jsonl", sampleCheckpoint)
	var buf strings.Builder
	if code := run(&buf, []string{"-checkpoint", ckpt}); code != 0 {
		t.Fatalf("run = %d", code)
	}
	out := buf.String()
	for _, want := range []string{
		`campaign "assay-k2-l1", seed 7: 5/10 trials recorded`,
		"survival 3/5 = 0.6000",
		"errors: 2",
		"2× boom",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("checkpoint report missing %q:\n%s", want, out)
		}
	}
}

// yieldCheckpoint is a yield campaign: the recorded value is the
// die's defect count, so the report buckets survival by density.
const yieldCheckpoint = `{"v":1,"campaign":"yield-clustered-q0.03","seed":3,"trials":8}
{"trial":0,"survived":true,"value":0}
{"trial":1,"survived":true,"value":0}
{"trial":2,"survived":true,"value":1}
{"trial":3,"survived":false,"value":1}
{"trial":4,"survived":false,"value":3}
{"trial":5,"survived":false,"value":4}
{"trial":6,"survived":false,"value":12}
{"trial":7,"survived":true,"value":2}
`

func TestReportYieldBuckets(t *testing.T) {
	ckpt := writeFile(t, "y.jsonl", yieldCheckpoint)
	var buf strings.Builder
	if code := run(&buf, []string{"-checkpoint", ckpt}); code != 0 {
		t.Fatalf("run = %d", code)
	}
	out := buf.String()
	for _, want := range []string{
		"yield by defects per die (Wilson 95%):",
		"0 defects",
		"yield 1.0000", // both 0-defect dies survived
		"1 defect",
		"yield 0.5000", // one of two 1-defect dies survived
		"3-4 defects",
		"yield 0.0000",
		"9+ defects",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("yield report missing %q:\n%s", want, out)
		}
	}
	// The 5-8 band has no trials and must be omitted.
	if strings.Contains(out, "5-8 defects") {
		t.Errorf("empty density band printed:\n%s", out)
	}
	// Non-yield campaigns must not grow a density breakdown.
	buf.Reset()
	if code := run(&buf, []string{"-checkpoint", writeFile(t, "a.jsonl", sampleCheckpoint)}); code != 0 {
		t.Fatalf("run = %d", code)
	}
	if strings.Contains(buf.String(), "yield by defects per die") {
		t.Errorf("assay checkpoint grew a yield breakdown:\n%s", buf.String())
	}
}

func TestReportNoInputs(t *testing.T) {
	var buf strings.Builder
	if code := run(&buf, nil); code != 2 {
		t.Errorf("run with no inputs = %d, want 2", code)
	}
}

func TestReportMissingFile(t *testing.T) {
	var buf strings.Builder
	if code := run(&buf, []string{"-trace", filepath.Join(t.TempDir(), "absent.jsonl")}); code != 1 {
		t.Errorf("run with absent trace = %d, want 1", code)
	}
}
