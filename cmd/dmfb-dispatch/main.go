// dmfb-dispatch is the distributed campaign service's control plane:
// a dispatcher daemon that queues campaign definitions and leases
// chunked trial ranges to dmfb-simd workers, plus the submit/status
// client. Because every trial derives its RNG stream from the
// campaign seed and trial index alone, the dispatcher's merged
// summary is byte-identical to a single-process dmfb-campaign run at
// any worker count.
//
// Usage:
//
//	dmfb-dispatch serve -addr :9400 -state /var/lib/dmfb
//	dmfb-dispatch submit -to http://host:9400 -mode assay -k 1 -trials 512 -seed 5
//	dmfb-dispatch status -to http://host:9400 [id]
//	dmfb-dispatch wait -to http://host:9400 -summary out.json id
//
// The observability flags (-trace, -metrics, -profile, -ops) go
// before the subcommand: dmfb-dispatch -ops :0 serve ...
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmfb/internal/dispatch"
	"dmfb/internal/telemetry/cliflags"
)

const usageText = `usage: dmfb-dispatch [obs flags] <command> [flags]

commands:
  serve    run the dispatcher daemon
  submit   enqueue a campaign on a running dispatcher
  status   show one campaign (or all, with no id)
  wait     poll until a campaign finishes; optionally save its summary

run 'dmfb-dispatch <command> -h' for the command's flags`

func main() {
	os.Exit(cliflags.Main("dmfb-dispatch", run))
}

func run(ts *cliflags.Session) int {
	args := flag.Args()
	if len(args) == 0 {
		return ts.Usage(errors.New(usageText))
	}
	switch args[0] {
	case "serve":
		return runServe(ts, args[1:])
	case "submit":
		return runSubmit(ts, args[1:])
	case "status":
		return runStatus(ts, args[1:])
	case "wait":
		return runWait(ts, args[1:])
	default:
		return ts.Usage(fmt.Errorf("unknown command %q\n%s", args[0], usageText))
	}
}

func runServe(ts *cliflags.Session, args []string) int {
	fs := flag.NewFlagSet("dmfb-dispatch serve", flag.ContinueOnError)
	var (
		addr  = fs.String("addr", "127.0.0.1:9400", "TCP listen `address` (port 0 picks a free port)")
		state = fs.String("state", "", "durable state `dir` (campaign specs + result logs); empty keeps state in memory")
		chunk = fs.Int("chunk", dispatch.DefaultChunk, "trials per lease")
		ttl   = fs.Duration("lease-ttl", dispatch.DefaultLeaseTTL, "lease lifetime without a heartbeat")
		maxC  = fs.Int("max-campaigns", dispatch.DefaultMaxCampaigns, "unfinished campaigns before submissions get 429")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	d, err := dispatch.New(dispatch.Options{
		StateDir:     *state,
		Chunk:        *chunk,
		LeaseTTL:     *ttl,
		MaxCampaigns: *maxC,
		Metrics:      ts.Metrics,
		Tracer:       ts.Tracer,
	})
	if err != nil {
		return ts.Fail(err)
	}
	defer func() {
		if err := d.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-dispatch:", err)
		}
	}()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return ts.Fail(err)
	}
	hs := &http.Server{Handler: d.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	fmt.Fprintf(os.Stderr, "dmfb-dispatch: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-errc:
		return ts.Fail(err)
	case <-ctx.Done():
	}
	stop() // a second signal kills the process the default way
	fmt.Fprintln(os.Stderr, "dmfb-dispatch: shutting down")
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return ts.Fail(err)
	}
	return 0
}

// specFlags installs the campaign-spec flags, mirroring dmfb-campaign.
// The returned string is the -defect-file path; submit reads it and
// ships the map content in the spec so workers need no filesystem.
func specFlags(fs *flag.FlagSet) (*dispatch.Spec, *string) {
	sp := &dispatch.Spec{}
	fs.StringVar(&sp.Mode, "mode", "multi", "campaign `kind`: single, multi, yield or assay")
	fs.IntVar(&sp.Trials, "trials", 200, "number of randomized trials")
	fs.Int64Var(&sp.Seed, "seed", 1, "campaign seed")
	fs.IntVar(&sp.K, "k", 2, "simultaneous faults per trial (multi, assay)")
	fs.Float64Var(&sp.Q, "q", 0.01, "per-cell defect probability in -mode yield (alias of -defect-prob)")
	fs.Float64Var(&sp.Q, "defect-prob", 0.01, "mean per-cell defect probability in -mode yield")
	fs.StringVar(&sp.DefectModel, "defect-model", "uniform", "defect map model in -mode yield: uniform | clustered | file")
	fs.Float64Var(&sp.ClusterSize, "cluster-size", 4, "mean defects per cluster for -defect-model clustered")
	fs.IntVar(&sp.ClusterRadius, "cluster-radius", 2, "cluster scatter radius in cells for -defect-model clustered")
	defectFile := fs.String("defect-file", "", "defect map `file` for -defect-model file ('.' good, 'X' defective)")
	fs.IntVar(&sp.Spares, "spares", 0, "interstitial spare lines to thread through the placement (yield)")
	fs.BoolVar(&sp.Ladder, "ladder", false, "judge yield by the design-time recovery ladder instead of partial reconfiguration")
	fs.BoolVar(&sp.Full, "full", false, "enable full re-placement fallback (multi, yield)")
	fs.StringVar(&sp.Recovery, "recovery", "l1", "assay fault response: l1, ladder or off")
	fs.Float64Var(&sp.Transient, "transient", 0, "probability an assay fault is transient")
	fs.Int64Var(&sp.PlaceSeed, "place-seed", 2, "seed of the annealed placement under test")
	return sp, defectFile
}

func runSubmit(ts *cliflags.Session, args []string) int {
	fs := flag.NewFlagSet("dmfb-dispatch submit", flag.ContinueOnError)
	to := fs.String("to", "http://127.0.0.1:9400", "dispatcher base `URL`")
	sp, defectFile := specFlags(fs)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *defectFile != "" {
		raw, err := os.ReadFile(*defectFile)
		if err != nil {
			return ts.Fail(fmt.Errorf("reading -defect-file: %w", err))
		}
		sp.DefectMap = string(raw)
	}
	if err := sp.Validate(true); err != nil {
		return ts.Usage(err)
	}
	client := dispatch.NewClient(*to, nil)
	resp, err := client.Submit(context.Background(), *sp)
	if err != nil {
		return ts.Fail(err)
	}
	fmt.Printf("submitted %s (%s, %d trials)\n", resp.ID, resp.Name, resp.Trials)
	return 0
}

// printStatus renders one campaign the way status and wait report it.
func printStatus(st dispatch.StatusResponse) {
	fmt.Printf("%s  %-18s %-8s %d/%d trials  survived %d  errors %d\n",
		st.ID, st.Name, st.State, st.Done, st.Trials, st.Survived, st.Errors)
	if st.Failure != "" {
		fmt.Printf("  failure: %s\n", st.Failure)
	}
}

func runStatus(ts *cliflags.Session, args []string) int {
	fs := flag.NewFlagSet("dmfb-dispatch status", flag.ContinueOnError)
	to := fs.String("to", "http://127.0.0.1:9400", "dispatcher base `URL`")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	client := dispatch.NewClient(*to, nil)
	ctx := context.Background()
	if fs.NArg() > 0 {
		st, err := client.Status(ctx, fs.Arg(0))
		if err != nil {
			return ts.Fail(err)
		}
		printStatus(st)
		return 0
	}
	all, err := client.List(ctx)
	if err != nil {
		return ts.Fail(err)
	}
	if len(all) == 0 {
		fmt.Println("no campaigns")
		return 0
	}
	for _, st := range all {
		printStatus(st)
	}
	return 0
}

func runWait(ts *cliflags.Session, args []string) int {
	fs := flag.NewFlagSet("dmfb-dispatch wait", flag.ContinueOnError)
	var (
		to      = fs.String("to", "http://127.0.0.1:9400", "dispatcher base `URL`")
		poll    = fs.Duration("poll", 250*time.Millisecond, "status poll interval")
		timeout = fs.Duration("timeout", 0, "give up after this long (0 = wait forever)")
		sumOut  = fs.String("summary", "", "write the deterministic summary JSON to `file` once done")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 1 {
		return ts.Usage(errors.New("usage: dmfb-dispatch wait [flags] <campaign-id>"))
	}
	id := fs.Arg(0)
	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	client := dispatch.NewClient(*to, nil)
	st, err := client.Wait(ctx, id, *poll)
	if err != nil {
		return ts.Fail(err)
	}
	printStatus(st)
	if st.State == "failed" {
		return 1
	}
	if *sumOut != "" {
		raw, err := client.Summary(ctx, id)
		if err != nil {
			return ts.Fail(err)
		}
		if err := os.WriteFile(*sumOut, raw, 0o644); err != nil {
			return ts.Fail(err)
		}
	}
	return 0
}
