// dmfb-place places the modules of a synthesised schedule on the
// microfluidic array using the paper's placers, reports area and fault
// tolerance index, and renders the result.
//
// Usage:
//
//	dmfb-place -placer sa                        # Figure 7 (area-only SA)
//	dmfb-place -placer twostage -beta 30         # Figure 8 (fault-tolerant)
//	dmfb-place -placer greedy                    # Section 6.1 baseline
//	dmfb-place -placer sa -spares 2              # space redundancy for yield
//	dmfb-place -schedule schedule.json -o placement.json -svg out.svg
//	dmfb-place -trace trace.jsonl -metrics metrics.json -profile prof/
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dmfb"
	"dmfb/internal/pipeline"
	"dmfb/internal/telemetry/cliflags"
)

func main() {
	var (
		schedFile = flag.String("schedule", "", "schedule JSON from dmfb-synth (default: built-in PCR)")
		placer    = flag.String("placer", "sa", "placer: greedy | greedy-oblivious | sa | twostage")
		beta      = flag.Float64("beta", 30, "fault-tolerance weight for -placer twostage")
		seed      = flag.Int64("seed", 1, "annealing seed")
		out       = flag.String("o", "", "write the placement as JSON")
		svg       = flag.String("svg", "", "write the placement as SVG")
		coverage  = flag.Bool("coverage", false, "print the C-coverage map")
		spares    = flag.Int("spares", 0, "interstitial spare lines to thread through the placement (space redundancy)")
		search    = cliflags.SearchFlags()
	)
	os.Exit(cliflags.Main("dmfb-place", func(ts *cliflags.Session) int {
		sched, err := pipeline.LoadSchedule(*schedFile, nil, os.ReadFile)
		if err != nil {
			return ts.Fail(err)
		}

		res, err := pipeline.Run(context.Background(), pipeline.Request{
			Tool:     "dmfb-place",
			Schedule: sched,
			Place: &pipeline.PlaceSpec{
				Placer:  *placer,
				Options: dmfb.PlacerOptions{Seed: *seed, Search: *search},
				FT:      dmfb.FTOptions{Beta: *beta},
				Spares:  *spares,
			},
			FTI:     &pipeline.FTISpec{},
			Tracer:  ts.Tracer,
			Metrics: ts.Metrics,
		})
		if err != nil {
			return ts.Fail(err)
		}
		p := res.Placement
		if res.TwoStage != nil {
			s1 := res.TwoStage.Stage1
			fmt.Printf("stage 1: %d cells (%.2f mm2), FTI %.4f\n",
				s1.ArrayCells(), dmfb.AreaMM2(s1.ArrayCells()), dmfb.ComputeFTI(s1).FTI())
		}

		r := *res.FTI
		fmt.Print(dmfb.RenderPlacement(p))
		fmt.Printf("area: %d cells = %.2f mm2 at %.1f mm pitch\n",
			p.ArrayCells(), dmfb.AreaMM2(p.ArrayCells()), dmfb.CellPitchMM)
		fmt.Println(r)
		if *coverage {
			fmt.Print(dmfb.RenderCoverage(r))
		}

		if *out != "" {
			data, err := dmfb.MarshalPlacement(p)
			if err == nil {
				err = os.WriteFile(*out, data, 0o644)
			}
			if err != nil {
				return ts.Fail(err)
			}
			fmt.Println("placement written to", *out)
		}
		if *svg != "" {
			if err := os.WriteFile(*svg, []byte(dmfb.RenderPlacementSVG(p, 24)), 0o644); err != nil {
				return ts.Fail(err)
			}
			fmt.Println("SVG written to", *svg)
		}
		return 0
	}))
}
