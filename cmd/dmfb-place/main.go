// dmfb-place places the modules of a synthesised schedule on the
// microfluidic array using the paper's placers, reports area and fault
// tolerance index, and renders the result.
//
// Usage:
//
//	dmfb-place -placer sa                        # Figure 7 (area-only SA)
//	dmfb-place -placer twostage -beta 30         # Figure 8 (fault-tolerant)
//	dmfb-place -placer greedy                    # Section 6.1 baseline
//	dmfb-place -schedule schedule.json -o placement.json -svg out.svg
//	dmfb-place -trace trace.jsonl -metrics metrics.json -profile prof/
package main

import (
	"flag"
	"fmt"
	"os"

	"dmfb"
	"dmfb/internal/telemetry/cliflags"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		schedFile = flag.String("schedule", "", "schedule JSON from dmfb-synth (default: built-in PCR)")
		placer    = flag.String("placer", "sa", "placer: greedy | greedy-oblivious | sa | twostage")
		beta      = flag.Float64("beta", 30, "fault-tolerance weight for -placer twostage")
		seed      = flag.Int64("seed", 1, "annealing seed")
		out       = flag.String("o", "", "write the placement as JSON")
		svg       = flag.String("svg", "", "write the placement as SVG")
		coverage  = flag.Bool("coverage", false, "print the C-coverage map")
	)
	obs := cliflags.Register()
	flag.Parse()

	ts, err := obs.Start("dmfb-place")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-place:", err)
		return 1
	}
	defer func() {
		if err := ts.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-place:", err)
		}
	}()

	sched, err := loadSchedule(*schedFile)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-place:", err)
		return 1
	}
	prob := dmfb.PlacementProblemOf(sched)
	opts := dmfb.PlacerOptions{
		Seed:     *seed,
		Observer: dmfb.ObserveAnneal(ts.Tracer, ts.Metrics, "place"),
		Metrics:  ts.Metrics,
	}

	done := ts.Stage("place")
	var p *dmfb.Placement
	switch *placer {
	case "greedy":
		p, err = dmfb.PlaceGreedy(prob, true)
	case "greedy-oblivious":
		p, err = dmfb.PlaceGreedy(prob, false)
	case "sa":
		p, _, err = dmfb.PlaceAnneal(prob, opts)
	case "twostage":
		var res dmfb.TwoStageResult
		res, err = dmfb.PlaceFaultTolerant(prob, opts, dmfb.FTOptions{Beta: *beta})
		if err == nil {
			p = res.Final
			fmt.Printf("stage 1: %d cells (%.2f mm2), FTI %.4f\n",
				res.Stage1.ArrayCells(), dmfb.AreaMM2(res.Stage1.ArrayCells()),
				dmfb.ComputeFTI(res.Stage1).FTI())
		}
	default:
		err = fmt.Errorf("unknown placer %q", *placer)
	}
	done()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-place:", err)
		return 1
	}
	ts.Metrics.Gauge("place.array_cells").Set(float64(p.ArrayCells()))
	ts.Metrics.Gauge("place.utilization").Set(p.Utilization())

	doneFTI := ts.Stage("fti")
	r := dmfb.ComputeFTI(p)
	doneFTI()
	fmt.Print(dmfb.RenderPlacement(p))
	fmt.Printf("area: %d cells = %.2f mm2 at %.1f mm pitch\n",
		p.ArrayCells(), dmfb.AreaMM2(p.ArrayCells()), dmfb.CellPitchMM)
	fmt.Println(r)
	if *coverage {
		fmt.Print(dmfb.RenderCoverage(r))
	}

	if *out != "" {
		data, err := dmfb.MarshalPlacement(p)
		if err == nil {
			err = os.WriteFile(*out, data, 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-place:", err)
			return 1
		}
		fmt.Println("placement written to", *out)
	}
	if *svg != "" {
		if err := os.WriteFile(*svg, []byte(dmfb.RenderPlacementSVG(p, 24)), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-place:", err)
			return 1
		}
		fmt.Println("SVG written to", *svg)
	}
	return 0
}

func loadSchedule(path string) (*dmfb.Schedule, error) {
	if path == "" {
		return dmfb.PCRSchedule()
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return dmfb.UnmarshalSchedule(data, dmfb.Table1Library())
}
