// dmfb-campaign runs large randomized fault-injection campaigns
// against the PCR case-study placement: place once, then inject
// faults trial after trial and attempt recovery via partial
// reconfiguration (Section 5.1), optionally falling back to full
// re-placement. Trials run across a worker pool with per-trial
// deterministic RNG streams, so the same seed produces the same
// summary at any worker count, and campaigns checkpoint to a JSONL
// file so an interrupted run resumes exactly where it stopped. The
// campaign definition lives in dispatch.Spec, shared with the
// distributed dispatcher — a dmfb-dispatch fleet produces summaries
// byte-identical to this tool's (compare with -summary).
//
// Usage:
//
//	dmfb-campaign -trials 10000                      # 2-fault campaign, all cores
//	dmfb-campaign -mode single -trials 100000        # uniform single faults
//	dmfb-campaign -mode yield -defect-prob 0.02 -full        # uniform defect yield
//	dmfb-campaign -mode yield -defect-model clustered        # Poisson-cluster defects
//	dmfb-campaign -mode yield -defect-model file -defect-file die.map
//	dmfb-campaign -mode yield -spares 2 -ladder      # space redundancy + design-time ladder
//	dmfb-campaign -mode assay -recovery ladder       # full simulation per trial
//	dmfb-campaign -trials 1e6 -checkpoint run.jsonl  # interruptible
//	dmfb-campaign -trials 1e6 -checkpoint run.jsonl -resume
//	dmfb-campaign -summary sum.json                  # deterministic summary bytes
//	dmfb-campaign -trace t.jsonl -metrics m.json     # observability
//	dmfb-campaign -ops :9090                         # live /metrics + /progress
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmfb/internal/campaign"
	"dmfb/internal/defect"
	"dmfb/internal/dispatch"
	"dmfb/internal/stats"
	"dmfb/internal/telemetry/cliflags"
)

// output is the machine-readable record of one campaign run. For
// -mode assay the summary's values quantiles are the per-trial ladder
// depth (the deepest recovery level any fault forced).
type output struct {
	Summary      campaign.Summary `json:"summary"`
	PredictedFTI float64          `json:"predicted_fti"`
	RecoveryMode string           `json:"recovery_mode,omitempty"`
	Workers      int              `json:"workers"`
	Resumed      int              `json:"resumed,omitempty"`
	ElapsedMS    float64          `json:"elapsed_ms"`
	TrialMS      stats.Summary    `json:"trial_ms"`
}

func main() {
	var (
		sp      = dispatch.Spec{}
		workers = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		timeout = flag.Duration("timeout", 0, "per-trial timeout (0 = none; breaks determinism when it fires)")
		ckpt    = flag.String("checkpoint", "", "JSONL checkpoint `file` (appended per trial)")
		resume  = flag.Bool("resume", false, "resume a previous run from -checkpoint")
		jsonOut = flag.String("json", "", "write machine-readable results to `file`")
		sumOut  = flag.String("summary", "", "write the deterministic summary JSON to `file` (byte-identical to a dmfb-dispatch fleet's)")
		quiet   = flag.Bool("quiet", false, "suppress progress output")
	)
	flag.StringVar(&sp.Mode, "mode", "multi", "campaign kind: single | multi | yield | exhaustive | assay")
	flag.IntVar(&sp.Trials, "trials", 10000, "number of trials (ignored for -mode exhaustive)")
	flag.Int64Var(&sp.Seed, "seed", 1, "campaign seed; same seed => same summary at any worker count")
	flag.IntVar(&sp.K, "k", 2, "faults per trial in -mode multi")
	flag.Float64Var(&sp.Q, "q", 0.01, "mean per-cell defect probability in -mode yield (alias of -defect-prob)")
	flag.Float64Var(&sp.Q, "defect-prob", 0.01, "mean per-cell defect probability in -mode yield")
	flag.StringVar(&sp.DefectModel, "defect-model", "uniform", "defect map model in -mode yield: uniform | clustered | file")
	flag.Float64Var(&sp.ClusterSize, "cluster-size", 4, "mean defects per cluster for -defect-model clustered")
	flag.IntVar(&sp.ClusterRadius, "cluster-radius", 2, "cluster scatter radius in cells for -defect-model clustered")
	defectFile := flag.String("defect-file", "", "defect map `file` for -defect-model file ('.' good, 'X' defective)")
	flag.IntVar(&sp.Spares, "spares", 0, "interstitial spare lines to thread through the placement (space redundancy)")
	flag.BoolVar(&sp.Ladder, "ladder", false, "yield trials use the design-time local-reconfiguration ladder instead of the runtime recovery loop")
	flag.BoolVar(&sp.Full, "full", false, "fall back to full re-placement when partial reconfiguration fails")
	flag.StringVar(&sp.Recovery, "recovery", "l1", "fault response in -mode assay: l1 | ladder | off")
	flag.Float64Var(&sp.Transient, "transient", 0, "probability a fault is transient in -mode assay")
	flag.Int64Var(&sp.PlaceSeed, "place-seed", 2, "annealing seed of the PCR placement under test")
	os.Exit(cliflags.Main("dmfb-campaign", func(ts *cliflags.Session) int {
		return run(ts, params{
			spec: sp, defectFile: *defectFile, workers: *workers, timeout: *timeout,
			ckpt: *ckpt, resume: *resume, jsonOut: *jsonOut, sumOut: *sumOut,
			quiet: *quiet,
		})
	}))
}

// params carries the parsed flag values into run.
type params struct {
	spec                  dispatch.Spec
	workers               int
	resume, quiet         bool
	timeout               time.Duration
	ckpt, jsonOut, sumOut string
	defectFile            string
}

// validateDefectFlags checks the raw yield-mode flag values before
// Spec.Normalized papers over them — Normalized maps a zero defect
// probability to the 0.01 default, which used to let an explicit
// "-defect-prob 0" (or 1, or anything out of range combined with a
// defaulted model) run a campaign the user never asked for. Strict
// validation here turns every bad -defect-model/-defect-prob
// combination into exit 1 with a usage hint.
func validateDefectFlags(sp dispatch.Spec, defectFile string) error {
	switch sp.DefectModel {
	case "", defect.ModelUniform, defect.ModelClustered:
		if defectFile != "" {
			return fmt.Errorf("-defect-file is only meaningful with -defect-model file, got %q", sp.DefectModel)
		}
		if sp.Q <= 0 || sp.Q >= 1 {
			return fmt.Errorf("defect probability %g outside (0,1)", sp.Q)
		}
		if sp.DefectModel == defect.ModelClustered {
			if sp.ClusterSize < 1 || sp.ClusterSize > 64 {
				return fmt.Errorf("-cluster-size %g outside [1,64]", sp.ClusterSize)
			}
			if sp.ClusterRadius < 0 || sp.ClusterRadius > 64 {
				return fmt.Errorf("-cluster-radius %d outside [0,64]", sp.ClusterRadius)
			}
		}
	case defect.ModelFile:
		if defectFile == "" {
			return fmt.Errorf("-defect-model file needs -defect-file")
		}
	default:
		return fmt.Errorf("unknown -defect-model %q (want uniform, clustered or file)", sp.DefectModel)
	}
	return nil
}

func run(ts *cliflags.Session, pr params) int {
	if pr.spec.Mode == "yield" {
		if err := validateDefectFlags(pr.spec, pr.defectFile); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-campaign:", err)
			fmt.Fprintln(os.Stderr, "usage: -mode yield takes -defect-model uniform|clustered|file with -defect-prob in (0,1); clustered adds -cluster-size/-cluster-radius, file adds -defect-file")
			return 1
		}
		if pr.defectFile != "" {
			raw, err := os.ReadFile(pr.defectFile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "dmfb-campaign:", err)
				return 1
			}
			if _, err := defect.ParseMap(string(raw)); err != nil {
				fmt.Fprintln(os.Stderr, "dmfb-campaign:", err)
				fmt.Fprintln(os.Stderr, "usage: a defect map is rows of '.' (good) and 'X' (defective); '#' lines are comments")
				return 1
			}
			pr.spec.DefectMap = string(raw)
		}
	}
	sp := pr.spec.Normalized()
	if err := sp.Validate(false); err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-campaign:", err)
		return 2
	}

	built, err := sp.Build(context.Background(), dispatch.BuildOptions{
		Tool: "dmfb-campaign", Tracer: ts.Tracer, Metrics: ts.Metrics,
	})
	if err != nil {
		return ts.Fail(err)
	}
	name := sp.Name()
	fmt.Printf("placement: PCR, %d modules on %dx%d array, predicted FTI %.4f\n",
		built.Modules, built.ArrayW, built.ArrayH, built.PredictedFTI)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The first signal cancels ctx and the campaign drains gracefully
	// (deferred ts.Close flushes everything); a second signal while it
	// drains flushes partial telemetry and hard-exits.
	go func() {
		<-ctx.Done()
		ts.FlushOnSignal(130, os.Interrupt, syscall.SIGTERM)
	}()

	cfg := campaign.Config{
		Name:         name,
		Trials:       built.Trials,
		Workers:      pr.workers,
		Seed:         sp.Seed,
		TrialTimeout: pr.timeout,
		Checkpoint:   pr.ckpt,
		Resume:       pr.resume,
		// The fingerprint pins the trial-defining parameters in the
		// checkpoint header, so -resume against a checkpoint written
		// under a different configuration fails instead of merging
		// incompatible trial streams.
		Fingerprint: sp.Fingerprint(),
		Metrics:     ts.Metrics,
		Tracer:      ts.Tracer,
	}
	if ts.Ops() != nil {
		tracker := campaign.NewProgressTracker(name, built.Trials)
		cfg.Tracker = tracker
		ts.SetProgress(func() any { return tracker.Snapshot() })
	}
	if !pr.quiet {
		lastPct := -1
		cfg.Progress = func(done, total int) {
			if pct := done * 100 / total; pct != lastPct && pct%5 == 0 {
				lastPct = pct
				fmt.Fprintf(os.Stderr, "\r%3d%% (%d/%d trials)", pct, done, total)
			}
		}
	}

	rep, runErr := campaign.Run(ctx, cfg, built.Fn)
	if !pr.quiet {
		fmt.Fprintln(os.Stderr)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "dmfb-campaign:", runErr)
		if ctx.Err() != nil && pr.ckpt != "" {
			fmt.Fprintf(os.Stderr, "dmfb-campaign: %d trials checkpointed; rerun with -resume to continue\n",
				rep.Summary.Trials)
		}
		return 1
	}

	s := rep.Summary
	fmt.Printf("%s\n", s)
	fmt.Printf("survival %.4f, 95%% Wilson CI [%.4f, %.4f] (predicted FTI %.4f)\n",
		s.SurvivalRate, s.Wilson95Lo, s.Wilson95Hi, built.PredictedFTI)
	if s.Values != nil {
		label := "values"
		if sp.Mode == "assay" {
			label = "ladder depth"
		}
		fmt.Printf("%s: mean %.3f, median %.1f, p95 %.1f, max %.1f\n",
			label, s.Values.Mean, s.Values.Median, s.Values.P95, s.Values.Max)
	}
	fmt.Printf("%d workers, %d trials in %.1fms (trial p50 %.3f / p95 %.3f / p99 %.3f ms)",
		rep.Workers, s.Trials, float64(rep.Elapsed.Microseconds())/1000,
		rep.TrialMS.Median, rep.TrialMS.P95, rep.TrialMS.P99)
	if rep.Resumed > 0 {
		fmt.Printf(", %d replayed from checkpoint", rep.Resumed)
	}
	fmt.Println()

	if pr.sumOut != "" {
		// The exact bytes a dispatcher serves from /v1/campaigns/{id}/summary.
		raw, err := s.MarshalDeterministic()
		if err == nil {
			err = os.WriteFile(pr.sumOut, append(raw, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-campaign:", err)
			return 1
		}
	}
	if pr.jsonOut != "" {
		out := output{
			Summary:      s,
			PredictedFTI: built.PredictedFTI,
			RecoveryMode: recoveryModeName(sp.Mode, sp.Recovery),
			Workers:      rep.Workers,
			Resumed:      rep.Resumed,
			ElapsedMS:    float64(rep.Elapsed.Microseconds()) / 1000,
			TrialMS:      rep.TrialMS,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(pr.jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-campaign:", err)
			return 1
		}
	}
	return 0
}

// recoveryModeName records the recovery mode in JSON output for assay
// campaigns only (the other modes do not run the simulator).
func recoveryModeName(mode, recovery string) string {
	if mode == "assay" {
		return recovery
	}
	return ""
}
