// dmfb-campaign runs large randomized fault-injection campaigns
// against the PCR case-study placement: place once, then inject
// faults trial after trial and attempt recovery via partial
// reconfiguration (Section 5.1), optionally falling back to full
// re-placement. Trials run across a worker pool with per-trial
// deterministic RNG streams, so the same seed produces the same
// summary at any worker count, and campaigns checkpoint to a JSONL
// file so an interrupted run resumes exactly where it stopped.
//
// Usage:
//
//	dmfb-campaign -trials 10000                      # 2-fault campaign, all cores
//	dmfb-campaign -mode single -trials 100000        # uniform single faults
//	dmfb-campaign -mode yield -q 0.02 -full          # defect-density yield
//	dmfb-campaign -mode assay -recovery ladder       # full simulation per trial
//	dmfb-campaign -trials 1e6 -checkpoint run.jsonl  # interruptible
//	dmfb-campaign -trials 1e6 -checkpoint run.jsonl -resume
//	dmfb-campaign -trace t.jsonl -metrics m.json     # observability
//	dmfb-campaign -ops :9090                         # live /metrics + /progress
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dmfb/internal/campaign"
	"dmfb/internal/core"
	"dmfb/internal/faultsim"
	"dmfb/internal/fti"
	"dmfb/internal/pipeline"
	"dmfb/internal/place"
	"dmfb/internal/schedule"
	"dmfb/internal/sim"
	"dmfb/internal/stats"
	"dmfb/internal/telemetry/cliflags"
)

// output is the machine-readable record of one campaign run. For
// -mode assay the summary's values quantiles are the per-trial ladder
// depth (the deepest recovery level any fault forced).
type output struct {
	Summary      campaign.Summary `json:"summary"`
	PredictedFTI float64          `json:"predicted_fti"`
	RecoveryMode string           `json:"recovery_mode,omitempty"`
	Workers      int              `json:"workers"`
	Resumed      int              `json:"resumed,omitempty"`
	ElapsedMS    float64          `json:"elapsed_ms"`
	TrialMS      stats.Summary    `json:"trial_ms"`
}

func main() {
	var (
		mode      = flag.String("mode", "multi", "campaign kind: single | multi | yield | exhaustive | assay")
		trials    = flag.Int("trials", 10000, "number of trials (ignored for -mode exhaustive)")
		workers   = flag.Int("workers", 0, "worker goroutines (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", 1, "campaign seed; same seed => same summary at any worker count")
		k         = flag.Int("k", 2, "faults per trial in -mode multi")
		q         = flag.Float64("q", 0.01, "per-cell defect probability in -mode yield")
		full      = flag.Bool("full", false, "fall back to full re-placement when partial reconfiguration fails")
		recovery  = flag.String("recovery", "l1", "fault response in -mode assay: l1 | ladder | off")
		transient = flag.Float64("transient", 0, "probability a fault is transient in -mode assay")
		timeout   = flag.Duration("timeout", 0, "per-trial timeout (0 = none; breaks determinism when it fires)")
		ckpt      = flag.String("checkpoint", "", "JSONL checkpoint `file` (appended per trial)")
		resume    = flag.Bool("resume", false, "resume a previous run from -checkpoint")
		jsonOut   = flag.String("json", "", "write machine-readable results to `file`")
		placeSeed = flag.Int64("place-seed", 2, "annealing seed of the PCR placement under test")
		quiet     = flag.Bool("quiet", false, "suppress progress output")
	)
	os.Exit(cliflags.Main("dmfb-campaign", func(ts *cliflags.Session) int {
		return run(ts, params{
			mode: *mode, trials: *trials, workers: *workers, seed: *seed,
			k: *k, q: *q, full: *full, recovery: *recovery, transient: *transient,
			timeout: *timeout, ckpt: *ckpt, resume: *resume, jsonOut: *jsonOut,
			placeSeed: *placeSeed, quiet: *quiet,
		})
	}))
}

// params carries the parsed flag values into run.
type params struct {
	mode                string
	trials, workers, k  int
	seed, placeSeed     int64
	q, transient        float64
	full, resume, quiet bool
	recovery            string
	timeout             time.Duration
	ckpt, jsonOut       string
}

func run(ts *cliflags.Session, pr params) int {
	mode, trials, seed := &pr.mode, &pr.trials, &pr.seed
	workers, k, q, full := &pr.workers, &pr.k, &pr.q, &pr.full
	recovery, transient, timeout := &pr.recovery, &pr.transient, &pr.timeout
	ckpt, resume, jsonOut, quiet := &pr.ckpt, &pr.resume, &pr.jsonOut, &pr.quiet

	sched, p, err := pcrPlacement(context.Background(), pr.placeSeed, ts)
	if err != nil {
		return ts.Fail(err)
	}
	array := p.BoundingBox()
	predicted := fti.Compute(p).FTI()
	fmt.Printf("placement: PCR, %d modules on %dx%d array, predicted FTI %.4f\n",
		len(p.Modules), array.W, array.H, predicted)

	heavy := core.Options{Seed: 3, ItersPerModule: 40, WindowPatience: 2}
	var fn campaign.TrialFunc
	name := *mode
	switch *mode {
	case "single":
		fn = faultsim.SingleFaultTrial(p)
	case "multi":
		fn = faultsim.MultiFaultTrial(p, *k, *full, heavy)
		name = fmt.Sprintf("multi-k%d", *k)
	case "yield":
		fn = faultsim.YieldTrial(p, *q, *full, heavy)
		name = fmt.Sprintf("yield-q%g", *q)
	case "exhaustive":
		fn = faultsim.ExhaustiveTrial(p)
		*trials = array.Cells()
	case "assay":
		rm, err := sim.ParseRecoveryMode(*recovery)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-campaign:", err)
			return 2
		}
		fn = faultsim.AssayTrial(sched, p, *k, rm, *transient)
		name = fmt.Sprintf("assay-k%d-%s", *k, rm)
	default:
		fmt.Fprintf(os.Stderr, "dmfb-campaign: unknown -mode %q\n", *mode)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// The first signal cancels ctx and the campaign drains gracefully
	// (deferred ts.Close flushes everything); a second signal while it
	// drains flushes partial telemetry and hard-exits.
	go func() {
		<-ctx.Done()
		ts.FlushOnSignal(130, os.Interrupt, syscall.SIGTERM)
	}()

	cfg := campaign.Config{
		Name:         name,
		Trials:       *trials,
		Workers:      *workers,
		Seed:         *seed,
		TrialTimeout: *timeout,
		Checkpoint:   *ckpt,
		Resume:       *resume,
		Metrics:      ts.Metrics,
		Tracer:       ts.Tracer,
	}
	if ts.Ops() != nil {
		tracker := campaign.NewProgressTracker(name, *trials)
		cfg.Tracker = tracker
		ts.SetProgress(func() any { return tracker.Snapshot() })
	}
	if !*quiet {
		lastPct := -1
		cfg.Progress = func(done, total int) {
			if pct := done * 100 / total; pct != lastPct && pct%5 == 0 {
				lastPct = pct
				fmt.Fprintf(os.Stderr, "\r%3d%% (%d/%d trials)", pct, done, total)
			}
		}
	}

	rep, runErr := campaign.Run(ctx, cfg, fn)
	if !*quiet {
		fmt.Fprintln(os.Stderr)
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "dmfb-campaign:", runErr)
		if ctx.Err() != nil && *ckpt != "" {
			fmt.Fprintf(os.Stderr, "dmfb-campaign: %d trials checkpointed; rerun with -resume to continue\n",
				rep.Summary.Trials)
		}
		return 1
	}

	s := rep.Summary
	fmt.Printf("%s\n", s)
	fmt.Printf("survival %.4f, 95%% Wilson CI [%.4f, %.4f] (predicted FTI %.4f)\n",
		s.SurvivalRate, s.Wilson95Lo, s.Wilson95Hi, predicted)
	if s.Values != nil {
		label := "values"
		if *mode == "assay" {
			label = "ladder depth"
		}
		fmt.Printf("%s: mean %.3f, median %.1f, p95 %.1f, max %.1f\n",
			label, s.Values.Mean, s.Values.Median, s.Values.P95, s.Values.Max)
	}
	fmt.Printf("%d workers, %d trials in %.1fms (trial p50 %.3f / p95 %.3f / p99 %.3f ms)",
		rep.Workers, s.Trials, float64(rep.Elapsed.Microseconds())/1000,
		rep.TrialMS.Median, rep.TrialMS.P95, rep.TrialMS.P99)
	if rep.Resumed > 0 {
		fmt.Printf(", %d replayed from checkpoint", rep.Resumed)
	}
	fmt.Println()

	if *jsonOut != "" {
		out := output{
			Summary:      s,
			PredictedFTI: predicted,
			RecoveryMode: recoveryModeName(*mode, *recovery),
			Workers:      rep.Workers,
			Resumed:      rep.Resumed,
			ElapsedMS:    float64(rep.Elapsed.Microseconds()) / 1000,
			TrialMS:      rep.TrialMS,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err == nil {
			err = os.WriteFile(*jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-campaign:", err)
			return 1
		}
	}
	return 0
}

// recoveryModeName records the recovery mode in JSON output for assay
// campaigns only (the other modes do not run the simulator).
func recoveryModeName(mode, recovery string) string {
	if mode == "assay" {
		return recovery
	}
	return ""
}

// pcrPlacement synthesises and places the PCR case study with
// experiment-grade area-minimal annealing.
func pcrPlacement(ctx context.Context, seed int64, ts *cliflags.Session) (*schedule.Schedule, *place.Placement, error) {
	res, err := pipeline.Run(ctx, pipeline.Request{
		Tool:  "dmfb-campaign",
		Synth: &pipeline.SynthSpec{Assay: "pcr"},
		Place: &pipeline.PlaceSpec{
			Placer:  "sa",
			Options: core.Options{Seed: seed, ItersPerModule: 120, WindowPatience: 4},
		},
		Tracer:  ts.Tracer,
		Metrics: ts.Metrics,
	})
	return res.Schedule, res.Placement, err
}
