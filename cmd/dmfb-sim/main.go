// dmfb-sim executes an assay on the chip simulator, optionally
// injecting cell faults mid-run to exercise on-line partial
// reconfiguration (paper Section 5.1).
//
// Fault syntax: -fault t,x,y injects a permanent fault at schedule
// second t in placed-array cell (x, y); -fault t,x,y,p makes it
// transient, healing after p failing re-test probes. Repeatable.
//
// The -recovery flag selects the fault response: "l1" (default) is
// the paper's plain partial reconfiguration, "ladder" escalates
// through downgrade, defragmentation and graceful degradation, "off"
// disables reconfiguration. A degraded run (some operations
// abandoned, surviving products delivered) exits with status 2.
//
// Usage:
//
//	dmfb-sim                                   # fault-free PCR on the SA placement
//	dmfb-sim -placer twostage -fault 1,2,3 -verbose
//	dmfb-sim -recovery ladder -fault 0,2,3 -fault 4,0,1,2
//	dmfb-sim -schedule s.json -placement p.json -fault 0,0,0
//	dmfb-sim -trace trace.jsonl -metrics metrics.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"syscall"

	"dmfb"
	"dmfb/internal/telemetry/cliflags"
)

type faultList []dmfb.FaultInjection

func (f *faultList) String() string { return fmt.Sprint(*f) }

func (f *faultList) Set(s string) error {
	var t, x, y, probes int
	if n, err := fmt.Sscanf(s, "%d,%d,%d,%d", &t, &x, &y, &probes); n < 3 {
		if _, err = fmt.Sscanf(s, "%d,%d,%d", &t, &x, &y); err != nil {
			return fmt.Errorf("want t,x,y or t,x,y,probes: %v", err)
		}
		probes = 0
	}
	*f = append(*f, dmfb.FaultInjection{
		TimeSec:         t,
		Cell:            dmfb.ArrayCell(dmfb.SimOptions{}, dmfb.Point{X: x, Y: y}),
		TransientProbes: probes,
	})
	return nil
}

func main() { os.Exit(run()) }

func run() int {
	var faults faultList
	var (
		schedFile = flag.String("schedule", "", "schedule JSON (default: built-in PCR)")
		placeFile = flag.String("placement", "", "placement JSON (default: place with -placer)")
		placer    = flag.String("placer", "sa", "placer when no -placement given: greedy | sa | twostage")
		beta      = flag.Float64("beta", 30, "fault-tolerance weight for twostage")
		seed      = flag.Int64("seed", 1, "annealing seed")
		recovery  = flag.String("recovery", "l1", "fault response: l1 | ladder | off")
		verbose   = flag.Bool("verbose", false, "log every droplet action")
	)
	flag.Var(&faults, "fault", "inject fault: t,x,y (repeatable; x,y in placed-array cells)")
	obs := cliflags.Register()
	flag.Parse()

	ts, err := obs.Start("dmfb-sim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-sim:", err)
		return 1
	}
	defer func() {
		if err := ts.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-sim:", err)
		}
	}()
	// The simulator has no cancellation path, so ^C mid-run would
	// otherwise drop the trace and metrics collected so far.
	ts.FlushOnSignal(130, os.Interrupt, syscall.SIGTERM)

	mode, err := dmfb.ParseRecoveryMode(*recovery)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-sim:", err)
		return 1
	}

	donePlace := ts.Stage("place")
	sched, p, err := load(*schedFile, *placeFile, *placer, *beta, *seed, ts)
	donePlace()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-sim:", err)
		return 1
	}

	fmt.Print(dmfb.RenderPlacement(p))
	doneSim := ts.Stage("sim")
	res := dmfb.Simulate(sched, p, dmfb.SimOptions{
		Trace:        *verbose,
		Recovery:     mode,
		RecoverySeed: *seed,
		Telemetry:    ts.Tracer,
		Metrics:      ts.Metrics,
	}, faults...)
	doneSim()
	for _, e := range res.Events {
		fmt.Println(" ", e)
	}
	if res.Outcome == dmfb.OutcomeFailed {
		fmt.Printf("ASSAY FAILED: %s\n", res.FailReason)
		return 1
	}
	fmt.Printf("assay %s: %d s of operations + %d transport steps (%d ms)\n",
		res.Outcome, res.MakespanSec, res.TransportSteps, res.TransportMS)
	fmt.Printf("products: %s\n", strings.Join(res.ProductFluids, "; "))
	if len(res.Relocations) > 0 {
		fmt.Printf("partial reconfigurations: %d\n", len(res.Relocations))
		for _, r := range res.Relocations {
			fmt.Println(" ", r)
		}
	}
	printRecovery(res.Recovery)
	if res.Outcome == dmfb.OutcomeDegraded {
		return 2
	}
	return 0
}

// printRecovery summarises the run's fault handling, if any.
func printRecovery(r dmfb.SimRecoveryReport) {
	if r.Invocations == 0 && r.TransientFaults == 0 {
		return
	}
	fmt.Printf("recovery: %d ladder invocation(s), deepest level %s, %d transient fault(s) healed\n",
		r.Invocations, r.DeepestLevel, r.TransientFaults)
	if r.StretchSec != 0 {
		fmt.Printf("  schedule stretched by %d s by module downgrades\n", r.StretchSec)
	}
	for _, op := range r.AbandonedOps {
		fmt.Printf("  abandoned: %s\n", op)
	}
}

func load(schedFile, placeFile, placer string, beta float64, seed int64,
	ts *cliflags.Session) (*dmfb.Schedule, *dmfb.Placement, error) {

	var sched *dmfb.Schedule
	var err error
	if schedFile == "" {
		sched, err = dmfb.PCRSchedule()
	} else {
		var data []byte
		if data, err = os.ReadFile(schedFile); err == nil {
			sched, err = dmfb.UnmarshalSchedule(data, dmfb.Table1Library())
		}
	}
	if err != nil {
		return nil, nil, err
	}

	if placeFile != "" {
		data, err := os.ReadFile(placeFile)
		if err != nil {
			return nil, nil, err
		}
		p, err := dmfb.UnmarshalPlacement(data)
		return sched, p, err
	}

	prob := dmfb.PlacementProblemOf(sched)
	opts := dmfb.PlacerOptions{
		Seed:     seed,
		Observer: dmfb.ObserveAnneal(ts.Tracer, ts.Metrics, "place"),
	}
	switch placer {
	case "greedy":
		p, err := dmfb.PlaceGreedy(prob, true)
		return sched, p, err
	case "sa":
		p, _, err := dmfb.PlaceAnneal(prob, opts)
		return sched, p, err
	case "twostage":
		res, err := dmfb.PlaceFaultTolerant(prob, opts, dmfb.FTOptions{Beta: beta})
		if err != nil {
			return nil, nil, err
		}
		return sched, res.Final, nil
	}
	return nil, nil, fmt.Errorf("unknown placer %q", placer)
}
