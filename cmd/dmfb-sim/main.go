// dmfb-sim executes an assay on the chip simulator, optionally
// injecting cell faults mid-run to exercise on-line partial
// reconfiguration (paper Section 5.1).
//
// Fault syntax: -fault t,x,y injects a fault at schedule second t in
// placed-array cell (x, y); repeatable.
//
// Usage:
//
//	dmfb-sim                                   # fault-free PCR on the SA placement
//	dmfb-sim -placer twostage -fault 1,2,3 -verbose
//	dmfb-sim -schedule s.json -placement p.json -fault 0,0,0
//	dmfb-sim -trace trace.jsonl -metrics metrics.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"dmfb"
	"dmfb/internal/telemetry/cliflags"
)

type faultList []dmfb.FaultInjection

func (f *faultList) String() string { return fmt.Sprint(*f) }

func (f *faultList) Set(s string) error {
	var t, x, y int
	if _, err := fmt.Sscanf(s, "%d,%d,%d", &t, &x, &y); err != nil {
		return fmt.Errorf("want t,x,y: %v", err)
	}
	*f = append(*f, dmfb.FaultInjection{
		TimeSec: t,
		Cell:    dmfb.ArrayCell(dmfb.SimOptions{}, dmfb.Point{X: x, Y: y}),
	})
	return nil
}

func main() { os.Exit(run()) }

func run() int {
	var faults faultList
	var (
		schedFile = flag.String("schedule", "", "schedule JSON (default: built-in PCR)")
		placeFile = flag.String("placement", "", "placement JSON (default: place with -placer)")
		placer    = flag.String("placer", "sa", "placer when no -placement given: greedy | sa | twostage")
		beta      = flag.Float64("beta", 30, "fault-tolerance weight for twostage")
		seed      = flag.Int64("seed", 1, "annealing seed")
		verbose   = flag.Bool("verbose", false, "log every droplet action")
	)
	flag.Var(&faults, "fault", "inject fault: t,x,y (repeatable; x,y in placed-array cells)")
	obs := cliflags.Register()
	flag.Parse()

	ts, err := obs.Start("dmfb-sim")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-sim:", err)
		return 1
	}
	defer func() {
		if err := ts.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-sim:", err)
		}
	}()

	donePlace := ts.Stage("place")
	sched, p, err := load(*schedFile, *placeFile, *placer, *beta, *seed, ts)
	donePlace()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-sim:", err)
		return 1
	}

	fmt.Print(dmfb.RenderPlacement(p))
	doneSim := ts.Stage("sim")
	res := dmfb.Simulate(sched, p, dmfb.SimOptions{
		Trace:     *verbose,
		Telemetry: ts.Tracer,
		Metrics:   ts.Metrics,
	}, faults...)
	doneSim()
	for _, e := range res.Events {
		fmt.Println(" ", e)
	}
	if !res.Completed {
		fmt.Printf("ASSAY FAILED: %s\n", res.FailReason)
		return 1
	}
	fmt.Printf("assay completed: %d s of operations + %d transport steps (%d ms)\n",
		res.MakespanSec, res.TransportSteps, res.TransportMS)
	fmt.Printf("products: %s\n", strings.Join(res.ProductFluids, "; "))
	if len(res.Relocations) > 0 {
		fmt.Printf("partial reconfigurations: %d\n", len(res.Relocations))
		for _, r := range res.Relocations {
			fmt.Println(" ", r)
		}
	}
	return 0
}

func load(schedFile, placeFile, placer string, beta float64, seed int64,
	ts *cliflags.Session) (*dmfb.Schedule, *dmfb.Placement, error) {

	var sched *dmfb.Schedule
	var err error
	if schedFile == "" {
		sched, err = dmfb.PCRSchedule()
	} else {
		var data []byte
		if data, err = os.ReadFile(schedFile); err == nil {
			sched, err = dmfb.UnmarshalSchedule(data, dmfb.Table1Library())
		}
	}
	if err != nil {
		return nil, nil, err
	}

	if placeFile != "" {
		data, err := os.ReadFile(placeFile)
		if err != nil {
			return nil, nil, err
		}
		p, err := dmfb.UnmarshalPlacement(data)
		return sched, p, err
	}

	prob := dmfb.PlacementProblemOf(sched)
	opts := dmfb.PlacerOptions{
		Seed:     seed,
		Observer: dmfb.ObserveAnneal(ts.Tracer, ts.Metrics, "place"),
	}
	switch placer {
	case "greedy":
		p, err := dmfb.PlaceGreedy(prob, true)
		return sched, p, err
	case "sa":
		p, _, err := dmfb.PlaceAnneal(prob, opts)
		return sched, p, err
	case "twostage":
		res, err := dmfb.PlaceFaultTolerant(prob, opts, dmfb.FTOptions{Beta: beta})
		if err != nil {
			return nil, nil, err
		}
		return sched, res.Final, nil
	}
	return nil, nil, fmt.Errorf("unknown placer %q", placer)
}
