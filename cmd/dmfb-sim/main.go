// dmfb-sim executes an assay on the chip simulator, optionally
// injecting cell faults mid-run to exercise on-line partial
// reconfiguration (paper Section 5.1).
//
// Fault syntax: -fault t,x,y injects a permanent fault at schedule
// second t in placed-array cell (x, y); -fault t,x,y,p makes it
// transient, healing after p failing re-test probes. Repeatable.
//
// The -recovery flag selects the fault response: "l1" (default) is
// the paper's plain partial reconfiguration, "ladder" escalates
// through downgrade, defragmentation and graceful degradation, "off"
// disables reconfiguration. A degraded run (some operations
// abandoned, surviving products delivered) exits with status 2.
//
// Usage:
//
//	dmfb-sim                                   # fault-free PCR on the SA placement
//	dmfb-sim -placer twostage -fault 1,2,3 -verbose
//	dmfb-sim -recovery ladder -fault 0,2,3 -fault 4,0,1,2
//	dmfb-sim -schedule s.json -placement p.json -fault 0,0,0
//	dmfb-sim -trace trace.jsonl -metrics metrics.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"syscall"

	"dmfb"
	"dmfb/internal/pipeline"
	"dmfb/internal/telemetry/cliflags"
)

type faultList []dmfb.FaultInjection

func (f *faultList) String() string { return fmt.Sprint(*f) }

func (f *faultList) Set(s string) error {
	var t, x, y, probes int
	if n, err := fmt.Sscanf(s, "%d,%d,%d,%d", &t, &x, &y, &probes); n < 3 {
		if _, err = fmt.Sscanf(s, "%d,%d,%d", &t, &x, &y); err != nil {
			return fmt.Errorf("want t,x,y or t,x,y,probes: %v", err)
		}
		probes = 0
	}
	*f = append(*f, dmfb.FaultInjection{
		TimeSec:         t,
		Cell:            dmfb.ArrayCell(dmfb.SimOptions{}, dmfb.Point{X: x, Y: y}),
		TransientProbes: probes,
	})
	return nil
}

func main() {
	var faults faultList
	var (
		schedFile = flag.String("schedule", "", "schedule JSON (default: built-in PCR)")
		placeFile = flag.String("placement", "", "placement JSON (default: place with -placer)")
		placer    = flag.String("placer", "sa", "placer when no -placement given: greedy | sa | twostage")
		beta      = flag.Float64("beta", 30, "fault-tolerance weight for twostage")
		seed      = flag.Int64("seed", 1, "annealing seed")
		recovery  = flag.String("recovery", "l1", "fault response: l1 | ladder | off")
		verbose   = flag.Bool("verbose", false, "log every droplet action")
	)
	flag.Var(&faults, "fault", "inject fault: t,x,y (repeatable; x,y in placed-array cells)")
	os.Exit(cliflags.Main("dmfb-sim", func(ts *cliflags.Session) int {
		// The simulator has no cancellation path, so ^C mid-run would
		// otherwise drop the trace and metrics collected so far.
		ts.FlushOnSignal(130, os.Interrupt, syscall.SIGTERM)

		mode, err := dmfb.ParseRecoveryMode(*recovery)
		if err != nil {
			return ts.Fail(err)
		}

		req := pipeline.Request{
			Tool: "dmfb-sim",
			Sim: &pipeline.SimSpec{
				Options: dmfb.SimOptions{
					Trace:        *verbose,
					Recovery:     mode,
					RecoverySeed: *seed,
				},
				Faults: faults,
			},
			Tracer:  ts.Tracer,
			Metrics: ts.Metrics,
		}
		if req.Schedule, err = pipeline.LoadSchedule(*schedFile, nil, os.ReadFile); err != nil {
			return ts.Fail(err)
		}
		if *placeFile != "" {
			if req.Placement, err = pipeline.LoadPlacement(*placeFile, os.ReadFile); err != nil {
				return ts.Fail(err)
			}
		} else {
			req.Place = &pipeline.PlaceSpec{
				Placer:  *placer,
				Options: dmfb.PlacerOptions{Seed: *seed},
				FT:      dmfb.FTOptions{Beta: *beta},
			}
		}

		res, err := pipeline.Run(context.Background(), req)
		if err != nil {
			return ts.Fail(err)
		}

		fmt.Print(dmfb.RenderPlacement(res.Placement))
		sr := *res.Sim
		for _, e := range sr.Events {
			fmt.Println(" ", e)
		}
		if sr.Outcome == dmfb.OutcomeFailed {
			fmt.Printf("ASSAY FAILED: %s\n", sr.FailReason)
			return 1
		}
		fmt.Printf("assay %s: %d s of operations + %d transport steps (%d ms)\n",
			sr.Outcome, sr.MakespanSec, sr.TransportSteps, sr.TransportMS)
		fmt.Printf("products: %s\n", strings.Join(sr.ProductFluids, "; "))
		if len(sr.Relocations) > 0 {
			fmt.Printf("partial reconfigurations: %d\n", len(sr.Relocations))
			for _, r := range sr.Relocations {
				fmt.Println(" ", r)
			}
		}
		printRecovery(sr.Recovery)
		return pipeline.ExitCode(res, nil)
	}))
}

// printRecovery summarises the run's fault handling, if any.
func printRecovery(r dmfb.SimRecoveryReport) {
	if r.Invocations == 0 && r.TransientFaults == 0 {
		return
	}
	fmt.Printf("recovery: %d ladder invocation(s), deepest level %s, %d transient fault(s) healed\n",
		r.Invocations, r.DeepestLevel, r.TransientFaults)
	if r.StretchSec != 0 {
		fmt.Printf("  schedule stretched by %d s by module downgrades\n", r.StretchSec)
	}
	for _, op := range r.AbandonedOps {
		fmt.Printf("  abandoned: %s\n", op)
	}
}
