// dmfb-synth runs architectural-level synthesis: it binds a bioassay's
// sequencing graph to module-library devices and schedules it under an
// area budget, printing a Gantt chart and optionally writing the
// schedule as JSON for dmfb-place.
//
// Usage:
//
//	dmfb-synth -assay pcr                  # the paper's PCR case study
//	dmfb-synth -assay invitro -samples 3 -assays 3
//	dmfb-synth -graph assay.json -budget 63 -o schedule.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"dmfb"
	"dmfb/internal/pipeline"
	"dmfb/internal/telemetry/cliflags"
)

func main() {
	var (
		assayName = flag.String("assay", "pcr", "built-in assay: pcr | invitro")
		graphFile = flag.String("graph", "", "sequencing-graph JSON file (overrides -assay)")
		samples   = flag.Int("samples", 2, "in-vitro: number of samples")
		assays    = flag.Int("assays", 2, "in-vitro: number of assay types")
		budget    = flag.Int("budget", 63, "concurrent module area budget in cells (0 = unlimited)")
		policy    = flag.String("bind", "fastest", "binding policy: fastest | smallest")
		out       = flag.String("o", "", "write the schedule as JSON to this file")
	)
	os.Exit(cliflags.Main("dmfb-synth", func(ts *cliflags.Session) int {
		spec := &pipeline.SynthSpec{
			Assay:   *assayName,
			Samples: *samples,
			Assays:  *assays,
			Budget:  *budget,
		}
		if *graphFile != "" {
			data, err := os.ReadFile(*graphFile)
			if err != nil {
				return ts.Fail(err)
			}
			if spec.Graph, err = dmfb.UnmarshalAssay(data); err != nil {
				return ts.Fail(err)
			}
			if *policy == "smallest" {
				spec.Bind = dmfb.BindSmallest
			}
		}

		res, err := pipeline.Run(context.Background(), pipeline.Request{
			Tool:    "dmfb-synth",
			Synth:   spec,
			Tracer:  ts.Tracer,
			Metrics: ts.Metrics,
		})
		if err != nil {
			return ts.Fail(err)
		}
		sched := res.Schedule

		fmt.Print(dmfb.RenderSchedule(sched))
		fmt.Printf("peak concurrent module area: %d cells (%.2f mm2)\n",
			sched.PeakArea(), dmfb.AreaMM2(sched.PeakArea()))

		if *out != "" {
			data, err := dmfb.MarshalSchedule(sched)
			if err == nil {
				err = os.WriteFile(*out, data, 0o644)
			}
			if err != nil {
				return ts.Fail(err)
			}
			fmt.Println("schedule written to", *out)
		}
		return 0
	}))
}
