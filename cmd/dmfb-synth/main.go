// dmfb-synth runs architectural-level synthesis: it binds a bioassay's
// sequencing graph to module-library devices and schedules it under an
// area budget, printing a Gantt chart and optionally writing the
// schedule as JSON for dmfb-place.
//
// Usage:
//
//	dmfb-synth -assay pcr                  # the paper's PCR case study
//	dmfb-synth -assay invitro -samples 3 -assays 3
//	dmfb-synth -graph assay.json -budget 63 -o schedule.json
package main

import (
	"flag"
	"fmt"
	"os"

	"dmfb"
	"dmfb/internal/telemetry/cliflags"
)

func main() { os.Exit(run()) }

func run() int {
	var (
		assayName = flag.String("assay", "pcr", "built-in assay: pcr | invitro")
		graphFile = flag.String("graph", "", "sequencing-graph JSON file (overrides -assay)")
		samples   = flag.Int("samples", 2, "in-vitro: number of samples")
		assays    = flag.Int("assays", 2, "in-vitro: number of assay types")
		budget    = flag.Int("budget", 63, "concurrent module area budget in cells (0 = unlimited)")
		policy    = flag.String("bind", "fastest", "binding policy: fastest | smallest")
		out       = flag.String("o", "", "write the schedule as JSON to this file")
	)
	obs := cliflags.Register()
	flag.Parse()

	ts, err := obs.Start("dmfb-synth")
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-synth:", err)
		return 1
	}
	defer func() {
		if err := ts.Close(); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-synth:", err)
		}
	}()

	doneSynth := ts.Stage("synth")
	sched, err := synthesize(*assayName, *graphFile, *samples, *assays, *budget, *policy)
	doneSynth()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-synth:", err)
		return 1
	}
	ts.Metrics.Gauge("synth.makespan_sec").Set(float64(sched.Makespan))
	ts.Metrics.Gauge("synth.peak_area_cells").Set(float64(sched.PeakArea()))

	fmt.Print(dmfb.RenderSchedule(sched))
	fmt.Printf("peak concurrent module area: %d cells (%.2f mm2)\n",
		sched.PeakArea(), dmfb.AreaMM2(sched.PeakArea()))

	if *out != "" {
		data, err := dmfb.MarshalSchedule(sched)
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-synth:", err)
			return 1
		}
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-synth:", err)
			return 1
		}
		fmt.Println("schedule written to", *out)
	}
	return 0
}

func synthesize(assayName, graphFile string, samples, assays, budget int, policy string) (*dmfb.Schedule, error) {
	if graphFile != "" {
		data, err := os.ReadFile(graphFile)
		if err != nil {
			return nil, err
		}
		g, err := dmfb.UnmarshalAssay(data)
		if err != nil {
			return nil, err
		}
		pol := dmfb.BindFastest
		if policy == "smallest" {
			pol = dmfb.BindSmallest
		}
		b, err := dmfb.Bind(g, dmfb.Table1Library(), pol)
		if err != nil {
			return nil, err
		}
		return dmfb.ScheduleAssay(g, b, dmfb.ScheduleOptions{AreaBudget: budget})
	}
	switch assayName {
	case "pcr":
		return dmfb.PCRSchedule()
	case "invitro":
		return dmfb.InVitroSchedule(samples, assays, budget)
	default:
		return nil, fmt.Errorf("unknown assay %q (want pcr or invitro)", assayName)
	}
}
