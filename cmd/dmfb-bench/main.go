// dmfb-bench regenerates every table and figure of the paper's
// evaluation (Section 6) with experiment-grade annealing parameters,
// printing paper-reported values next to measured ones. Runs are
// seeded and deterministic.
//
// Usage:
//
//	dmfb-bench                 # all experiments
//	dmfb-bench -exp table2     # one experiment:
//	                           # table1 fig5 fig6 baseline fig7 fti fig8 table2
//	                           # reconfig montecarlo multistart yieldsweep
//	dmfb-bench -exp table1 -json results.json
//	dmfb-bench -trace trace.jsonl -metrics metrics.json -profile prof/
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"dmfb"
	"dmfb/internal/campaign"
	"dmfb/internal/dispatch"
	"dmfb/internal/pipeline"
	"dmfb/internal/telemetry"
	"dmfb/internal/telemetry/cliflags"
)

var (
	seed   = flag.Int64("seed", 1, "annealing seed")
	search = cliflags.SearchFlags()
	ts     *cliflags.Session
)

// measurement is one measured quantity, paired with the paper's
// reported value when the paper states one.
type measurement struct {
	Name     string  `json:"name"`
	Measured float64 `json:"measured"`
	Paper    float64 `json:"paper,omitempty"`
	Unit     string  `json:"unit,omitempty"`
}

// expResult is the machine-readable record of one experiment run.
type expResult struct {
	Experiment   string        `json:"experiment"`
	DurationMS   float64       `json:"duration_ms"`
	Measurements []measurement `json:"measurements,omitempty"`
}

func main() {
	exp := flag.String("exp", "all", "experiment to run (see usage)")
	jsonOut := flag.String("json", "", "write machine-readable results to `file`")
	os.Exit(cliflags.Main("dmfb-bench", func(session *cliflags.Session) int {
		ts = session
		return run(*exp, *jsonOut)
	}))
}

func run(exp, jsonOut string) int {
	experiments := []struct {
		name string
		run  func() []measurement
	}{
		{"table1", table1},
		{"fig5", fig5},
		{"fig6", fig6},
		{"baseline", baseline},
		{"fig7", fig7},
		{"fti", ftiExp},
		{"fig8", fig8},
		{"table2", table2},
		{"reconfig", reconfigExp},
		{"montecarlo", monteCarlo},
		{"multistart", multistart},
		{"yieldsweep", yieldsweep},
	}
	var results []expResult
	found := false
	for _, e := range experiments {
		if exp != "all" && exp != e.name {
			continue
		}
		found = true
		fmt.Printf("==================== %s ====================\n", e.name)
		clock := telemetry.StartStage(e.name)
		ms := e.run()
		st := clock.Stop()
		ts.Tracer.EmitSpan("bench."+e.name, st.Wall,
			telemetry.Fields{"cpu_us": st.CPU.Microseconds(), "measurements": len(ms)})
		ts.Metrics.Histogram("bench.exp_ms", telemetry.LatencyBuckets...).
			Observe(float64(st.Wall.Microseconds()) / 1000)
		results = append(results, expResult{
			Experiment:   e.name,
			DurationMS:   float64(st.Wall.Microseconds()) / 1000,
			Measurements: ms,
		})
		fmt.Printf("(%s in %v)\n\n", e.name, st.Wall.Round(time.Millisecond))
	}
	if !found {
		fmt.Fprintf(os.Stderr, "dmfb-bench: unknown experiment %q\n", exp)
		return 2
	}
	if jsonOut != "" {
		data, err := json.MarshalIndent(results, "", "  ")
		if err == nil {
			err = os.WriteFile(jsonOut, append(data, '\n'), 0o644)
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "dmfb-bench:", err)
			return 1
		}
		fmt.Println("results written to", jsonOut)
	}
	return 0
}

func must[T any](v T, err error) T {
	if err != nil {
		fmt.Fprintln(os.Stderr, "dmfb-bench:", err)
		os.Exit(1)
	}
	return v
}

// placerOpts returns the shared annealing options, with progress
// telemetry attached when enabled. The -starts/-anneal-workers group
// applies to every annealing experiment; the default of one start
// reproduces the paper's single-anneal numbers.
func placerOpts() dmfb.PlacerOptions {
	return dmfb.PlacerOptions{
		Seed:     *seed,
		Search:   *search,
		Observer: dmfb.ObserveAnneal(ts.Tracer, ts.Metrics, "bench"),
		Metrics:  ts.Metrics,
	}
}

// benchPlace synthesises the PCR case study and places it via the
// shared pipeline, with the bench-stage anneal observer attached. beta
// only matters for the "twostage" placer.
func benchPlace(placer string, beta float64) pipeline.Result {
	res, err := pipeline.Run(context.Background(), pipeline.Request{
		Tool:  "dmfb-bench",
		Synth: &pipeline.SynthSpec{Assay: "pcr"},
		Place: &pipeline.PlaceSpec{
			Placer:  placer,
			Options: placerOpts(),
			FT:      dmfb.FTOptions{Beta: beta},
		},
		Tracer:  ts.Tracer,
		Metrics: ts.Metrics,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	return res
}

// table1 prints the module catalogue used by the PCR binding.
func table1() []measurement {
	fmt.Println("Table 1: resource binding in PCR (paper: identical by construction)")
	g, mix := dmfb.PCRAssay()
	_ = g
	sched := must(dmfb.PCRSchedule())
	fmt.Printf("%-4s %-26s %-8s %s\n", "op", "hardware", "module", "mixing time")
	n := 0
	for _, it := range sched.BoundItems() {
		fmt.Printf("%-4s %-26s %-8s %ds\n", it.Op.Name, it.Device.Hardware,
			it.Device.Size.String()+" cells", it.Device.Duration)
		n++
	}
	_ = mix
	return []measurement{
		{Name: "bound_operations", Measured: float64(n), Paper: 7, Unit: "ops"},
	}
}

// fig5 prints the PCR sequencing graph.
func fig5() []measurement {
	fmt.Println("Figure 5: sequencing graph of the PCR mixing stage")
	g, _ := dmfb.PCRAssay()
	for _, op := range g.Ops() {
		succ := g.Succ(op.ID)
		if len(succ) == 0 {
			fmt.Printf("  %-4s (%s %s) -> [final mix]\n", op.Name, op.Kind, op.Fluid)
			continue
		}
		for _, s := range succ {
			fmt.Printf("  %-4s (%s %s) -> %s\n", op.Name, op.Kind, op.Fluid, g.Op(s).Name)
		}
	}
	return []measurement{
		{Name: "graph_ops", Measured: float64(len(g.Ops())), Unit: "ops"},
	}
}

// fig6 prints the regenerated module-usage schedule.
func fig6() []measurement {
	fmt.Println("Figure 6: schedule of module usage (regenerated; the paper does not print its data)")
	sched := must(dmfb.PCRSchedule())
	fmt.Print(dmfb.RenderSchedule(sched))
	fmt.Printf("peak concurrent area: %d cells\n", sched.PeakArea())
	return []measurement{
		{Name: "makespan", Measured: float64(sched.Makespan), Unit: "s"},
		{Name: "peak_area", Measured: float64(sched.PeakArea()), Unit: "cells"},
	}
}

// baseline runs the greedy placers (paper Section 6.1: 84 cells / 189 mm²).
func baseline() []measurement {
	fmt.Println("Baseline greedy placement (paper: 84 cells = 189.00 mm2)")
	aware := benchPlace("greedy", 0).Placement
	obliv := benchPlace("greedy-oblivious", 0).Placement
	fmt.Printf("time-aware greedy:      %3d cells = %7.2f mm2\n",
		aware.ArrayCells(), dmfb.AreaMM2(aware.ArrayCells()))
	fmt.Printf("time-oblivious greedy:  %3d cells = %7.2f mm2\n",
		obliv.ArrayCells(), dmfb.AreaMM2(obliv.ArrayCells()))
	fmt.Println("(the paper's under-specified greedy falls between these bounds)")
	return []measurement{
		{Name: "greedy_time_aware", Measured: float64(aware.ArrayCells()), Paper: 84, Unit: "cells"},
		{Name: "greedy_time_oblivious", Measured: float64(obliv.ArrayCells()), Paper: 84, Unit: "cells"},
	}
}

// fig7 runs the area-only SA placer (paper: 63 cells = 141.75 mm², −25% vs baseline).
func fig7() []measurement {
	fmt.Println("Figure 7: simulated-annealing placement, area only (paper: 7x9 = 63 cells = 141.75 mm2)")
	clock := telemetry.StartStage("fig7.anneal")
	res := benchPlace("sa", 0)
	st := clock.Stop()
	p, stats := res.Placement, res.PlacerStats
	fmt.Print(dmfb.RenderPlacement(p))
	fmt.Printf("measured: %d cells = %.2f mm2 (%d evaluations, %d levels, %v)\n",
		p.ArrayCells(), dmfb.AreaMM2(p.ArrayCells()),
		stats.Evaluations, stats.Levels, st.Wall.Round(time.Millisecond))
	g := benchPlace("greedy", 0).Placement
	improvement := 100 * (1 - float64(p.ArrayCells())/float64(g.ArrayCells()))
	fmt.Printf("improvement over greedy baseline: %.1f%% (paper: 25%%)\n", improvement)
	return []measurement{
		{Name: "sa_area", Measured: float64(p.ArrayCells()), Paper: 63, Unit: "cells"},
		{Name: "sa_area_mm2", Measured: dmfb.AreaMM2(p.ArrayCells()), Paper: 141.75, Unit: "mm2"},
		{Name: "improvement_vs_greedy", Measured: improvement, Paper: 25, Unit: "%"},
	}
}

// ftiExp computes the FTI of the area-minimal placement (paper: 0.1270).
func ftiExp() []measurement {
	fmt.Println("FTI of the area-minimal placement (paper: 0.1270, computed in 1.7 s on a Pentium III)")
	p := benchPlace("sa", 0).Placement
	clock := telemetry.StartStage("fti.compute")
	r := dmfb.ComputeFTI(p)
	st := clock.Stop()
	fmt.Printf("measured: %v (computed in %v)\n", r, st.Wall)
	fmt.Print(dmfb.RenderCoverage(r))
	return []measurement{
		{Name: "fti", Measured: dmfb.Round4(r.FTI()), Paper: 0.1270},
		{Name: "fti_compute_ms", Measured: float64(st.Wall.Microseconds()) / 1000, Paper: 1700, Unit: "ms"},
	}
}

// fig8 runs the two-stage placer at β=30 (paper: 7x11 = 77 cells =
// 173.25 mm², FTI 0.8052; +534% FTI for +22.2% area).
func fig8() []measurement {
	fmt.Println("Figure 8: two-stage fault-tolerant placement, beta=30")
	fmt.Println("(paper: 77 cells = 173.25 mm2, FTI 0.8052; +534% FTI for +22.2% area)")
	res := *benchPlace("twostage", 30).TwoStage
	f1 := dmfb.ComputeFTI(res.Stage1).FTI()
	f2 := dmfb.ComputeFTI(res.Final).FTI()
	a1, a2 := res.Stage1.ArrayCells(), res.Final.ArrayCells()
	fmt.Print(dmfb.RenderPlacement(res.Final))
	fmt.Printf("stage 1: %d cells = %.2f mm2, FTI %.4f\n", a1, dmfb.AreaMM2(a1), f1)
	fmt.Printf("final:   %d cells = %.2f mm2, FTI %.4f\n", a2, dmfb.AreaMM2(a2), f2)
	if f1 > 0 {
		fmt.Printf("FTI gain: +%.0f%%, area growth: +%.1f%%\n",
			100*(f2-f1)/f1, 100*(float64(a2)/float64(a1)-1))
	}
	return []measurement{
		{Name: "twostage_area", Measured: float64(a2), Paper: 77, Unit: "cells"},
		{Name: "twostage_fti", Measured: dmfb.Round4(f2), Paper: 0.8052},
	}
}

// table2 sweeps β (paper Table 2).
func table2() []measurement {
	fmt.Println("Table 2: solutions for different beta")
	fmt.Println("(paper: area 141.75->222.75 mm2, FTI 0.2857->1.0 as beta goes 10->60)")
	prob := dmfb.PlacementProblemOf(must(dmfb.PCRSchedule()))
	pts, err := dmfb.BetaSweep(prob, placerOpts(),
		dmfb.FTOptions{Restarts: 3}, []float64{10, 20, 30, 40, 50, 60})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("%-10s", "beta")
	for _, p := range pts {
		fmt.Printf("%10.0f", p.Beta)
	}
	fmt.Printf("\n%-10s", "area(mm2)")
	for _, p := range pts {
		fmt.Printf("%10.2f", dmfb.AreaMM2(p.Cells))
	}
	fmt.Printf("\n%-10s", "FTI")
	for _, p := range pts {
		fmt.Printf("%10.4f", p.FTI)
	}
	fmt.Println()
	var ms []measurement
	for _, p := range pts {
		ms = append(ms,
			measurement{Name: fmt.Sprintf("beta%.0f_area_mm2", p.Beta), Measured: dmfb.AreaMM2(p.Cells), Unit: "mm2"},
			measurement{Name: fmt.Sprintf("beta%.0f_fti", p.Beta), Measured: dmfb.Round4(p.FTI)})
	}
	return ms
}

// reconfigExp demonstrates on-line recovery (paper Figure 4b / Section 5.1).
func reconfigExp() []measurement {
	fmt.Println("Partial reconfiguration during field operation (Section 5.1)")
	pres := benchPlace("twostage", 50)
	sched, p := pres.Schedule, pres.Placement
	cov := dmfb.ComputeFTI(p)
	// Inject a fault into the first covered module cell, mid-assay.
	array := p.BoundingBox()
	for y := 0; y < array.H; y++ {
		for x := 0; x < array.W; x++ {
			cell := dmfb.Point{X: array.X + x, Y: array.Y + y}
			if !cov.CoveredAt(x, y) || len(p.ModulesAt(cell)) == 0 {
				continue
			}
			sr := dmfb.Simulate(sched, p,
				dmfb.SimOptions{Telemetry: ts.Tracer, Metrics: ts.Metrics},
				dmfb.FaultInjection{TimeSec: 1, Cell: dmfb.ArrayCell(dmfb.SimOptions{}, cell)})
			fmt.Printf("fault at array cell %v at t=1s: completed=%v, %d relocation(s), %d transport steps\n",
				cell, sr.Completed, len(sr.Relocations), sr.TransportSteps)
			for _, r := range sr.Relocations {
				fmt.Println(" ", r)
			}
			completed := 0.0
			if sr.Completed {
				completed = 1
			}
			return []measurement{
				{Name: "completed", Measured: completed, Paper: 1},
				{Name: "relocations", Measured: float64(len(sr.Relocations))},
			}
		}
	}
	fmt.Println("no covered module cell found")
	return nil
}

// multistart measures the deterministic parallel multi-start search
// (extension): the same N-start derived-seed twostage search run with
// a 1-worker cap and with one worker per CPU must pick byte-identical
// winners, and the wall-clock ratio of the two runs is the multi-start
// speedup. The single-start run sets the target FTI; the parallel
// run's wall-clock is the time-to-target when its winner meets it.
// Telemetry sinks are deliberately left off: the starts anneal
// concurrently and per-move observer traffic would dominate timing.
func multistart() []measurement {
	starts := search.Starts
	if starts <= 1 {
		starts = 4
	}
	cpus := runtime.NumCPU()
	fmt.Printf("Multi-start annealing: best of %d derived-seed starts on %d CPU(s), beta=30\n", starts, cpus)

	run := func(s dmfb.SearchOptions) (pipeline.Result, float64) {
		t0 := time.Now()
		res, err := pipeline.Run(context.Background(), pipeline.Request{
			Tool:  "dmfb-bench",
			Synth: &pipeline.SynthSpec{Assay: "pcr"},
			Place: &pipeline.PlaceSpec{
				Placer:  "twostage",
				Options: dmfb.PlacerOptions{Seed: *seed, Search: s},
				FT:      dmfb.FTOptions{Beta: 30},
			},
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return res, float64(time.Since(t0).Microseconds()) / 1000
	}

	single, singleMS := run(dmfb.SearchOptions{})
	target := dmfb.ComputeFTI(single.Placement).FTI()

	serial, serialMS := run(dmfb.SearchOptions{Starts: starts, Workers: 1})
	par, parMS := run(dmfb.SearchOptions{Starts: starts})

	identical := 0.0
	if bytes.Equal(must(dmfb.MarshalPlacement(serial.Placement)),
		must(dmfb.MarshalPlacement(par.Placement))) {
		identical = 1
	}
	winner := dmfb.ComputeFTI(par.Placement).FTI()
	speedup := 0.0
	if parMS > 0 {
		speedup = serialMS / parMS
	}
	toTarget := 0.0
	if winner >= target {
		toTarget = parMS
	}

	fmt.Printf("single start:        %8.1f ms, FTI %.4f (target)\n", singleMS, target)
	fmt.Printf("%d starts, 1 worker: %8.1f ms\n", starts, serialMS)
	fmt.Printf("%d starts, %d worker(s): %.1f ms, FTI %.4f (winner: start %d), speedup %.2fx\n",
		starts, cpus, parMS, winner, par.TwoStage.Start, speedup)
	fmt.Printf("winners byte-identical across worker counts: %v\n", identical == 1)

	return []measurement{
		{Name: "starts", Measured: float64(starts)},
		{Name: "cpus", Measured: float64(cpus)},
		{Name: "single_start_ms", Measured: singleMS, Unit: "ms"},
		{Name: "serial_ms", Measured: serialMS, Unit: "ms"},
		{Name: "parallel_ms", Measured: parMS, Unit: "ms"},
		{Name: "multistart_speedup", Measured: speedup, Unit: "x"},
		{Name: "winner_identical", Measured: identical, Paper: 1},
		{Name: "target_fti", Measured: dmfb.Round4(target)},
		{Name: "winner_fti", Measured: dmfb.Round4(winner)},
		{Name: "to_target_fti_ms", Measured: toTarget, Unit: "ms"},
	}
}

// yieldsweep measures the yield-vs-area trade-off of space redundancy
// (extension; the headline curve of the yield companion paper): the
// PCR placement with 0, 2 and 4 interstitial spare lines under a
// pinned clustered-defect model, 512 deterministic trials per point.
// More spares cost die area but give every module a local relocation
// target, so yield must not fall as the budget grows — benchreport
// gates on exactly that.
func yieldsweep() []measurement {
	const (
		q       = 0.02
		cluster = 4.0
		radius  = 2
		trials  = 512
		cseed   = 7
	)
	fmt.Printf("Yield vs area under space redundancy (clustered defects, q=%g, %d trials/point)\n", q, trials)
	ms := []measurement{
		{Name: "defect_prob", Measured: q},
		{Name: "cluster_size", Measured: cluster},
		{Name: "trials", Measured: trials},
	}
	for _, spares := range []int{0, 2, 4} {
		sp := dispatch.Spec{
			Mode: "yield", Trials: trials, Seed: cseed, PlaceSeed: *seed,
			DefectModel: "clustered", Q: q, ClusterSize: cluster, ClusterRadius: radius,
			Spares: spares,
		}.Normalized()
		built := must(sp.Build(context.Background(), dispatch.BuildOptions{
			Tool: "dmfb-bench", Tracer: ts.Tracer, Metrics: ts.Metrics,
		}))
		rep := must(campaign.Run(context.Background(), campaign.Config{
			Name: sp.Name(), Trials: built.Trials, Seed: sp.Seed,
			Fingerprint: sp.Fingerprint(), Metrics: ts.Metrics, Tracer: ts.Tracer,
		}, built.Fn))
		area := built.ArrayW * built.ArrayH
		fmt.Printf("  spares=%d: %dx%d array (%d cells), yield %.4f [%.4f, %.4f]\n",
			spares, built.ArrayW, built.ArrayH, area,
			rep.Summary.SurvivalRate, rep.Summary.Wilson95Lo, rep.Summary.Wilson95Hi)
		ms = append(ms,
			measurement{Name: fmt.Sprintf("spares%d_yield", spares), Measured: rep.Summary.SurvivalRate},
			measurement{Name: fmt.Sprintf("spares%d_area_cells", spares), Measured: float64(area), Unit: "cells"})
	}
	return ms
}

// monteCarlo validates FTI as a survivability predictor (extension).
func monteCarlo() []measurement {
	fmt.Println("Monte-Carlo validation: survival rate vs FTI (extension experiment)")
	s1 := benchPlace("sa", 0).Placement
	res := benchPlace("twostage", 60)
	var ms []measurement
	for _, c := range []struct {
		label string
		slug  string
		p     *dmfb.Placement
	}{{"area-minimal", "area_minimal", s1},
		{"fault-tolerant (beta=60)", "fault_tolerant", res.Placement}} {
		ex := dmfb.ExhaustiveSingleFault(c.p)
		mc := dmfb.MonteCarloSingleFault(c.p, 10000, *seed)
		fmt.Printf("%-26s exhaustive: %v\n", c.label, ex)
		fmt.Printf("%-26s montecarlo: %v\n", c.label, mc)
		// The FTI is the exact single-fault survival rate, so the
		// exhaustive rate doubles as the predicted ("paper") value for
		// the Monte-Carlo estimate.
		ms = append(ms, measurement{
			Name:     c.slug + "_mc_survival",
			Measured: dmfb.Round4(mc.SurvivalRate()),
			Paper:    dmfb.Round4(ex.SurvivalRate()),
		})
		for _, k := range []int{2, 3} {
			mk := dmfb.MonteCarloMultiFault(c.p, k, 2000, *seed)
			fmt.Printf("%-26s %d faults:   survived %.4f\n", c.label, k, mk.SurvivalRate())
			ms = append(ms, measurement{
				Name:     fmt.Sprintf("%s_%dfault_survival", c.slug, k),
				Measured: dmfb.Round4(mk.SurvivalRate()),
			})
		}
	}
	return ms
}
