// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 6), plus ablations of the annealer's design
// choices and scaling runs on the in-vitro workload. Each benchmark
// attaches its headline quantity as a custom metric (cells, FTI, …),
// so `go test -bench=. -benchmem` reproduces the experiment table:
//
//	E1 Table 1   -> BenchmarkTable1ResourceBinding
//	E2 Figure 5  -> BenchmarkFigure5SequencingGraph
//	E3 Figure 6  -> BenchmarkFigure6Schedule
//	E4 §6.1      -> BenchmarkGreedyBaseline (paper: 84 cells)
//	E5 Figure 7  -> BenchmarkFigure7AnnealingPlacement (paper: 63 cells)
//	E6 §6.2 FTI  -> BenchmarkFTIFastAlgorithm / BenchmarkFTIExhaustiveOracle
//	E7 Figure 8  -> BenchmarkFigure8TwoStagePlacement (paper: 77 cells, FTI 0.8052)
//	E8 Table 2   -> BenchmarkTable2BetaSweep
//	E9 §5.1      -> BenchmarkPartialReconfiguration, BenchmarkSimulation*
//	E10 ext.     -> BenchmarkMonteCarloSurvival
//	E11 ablation -> BenchmarkAblation*
package dmfb

import (
	"sync"
	"testing"
)

// fixtures are shared across benchmarks; built once.
var fixtureOnce sync.Once
var fx struct {
	sched    *Schedule
	prob     PlacementProblem
	greedy   *Placement
	minimal  *Placement
	tolerant *Placement
}

func fixtures(b *testing.B) {
	b.Helper()
	defer b.ResetTimer() // fixture construction must not count
	fixtureOnce.Do(func() {
		var err error
		fx.sched, err = PCRSchedule()
		if err != nil {
			panic(err)
		}
		fx.prob = PlacementProblemOf(fx.sched)
		fx.greedy, err = PlaceGreedy(fx.prob, true)
		if err != nil {
			panic(err)
		}
		fx.minimal, _, err = PlaceAnneal(fx.prob, PlacerOptions{Seed: 1})
		if err != nil {
			panic(err)
		}
		res, err := PlaceFaultTolerant(fx.prob, PlacerOptions{Seed: 1}, FTOptions{Beta: 30})
		if err != nil {
			panic(err)
		}
		fx.tolerant = res.Final
	})
}

// BenchmarkTable1ResourceBinding regenerates the Table 1 binding by
// synthesising the PCR case study (binding + scheduling).
func BenchmarkTable1ResourceBinding(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := PCRSchedule()
		if err != nil {
			b.Fatal(err)
		}
		if len(s.BoundItems()) != 7 {
			b.Fatal("binding incomplete")
		}
	}
}

// BenchmarkFigure5SequencingGraph builds and validates the PCR graph.
func BenchmarkFigure5SequencingGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, _ := PCRAssay()
		if err := g.Validate(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure6Schedule measures area-constrained list scheduling;
// the makespan_s metric is the schedule length (19 s for our
// regenerated Figure 6).
func BenchmarkFigure6Schedule(b *testing.B) {
	var makespan int
	for i := 0; i < b.N; i++ {
		s, err := PCRSchedule()
		if err != nil {
			b.Fatal(err)
		}
		makespan = s.Makespan
	}
	b.ReportMetric(float64(makespan), "makespan_s")
}

// BenchmarkGreedyBaseline is the Section 6.1 baseline placer.
// Paper: 84 cells = 189 mm².
func BenchmarkGreedyBaseline(b *testing.B) {
	fixtures(b)
	var cells int
	for i := 0; i < b.N; i++ {
		p, err := PlaceGreedy(fx.prob, true)
		if err != nil {
			b.Fatal(err)
		}
		cells = p.ArrayCells()
	}
	b.ReportMetric(float64(cells), "cells")
	b.ReportMetric(AreaMM2(cells), "area_mm2")
}

// BenchmarkGreedyTimeOblivious is the reconfiguration-unaware variant
// (upper bound on the paper's under-specified baseline).
func BenchmarkGreedyTimeOblivious(b *testing.B) {
	fixtures(b)
	var cells int
	for i := 0; i < b.N; i++ {
		p, err := PlaceGreedy(fx.prob, false)
		if err != nil {
			b.Fatal(err)
		}
		cells = p.ArrayCells()
	}
	b.ReportMetric(float64(cells), "cells")
	b.ReportMetric(AreaMM2(cells), "area_mm2")
}

// BenchmarkFigure7AnnealingPlacement is the Section 4 placer with the
// paper's annealing parameters. Paper: 63 cells = 141.75 mm² in 5 min
// on a 1 GHz Pentium III.
func BenchmarkFigure7AnnealingPlacement(b *testing.B) {
	fixtures(b)
	var cells int
	for i := 0; i < b.N; i++ {
		p, _, err := PlaceAnneal(fx.prob, PlacerOptions{Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		cells = p.ArrayCells()
	}
	b.ReportMetric(float64(cells), "cells")
	b.ReportMetric(AreaMM2(cells), "area_mm2")
}

// BenchmarkFTIFastAlgorithm is the Section 5.3 MER-based FTI
// computation on the area-minimal placement. Paper: 1.7 s on a
// Pentium III; the metric reports the measured FTI.
func BenchmarkFTIFastAlgorithm(b *testing.B) {
	fixtures(b)
	var f float64
	for i := 0; i < b.N; i++ {
		f = ComputeFTI(fx.minimal).FTI()
	}
	b.ReportMetric(f, "fti")
}

// BenchmarkFTIExhaustiveOracle is the brute-force relocation search
// the fast algorithm is validated against — the speedup between the
// two benches is the payoff of the maximal-empty-rectangle technique.
func BenchmarkFTIExhaustiveOracle(b *testing.B) {
	fixtures(b)
	var f float64
	for i := 0; i < b.N; i++ {
		f = ExhaustiveSingleFault(fx.minimal).SurvivalRate()
	}
	b.ReportMetric(f, "fti")
}

// BenchmarkFigure8TwoStagePlacement is the Section 6.2 enhanced
// placer at β = 30. Paper: 77 cells = 173.25 mm², FTI 0.8052, 20 min
// of CPU time.
func BenchmarkFigure8TwoStagePlacement(b *testing.B) {
	fixtures(b)
	var cells int
	var f float64
	for i := 0; i < b.N; i++ {
		res, err := PlaceFaultTolerant(fx.prob, PlacerOptions{Seed: 1}, FTOptions{Beta: 30})
		if err != nil {
			b.Fatal(err)
		}
		cells = res.Final.ArrayCells()
		f = ComputeFTI(res.Final).FTI()
	}
	b.ReportMetric(float64(cells), "cells")
	b.ReportMetric(AreaMM2(cells), "area_mm2")
	b.ReportMetric(f, "fti")
}

// BenchmarkTable2BetaSweep regenerates Table 2 (β = 10..60); metrics
// report the endpoints of the trade-off curve.
func BenchmarkTable2BetaSweep(b *testing.B) {
	fixtures(b)
	var pts []SweepPoint
	for i := 0; i < b.N; i++ {
		var err error
		pts, err = BetaSweep(fx.prob, PlacerOptions{Seed: 1}, FTOptions{},
			[]float64{10, 20, 30, 40, 50, 60})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(AreaMM2(pts[0].Cells), "area10_mm2")
	b.ReportMetric(pts[0].FTI, "fti10")
	b.ReportMetric(AreaMM2(pts[len(pts)-1].Cells), "area60_mm2")
	b.ReportMetric(pts[len(pts)-1].FTI, "fti60")
}

// BenchmarkPartialReconfiguration measures one on-line recovery (plan
// plus apply) on the fault-tolerant placement.
func BenchmarkPartialReconfiguration(b *testing.B) {
	fixtures(b)
	array := fx.tolerant.BoundingBox()
	cov := ComputeFTI(fx.tolerant)
	var fault Point
	found := false
	for y := 0; y < array.H && !found; y++ {
		for x := 0; x < array.W && !found; x++ {
			pt := Point{X: array.X + x, Y: array.Y + y}
			if cov.CoveredAt(x, y) && len(fx.tolerant.ModulesAt(pt)) > 0 {
				fault = pt
				found = true
			}
		}
	}
	if !found {
		b.Skip("no covered module cell")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		work := fx.tolerant.Clone()
		if _, err := Recover(work, array, fault); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulationFaultFree runs the full PCR assay on the chip
// simulator; transport_steps reports the droplet movement cost.
func BenchmarkSimulationFaultFree(b *testing.B) {
	fixtures(b)
	var steps int
	for i := 0; i < b.N; i++ {
		res := Simulate(fx.sched, fx.minimal, SimOptions{})
		if !res.Completed {
			b.Fatal(res.FailReason)
		}
		steps = res.TransportSteps
	}
	b.ReportMetric(float64(steps), "transport_steps")
}

// BenchmarkSimulationWithRecovery runs PCR with a mid-assay fault and
// on-line partial reconfiguration.
func BenchmarkSimulationWithRecovery(b *testing.B) {
	fixtures(b)
	array := fx.tolerant.BoundingBox()
	cov := ComputeFTI(fx.tolerant)
	var fault Point
	found := false
	for y := 0; y < array.H && !found; y++ {
		for x := 0; x < array.W && !found; x++ {
			pt := Point{X: array.X + x, Y: array.Y + y}
			if cov.CoveredAt(x, y) && len(fx.tolerant.ModulesAt(pt)) > 0 {
				fault = pt
				found = true
			}
		}
	}
	if !found {
		b.Skip("no covered module cell")
	}
	inj := FaultInjection{TimeSec: 1, Cell: ArrayCell(SimOptions{}, fault)}
	var relocs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := Simulate(fx.sched, fx.tolerant, SimOptions{}, inj)
		if !res.Completed {
			b.Fatal(res.FailReason)
		}
		relocs = len(res.Relocations)
	}
	b.ReportMetric(float64(relocs), "relocations")
}

// BenchmarkMonteCarloSurvival measures 10k-fault survival sampling on
// the fault-tolerant placement (extension experiment E10); the metric
// confirms the rate matches the FTI.
func BenchmarkMonteCarloSurvival(b *testing.B) {
	fixtures(b)
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = MonteCarloSingleFault(fx.tolerant, 10000, 7).SurvivalRate()
	}
	b.ReportMetric(rate, "survival")
	b.ReportMetric(ComputeFTI(fx.tolerant).FTI(), "fti")
}

// BenchmarkFullVsPartialReconfiguration measures the survival gain of
// full re-placement over partial reconfiguration under two sequential
// faults (extension experiment; the paper motivates partial by speed,
// this bench quantifies what the slow path buys).
func BenchmarkFullVsPartialReconfiguration(b *testing.B) {
	fixtures(b)
	light := PlacerOptions{Seed: 1, ItersPerModule: 60, WindowPatience: 3}
	var partial, full float64
	for i := 0; i < b.N; i++ {
		partial = MonteCarloMultiFault(fx.tolerant, 2, 100, 5).SurvivalRate()
		full = MonteCarloMultiFaultFull(fx.tolerant, 2, 100, 5, light).SurvivalRate()
	}
	b.ReportMetric(partial, "partial_survival")
	b.ReportMetric(full, "full_survival")
}

// Ablations (E11): each reruns the Figure 7 experiment with one design
// choice altered; the cells metric shows the quality impact.

// BenchmarkAblationMoveMix varies p, the probability of single-module
// displacement versus pair interchange (the paper determines the ratio
// experimentally; default p = 0.8).
func BenchmarkAblationMoveMix(b *testing.B) {
	fixtures(b)
	for _, p := range []float64{0.2, 0.5, 0.8, 0.95} {
		b.Run(pctName(p), func(b *testing.B) {
			var cells int
			for i := 0; i < b.N; i++ {
				pl, _, err := PlaceAnneal(fx.prob, PlacerOptions{Seed: 1, PSingle: p})
				if err != nil {
					b.Fatal(err)
				}
				cells = pl.ArrayCells()
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// BenchmarkAblationCooling varies the cooling factor α (paper: 0.9).
func BenchmarkAblationCooling(b *testing.B) {
	fixtures(b)
	for _, alpha := range []float64{0.8, 0.9, 0.95} {
		b.Run("a"+itoa(int(alpha*100)), func(b *testing.B) {
			var cells int
			for i := 0; i < b.N; i++ {
				pl, _, err := PlaceAnneal(fx.prob, PlacerOptions{Seed: 1, Alpha: alpha})
				if err != nil {
					b.Fatal(err)
				}
				cells = pl.ArrayCells()
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// BenchmarkAblationNoControllingWindow disables the controlling window
// (WindowT0 so small the window stays at full span until the very
// end), isolating the contribution of Section 4(c).
func BenchmarkAblationNoControllingWindow(b *testing.B) {
	fixtures(b)
	var cells int
	for i := 0; i < b.N; i++ {
		pl, _, err := PlaceAnneal(fx.prob, PlacerOptions{Seed: 1, WindowT0: 1e-6, WindowPatience: 1})
		if err != nil {
			b.Fatal(err)
		}
		cells = pl.ArrayCells()
	}
	b.ReportMetric(float64(cells), "cells")
}

// BenchmarkInVitroPlacement runs the annealing placer on the in-vitro
// diagnostics workload at growing sizes (scaling study).
func BenchmarkInVitroPlacement(b *testing.B) {
	for _, size := range []struct{ s, a int }{{2, 2}, {3, 3}, {4, 4}} {
		b.Run(sizeName(size.s, size.a), func(b *testing.B) {
			sched, err := InVitroSchedule(size.s, size.a, 80)
			if err != nil {
				b.Fatal(err)
			}
			prob := PlacementProblemOf(sched)
			var cells int
			for i := 0; i < b.N; i++ {
				p, _, err := PlaceAnneal(prob, PlacerOptions{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				cells = p.ArrayCells()
			}
			b.ReportMetric(float64(cells), "cells")
		})
	}
}

// BenchmarkDilutionTreePlacement places the exponential-dilution
// benchmark at growing depths (up to 31 modules at depth 4) — the
// stress test for the annealer's N = 400·Nm scaling.
func BenchmarkDilutionTreePlacement(b *testing.B) {
	for _, depth := range []int{2, 3, 4} {
		b.Run("depth"+itoa(depth), func(b *testing.B) {
			sched, err := DilutionTreeSchedule(depth, 60)
			if err != nil {
				b.Fatal(err)
			}
			prob := PlacementProblemOf(sched)
			var cells int
			for i := 0; i < b.N; i++ {
				p, _, err := PlaceAnneal(prob, PlacerOptions{Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				cells = p.ArrayCells()
			}
			b.ReportMetric(float64(cells), "cells")
			b.ReportMetric(float64(len(prob.Modules)), "modules")
		})
	}
}

func pctName(v float64) string {
	return "p" + itoa(int(v*100))
}

func sizeName(s, a int) string {
	return itoa(s) + "x" + itoa(a)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
