module dmfb

go 1.22
