package dmfb

// Byte-level golden tests of the command-line tools. Every seeded,
// deterministic invocation below must keep producing exactly the
// output recorded in testdata/cli_golden — the contract that the
// internal/pipeline port (and any later refactor of the CLI wiring)
// does not change what users see. Regenerate with:
//
//	DMFB_UPDATE_GOLDEN=1 go test -run TestCLIGolden
//
// Wall-clock lines (bench experiment timings, campaign elapsed) are
// normalised away; everything else is compared verbatim.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// benchTiming matches dmfb-bench's per-experiment wall-clock footer
// and the measured-time fragments some experiments print inline.
var benchTiming = regexp.MustCompile(`^\(\w+ in [^)]+\)$`)

// goldenCase is one deterministic CLI invocation.
type goldenCase struct {
	name     string
	tool     string
	args     []string
	wantExit int
	// normalise strips nondeterministic fragments before comparison.
	normalise func(string) string
}

func stripBenchTimings(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if benchTiming.MatchString(line) {
			continue
		}
		keep = append(keep, line)
	}
	return strings.Join(keep, "\n")
}

func goldenCases(work string) []goldenCase {
	fixture := filepath.Join("testdata", "cli_golden", "placement_sa.json")
	return []goldenCase{
		{name: "synth_pcr", tool: "dmfb-synth", args: []string{"-assay", "pcr"}},
		{name: "synth_invitro", tool: "dmfb-synth",
			args: []string{"-assay", "invitro", "-samples", "2", "-assays", "2"}},
		{name: "place_greedy", tool: "dmfb-place", args: []string{"-placer", "greedy"}},
		{name: "place_sa", tool: "dmfb-place", args: []string{"-placer", "sa"}},
		{name: "place_twostage", tool: "dmfb-place",
			args: []string{"-placer", "twostage", "-beta", "30", "-coverage"}},
		{name: "fti_verify", tool: "dmfb-fti",
			args: []string{"-placement", fixture, "-verify", "-montecarlo", "500"}},
		{name: "sim_fault", tool: "dmfb-sim",
			args: []string{"-placer", "twostage", "-beta", "40", "-fault", "2,1,1"}},
		{name: "sim_ladder", tool: "dmfb-sim",
			args: []string{"-recovery", "ladder", "-fault", "0,2,3"}, wantExit: 2},
		{name: "test_fault", tool: "dmfb-test",
			args: []string{"-w", "9", "-h", "7", "-fault", "3,4"}, wantExit: 1},
		{name: "route_pair", tool: "dmfb-route",
			args: []string{"-w", "12", "-h", "8", "-d", "0,0:11,7", "-d", "11,0:0,7"}},
		{name: "bench_baseline", tool: "dmfb-bench",
			args: []string{"-exp", "baseline"}, normalise: stripBenchTimings},
		{name: "bench_table1", tool: "dmfb-bench",
			args: []string{"-exp", "table1"}, normalise: stripBenchTimings},
	}
}

func TestCLIGolden(t *testing.T) {
	bin := buildCLI(t)
	work := t.TempDir()
	update := os.Getenv("DMFB_UPDATE_GOLDEN") != ""

	for _, tc := range goldenCases(work) {
		t.Run(tc.name, func(t *testing.T) {
			cmd := exec.Command(filepath.Join(bin, tc.tool), tc.args...)
			out, err := cmd.Output()
			exit := 0
			if ee, ok := err.(*exec.ExitError); ok {
				exit = ee.ExitCode()
			} else if err != nil {
				t.Fatalf("%s %v: %v", tc.tool, tc.args, err)
			}
			if exit != tc.wantExit {
				t.Fatalf("%s %v exited %d, want %d\n%s", tc.tool, tc.args, exit, tc.wantExit, out)
			}
			got := string(out)
			if tc.normalise != nil {
				got = tc.normalise(got)
			}
			compareGolden(t, tc.name+".golden", got, update)
		})
	}
}

// TestCLIGoldenCampaign pins the deterministic slice of a campaign
// run: the summary and predicted FTI from -json (the human output ends
// with wall-clock timings, which are not stable).
func TestCLIGoldenCampaign(t *testing.T) {
	bin := buildCLI(t)
	update := os.Getenv("DMFB_UPDATE_GOLDEN") != ""
	jsonPath := filepath.Join(t.TempDir(), "campaign.json")
	cmd := exec.Command(filepath.Join(bin, "dmfb-campaign"),
		"-trials", "300", "-seed", "7", "-quiet", "-json", jsonPath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("dmfb-campaign: %v\n%s", err, out)
	}
	raw, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Summary      json.RawMessage `json:"summary"`
		PredictedFTI float64         `json:"predicted_fti"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("campaign JSON invalid: %v\n%s", err, raw)
	}
	stable, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	compareGolden(t, "campaign_summary.golden", string(stable)+"\n", update)
}

func compareGolden(t *testing.T, name, got string, update bool) {
	t.Helper()
	path := filepath.Join("testdata", "cli_golden", name)
	if update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("golden %s missing (regenerate with DMFB_UPDATE_GOLDEN=1): %v", name, err)
	}
	if got != string(want) {
		t.Errorf("%s: output diverged from golden.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}
