package dmfb

import (
	"math"
	"math/big"
	"strings"
	"testing"
)

// TestPublicAPIEndToEnd drives the whole flow through the facade:
// assay -> binding -> schedule -> placement -> FTI -> recovery ->
// simulation, the way a downstream user would.
func TestPublicAPIEndToEnd(t *testing.T) {
	// 1. Describe an assay.
	g := NewAssay("demo")
	d1 := g.AddOp("D1", Dispense, "sample")
	d2 := g.AddOp("D2", Dispense, "reagent")
	m := g.AddOp("M", Mix, "")
	g.MustEdge(d1, m)
	g.MustEdge(d2, m)
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}

	// 2. Synthesise.
	b, err := Bind(g, Table1Library(), BindFastest)
	if err != nil {
		t.Fatal(err)
	}
	s, err := ScheduleAssay(g, b, ScheduleOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 3 { // fastest mixer is the 3 s 2x4 array
		t.Errorf("makespan = %d", s.Makespan)
	}

	// 3. Place.
	prob := PlacementProblemOf(s)
	p, stats, err := PlaceAnneal(prob, PlacerOptions{Seed: 1, ItersPerModule: 50, WindowPatience: 3})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Evaluations == 0 {
		t.Error("no annealing work recorded")
	}

	// 4. Analyse and operate.
	r := ComputeFTI(p)
	if r.Total != p.ArrayCells() {
		t.Error("FTI total != array cells")
	}
	res := Simulate(s, p, SimOptions{})
	if !res.Completed {
		t.Fatalf("simulation failed: %s", res.FailReason)
	}
	if !strings.Contains(res.ProductFluids[0], "sample") {
		t.Errorf("product = %v", res.ProductFluids)
	}
}

func TestPCRCaseStudyThroughFacade(t *testing.T) {
	g, mix := PCRAssay()
	if g.NumOps() != 15 || len(mix) != 7 {
		t.Fatal("PCR graph shape wrong")
	}
	s, err := PCRSchedule()
	if err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 19 {
		t.Errorf("PCR makespan = %d, want 19", s.Makespan)
	}
	if AreaMM2(63) != 141.75 {
		t.Error("AreaMM2 wrong")
	}
	if CellPitchMM != 1.5 {
		t.Error("pitch wrong")
	}
}

func TestFacadeRecoverAndRender(t *testing.T) {
	s, _ := PCRSchedule()
	prob := PlacementProblemOf(s)
	res, err := PlaceFaultTolerant(prob,
		PlacerOptions{Seed: 5, ItersPerModule: 120, WindowPatience: 4}, FTOptions{Beta: 50})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Final
	cov := ComputeFTI(p)
	if cov.FTI() <= 0 {
		t.Fatal("fault-tolerant placement has zero FTI")
	}
	// Recover from a covered fault.
	array := p.BoundingBox()
	var fault Point
	found := false
	for y := 0; y < array.H && !found; y++ {
		for x := 0; x < array.W && !found; x++ {
			pt := Point{X: array.X + x, Y: array.Y + y}
			if cov.CoveredAt(x, y) && len(p.ModulesAt(pt)) > 0 {
				fault = pt
				found = true
			}
		}
	}
	if !found {
		t.Skip("no covered module cell")
	}
	work := p.Clone()
	rels, err := Recover(work, array, fault)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) == 0 {
		t.Fatal("no relocation")
	}
	// Renderers produce non-trivial output.
	if !strings.Contains(RenderPlacement(p), "array") {
		t.Error("RenderPlacement empty")
	}
	if !strings.Contains(RenderPlacementSVG(p, 16), "<svg") {
		t.Error("SVG missing")
	}
	if !strings.Contains(RenderSchedule(s), "M7") {
		t.Error("schedule render missing ops")
	}
	if !strings.Contains(RenderCoverage(cov), "FTI") {
		t.Error("coverage render missing header")
	}
}

func TestFacadeSerialisationRoundTrip(t *testing.T) {
	s, _ := PCRSchedule()
	prob := PlacementProblemOf(s)
	p, err := PlaceGreedy(prob, true)
	if err != nil {
		t.Fatal(err)
	}
	data, err := MarshalPlacement(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlacement(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.ArrayCells() != p.ArrayCells() {
		t.Error("round trip changed area")
	}
	gd, err := MarshalAssay(s.Graph)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalAssay(gd); err != nil {
		t.Fatal(err)
	}
	sd, err := MarshalSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSchedule(sd, Table1Library()); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeFaultCampaigns(t *testing.T) {
	s, _ := PCRSchedule()
	prob := PlacementProblemOf(s)
	p, _, err := PlaceAnneal(prob, PlacerOptions{Seed: 1, ItersPerModule: 100, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	ex := ExhaustiveSingleFault(p)
	if math.Abs(ex.SurvivalRate()-ex.PredictedFTI) > 1e-12 {
		t.Error("exhaustive campaign does not match FTI")
	}
	mc := MonteCarloSingleFault(p, 800, 1)
	if math.Abs(mc.SurvivalRate()-mc.PredictedFTI) > 0.1 {
		t.Errorf("Monte-Carlo %.3f far from FTI %.3f", mc.SurvivalRate(), mc.PredictedFTI)
	}
	multi := MonteCarloMultiFault(p, 2, 200, 2)
	if multi.SurvivalRate() > mc.SurvivalRate()+0.1 {
		t.Error("two faults survive more often than one")
	}
}

func TestFacadeChipTesting(t *testing.T) {
	c := NewChip(7, 9)
	if rep := TestArray(c); rep.Faulty {
		t.Fatal("healthy chip reported faulty")
	}
	c.InjectFault(Point{X: 3, Y: 4})
	rep := TestArray(c)
	if !rep.Faulty || rep.FaultCell != (Point{X: 3, Y: 4}) {
		t.Fatalf("fault not localised: %v", rep)
	}
	faults := LocateAllFaults(c)
	if len(faults) != 1 || faults[0] != (Point{X: 3, Y: 4}) {
		t.Fatalf("LocateAllFaults = %v", faults)
	}
	online := TestArrayOnline(c, []Rect{{X: 2, Y: 3, W: 4, H: 4}})
	if online.Faulty {
		t.Error("online test should skip the occupied region")
	}
}

func TestInVitroThroughFacade(t *testing.T) {
	s, err := InVitroSchedule(2, 2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.BoundItems()) != 8 {
		t.Errorf("bound items = %d", len(s.BoundItems()))
	}
	if Round4(0.80524) != 0.8052 {
		t.Error("Round4 wrong")
	}
}

func TestFacadeExtensions(t *testing.T) {
	// Parallel best-of placement.
	s, _ := PCRSchedule()
	prob := PlacementProblemOf(s)
	light := PlacerOptions{Seed: 1, ItersPerModule: 80, WindowPatience: 3}
	p, _, err := PlaceAnnealBestOf(prob, light, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	// Concentration analysis.
	g, mix := PCRAssay()
	comp, err := AnalyzeConcentrations(g)
	if err != nil {
		t.Fatal(err)
	}
	frac := comp.PerOp[mix[6]].Fraction("dna")
	if frac.Cmp(bigRat(1, 8)) != 0 {
		t.Errorf("dna fraction = %s, want 1/8", frac.RatString())
	}

	// Concurrent routing + actuation.
	chip := NewChip(9, 6)
	eps := []RouteEndpoint{
		{From: Point{X: 0, Y: 0}, To: Point{X: 8, Y: 5}},
		{From: Point{X: 8, Y: 0}, To: Point{X: 0, Y: 5}},
	}
	plan, err := PlanDropletRoutes(chip, eps, RouteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateDropletRoutes(chip, eps, plan, nil); err != nil {
		t.Fatal(err)
	}
	prog, err := CompileActuation(plan, 9, 6)
	if err != nil {
		t.Fatal(err)
	}
	if prog.DurationMS() == 0 {
		t.Error("empty actuation program")
	}
	if _, err := MixerActuation(Rect{X: 0, Y: 0, W: 3, H: 2}, 2); err != nil {
		t.Fatal(err)
	}

	// Full reconfiguration + yield.
	dead := []Point{{X: 0, Y: 0}}
	fresh, err := FullReconfigure(p, dead, light)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Modules {
		if fresh.Rect(i).Contains(dead[0]) {
			t.Error("full reconfiguration covers the dead cell")
		}
	}
	y := EstimateYield(p, 0.01, 40, 1, false, light)
	if y.Trials != 40 {
		t.Error("yield campaign wrong size")
	}
	lo, hi := y.ConfidenceInterval95()
	if lo > y.SurvivalRate() || hi < y.SurvivalRate() {
		t.Error("confidence interval excludes its own point estimate")
	}

	// Multi-fault with full fallback never loses to partial-only.
	mfPartial := MonteCarloMultiFault(p, 2, 60, 4)
	mfFull := MonteCarloMultiFaultFull(p, 2, 60, 4, light)
	if mfFull.Survived < mfPartial.Survived {
		t.Error("full fallback below partial-only")
	}

	// Gantt SVG + slack at the critical-path deadline (19 s with the
	// fastest-mixer binding: mix 3 s + detect... here pure mixes).
	if !strings.Contains(RenderScheduleSVG(s, 0), "<svg") {
		t.Error("Gantt SVG missing")
	}
	gg, _ := PCRAssay()
	bb, err := Bind(gg, Table1Library(), BindFastest)
	if err != nil {
		t.Fatal(err)
	}
	// With every mix bound to the 3 s mixer the critical path is 9 s.
	slack, err := ScheduleSlack(gg, bb, ScheduleOptions{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	zero := 0
	for _, v := range slack {
		if v < 0 {
			t.Errorf("negative slack %d", v)
		}
		if v == 0 {
			zero++
		}
	}
	if zero == 0 {
		t.Error("no critical-path operations found")
	}
}

func bigRat(a, b int64) *big.Rat { return big.NewRat(a, b) }
