// Fault-injection campaigns at scale: this example runs a large
// randomized multi-fault campaign against the PCR placement through
// the campaign engine — worker-pool parallelism with per-trial
// deterministic RNG streams — and demonstrates the two properties the
// engine guarantees:
//
//  1. Determinism: the same campaign seed yields a byte-identical
//     summary at any worker count, so recorded results are
//     reproducible on any machine.
//  2. Resumability: a campaign checkpointed to a JSONL file and
//     killed mid-flight resumes exactly where it stopped, and the
//     finished summary matches an uninterrupted run.
//
// Finally the measured single-fault survival is compared against the
// placement's fault tolerance index (paper Section 5.2), with a
// Wilson 95% interval quantifying the Monte-Carlo error.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"

	"dmfb"
)

func main() {
	sched, err := dmfb.PCRSchedule()
	if err != nil {
		log.Fatal(err)
	}
	p, _, err := dmfb.PlaceAnneal(dmfb.PlacementProblemOf(sched),
		dmfb.PlacerOptions{Seed: 2, ItersPerModule: 120, WindowPatience: 4})
	if err != nil {
		log.Fatal(err)
	}
	predicted := dmfb.ComputeFTI(p).FTI()
	fmt.Printf("PCR placement, predicted FTI %.4f\n\n", predicted)

	ctx := context.Background()
	trial := dmfb.MultiFaultTrial(p, 2, false, dmfb.PlacerOptions{})

	// 1. Same seed, different worker counts -> identical summaries.
	fmt.Println("— determinism across worker counts —")
	var prev string
	for _, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		rep, err := dmfb.RunCampaign(ctx,
			dmfb.CampaignConfig{Name: "multi-k2", Trials: 4000, Seed: 7, Workers: workers}, trial)
		if err != nil {
			log.Fatal(err)
		}
		b, _ := rep.Summary.MarshalDeterministic()
		fmt.Printf("workers=%d: %s\n", rep.Workers, rep.Summary)
		if prev != "" && prev != string(b) {
			log.Fatal("summaries diverged across worker counts")
		}
		prev = string(b)
	}

	// 2. Kill a checkpointed campaign mid-flight, then resume it.
	fmt.Println("\n— checkpoint and resume —")
	dir, err := os.MkdirTemp("", "campaign")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	ckpt := filepath.Join(dir, "multi.jsonl")

	killCtx, kill := context.WithCancel(ctx)
	cfg := dmfb.CampaignConfig{
		Name: "multi-k2", Trials: 4000, Seed: 7, Checkpoint: ckpt,
		Progress: func(done, total int) {
			if done == total/3 {
				kill() // simulate the process dying a third of the way in
			}
		},
	}
	if _, err := dmfb.RunCampaign(killCtx, cfg, trial); err != nil {
		fmt.Println("interrupted:", err)
	}
	resumed, err := dmfb.RunCampaign(ctx, dmfb.CampaignConfig{
		Name: "multi-k2", Trials: 4000, Seed: 7, Checkpoint: ckpt, Resume: true}, trial)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("resumed %d trials from checkpoint, finished: %s\n", resumed.Resumed, resumed.Summary)
	b, _ := resumed.Summary.MarshalDeterministic()
	if string(b) != prev {
		log.Fatal("resumed summary differs from uninterrupted run")
	}
	fmt.Println("resumed summary byte-identical to uninterrupted run")

	// 3. Measurement vs theory: single-fault survival estimates the FTI.
	fmt.Println("\n— single-fault survival vs FTI —")
	rep, err := dmfb.RunCampaign(ctx,
		dmfb.CampaignConfig{Name: "single", Trials: 20000, Seed: 1}, dmfb.SingleFaultTrial(p))
	if err != nil {
		log.Fatal(err)
	}
	s := rep.Summary
	fmt.Printf("measured %.4f, 95%% Wilson CI [%.4f, %.4f], predicted FTI %.4f\n",
		s.SurvivalRate, s.Wilson95Lo, s.Wilson95Hi, predicted)
	if s.Wilson95Lo <= predicted && predicted <= s.Wilson95Hi {
		fmt.Println("FTI inside the campaign's confidence interval ✓")
	}
}
