// Quickstart: describe a bioassay, synthesise it, place it, check its
// fault tolerance, and run it on the chip simulator — the whole flow
// in one page.
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	// 1. Describe the assay as a sequencing graph: mix a sample with a
	// reagent and measure the result.
	g := dmfb.NewAssay("quickstart")
	sample := g.AddOp("DispenseSample", dmfb.Dispense, "blood-plasma")
	reagent := g.AddOp("DispenseReagent", dmfb.Dispense, "glucose-oxidase")
	mix := g.AddOp("Mix", dmfb.Mix, "")
	det := g.AddOp("Measure", dmfb.Detect, "")
	g.MustEdge(sample, mix)
	g.MustEdge(reagent, mix)
	g.MustEdge(mix, det)
	if err := g.Validate(); err != nil {
		log.Fatal(err)
	}

	// 2. Architectural-level synthesis: bind to the Table 1 module
	// library and schedule.
	binding, err := dmfb.Bind(g, dmfb.Table1Library(), dmfb.BindFastest)
	if err != nil {
		log.Fatal(err)
	}
	sched, err := dmfb.ScheduleAssay(g, binding, dmfb.ScheduleOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dmfb.RenderSchedule(sched))

	// 3. Placement: minimise the microfluidic array area with
	// simulated annealing (the paper's Section 4 placer).
	prob := dmfb.PlacementProblemOf(sched)
	placement, stats, err := dmfb.PlaceAnneal(prob, dmfb.PlacerOptions{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(dmfb.RenderPlacement(placement))
	fmt.Printf("placed in %d cost evaluations; array %.2f mm2\n",
		stats.Evaluations, dmfb.AreaMM2(placement.ArrayCells()))

	// 4. Fault tolerance: what fraction of single-cell faults can this
	// configuration survive by partial reconfiguration?
	cov := dmfb.ComputeFTI(placement)
	fmt.Println(cov)

	// 5. Execute on the chip simulator.
	res := dmfb.Simulate(sched, placement, dmfb.SimOptions{})
	if !res.Completed {
		log.Fatalf("assay failed: %s", res.FailReason)
	}
	fmt.Printf("assay completed in %d s (+%d ms droplet transport); product: %s\n",
		res.MakespanSec, res.TransportMS, res.ProductFluids[0])
}
