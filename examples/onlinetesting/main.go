// On-line testing: demonstrates the test-droplet methodology the paper
// relies on for fault detection (references [13], [14]). A test
// droplet sweeps the array; a faulty electrode cannot pull the droplet
// onto itself, so the droplet sticks and the capacitive sensor at the
// sink never sees it arrive — detecting and localising the defect.
// The located fault then drives partial reconfiguration of the
// placement, closing the detect -> reconfigure -> continue loop.
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	sched, err := dmfb.PCRSchedule()
	if err != nil {
		log.Fatal(err)
	}
	prob := dmfb.PlacementProblemOf(sched)
	two, err := dmfb.PlaceFaultTolerant(prob, dmfb.PlacerOptions{Seed: 1},
		dmfb.FTOptions{Beta: 60, Restarts: 2})
	if err != nil {
		log.Fatal(err)
	}
	p := two.Final
	array := p.BoundingBox()

	// Manufacture the chip for this placement and run the post-
	// fabrication structural test.
	chip := dmfb.NewChip(array.W, array.H)
	fmt.Println("post-fabrication test:", dmfb.TestArray(chip))

	// A defect appears during field operation.
	defect := dmfb.Point{X: array.X + 2, Y: array.Y + 2}
	chip.InjectFault(defect)

	// Off-assay sweep detects and localises it.
	rep := dmfb.TestArray(chip)
	fmt.Println("field test:", rep)
	if !rep.Faulty {
		log.Fatal("fault not detected")
	}

	// On-line variant: the same sweep skipping currently-active module
	// regions, runnable concurrently with the assay.
	var keepOut []dmfb.Rect
	for i := range p.Modules {
		keepOut = append(keepOut, p.Rect(i))
	}
	fmt.Println("concurrent test (modules masked):", dmfb.TestArrayOnline(chip, keepOut))

	// The localised fault drives partial reconfiguration.
	work := p.Clone()
	rels, err := dmfb.Recover(work, array, rep.FaultCell)
	if err != nil {
		log.Fatalf("reconfiguration failed: %v", err)
	}
	fmt.Printf("reconfigured %d module(s) away from %v:\n", len(rels), rep.FaultCell)
	for _, r := range rels {
		fmt.Println("  ", r)
	}
	fmt.Println("\nplacement after recovery:")
	fmt.Print(dmfb.RenderPlacement(work))

	// Multi-fault localisation: two more defects accumulate.
	chip.InjectFault(dmfb.Point{X: array.X, Y: array.Y})
	chip.InjectFault(dmfb.Point{X: array.X + 4, Y: array.Y + 1})
	fmt.Println("all faults localised by repeated sweeps:", dmfb.LocateAllFaults(chip))
}
