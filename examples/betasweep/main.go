// Beta sweep: regenerates the paper's Table 2, the area versus fault
// tolerance trade-off controlled by the weight β. Small β suits
// disposable one-shot devices (area and cost matter); large β suits
// safety-critical chips such as implantable drug-dosing systems, where
// the array must survive any single-cell fault (FTI = 1).
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	sched, err := dmfb.PCRSchedule()
	if err != nil {
		log.Fatal(err)
	}
	prob := dmfb.PlacementProblemOf(sched)

	betas := []float64{10, 20, 30, 40, 50, 60}
	points, err := dmfb.BetaSweep(prob, dmfb.PlacerOptions{Seed: 1},
		dmfb.FTOptions{Restarts: 2}, betas)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table 2: solutions for different values of beta")
	fmt.Printf("%-10s %10s %12s %8s\n", "beta", "cells", "area (mm2)", "FTI")
	for _, p := range points {
		fmt.Printf("%-10.0f %10d %12.2f %8.4f\n",
			p.Beta, p.Cells, dmfb.AreaMM2(p.Cells), p.FTI)
	}
	fmt.Println()
	fmt.Println("paper reference: 141.75..222.75 mm2 and FTI 0.2857..1.0 across the same betas")

	// Characterise the endpoints.
	lo, hi := points[0], points[len(points)-1]
	fmt.Printf("\nbeta=%.0f: %.2f mm2 at FTI %.2f — a disposable-device design point\n",
		lo.Beta, dmfb.AreaMM2(lo.Cells), lo.FTI)
	fmt.Printf("beta=%.0f: %.2f mm2 at FTI %.2f — a safety-critical design point\n",
		hi.Beta, dmfb.AreaMM2(hi.Cells), hi.FTI)
	if hi.FTI == 1 {
		fmt.Println("at FTI = 1.0 the chip tolerates ANY single faulty cell via partial reconfiguration")
	}
}
