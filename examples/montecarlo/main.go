// Monte-Carlo validation: the fault tolerance index is defined as the
// fraction of C-covered cells (paper Section 5.2) — so under the
// uniform single-fault model it should equal the probability that a
// random fault is survivable by partial reconfiguration. This example
// validates that empirically across placements of varying FTI, and
// extends the analysis to multiple accumulated faults (beyond the
// paper's single-fault assumption).
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	sched, err := dmfb.PCRSchedule()
	if err != nil {
		log.Fatal(err)
	}
	prob := dmfb.PlacementProblemOf(sched)

	// Build placements across the fault-tolerance spectrum.
	minimal, _, err := dmfb.PlaceAnneal(prob, dmfb.PlacerOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	designs := []struct {
		label string
		p     *dmfb.Placement
	}{{"area-minimal", minimal}}
	for _, beta := range []float64{20, 40, 60} {
		two, err := dmfb.PlaceFaultTolerant(prob, dmfb.PlacerOptions{Seed: 1},
			dmfb.FTOptions{Beta: beta, Restarts: 2})
		if err != nil {
			log.Fatal(err)
		}
		designs = append(designs, struct {
			label string
			p     *dmfb.Placement
		}{fmt.Sprintf("two-stage beta=%.0f", beta), two.Final})
	}

	fmt.Printf("%-22s %8s %12s %12s %10s %10s\n",
		"design", "cells", "FTI", "MC(1 fault)", "MC(2)", "MC(3)")
	for _, d := range designs {
		single := dmfb.MonteCarloSingleFault(d.p, 20000, 7)
		two := dmfb.MonteCarloMultiFault(d.p, 2, 4000, 7)
		three := dmfb.MonteCarloMultiFault(d.p, 3, 4000, 7)
		fmt.Printf("%-22s %8d %12.4f %12.4f %10.4f %10.4f\n",
			d.label, d.p.ArrayCells(), single.PredictedFTI,
			single.SurvivalRate(), two.SurvivalRate(), three.SurvivalRate())
	}
	fmt.Println("\nMC(1 fault) converges to the FTI: the index is exactly the")
	fmt.Println("single-fault survival probability. Accumulating faults degrade")
	fmt.Println("survival fastest on compact placements — the motivation for the")
	fmt.Println("paper's frequent test-and-reconfigure regime.")
}
