// PCR placement study: reproduces the paper's Section 6 comparison on
// the polymerase-chain-reaction mixing stage — greedy baseline versus
// area-only simulated annealing (Figure 7) versus the two-stage
// fault-tolerant placer (Figure 8).
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	sched, err := dmfb.PCRSchedule()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("PCR mixing stage:", len(sched.BoundItems()), "mixing modules, makespan", sched.Makespan, "s")
	fmt.Print(dmfb.RenderSchedule(sched))
	fmt.Println()

	prob := dmfb.PlacementProblemOf(sched)

	// Section 6.1 baseline: largest-area-first, bottom-left greedy.
	greedy, err := dmfb.PlaceGreedy(prob, true)
	if err != nil {
		log.Fatal(err)
	}
	report("greedy baseline", greedy)

	// Section 4 / Figure 7: simulated annealing, area as the only cost
	// metric. Paper: 63 cells = 141.75 mm2, 25% below the baseline.
	sa, _, err := dmfb.PlaceAnneal(prob, dmfb.PlacerOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	report("annealing (area only)", sa)
	fmt.Printf("  improvement over greedy: %.1f%%\n\n",
		100*(1-float64(sa.ArrayCells())/float64(greedy.ArrayCells())))

	// Section 6.2 / Figure 8: two-stage fault-tolerant placement.
	// Paper: FTI 0.1270 -> 0.8052 for 22.2% more area.
	two, err := dmfb.PlaceFaultTolerant(prob, dmfb.PlacerOptions{Seed: 1},
		dmfb.FTOptions{Beta: 30, Restarts: 2})
	if err != nil {
		log.Fatal(err)
	}
	report("two-stage (beta=30)", two.Final)
	f1 := dmfb.ComputeFTI(two.Stage1).FTI()
	f2 := dmfb.ComputeFTI(two.Final).FTI()
	fmt.Printf("  FTI %.4f -> %.4f (%.0f%% gain) for %.1f%% more area\n",
		f1, f2, 100*(f2-f1)/f1,
		100*(float64(two.Final.ArrayCells())/float64(two.Stage1.ArrayCells())-1))
	fmt.Println("\ncoverage map of the fault-tolerant placement ('+' = survivable fault):")
	fmt.Print(dmfb.RenderCoverage(dmfb.ComputeFTI(two.Final)))
}

func report(label string, p *dmfb.Placement) {
	r := dmfb.ComputeFTI(p)
	fmt.Printf("%s:\n", label)
	fmt.Print(dmfb.RenderPlacement(p))
	fmt.Printf("  %d cells = %.2f mm2, FTI %.4f\n\n",
		p.ArrayCells(), dmfb.AreaMM2(p.ArrayCells()), r.FTI())
}
