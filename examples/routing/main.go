// Droplet routing and electrode actuation: the operational layer under
// the paper's reconfigurable modules. Four droplets cross a 12×8 array
// simultaneously — two of them swapping ends head-on — around a dead
// electrode, under the electrowetting separation constraints; the plan
// is then compiled into the per-control-step electrode activation
// program a DMFB microcontroller would execute.
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	const w, h = 12, 8
	chip := dmfb.NewChip(w, h)
	dead := dmfb.Point{X: 6, Y: 3}
	chip.InjectFault(dead)
	fmt.Printf("array %dx%d with a dead electrode at %v\n\n", w, h, dead)

	eps := []dmfb.RouteEndpoint{
		{From: dmfb.Point{X: 0, Y: 0}, To: dmfb.Point{X: 11, Y: 7}}, // diagonal
		{From: dmfb.Point{X: 11, Y: 7}, To: dmfb.Point{X: 0, Y: 0}}, // head-on swap with the first
		{From: dmfb.Point{X: 0, Y: 4}, To: dmfb.Point{X: 11, Y: 4}}, // straight through the middle
		{From: dmfb.Point{X: 11, Y: 0}, To: dmfb.Point{X: 0, Y: 7}}, // crossing diagonal
	}
	plan, err := dmfb.PlanDropletRoutes(chip, eps, dmfb.RouteOptions{})
	if err != nil {
		log.Fatal(err)
	}
	if err := dmfb.ValidateDropletRoutes(chip, eps, plan, nil); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all %d droplets arrive after %d control steps (%d ms), %d cell moves total\n",
		len(eps), plan.Makespan, plan.Makespan*10, plan.Steps())

	// Show a few synchronised snapshots.
	for _, t := range []int{0, plan.Makespan / 2, plan.Makespan} {
		fmt.Printf("\nt = %d steps:\n", t)
		fmt.Print(snapshot(w, h, plan, t, dead))
	}

	// Compile to electrode actuation.
	prog, err := dmfb.CompileActuation(plan, w, h)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nactuation program: %d frames (%d ms); first three:\n",
		len(prog.Frames), prog.DurationMS())
	for _, f := range prog.Frames[:3] {
		fmt.Println(" ", f)
	}

	// And the mixing pattern a 2x4 mixer module would run afterwards.
	frames, err := dmfb.MixerActuation(dmfb.Rect{X: 2, Y: 2, W: 4, H: 2}, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nmixer actuation (one lap of a 2x4 functional region): %d frames\n", len(frames))
	for _, f := range frames {
		fmt.Println(" ", f)
	}
}

func snapshot(w, h int, plan *dmfb.RoutePlan, t int, dead dmfb.Point) string {
	rows := make([][]byte, h)
	for y := range rows {
		rows[y] = make([]byte, w)
		for x := range rows[y] {
			rows[y][x] = '.'
		}
	}
	rows[dead.Y][dead.X] = '#'
	for i, path := range plan.Paths {
		p := path[t]
		rows[p.Y][p.X] = byte('A' + i)
	}
	out := ""
	for y := h - 1; y >= 0; y-- {
		out += string(rows[y]) + "\n"
	}
	return out
}
