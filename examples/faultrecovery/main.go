// Fault recovery: runs the PCR assay on the chip simulator and injects
// a cell fault mid-run. On a fault-tolerant placement the simulator
// performs partial reconfiguration (paper Section 5.1): the module
// using the failed cell is relocated by reprogramming electrodes, its
// droplet is re-routed, and the assay finishes. The same fault aborts
// the assay on the area-minimal placement.
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	sched, err := dmfb.PCRSchedule()
	if err != nil {
		log.Fatal(err)
	}
	prob := dmfb.PlacementProblemOf(sched)

	// Two designs for the same assay.
	minimal, _, err := dmfb.PlaceAnneal(prob, dmfb.PlacerOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	tolerant, err := dmfb.PlaceFaultTolerant(prob, dmfb.PlacerOptions{Seed: 1},
		dmfb.FTOptions{Beta: 60, Restarts: 2})
	if err != nil {
		log.Fatal(err)
	}

	for _, c := range []struct {
		label string
		p     *dmfb.Placement
	}{
		{"area-minimal placement", minimal},
		{"fault-tolerant placement (beta=60)", tolerant.Final},
	} {
		cov := dmfb.ComputeFTI(c.p)
		fmt.Printf("=== %s: %d cells, FTI %.4f ===\n", c.label, c.p.ArrayCells(), cov.FTI())

		// Fail a cell that is actually in use by some module.
		fault, ok := busiestCell(c.p)
		if !ok {
			log.Fatal("no module cell found")
		}
		res := dmfb.Simulate(sched, c.p, dmfb.SimOptions{},
			dmfb.FaultInjection{TimeSec: 2, Cell: dmfb.ArrayCell(dmfb.SimOptions{}, fault)})
		fmt.Printf("fault injected at array cell %v at t=2s\n", fault)
		if res.Completed {
			fmt.Printf("RECOVERED: %d relocation(s), assay finished in %d s (+%d ms transport)\n",
				len(res.Relocations), res.MakespanSec, res.TransportMS)
			for _, r := range res.Relocations {
				fmt.Println("  ", r)
			}
			fmt.Println("  master mix:", res.ProductFluids[0])
		} else {
			fmt.Printf("ABORTED: %s\n", res.FailReason)
		}
		fmt.Println()
	}
}

// busiestCell returns the cell used by the most modules (the most
// disruptive single fault).
func busiestCell(p *dmfb.Placement) (dmfb.Point, bool) {
	array := p.BoundingBox()
	best := dmfb.Point{}
	bestN := 0
	for y := 0; y < array.H; y++ {
		for x := 0; x < array.W; x++ {
			cell := dmfb.Point{X: array.X + x, Y: array.Y + y}
			if n := len(p.ModulesAt(cell)); n > bestN {
				best, bestN = cell, n
			}
		}
	}
	return best, bestN > 0
}
