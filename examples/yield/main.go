// Yield analysis: extends the paper's uniform single-fault model to a
// defect-density model — every cell of the fabricated array fails
// independently with probability q — and measures the fraction of
// chips each design can still operate, with partial reconfiguration
// alone and with full re-placement as a fallback. This quantifies the
// safety-critical argument of Section 6.3: the extra area a large β
// buys is exactly what keeps yield high as defect density rises.
package main

import (
	"fmt"
	"log"

	"dmfb"
)

func main() {
	sched, err := dmfb.PCRSchedule()
	if err != nil {
		log.Fatal(err)
	}
	prob := dmfb.PlacementProblemOf(sched)

	minimal, _, err := dmfb.PlaceAnneal(prob, dmfb.PlacerOptions{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	tolerant, err := dmfb.PlaceFaultTolerant(prob, dmfb.PlacerOptions{Seed: 1},
		dmfb.FTOptions{Beta: 60, Restarts: 2})
	if err != nil {
		log.Fatal(err)
	}

	light := dmfb.PlacerOptions{Seed: 1, ItersPerModule: 60, WindowPatience: 3}
	densities := []float64{0.002, 0.01, 0.03, 0.08}
	const trials = 150

	fmt.Printf("%-28s", "design \\ defect density q")
	for _, q := range densities {
		fmt.Printf("%10.3f", q)
	}
	fmt.Println()
	for _, d := range []struct {
		label string
		p     *dmfb.Placement
	}{
		{"area-minimal, partial", minimal},
		{"fault-tolerant, partial", tolerant.Final},
	} {
		fmt.Printf("%-28s", d.label)
		for _, q := range densities {
			y := dmfb.EstimateYield(d.p, q, trials, 11, false, light)
			fmt.Printf("%10.3f", y.SurvivalRate())
		}
		fmt.Println()
	}
	for _, d := range []struct {
		label string
		p     *dmfb.Placement
	}{
		{"area-minimal, +full", minimal},
		{"fault-tolerant, +full", tolerant.Final},
	} {
		fmt.Printf("%-28s", d.label)
		for _, q := range densities {
			y := dmfb.EstimateYield(d.p, q, trials, 11, true, light)
			fmt.Printf("%10.3f", y.SurvivalRate())
		}
		fmt.Println()
	}
	fmt.Println("\n(yield = fraction of chips that can still run the assay after")
	fmt.Println(" absorbing all of their defects by reconfiguration)")
}
