#!/bin/sh
# serve_smoke.sh — end-to-end smoke test of dmfb-server: boot it on a
# free port, POST the same PCR compile twice, and assert the second
# response is a byte-identical cache hit; then SIGTERM and expect a
# graceful zero-status drain. Exercises the real binary (flags,
# listener, ops endpoints, shutdown path) where the unit tests use
# httptest.
set -eu

bin=${1:?usage: serve_smoke.sh <dmfb-server-binary>}
tmp=$(mktemp -d)
pid=
trap 'kill "$pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

"$bin" -addr 127.0.0.1:0 2> "$tmp/stderr" &
pid=$!

url=
for _ in $(seq 1 100); do
    url=$(sed -n 's#^dmfb-server: listening on \(http://.*\)$#\1#p' "$tmp/stderr")
    [ -n "$url" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "server died at startup:"; cat "$tmp/stderr"; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "server never reported its address"; cat "$tmp/stderr"; exit 1; }

body='{"assay":"pcr","placer":"sa","seed":1}'
curl -fsS -D "$tmp/h1" -o "$tmp/b1" -d "$body" "$url/v1/compile"
curl -fsS -D "$tmp/h2" -o "$tmp/b2" -d "$body" "$url/v1/compile"

grep -qi '^X-Dmfb-Cache: miss' "$tmp/h1" || { echo "first request was not a cache miss:"; cat "$tmp/h1"; exit 1; }
grep -qi '^X-Dmfb-Cache: hit' "$tmp/h2" || { echo "second request was not a cache hit:"; cat "$tmp/h2"; exit 1; }
cmp -s "$tmp/b1" "$tmp/b2" || { echo "cached response differs from fresh response"; exit 1; }
grep -q '"fti":' "$tmp/b1" || { echo "compile response missing fti:"; cat "$tmp/b1"; exit 1; }

curl -fsS "$url/healthz" | grep -qx ok || { echo "/healthz failed"; exit 1; }
curl -fsS "$url/metrics" | grep -q dmfb_pcache_hits || { echo "/metrics missing cache counters"; exit 1; }
curl -fsS "$url/progress" | grep -q '"tool": "dmfb-server"' || { echo "/progress missing tool name"; exit 1; }

kill -TERM "$pid"
wait "$pid" || { echo "server exited nonzero on SIGTERM:"; cat "$tmp/stderr"; exit 1; }
echo "serve-smoke: ok (byte-identical cache hit, graceful SIGTERM drain)"
