// benchreport assembles BENCH_place.json, the machine-readable record
// of the placer's performance: the micro-benchmarks of the annealing
// inner loop (clone-and-recompute vs the incremental move kernel) and
// the end-to-end experiment timings reported by dmfb-bench -json.
//
// Usage:
//
//	benchreport -go bench.out -exp exp.json -out BENCH_place.json
//
// where bench.out is the raw output of `go test -bench ... -benchmem`
// and exp.json is the output of `dmfb-bench -json`. The report derives
// the stage-2 ns-per-iteration speedup from the Stage2IterClone /
// Stage2IterMove pair; the repository's acceptance bar is ≥5×.
// -multistart folds in the deterministic parallel multi-start search
// measurements (refused unless the winners are byte-identical across
// worker counts), and -prev refuses the report outright when the
// stage-2 kernel or the seeded fig8 experiment regresses against a
// previous report.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

type benchmark struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

type report struct {
	Benchmark        string          `json:"benchmark"`
	GoVersion        string          `json:"go_version,omitempty"`
	Benchmarks       []benchmark     `json:"benchmarks"`
	Stage2CloneNs    float64         `json:"stage2_clone_ns_per_op,omitempty"`
	Stage2MoveNs     float64         `json:"stage2_move_ns_per_op,omitempty"`
	Stage2Speedup    float64         `json:"stage2_speedup,omitempty"`
	Stage1CloneNs    float64         `json:"stage1_clone_ns_per_op,omitempty"`
	Stage1MoveNs     float64         `json:"stage1_move_ns_per_op,omitempty"`
	Stage1Speedup    float64         `json:"stage1_speedup,omitempty"`
	Experiments      json.RawMessage `json:"experiments,omitempty"`
	ExperimentSource string          `json:"experiment_source,omitempty"`

	// Campaign scaling: the same fault-injection campaign run at 1
	// worker and at N workers (dmfb-campaign -json). Speedup is
	// wall-clock 1-worker / N-worker; the summaries must be identical
	// or the report is refused.
	CampaignTrials    int     `json:"campaign_trials,omitempty"`
	CampaignWorkers   int     `json:"campaign_workers,omitempty"`
	Campaign1MS       float64 `json:"campaign_1worker_ms,omitempty"`
	CampaignNMS       float64 `json:"campaign_nworker_ms,omitempty"`
	CampaignSpeedup   float64 `json:"campaign_speedup,omitempty"`
	CampaignIdentical bool    `json:"campaign_summaries_identical,omitempty"`

	// Recovery ladder: the same seeded single-fault assay campaign
	// simulated under L1-only recovery and under the full escalation
	// ladder (dmfb-campaign -mode assay -json). The report is refused
	// unless the ladder strictly improves completion and neither run
	// had errored trials.
	RecoveryTrials int     `json:"recovery_trials,omitempty"`
	SurvivalL1     float64 `json:"survival_l1,omitempty"`
	SurvivalLadder float64 `json:"survival_ladder,omitempty"`
	SurvivalGain   float64 `json:"survival_gain,omitempty"`

	// Multi-start annealing: the same N-start derived-seed twostage
	// search run with a 1-worker cap and with one worker per CPU
	// (dmfb-bench -exp multistart). The winners must be byte-identical
	// — the report is refused otherwise — and the wall-clock ratio is
	// the multi-start speedup. The single-start run's FTI is the
	// target; to-target is the parallel run's wall-clock when its
	// winner meets the target (0 = not reached). On fewer than 4 CPUs
	// the speedup is ~1 by construction, so the ≥2x refusal only
	// applies when the recording machine has 4 or more.
	MultistartStarts          int     `json:"multistart_starts,omitempty"`
	MultistartCPUs            int     `json:"multistart_cpus,omitempty"`
	MultistartSingleMS        float64 `json:"multistart_single_ms,omitempty"`
	MultistartSerialMS        float64 `json:"multistart_serial_ms,omitempty"`
	MultistartParallelMS      float64 `json:"multistart_parallel_ms,omitempty"`
	MultistartSpeedup         float64 `json:"multistart_speedup,omitempty"`
	MultistartWinnerIdentical bool    `json:"multistart_winner_identical,omitempty"`
	MultistartTargetFTI       float64 `json:"multistart_target_fti,omitempty"`
	MultistartWinnerFTI       float64 `json:"multistart_winner_fti,omitempty"`
	ToTargetFTIMS             float64 `json:"wallclock_to_target_fti_ms,omitempty"`

	// Yield vs area under space redundancy: the pinned clustered-defect
	// yield campaign run at increasing spare-line budgets (dmfb-bench
	// -exp yieldsweep). The curve needs at least 3 points, area must
	// grow with the spare budget (spares are real cells), and yield at
	// the largest budget may not fall below the spare-free yield —
	// otherwise space redundancy stopped paying for its area and the
	// report is refused. -prev refuses any per-point yield drop at the
	// same pinned defect density.
	YieldDefectProb float64      `json:"yield_defect_prob,omitempty"`
	YieldTrials     int          `json:"yield_trials,omitempty"`
	YieldCurve      []yieldPoint `json:"yield_curve,omitempty"`

	// Server throughput: dmfb-server -replay against its own listener
	// (mixed PCR/in-vitro compile requests through the placement
	// cache). The report is refused unless the hit rate matches the
	// replay mix's steady state, since a cold cache would overstate
	// annealing cost and a leaky fingerprint would overstate hit rate.
	ServeRequests     int     `json:"serve_requests,omitempty"`
	ServeRPS          float64 `json:"serve_rps,omitempty"`
	ServeCacheHits    int     `json:"serve_cache_hits,omitempty"`
	ServeCacheHitRate float64 `json:"serve_cache_hit_rate,omitempty"`
}

// yieldPoint is one spare-budget point of the yield-vs-area curve.
type yieldPoint struct {
	Spares    int     `json:"spares"`
	AreaCells float64 `json:"area_cells"`
	Yield     float64 `json:"yield"`
}

// campaignRun is the slice of dmfb-campaign -json output the report
// needs.
type campaignRun struct {
	Summary      json.RawMessage `json:"summary"`
	RecoveryMode string          `json:"recovery_mode"`
	Workers      int             `json:"workers"`
	ElapsedMS    float64         `json:"elapsed_ms"`
}

// summarySlice is the slice of campaign.Summary the report needs.
type summarySlice struct {
	Trials       int     `json:"trials"`
	Survived     int     `json:"survived"`
	Errors       int     `json:"errors"`
	SurvivalRate float64 `json:"survival_rate"`
}

func (c campaignRun) stats(path string) summarySlice {
	var s summarySlice
	if err := json.Unmarshal(c.Summary, &s); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return s
}

func readCampaign(path string) campaignRun {
	raw, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var c campaignRun
	if err := json.Unmarshal(raw, &c); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return c
}

// expRun is the slice of one dmfb-bench -json experiment record the
// report needs for measurement extraction.
type expRun struct {
	Experiment   string `json:"experiment"`
	Measurements []struct {
		Name     string  `json:"name"`
		Measured float64 `json:"measured"`
	} `json:"measurements"`
}

func readExpRuns(path string, raw []byte) []expRun {
	var runs []expRun
	if err := json.Unmarshal(raw, &runs); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return runs
}

// measure returns the named measurement of the named experiment, or
// (0, false) when either is absent.
func measure(runs []expRun, exp, name string) (float64, bool) {
	for _, r := range runs {
		if r.Experiment != exp {
			continue
		}
		for _, m := range r.Measurements {
			if m.Name == name {
				return m.Measured, true
			}
		}
	}
	return 0, false
}

// sparesMeasure matches the per-point yieldsweep measurement names,
// e.g. "spares2_yield" and "spares2_area_cells".
var sparesMeasure = regexp.MustCompile(`^spares(\d+)_(yield|area_cells)$`)

// yieldCurve assembles the yield-vs-area points from the yieldsweep
// experiment's measurements, sorted by spare budget. A point missing
// either its yield or its area refuses the report.
func yieldCurve(runs []expRun, path string) []yieldPoint {
	type acc struct {
		yield, area float64
		hasY, hasA  bool
	}
	pts := make(map[int]*acc)
	for _, r := range runs {
		if r.Experiment != "yieldsweep" {
			continue
		}
		for _, m := range r.Measurements {
			sub := sparesMeasure.FindStringSubmatch(m.Name)
			if sub == nil {
				continue
			}
			n, _ := strconv.Atoi(sub[1])
			a := pts[n]
			if a == nil {
				a = &acc{}
				pts[n] = a
			}
			if sub[2] == "yield" {
				a.yield, a.hasY = m.Measured, true
			} else {
				a.area, a.hasA = m.Measured, true
			}
		}
	}
	budgets := make([]int, 0, len(pts))
	for n := range pts {
		budgets = append(budgets, n)
	}
	sort.Ints(budgets)
	var curve []yieldPoint
	for _, n := range budgets {
		a := pts[n]
		if !a.hasY || !a.hasA {
			fatal(fmt.Errorf("%s: yieldsweep point spares=%d is missing its yield or area measurement", path, n))
		}
		curve = append(curve, yieldPoint{Spares: n, AreaCells: a.area, Yield: a.yield})
	}
	return curve
}

// benchLine matches one line of `go test -bench -benchmem` output, e.g.
//
//	BenchmarkStage2IterMove-8   300000   743.2 ns/op   49 B/op   0 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([\d.]+) ns/op(?:\s+(\d+) B/op\s+(\d+) allocs/op)?`)

func main() {
	goOut := flag.String("go", "", "`file` holding raw go test -bench output")
	expJSON := flag.String("exp", "", "`file` holding dmfb-bench -json output (optional)")
	camp1 := flag.String("campaign1", "", "`file` holding dmfb-campaign -json output at 1 worker (optional)")
	campN := flag.String("campaignN", "", "`file` holding dmfb-campaign -json output at N workers (optional)")
	assayL1 := flag.String("assay-l1", "", "`file` holding dmfb-campaign -mode assay -recovery l1 -json output (optional)")
	assayLadder := flag.String("assay-ladder", "", "`file` holding dmfb-campaign -mode assay -recovery ladder -json output (optional)")
	serveJSON := flag.String("serve", "", "`file` holding dmfb-server -replay -json output (optional)")
	yieldJSON := flag.String("yield", "", "`file` holding dmfb-bench -exp yieldsweep -json output (optional)")
	multistartJSON := flag.String("multistart", "", "`file` holding dmfb-bench -exp multistart -json output (optional)")
	prev := flag.String("prev", "", "previous report `file`; refuse stage-2 ns/op or fig8 regressions against it (skipped with a warning when unreadable)")
	out := flag.String("out", "BENCH_place.json", "output `file`")
	flag.Parse()
	if *goOut == "" {
		fmt.Fprintln(os.Stderr, "benchreport: -go is required")
		os.Exit(2)
	}

	rep := report{
		Benchmark: "PCR (polymerase chain reaction) assay placement",
		GoVersion: runtime.Version(),
	}

	data, err := os.ReadFile(*goOut)
	if err != nil {
		fatal(err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		b := benchmark{Name: m[1]}
		b.Iterations, _ = strconv.ParseInt(m[2], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[3], 64)
		if m[4] != "" {
			b.BytesPerOp, _ = strconv.ParseInt(m[4], 10, 64)
			b.AllocsPerOp, _ = strconv.ParseInt(m[5], 10, 64)
		}
		rep.Benchmarks = append(rep.Benchmarks, b)
		switch b.Name {
		case "BenchmarkStage2IterClone":
			rep.Stage2CloneNs = b.NsPerOp
		case "BenchmarkStage2IterMove":
			rep.Stage2MoveNs = b.NsPerOp
		case "BenchmarkStage1IterClone":
			rep.Stage1CloneNs = b.NsPerOp
		case "BenchmarkStage1IterMove":
			rep.Stage1MoveNs = b.NsPerOp
		}
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark lines found in %s", *goOut))
	}
	if rep.Stage2CloneNs > 0 && rep.Stage2MoveNs > 0 {
		rep.Stage2Speedup = round2(rep.Stage2CloneNs / rep.Stage2MoveNs)
	}
	if rep.Stage1CloneNs > 0 && rep.Stage1MoveNs > 0 {
		rep.Stage1Speedup = round2(rep.Stage1CloneNs / rep.Stage1MoveNs)
	}

	if *expJSON != "" {
		raw, err := os.ReadFile(*expJSON)
		if err != nil {
			fatal(err)
		}
		if !json.Valid(raw) {
			fatal(fmt.Errorf("%s: not valid JSON", *expJSON))
		}
		rep.Experiments = json.RawMessage(strings.TrimSpace(string(raw)))
		rep.ExperimentSource = "dmfb-bench -json"
	}

	if (*camp1 == "") != (*campN == "") {
		fatal(fmt.Errorf("-campaign1 and -campaignN must be given together"))
	}
	if *camp1 != "" {
		c1, cn := readCampaign(*camp1), readCampaign(*campN)
		rep.CampaignIdentical = string(c1.Summary) == string(cn.Summary)
		if !rep.CampaignIdentical {
			fatal(fmt.Errorf("campaign summaries differ between %d and %d workers — determinism broken",
				c1.Workers, cn.Workers))
		}
		var s struct {
			Trials int `json:"trials"`
		}
		_ = json.Unmarshal(c1.Summary, &s)
		rep.CampaignTrials = s.Trials
		rep.CampaignWorkers = cn.Workers
		rep.Campaign1MS = round2(c1.ElapsedMS)
		rep.CampaignNMS = round2(cn.ElapsedMS)
		if cn.ElapsedMS > 0 {
			rep.CampaignSpeedup = round2(c1.ElapsedMS / cn.ElapsedMS)
		}
	}

	if (*assayL1 == "") != (*assayLadder == "") {
		fatal(fmt.Errorf("-assay-l1 and -assay-ladder must be given together"))
	}
	if *assayL1 != "" {
		l1, ladder := readCampaign(*assayL1), readCampaign(*assayLadder)
		if l1.RecoveryMode != "l1" || ladder.RecoveryMode != "ladder" {
			fatal(fmt.Errorf("assay runs have recovery modes %q and %q, want l1 and ladder",
				l1.RecoveryMode, ladder.RecoveryMode))
		}
		s1, sl := l1.stats(*assayL1), ladder.stats(*assayLadder)
		if s1.Trials != sl.Trials {
			fatal(fmt.Errorf("assay trial counts differ: l1 %d vs ladder %d", s1.Trials, sl.Trials))
		}
		if s1.Errors != 0 || sl.Errors != 0 {
			fatal(fmt.Errorf("assay campaigns had errored trials: l1 %d, ladder %d", s1.Errors, sl.Errors))
		}
		if sl.Survived <= s1.Survived {
			fatal(fmt.Errorf("ladder completed %d/%d trials, not strictly better than L1's %d/%d",
				sl.Survived, sl.Trials, s1.Survived, s1.Trials))
		}
		rep.RecoveryTrials = s1.Trials
		rep.SurvivalL1 = s1.SurvivalRate
		rep.SurvivalLadder = sl.SurvivalRate
		rep.SurvivalGain = round2(sl.SurvivalRate - s1.SurvivalRate)
	}

	if *multistartJSON != "" {
		raw, err := os.ReadFile(*multistartJSON)
		if err != nil {
			fatal(err)
		}
		runs := readExpRuns(*multistartJSON, raw)
		get := func(name string) float64 {
			v, ok := measure(runs, "multistart", name)
			if !ok {
				fatal(fmt.Errorf("%s: multistart experiment has no %q measurement", *multistartJSON, name))
			}
			return v
		}
		identical := get("winner_identical") == 1
		if !identical {
			fatal(fmt.Errorf("multi-start winners differ across worker counts — determinism broken"))
		}
		rep.MultistartStarts = int(get("starts"))
		rep.MultistartCPUs = int(get("cpus"))
		rep.MultistartSingleMS = round2(get("single_start_ms"))
		rep.MultistartSerialMS = round2(get("serial_ms"))
		rep.MultistartParallelMS = round2(get("parallel_ms"))
		rep.MultistartSpeedup = round2(get("multistart_speedup"))
		rep.MultistartWinnerIdentical = identical
		rep.MultistartTargetFTI = get("target_fti")
		rep.MultistartWinnerFTI = get("winner_fti")
		rep.ToTargetFTIMS = round2(get("to_target_fti_ms"))
		if rep.MultistartCPUs >= 4 && rep.MultistartSpeedup < 2 {
			fatal(fmt.Errorf("multi-start speedup %.2fx on %d CPUs, want >= 2x",
				rep.MultistartSpeedup, rep.MultistartCPUs))
		}
		if rep.MultistartWinnerFTI < rep.MultistartTargetFTI {
			fatal(fmt.Errorf("multi-start winner FTI %.4f below single-start target %.4f — best-of selection regressed",
				rep.MultistartWinnerFTI, rep.MultistartTargetFTI))
		}
	}

	if *yieldJSON != "" {
		raw, err := os.ReadFile(*yieldJSON)
		if err != nil {
			fatal(err)
		}
		runs := readExpRuns(*yieldJSON, raw)
		prob, ok := measure(runs, "yieldsweep", "defect_prob")
		if !ok {
			fatal(fmt.Errorf("%s: yieldsweep experiment has no defect_prob measurement", *yieldJSON))
		}
		trials, _ := measure(runs, "yieldsweep", "trials")
		rep.YieldDefectProb = prob
		rep.YieldTrials = int(trials)
		rep.YieldCurve = yieldCurve(runs, *yieldJSON)
		if len(rep.YieldCurve) < 3 {
			fatal(fmt.Errorf("yield curve has %d spare-budget points, want >= 3", len(rep.YieldCurve)))
		}
		for i := 1; i < len(rep.YieldCurve); i++ {
			a, b := rep.YieldCurve[i-1], rep.YieldCurve[i]
			if b.AreaCells <= a.AreaCells {
				fatal(fmt.Errorf("yield curve area not increasing: spares=%d at %.0f cells vs spares=%d at %.0f — spare lines are not real cells",
					b.Spares, b.AreaCells, a.Spares, a.AreaCells))
			}
		}
		first, last := rep.YieldCurve[0], rep.YieldCurve[len(rep.YieldCurve)-1]
		if last.Yield < first.Yield {
			fatal(fmt.Errorf("yield fell from %.4f (spares=%d) to %.4f (spares=%d) — space redundancy no longer pays for its area",
				first.Yield, first.Spares, last.Yield, last.Spares))
		}
	}

	if *serveJSON != "" {
		raw, err := os.ReadFile(*serveJSON)
		if err != nil {
			fatal(err)
		}
		var sr struct {
			Requests     int     `json:"requests"`
			RPS          float64 `json:"rps"`
			CacheHits    int     `json:"cache_hits"`
			CacheHitRate float64 `json:"cache_hit_rate"`
		}
		if err := json.Unmarshal(raw, &sr); err != nil {
			fatal(fmt.Errorf("%s: %w", *serveJSON, err))
		}
		// The replay cycles 4 distinct requests from a cold cache, so
		// exactly 4 misses are expected; anything else means the cache
		// broke and the throughput number is not comparable.
		if want := sr.Requests - 4; sr.Requests >= 8 && sr.CacheHits != want {
			fatal(fmt.Errorf("serve replay: %d cache hits on %d requests, want %d — placement cache misbehaving",
				sr.CacheHits, sr.Requests, want))
		}
		rep.ServeRequests = sr.Requests
		rep.ServeRPS = round2(sr.RPS)
		rep.ServeCacheHits = sr.CacheHits
		rep.ServeCacheHitRate = sr.CacheHitRate
	}

	if *prev != "" {
		checkRegression(*prev, rep)
	}

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*out, append(enc, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("benchreport: wrote %s (%d benchmarks", *out, len(rep.Benchmarks))
	if rep.Stage2Speedup > 0 {
		fmt.Printf(", stage-2 speedup %.2fx", rep.Stage2Speedup)
	}
	if rep.CampaignSpeedup > 0 {
		fmt.Printf(", campaign %d-worker speedup %.2fx", rep.CampaignWorkers, rep.CampaignSpeedup)
	}
	if rep.MultistartStarts > 0 {
		fmt.Printf(", %d-start multi-start speedup %.2fx on %d CPU(s)",
			rep.MultistartStarts, rep.MultistartSpeedup, rep.MultistartCPUs)
	}
	if rep.RecoveryTrials > 0 {
		fmt.Printf(", assay survival %.4f (l1) -> %.4f (ladder)", rep.SurvivalL1, rep.SurvivalLadder)
	}
	if rep.ServeRequests > 0 {
		fmt.Printf(", serve %.1f req/s at %.2f hit rate", rep.ServeRPS, rep.ServeCacheHitRate)
	}
	if len(rep.YieldCurve) > 0 {
		first, last := rep.YieldCurve[0], rep.YieldCurve[len(rep.YieldCurve)-1]
		fmt.Printf(", yield %.4f -> %.4f over spares %d -> %d at q=%g",
			first.Yield, last.Yield, first.Spares, last.Spares, rep.YieldDefectProb)
	}
	fmt.Println(")")
}

// checkRegression refuses the new report when it regresses against
// the previous one: the stage-2 move kernel may not slow down by more
// than 10% (timer-noise allowance — cross-machine comparisons are the
// caller's responsibility), and the seeded fig8 experiment may not
// lose FTI or gain area at all, since it is deterministic. A missing
// or unreadable previous report skips the gate with a warning so a
// fresh checkout can still assemble its first report.
func checkRegression(path string, rep report) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchreport: no previous report (%v); skipping regression gate\n", err)
		return
	}
	var old report
	if err := json.Unmarshal(raw, &old); err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	if old.Stage2MoveNs > 0 && rep.Stage2MoveNs > old.Stage2MoveNs*1.10 {
		fatal(fmt.Errorf("stage-2 move kernel regressed: %.1f ns/op vs previous %.1f ns/op (+%.0f%%)",
			rep.Stage2MoveNs, old.Stage2MoveNs, 100*(rep.Stage2MoveNs/old.Stage2MoveNs-1)))
	}
	// The yield campaigns are seeded and deterministic, so at the same
	// pinned defect density any per-point yield drop is a real placement
	// or recovery regression, not noise.
	if len(old.YieldCurve) > 0 && len(rep.YieldCurve) > 0 &&
		old.YieldDefectProb == rep.YieldDefectProb {
		for _, op := range old.YieldCurve {
			for _, np := range rep.YieldCurve {
				if np.Spares == op.Spares && np.Yield < op.Yield {
					fatal(fmt.Errorf("yield at spares=%d q=%g regressed: %.4f vs previous %.4f",
						np.Spares, rep.YieldDefectProb, np.Yield, op.Yield))
				}
			}
		}
	}
	if len(old.Experiments) == 0 || len(rep.Experiments) == 0 {
		return
	}
	oldRuns := readExpRuns(path, old.Experiments)
	newRuns := readExpRuns("experiments", rep.Experiments)
	if oldFTI, ok := measure(oldRuns, "fig8", "twostage_fti"); ok {
		if newFTI, ok := measure(newRuns, "fig8", "twostage_fti"); ok && newFTI < oldFTI {
			fatal(fmt.Errorf("fig8 FTI regressed: %.4f vs previous %.4f", newFTI, oldFTI))
		}
	}
	if oldArea, ok := measure(oldRuns, "fig8", "twostage_area"); ok {
		if newArea, ok := measure(newRuns, "fig8", "twostage_area"); ok && newArea > oldArea {
			fatal(fmt.Errorf("fig8 area regressed: %.0f cells vs previous %.0f cells", newArea, oldArea))
		}
	}
}

func round2(v float64) float64 {
	return float64(int64(v*100+0.5)) / 100
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchreport:", err)
	os.Exit(1)
}
