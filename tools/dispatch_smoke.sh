#!/bin/sh
# dispatch_smoke.sh — end-to-end smoke test of the distributed
# campaign service with real binaries: boot dmfb-dispatch on a free
# port, attach two dmfb-simd workers, submit the seeded 512-trial
# assay campaign, wait for completion and byte-compare the fleet's
# merged summary against the single-process dmfb-campaign engine.
# Exercises the real processes (flags, listener, lease protocol,
# graceful SIGTERM) where the unit tests use httptest.
set -eu

bin=${1:?usage: dispatch_smoke.sh <dir with dmfb-dispatch, dmfb-simd, dmfb-campaign>}
tmp=$(mktemp -d)
dpid=
w1pid=
w2pid=
trap 'kill "$dpid" "$w1pid" "$w2pid" 2>/dev/null || true; rm -rf "$tmp"' EXIT

"$bin/dmfb-dispatch" serve -addr 127.0.0.1:0 -chunk 64 -state "$tmp/state" 2> "$tmp/stderr" &
dpid=$!

url=
for _ in $(seq 1 100); do
    url=$(sed -n 's#^dmfb-dispatch: listening on \(http://.*\)$#\1#p' "$tmp/stderr")
    [ -n "$url" ] && break
    kill -0 "$dpid" 2>/dev/null || { echo "dispatcher died at startup:"; cat "$tmp/stderr"; exit 1; }
    sleep 0.1
done
[ -n "$url" ] || { echo "dispatcher never reported its address"; cat "$tmp/stderr"; exit 1; }

"$bin/dmfb-simd" -dispatcher "$url" -name smoke1 -max-idle 5s 2> "$tmp/w1.log" &
w1pid=$!
"$bin/dmfb-simd" -dispatcher "$url" -name smoke2 -max-idle 5s 2> "$tmp/w2.log" &
w2pid=$!

out=$("$bin/dmfb-dispatch" submit -to "$url" \
    -mode assay -k 1 -recovery l1 -trials 512 -seed 5)
echo "$out"
id=$(echo "$out" | awk '{print $2}')
[ -n "$id" ] || { echo "no campaign id in submit output"; exit 1; }

"$bin/dmfb-dispatch" wait -to "$url" -timeout 120s -summary "$tmp/dist.json" "$id"

"$bin/dmfb-campaign" -mode assay -k 1 -recovery l1 -trials 512 -seed 5 \
    -quiet -summary "$tmp/single.json" > /dev/null

cmp -s "$tmp/dist.json" "$tmp/single.json" || {
    echo "distributed summary differs from single-process engine:"
    diff "$tmp/dist.json" "$tmp/single.json" || true
    exit 1
}

curl -fsS "$url/healthz" | grep -qx ok || { echo "/healthz failed"; exit 1; }
curl -fsS "$url/metrics" | grep -q dmfb_dispatch_leases_issued || { echo "/metrics missing dispatch counters"; exit 1; }
curl -fsS "$url/progress" | grep -q '"dispatcher"' || { echo "/progress missing fleet overview"; exit 1; }

kill -TERM "$dpid"
wait "$dpid" || { echo "dispatcher exited nonzero on SIGTERM:"; cat "$tmp/stderr"; exit 1; }
wait "$w1pid" || { echo "worker 1 exited nonzero:"; cat "$tmp/w1.log"; exit 1; }
wait "$w2pid" || { echo "worker 2 exited nonzero:"; cat "$tmp/w2.log"; exit 1; }
echo "dispatch-smoke: ok (2-worker summary byte-identical to single-process)"
