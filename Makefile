GO ?= go
FUZZTIME ?= 10s
CAMPAIGN_TRIALS ?= 10000
CAMPAIGN_WORKERS ?= 8
RECOVERY_TRIALS ?= 512
SERVE_REQUESTS ?= 100
MULTISTART_STARTS ?= 4

.PHONY: all build test race vet fmtcheck errcheck rowguard fuzz bench benchquick serve-smoke dispatch-smoke yield-smoke ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# errcheck forbids discarded error / ok returns (`_ =`, `x, _ :=`) in
# the packages where a swallowed failure silently corrupts a recovery
# decision, a campaign aggregate, or an ops response. Tests are exempt.
errcheck:
	@out="$$(grep -rnE '(^|[^[:alnum:]_])_ =|, _ =|, _ :=' \
		--include='*.go' --exclude='*_test.go' \
		internal/recovery internal/sim internal/campaign internal/obs \
		internal/pipeline internal/pcache internal/server internal/dispatch || true)"; \
	if [ -n "$$out" ]; then \
		echo "ignored error returns (handle or propagate):"; echo "$$out"; exit 1; \
	fi

# rowguard keeps callers off the deprecated grid.Row(y) []bool shim:
# it allocates per call where RowWords is free. Only internal/grid
# itself (the shim and its tests) may reference it.
rowguard:
	@out="$$(grep -rn '\.Row(' --include='*.go' \
		--exclude-dir=grid cmd internal tools *.go 2>/dev/null || true)"; \
	if [ -n "$$out" ]; then \
		echo "deprecated grid.Row(y) callers (use RowWords):"; echo "$$out"; exit 1; \
	fi

# fuzz smoke-runs every native fuzz target for FUZZTIME each (go only
# accepts one -fuzz pattern per invocation). Seed corpora live in the
# packages' testdata/fuzz directories and also replay under plain
# `make test`.
fuzz:
	$(GO) test -run '^$$' -fuzz '^FuzzPlanModule$$' -fuzztime $(FUZZTIME) ./internal/reconfig/
	$(GO) test -run '^$$' -fuzz '^FuzzRecover$$' -fuzztime $(FUZZTIME) ./internal/reconfig/
	$(GO) test -run '^$$' -fuzz '^FuzzMiner$$' -fuzztime $(FUZZTIME) ./internal/emptyrect/
	$(GO) test -run '^$$' -fuzz '^FuzzRowWords$$' -fuzztime $(FUZZTIME) ./internal/grid/
	$(GO) test -run '^$$' -fuzz '^FuzzLadder$$' -fuzztime $(FUZZTIME) ./internal/recovery/
	$(GO) test -run '^$$' -fuzz '^FuzzChunkMerge$$' -fuzztime $(FUZZTIME) ./internal/campaign/
	$(GO) test -run '^$$' -fuzz '^FuzzDefectMap$$' -fuzztime $(FUZZTIME) ./internal/defect/

# bench measures the annealing inner loop (clone-and-recompute vs the
# incremental move kernel), one end-to-end fault-tolerant PCR
# placement, the fault-injection campaign's worker scaling (the same
# seeded campaign at 1 and CAMPAIGN_WORKERS workers; summaries must be
# identical, wall-clock speedup is recorded), and the recovery ladder's
# completion gain: the same RECOVERY_TRIALS-trial seeded single-fault
# assay campaign under L1-only recovery and under the full ladder
# (benchreport refuses the report unless the ladder strictly improves
# completion with zero errored trials). The multistart experiment runs
# the same MULTISTART_STARTS-start derived-seed search serially and in
# parallel: benchreport refuses the report unless the winners are
# byte-identical, and records the wall-clock speedup plus the
# time-to-target-FTI. The yieldsweep experiment runs the seeded
# 512-trial clustered-defect yield campaign at spare budgets 0, 2 and
# 4 (benchreport refuses the report unless the yield-vs-area curve
# has at least three points with strictly increasing area and the
# max-spares yield is no worse than the spare-free one). -prev gates
# the fresh report against the committed one: a stage-2 ns/op
# regression beyond timer noise, any fig8 FTI/area regression, or a
# yield drop at any spare budget at the pinned defect density refuses
# the report. Assembles BENCH_place.json at the repo root.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkStage|BenchmarkActiveDuring' \
		-benchtime 200000x -benchmem ./internal/core/ ./internal/place/ \
		| tee bench_go.out
	$(GO) run ./cmd/dmfb-bench -exp fig8 -json bench_exp.json
	$(GO) run ./cmd/dmfb-bench -exp multistart -starts $(MULTISTART_STARTS) \
		-json bench_multistart.json
	$(GO) run ./cmd/dmfb-campaign -trials $(CAMPAIGN_TRIALS) -k 3 -workers 1 \
		-quiet -json bench_campaign1.json
	$(GO) run ./cmd/dmfb-campaign -trials $(CAMPAIGN_TRIALS) -k 3 -workers $(CAMPAIGN_WORKERS) \
		-quiet -json bench_campaignN.json
	$(GO) run ./cmd/dmfb-campaign -mode assay -k 1 -recovery l1 \
		-trials $(RECOVERY_TRIALS) -seed 5 -quiet -json bench_assay_l1.json
	$(GO) run ./cmd/dmfb-campaign -mode assay -k 1 -recovery ladder \
		-trials $(RECOVERY_TRIALS) -seed 5 -quiet -json bench_assay_ladder.json
	$(GO) run ./cmd/dmfb-server -addr 127.0.0.1:0 -replay $(SERVE_REQUESTS) \
		-json bench_serve.json
	$(GO) run ./cmd/dmfb-bench -exp yieldsweep -json bench_yield.json
	$(GO) run ./tools/benchreport -go bench_go.out -exp bench_exp.json \
		-campaign1 bench_campaign1.json -campaignN bench_campaignN.json \
		-assay-l1 bench_assay_l1.json -assay-ladder bench_assay_ladder.json \
		-serve bench_serve.json -multistart bench_multistart.json \
		-yield bench_yield.json \
		-prev BENCH_place.json \
		-out BENCH_place.json
	rm -f bench_go.out bench_exp.json bench_campaign1.json bench_campaignN.json \
		bench_assay_l1.json bench_assay_ladder.json bench_serve.json \
		bench_multistart.json bench_yield.json

benchquick:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

# serve-smoke boots the real dmfb-server binary on a free port,
# compiles the same assay twice over HTTP and asserts the second
# response is a byte-identical cache hit, then SIGTERMs it and expects
# a graceful drain. See tools/serve_smoke.sh.
serve-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/dmfb-server ./cmd/dmfb-server && \
	sh tools/serve_smoke.sh $$tmp/dmfb-server; \
	rc=$$?; rm -rf $$tmp; exit $$rc

# dispatch-smoke boots the real distributed campaign service — a
# dmfb-dispatch dispatcher plus two dmfb-simd workers — submits the
# seeded 512-trial assay campaign and byte-compares the fleet's merged
# summary against the single-process dmfb-campaign engine. See
# tools/dispatch_smoke.sh.
dispatch-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/dmfb-dispatch ./cmd/dmfb-dispatch && \
	$(GO) build -o $$tmp/dmfb-simd ./cmd/dmfb-simd && \
	$(GO) build -o $$tmp/dmfb-campaign ./cmd/dmfb-campaign && \
	sh tools/dispatch_smoke.sh $$tmp; \
	rc=$$?; rm -rf $$tmp; exit $$rc

# yield-smoke runs a small clustered-defect yield campaign with a
# 2-line spare budget at 1 and 4 workers and byte-compares the
# deterministic summaries, then exercises the design-time
# local-reconfiguration (-ladder) path. Fast enough for CI.
yield-smoke:
	@tmp=$$(mktemp -d); \
	$(GO) build -o $$tmp/dmfb-campaign ./cmd/dmfb-campaign && \
	$$tmp/dmfb-campaign -mode yield -defect-model clustered -defect-prob 0.03 \
		-spares 2 -trials 128 -seed 11 -workers 1 -quiet -summary $$tmp/w1.json && \
	$$tmp/dmfb-campaign -mode yield -defect-model clustered -defect-prob 0.03 \
		-spares 2 -trials 128 -seed 11 -workers 4 -quiet -summary $$tmp/w4.json && \
	cmp $$tmp/w1.json $$tmp/w4.json && \
	$$tmp/dmfb-campaign -mode yield -defect-model clustered -defect-prob 0.03 \
		-ladder -trials 16 -seed 11 -quiet && \
	echo "yield-smoke: ok (clustered summaries byte-identical at 1 and 4 workers)"; \
	rc=$$?; rm -rf $$tmp; exit $$rc

ci: vet build test race fmtcheck errcheck rowguard

clean:
	$(GO) clean ./...
