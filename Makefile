GO ?= go

.PHONY: all build test race vet fmtcheck bench benchquick ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

# bench measures the annealing inner loop (clone-and-recompute vs the
# incremental move kernel) and one end-to-end fault-tolerant PCR
# placement, then assembles BENCH_place.json at the repo root.
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkStage|BenchmarkActiveDuring' \
		-benchtime 200000x -benchmem ./internal/core/ ./internal/place/ \
		| tee bench_go.out
	$(GO) run ./cmd/dmfb-bench -exp fig8 -json bench_exp.json
	$(GO) run ./tools/benchreport -go bench_go.out -exp bench_exp.json -out BENCH_place.json
	rm -f bench_go.out bench_exp.json

benchquick:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

ci: vet build test race fmtcheck

clean:
	$(GO) clean ./...
