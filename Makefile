GO ?= go

.PHONY: all build test race vet fmtcheck bench ci clean

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

fmtcheck:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

bench:
	$(GO) test -bench=. -benchtime=1x -run '^$$' ./...

ci: vet build test race fmtcheck

clean:
	$(GO) clean ./...
