package dmfb

// End-to-end tests of the distributed campaign service driven through
// the real binaries: a dmfb-dispatch dispatcher process, dmfb-simd
// worker processes (including one SIGKILLed mid-lease), and byte-level
// comparison of the fleet's merged summary against the single-process
// dmfb-campaign engine.

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"syscall"
	"testing"
	"time"
)

// dispatchStatus is the slice of the dispatcher's status JSON the
// tests steer by.
type dispatchStatus struct {
	ID            string `json:"id"`
	State         string `json:"state"`
	Trials        int    `json:"trials"`
	Done          int    `json:"done"`
	PendingChunks int    `json:"pending_chunks"`
	LeasedChunks  int    `json:"leased_chunks"`
	Failure       string `json:"failure"`
}

// startDispatcher launches the dispatcher binary and returns its base
// URL once the listening line appears on stderr.
func startDispatcher(t *testing.T, bin string, extra ...string) string {
	t.Helper()
	args := append([]string{"serve", "-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(filepath.Join(bin, "dmfb-dispatch"), args...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	sc := bufio.NewScanner(stderr)
	for sc.Scan() {
		if _, rest, ok := strings.Cut(sc.Text(), "listening on http://"); ok {
			go io.Copy(io.Discard, stderr)
			return "http://" + strings.TrimSpace(rest)
		}
	}
	t.Fatalf("dispatcher never printed its listening line (scan err: %v)", sc.Err())
	return ""
}

// startWorker launches a dmfb-simd process against the dispatcher.
func startWorker(t *testing.T, bin, url, name string, extra ...string) *exec.Cmd {
	t.Helper()
	args := append([]string{"-dispatcher", url, "-name", name}, extra...)
	cmd := exec.Command(filepath.Join(bin, "dmfb-simd"), args...)
	cmd.Stderr = io.Discard
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	return cmd
}

// getStatus polls GET /v1/campaigns/{id} (which also reaps expired
// leases server-side).
func getStatus(t *testing.T, url, id string) dispatchStatus {
	t.Helper()
	resp, err := http.Get(url + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatalf("status: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("status read: %v", err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d: %s", resp.StatusCode, raw)
	}
	var st dispatchStatus
	if err := json.Unmarshal(raw, &st); err != nil {
		t.Fatalf("status JSON invalid: %v\n%s", err, raw)
	}
	return st
}

// submitCampaign submits the canonical 512-trial seeded assay
// campaign through the real client and returns the campaign id.
func submitCampaign(t *testing.T, bin, url string) string {
	t.Helper()
	out := run(t, filepath.Join(bin, "dmfb-dispatch"), true,
		"submit", "-to", url, "-mode", "assay", "-k", "1", "-recovery", "l1",
		"-trials", "512", "-seed", "5")
	fields := strings.Fields(out)
	if len(fields) < 2 || fields[0] != "submitted" {
		t.Fatalf("unexpected submit output: %q", out)
	}
	return fields[1]
}

// singleProcessSummary runs the same campaign through dmfb-campaign
// -summary and returns the deterministic bytes.
func singleProcessSummary(t *testing.T, bin string) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "single.json")
	run(t, filepath.Join(bin, "dmfb-campaign"), true,
		"-mode", "assay", "-k", "1", "-recovery", "l1",
		"-trials", "512", "-seed", "5", "-workers", "1", "-quiet", "-summary", path)
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestCLIDispatchChaos is the cross-process byte-identity test under
// failure: one worker is SIGKILLed while it holds a lease, the
// dispatcher expires and re-issues the chunk to a fresh fleet, and
// the merged 512-trial summary still matches the single-process
// engine byte for byte.
func TestCLIDispatchChaos(t *testing.T) {
	bin := buildCLI(t)
	url := startDispatcher(t, bin, "-chunk", "64", "-lease-ttl", "750ms",
		"-state", t.TempDir())
	id := submitCampaign(t, bin, url)

	// One slow worker (one trial per results batch) so the kill lands
	// mid-lease with near certainty.
	victim := startWorker(t, bin, url, "victim", "-batch", "1", "-workers", "1")

	// Wait until the victim holds a lease and has recorded some — but
	// not all — trials, then SIGKILL it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, url, id)
		if st.Done > 0 && st.Done < st.Trials && st.LeasedChunks > 0 {
			break
		}
		if st.State == "done" {
			t.Fatal("campaign finished before the chaos kill; slow the victim down")
		}
		if time.Now().After(deadline) {
			t.Fatalf("victim never made partial progress: %+v", st)
		}
		time.Sleep(2 * time.Millisecond)
	}
	if err := victim.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}
	victim.Wait()
	killedAt := getStatus(t, url, id)

	// The orphaned lease must expire and its chunk return to the
	// pending queue (status requests drive the dispatcher's reaper).
	deadline = time.Now().Add(30 * time.Second)
	for {
		st := getStatus(t, url, id)
		if st.LeasedChunks == 0 && st.PendingChunks > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed worker's lease never expired: %+v (at kill: %+v)", st, killedAt)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// A replacement fleet of three workers drains the rest, including
	// the re-issued chunk with the victim's partially reported trials.
	for i := 0; i < 3; i++ {
		startWorker(t, bin, url, fmt.Sprintf("w%d", i), "-max-idle", "2s", "-quiet")
	}
	distPath := filepath.Join(t.TempDir(), "dist.json")
	out := run(t, filepath.Join(bin, "dmfb-dispatch"), true,
		"wait", "-to", url, "-timeout", "60s", "-summary", distPath, id)
	if !strings.Contains(out, "done") {
		t.Fatalf("wait did not report done:\n%s", out)
	}
	dist, err := os.ReadFile(distPath)
	if err != nil {
		t.Fatal(err)
	}
	if want := singleProcessSummary(t, bin); string(dist) != string(want) {
		t.Errorf("distributed summary differs from single-process after chaos:\n got %s\nwant %s",
			dist, want)
	}
}

// TestCLIDispatchWorkerCounts pins byte-identity across fleet sizes:
// 1, 2 and 4 real worker processes all reproduce the single-process
// summary bytes.
func TestCLIDispatchWorkerCounts(t *testing.T) {
	bin := buildCLI(t)
	want := singleProcessSummary(t, bin)
	for _, n := range []int{1, 2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) {
			url := startDispatcher(t, bin, "-chunk", "32")
			id := submitCampaign(t, bin, url)
			for i := 0; i < n; i++ {
				startWorker(t, bin, url, fmt.Sprintf("w%d", i), "-max-idle", "2s", "-quiet")
			}
			path := filepath.Join(t.TempDir(), "dist.json")
			run(t, filepath.Join(bin, "dmfb-dispatch"), true,
				"wait", "-to", url, "-timeout", "60s", "-summary", path, id)
			got, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if string(got) != string(want) {
				t.Errorf("%d workers: summary differs from single-process:\n got %s\nwant %s",
					n, got, want)
			}
		})
	}
}

// elapsedMS wipes the only wall-clock field in the dispatcher's
// status JSON.
var elapsedMS = regexp.MustCompile(`"elapsed_ms": [0-9.e+-]+`)

// TestCLIGoldenDispatch pins the dmfb-dispatch client's stdout and
// the dispatcher's status JSON for a completed campaign.
func TestCLIGoldenDispatch(t *testing.T) {
	bin := buildCLI(t)
	update := os.Getenv("DMFB_UPDATE_GOLDEN") != ""
	url := startDispatcher(t, bin, "-chunk", "64")

	subOut := run(t, filepath.Join(bin, "dmfb-dispatch"), true,
		"submit", "-to", url, "-mode", "assay", "-k", "1", "-recovery", "l1",
		"-trials", "512", "-seed", "5")
	compareGolden(t, "dispatch_submit.golden", subOut, update)
	id := strings.Fields(subOut)[1]

	startWorker(t, bin, url, "w0", "-max-idle", "2s", "-quiet")
	run(t, filepath.Join(bin, "dmfb-dispatch"), true,
		"wait", "-to", url, "-timeout", "60s", id)

	statusOut := run(t, filepath.Join(bin, "dmfb-dispatch"), true, "status", "-to", url, id)
	compareGolden(t, "dispatch_status.golden", statusOut, update)

	resp, err := http.Get(url + "/v1/campaigns/" + id)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	stable := elapsedMS.ReplaceAllString(string(raw), `"elapsed_ms": 0`)
	compareGolden(t, "dispatch_status_json.golden", stable, update)
}

// TestCLICampaignResumeFingerprint checks -resume refuses a
// checkpoint recorded under a different campaign configuration with a
// clear error and exit 1 — same name, seed and trial count, but a
// different placement seed, so silently merging the trial streams
// would corrupt the summary.
func TestCLICampaignResumeFingerprint(t *testing.T) {
	bin := buildCLI(t)
	tool := filepath.Join(bin, "dmfb-campaign")
	ckpt := filepath.Join(t.TempDir(), "run.jsonl")
	run(t, tool, true, "-mode", "assay", "-trials", "50", "-seed", "5",
		"-quiet", "-checkpoint", ckpt)
	out := run(t, tool, false, "-mode", "assay", "-trials", "50", "-seed", "5",
		"-place-seed", "9", "-quiet", "-checkpoint", ckpt, "-resume")
	if !strings.Contains(out, "refusing to resume") {
		t.Errorf("fingerprint mismatch not reported clearly:\n%s", out)
	}
}
