package fluidics

import (
	"strings"
	"testing"

	"dmfb/internal/geom"
)

func TestChipBasics(t *testing.T) {
	c := NewChip(8, 6)
	if c.W() != 8 || c.H() != 6 {
		t.Fatal("dims wrong")
	}
	p := geom.Point{X: 3, Y: 2}
	if c.IsFaulty(p) {
		t.Error("fresh chip faulty")
	}
	if err := c.InjectFault(p); err != nil {
		t.Fatal(err)
	}
	if !c.IsFaulty(p) {
		t.Error("fault not recorded")
	}
	if got := c.Faults(); len(got) != 1 || got[0] != p {
		t.Errorf("Faults = %v", got)
	}
	c.RepairFault(p)
	if c.IsFaulty(p) {
		t.Error("repair failed")
	}
	if err := c.InjectFault(geom.Point{X: 8, Y: 0}); err == nil {
		t.Error("out-of-bounds fault accepted")
	}
	if !c.IsFaulty(geom.Point{X: -1, Y: 0}) {
		t.Error("out-of-bounds should read faulty")
	}
}

func TestStepTiming(t *testing.T) {
	// 20 cm/s over 1.5 mm pitch = 7.5 ms per cell; the 10 ms control
	// step is the conservative prototype rate.
	if StepMS != 10 || StepsPerSecond != 100 {
		t.Fatal("timing constants wrong")
	}
}

func TestDispenseAndSeparation(t *testing.T) {
	s := NewState(NewChip(8, 8))
	d1, err := s.Dispense("kcl", geom.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if d1.Volume != 1 || d1.Fluid != "kcl" {
		t.Errorf("droplet = %+v", d1)
	}
	// Adjacent (even diagonal) dispense violates separation.
	if _, err := s.Dispense("x", geom.Point{X: 1, Y: 1}); err == nil {
		t.Error("diagonal-adjacent dispense accepted")
	}
	if _, err := s.Dispense("x", geom.Point{X: 0, Y: 1}); err == nil {
		t.Error("adjacent dispense accepted")
	}
	// Distance 2 is fine.
	if _, err := s.Dispense("x", geom.Point{X: 2, Y: 0}); err != nil {
		t.Errorf("separated dispense rejected: %v", err)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	// Faulty port.
	s2 := NewState(NewChip(4, 4))
	s2.Chip().InjectFault(geom.Point{X: 0, Y: 0})
	if _, err := s2.Dispense("x", geom.Point{X: 0, Y: 0}); err == nil {
		t.Error("dispense on faulty cell accepted")
	}
}

func TestMoveRules(t *testing.T) {
	s := NewState(NewChip(6, 6))
	d, _ := s.Dispense("a", geom.Point{X: 2, Y: 2})
	// Legal single step.
	if err := s.Move(d.ID, geom.Point{X: 3, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if got, _ := s.Droplet(d.ID); got.Pos != (geom.Point{X: 3, Y: 2}) {
		t.Errorf("pos = %v", got.Pos)
	}
	if s.Moves() != 1 {
		t.Errorf("Moves = %d", s.Moves())
	}
	// Diagonal and multi-cell moves rejected.
	if err := s.Move(d.ID, geom.Point{X: 4, Y: 3}); err == nil {
		t.Error("diagonal move accepted")
	}
	if err := s.Move(d.ID, geom.Point{X: 5, Y: 2}); err == nil {
		t.Error("two-cell jump accepted")
	}
	// Off-array move rejected.
	e, _ := s.Dispense("b", geom.Point{X: 0, Y: 5})
	if err := s.Move(e.ID, geom.Point{X: -1, Y: 5}); err == nil {
		t.Error("off-array move accepted")
	}
	// Unknown droplet.
	if err := s.Move(99, geom.Point{X: 0, Y: 0}); err == nil {
		t.Error("unknown droplet accepted")
	}
}

func TestMoveIntoFaultySticksDroplet(t *testing.T) {
	s := NewState(NewChip(6, 6))
	s.Chip().InjectFault(geom.Point{X: 3, Y: 2})
	d, _ := s.Dispense("a", geom.Point{X: 2, Y: 2})
	if err := s.Move(d.ID, geom.Point{X: 3, Y: 2}); err == nil {
		t.Fatal("move onto faulty cell accepted")
	}
	// Droplet stays put — detectable by the testing layer.
	got, _ := s.Droplet(d.ID)
	if got.Pos != (geom.Point{X: 2, Y: 2}) {
		t.Errorf("droplet moved to %v", got.Pos)
	}
}

func TestMoveSeparationViolation(t *testing.T) {
	s := NewState(NewChip(8, 8))
	a, _ := s.Dispense("a", geom.Point{X: 0, Y: 0})
	_, _ = s.Dispense("b", geom.Point{X: 3, Y: 0})
	// Moving a to (1,0) puts it diagonal/adjacent... distance to b
	// becomes 2 -> OK. Moving to (2,0) would be distance 1 -> blocked.
	if err := s.Move(a.ID, geom.Point{X: 1, Y: 0}); err != nil {
		t.Fatalf("legal move rejected: %v", err)
	}
	if err := s.Move(a.ID, geom.Point{X: 2, Y: 0}); err == nil {
		t.Error("separation-violating move accepted")
	}
}

func TestFollowPath(t *testing.T) {
	s := NewState(NewChip(6, 6))
	d, _ := s.Dispense("a", geom.Point{X: 0, Y: 0})
	path := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 1}}
	if err := s.FollowPath(d.ID, path); err != nil {
		t.Fatal(err)
	}
	got, _ := s.Droplet(d.ID)
	if got.Pos != (geom.Point{X: 2, Y: 1}) {
		t.Errorf("pos = %v", got.Pos)
	}
	if s.Moves() != 3 {
		t.Errorf("Moves = %d", s.Moves())
	}
	// Path must start at the droplet.
	if err := s.FollowPath(d.ID, []geom.Point{{X: 0, Y: 0}}); err == nil {
		t.Error("mis-anchored path accepted")
	}
	if err := s.FollowPath(d.ID, nil); err == nil {
		t.Error("empty path accepted")
	}
}

func TestMergeRules(t *testing.T) {
	s := NewState(NewChip(8, 8))
	a, _ := s.Dispense("kcl", geom.Point{X: 0, Y: 0})
	b, _ := s.Dispense("tris", geom.Point{X: 3, Y: 0})
	// Too far to coalesce.
	if _, err := s.Merge(a.ID, b.ID); err == nil {
		t.Fatal("distant merge accepted")
	}
	// Teleport respects the separation halo (Chebyshev < 2).
	if err := s.Teleport(b.ID, geom.Point{X: 1, Y: 0}); err == nil {
		t.Fatal("teleport into separation halo accepted")
	}
	// Distance 2 is legal for a plain move; distance 1 is not.
	if err := s.Move(b.ID, geom.Point{X: 2, Y: 0}); err != nil {
		t.Fatal(err)
	}
	if err := s.Move(b.ID, geom.Point{X: 1, Y: 0}); err == nil {
		t.Fatal("move into separation halo accepted")
	}
	// The final approach is MoveToMerge: separation waived against the
	// partner only.
	if err := s.MoveToMerge(b.ID, a.ID, geom.Point{X: 1, Y: 0}); err != nil {
		t.Fatal(err)
	}
	// But not against third droplets.
	c, _ := s.Dispense("dna", geom.Point{X: 0, Y: 4})
	if err := s.MoveToMerge(b.ID, a.ID, geom.Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err) // still fine: c is far away
	}
	if err := s.MoveToMerge(b.ID, a.ID, geom.Point{X: 1, Y: 2}); err != nil {
		t.Fatal(err)
	}
	if err := s.MoveToMerge(b.ID, a.ID, geom.Point{X: 1, Y: 3}); err == nil {
		t.Fatal("approach entered third droplet's halo")
	}
	_ = c
	if _, err := s.Merge(a.ID, a.ID); err == nil {
		t.Error("self-merge accepted")
	}
	if _, err := s.Merge(a.ID, 99); err == nil {
		t.Error("merge with unknown droplet accepted")
	}
}

func TestMergeAdjacent(t *testing.T) {
	// Build adjacency through the documented primitive order: dispense
	// far apart, then Merge moves are the simulator's responsibility.
	// The state-level contract: Merge succeeds iff Chebyshev ≤ 1.
	s := NewState(NewChip(8, 8))
	a, _ := s.Dispense("kcl", geom.Point{X: 0, Y: 0})
	b, _ := s.Dispense("tris", geom.Point{X: 2, Y: 1})
	// Chebyshev((0,0),(2,1)) = 2: too far.
	if _, err := s.Merge(a.ID, b.ID); err == nil {
		t.Fatal("too-far merge accepted")
	}
	// Move b one step closer: (1,1) is within a's halo — allowed only
	// for merge; the fluidics model treats the merge itself as the
	// moment of contact, so the approach uses MergeFrom semantics:
	// bring to distance where Merge is legal by moving a instead:
	// a (0,0) -> (1,0): distance to b (2,1) becomes 1: that move is
	// blocked by separation too. The physical reality: approach and
	// coalescence are one operation. Model decision: Merge performs
	// the final approach itself when distance == 2? No — the sim
	// always ends transports at distance ≤ 1 inside a module where
	// only the two partners are present, and SeparationOK excepts the
	// partner: Move with the halo of the partner excepted is done via
	// MoveToMerge.
	if err := s.MoveToMerge(b.ID, a.ID, geom.Point{X: 1, Y: 1}); err != nil {
		t.Fatal(err)
	}
	m, err := s.Merge(a.ID, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	if m.Volume != 2 {
		t.Errorf("merged volume = %v", m.Volume)
	}
	if !strings.Contains(m.Fluid, "kcl") || !strings.Contains(m.Fluid, "tris") {
		t.Errorf("merged fluid = %q", m.Fluid)
	}
	if s.Count() != 1 {
		t.Errorf("Count after merge = %d", s.Count())
	}
	if _, ok := s.At(geom.Point{X: 1, Y: 1}); ok {
		t.Error("b's cell still occupied")
	}
}

func TestSplit(t *testing.T) {
	s := NewState(NewChip(8, 8))
	a, _ := s.Dispense("kcl", geom.Point{X: 0, Y: 4})
	b, _ := s.Dispense("tris", geom.Point{X: 2, Y: 4})
	if err := s.MoveToMerge(b.ID, a.ID, geom.Point{X: 1, Y: 4}); err != nil {
		t.Fatal(err)
	}
	m, err := s.Merge(a.ID, b.ID)
	if err != nil {
		t.Fatal(err)
	}
	d1, d2, err := s.Split(m.ID, false)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Volume != 1 || d2.Volume != 1 {
		t.Errorf("split volumes = %v, %v", d1.Volume, d2.Volume)
	}
	if d1.Pos != (geom.Point{X: 0, Y: 3}) || d2.Pos != (geom.Point{X: 0, Y: 5}) {
		t.Errorf("split positions = %v, %v", d1.Pos, d2.Pos)
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d", s.Count())
	}
	// Unit droplets cannot split.
	if _, _, err := s.Split(d1.ID, true); err == nil {
		t.Error("unit split accepted")
	}
}

func TestRemoveAndAt(t *testing.T) {
	s := NewState(NewChip(4, 4))
	d, _ := s.Dispense("a", geom.Point{X: 1, Y: 1})
	if got, ok := s.At(geom.Point{X: 1, Y: 1}); !ok || got.ID != d.ID {
		t.Error("At lookup failed")
	}
	if err := s.Remove(d.ID); err != nil {
		t.Fatal(err)
	}
	if s.Count() != 0 {
		t.Error("Remove did not delete")
	}
	if _, ok := s.At(geom.Point{X: 1, Y: 1}); ok {
		t.Error("cell still occupied after Remove")
	}
	if err := s.Remove(d.ID); err == nil {
		t.Error("double remove accepted")
	}
}

func TestDropletsSnapshotIsolation(t *testing.T) {
	s := NewState(NewChip(4, 4))
	s.Dispense("a", geom.Point{X: 0, Y: 0})
	ds := s.Droplets()
	ds[0].Pos = geom.Point{X: 3, Y: 3}
	if got, _ := s.Droplet(ds[0].ID); got.Pos == (geom.Point{X: 3, Y: 3}) {
		t.Error("Droplets exposes internal state")
	}
}
