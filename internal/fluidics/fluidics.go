// Package fluidics models the physical substrate of a digital
// microfluidic biochip: the two-plate electrowetting cell array of the
// paper's Section 2, the droplets moving on it, and the fluidic
// constraints governing their interaction.
//
// Physics abstracted here (values from the paper and Pollack's
// electrowetting work): droplets are actuated by modulating interfacial
// tension with 0–90 V control voltages and travel at up to 20 cm/s; at
// the 1.5 mm electrode pitch of Table 1 a droplet therefore crosses
// one cell in about 10 ms. The model is discrete: one control step
// moves a droplet to an orthogonally adjacent cell.
//
// A cell fault (electrode stuck open/short, dielectric breakdown,
// per the fault classification of Su et al., ITC 2003) makes the cell
// unable to accept a droplet; droplets never enter faulty cells and a
// transport attempt into one leaves the droplet stuck in place, which
// is exactly the behaviour on-line testing exploits.
//
// The fluidic constraint enforced between independent droplets is the
// standard static rule for electrowetting arrays: two droplets that
// are not meant to merge must never occupy adjacent cells (including
// diagonals), otherwise they coalesce spontaneously.
package fluidics

import (
	"fmt"
	"sort"

	"dmfb/internal/geom"
	"dmfb/internal/grid"
)

// StepMS is the duration of one control step in milliseconds: one cell
// of travel at 20 cm/s over a 1.5 mm pitch, rounded to the control
// period used by the Duke prototypes.
const StepMS = 10

// StepsPerSecond converts schedule seconds to control steps.
const StepsPerSecond = 1000 / StepMS

// Chip is the physical array with per-cell health state.
type Chip struct {
	w, h   int
	faulty *grid.Grid
	// transient maps a faulty cell to the number of remaining probe
	// attempts that will still fail before the cell heals — the model
	// of intermittent electrode faults (droplet residue, charge
	// trapping) that clear under repeated actuation.
	transient map[geom.Point]int
}

// NewChip returns a fault-free w×h array.
func NewChip(w, h int) *Chip {
	return &Chip{w: w, h: h, faulty: grid.New(w, h)}
}

// W returns the array width in cells.
func (c *Chip) W() int { return c.w }

// H returns the array height in cells.
func (c *Chip) H() int { return c.h }

// Bounds returns the array extent.
func (c *Chip) Bounds() geom.Rect { return geom.Rect{X: 0, Y: 0, W: c.w, H: c.h} }

// In reports whether p is on the array.
func (c *Chip) In(p geom.Point) bool { return c.Bounds().Contains(p) }

// InjectFault marks cell p faulty. Out-of-bounds cells are rejected.
func (c *Chip) InjectFault(p geom.Point) error {
	if !c.In(p) {
		return fmt.Errorf("fluidics: fault %v outside %dx%d array", p, c.w, c.h)
	}
	c.faulty.Set(p, true)
	return nil
}

// InjectTransientFault marks cell p faulty for the next failProbes
// probe attempts; the failProbes+1'th probe succeeds and heals the
// cell. Until it heals, the cell behaves exactly like a permanent
// fault for every droplet operation — only Probe distinguishes the
// two, which is what the bounded-retry fault classification of the
// testdrop package exploits.
func (c *Chip) InjectTransientFault(p geom.Point, failProbes int) error {
	if failProbes < 1 {
		return fmt.Errorf("fluidics: transient fault at %v needs at least one failing probe, got %d",
			p, failProbes)
	}
	if err := c.InjectFault(p); err != nil {
		return err
	}
	if c.transient == nil {
		c.transient = make(map[geom.Point]int)
	}
	c.transient[p] = failProbes
	return nil
}

// Probe actuates cell p with a test stimulus and reports whether the
// cell accepted it. Healthy cells always pass; permanently faulty
// cells always fail; a transient fault fails its budgeted number of
// probes and then heals (the fault clears and subsequent probes and
// droplet operations succeed). Out-of-bounds cells read as failed.
func (c *Chip) Probe(p geom.Point) bool {
	if !c.In(p) {
		return false
	}
	if !c.faulty.Occupied(p) {
		return true
	}
	if n, ok := c.transient[p]; ok {
		n--
		if n <= 0 {
			delete(c.transient, p)
			c.faulty.Set(p, false)
		} else {
			c.transient[p] = n
		}
	}
	return false
}

// RepairFault clears the fault at p (e.g. after maintenance).
func (c *Chip) RepairFault(p geom.Point) {
	c.faulty.Set(p, false)
	delete(c.transient, p)
}

// IsFaulty reports whether cell p is faulty; out-of-bounds cells read
// as faulty.
func (c *Chip) IsFaulty(p geom.Point) bool { return c.faulty.Occupied(p) }

// Faults returns all faulty cells in row-major order.
func (c *Chip) Faults() []geom.Point {
	var out []geom.Point
	for y := 0; y < c.h; y++ {
		for x := 0; x < c.w; x++ {
			p := geom.Point{X: x, Y: y}
			if c.faulty.Occupied(p) {
				out = append(out, p)
			}
		}
	}
	return out
}

// Droplet is a discrete liquid packet on the array.
type Droplet struct {
	ID     int
	Pos    geom.Point
	Fluid  string  // contents label, e.g. "kcl" or "kcl+tris-hcl"
	Volume float64 // in dispense units; merging adds volumes
}

// State tracks the droplets present on a chip and enforces the
// fluidic constraints on every mutation.
type State struct {
	chip     *Chip
	droplets map[int]*Droplet
	occ      map[geom.Point]int // cell -> droplet ID
	nextID   int
	moves    int // total single-cell transport operations performed
}

// NewState returns an empty droplet state for the chip.
func NewState(chip *Chip) *State {
	return &State{
		chip:     chip,
		droplets: make(map[int]*Droplet),
		occ:      make(map[geom.Point]int),
	}
}

// Chip returns the underlying array.
func (s *State) Chip() *Chip { return s.chip }

// Moves returns the total number of single-cell moves executed — the
// transport cost of the assay so far.
func (s *State) Moves() int { return s.moves }

// Droplet returns the droplet with the given ID.
func (s *State) Droplet(id int) (*Droplet, bool) {
	d, ok := s.droplets[id]
	if !ok {
		return nil, false
	}
	cp := *d
	return &cp, true
}

// Droplets returns snapshots of all droplets, sorted by ID.
func (s *State) Droplets() []Droplet {
	out := make([]Droplet, 0, len(s.droplets))
	for _, d := range s.droplets {
		out = append(out, *d)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Count returns the number of droplets on the array.
func (s *State) Count() int { return len(s.droplets) }

// At returns the droplet occupying cell p, if any.
func (s *State) At(p geom.Point) (*Droplet, bool) {
	id, ok := s.occ[p]
	if !ok {
		return nil, false
	}
	return s.Droplet(id)
}

// chebyshev returns the L∞ distance, the metric of the merge
// constraint (diagonal adjacency also coalesces droplets).
func chebyshev(a, b geom.Point) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}

// SeparationOK reports whether a droplet could sit at p without
// violating the static constraint against every current droplet except
// the listed IDs.
func (s *State) SeparationOK(p geom.Point, except ...int) bool {
	skip := map[int]bool{}
	for _, id := range except {
		skip[id] = true
	}
	for id, d := range s.droplets {
		if skip[id] {
			continue
		}
		if chebyshev(p, d.Pos) < 2 {
			return false
		}
	}
	return true
}

// Dispense creates a droplet of the given fluid at cell p (normally a
// boundary port cell next to a reservoir). The cell must be healthy,
// unoccupied and respect droplet separation.
func (s *State) Dispense(fluid string, p geom.Point) (Droplet, error) {
	if !s.chip.In(p) {
		return Droplet{}, fmt.Errorf("fluidics: dispense at %v outside array", p)
	}
	if s.chip.IsFaulty(p) {
		return Droplet{}, fmt.Errorf("fluidics: dispense port cell %v is faulty", p)
	}
	if !s.SeparationOK(p) {
		return Droplet{}, fmt.Errorf("fluidics: dispense at %v violates droplet separation", p)
	}
	d := &Droplet{ID: s.nextID, Pos: p, Fluid: fluid, Volume: 1}
	s.nextID++
	s.droplets[d.ID] = d
	s.occ[p] = d.ID
	return *d, nil
}

// Move transports droplet id one cell to the orthogonally adjacent
// cell to. A move into a faulty cell fails and leaves the droplet in
// place (the electrode cannot pull it), as does a move that would
// violate the separation constraint against a droplet it is not
// allowed to merge with.
func (s *State) Move(id int, to geom.Point) error {
	d, ok := s.droplets[id]
	if !ok {
		return fmt.Errorf("fluidics: unknown droplet %d", id)
	}
	if d.Pos.Manhattan(to) != 1 {
		return fmt.Errorf("fluidics: droplet %d move %v -> %v is not a single step", id, d.Pos, to)
	}
	if !s.chip.In(to) {
		return fmt.Errorf("fluidics: droplet %d move to %v leaves the array", id, to)
	}
	if s.chip.IsFaulty(to) {
		return fmt.Errorf("fluidics: droplet %d stuck: cell %v is faulty", id, to)
	}
	if !s.SeparationOK(to, id) {
		return fmt.Errorf("fluidics: droplet %d move to %v violates separation", id, to)
	}
	delete(s.occ, d.Pos)
	d.Pos = to
	s.occ[to] = id
	s.moves++
	return nil
}

// MoveToMerge transports droplet id one cell to `to` as the final
// approach toward its merge partner: the separation constraint is
// waived against the partner only (coalescing with it is the intent),
// but still enforced against every other droplet.
func (s *State) MoveToMerge(id, partner int, to geom.Point) error {
	d, ok := s.droplets[id]
	if !ok {
		return fmt.Errorf("fluidics: unknown droplet %d", id)
	}
	if _, ok := s.droplets[partner]; !ok {
		return fmt.Errorf("fluidics: unknown merge partner %d", partner)
	}
	if d.Pos.Manhattan(to) != 1 {
		return fmt.Errorf("fluidics: droplet %d approach %v -> %v is not a single step", id, d.Pos, to)
	}
	if !s.chip.In(to) {
		return fmt.Errorf("fluidics: droplet %d approach to %v leaves the array", id, to)
	}
	if s.chip.IsFaulty(to) {
		return fmt.Errorf("fluidics: droplet %d stuck: cell %v is faulty", id, to)
	}
	if !s.SeparationOK(to, id, partner) {
		return fmt.Errorf("fluidics: droplet %d approach to %v violates separation", id, to)
	}
	delete(s.occ, d.Pos)
	d.Pos = to
	s.occ[to] = id
	s.moves++
	return nil
}

// FollowPath moves the droplet along consecutive cells. path[0] must
// be the droplet's current position. On error the droplet remains at
// the last cell reached.
func (s *State) FollowPath(id int, path []geom.Point) error {
	d, ok := s.droplets[id]
	if !ok {
		return fmt.Errorf("fluidics: unknown droplet %d", id)
	}
	if len(path) == 0 {
		return fmt.Errorf("fluidics: empty path for droplet %d", id)
	}
	if path[0] != d.Pos {
		return fmt.Errorf("fluidics: path starts at %v, droplet %d is at %v", path[0], id, d.Pos)
	}
	for _, next := range path[1:] {
		if err := s.Move(id, next); err != nil {
			return err
		}
	}
	return nil
}

// Merge coalesces droplet b into droplet a. The two droplets must be
// within merging range (Chebyshev distance ≤ 1 after transport, i.e.
// adjacent). The merged droplet keeps a's ID, sits at a's position,
// sums the volumes and concatenates the fluid labels.
func (s *State) Merge(a, b int) (Droplet, error) {
	da, ok := s.droplets[a]
	if !ok {
		return Droplet{}, fmt.Errorf("fluidics: unknown droplet %d", a)
	}
	db, ok := s.droplets[b]
	if !ok {
		return Droplet{}, fmt.Errorf("fluidics: unknown droplet %d", b)
	}
	if a == b {
		return Droplet{}, fmt.Errorf("fluidics: cannot merge droplet %d with itself", a)
	}
	if chebyshev(da.Pos, db.Pos) > 1 {
		return Droplet{}, fmt.Errorf("fluidics: droplets %d and %d too far to merge (%v, %v)",
			a, b, da.Pos, db.Pos)
	}
	da.Volume += db.Volume
	da.Fluid = da.Fluid + "+" + db.Fluid
	delete(s.occ, db.Pos)
	delete(s.droplets, b)
	s.moves++ // the coalescing transport step
	return *da, nil
}

// Split divides droplet id into two unit droplets placed at the two
// orthogonal neighbour cells along the given axis (dx=±1 splits
// horizontally, dy=±1 vertically — pass horizontal=true for the X
// axis). Both target cells must be healthy, free and separated.
// The original droplet must have at least 2 volume units.
func (s *State) Split(id int, horizontal bool) (Droplet, Droplet, error) {
	d, ok := s.droplets[id]
	if !ok {
		return Droplet{}, Droplet{}, fmt.Errorf("fluidics: unknown droplet %d", id)
	}
	if d.Volume < 2 {
		return Droplet{}, Droplet{}, fmt.Errorf("fluidics: droplet %d volume %.1f too small to split",
			id, d.Volume)
	}
	var p1, p2 geom.Point
	if horizontal {
		p1 = geom.Point{X: d.Pos.X - 1, Y: d.Pos.Y}
		p2 = geom.Point{X: d.Pos.X + 1, Y: d.Pos.Y}
	} else {
		p1 = geom.Point{X: d.Pos.X, Y: d.Pos.Y - 1}
		p2 = geom.Point{X: d.Pos.X, Y: d.Pos.Y + 1}
	}
	for _, p := range []geom.Point{p1, p2} {
		if !s.chip.In(p) || s.chip.IsFaulty(p) {
			return Droplet{}, Droplet{}, fmt.Errorf("fluidics: split target %v unusable", p)
		}
		if !s.SeparationOK(p, id) {
			return Droplet{}, Droplet{}, fmt.Errorf("fluidics: split target %v violates separation", p)
		}
	}
	half := d.Volume / 2
	delete(s.occ, d.Pos)
	delete(s.droplets, id)
	d1 := &Droplet{ID: s.nextID, Pos: p1, Fluid: d.Fluid, Volume: half}
	s.nextID++
	d2 := &Droplet{ID: s.nextID, Pos: p2, Fluid: d.Fluid, Volume: half}
	s.nextID++
	s.droplets[d1.ID] = d1
	s.droplets[d2.ID] = d2
	s.occ[p1] = d1.ID
	s.occ[p2] = d2.ID
	s.moves += 2
	return *d1, *d2, nil
}

// Remove takes droplet id off the array (output to waste/collection).
func (s *State) Remove(id int) error {
	d, ok := s.droplets[id]
	if !ok {
		return fmt.Errorf("fluidics: unknown droplet %d", id)
	}
	delete(s.occ, d.Pos)
	delete(s.droplets, id)
	return nil
}

// Teleport relocates a droplet without transport accounting or
// separation checks against cells along the way (the destination is
// still checked). It models the bulk relocation of a module's content
// during partial reconfiguration in tests; the simulator itself routes
// properly.
func (s *State) Teleport(id int, to geom.Point) error {
	d, ok := s.droplets[id]
	if !ok {
		return fmt.Errorf("fluidics: unknown droplet %d", id)
	}
	if !s.chip.In(to) || s.chip.IsFaulty(to) {
		return fmt.Errorf("fluidics: teleport target %v unusable", to)
	}
	if !s.SeparationOK(to, id) {
		return fmt.Errorf("fluidics: teleport target %v violates separation", to)
	}
	delete(s.occ, d.Pos)
	d.Pos = to
	s.occ[to] = id
	return nil
}
