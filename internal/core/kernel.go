package core

import (
	"math/rand"

	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/telemetry"
)

// kernelMove is one Section 4(b) perturbation in move form: up to two
// module relocations (one for the displacement families, two for the
// interchange families), each carrying its exact inverse so a rejected
// move is undone in place instead of discarding a cloned placement.
type kernelMove struct {
	n      int // 1 or 2 relocations
	idx    [2]int
	oldPos [2]geom.Point
	newPos [2]geom.Point
	oldRot [2]bool
	newRot [2]bool
}

// kernelCounters tallies the incremental kernel's work for the
// telemetry registry.
type kernelCounters struct {
	proposed  int64 // moves proposed
	committed int64 // moves committed (accepted)
	reverted  int64 // moves reverted (rejected)
	deltaEval int64 // incremental (delta) cost evaluations
	scratch   int64 // from-scratch cost constructions
}

// moveKernel prices the annealing placers' moves incrementally. It
// owns a place.State (overlap + bounding box in O(degree) per move),
// an optional fti.Incremental (stage 2 only), and a running obstacle-
// hit count, and derives the cost from those integer quantities with
// exactly the floating-point expression the clone-based placer used —
// so a move-based run replays a clone-based run bit for bit.
type moveKernel struct {
	prob       Problem
	o          Options
	beta       float64
	useFTI     bool
	singleOnly bool

	st   *place.State
	inc  *fti.Incremental
	hits int // (module, obstacle) incidences, maintained per move

	cost    float64 // committed cost
	pending float64 // staged cost, adopted by Commit

	dirty    []int  // scratch: modules invalidated by the staged move
	dirtyIn  []bool // scratch: dedup marks, index-aligned with modules
	counters kernelCounters
}

// newMoveKernel builds the kernel around p (which it will mutate) and
// derives the initial cost from scratch.
func newMoveKernel(p *place.Placement, prob Problem, o Options, beta float64, useFTI, singleOnly bool) *moveKernel {
	k := &moveKernel{
		prob:       prob,
		o:          o,
		beta:       beta,
		useFTI:     useFTI,
		singleOnly: singleOnly,
		st:         place.NewState(p),
		dirtyIn:    make([]bool, len(p.Modules)),
	}
	if useFTI {
		k.inc = fti.NewIncremental(p)
	}
	k.hits = prob.obstacleHits(p)
	k.cost = k.costNow()
	k.counters.scratch++
	return k
}

// Cost returns the committed cost in O(1).
func (k *moveKernel) Cost() float64 { return k.cost }

// Snapshot clones the current placement for best-state tracking.
func (k *moveKernel) Snapshot() *place.Placement { return k.st.P.Clone() }

// costNow evaluates the cost of the current (possibly staged) state
// from the kernel's integer books, with the same expression and
// operation order as the clone-based cost functions (AnnealArea's cost
// closure and ftCost), so the floats are bit-identical.
func (k *moveKernel) costNow() float64 {
	c := float64(k.st.ArrayCells()) + k.o.OverlapPenalty*float64(k.st.Overlap())
	if len(k.prob.Obstacles) > 0 {
		c += k.o.OverlapPenalty * float64(k.hits)
	}
	if k.useFTI && k.st.Overlap() == 0 {
		c -= k.beta * (float64(k.inc.Covered()) / float64(k.inc.Total()))
	}
	return c
}

// Propose generates a Section 4(b) move. It consumes the RNG in
// exactly the order the clone-based neighbor function did, so seeded
// runs stay reproducible across the refactor.
func (k *moveKernel) Propose(T float64, rng *rand.Rand) kernelMove {
	p := k.st.P
	n := len(p.Modules)
	span := k.prob.MaxW
	if k.prob.MaxH > span {
		span = k.prob.MaxH
	}
	w := window(T, k.o.WindowT0, span)

	var m kernelMove
	if k.singleOnly || n < 2 || rng.Float64() < k.o.PSingle {
		// Move types (i)/(ii): displace one module within the window,
		// possibly changing its orientation.
		i := rng.Intn(n)
		m.n = 1
		m.idx[0] = i
		m.oldPos[0], m.oldRot[0] = p.Pos[i], p.Rot[i]
		rot := m.oldRot[0]
		if rng.Intn(2) == 0 && rotatable(p.Modules[i], k.prob) {
			rot = !rot
		}
		dx := rng.Intn(2*w+1) - w
		dy := rng.Intn(2*w+1) - w
		m.newRot[0] = rot
		m.newPos[0] = clampPos(m.oldPos[0].Add(geom.Point{X: dx, Y: dy}),
			sizeOf(p.Modules[i], rot), k.prob)
	} else {
		// Move types (iii)/(iv): interchange a pair, possibly rotating
		// one of the two.
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		m.n = 2
		m.idx[0], m.idx[1] = i, j
		m.oldPos[0], m.oldRot[0] = p.Pos[i], p.Rot[i]
		m.oldPos[1], m.oldRot[1] = p.Pos[j], p.Rot[j]
		m.newRot[0], m.newRot[1] = m.oldRot[0], m.oldRot[1]
		if rng.Intn(2) == 0 {
			t := 0
			if rng.Intn(2) == 0 {
				t = 1
			}
			if rotatable(p.Modules[m.idx[t]], k.prob) {
				m.newRot[t] = !m.newRot[t]
			}
		}
		m.newPos[0] = clampPos(m.oldPos[1], sizeOf(p.Modules[i], m.newRot[0]), k.prob)
		m.newPos[1] = clampPos(m.oldPos[0], sizeOf(p.Modules[j], m.newRot[1]), k.prob)
	}
	k.counters.proposed++
	return m
}

func sizeOf(m place.Module, rot bool) geom.Size {
	if rot {
		return m.Size.Transpose()
	}
	return m.Size
}

// Delta stages m — mutating the placement, the incremental state and
// the FTI caches — and returns the exact cost change.
func (k *moveKernel) Delta(m kernelMove) float64 {
	for t := 0; t < m.n; t++ {
		i := m.idx[t]
		if len(k.prob.Obstacles) > 0 {
			k.hits -= coversObstacleCount(k.prob.Obstacles, k.st.P.Rect(i))
		}
		k.st.MoveModule(i, m.newPos[t], m.newRot[t])
		if len(k.prob.Obstacles) > 0 {
			k.hits += coversObstacleCount(k.prob.Obstacles, k.st.P.Rect(i))
		}
	}
	if k.useFTI {
		k.inc.Apply(k.st.BoundingBox(), k.dirtySet(m))
	}
	k.pending = k.costNow()
	k.counters.deltaEval++
	return k.pending - k.cost
}

// Commit finalises the staged move.
func (k *moveKernel) Commit(m kernelMove) {
	if k.useFTI {
		k.inc.Commit()
	}
	k.cost = k.pending
	k.counters.committed++
}

// Revert undoes the staged move exactly.
func (k *moveKernel) Revert(m kernelMove) {
	if k.useFTI {
		k.inc.Revert()
	}
	for t := m.n - 1; t >= 0; t-- {
		i := m.idx[t]
		if len(k.prob.Obstacles) > 0 {
			k.hits -= coversObstacleCount(k.prob.Obstacles, k.st.P.Rect(i))
		}
		k.st.MoveModule(i, m.oldPos[t], m.oldRot[t])
		if len(k.prob.Obstacles) > 0 {
			k.hits += coversObstacleCount(k.prob.Obstacles, k.st.P.Rect(i))
		}
	}
	k.counters.reverted++
}

// dirtySet returns the deduplicated FTI-invalidation set of m: the
// moved modules plus their span-conflict neighbours.
func (k *moveKernel) dirtySet(m kernelMove) []int {
	k.dirty = k.dirty[:0]
	add := func(i int) {
		if !k.dirtyIn[i] {
			k.dirtyIn[i] = true
			k.dirty = append(k.dirty, i)
		}
	}
	for t := 0; t < m.n; t++ {
		add(m.idx[t])
		for _, j := range k.st.Adjacent(m.idx[t]) {
			add(j)
		}
	}
	for _, i := range k.dirty {
		k.dirtyIn[i] = false
	}
	return k.dirty
}

// coversObstacleCount counts the obstacle cells r covers.
func coversObstacleCount(obstacles []geom.Point, r geom.Rect) int {
	n := 0
	for _, o := range obstacles {
		if r.Contains(o) {
			n++
		}
	}
	return n
}

// flushMetrics publishes the kernel's counters to the registry (no-op
// for a nil registry), tagged with the placement stage.
func (k *moveKernel) flushMetrics(reg *telemetry.Registry, stage string) {
	if reg == nil {
		return
	}
	c := k.counters
	reg.Counter("place." + stage + ".moves_proposed").Add(c.proposed)
	reg.Counter("place." + stage + ".moves_committed").Add(c.committed)
	reg.Counter("place." + stage + ".moves_reverted").Add(c.reverted)
	reg.Counter("place." + stage + ".delta_evals").Add(c.deltaEval)
	reg.Counter("place." + stage + ".scratch_evals").Add(c.scratch)
	if k.inc != nil {
		evals, hits := k.inc.Stats()
		reg.Counter("place.fti.module_evals").Add(evals)
		reg.Counter("place.fti.cache_hits").Add(hits)
		if evals+hits > 0 {
			reg.Gauge("place.fti.cache_hit_rate").Set(float64(hits) / float64(evals+hits))
		}
	}
}
