package core

import (
	"math/rand"
	"testing"

	"dmfb/internal/pcr"
)

// The stage-2 (LTSA, FTI-weighted) inner loop is the hot path of the
// enhanced placement algorithm: every annealing iteration must price a
// candidate move. The historical engine cloned the placement and
// recomputed area, overlap, and the full per-module fault-tolerance
// analysis from scratch; the move kernel prices the same move
// incrementally and reverts in place. The pairs below measure one
// rejected iteration of each regime on the PCR benchmark — the ≥5×
// stage-2 ratio recorded in BENCH_place.json comes from the Stage2
// pair.

func BenchmarkStage2IterClone(b *testing.B) {
	prob := FromSchedule(pcr.MustSchedule())
	o := Options{Seed: 1, ItersPerModule: 150, WindowPatience: 5}
	start, _, err := AnnealArea(prob, o)
	if err != nil {
		b.Fatalf("stage 1: %v", err)
	}
	o = o.withDefaults(len(prob.Modules))
	rng := rand.New(rand.NewSource(2))
	cur := start.Clone()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := neighbor(cur, prob, o, 5, rng, true)
		_ = ftCost(next, prob, o, 30)
		// Rejected: next is discarded, cur unchanged.
	}
}

func BenchmarkStage2IterMove(b *testing.B) {
	prob := FromSchedule(pcr.MustSchedule())
	o := Options{Seed: 1, ItersPerModule: 150, WindowPatience: 5}
	start, _, err := AnnealArea(prob, o)
	if err != nil {
		b.Fatalf("stage 1: %v", err)
	}
	o = o.withDefaults(len(prob.Modules))
	k := newMoveKernel(start.Clone(), prob, o, 30, true, true)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := k.Propose(5, rng)
		_ = k.Delta(m)
		k.Revert(m)
	}
}

// The fault-oblivious stage-1 loop (area + overlap only), for the
// README table.
func BenchmarkStage1IterClone(b *testing.B) {
	prob := FromSchedule(pcr.MustSchedule())
	o := Options{}.withDefaults(len(prob.Modules))
	cur := initialPlacement(prob)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		next := neighbor(cur, prob, o, 50, rng, false)
		_ = scratchCost(next, prob, o, 0, false)
	}
}

func BenchmarkStage1IterMove(b *testing.B) {
	prob := FromSchedule(pcr.MustSchedule())
	o := Options{}.withDefaults(len(prob.Modules))
	k := newMoveKernel(initialPlacement(prob), prob, o, 0, false, false)
	rng := rand.New(rand.NewSource(2))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := k.Propose(50, rng)
		_ = k.Delta(m)
		k.Revert(m)
	}
}
