package core

import (
	"math/rand"
	"testing"

	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/place"
)

func TestObstacleHits(t *testing.T) {
	mods := []place.Module{mod(0, "A", 2, 2, 0, 5), mod(1, "B", 2, 2, 0, 5)}
	p := place.New(mods)
	p.Pos[1] = geom.Point{X: 3, Y: 0}
	prob := Problem{Modules: mods, MaxW: 8, MaxH: 8,
		Obstacles: []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 1}, {X: 7, Y: 7}}}
	if got := prob.obstacleHits(p); got != 2 {
		t.Errorf("obstacleHits = %d, want 2", got)
	}
}

func TestGreedyAvoidsObstacles(t *testing.T) {
	mods := []place.Module{mod(0, "A", 2, 2, 0, 5), mod(1, "B", 3, 2, 0, 5)}
	prob := Problem{Modules: mods, MaxW: 8, MaxH: 8,
		Obstacles: []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 4, Y: 0}}}
	p, err := Greedy(prob, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := range mods {
		for _, o := range prob.Obstacles {
			if p.Rect(i).Contains(o) {
				t.Errorf("module %d covers obstacle %v", i, o)
			}
		}
	}
}

func TestAnnealAreaClearsObstacles(t *testing.T) {
	mods := []place.Module{
		mod(0, "A", 3, 3, 0, 5), mod(1, "B", 2, 4, 0, 5), mod(2, "C", 2, 2, 2, 8),
	}
	prob := Problem{Modules: mods, MaxW: 9, MaxH: 9,
		Obstacles: []geom.Point{{X: 4, Y: 4}, {X: 0, Y: 0}}}
	p, _, err := AnnealArea(prob, Options{Seed: 3, ItersPerModule: 120, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if hits := prob.obstacleHits(p); hits != 0 {
		t.Fatalf("placement covers %d obstacle cells", hits)
	}
}

func TestFullReconfigurePCR(t *testing.T) {
	prob := pcrProblem()
	res, err := TwoStage(prob, lightOptions(1), FTOptions{Beta: 40})
	if err != nil {
		t.Fatal(err)
	}
	old := res.Final
	bb := old.BoundingBox()
	// Kill a handful of cells and re-place everything around them.
	dead := []geom.Point{
		{X: bb.X, Y: bb.Y},
		{X: bb.X + bb.W/2, Y: bb.Y + bb.H/2},
		{X: bb.MaxX() - 1, Y: bb.MaxY() - 1},
	}
	fresh, err := FullReconfigure(old, dead, lightOptions(2))
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.Validate(); err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Modules {
		for _, d := range dead {
			if fresh.Rect(i).Contains(d) {
				t.Errorf("module %s covers dead cell %v", fresh.Modules[i].Name, d)
			}
		}
	}
	// The chip is already fabricated: the new placement must stay
	// within the original array bounds.
	if !fresh.FitsIn(bb.MaxX(), bb.MaxY()) {
		t.Errorf("full reconfiguration escaped the fabricated %dx%d array", bb.MaxX(), bb.MaxY())
	}
}

// TestFullReconfigureSurvivesWherePartialFails: on the packed
// area-minimal placement most single faults defeat partial
// reconfiguration, but full re-placement absorbs many of them because
// the module set genuinely fits the array minus one cell.
func TestFullReconfigureSurvivesWherePartialFails(t *testing.T) {
	prob := pcrProblem()
	p, _, err := AnnealArea(prob, lightOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	array := p.BoundingBox()
	rng := rand.New(rand.NewSource(9))
	recoveredByFull := 0
	tried := 0
	for i := 0; i < 30 && tried < 6; i++ {
		cell := geom.Point{X: array.X + rng.Intn(array.W), Y: array.Y + rng.Intn(array.H)}
		// Only faults where partial reconfiguration fails.
		if relocatablePartial(p, array, cell) {
			continue
		}
		tried++
		full, err := FullReconfigure(p, []geom.Point{cell}, lightOptions(int64(i)))
		if err != nil {
			continue
		}
		if hits := (Problem{Modules: full.Modules, Obstacles: []geom.Point{cell}}).obstacleHits(full); hits > 0 {
			t.Fatalf("full reconfiguration still covers the fault %v", cell)
		}
		recoveredByFull++
	}
	if tried == 0 {
		t.Skip("no partial-failure faults sampled")
	}
	if recoveredByFull == 0 {
		t.Errorf("full reconfiguration recovered 0/%d faults that defeated partial", tried)
	}
}

// relocatablePartial reports whether partial reconfiguration can
// absorb a fault at cell — exactly the C-coverage of the FTI.
func relocatablePartial(p *place.Placement, array geom.Rect, cell geom.Point) bool {
	r := fti.ComputeOn(p, array)
	return r.CoveredAt(cell.X-array.X, cell.Y-array.Y)
}
