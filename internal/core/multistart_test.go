package core

import (
	"reflect"
	"runtime"
	"testing"

	"dmfb/internal/campaign"
	"dmfb/internal/place"
)

// The multi-start determinism contract (place.SearchOptions): for a
// fixed base seed and start count, the winning placement is
// byte-identical at any worker count, start 0 reproduces a plain
// single-start run, and per-start seeds follow the campaign runner's
// splitmix64 stream derivation. These tests run under -race in CI, so
// they also police the "starts share nothing mutable" claim.

// multiStartOptions keeps the fan-out cheap enough to run three times.
func multiStartOptions(seed int64) Options {
	return Options{Seed: seed, ItersPerModule: 60, WindowPatience: 4}
}

func TestMultiStartByteIdenticalAcrossWorkers(t *testing.T) {
	prob := pcrProblem()
	ft := FTOptions{Beta: 50}
	base := multiStartOptions(42)
	base.Search = place.SearchOptions{Starts: 4}

	var ref TwoStageResult
	for i, workers := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		o := base
		o.Search.Workers = workers
		res, err := TwoStage(prob, o, ft)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if i == 0 {
			ref = res
			continue
		}
		if !reflect.DeepEqual(res, ref) {
			t.Fatalf("workers=%d: result diverged from workers=1\nref:  start %d seed %d final %v\ngot:  start %d seed %d final %v",
				workers, ref.Start, ref.Seed, ref.Final, res.Start, res.Seed, res.Final)
		}
	}

	// The winner's seed must be the documented stream derivation.
	wantSeed := base.Seed
	if ref.Start > 0 {
		wantSeed = campaign.DeriveSeed(base.Seed, uint64(ref.Start))
	}
	if ref.Seed != wantSeed {
		t.Fatalf("winner start %d carries seed %d, want derived %d", ref.Start, ref.Seed, wantSeed)
	}

	// The winner must reproduce as a standalone single-start run with
	// its derived seed: multi-start is pure selection, not mutation.
	solo, err := twoStageOne(prob, startOptions(base, ref.Start), ft)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(solo.Final, ref.Final) || !reflect.DeepEqual(solo.Stage1, ref.Stage1) {
		t.Fatalf("winner (start %d) does not reproduce standalone:\nsolo:\n%s\nmulti:\n%s",
			ref.Start, solo.Final, ref.Final)
	}

	// The winner actually is the argmin over the per-start runs, ties
	// to the lowest index.
	for i := 0; i < base.Search.Starts; i++ {
		r, err := twoStageOne(prob, startOptions(base, i), ft)
		if err != nil {
			t.Fatal(err)
		}
		if r.Stage2Stats.FinalCost < ref.Stage2Stats.FinalCost ||
			(r.Stage2Stats.FinalCost == ref.Stage2Stats.FinalCost && i < ref.Start) {
			t.Fatalf("start %d (cost %g) beats declared winner %d (cost %g)",
				i, r.Stage2Stats.FinalCost, ref.Start, ref.Stage2Stats.FinalCost)
		}
	}
}

// TestMultiStartSingleBackCompat pins that every "one start" spelling
// — zero Search, Starts 1, extra workers — is byte-identical to the
// historical single-start TwoStage for the same seed.
func TestMultiStartSingleBackCompat(t *testing.T) {
	prob := pcrProblem()
	ft := FTOptions{Beta: 50}
	plain, err := TwoStage(prob, multiStartOptions(7), ft)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []place.SearchOptions{
		{Starts: 1},
		{Starts: 1, Workers: 8},
		{Workers: 2},
	} {
		o := multiStartOptions(7)
		o.Search = s
		res, err := TwoStage(prob, o, ft)
		if err != nil {
			t.Fatalf("%+v: %v", s, err)
		}
		if !reflect.DeepEqual(res, plain) {
			t.Fatalf("%+v: diverged from plain single-start run", s)
		}
	}
}

// TestMultiStartSeedOverride pins that Search.Seed replaces the base
// seed of the whole start family.
func TestMultiStartSeedOverride(t *testing.T) {
	prob := pcrProblem()
	ft := FTOptions{Beta: 50}

	a := multiStartOptions(3)
	a.Search = place.SearchOptions{Starts: 2, Seed: 99}
	ra, err := TwoStage(prob, a, ft)
	if err != nil {
		t.Fatal(err)
	}

	b := multiStartOptions(99) // same family spelled via the base seed
	b.Search = place.SearchOptions{Starts: 2}
	rb, err := TwoStage(prob, b, ft)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ra, rb) {
		t.Fatal("Search.Seed=99 should equal base Seed=99 for the same start count")
	}
}
