package core_test

import (
	"fmt"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/fti"
	"dmfb/internal/pcr"
)

// The golden values below were captured from the clone-and-recompute
// placer immediately BEFORE the incremental move/delta/revert kernel
// replaced it. The move-based engine must replay those runs bit for
// bit: same RNG consumption, same floating-point cost values, same
// accept/reject sequence, hence byte-identical placements and
// identical level/evaluation counts.

func goldenOptions(seed int64) core.Options {
	return core.Options{Seed: seed, ItersPerModule: 150, WindowPatience: 5}
}

func TestGoldenAnnealArea(t *testing.T) {
	cases := []struct {
		seed      int64
		cells     int
		levels    int
		evals     int
		cost      float64
		placement string
	}{
		{
			seed: 1, cells: 64, levels: 70, evals: 73501, cost: 64,
			placement: "placement: array 8x8 = 64 cells\n" +
				"  M1   [0,4 4x4] [0,10)\n" +
				"  M3   [0,0 5x4] [0,6)\n" +
				"  M4   [5,0 3x6] [0,5)\n" +
				"  M2   [5,2 3x6] [5,10)\n" +
				"  M6   [1,0 4x4] [6,16)\n" +
				"  M5   [0,5 6x3] [10,15)\n" +
				"  M7   [0,4 6x4] [16,19)\n",
		},
		{
			seed: 7, cells: 80, levels: 70, evals: 73501, cost: 80,
			placement: "placement: array 8x10 = 80 cells\n" +
				"  M1   [0,0 4x4] [0,10)\n" +
				"  M3   [0,6 5x4] [0,6)\n" +
				"  M4   [5,4 3x6] [0,5)\n" +
				"  M2   [5,2 3x6] [5,10)\n" +
				"  M6   [0,6 4x4] [6,16)\n" +
				"  M5   [2,0 6x3] [10,15)\n" +
				"  M7   [4,2 4x6] [16,19)\n",
		},
	}
	prob := core.FromSchedule(pcr.MustSchedule())
	for _, tc := range cases {
		t.Run(fmt.Sprintf("seed%d", tc.seed), func(t *testing.T) {
			p, st, err := core.AnnealArea(prob, goldenOptions(tc.seed))
			if err != nil {
				t.Fatalf("AnnealArea: %v", err)
			}
			if p.ArrayCells() != tc.cells {
				t.Errorf("cells = %d, golden %d", p.ArrayCells(), tc.cells)
			}
			if st.Levels != tc.levels || st.Evaluations != tc.evals {
				t.Errorf("stats = %d levels / %d evals, golden %d / %d",
					st.Levels, st.Evaluations, tc.levels, tc.evals)
			}
			if st.FinalCost != tc.cost {
				t.Errorf("cost = %v, golden %v", st.FinalCost, tc.cost)
			}
			if got := p.String(); got != tc.placement {
				t.Errorf("placement diverged from pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, tc.placement)
			}
		})
	}
}

func TestGoldenTwoStage(t *testing.T) {
	prob := core.FromSchedule(pcr.MustSchedule())

	t.Run("beta40_seed1", func(t *testing.T) {
		res, err := core.TwoStage(prob, goldenOptions(1), core.FTOptions{Beta: 40})
		if err != nil {
			t.Fatalf("TwoStage: %v", err)
		}
		if res.Stage1.ArrayCells() != 64 {
			t.Errorf("stage-1 cells = %d, golden 64", res.Stage1.ArrayCells())
		}
		if res.Final.ArrayCells() != 72 {
			t.Errorf("final cells = %d, golden 72", res.Final.ArrayCells())
		}
		if got := fmt.Sprintf("%.6f", fti.Compute(res.Final).FTI()); got != "0.625000" {
			t.Errorf("FTI = %s, golden 0.625000", got)
		}
		want := "placement: array 8x9 = 72 cells\n" +
			"  M1   [1,5 4x4] [0,10)\n" +
			"  M3   [0,0 5x4] [0,6)\n" +
			"  M4   [5,0 3x6] [0,5)\n" +
			"  M2   [5,2 3x6] [5,10)\n" +
			"  M6   [0,0 4x4] [6,16)\n" +
			"  M5   [0,5 6x3] [10,15)\n" +
			"  M7   [0,4 6x4] [16,19)\n"
		if got := res.Final.String(); got != want {
			t.Errorf("final placement diverged from pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, want)
		}
	})

	t.Run("beta30_restarts2_seed3", func(t *testing.T) {
		res, err := core.TwoStage(prob, goldenOptions(3), core.FTOptions{Beta: 30, Restarts: 2})
		if err != nil {
			t.Fatalf("TwoStage: %v", err)
		}
		if res.Final.ArrayCells() != 77 {
			t.Errorf("final cells = %d, golden 77", res.Final.ArrayCells())
		}
		if got := fmt.Sprintf("%.6f", fti.Compute(res.Final).FTI()); got != "0.857143" {
			t.Errorf("FTI = %s, golden 0.857143", got)
		}
		want := "placement: array 7x11 = 77 cells\n" +
			"  M1   [3,0 4x4] [0,10)\n" +
			"  M3   [2,7 5x4] [0,6)\n" +
			"  M4   [0,0 3x6] [0,5)\n" +
			"  M2   [0,0 3x6] [5,10)\n" +
			"  M6   [0,7 4x4] [6,16)\n" +
			"  M5   [1,3 6x3] [10,15)\n" +
			"  M7   [2,1 4x6] [16,19)\n"
		if got := res.Final.String(); got != want {
			t.Errorf("final placement diverged from pre-refactor golden:\ngot:\n%s\nwant:\n%s", got, want)
		}
	})
}
