// Package core implements the paper's primary contribution: module
// placement for dynamically reconfigurable microfluidic biochips.
//
// Three placers are provided:
//
//   - Greedy — the baseline of Section 6.1: modules sorted by
//     decreasing area, each placed at the first available bottom-left
//     position.
//   - AnnealArea — the simulated-annealing placer of Section 4:
//     direct perturbation of module positions and orientations, a
//     forbidden-overlap penalty in the cost function, the four move
//     types (single displacement, displacement+rotation, pair
//     interchange, interchange+rotation), and a controlling window
//     that shrinks with temperature and defines the stopping
//     criterion.
//   - TwoStage — the enhanced placement of Section 6.2: stage 1 is
//     fault-oblivious area minimisation; stage 2 refines the result
//     with low-temperature simulated annealing (LTSA) restricted to
//     single-module displacement, with the fault tolerance index
//     weighted by β in the cost (α·area − β·fault tolerance, α = 1).
package core

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"dmfb/internal/anneal"
	"dmfb/internal/campaign"
	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/schedule"
	"dmfb/internal/telemetry"
)

// Problem is a placement problem: the module set (footprints with
// fixed time spans from architectural-level synthesis) and the core
// area within which modules may be placed (Figure 4a).
type Problem struct {
	Modules []place.Module
	MaxW    int // core area width in cells
	MaxH    int // core area height in cells
	// Obstacles are dead cells (e.g. previously detected faults) no
	// module may cover. Used by full reconfiguration, which re-places
	// the module set around the accumulated faults.
	Obstacles []geom.Point
}

// obstacleHits counts (module, obstacle) incidences — the full-
// reconfiguration analogue of the forbidden-overlap penalty.
func (p Problem) obstacleHits(pl *place.Placement) int {
	n := 0
	for i := range pl.Modules {
		r := pl.Rect(i)
		for _, o := range p.Obstacles {
			if r.Contains(o) {
				n++
			}
		}
	}
	return n
}

// NewProblem builds a problem with an automatically sized core area:
// wide enough for any module in either orientation and for roughly
// twice the total module area, so the annealer has room to explore.
func NewProblem(mods []place.Module) Problem {
	maxDim, sum := 0, 0
	for _, m := range mods {
		if m.Size.W > maxDim {
			maxDim = m.Size.W
		}
		if m.Size.H > maxDim {
			maxDim = m.Size.H
		}
		sum += m.Size.Cells()
	}
	side := int(math.Ceil(math.Sqrt(2 * float64(sum))))
	if side < maxDim {
		side = maxDim
	}
	if side < 1 {
		side = 1
	}
	return Problem{Modules: mods, MaxW: side, MaxH: side}
}

// FromSchedule builds the placement problem for a synthesis result.
func FromSchedule(s *schedule.Schedule) Problem {
	return NewProblem(place.FromSchedule(s))
}

// Validate reports problems that make placement impossible.
func (p Problem) Validate() error {
	if len(p.Modules) == 0 {
		return fmt.Errorf("core: no modules to place")
	}
	for _, m := range p.Modules {
		if !m.Size.Valid() {
			return fmt.Errorf("core: module %s has invalid footprint %v", m.Name, m.Size)
		}
		if m.Span.Empty() {
			return fmt.Errorf("core: module %s has empty time span %v", m.Name, m.Span)
		}
		if !m.Size.FitsEither(geom.Size{W: p.MaxW, H: p.MaxH}) {
			return fmt.Errorf("core: module %s (%v) exceeds the %dx%d core area",
				m.Name, m.Size, p.MaxW, p.MaxH)
		}
	}
	return nil
}

// Options configures the annealing placers. Zero fields take the
// paper's defaults via withDefaults.
type Options struct {
	Seed int64 // RNG seed; runs are deterministic per seed

	// Annealing schedule (Section 4d): T0 = 10000, α = 0.9,
	// N = 400 × #modules iterations per temperature.
	T0             float64
	Alpha          float64
	ItersPerModule int

	// PSingle is the probability p of the single-module displacement
	// family; 1−p selects pair interchange (Section 4b).
	PSingle float64

	// OverlapPenalty is the cost per forbidden-overlap cell that
	// drives infeasibility to zero (Section 4, cost metrics).
	OverlapPenalty float64

	// WindowT0 is the temperature at which the controlling window
	// (Section 4c) starts shrinking below the full core span; the
	// window reaches its minimum (1 cell) as T approaches zero.
	WindowT0 float64

	// WindowPatience is the number of consecutive temperature levels
	// the window must sit at its minimum span before annealing stops —
	// the paper's stopping criterion.
	WindowPatience int

	// Search configures deterministic multi-start annealing: TwoStage
	// fans out Search.Starts independent two-stage runs (splitmix64-
	// derived per-start seeds, start 0 = the base seed) across at most
	// Search.Workers goroutines and keeps the lowest-cost result, with
	// ties broken by lowest start index. The winner is byte-identical
	// for a given seed at any worker count. Single-stage placers ignore
	// it (AnnealAreaBestOf predates it and keeps its seed+i semantics).
	Search place.SearchOptions

	// Observer, if non-nil, receives annealing progress notifications
	// (per temperature level and on best-cost improvement) from every
	// annealing run these options configure. Wire telemetry through it
	// with telemetry.AnnealObserver. With parallel restarts
	// (AnnealAreaBestOf) the observer is shared across goroutines and
	// must be safe for concurrent use.
	Observer anneal.Observer

	// Metrics, if non-nil, receives the incremental kernel's counters
	// at the end of every annealing run: moves proposed / committed /
	// reverted, delta vs from-scratch cost evaluations, and the FTI
	// cache hit rate. With parallel restarts the registry is shared
	// across goroutines (it is safe for concurrent use).
	Metrics *telemetry.Registry
}

func (o Options) withDefaults(nm int) Options {
	if o.T0 == 0 {
		o.T0 = 10000
	}
	if o.Alpha == 0 {
		o.Alpha = 0.9
	}
	if o.ItersPerModule == 0 {
		o.ItersPerModule = 400
	}
	if o.PSingle == 0 {
		o.PSingle = 0.8
	}
	if o.OverlapPenalty == 0 {
		o.OverlapPenalty = 20
	}
	if o.WindowT0 == 0 {
		o.WindowT0 = 100
	}
	if o.WindowPatience == 0 {
		o.WindowPatience = 25
	}
	return o
}

// Canonicalized returns the options in the canonical form the
// placement cache fingerprints: the paper's defaults are filled in, so
// a zero field and its explicit default hash to the same key, and the
// telemetry sinks (Observer, Metrics) — which never influence the
// placement — are cleared.
func (o Options) Canonicalized() Options {
	c := o.withDefaults(0)
	c.Observer = nil
	c.Metrics = nil
	c.Search = c.Search.Normalized()
	return c
}

// Stats summarises an annealing run.
type Stats struct {
	Levels      int
	Evaluations int
	FinalCost   float64
}

// Greedy is the baseline placer of Section 6.1: modules are sorted in
// descending footprint order and each is placed at the first
// bottom-left position (scanning y, then x, within the core width)
// where it fits. When timeAware is true, "fits" means no overlap with
// any time-conflicting placed module — reconfiguration-aware but
// greedy; when false, placed modules are never overlapped regardless
// of their time spans, modelling a placer that ignores dynamic
// reconfigurability entirely. Orientations are kept as bound.
func Greedy(prob Problem, timeAware bool) (*place.Placement, error) {
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	p := place.New(prob.Modules)

	order := make([]int, len(prob.Modules))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ca := prob.Modules[order[a]].Size.Cells()
		cb := prob.Modules[order[b]].Size.Cells()
		if ca != cb {
			return ca > cb
		}
		return order[a] < order[b]
	})

	placed := make([]bool, len(prob.Modules))
	for _, i := range order {
		sz := prob.Modules[i].Size
		found := false
	scan:
		for y := 0; !found; y++ {
			if y > 10000 {
				break // cannot happen with a sane core width; guard anyway
			}
			for x := 0; x+sz.W <= prob.MaxW; x++ {
				cand := geom.RectAt(geom.Point{X: x, Y: y}, sz)
				if coversObstacle(prob.Obstacles, cand) {
					continue
				}
				if greedyConflicts(p, placed, i, cand, timeAware) {
					continue
				}
				p.Pos[i] = geom.Point{X: x, Y: y}
				found = true
				break scan
			}
		}
		if !found {
			return nil, fmt.Errorf("core: greedy could not place module %s", prob.Modules[i].Name)
		}
		placed[i] = true
	}
	// Normalising would shift modules relative to obstacle coordinates.
	if len(prob.Obstacles) == 0 {
		p.Normalize()
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("core: greedy produced invalid placement: %w", err)
	}
	return p, nil
}

func coversObstacle(obstacles []geom.Point, r geom.Rect) bool {
	for _, o := range obstacles {
		if r.Contains(o) {
			return true
		}
	}
	return false
}

func greedyConflicts(p *place.Placement, placed []bool, i int, cand geom.Rect, timeAware bool) bool {
	for j := range p.Modules {
		if !placed[j] {
			continue
		}
		if timeAware && !p.Modules[i].Span.Overlaps(p.Modules[j].Span) {
			continue
		}
		if cand.Overlaps(p.Rect(j)) {
			return true
		}
	}
	return false
}

// initialPlacement is the simple constructive start of Figure 4a:
// modules packed left-to-right on shelves, ignoring time spans, so the
// start is always feasible.
func initialPlacement(prob Problem) *place.Placement {
	p := place.New(prob.Modules)
	x, y, shelf := 0, 0, 0
	for i, m := range prob.Modules {
		if x+m.Size.W > prob.MaxW {
			x = 0
			y += shelf
			shelf = 0
		}
		p.Pos[i] = geom.Point{X: x, Y: y}
		x += m.Size.W
		if m.Size.H > shelf {
			shelf = m.Size.H
		}
	}
	return p
}

// window returns the controlling-window span at temperature T: the
// full core span at high temperature, shrinking proportionally below
// WindowT0 to a minimum of one cell.
func window(T, windowT0 float64, span int) int {
	if T >= windowT0 {
		return span
	}
	w := int(float64(span) * T / windowT0)
	if w < 1 {
		w = 1
	}
	return w
}

// neighbor generates a new placement per Section 4b. It never mutates
// cur.
func neighbor(cur *place.Placement, prob Problem, o Options, T float64, rng *rand.Rand, singleOnly bool) *place.Placement {
	next := cur.Clone()
	n := len(next.Modules)
	span := prob.MaxW
	if prob.MaxH > span {
		span = prob.MaxH
	}
	w := window(T, o.WindowT0, span)

	if singleOnly || n < 2 || rng.Float64() < o.PSingle {
		// Move types (i)/(ii): displace one module within the window,
		// possibly changing its orientation.
		i := rng.Intn(n)
		if rng.Intn(2) == 0 && rotatable(next.Modules[i], prob) {
			next.Rot[i] = !next.Rot[i]
		}
		dx := rng.Intn(2*w+1) - w
		dy := rng.Intn(2*w+1) - w
		next.Pos[i] = clampPos(next.Pos[i].Add(geom.Point{X: dx, Y: dy}), next.Size(i), prob)
	} else {
		// Move types (iii)/(iv): interchange a pair, possibly rotating
		// one of the two.
		i := rng.Intn(n)
		j := rng.Intn(n - 1)
		if j >= i {
			j++
		}
		next.Pos[i], next.Pos[j] = next.Pos[j], next.Pos[i]
		if rng.Intn(2) == 0 {
			k := i
			if rng.Intn(2) == 0 {
				k = j
			}
			if rotatable(next.Modules[k], prob) {
				next.Rot[k] = !next.Rot[k]
			}
		}
		next.Pos[i] = clampPos(next.Pos[i], next.Size(i), prob)
		next.Pos[j] = clampPos(next.Pos[j], next.Size(j), prob)
	}
	return next
}

// rotatable reports whether a rotation move may be proposed for m:
// the transposed footprint must itself fit the core area, or clampPos
// would push the module to a negative origin. Auto-sized problems
// (NewProblem) always allow both orientations; fabricated-array
// problems (FullReconfigure, the recovery ladder's defragmentation)
// can be tighter than a module's transposed footprint.
func rotatable(m place.Module, prob Problem) bool {
	if m.Size.IsSquare() {
		return false
	}
	t := m.Size.Transpose()
	return t.W <= prob.MaxW && t.H <= prob.MaxH
}

// clampPos keeps a module of size sz inside the core area (the paper
// prevents modules from leaving the core boundary during annealing).
func clampPos(p geom.Point, sz geom.Size, prob Problem) geom.Point {
	if p.X < 0 {
		p.X = 0
	}
	if p.Y < 0 {
		p.Y = 0
	}
	if p.X+sz.W > prob.MaxW {
		p.X = prob.MaxW - sz.W
	}
	if p.Y+sz.H > prob.MaxH {
		p.Y = prob.MaxH - sz.H
	}
	return p
}

// windowStop returns the paper's stopping criterion: the controlling
// window has sat at its minimum span for `patience` consecutive
// levels.
func windowStop(o Options, span, patience int) func(anneal.Level) bool {
	atMin := 0
	return func(l anneal.Level) bool {
		if window(l.T, o.WindowT0, span) <= 1 {
			atMin++
		} else {
			atMin = 0
		}
		return atMin >= patience
	}
}

// AnnealArea runs the fault-oblivious placer of Section 4, minimising
// array area with a forbidden-overlap penalty. Moves are priced
// incrementally by a moveKernel; results are bit-identical to the
// historical clone-and-recompute placer for any given seed.
func AnnealArea(prob Problem, opts Options) (*place.Placement, Stats, error) {
	if err := prob.Validate(); err != nil {
		return nil, Stats{}, err
	}
	o := opts.withDefaults(len(prob.Modules))
	rng := rand.New(rand.NewSource(o.Seed))
	span := max(prob.MaxW, prob.MaxH)

	k := newMoveKernel(initialPlacement(prob), prob, o, 0, false, false)
	problem := anneal.MoveProblem[*place.Placement, kernelMove]{
		Cost:     k.Cost,
		Propose:  k.Propose,
		Delta:    k.Delta,
		Commit:   k.Commit,
		Revert:   k.Revert,
		Snapshot: k.Snapshot,
		Stop:     windowStop(o, span, o.WindowPatience),
		Observer: o.Observer,
	}
	sched := anneal.Schedule{T0: o.T0, Alpha: o.Alpha, Iters: o.ItersPerModule * len(prob.Modules)}
	res := anneal.RunMoves(problem, sched, rng)
	k.flushMetrics(o.Metrics, "area")

	best := res.Best.Clone()
	// Do not normalise when obstacles pin absolute coordinates.
	if len(prob.Obstacles) == 0 {
		best.Normalize()
	}
	if err := best.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("core: annealing ended with forbidden overlap: %w", err)
	}
	if hits := prob.obstacleHits(best); hits > 0 {
		return nil, Stats{}, fmt.Errorf("core: annealing could not clear %d obstacle cell(s)", hits)
	}
	return best, Stats{Levels: len(res.Levels), Evaluations: res.Evaluations, FinalCost: res.BestCost}, nil
}

// AnnealAreaBestOf runs the area placer with n different seeds in
// parallel and returns the best placement found (ties favour the
// lowest seed, so results stay deterministic). Simulated annealing is
// embarrassingly parallel across restarts; this is the practical way
// to spend extra cores on placement quality. The restarts share the
// immutable Problem; all mutable annealing state (the placement, its
// incremental cost caches, the RNG) is private to each goroutine's
// moveKernel, so no locking is needed and each restart is bit-identical
// to a standalone AnnealArea run with that seed.
func AnnealAreaBestOf(prob Problem, opts Options, n int) (*place.Placement, Stats, error) {
	if n < 1 {
		return nil, Stats{}, fmt.Errorf("core: need at least one restart, got %d", n)
	}
	type outcome struct {
		p     *place.Placement
		stats Stats
		err   error
	}
	results := make([]outcome, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			o := opts
			o.Seed = opts.Seed + int64(i)
			p, st, err := AnnealArea(prob, o)
			results[i] = outcome{p, st, err}
		}(i)
	}
	wg.Wait()

	agg := Stats{}
	var best *place.Placement
	for i, r := range results {
		if r.err != nil {
			return nil, Stats{}, fmt.Errorf("core: restart %d: %w", i, r.err)
		}
		agg.Levels += r.stats.Levels
		agg.Evaluations += r.stats.Evaluations
		if best == nil || r.p.ArrayCells() < best.ArrayCells() {
			best = r.p
			agg.FinalCost = r.stats.FinalCost
		}
	}
	return best, agg, nil
}

// FullReconfigure is "full reconfiguration": re-placing the entire
// module set from scratch around the accumulated dead cells, used when
// on-line partial reconfiguration cannot absorb a fault. It keeps the
// array bounds of the original placement (the chip is already
// fabricated) and returns a fresh placement in which no module covers
// any dead cell, or an error if annealing cannot find one.
func FullReconfigure(old *place.Placement, dead []geom.Point, opts Options) (*place.Placement, error) {
	bb := old.BoundingBox()
	prob := Problem{
		Modules:   old.Modules,
		MaxW:      bb.MaxX(),
		MaxH:      bb.MaxY(),
		Obstacles: dead,
	}
	if err := prob.Validate(); err != nil {
		return nil, err
	}
	p, _, err := AnnealArea(prob, opts)
	return p, err
}

// FTOptions configures stage 2 of the enhanced placement algorithm.
type FTOptions struct {
	// Beta is the weight β of the fault tolerance term; area carries
	// weight α = 1 (Section 6.2). Larger β buys fault tolerance with
	// area.
	Beta float64
	// T0 is the LTSA starting temperature ("low-temperature simulated
	// annealing": small uphill moves only). Default 5.
	T0 float64
	// MarginCells widens the core area available to stage 2 beyond the
	// stage-1 bounding box, so the placement can trade area for spare
	// cells. Default 6.
	MarginCells int
	// Restarts runs the LTSA refinement this many times with
	// different seeds and keeps the lowest-cost result. Default 1.
	Restarts int
}

// Canonicalized returns the stage-2 options with defaults filled in —
// the form the placement cache fingerprints.
func (f FTOptions) Canonicalized() FTOptions { return f.withDefaults() }

func (f FTOptions) withDefaults() FTOptions {
	if f.T0 == 0 {
		f.T0 = 5
	}
	if f.MarginCells == 0 {
		f.MarginCells = 6
	}
	if f.Restarts == 0 {
		f.Restarts = 1
	}
	return f
}

// ftCost is the stage-2 cost metric: α·area − β·FTI (α = 1) plus the
// forbidden-overlap and obstacle penalties. Area is in cells; the
// fault-tolerance term is the index so that β expresses how many cells
// of area one unit of FTI is worth.
func ftCost(p *place.Placement, prob Problem, o Options, beta float64) float64 {
	c := float64(p.ArrayCells()) + o.OverlapPenalty*float64(p.OverlapCells())
	if len(prob.Obstacles) > 0 {
		c += o.OverlapPenalty * float64(prob.obstacleHits(p))
	}
	if p.Valid() {
		c -= beta * fti.Compute(p).FTI()
	}
	return c
}

// AnnealFaultTolerance runs stage 2 (LTSA) from a stage-1 placement:
// single-module displacement only, fault tolerance index in the cost.
func AnnealFaultTolerance(start *place.Placement, prob Problem, opts Options, ft FTOptions) (*place.Placement, Stats, error) {
	o := opts.withDefaults(len(prob.Modules))
	f := ft.withDefaults()
	if start == nil {
		return nil, Stats{}, fmt.Errorf("core: stage 2 requires a stage-1 placement")
	}
	if err := start.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("core: stage-1 placement invalid: %w", err)
	}
	// Stage 2 explores a core that allows growth around the compact
	// stage-1 result.
	bb := start.BoundingBox()
	prob2 := prob
	prob2.MaxW = min(prob.MaxW+f.MarginCells, bb.W+2*f.MarginCells)
	prob2.MaxH = min(prob.MaxH+f.MarginCells, bb.H+2*f.MarginCells)
	if prob2.MaxW < prob.MaxW {
		prob2.MaxW = prob.MaxW
	}
	if prob2.MaxH < prob.MaxH {
		prob2.MaxH = prob.MaxH
	}
	span := max(prob2.MaxW, prob2.MaxH)
	sched := anneal.Schedule{T0: f.T0, Alpha: o.Alpha, Iters: o.ItersPerModule * len(prob.Modules)}

	var best *place.Placement
	bestCost := 0.0
	stats := Stats{}
	for r := 0; r < f.Restarts; r++ {
		rng := rand.New(rand.NewSource(o.Seed + 1 + int64(r)))
		// Single displacement only; the FTI term is priced by the
		// incremental per-module cache.
		k := newMoveKernel(start.Clone(), prob2, o, f.Beta, true, true)
		problem := anneal.MoveProblem[*place.Placement, kernelMove]{
			Cost:     k.Cost,
			Propose:  k.Propose,
			Delta:    k.Delta,
			Commit:   k.Commit,
			Revert:   k.Revert,
			Snapshot: k.Snapshot,
			Stop: anneal.StopAny(
				windowStop(o, span, o.WindowPatience),
				anneal.StopBelow(o.Alpha/1000*f.T0),
			),
			Observer: o.Observer,
		}
		res := anneal.RunMoves(problem, sched, rng)
		k.flushMetrics(o.Metrics, "ft")
		stats.Levels += len(res.Levels)
		stats.Evaluations += res.Evaluations
		if best == nil || res.BestCost < bestCost {
			best = res.Best
			bestCost = res.BestCost
			stats.FinalCost = res.BestCost
		}
	}

	best = best.Clone()
	best.Normalize()
	if err := best.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("core: LTSA ended with forbidden overlap: %w", err)
	}
	return best, stats, nil
}

// TwoStageResult bundles the outcome of the enhanced placement
// algorithm with its intermediate stage-1 placement.
type TwoStageResult struct {
	Stage1      *place.Placement
	Final       *place.Placement
	Stage1Stats Stats
	Stage2Stats Stats
	// Start and Seed identify the winning start of a multi-start run:
	// the start index (0 for a single start) and the derived seed it
	// annealed with.
	Start int
	Seed  int64
}

// startOptions resolves the options of start i of a multi-start run:
// the base seed is Options.Seed unless Search.Seed overrides it, start
// 0 runs the base seed unchanged (so a single start is bit-identical
// to a plain run), and start i ≥ 1 runs the splitmix64-derived stream
// seed shared with the campaign runner's per-trial derivation. Search
// is cleared so the per-start run cannot fan out again.
func startOptions(opts Options, i int) Options {
	o := opts
	base := opts.Seed
	if opts.Search.Seed != 0 {
		base = opts.Search.Seed
	}
	if i > 0 {
		base = campaign.DeriveSeed(base, uint64(i))
	}
	o.Seed = base
	o.Search = place.SearchOptions{}
	return o
}

// twoStageOne runs one two-stage placement with the options as given.
func twoStageOne(prob Problem, opts Options, ft FTOptions) (TwoStageResult, error) {
	s1, st1, err := AnnealArea(prob, opts)
	if err != nil {
		return TwoStageResult{}, err
	}
	s2, st2, err := AnnealFaultTolerance(s1, prob, opts, ft)
	if err != nil {
		return TwoStageResult{}, err
	}
	return TwoStageResult{
		Stage1: s1, Final: s2,
		Stage1Stats: st1, Stage2Stats: st2,
		Seed: opts.Seed,
	}, nil
}

// TwoStage runs the enhanced module placement algorithm of
// Section 6.2: fault-oblivious area minimisation followed by LTSA
// refinement of fault tolerance.
//
// With opts.Search.Starts > 1 it becomes a deterministic parallel
// multi-start search: that many independent two-stage runs fan out
// across at most opts.Search.Workers goroutines (one per CPU when 0),
// each with the per-start seed described by place.SearchOptions, and
// the run with the lowest stage-2 final cost wins, ties broken by
// lowest start index. Starts are compared in index order over the
// fully collected result slice, so the winner — placements, stats,
// everything — is byte-identical for a given seed at any worker
// count. Simulated annealing restarts share nothing mutable: the
// problem is immutable and every kernel, RNG, and FTI cache is
// goroutine-private.
func TwoStage(prob Problem, opts Options, ft FTOptions) (TwoStageResult, error) {
	starts := opts.Search.Starts
	if starts <= 1 {
		return twoStageOne(prob, startOptions(opts, 0), ft)
	}
	workers := opts.Search.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > starts {
		workers = starts
	}
	type outcome struct {
		res TwoStageResult
		err error
	}
	results := make([]outcome, starts)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i := 0; i < starts; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			r, err := twoStageOne(prob, startOptions(opts, i), ft)
			r.Start = i
			results[i] = outcome{r, err}
		}(i)
	}
	wg.Wait()

	best := -1
	for i := range results {
		if results[i].err != nil {
			return TwoStageResult{}, fmt.Errorf("core: multi-start %d: %w", i, results[i].err)
		}
		if best < 0 || results[i].res.Stage2Stats.FinalCost < results[best].res.Stage2Stats.FinalCost {
			best = i
		}
	}
	return results[best].res, nil
}

// SweepPoint is one row of the paper's Table 2.
type SweepPoint struct {
	Beta  float64
	Cells int
	FTI   float64
}

// BetaSweep reruns the two-stage algorithm for each β, reproducing the
// area/fault-tolerance trade-off of Table 2. The stage-1 placement is
// computed once and shared; ft.Beta is overridden per point.
func BetaSweep(prob Problem, opts Options, ft FTOptions, betas []float64) ([]SweepPoint, error) {
	s1, _, err := AnnealArea(prob, opts)
	if err != nil {
		return nil, err
	}
	var out []SweepPoint
	for _, b := range betas {
		ftb := ft
		ftb.Beta = b
		s2, _, err := AnnealFaultTolerance(s1, prob, opts, ftb)
		if err != nil {
			return nil, err
		}
		out = append(out, SweepPoint{
			Beta:  b,
			Cells: s2.ArrayCells(),
			FTI:   fti.Compute(s2).FTI(),
		})
	}
	return out, nil
}
