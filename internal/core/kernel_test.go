package core

import (
	"math/rand"
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/place"
)

// scratchCost is the historical clone-based cost: the AnnealArea cost
// closure for stage 1, ftCost for stage 2. The kernel must reproduce
// it to the last bit.
func scratchCost(p *place.Placement, prob Problem, o Options, beta float64, useFTI bool) float64 {
	if useFTI {
		return ftCost(p, prob, o, beta)
	}
	c := float64(p.ArrayCells()) + o.OverlapPenalty*float64(p.OverlapCells())
	if len(prob.Obstacles) > 0 {
		c += o.OverlapPenalty * float64(prob.obstacleHits(p))
	}
	return c
}

func samePlacement(a, b *place.Placement) bool {
	for i := range a.Modules {
		if a.Pos[i] != b.Pos[i] || a.Rot[i] != b.Rot[i] {
			return false
		}
	}
	return true
}

// runKernelDifferential drives the move kernel and the historical
// clone-based neighbor function from identically seeded RNGs and
// asserts, move for move:
//
//   - Propose consumes the RNG exactly as neighbor did (the staged
//     placements coincide);
//   - Delta's staged cost equals the from-scratch cost bit for bit;
//   - Revert restores the placement and cost exactly.
func runKernelDifferential(t *testing.T, prob Problem, o Options, beta float64, useFTI, singleOnly bool, seed int64, moves int) {
	t.Helper()
	o = o.withDefaults(len(prob.Modules))

	k := newMoveKernel(initialPlacement(prob), prob, o, beta, useFTI, singleOnly)
	cur := k.st.P.Clone() // mirror for the clone-based path
	rngK := rand.New(rand.NewSource(seed))
	rngN := rand.New(rand.NewSource(seed))
	rngD := rand.New(rand.NewSource(seed + 1000)) // accept/reject decisions

	curCost := scratchCost(cur, prob, o, beta, useFTI)
	if k.Cost() != curCost {
		t.Fatalf("initial cost = %v, scratch %v", k.Cost(), curCost)
	}

	T := o.T0
	if useFTI {
		T = 5 // LTSA regime
	}
	for mv := 0; mv < moves; mv++ {
		m := k.Propose(T, rngK)
		next := neighbor(cur, prob, o, T, rngN, singleOnly)
		dC := k.Delta(m)

		if !samePlacement(k.st.P, next) {
			t.Fatalf("move %d: kernel staged placement diverged from neighbor()", mv)
		}
		want := scratchCost(next, prob, o, beta, useFTI)
		if k.pending != want {
			t.Fatalf("move %d: staged cost = %v, scratch %v", mv, k.pending, want)
		}
		if dC != want-curCost {
			t.Fatalf("move %d: delta = %v, scratch %v", mv, dC, want-curCost)
		}

		if rngD.Intn(2) == 0 {
			k.Commit(m)
			cur = next
			curCost = want
		} else {
			k.Revert(m)
			if !samePlacement(k.st.P, cur) {
				t.Fatalf("move %d: revert did not restore the placement", mv)
			}
		}
		if k.Cost() != curCost {
			t.Fatalf("move %d: committed cost = %v, scratch %v", mv, k.Cost(), curCost)
		}
		if k.st.Overlap() != cur.OverlapCells() || k.st.BoundingBox() != cur.BoundingBox() {
			t.Fatalf("move %d: incremental state drifted from scratch", mv)
		}
		// Cool gradually so the controlling window sweeps its range.
		if mv%50 == 49 {
			T *= 0.95
			if T < 0.05 {
				T = o.T0
			}
		}
	}
}

func kernelTestProblem(rng *rand.Rand, n int) Problem {
	mods := make([]place.Module, n)
	for i := range mods {
		start := rng.Intn(15)
		mods[i] = place.Module{
			ID:   i,
			Name: "M",
			Size: geom.Size{W: 1 + rng.Intn(4), H: 1 + rng.Intn(4)},
			Span: geom.Interval{Start: start, End: start + 1 + rng.Intn(8)},
		}
	}
	return NewProblem(mods)
}

func TestKernelDifferentialArea(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for round := 0; round < 3; round++ {
		prob := kernelTestProblem(rng, 4+rng.Intn(5))
		runKernelDifferential(t, prob, Options{}, 0, false, false, int64(round)*7+1, 2000)
	}
}

func TestKernelDifferentialObstacles(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	prob := kernelTestProblem(rng, 6)
	prob.Obstacles = []geom.Point{{X: 2, Y: 2}, {X: 5, Y: 1}, {X: 0, Y: 4}}
	runKernelDifferential(t, prob, Options{}, 0, false, false, 77, 3000)
}

func TestKernelDifferentialFTI(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for round := 0; round < 2; round++ {
		prob := kernelTestProblem(rng, 4+rng.Intn(4))
		runKernelDifferential(t, prob, Options{}, 30, true, true, int64(round)*13+5, 2500)
	}
}
