package core

import (
	"math/rand"
	"testing"

	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/pcr"
	"dmfb/internal/place"
)

// lightOptions keeps unit tests fast; experiment-grade runs use the
// paper defaults (see bench_test.go at the repository root).
func lightOptions(seed int64) Options {
	return Options{Seed: seed, ItersPerModule: 150, WindowPatience: 5}
}

func pcrProblem() Problem {
	return FromSchedule(pcr.MustSchedule())
}

func mod(id int, name string, w, h, s, e int) place.Module {
	return place.Module{ID: id, Name: name, Size: geom.Size{W: w, H: h},
		Span: geom.Interval{Start: s, End: e}}
}

func TestNewProblemSizing(t *testing.T) {
	prob := NewProblem([]place.Module{mod(0, "A", 10, 2, 0, 5), mod(1, "B", 3, 3, 0, 5)})
	if prob.MaxW < 10 || prob.MaxH < 10 {
		t.Errorf("core area %dx%d cannot host the 10x2 module in both orientations",
			prob.MaxW, prob.MaxH)
	}
	if err := prob.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestProblemValidate(t *testing.T) {
	cases := []struct {
		name string
		prob Problem
	}{
		{"empty", Problem{MaxW: 10, MaxH: 10}},
		{"bad size", Problem{Modules: []place.Module{mod(0, "A", 0, 3, 0, 5)}, MaxW: 10, MaxH: 10}},
		{"empty span", Problem{Modules: []place.Module{mod(0, "A", 2, 2, 5, 5)}, MaxW: 10, MaxH: 10}},
		{"too big", Problem{Modules: []place.Module{mod(0, "A", 12, 12, 0, 5)}, MaxW: 10, MaxH: 10}},
	}
	for _, c := range cases {
		if err := c.prob.Validate(); err == nil {
			t.Errorf("%s: invalid problem accepted", c.name)
		}
	}
}

func TestGreedyBaselinePCR(t *testing.T) {
	prob := pcrProblem()
	for _, ta := range []bool{false, true} {
		p, err := Greedy(prob, ta)
		if err != nil {
			t.Fatalf("timeAware=%v: %v", ta, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("timeAware=%v invalid: %v", ta, err)
		}
	}
	// Time-oblivious greedy packs all modules disjointly: at least the
	// 130-cell module total. Time-aware exploits reconfiguration and
	// must do substantially better.
	oblivious, _ := Greedy(prob, false)
	aware, _ := Greedy(prob, true)
	if oblivious.ArrayCells() < 130 {
		t.Errorf("time-oblivious greedy %d cells < module total 130", oblivious.ArrayCells())
	}
	if aware.ArrayCells() >= oblivious.ArrayCells() {
		t.Errorf("time-aware greedy (%d) not better than oblivious (%d)",
			aware.ArrayCells(), oblivious.ArrayCells())
	}
	// Lower bound: the schedule's peak concurrent area is 54 cells.
	if aware.ArrayCells() < 54 {
		t.Errorf("greedy area %d beats the concurrency lower bound", aware.ArrayCells())
	}
}

func TestGreedyDeterministic(t *testing.T) {
	prob := pcrProblem()
	a, _ := Greedy(prob, true)
	b, _ := Greedy(prob, true)
	if a.String() != b.String() {
		t.Error("greedy not deterministic")
	}
}

func TestInitialPlacementFeasible(t *testing.T) {
	prob := pcrProblem()
	p := initialPlacement(prob)
	if err := p.Validate(); err != nil {
		t.Fatalf("constructive initial placement invalid: %v", err)
	}
	if !p.FitsIn(prob.MaxW, prob.MaxH+20) {
		t.Error("initial placement escapes core width")
	}
}

func TestWindowShrinksWithTemperature(t *testing.T) {
	o := Options{}.withDefaults(7)
	span := 17
	if got := window(o.T0, o.WindowT0, span); got != span {
		t.Errorf("window at T0 = %d, want full span %d", got, span)
	}
	if got := window(o.WindowT0/2, o.WindowT0, span); got >= span || got < 1 {
		t.Errorf("window at WindowT0/2 = %d", got)
	}
	if got := window(0.001, o.WindowT0, span); got != 1 {
		t.Errorf("window near zero = %d, want 1", got)
	}
	// Monotone non-increasing as T drops.
	prev := span + 1
	for _, T := range []float64{200, 100, 50, 25, 10, 5, 1, 0.1} {
		w := window(T, o.WindowT0, span)
		if w > prev {
			t.Fatalf("window grew as T dropped: %d -> %d at T=%v", prev, w, T)
		}
		prev = w
	}
}

func TestNeighborInvariants(t *testing.T) {
	prob := pcrProblem()
	o := Options{}.withDefaults(len(prob.Modules))
	rng := rand.New(rand.NewSource(9))
	cur := initialPlacement(prob)
	for i := 0; i < 3000; i++ {
		T := []float64{10000, 100, 5, 0.1}[i%4]
		before := cur.String()
		next := neighbor(cur, prob, o, T, rng, i%2 == 0)
		// cur must be untouched (annealing keeps it as fallback).
		if cur.String() != before {
			t.Fatalf("neighbor mutated the current placement at iter %d", i)
		}
		// next stays in the core area.
		if !next.FitsIn(prob.MaxW, prob.MaxH) {
			t.Fatalf("neighbor escaped the core area:\n%s", next)
		}
		cur = next
	}
}

func TestAnnealAreaPCR(t *testing.T) {
	prob := pcrProblem()
	p, stats, err := AnnealArea(prob, lightOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	greedy, _ := Greedy(prob, true)
	if p.ArrayCells() > greedy.ArrayCells() {
		t.Errorf("SA (%d cells) worse than greedy (%d cells)",
			p.ArrayCells(), greedy.ArrayCells())
	}
	// The schedule's peak concurrent footprint (54 cells) is a hard
	// lower bound; the known-optimal hand packing achieves 63.
	if p.ArrayCells() < 54 {
		t.Errorf("SA area %d beats the lower bound 54", p.ArrayCells())
	}
	if p.ArrayCells() > 84 {
		t.Errorf("SA area %d worse than even the greedy baseline region", p.ArrayCells())
	}
	if stats.Evaluations == 0 || stats.Levels == 0 {
		t.Error("stats not populated")
	}
}

func TestAnnealAreaDeterministicPerSeed(t *testing.T) {
	prob := pcrProblem()
	a, _, err := AnnealArea(prob, lightOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := AnnealArea(prob, lightOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("same seed produced different placements")
	}
}

func TestAnnealAreaRejectsBadProblem(t *testing.T) {
	if _, _, err := AnnealArea(Problem{MaxW: 5, MaxH: 5}, lightOptions(1)); err == nil {
		t.Error("empty problem accepted")
	}
}

func TestTwoStageImprovesFaultTolerance(t *testing.T) {
	prob := pcrProblem()
	res, err := TwoStage(prob, lightOptions(1), FTOptions{Beta: 40})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Final.Validate(); err != nil {
		t.Fatal(err)
	}
	fti1 := fti.Compute(res.Stage1).FTI()
	fti2 := fti.Compute(res.Final).FTI()
	if fti2 < fti1 {
		t.Errorf("stage 2 reduced FTI: %.4f -> %.4f", fti1, fti2)
	}
	if fti2 < 0.5 {
		t.Errorf("two-stage FTI %.4f suspiciously low at beta=40", fti2)
	}
	// The safety-critical trade: area may grow, but not explode.
	if res.Final.ArrayCells() > 2*res.Stage1.ArrayCells() {
		t.Errorf("stage 2 doubled the area: %d -> %d cells",
			res.Stage1.ArrayCells(), res.Final.ArrayCells())
	}
}

func TestAnnealFaultToleranceRequiresStage1(t *testing.T) {
	prob := pcrProblem()
	if _, _, err := AnnealFaultTolerance(nil, prob, lightOptions(1), FTOptions{Beta: 30}); err == nil {
		t.Error("nil stage-1 placement accepted")
	}
	// Invalid stage-1 placement rejected.
	bad := place.New(prob.Modules) // all at origin: overlapping
	if bad.Valid() {
		t.Fatal("test setup: expected overlapping placement")
	}
	if _, _, err := AnnealFaultTolerance(bad, prob, lightOptions(1), FTOptions{Beta: 30}); err == nil {
		t.Error("invalid stage-1 placement accepted")
	}
}

func TestBetaSweepTradeoff(t *testing.T) {
	prob := pcrProblem()
	pts, err := BetaSweep(prob, lightOptions(1), FTOptions{}, []float64{5, 60})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	lo, hi := pts[0], pts[1]
	if hi.FTI < lo.FTI {
		t.Errorf("beta=60 FTI %.4f below beta=5 FTI %.4f", hi.FTI, lo.FTI)
	}
	if hi.FTI < 0.8 {
		t.Errorf("beta=60 FTI %.4f: fault tolerance not bought", hi.FTI)
	}
	if lo.Cells > hi.Cells {
		t.Errorf("beta=5 area %d above beta=60 area %d", lo.Cells, hi.Cells)
	}
}

// Property: annealing random feasible problems always returns valid
// placements that fit the core and never exceed the shelf-packed
// initial area.
func TestAnnealAreaRandomProblems(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(5)
		mods := make([]place.Module, n)
		for i := range mods {
			st := rng.Intn(12)
			mods[i] = mod(i, "M", 1+rng.Intn(4), 1+rng.Intn(4), st, st+1+rng.Intn(10))
		}
		prob := NewProblem(mods)
		p, _, err := AnnealArea(prob, Options{Seed: int64(trial), ItersPerModule: 30, WindowPatience: 3})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		init := initialPlacement(prob)
		if p.ArrayCells() > init.ArrayCells() {
			t.Errorf("trial %d: SA (%d) worse than initial shelf packing (%d)",
				trial, p.ArrayCells(), init.ArrayCells())
		}
	}
}

func TestAnnealAreaBestOf(t *testing.T) {
	prob := pcrProblem()
	single, _, err := AnnealArea(prob, lightOptions(1))
	if err != nil {
		t.Fatal(err)
	}
	multi, stats, err := AnnealAreaBestOf(prob, lightOptions(1), 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := multi.Validate(); err != nil {
		t.Fatal(err)
	}
	// Best-of-n includes seed 1, so it can only match or improve.
	if multi.ArrayCells() > single.ArrayCells() {
		t.Errorf("best-of-4 (%d cells) worse than single seed (%d cells)",
			multi.ArrayCells(), single.ArrayCells())
	}
	if stats.Evaluations <= single.ArrayCells() {
		t.Error("aggregate stats missing")
	}
	if _, _, err := AnnealAreaBestOf(prob, lightOptions(1), 0); err == nil {
		t.Error("zero restarts accepted")
	}
	// Determinism despite parallel execution.
	a, _, _ := AnnealAreaBestOf(prob, lightOptions(2), 3)
	b, _, _ := AnnealAreaBestOf(prob, lightOptions(2), 3)
	if a.String() != b.String() {
		t.Error("parallel best-of not deterministic")
	}
}
