package core

import (
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/telemetry"
)

// TestAnnealAreaBestOfDeterministicAcrossRestartCounts verifies that
// the parallel restarts are bit-reproducible regardless of restart
// count and scheduling: BestOf(n) run twice gives the same placement,
// and its result equals the best of the individual seeded runs (which
// each share the immutable problem with restart-private state).
func TestAnnealAreaBestOfDeterministicAcrossRestartCounts(t *testing.T) {
	prob := Problem{Modules: []place.Module{
		mod(0, "A", 3, 2, 0, 6), mod(1, "B", 2, 4, 2, 9),
		mod(2, "C", 2, 2, 5, 12), mod(3, "D", 4, 2, 8, 14),
	}, MaxW: 8, MaxH: 8}
	opts := lightOptions(21)

	for _, n := range []int{1, 2, 3} {
		p1, _, err := AnnealAreaBestOf(prob, opts, n)
		if err != nil {
			t.Fatalf("BestOf(%d): %v", n, err)
		}
		p2, _, err := AnnealAreaBestOf(prob, opts, n)
		if err != nil {
			t.Fatalf("BestOf(%d) rerun: %v", n, err)
		}
		if p1.String() != p2.String() {
			t.Fatalf("BestOf(%d) not deterministic:\n%s\nvs\n%s", n, p1, p2)
		}

		// Equals the best of the standalone runs, ties to lowest seed.
		var want *place.Placement
		for i := 0; i < n; i++ {
			o := opts
			o.Seed = opts.Seed + int64(i)
			p, _, err := AnnealArea(prob, o)
			if err != nil {
				t.Fatalf("AnnealArea(seed %d): %v", o.Seed, err)
			}
			if want == nil || p.ArrayCells() < want.ArrayCells() {
				want = p
			}
		}
		if p1.String() != want.String() {
			t.Fatalf("BestOf(%d) != best standalone run:\n%s\nvs\n%s", n, p1, want)
		}
	}
}

// TestAnnealAreaObstaclePinnedNoNormalize checks the obstacle path
// skips normalisation: with a dead cell at the origin of a tight core,
// the only feasible placements leave the origin free, so the returned
// bounding box must not be translated back onto (0,0).
func TestAnnealAreaObstaclePinnedNoNormalize(t *testing.T) {
	prob := Problem{
		Modules:   []place.Module{mod(0, "A", 2, 2, 0, 5)},
		MaxW:      3,
		MaxH:      3,
		Obstacles: []geom.Point{{X: 0, Y: 0}},
	}
	p, _, err := AnnealArea(prob, lightOptions(4))
	if err != nil {
		t.Fatalf("AnnealArea: %v", err)
	}
	if hits := prob.obstacleHits(p); hits != 0 {
		t.Fatalf("placement covers %d obstacle cell(s)", hits)
	}
	bb := p.BoundingBox()
	if bb.X == 0 && bb.Y == 0 {
		t.Fatalf("obstacle-pinned placement was normalised onto the origin: %v", bb)
	}
	if !p.FitsIn(prob.MaxW, prob.MaxH) {
		t.Fatalf("placement leaves the core area: %s", p)
	}
}

// TestFullReconfigureDeterministic pins full reconfiguration under the
// move API: identical inputs replay to identical placements.
func TestFullReconfigureDeterministic(t *testing.T) {
	mods := []place.Module{
		mod(0, "A", 3, 3, 0, 6), mod(1, "B", 2, 4, 3, 10), mod(2, "C", 4, 2, 7, 13),
	}
	old := place.New(mods)
	old.Pos[0] = geom.Point{X: 0, Y: 0}
	old.Pos[1] = geom.Point{X: 3, Y: 0}
	old.Pos[2] = geom.Point{X: 0, Y: 4}
	dead := []geom.Point{{X: 1, Y: 1}}

	p1, err := FullReconfigure(old, dead, lightOptions(9))
	if err != nil {
		t.Fatalf("FullReconfigure: %v", err)
	}
	p2, err := FullReconfigure(old, dead, lightOptions(9))
	if err != nil {
		t.Fatalf("FullReconfigure rerun: %v", err)
	}
	if p1.String() != p2.String() {
		t.Fatalf("FullReconfigure not deterministic:\n%s\nvs\n%s", p1, p2)
	}
	for i := range p1.Modules {
		for _, d := range dead {
			if p1.Rect(i).Contains(d) {
				t.Fatalf("module %s covers dead cell %v", p1.Modules[i].Name, d)
			}
		}
	}
	// The chip is already fabricated: the new placement stays within
	// the old array bounds.
	bb := old.BoundingBox()
	if !p1.FitsIn(bb.MaxX(), bb.MaxY()) {
		t.Fatalf("reconfigured placement exceeds the fabricated %dx%d array", bb.MaxX(), bb.MaxY())
	}
}

// TestBetaSweepDeterministic pins the Table-2 sweep under the move
// API: the shared stage-1 placement plus per-β LTSA replays exactly.
func TestBetaSweepDeterministic(t *testing.T) {
	prob := Problem{Modules: []place.Module{
		mod(0, "A", 3, 2, 0, 6), mod(1, "B", 2, 3, 2, 9),
		mod(2, "C", 2, 2, 5, 12), mod(3, "D", 3, 2, 8, 14),
	}, MaxW: 7, MaxH: 7}
	betas := []float64{0, 20, 40}

	s1, err := BetaSweep(prob, lightOptions(2), FTOptions{}, betas)
	if err != nil {
		t.Fatalf("BetaSweep: %v", err)
	}
	s2, err := BetaSweep(prob, lightOptions(2), FTOptions{}, betas)
	if err != nil {
		t.Fatalf("BetaSweep rerun: %v", err)
	}
	if len(s1) != len(betas) {
		t.Fatalf("sweep returned %d points, want %d", len(s1), len(betas))
	}
	for i := range s1 {
		if s1[i] != s2[i] {
			t.Fatalf("sweep point %d not deterministic: %+v vs %+v", i, s1[i], s2[i])
		}
		if s1[i].FTI < 0 || s1[i].FTI > 1 {
			t.Fatalf("sweep point %d has FTI %v outside [0,1]", i, s1[i].FTI)
		}
	}
}

// TestKernelMetricsPublished checks the kernel counters reach the
// telemetry registry through Options.Metrics.
func TestKernelMetricsPublished(t *testing.T) {
	// Two time-disjoint module groups, so most moves dirty only part
	// of the module set and the FTI cache gets real hits.
	prob := Problem{Modules: []place.Module{
		mod(0, "A", 3, 2, 0, 5), mod(1, "B", 2, 3, 2, 8),
		mod(2, "C", 2, 2, 10, 15), mod(3, "D", 3, 2, 12, 18),
	}, MaxW: 7, MaxH: 7}
	reg := telemetry.NewRegistry()
	opts := lightOptions(1)
	opts.Metrics = reg

	s1, _, err := AnnealArea(prob, opts)
	if err != nil {
		t.Fatalf("AnnealArea: %v", err)
	}
	if _, _, err := AnnealFaultTolerance(s1, prob, opts, FTOptions{Beta: 20}); err != nil {
		t.Fatalf("AnnealFaultTolerance: %v", err)
	}

	snap := reg.Snapshot()
	for _, name := range []string{
		"place.area.moves_proposed", "place.area.moves_committed",
		"place.area.moves_reverted", "place.area.delta_evals",
		"place.ft.moves_proposed", "place.fti.module_evals",
		"place.fti.cache_hits",
	} {
		v, ok := snap.Counters[name]
		if !ok {
			t.Errorf("counter %s not published", name)
			continue
		}
		if v <= 0 {
			t.Errorf("counter %s = %d, want > 0", name, v)
		}
	}
	rate, ok := snap.Gauges["place.fti.cache_hit_rate"]
	if !ok {
		t.Errorf("gauge place.fti.cache_hit_rate not published")
	} else if rate <= 0 || rate > 1 {
		t.Errorf("cache hit rate = %v, want in (0,1]", rate)
	}
	prop := snap.Counters["place.area.moves_proposed"]
	comm := snap.Counters["place.area.moves_committed"]
	rev := snap.Counters["place.area.moves_reverted"]
	if comm+rev != prop {
		t.Errorf("committed %d + reverted %d != proposed %d", comm, rev, prop)
	}
}
