package stats

import (
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestWilsonIntervalBasics(t *testing.T) {
	lo, hi := Wilson95(50, 100)
	if lo >= 0.5 || hi <= 0.5 {
		t.Errorf("interval [%v,%v] should contain 0.5", lo, hi)
	}
	if hi-lo > 0.25 {
		t.Errorf("interval [%v,%v] too wide for n=100", lo, hi)
	}
	// Extremes stay inside [0,1] and behave sensibly.
	lo, hi = Wilson95(0, 50)
	if lo != 0 || hi < 0.01 || hi > 0.15 {
		t.Errorf("k=0 interval [%v,%v]", lo, hi)
	}
	lo, hi = Wilson95(50, 50)
	if hi != 1 || lo > 0.99 || lo < 0.85 {
		t.Errorf("k=n interval [%v,%v]", lo, hi)
	}
	// Width shrinks with n.
	_, hi1 := Wilson95(10, 20)
	lo1, _ := Wilson95(10, 20)
	lo2, hi2 := Wilson95(500, 1000)
	if hi2-lo2 >= hi1-lo1 {
		t.Error("interval did not shrink with sample size")
	}
}

func TestWilsonPanicsOnGarbage(t *testing.T) {
	for _, c := range [][2]int{{-1, 10}, {11, 10}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Wilson95(%d,%d) did not panic", c[0], c[1])
				}
			}()
			Wilson95(c[0], c[1])
		}()
	}
}

// TestWilsonCoverageProperty: across many binomial draws the 95%
// interval must cover the true rate roughly 95% of the time.
func TestWilsonCoverageProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, p := range []float64{0.05, 0.3, 0.5, 0.9, 0.99} {
		covered := 0
		const reps, n = 800, 120
		for r := 0; r < reps; r++ {
			k := 0
			for i := 0; i < n; i++ {
				if rng.Float64() < p {
					k++
				}
			}
			if Covers95(k, n, p) {
				covered++
			}
		}
		rate := float64(covered) / reps
		if rate < 0.90 || rate > 0.995 {
			t.Errorf("p=%v: empirical coverage %.3f outside [0.90, 0.995]", p, rate)
		}
	}
}

func TestDescribe(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	s := Describe(xs)
	if s.N != 8 || s.Mean != 5 {
		t.Errorf("N/mean wrong: %+v", s)
	}
	if math.Abs(s.Std-2.138) > 0.01 {
		t.Errorf("std = %v", s.Std)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("min/max wrong: %+v", s)
	}
	if s.Median != 4.5 {
		t.Errorf("median = %v", s.Median)
	}
	if !strings.Contains(s.String(), "mean=5.0000") {
		t.Errorf("String = %q", s.String())
	}
	// Single element.
	s1 := Describe([]float64{3})
	if s1.Mean != 3 || s1.Std != 0 || s1.Median != 3 {
		t.Errorf("singleton summary wrong: %+v", s1)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {1, 5}, {0.5, 3}, {0.25, 2}, {0.75, 4}, {-1, 1}, {2, 5},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestDescribePanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Describe(nil) did not panic")
		}
	}()
	Describe(nil)
}
