// Package stats provides the small statistics toolkit behind the
// Monte-Carlo experiments: binomial confidence intervals for survival
// and yield rates, and descriptive summaries for benchmark series.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// z95 is the standard normal quantile for 95% two-sided coverage.
const z95 = 1.959963984540054

// WilsonInterval returns the Wilson score interval for k successes in
// n trials at the given z quantile. Unlike the normal approximation it
// behaves sensibly at rates near 0 and 1, which is exactly where the
// fault-tolerance campaigns operate (FTI ≈ 1 designs). It panics on
// invalid inputs — campaign sizes are caller-controlled constants.
func WilsonInterval(k, n int, z float64) (lo, hi float64) {
	if n <= 0 || k < 0 || k > n {
		panic(fmt.Sprintf("stats: invalid binomial sample %d/%d", k, n))
	}
	p := float64(k) / float64(n)
	nf := float64(n)
	denom := 1 + z*z/nf
	centre := (p + z*z/(2*nf)) / denom
	half := z / denom * math.Sqrt(p*(1-p)/nf+z*z/(4*nf*nf))
	lo = centre - half
	hi = centre + half
	// The exact endpoints at k=0 and k=n are 0 and 1; floating-point
	// round-off must not exclude them.
	if lo < 0 || k == 0 {
		lo = 0
	}
	if hi > 1 || k == n {
		hi = 1
	}
	return lo, hi
}

// Wilson95 is WilsonInterval at 95% coverage.
func Wilson95(k, n int) (lo, hi float64) { return WilsonInterval(k, n, z95) }

// Covers95 reports whether the 95% Wilson interval for k/n contains
// the hypothesised rate p — the acceptance test the Monte-Carlo suites
// use to compare measured survival against a placement's FTI.
func Covers95(k, n int, p float64) bool {
	lo, hi := Wilson95(k, n)
	return p >= lo && p <= hi
}

// Summary holds descriptive statistics of a sample. Median is the
// p50 quantile.
type Summary struct {
	N         int
	Mean, Std float64
	Min, Max  float64
	Median    float64
	P05, P95  float64
	P99       float64
}

// Describe computes descriptive statistics. It panics on an empty
// sample.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		panic("stats: empty sample")
	}
	s := Summary{N: len(xs)}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	s.Median = Quantile(sorted, 0.5)
	s.P05 = Quantile(sorted, 0.05)
	s.P95 = Quantile(sorted, 0.95)
	s.P99 = Quantile(sorted, 0.99)
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		ss := 0.0
		for _, x := range xs {
			d := x - s.Mean
			ss += d * d
		}
		s.Std = math.Sqrt(ss / float64(len(xs)-1))
	}
	return s
}

// Quantile returns the linearly interpolated q-quantile of a sorted
// sample (q in [0,1]).
func Quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		panic("stats: empty sample")
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= len(sorted) {
		return sorted[i]
	}
	return sorted[i]*(1-frac) + sorted[i+1]*frac
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4f std=%.4f min=%.4f p05=%.4f median=%.4f p95=%.4f p99=%.4f max=%.4f",
		s.N, s.Mean, s.Std, s.Min, s.P05, s.Median, s.P95, s.P99, s.Max)
}
