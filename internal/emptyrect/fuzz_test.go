package emptyrect

import (
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/grid"
)

// FuzzMiner differentially fuzzes the linear-time MER miner against
// the exhaustive MaximalBrute oracle on arbitrary small grids, and
// asserts the structural invariants every mined rectangle must hold:
// in-bounds, entirely free, and maximal (not extensible in any
// direction). The miner is the inner loop of both the FTI kernel and
// the recovery planner, so a divergence here silently corrupts every
// result downstream.

// fuzzGrid decodes bytes into an occupancy grid of at most 12x12
// cells: two dimension bytes, then one bit per cell taken from the
// remaining bytes (zero once exhausted, so every prefix decodes).
func fuzzGrid(data []byte) *grid.Grid {
	dim := func(i int) int {
		if i < len(data) {
			return 1 + int(data[i])%12
		}
		return 1
	}
	w, h := dim(0), dim(1)
	g := grid.New(w, h)
	for i := 0; i < w*h; i++ {
		bi := 2 + i/8
		if bi < len(data) && data[bi]&(1<<(i%8)) != 0 {
			g.Set(geom.Point{X: i % w, Y: i / w}, true)
		}
	}
	return g
}

func FuzzMiner(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{4, 4})
	f.Add([]byte{8, 8, 0x42, 0x00, 0x18, 0x18, 0x00, 0x42, 0xff, 0x01})
	f.Add([]byte{12, 12, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55,
		0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55, 0xaa, 0x55})
	f.Add([]byte{3, 12, 0x01, 0x10, 0x04, 0x40, 0x02})
	var mn Miner
	f.Fuzz(func(t *testing.T, data []byte) {
		g := fuzzGrid(data)
		got := mn.AppendMaximal(nil, g)
		sortRects(got)
		want := MaximalBrute(g)
		if len(got) != len(want) {
			t.Fatalf("miner found %d MERs, oracle %d\ngrid:\n%s\nminer: %v\noracle: %v",
				len(got), len(want), g, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("MER %d: miner %v, oracle %v\ngrid:\n%s", i, got[i], want[i], g)
			}
			r := got[i]
			if !g.Bounds().ContainsRect(r) {
				t.Fatalf("MER %v escapes grid %dx%d", r, g.W(), g.H())
			}
			if !g.RectFree(r) {
				t.Fatalf("MER %v covers an occupied cell\ngrid:\n%s", r, g)
			}
			if !isMaximal(g, r) {
				t.Fatalf("rect %v is not maximal\ngrid:\n%s", r, g)
			}
		}
		// The stateless package-level path must agree with the reusable
		// miner (it is the same scan plus a sort).
		pkg := Maximal(g)
		if len(pkg) != len(got) {
			t.Fatalf("Maximal found %d MERs, Miner %d", len(pkg), len(got))
		}
		for i := range pkg {
			if pkg[i] != got[i] {
				t.Fatalf("Maximal[%d] = %v, Miner %v", i, pkg[i], got[i])
			}
		}
	})
}
