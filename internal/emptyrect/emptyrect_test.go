package emptyrect

import (
	"math/rand"
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/grid"
)

func mustParse(t *testing.T, s string) *grid.Grid {
	t.Helper()
	g, err := grid.Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func rectsEqual(a, b []geom.Rect) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestMaximalEmptyGrid(t *testing.T) {
	g := grid.New(5, 3)
	got := Maximal(g)
	want := []geom.Rect{{X: 0, Y: 0, W: 5, H: 3}}
	if !rectsEqual(got, want) {
		t.Fatalf("Maximal(empty) = %v, want %v", got, want)
	}
}

func TestMaximalFullGrid(t *testing.T) {
	g := grid.New(4, 4)
	g.SetRect(geom.Rect{X: 0, Y: 0, W: 4, H: 4}, true)
	if got := Maximal(g); len(got) != 0 {
		t.Fatalf("Maximal(full) = %v, want none", got)
	}
}

func TestMaximalSingleObstacle(t *testing.T) {
	// 3x3 grid with centre occupied: four 3x1/1x3 MERs.
	g := mustParse(t, `
		...
		.#.
		...`)
	got := Maximal(g)
	want := []geom.Rect{
		{X: 0, Y: 0, W: 1, H: 3},
		{X: 0, Y: 0, W: 3, H: 1},
		{X: 2, Y: 0, W: 1, H: 3},
		{X: 0, Y: 2, W: 3, H: 1},
	}
	if !rectsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMaximalStaircasePattern(t *testing.T) {
	g := mustParse(t, `
		#..
		##.
		...`)
	got := Maximal(g)
	want := MaximalBrute(g)
	if !rectsEqual(got, want) {
		t.Fatalf("fast %v != brute %v", got, want)
	}
	// The full bottom row and the right column must be among them.
	hasBottom, hasRight := false, false
	for _, r := range got {
		if r == (geom.Rect{X: 0, Y: 0, W: 3, H: 1}) {
			hasBottom = true
		}
		if r == (geom.Rect{X: 2, Y: 0, W: 1, H: 3}) {
			hasRight = true
		}
	}
	if !hasBottom || !hasRight {
		t.Fatalf("expected bottom row and right column MERs, got %v", got)
	}
}

func TestMaximalRowAndColumnSlits(t *testing.T) {
	// A plus-shaped free region.
	g := mustParse(t, `
		#.#
		...
		#.#`)
	got := Maximal(g)
	want := []geom.Rect{
		{X: 1, Y: 0, W: 1, H: 3},
		{X: 0, Y: 1, W: 3, H: 1},
	}
	if !rectsEqual(got, want) {
		t.Fatalf("got %v, want %v", got, want)
	}
}

func TestMaximalPropertiesRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 400; trial++ {
		w, h := 1+rng.Intn(9), 1+rng.Intn(9)
		g := grid.New(w, h)
		density := rng.Float64()
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				if rng.Float64() < density {
					g.Set(geom.Point{X: x, Y: y}, true)
				}
			}
		}
		fast := Maximal(g)
		brute := MaximalBrute(g)
		if !rectsEqual(fast, brute) {
			t.Fatalf("trial %d: fast enumeration differs\ngrid:\n%s\nfast:  %v\nbrute: %v",
				trial, g, fast, brute)
		}
		seen := map[geom.Rect]bool{}
		for _, r := range fast {
			if seen[r] {
				t.Fatalf("duplicate MER %v", r)
			}
			seen[r] = true
			if !g.RectFree(r) {
				t.Fatalf("MER %v not free in\n%s", r, g)
			}
			if !isMaximal(g, r) {
				t.Fatalf("MER %v extensible in\n%s", r, g)
			}
		}
	}
}

// Property: every free cell belongs to at least one MER.
func TestEveryFreeCellCovered(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		w, h := 1+rng.Intn(10), 1+rng.Intn(10)
		g := grid.New(w, h)
		for i := 0; i < w*h/3; i++ {
			g.Set(geom.Point{X: rng.Intn(w), Y: rng.Intn(h)}, true)
		}
		mers := Maximal(g)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				p := geom.Point{X: x, Y: y}
				if g.Occupied(p) {
					continue
				}
				covered := false
				for _, r := range mers {
					if r.Contains(p) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("free cell %v not in any MER for\n%s\nmers=%v", p, g, mers)
				}
			}
		}
	}
}

func TestAccommodates(t *testing.T) {
	rects := []geom.Rect{{X: 0, Y: 0, W: 3, H: 5}, {X: 4, Y: 4, W: 2, H: 2}}
	cases := []struct {
		s    geom.Size
		want bool
	}{
		{geom.Size{W: 3, H: 5}, true},
		{geom.Size{W: 5, H: 3}, true}, // via rotation
		{geom.Size{W: 2, H: 2}, true},
		{geom.Size{W: 4, H: 4}, false},
		{geom.Size{W: 1, H: 6}, false},
		{geom.Size{W: 3, H: 4}, true},
	}
	for _, c := range cases {
		if got := Accommodates(rects, c.s); got != c.want {
			t.Errorf("Accommodates(%v) = %v, want %v", c.s, got, c.want)
		}
	}
	if Accommodates(nil, geom.Size{W: 1, H: 1}) {
		t.Error("Accommodates(nil) = true")
	}
}

func TestAccommodatesAvoiding(t *testing.T) {
	// One 3x3 MER; a 3x3 module fits only exactly, so any cell of the
	// MER is unavoidable; a 2x2 module can always dodge one cell.
	rects := []geom.Rect{{X: 2, Y: 2, W: 3, H: 3}}
	if AccommodatesAvoiding(rects, geom.Size{W: 3, H: 3}, geom.Point{X: 3, Y: 3}) {
		t.Error("exact-fit module cannot avoid an interior cell")
	}
	if !AccommodatesAvoiding(rects, geom.Size{W: 3, H: 3}, geom.Point{X: 0, Y: 0}) {
		t.Error("cell outside MER should not block")
	}
	// Every 2x2 placement inside a 3x3 covers the centre cell.
	if AccommodatesAvoiding(rects, geom.Size{W: 2, H: 2}, geom.Point{X: 3, Y: 3}) {
		t.Error("2x2 in 3x3 cannot avoid the centre cell")
	}
	// A corner, however, can be dodged.
	if !AccommodatesAvoiding(rects, geom.Size{W: 2, H: 2}, geom.Point{X: 2, Y: 2}) {
		t.Error("2x2 in 3x3 should avoid a corner")
	}
	// 2x3 in 3x3 avoiding centre: origins (2,2),(3,2) for 2x3 — both
	// cover y-range 2..4 and x-ranges {2,3},{3,4}: all cover (3,3)?
	// origin (2,2): covers x 2-3, y 2-4 -> covers (3,3). origin (3,2):
	// x 3-4 -> covers. Rotated 3x2: origins (2,2),(2,3): y 2-3 / 3-4,
	// x 2-4 -> both cover (3,3). So impossible.
	if AccommodatesAvoiding(rects, geom.Size{W: 2, H: 3}, geom.Point{X: 3, Y: 3}) {
		t.Error("2x3 in 3x3 cannot avoid the centre cell")
	}
	// But avoiding a corner is possible.
	if !AccommodatesAvoiding(rects, geom.Size{W: 2, H: 3}, geom.Point{X: 2, Y: 2}) {
		t.Error("2x3 in 3x3 should avoid a corner")
	}
}

// Property: AccommodatesAvoiding agrees with explicit placement search.
func TestAccommodatesAvoidingProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 2000; trial++ {
		r := geom.Rect{X: rng.Intn(4), Y: rng.Intn(4), W: 1 + rng.Intn(5), H: 1 + rng.Intn(5)}
		s := geom.Size{W: 1 + rng.Intn(5), H: 1 + rng.Intn(5)}
		avoid := geom.Point{X: rng.Intn(8), Y: rng.Intn(8)}
		want := false
		for _, o := range orientations(s) {
			if _, ok := placeAvoiding(r, o, avoid); ok && o.Fits(r.Size()) {
				want = true
			}
		}
		got := AccommodatesAvoiding([]geom.Rect{r}, s, avoid)
		if got != want {
			t.Fatalf("AccommodatesAvoiding(%v, %v, %v) = %v, want %v", r, s, avoid, got, want)
		}
	}
}

func TestBestFit(t *testing.T) {
	rects := []geom.Rect{{X: 0, Y: 0, W: 6, H: 6}, {X: 7, Y: 0, W: 3, H: 4}}
	placed, ok := BestFit(rects, geom.Size{W: 3, H: 4})
	if !ok {
		t.Fatal("BestFit failed")
	}
	// The 3x4 host wastes 0 cells; must be chosen over the 6x6.
	if placed != (geom.Rect{X: 7, Y: 0, W: 3, H: 4}) {
		t.Fatalf("BestFit = %v, want tight host", placed)
	}
	if _, ok := BestFit(rects, geom.Size{W: 7, H: 7}); ok {
		t.Fatal("BestFit accepted an oversized module")
	}
}

func TestBestFitAvoiding(t *testing.T) {
	rects := []geom.Rect{{X: 0, Y: 0, W: 3, H: 3}}
	placed, ok := BestFitAvoiding(rects, geom.Size{W: 2, H: 2}, geom.Point{X: 0, Y: 0})
	if !ok {
		t.Fatal("BestFitAvoiding failed")
	}
	if placed.Contains(geom.Point{X: 0, Y: 0}) {
		t.Fatalf("placement %v covers the avoided cell", placed)
	}
	if _, ok := BestFitAvoiding(rects, geom.Size{W: 3, H: 3}, geom.Point{X: 1, Y: 1}); ok {
		t.Fatal("BestFitAvoiding accepted an impossible placement")
	}
}

func BenchmarkMaximal16x16(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := grid.New(16, 16)
	for i := 0; i < 40; i++ {
		g.Set(geom.Point{X: rng.Intn(16), Y: rng.Intn(16)}, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Maximal(g)
	}
}

func BenchmarkMaximalBrute16x16(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	g := grid.New(16, 16)
	for i := 0; i < 40; i++ {
		g.Set(geom.Point{X: rng.Intn(16), Y: rng.Intn(16)}, true)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		MaximalBrute(g)
	}
}

// Property: BestFit returns a placement inside some MER that the
// footprint fits, and reports failure exactly when Accommodates does.
func TestBestFitConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 300; trial++ {
		g := grid.New(1+rng.Intn(9), 1+rng.Intn(9))
		for i := 0; i < g.Cells()/3; i++ {
			g.Set(geom.Point{X: rng.Intn(g.W()), Y: rng.Intn(g.H())}, true)
		}
		mers := Maximal(g)
		s := geom.Size{W: 1 + rng.Intn(4), H: 1 + rng.Intn(4)}
		placed, ok := BestFit(mers, s)
		if ok != Accommodates(mers, s) {
			t.Fatalf("BestFit ok=%v disagrees with Accommodates", ok)
		}
		if !ok {
			continue
		}
		if placed.Size() != s && placed.Size() != s.Transpose() {
			t.Fatalf("BestFit returned wrong footprint %v for %v", placed.Size(), s)
		}
		if !g.RectFree(placed) {
			t.Fatalf("BestFit placement %v not free in\n%s", placed, g)
		}
	}
}

// TestMinerIncrementalReuse drives one Miner through a long sequence
// of localized grid mutations — the access pattern of the incremental
// FTI kernel, where each annealing move dirties a handful of rows —
// and checks every re-mine against a from-scratch enumeration,
// including the order of emission. Dimension changes and no-op
// re-mines of an unchanged grid are mixed in to cover the snapshot
// reset and full-replay paths.
func TestMinerIncrementalReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var mn Miner
	g := grid.New(10, 13)
	check := func(step int) {
		t.Helper()
		got := mn.AppendMaximal(nil, g)
		var fresh Miner
		want := fresh.AppendMaximal(nil, g)
		if len(got) != len(want) {
			t.Fatalf("step %d: incremental found %d MERs, scratch %d\ngrid:\n%s", step, len(got), len(want), g)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("step %d MER %d: incremental %v, scratch %v\ngrid:\n%s", step, i, got[i], want[i], g)
			}
		}
	}
	check(-1)
	for step := 0; step < 600; step++ {
		switch rng.Intn(20) {
		case 0: // resize: caches must reset
			g.Resize(1+rng.Intn(14), 1+rng.Intn(14))
		case 1: // unchanged grid: pure cache replay
		default:
			r := geom.Rect{
				X: rng.Intn(g.W()), Y: rng.Intn(g.H()),
				W: 1 + rng.Intn(4), H: 1 + rng.Intn(3),
			}
			g.SetRect(r, rng.Intn(2) == 0)
		}
		check(step)
	}
}
