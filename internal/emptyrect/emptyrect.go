// Package emptyrect enumerates maximal empty rectangles (MERs) in an
// occupancy grid. A maximal empty rectangle is a rectangle of free
// cells that is not contained in any larger rectangle of free cells.
//
// The paper's fast fault-tolerance-index algorithm (Section 5.3) mines
// MERs with the staircase technique of Edmonds et al.; relocating a
// faulty module succeeds exactly when some MER can accommodate the
// module's footprint. This package implements an equivalent
// linear-sweep enumeration: rows are scanned bottom-to-top while a
// per-column free-run histogram is maintained, and a monotone stack —
// the staircase of partially overlapping empty rectangles sharing a
// corner cell — yields every width-maximal, height-tight rectangle.
// Rectangles that could still grow upward are deferred to a later row,
// so each MER is reported exactly once. Total cost is O(W·H + #MER).
package emptyrect

import (
	"sort"

	"dmfb/internal/geom"
	"dmfb/internal/grid"
)

// Maximal returns all maximal empty rectangles of g. The result is
// sorted by (Y, X, W, H) so output is deterministic. The slice is nil
// when the grid is fully occupied.
func Maximal(g *grid.Grid) []geom.Rect {
	return AppendMaximal(nil, g)
}

// AppendMaximal appends every maximal empty rectangle of g to dst and
// returns the extended slice. Ordering matches Maximal: the appended
// region is sorted by (Y, X, W, H).
func AppendMaximal(dst []geom.Rect, g *grid.Grid) []geom.Rect {
	var m Miner
	base := len(dst)
	out := m.AppendMaximal(dst, g)
	sortRects(out[base:])
	return out
}

// Miner enumerates maximal empty rectangles with reusable scan
// buffers, so hot loops (the incremental FTI kernel re-mines MERs on
// every annealing move) run allocation-free. The rows of the grid are
// consumed through the bit-packed word API, never per-cell reads.
//
// A Miner is also incremental: it keeps a word snapshot of the last
// grid it mined plus per-row caches (the up histogram after each row
// and the rectangles whose top edge lies on each row). When asked to
// mine again it diffs the new grid against the snapshot, replays the
// cached emissions for every row strictly below the first dirtied row,
// and resumes the staircase scan one row earlier (the dirtied row also
// invalidates the blocked-above test of the row beneath it). A move
// that perturbs one module therefore re-scans only the rows it
// touched. Output is identical — same rectangles, same order — to a
// from-scratch mine of the same grid.
//
// The zero value is ready to use; a Miner must not be shared between
// goroutines.
type Miner struct {
	up        []int // free-run length ending at the current row
	occPrefix []int // prefix of occupied cells in the row above
	stack     []minerBar

	snapW, snapH int           // dimensions the caches describe; 0 = none
	snap         []uint64      // word copy of the last grid mined
	upAt         []int         // h×w: up histogram after processing each row
	emitted      [][]geom.Rect // emitted[y]: MERs whose top edge is row y
}

type minerBar struct{ start, h int }

// Reset drops the incremental caches, forcing the next AppendMaximal
// to mine from scratch. Mining stays correct without ever calling
// Reset — the diff finds every change — but callers that know the next
// grid is unrelated can drop the snapshot early.
func (mn *Miner) Reset() { mn.snapW, mn.snapH = 0, 0 }

// AppendMaximal appends every maximal empty rectangle of g to dst and
// returns the extended slice. Unlike the package-level function, the
// appended rectangles are in unspecified order — callers that need
// determinism across runs must sort, but set-valued consumers (the
// relocatability tests) should skip that cost. (In the current
// implementation the order is in fact reproducible for a given grid —
// row-major by top edge — whether the mine ran incrementally or from
// scratch; only the sorted contract is guaranteed.)
func (mn *Miner) AppendMaximal(dst []geom.Rect, g *grid.Grid) []geom.Rect {
	w, h, wpr := g.W(), g.H(), g.WordsPerRow()
	words := g.Words()
	out := dst

	// Diff against the snapshot: y0 is the first row to (re)scan.
	y0 := 0
	if w == mn.snapW && h == mn.snapH {
		dirty := -1
		for i, wd := range words {
			if wd != mn.snap[i] {
				dirty = i / wpr
				break
			}
		}
		if dirty < 0 {
			for y := 0; y < h; y++ {
				out = append(out, mn.emitted[y]...)
			}
			return out
		}
		// Row dirty-1 saw row dirty in its blocked-above test, so its
		// emissions are stale too; everything below is reusable.
		y0 = dirty - 1
		if y0 < 0 {
			y0 = 0
		}
	} else {
		mn.sizeCaches(w, h, wpr)
	}

	up := mn.up[:w]
	if y0 == 0 {
		for i := range up {
			up[i] = 0
		}
	} else {
		copy(up, mn.upAt[(y0-1)*w:y0*w])
	}
	for y := 0; y < y0; y++ {
		out = append(out, mn.emitted[y]...)
	}
	occPrefix := mn.occPrefix[:w+1]

	for y := y0; y < h; y++ {
		row := words[y*wpr : (y+1)*wpr]
		for wi, word := range row {
			base := wi * wordBits
			n := w - base
			if n > wordBits {
				n = wordBits
			}
			if word == 0 {
				for c := 0; c < n; c++ {
					up[base+c]++
				}
				continue
			}
			for c := 0; c < n; c++ {
				if word&(1<<uint(c)) != 0 {
					up[base+c] = 0
				} else {
					up[base+c]++
				}
			}
		}
		// Occupancy prefix sums for the row above: a candidate with top
		// edge at row y is maximal only if it cannot grow into row y+1.
		topRow := y == h-1
		if !topRow {
			above := words[(y+1)*wpr : (y+2)*wpr]
			s := 0
			occPrefix[0] = 0
			for wi, word := range above {
				base := wi * wordBits
				n := w - base
				if n > wordBits {
					n = wordBits
				}
				for c := 0; c < n; c++ {
					s += int(word>>uint(c)) & 1
					occPrefix[base+c+1] = s
				}
			}
		}

		em := mn.emitted[y][:0]
		stack := mn.stack[:0]
		for x := 0; x <= w; x++ {
			cur := -1 // sentinel flushes the stack at the right edge
			if x < w {
				cur = up[x]
			}
			start := x
			for len(stack) > 0 && stack[len(stack)-1].h > cur {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				// Maximal only if blocked above (inclusive span b.start..x-1).
				if b.h > 0 && (topRow || occPrefix[x]-occPrefix[b.start] > 0) {
					em = append(em, geom.Rect{X: b.start, Y: y - b.h + 1, W: x - b.start, H: b.h})
				}
				start = b.start
			}
			if len(stack) == 0 || stack[len(stack)-1].h < cur {
				stack = append(stack, minerBar{start, cur})
			}
		}
		mn.stack = stack[:0]
		mn.emitted[y] = em
		out = append(out, em...)
		copy(mn.upAt[y*w:(y+1)*w], up)
	}

	mn.snap = mn.snap[:wpr*h]
	copy(mn.snap, words)
	mn.snapW, mn.snapH = w, h
	return out
}

// wordBits mirrors the grid package's word size; RowWords documents
// the bit layout (bit x%64 of word x/64 is cell x).
const wordBits = 64

// sizeCaches (re)shapes the scan buffers and incremental caches for a
// w×h grid and invalidates the snapshot.
func (mn *Miner) sizeCaches(w, h, wpr int) {
	if cap(mn.up) < w {
		mn.up = make([]int, w)
		mn.occPrefix = make([]int, w+1)
		mn.stack = make([]minerBar, 0, w+1)
	}
	if cap(mn.snap) < wpr*h {
		mn.snap = make([]uint64, wpr*h)
	}
	if cap(mn.upAt) < w*h {
		mn.upAt = make([]int, w*h)
	}
	if cap(mn.emitted) < h {
		em := make([][]geom.Rect, h)
		copy(em, mn.emitted)
		mn.emitted = em
	}
	mn.emitted = mn.emitted[:h]
	mn.snapW, mn.snapH = 0, 0
}

// MaximalBrute is an exhaustive oracle used by the test suite and by
// the fault-tolerance-index cross-checks: it examines every rectangle
// in the grid, keeps the free ones, and filters to those that cannot be
// extended by one cell in any direction. O(W³·H³); use only on small
// grids.
func MaximalBrute(g *grid.Grid) []geom.Rect {
	var out []geom.Rect
	for y := 0; y < g.H(); y++ {
		for x := 0; x < g.W(); x++ {
			for hh := 1; y+hh <= g.H(); hh++ {
				for ww := 1; x+ww <= g.W(); ww++ {
					r := geom.Rect{X: x, Y: y, W: ww, H: hh}
					if !g.RectFree(r) {
						break // wider is not free either
					}
					if isMaximal(g, r) {
						out = append(out, r)
					}
				}
			}
		}
	}
	sortRects(out)
	return out
}

func isMaximal(g *grid.Grid, r geom.Rect) bool {
	grow := []geom.Rect{
		{X: r.X - 1, Y: r.Y, W: r.W + 1, H: r.H}, // left
		{X: r.X, Y: r.Y, W: r.W + 1, H: r.H},     // right
		{X: r.X, Y: r.Y - 1, W: r.W, H: r.H + 1}, // down
		{X: r.X, Y: r.Y, W: r.W, H: r.H + 1},     // up
	}
	for _, e := range grow {
		if g.RectFree(e) {
			return false
		}
	}
	return true
}

// Accommodates reports whether a module footprint s fits inside any of
// the rectangles, in either orientation.
func Accommodates(rects []geom.Rect, s geom.Size) bool {
	for _, r := range rects {
		if s.FitsEither(r.Size()) {
			return true
		}
	}
	return false
}

// AccommodatesAvoiding reports whether a module footprint s can be
// placed inside some rectangle without covering the cell avoid. This
// is the relocation feasibility test for a faulty cell that lies within
// the module's own (temporarily freed) region: the new site must not
// reuse the faulty cell. The check is arithmetic — no grid scan.
func AccommodatesAvoiding(rects []geom.Rect, s geom.Size, avoid geom.Point) bool {
	for _, r := range rects {
		if fitsAvoiding(r, s, avoid) || (!s.IsSquare() && fitsAvoiding(r, s.Transpose(), avoid)) {
			return true
		}
	}
	return false
}

// fitsAvoiding reports whether footprint s (fixed orientation) has at
// least one placement inside r that does not cover avoid.
func fitsAvoiding(r geom.Rect, s geom.Size, avoid geom.Point) bool {
	if !s.Fits(r.Size()) {
		return false
	}
	if !r.Contains(avoid) {
		return true // every placement avoids it
	}
	// Origins form the grid [r.X, r.X+r.W-s.W] × [r.Y, r.Y+r.H-s.H].
	// Origins whose rectangle covers avoid satisfy
	// origin.X ∈ [avoid.X-s.W+1, avoid.X] and likewise for Y.
	totalX := r.W - s.W + 1
	totalY := r.H - s.H + 1
	covX := overlapLen(r.X, r.X+r.W-s.W, avoid.X-s.W+1, avoid.X)
	covY := overlapLen(r.Y, r.Y+r.H-s.H, avoid.Y-s.H+1, avoid.Y)
	return covX*covY < totalX*totalY
}

// overlapLen returns the size of the intersection of the inclusive
// integer ranges [a0,a1] and [b0,b1].
func overlapLen(a0, a1, b0, b1 int) int {
	lo := max(a0, b0)
	hi := min(a1, b1)
	if hi < lo {
		return 0
	}
	return hi - lo + 1
}

// BestFit returns the placement rectangle for footprint s (considering
// both orientations) inside the rectangle set that minimises leftover
// area of the hosting MER, preferring the first in sorted order on
// ties. ok is false when no rectangle accommodates s. The returned
// rect is anchored at its host's origin.
func BestFit(rects []geom.Rect, s geom.Size) (placed geom.Rect, ok bool) {
	bestWaste := int(^uint(0) >> 1)
	for _, r := range rects {
		for _, o := range orientations(s) {
			if !o.Fits(r.Size()) {
				continue
			}
			waste := r.Cells() - o.Cells()
			if waste < bestWaste {
				bestWaste = waste
				placed = geom.RectAt(r.Origin(), o)
				ok = true
			}
		}
	}
	return placed, ok
}

// BestFitAvoiding is BestFit with the additional constraint that the
// placement must not cover the cell avoid. The placement is anchored
// at the host origin when that avoids the cell, otherwise shifted the
// minimum distance needed.
func BestFitAvoiding(rects []geom.Rect, s geom.Size, avoid geom.Point) (placed geom.Rect, ok bool) {
	bestWaste := int(^uint(0) >> 1)
	for _, r := range rects {
		for _, o := range orientations(s) {
			if !fitsAvoiding(r, o, avoid) {
				continue
			}
			waste := r.Cells() - o.Cells()
			if waste >= bestWaste {
				continue
			}
			if p, found := placeAvoiding(r, o, avoid); found {
				bestWaste = waste
				placed = p
				ok = true
			}
		}
	}
	return placed, ok
}

// placeAvoiding scans candidate origins in (y, x) order and returns
// the first placement of o inside r that does not cover avoid.
func placeAvoiding(r geom.Rect, o geom.Size, avoid geom.Point) (geom.Rect, bool) {
	for y := r.Y; y+o.H <= r.MaxY(); y++ {
		for x := r.X; x+o.W <= r.MaxX(); x++ {
			c := geom.Rect{X: x, Y: y, W: o.W, H: o.H}
			if !c.Contains(avoid) {
				return c, true
			}
		}
	}
	return geom.Rect{}, false
}

func orientations(s geom.Size) []geom.Size {
	if s.IsSquare() {
		return []geom.Size{s}
	}
	return []geom.Size{s, s.Transpose()}
}

func sortRects(rs []geom.Rect) {
	sort.Slice(rs, func(i, j int) bool {
		a, b := rs[i], rs[j]
		if a.Y != b.Y {
			return a.Y < b.Y
		}
		if a.X != b.X {
			return a.X < b.X
		}
		if a.W != b.W {
			return a.W < b.W
		}
		return a.H < b.H
	})
}
