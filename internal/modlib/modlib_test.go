package modlib

import (
	"math"
	"strings"
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/geom"
)

func TestTable1Catalogue(t *testing.T) {
	l := Table1()
	// The four mixers of the paper's Table 1.
	cases := []struct {
		name     string
		hardware string
		size     geom.Size
		dur      int
	}{
		{Mixer2x2, "2x2 electrode array", geom.Size{W: 4, H: 4}, 10},
		{Mixer1x4, "4-electrode linear array", geom.Size{W: 3, H: 6}, 5},
		{Mixer2x3, "2x3 electrode array", geom.Size{W: 4, H: 5}, 6},
		{Mixer2x4, "2x4 electrode array", geom.Size{W: 4, H: 6}, 3},
	}
	for _, c := range cases {
		d, ok := l.Get(c.name)
		if !ok {
			t.Fatalf("device %q missing", c.name)
		}
		if d.Hardware != c.hardware || d.Size != c.size || d.Duration != c.dur || d.Kind != assay.Mix {
			t.Errorf("%s = %+v, want %+v", c.name, d, c)
		}
	}
	if _, ok := l.Get(StorageUnit); !ok {
		t.Error("storage unit missing")
	}
	if _, ok := l.Get(DetectorLED); !ok {
		t.Error("detector missing")
	}
	if _, ok := l.Get("no-such"); ok {
		t.Error("unknown device found")
	}
}

func TestAreaConstants(t *testing.T) {
	if CellPitchMM != 1.5 || GapHeightUM != 600 {
		t.Error("Table 1 physical constants wrong")
	}
	// 63 cells -> 141.75 mm² (the paper's Figure 7 area).
	if got := AreaMM2(63); math.Abs(got-141.75) > 1e-9 {
		t.Errorf("AreaMM2(63) = %v, want 141.75", got)
	}
	// 84 cells -> 189 mm² (the greedy baseline).
	if got := AreaMM2(84); math.Abs(got-189.0) > 1e-9 {
		t.Errorf("AreaMM2(84) = %v, want 189", got)
	}
}

func TestLibraryAddErrors(t *testing.T) {
	l, err := NewLibrary()
	if err != nil {
		t.Fatal(err)
	}
	ok := Device{Name: "m", Kind: assay.Mix, Size: geom.Size{W: 2, H: 2}, Duration: 5}
	if err := l.Add(ok); err != nil {
		t.Fatal(err)
	}
	if err := l.Add(ok); err == nil {
		t.Error("duplicate name accepted")
	}
	bad := ok
	bad.Name = "bad-size"
	bad.Size = geom.Size{W: 0, H: 3}
	if err := l.Add(bad); err == nil {
		t.Error("invalid footprint accepted")
	}
	bad = ok
	bad.Name = "bad-dur"
	bad.Duration = 0
	if err := l.Add(bad); err == nil {
		t.Error("non-positive duration accepted")
	}
	if _, err := NewLibrary(ok, ok); err == nil {
		t.Error("NewLibrary accepted duplicates")
	}
}

func TestForKindAndSelectors(t *testing.T) {
	l := Table1()
	mixers := l.ForKind(assay.Mix)
	if len(mixers) != 4 {
		t.Fatalf("ForKind(Mix) = %d devices", len(mixers))
	}
	fast, ok := l.FastestForKind(assay.Mix)
	if !ok || fast.Name != Mixer2x4 {
		t.Errorf("FastestForKind = %v", fast.Name)
	}
	small, ok := l.SmallestForKind(assay.Mix)
	if !ok || small.Name != Mixer2x2 {
		t.Errorf("SmallestForKind = %v (cells=%d)", small.Name, small.Cells())
	}
	if _, ok := l.FastestForKind(assay.Dilute); ok {
		t.Error("FastestForKind found a dilutor in Table1")
	}
	if _, ok := l.SmallestForKind(assay.Dilute); ok {
		t.Error("SmallestForKind found a dilutor in Table1")
	}
}

func TestDevicesCopyAndString(t *testing.T) {
	l := Table1()
	ds := l.Devices()
	n := len(ds)
	ds[0].Name = "mutated"
	if l.Devices()[0].Name == "mutated" {
		t.Error("Devices returns aliased slice")
	}
	if len(l.Devices()) != n {
		t.Error("Devices length changed")
	}
	d, _ := l.Get(Mixer2x2)
	s := d.String()
	if !strings.Contains(s, "2x2 electrode array") || !strings.Contains(s, "4x4") || !strings.Contains(s, "10s") {
		t.Errorf("String = %q", s)
	}
	if d.Cells() != 16 {
		t.Errorf("Cells = %d", d.Cells())
	}
}
