// Package modlib is the microfluidic module library: the catalogue of
// virtual devices (mixers, storage units, detectors) that
// architectural-level synthesis binds assay operations to.
//
// Each entry pairs a physical realisation — an electrode structure such
// as a "2x2 electrode array" or "4-electrode linear array" — with the
// array footprint it needs (functional region plus the segregation
// ring that isolates it from neighbours and carries droplet traffic)
// and the operation duration. The default catalogue reproduces
// Table 1 of the paper, whose mixing times come from the droplet-mixer
// experiments of Paik et al. (Lab Chip, 2003).
package modlib

import (
	"fmt"

	"dmfb/internal/assay"
	"dmfb/internal/geom"
)

// CellPitchMM is the electrode pitch of the target chip in
// millimetres (Table 1: 1.5 mm).
const CellPitchMM = 1.5

// CellAreaMM2 is the area of one cell in mm² (2.25 mm² at 1.5 mm pitch).
const CellAreaMM2 = CellPitchMM * CellPitchMM

// GapHeightUM is the filler-medium gap between the plates in
// micrometres (Table 1: 600 µm). Recorded for documentation and the
// fluidics model; it does not affect placement.
const GapHeightUM = 600

// AreaMM2 converts a cell count to square millimetres.
func AreaMM2(cells int) float64 { return float64(cells) * CellAreaMM2 }

// Device describes one library entry: a virtual module type.
type Device struct {
	Name     string // catalogue name, e.g. "mixer-2x2"
	Hardware string // electrode structure, e.g. "2x2 electrode array"
	Kind     assay.OpKind
	Size     geom.Size // array footprint in cells, segregation included
	Duration int       // operation time in seconds
}

// String summarises the entry as in Table 1.
func (d Device) String() string {
	return fmt.Sprintf("%s (%s): %s cells, %ds", d.Name, d.Hardware, d.Size, d.Duration)
}

// Cells returns the footprint cell count.
func (d Device) Cells() int { return d.Size.Cells() }

// Library is a named collection of devices.
type Library struct {
	devices []Device
	byName  map[string]int
}

// NewLibrary builds a library from the given devices. Duplicate names
// are rejected.
func NewLibrary(devices ...Device) (*Library, error) {
	l := &Library{byName: make(map[string]int, len(devices))}
	for _, d := range devices {
		if err := l.Add(d); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Add appends a device to the library.
func (l *Library) Add(d Device) error {
	if !d.Size.Valid() {
		return fmt.Errorf("modlib: device %q has invalid footprint %v", d.Name, d.Size)
	}
	if d.Duration <= 0 {
		return fmt.Errorf("modlib: device %q has non-positive duration %d", d.Name, d.Duration)
	}
	if _, dup := l.byName[d.Name]; dup {
		return fmt.Errorf("modlib: duplicate device %q", d.Name)
	}
	l.byName[d.Name] = len(l.devices)
	l.devices = append(l.devices, d)
	return nil
}

// Get returns the device with the given name.
func (l *Library) Get(name string) (Device, bool) {
	i, ok := l.byName[name]
	if !ok {
		return Device{}, false
	}
	return l.devices[i], true
}

// Devices returns all entries in insertion order (copy).
func (l *Library) Devices() []Device {
	out := make([]Device, len(l.devices))
	copy(out, l.devices)
	return out
}

// ForKind returns the devices implementing the given operation kind,
// in insertion order.
func (l *Library) ForKind(k assay.OpKind) []Device {
	var out []Device
	for _, d := range l.devices {
		if d.Kind == k {
			out = append(out, d)
		}
	}
	return out
}

// FastestForKind returns the device of the given kind with the
// smallest duration, breaking ties by smaller footprint then insertion
// order. ok is false if the library has no such device.
func (l *Library) FastestForKind(k assay.OpKind) (Device, bool) {
	best := Device{}
	found := false
	for _, d := range l.devices {
		if d.Kind != k {
			continue
		}
		if !found || d.Duration < best.Duration ||
			(d.Duration == best.Duration && d.Cells() < best.Cells()) {
			best = d
			found = true
		}
	}
	return best, found
}

// SmallestForKind returns the device of the given kind with the
// fewest cells, breaking ties by shorter duration.
func (l *Library) SmallestForKind(k assay.OpKind) (Device, bool) {
	best := Device{}
	found := false
	for _, d := range l.devices {
		if d.Kind != k {
			continue
		}
		if !found || d.Cells() < best.Cells() ||
			(d.Cells() == best.Cells() && d.Duration < best.Duration) {
			best = d
			found = true
		}
	}
	return best, found
}

// Mixer device names used by the Table 1 catalogue.
const (
	Mixer2x2    = "mixer-2x2"    // 2x2 electrode array, 4x4 cells, 10 s
	Mixer1x4    = "mixer-1x4"    // 4-electrode linear array, 3x6 cells, 5 s
	Mixer2x3    = "mixer-2x3"    // 2x3 electrode array, 4x5 cells, 6 s
	Mixer2x4    = "mixer-2x4"    // 2x4 electrode array, 4x6 cells, 3 s
	StorageUnit = "storage-1x1"  // single-electrode holder, 3x3 cells
	DetectorLED = "detector-led" // LED/photodiode site, 3x3 cells
)

// Table1 returns the module catalogue of the paper's Table 1: the four
// droplet mixer geometries of Paik et al. with their measured mixing
// times, plus a storage unit and a detector so that complete assays
// can be synthesised. Footprints include the segregation ring.
func Table1() *Library {
	l, err := NewLibrary(
		Device{Name: Mixer2x2, Hardware: "2x2 electrode array", Kind: assay.Mix,
			Size: geom.Size{W: 4, H: 4}, Duration: 10},
		Device{Name: Mixer1x4, Hardware: "4-electrode linear array", Kind: assay.Mix,
			Size: geom.Size{W: 3, H: 6}, Duration: 5},
		Device{Name: Mixer2x3, Hardware: "2x3 electrode array", Kind: assay.Mix,
			Size: geom.Size{W: 4, H: 5}, Duration: 6},
		Device{Name: Mixer2x4, Hardware: "2x4 electrode array", Kind: assay.Mix,
			Size: geom.Size{W: 4, H: 6}, Duration: 3},
		Device{Name: StorageUnit, Hardware: "single electrode", Kind: assay.Store,
			Size: geom.Size{W: 3, H: 3}, Duration: 1},
		Device{Name: DetectorLED, Hardware: "LED + photodiode", Kind: assay.Detect,
			Size: geom.Size{W: 3, H: 3}, Duration: 30},
	)
	if err != nil {
		panic(err) // static catalogue; cannot fail
	}
	return l
}
