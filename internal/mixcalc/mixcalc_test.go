package mixcalc

import (
	"math/big"
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/invitro"
	"dmfb/internal/pcr"
)

func rat(a, b int64) *big.Rat { return big.NewRat(a, b) }

func TestPCRMasterMixIsEqualParts(t *testing.T) {
	g, mix := pcr.Graph()
	res, err := Concentrations(g)
	if err != nil {
		t.Fatal(err)
	}
	final := res.PerOp[mix[6]] // M7
	if got := final.Volume(); got.Cmp(rat(8, 1)) != 0 {
		t.Errorf("master mix volume = %s, want 8", got.RatString())
	}
	for _, reagent := range pcr.Reagents {
		if got := final.Fraction(reagent); got.Cmp(rat(1, 8)) != 0 {
			t.Errorf("fraction of %s = %s, want 1/8", reagent, got.RatString())
		}
	}
	if len(res.Outputs) != 1 || !res.Outputs[0].Equal(final) {
		t.Errorf("outputs = %v", res.Outputs)
	}
}

func TestIntermediatePCRStages(t *testing.T) {
	g, mix := pcr.Graph()
	res, err := Concentrations(g)
	if err != nil {
		t.Fatal(err)
	}
	// Level-1 mixes: two reagents at 1/2 each, volume 2.
	m1 := res.PerOp[mix[0]]
	if m1.Volume().Cmp(rat(2, 1)) != 0 {
		t.Errorf("M1 volume = %s", m1.Volume().RatString())
	}
	if m1.Fraction("tris-hcl").Cmp(rat(1, 2)) != 0 || m1.Fraction("kcl").Cmp(rat(1, 2)) != 0 {
		t.Errorf("M1 composition wrong: %v", m1)
	}
	// Level-2: four reagents at 1/4, volume 4.
	m5 := res.PerOp[mix[4]]
	if m5.Volume().Cmp(rat(4, 1)) != 0 || m5.Fraction("primer").Cmp(rat(1, 4)) != 0 {
		t.Errorf("M5 wrong: %v", m5)
	}
}

func TestSerialDilutionHalvesEachLevel(t *testing.T) {
	const depth = 4
	g, err := invitro.DilutionSeries(depth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Concentrations(g)
	if err != nil {
		t.Fatal(err)
	}
	// Every DETk sees the sample at 2^-k.
	for _, op := range g.Ops() {
		if op.Kind != assay.Detect {
			continue
		}
		var lvl int
		if n, _ := fscan(op.Name, &lvl); n != 1 {
			t.Fatalf("cannot parse level from %q", op.Name)
		}
		want := new(big.Rat).SetFrac64(1, 1<<uint(lvl))
		if got := res.PerOp[op.ID].Fraction("sample"); got.Cmp(want) != 0 {
			t.Errorf("%s sample fraction = %s, want %s", op.Name, got.RatString(), want.RatString())
		}
		// Detected droplets are unit volume (a dilute splits evenly).
		if got := res.PerOp[op.ID].Volume(); got.Cmp(rat(1, 1)) != 0 {
			t.Errorf("%s volume = %s, want 1", op.Name, got.RatString())
		}
	}
}

func TestDilutionTreeLeavesUniform(t *testing.T) {
	const depth = 3
	g, err := invitro.DilutionTree(depth)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Concentrations(g)
	if err != nil {
		t.Fatal(err)
	}
	want := new(big.Rat).SetFrac64(1, 1<<uint(depth))
	leaves := 0
	for _, op := range g.Ops() {
		if op.Kind != assay.Detect {
			continue
		}
		leaves++
		if got := res.PerOp[op.ID].Fraction("protein-sample"); got.Cmp(want) != 0 {
			t.Errorf("%s sample fraction = %s, want %s", op.Name, got.RatString(), want.RatString())
		}
	}
	if leaves != 1<<depth {
		t.Errorf("leaves = %d, want %d", leaves, 1<<depth)
	}
	// Mass conservation: the sample unit is fully accounted for across
	// all outputs.
	total := new(big.Rat)
	for _, out := range res.Outputs {
		if q, ok := out["protein-sample"]; ok {
			total.Add(total, q)
		}
	}
	if total.Cmp(rat(1, 1)) != 0 {
		t.Errorf("sample mass across outputs = %s, want 1", total.RatString())
	}
}

func TestSinkDiluteSplits(t *testing.T) {
	g := assay.New("sink-dilute")
	a := g.AddOp("a", assay.Dispense, "x")
	b := g.AddOp("b", assay.Dispense, "y")
	d := g.AddOp("d", assay.Dilute, "")
	g.MustEdge(a, d)
	g.MustEdge(b, d)
	res, err := Concentrations(g)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Outputs) != 2 {
		t.Fatalf("outputs = %d, want 2 droplets from the sink dilute", len(res.Outputs))
	}
	for _, out := range res.Outputs {
		if out.Volume().Cmp(rat(1, 1)) != 0 {
			t.Errorf("split droplet volume = %s", out.Volume().RatString())
		}
		if out.Fraction("x").Cmp(rat(1, 2)) != 0 {
			t.Errorf("split droplet fraction = %v", out)
		}
	}
}

func TestCompositionHelpers(t *testing.T) {
	c := Composition{"x": rat(1, 2), "y": rat(3, 2)}
	if c.Volume().Cmp(rat(2, 1)) != 0 {
		t.Error("Volume wrong")
	}
	if c.Fraction("x").Cmp(rat(1, 4)) != 0 {
		t.Error("Fraction wrong")
	}
	if c.Fraction("absent").Sign() != 0 {
		t.Error("absent fluid fraction should be 0")
	}
	if (Composition{}).Fraction("x").Sign() != 0 {
		t.Error("empty composition fraction should be 0")
	}
	if !c.Equal(c.clone()) {
		t.Error("clone not equal")
	}
	if c.Equal(Composition{"x": rat(1, 2)}) {
		t.Error("Equal ignores missing fluid")
	}
	if c.String() == "" {
		t.Error("String empty")
	}
}

func TestRejectsInvalidGraph(t *testing.T) {
	g := assay.New("bad")
	g.AddOp("m", assay.Mix, "") // no inputs
	if _, err := Concentrations(g); err == nil {
		t.Error("invalid graph accepted")
	}
}

// fscan pulls the integer after "DET" (and before any ".suffix").
func fscan(name string, lvl *int) (int, error) {
	n := 0
	v := 0
	seen := false
	for i := 3; i < len(name); i++ {
		if name[i] < '0' || name[i] > '9' {
			break
		}
		v = v*10 + int(name[i]-'0')
		seen = true
	}
	if seen {
		*lvl = v
		n = 1
	}
	return n, nil
}
