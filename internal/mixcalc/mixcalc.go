// Package mixcalc computes exact fluid compositions over a sequencing
// graph with rational arithmetic: which fraction of each dispensed
// fluid ends up in every intermediate and final droplet. It is the
// analytical companion to the simulator's volume bookkeeping — used to
// verify that a synthesised assay produces the concentrations the
// protocol demands (e.g. every PCR reagent at 1/8 of the master mix, or
// the 2^-k rungs of a dilution ladder) before any placement or
// simulation work is spent on it.
//
// Model: a dispense produces one unit of its fluid; a mix or dilute
// merges its input droplets (volumes add, compositions combine
// volume-weighted); a dilute splits its merged droplet evenly across
// its successors; store/detect/output pass droplets through. All
// arithmetic is big.Rat — no floating-point drift.
package mixcalc

import (
	"fmt"
	"math/big"

	"dmfb/internal/assay"
)

// Composition maps fluid name → volume (in dispense units) present in
// a droplet. The zero value is empty.
type Composition map[string]*big.Rat

// Volume returns the total droplet volume.
func (c Composition) Volume() *big.Rat {
	v := new(big.Rat)
	for _, q := range c {
		v.Add(v, q)
	}
	return v
}

// Fraction returns fluid's share of the droplet volume (0 if absent or
// the droplet is empty).
func (c Composition) Fraction(fluid string) *big.Rat {
	q, ok := c[fluid]
	if !ok {
		return new(big.Rat)
	}
	vol := c.Volume()
	if vol.Sign() == 0 {
		return new(big.Rat)
	}
	return new(big.Rat).Quo(q, vol)
}

// Equal reports whether two compositions are identical.
func (c Composition) Equal(o Composition) bool {
	if len(c) != len(o) {
		return false
	}
	for f, q := range c {
		oq, ok := o[f]
		if !ok || q.Cmp(oq) != 0 {
			return false
		}
	}
	return true
}

// String renders the composition deterministically is not needed for
// the API; fmt prints maps sorted since Go 1.12.
func (c Composition) String() string {
	return fmt.Sprintf("%v (vol %s)", map[string]*big.Rat(c), c.Volume().RatString())
}

func (c Composition) clone() Composition {
	out := make(Composition, len(c))
	for f, q := range c {
		out[f] = new(big.Rat).Set(q)
	}
	return out
}

// scale multiplies every constituent by k.
func (c Composition) scale(k *big.Rat) Composition {
	out := make(Composition, len(c))
	for f, q := range c {
		out[f] = new(big.Rat).Mul(q, k)
	}
	return out
}

// add merges o into c (volumes add).
func (c Composition) add(o Composition) {
	for f, q := range o {
		if cur, ok := c[f]; ok {
			cur.Add(cur, q)
		} else {
			c[f] = new(big.Rat).Set(q)
		}
	}
}

// Result holds the composition of every operation's output droplet(s).
type Result struct {
	// PerOp[id] is the composition of ONE output droplet of op id
	// (after any splitting).
	PerOp []Composition
	// Outputs lists the droplet compositions at the graph's sinks, in
	// sink ID order, one entry per droplet (a sink dilute contributes
	// its split outputs).
	Outputs []Composition
}

// Concentrations computes the exact composition of every droplet in
// the assay. It fails on graphs where a dilute has other than two
// successors... — precisely: a dilute's merged droplet is divided
// evenly among its successors (or reported whole if it is a sink).
func Concentrations(g *assay.Graph) (*Result, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	res := &Result{PerOp: make([]Composition, g.NumOps())}
	for _, v := range order {
		op := g.Op(v)
		merged := Composition{}
		for _, p := range g.Pred(v) {
			merged.add(res.PerOp[p])
		}
		switch op.Kind {
		case assay.Dispense:
			merged = Composition{op.Fluid: big.NewRat(1, 1)}
		case assay.Dilute:
			if n := len(g.Succ(v)); n > 1 {
				merged = merged.scale(big.NewRat(1, int64(n)))
			}
		case assay.Mix, assay.Store, assay.Detect, assay.Output:
			// pass through
		default:
			return nil, fmt.Errorf("mixcalc: unknown op kind %v", op.Kind)
		}
		res.PerOp[v] = merged
	}
	for _, s := range g.Sinks() {
		op := g.Op(s)
		n := 1
		if op.Kind == assay.Dilute {
			// A sink dilute still physically splits into two droplets.
			n = 2
			res.PerOp[s] = res.PerOp[s].scale(big.NewRat(1, 2))
		}
		for i := 0; i < n; i++ {
			res.Outputs = append(res.Outputs, res.PerOp[s].clone())
		}
	}
	return res, nil
}
