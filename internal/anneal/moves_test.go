package anneal

import (
	"math/rand"
	"testing"
)

// intVec is a toy state for equivalence testing: cost is the sum of
// squares of the entries (integer-valued, so incremental deltas are
// float-exact).
type intVec []int

func sumSquares(v intVec) int {
	s := 0
	for _, x := range v {
		s += x * x
	}
	return s
}

type vecMove struct {
	idx, delta int
}

// TestRunMovesMatchesRun runs the same toy problem through the
// clone-based adapter (Run) and a genuinely incremental MoveProblem
// (delta arithmetic, in-place commit/revert) with identical seeds, and
// asserts the two engines produce identical results: same best state,
// same cost, same level and evaluation counts.
func TestRunMovesMatchesRun(t *testing.T) {
	sched := Schedule{T0: 50, Alpha: 0.8, Iters: 300, MaxLevels: 40}
	init := intVec{9, -7, 4, 12, -3}

	proposeDims := func(n int, T float64, rng *rand.Rand) vecMove {
		step := 1 + int(T/10)
		return vecMove{idx: rng.Intn(n), delta: rng.Intn(2*step+1) - step}
	}

	// Clone-based path.
	cloneProb := Problem[intVec]{
		Cost: func(v intVec) float64 { return float64(sumSquares(v)) },
		Neighbor: func(cur intVec, T float64, rng *rand.Rand) intVec {
			m := proposeDims(len(cur), T, rng)
			next := append(intVec(nil), cur...)
			next[m.idx] += m.delta
			return next
		},
	}
	cloneRes := Run(append(intVec(nil), init...), cloneProb, sched, rand.New(rand.NewSource(17)))

	// Incremental path: in-place mutation, exact integer delta.
	cur := append(intVec(nil), init...)
	sum := sumSquares(cur)
	moveProb := MoveProblem[intVec, vecMove]{
		Cost: func() float64 { return float64(sum) },
		Propose: func(T float64, rng *rand.Rand) vecMove {
			return proposeDims(len(cur), T, rng)
		},
		Delta: func(m vecMove) float64 {
			v := cur[m.idx]
			return float64((v+m.delta)*(v+m.delta) - v*v)
		},
		Commit: func(m vecMove) {
			v := cur[m.idx]
			sum += (v+m.delta)*(v+m.delta) - v*v
			cur[m.idx] = v + m.delta
		},
		Revert:   func(vecMove) {}, // Delta staged nothing to undo
		Snapshot: func() intVec { return append(intVec(nil), cur...) },
	}
	moveRes := RunMoves(moveProb, sched, rand.New(rand.NewSource(17)))

	if cloneRes.BestCost != moveRes.BestCost {
		t.Errorf("best cost: clone %v, move %v", cloneRes.BestCost, moveRes.BestCost)
	}
	if cloneRes.Evaluations != moveRes.Evaluations {
		t.Errorf("evaluations: clone %d, move %d", cloneRes.Evaluations, moveRes.Evaluations)
	}
	if len(cloneRes.Levels) != len(moveRes.Levels) {
		t.Errorf("levels: clone %d, move %d", len(cloneRes.Levels), len(moveRes.Levels))
	}
	for i := range cloneRes.Best {
		if cloneRes.Best[i] != moveRes.Best[i] {
			t.Fatalf("best state diverged at %d: clone %v, move %v", i, cloneRes.Best, moveRes.Best)
		}
	}
	for i := range cloneRes.Levels {
		cl, ml := cloneRes.Levels[i], moveRes.Levels[i]
		if cl.Accepted != ml.Accepted || cl.Improved != ml.Improved || cl.Proposed != ml.Proposed {
			t.Fatalf("level %d bookkeeping diverged: clone %+v, move %+v", i, cl, ml)
		}
	}
}

func TestRunMovesPanicsOnBadInput(t *testing.T) {
	ok := MoveProblem[int, int]{
		Cost:     func() float64 { return 0 },
		Propose:  func(float64, *rand.Rand) int { return 0 },
		Delta:    func(int) float64 { return 0 },
		Commit:   func(int) {},
		Revert:   func(int) {},
		Snapshot: func() int { return 0 },
	}
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad schedule", func() {
		RunMoves(ok, Schedule{T0: -1, Alpha: 0.5, Iters: 1}, rand.New(rand.NewSource(1)))
	})
	mustPanic("nil rng", func() {
		RunMoves(ok, Schedule{T0: 10, Alpha: 0.5, Iters: 1}, nil)
	})
}
