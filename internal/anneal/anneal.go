// Package anneal is a small, generic simulated-annealing engine
// implementing the procedure of the paper's Figure 3: geometric
// cooling (T' = α·T), a fixed number of inner-loop iterations per
// temperature, Metropolis acceptance (accept when ΔC < 0 or
// r < exp(−ΔC/T)), and a pluggable stopping criterion so callers can
// realise the paper's controlling-window rule.
package anneal

import (
	"fmt"
	"math"
	"math/rand"
)

// Schedule holds the annealing parameters. The defaults mirror the
// paper's Section 4(d): T0 = 10000, α = 0.9, and an inner loop of
// Na = 400 iterations per module.
type Schedule struct {
	T0    float64 // initial temperature
	Alpha float64 // cooling factor, 0 < Alpha < 1
	Iters int     // inner-loop iterations per temperature level
	// MaxLevels bounds the number of temperature levels as a safety
	// net against a stop criterion that never fires. Zero means 1000.
	MaxLevels int
}

// Default returns the paper's annealing schedule for nm modules
// (N = Na × Nm with Na = 400).
func Default(nm int) Schedule {
	return Schedule{T0: 10000, Alpha: 0.9, Iters: 400 * nm}
}

// Validate reports configuration errors.
func (s Schedule) Validate() error {
	if s.T0 <= 0 {
		return fmt.Errorf("anneal: T0 %v must be positive", s.T0)
	}
	if s.Alpha <= 0 || s.Alpha >= 1 {
		return fmt.Errorf("anneal: alpha %v must be in (0,1)", s.Alpha)
	}
	if s.Iters <= 0 {
		return fmt.Errorf("anneal: iters %d must be positive", s.Iters)
	}
	return nil
}

// Level summarises one temperature level for stop decisions and
// statistics.
type Level struct {
	Index    int
	T        float64
	Proposed int
	Accepted int
	Improved int     // accepted moves with ΔC < 0
	BestCost float64 // best cost seen so far (global)
	CurCost  float64 // cost of current state at level end
}

// AcceptRate returns the fraction of proposals accepted at this level.
func (l Level) AcceptRate() float64 {
	if l.Proposed == 0 {
		return 0
	}
	return float64(l.Accepted) / float64(l.Proposed)
}

// Result reports the annealing outcome.
type Result[S any] struct {
	Best     S
	BestCost float64
	Levels   []Level
	// Evaluations is the total number of cost evaluations performed.
	Evaluations int
}

// Problem bundles the three callbacks that define an annealing run.
type Problem[S any] struct {
	// Cost evaluates a state. Lower is better.
	Cost func(S) float64
	// Neighbor proposes a new state from cur at temperature T. It must
	// not mutate cur.
	Neighbor func(cur S, T float64, rng *rand.Rand) S
	// Stop, if non-nil, is consulted after each temperature level;
	// returning true ends the run. This is where the paper's
	// "controlling window reached its minimum span" criterion plugs in.
	Stop func(l Level) bool
}

// Run executes simulated annealing from the initial state and returns
// the best state encountered. It panics on an invalid schedule (a
// static configuration bug) and requires a non-nil rng for
// reproducibility.
func Run[S any](initial S, p Problem[S], sched Schedule, rng *rand.Rand) Result[S] {
	if err := sched.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("anneal: nil rng")
	}
	maxLevels := sched.MaxLevels
	if maxLevels == 0 {
		maxLevels = 1000
	}

	cur := initial
	curCost := p.Cost(cur)
	best := cur
	bestCost := curCost
	res := Result[S]{Evaluations: 1}

	T := sched.T0
	for level := 0; level < maxLevels; level++ {
		l := Level{Index: level, T: T}
		for i := 0; i < sched.Iters; i++ {
			next := p.Neighbor(cur, T, rng)
			nextCost := p.Cost(next)
			res.Evaluations++
			l.Proposed++
			dC := nextCost - curCost
			if dC < 0 || rng.Float64() < math.Exp(-dC/T) {
				cur = next
				curCost = nextCost
				l.Accepted++
				if dC < 0 {
					l.Improved++
				}
				if curCost < bestCost {
					best = cur
					bestCost = curCost
				}
			}
		}
		l.BestCost = bestCost
		l.CurCost = curCost
		res.Levels = append(res.Levels, l)
		if p.Stop != nil && p.Stop(l) {
			break
		}
		T *= sched.Alpha
	}
	res.Best = best
	res.BestCost = bestCost
	return res
}

// StopBelow returns a stop criterion that fires once the temperature
// drops below tMin.
func StopBelow(tMin float64) func(Level) bool {
	return func(l Level) bool { return l.T < tMin }
}

// StopFrozen returns a stop criterion that fires after `patience`
// consecutive levels without any accepted move — the configuration is
// frozen.
func StopFrozen(patience int) func(Level) bool {
	quiet := 0
	return func(l Level) bool {
		if l.Accepted == 0 {
			quiet++
		} else {
			quiet = 0
		}
		return quiet >= patience
	}
}

// StopAny combines criteria; it fires when any of them fires. Each
// criterion is always evaluated, so stateful criteria keep counting.
func StopAny(stops ...func(Level) bool) func(Level) bool {
	return func(l Level) bool {
		fire := false
		for _, s := range stops {
			if s(l) {
				fire = true
			}
		}
		return fire
	}
}
