// Package anneal is a small, generic simulated-annealing engine
// implementing the procedure of the paper's Figure 3: geometric
// cooling (T' = α·T), a fixed number of inner-loop iterations per
// temperature, Metropolis acceptance (accept when ΔC < 0 or
// r < exp(−ΔC/T)), and a pluggable stopping criterion so callers can
// realise the paper's controlling-window rule.
package anneal

import (
	"fmt"
	"math/rand"
	"time"
)

// Schedule holds the annealing parameters. The defaults mirror the
// paper's Section 4(d): T0 = 10000, α = 0.9, and an inner loop of
// Na = 400 iterations per module.
type Schedule struct {
	T0    float64 // initial temperature
	Alpha float64 // cooling factor, 0 < Alpha < 1
	Iters int     // inner-loop iterations per temperature level
	// MaxLevels bounds the number of temperature levels as a safety
	// net against a stop criterion that never fires. Zero means 1000.
	MaxLevels int
}

// Default returns the paper's annealing schedule for nm modules
// (N = Na × Nm with Na = 400).
func Default(nm int) Schedule {
	return Schedule{T0: 10000, Alpha: 0.9, Iters: 400 * nm}
}

// Validate reports configuration errors.
func (s Schedule) Validate() error {
	if s.T0 <= 0 {
		return fmt.Errorf("anneal: T0 %v must be positive", s.T0)
	}
	if s.Alpha <= 0 || s.Alpha >= 1 {
		return fmt.Errorf("anneal: alpha %v must be in (0,1)", s.Alpha)
	}
	if s.Iters <= 0 {
		return fmt.Errorf("anneal: iters %d must be positive", s.Iters)
	}
	return nil
}

// Level summarises one temperature level for stop decisions and
// statistics.
type Level struct {
	Index    int
	T        float64
	Proposed int
	Accepted int
	Improved int     // accepted moves with ΔC < 0
	BestCost float64 // best cost seen so far (global)
	CurCost  float64 // cost of current state at level end
	// Duration is the wall-clock time Run spent on this level, so
	// convergence-versus-time plots (paper Fig. 5/6 style) need no
	// external timing. Zero while a level is still in progress (as
	// seen by ProgressNewBest observer notifications).
	Duration time.Duration
}

// AcceptRate returns the fraction of proposals accepted at this level.
func (l Level) AcceptRate() float64 {
	if l.Proposed == 0 {
		return 0
	}
	return float64(l.Accepted) / float64(l.Proposed)
}

// Result reports the annealing outcome.
type Result[S any] struct {
	Best     S
	BestCost float64
	Levels   []Level
	// Evaluations is the total number of cost evaluations performed.
	Evaluations int
}

// ProgressKind distinguishes Observer notifications.
type ProgressKind int

const (
	// ProgressLevel reports a completed temperature level; Level is
	// final, including its Duration.
	ProgressLevel ProgressKind = iota
	// ProgressNewBest reports a strict improvement of the global best
	// cost, observed from inside the inner loop; Level is a snapshot
	// of the current level so far (Duration still zero).
	ProgressNewBest
)

// Progress is one Observer notification.
type Progress struct {
	Kind        ProgressKind
	Level       Level
	BestCost    float64
	Evaluations int // cost evaluations so far, including the initial state
}

// Observer receives progress notifications during Run: one
// ProgressLevel per temperature level and one ProgressNewBest per
// strict best-cost improvement. It runs synchronously on the
// annealing goroutine, so implementations must be fast; a nil
// Observer costs a single nil check per event site and allocates
// nothing.
type Observer func(Progress)

// Problem bundles the callbacks that define an annealing run.
type Problem[S any] struct {
	// Cost evaluates a state. Lower is better.
	Cost func(S) float64
	// Neighbor proposes a new state from cur at temperature T. It must
	// not mutate cur.
	Neighbor func(cur S, T float64, rng *rand.Rand) S
	// Stop, if non-nil, is consulted after each temperature level;
	// returning true ends the run. This is where the paper's
	// "controlling window reached its minimum span" criterion plugs in.
	Stop func(l Level) bool
	// Observer, if non-nil, receives progress notifications (per
	// temperature level and on best-cost improvement) — the hook the
	// telemetry layer attaches to.
	Observer Observer
}

// Run executes simulated annealing from the initial state and returns
// the best state encountered. It panics on an invalid schedule (a
// static configuration bug) and requires a non-nil rng for
// reproducibility.
//
// Run is a thin adapter over the move-based engine (RunMoves): a
// "move" is simply the cloned candidate state, Delta evaluates its
// full cost, Commit adopts it and Revert drops it. Clone-based
// problems therefore share one annealing loop with the incremental
// placers and inherit identical scheduling, acceptance, Observer and
// Stop behaviour.
func Run[S any](initial S, p Problem[S], sched Schedule, rng *rand.Rand) Result[S] {
	cur := initial
	var curCost, nextCost float64
	haveCur := false
	mp := MoveProblem[S, S]{
		Cost: func() float64 {
			if !haveCur {
				curCost = p.Cost(cur)
				haveCur = true
			}
			return curCost
		},
		Propose: func(T float64, rng *rand.Rand) S { return p.Neighbor(cur, T, rng) },
		Delta: func(next S) float64 {
			nextCost = p.Cost(next)
			return nextCost - curCost
		},
		Commit: func(next S) {
			cur = next
			curCost = nextCost
		},
		Revert:   func(S) {},
		Snapshot: func() S { return cur },
		Stop:     p.Stop,
		Observer: p.Observer,
	}
	return RunMoves(mp, sched, rng)
}

// StopBelow returns a stop criterion that fires once the temperature
// drops below tMin.
func StopBelow(tMin float64) func(Level) bool {
	return func(l Level) bool { return l.T < tMin }
}

// StopFrozen returns a stop criterion that fires after `patience`
// consecutive levels without any accepted move — the configuration is
// frozen. The returned closure is stateful: it assumes it is called
// exactly once per level, in order, and must not be shared between
// runs (build a fresh one per Run).
func StopFrozen(patience int) func(Level) bool {
	quiet := 0
	return func(l Level) bool {
		if l.Accepted == 0 {
			quiet++
		} else {
			quiet = 0
		}
		return quiet >= patience
	}
}

// StopAny combines criteria; it fires when any of them fires.
//
// Stateful criteria (StopFrozen, the placers' controlling-window
// rule) count calls: they assume exactly one evaluation per
// temperature level. StopAny therefore deliberately does NOT
// short-circuit — every criterion is evaluated on every call, even
// after an earlier one has fired, so each criterion sees every level
// exactly once and keeps counting correctly. Like the criteria it
// wraps, the combined closure is single-use: build a fresh StopAny
// (with fresh constituent criteria) for each Run.
func StopAny(stops ...func(Level) bool) func(Level) bool {
	return func(l Level) bool {
		fire := false
		for _, s := range stops {
			if s(l) {
				fire = true
			}
		}
		return fire
	}
}
