package anneal

import (
	"math/rand"
	"testing"
	"time"
)

// quadratic is a minimal deterministic problem for observer tests.
func quadratic() Problem[int] {
	return Problem[int]{
		Cost: func(x int) float64 { return float64(x * x) },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int {
			return cur + rng.Intn(11) - 5
		},
	}
}

func TestObserverLevelNotifications(t *testing.T) {
	p := quadratic()
	var levels []Progress
	var bests []Progress
	p.Observer = func(pr Progress) {
		switch pr.Kind {
		case ProgressLevel:
			levels = append(levels, pr)
		case ProgressNewBest:
			bests = append(bests, pr)
		}
	}
	res := Run(80, p, Schedule{T0: 50, Alpha: 0.8, Iters: 30, MaxLevels: 10},
		rand.New(rand.NewSource(2)))

	if len(levels) != len(res.Levels) {
		t.Fatalf("ProgressLevel notifications = %d, want one per level (%d)",
			len(levels), len(res.Levels))
	}
	for i, pr := range levels {
		if pr.Level.Index != i {
			t.Errorf("level %d reported index %d", i, pr.Level.Index)
		}
		if pr.Level != res.Levels[i] {
			t.Errorf("level %d notification %+v != result %+v", i, pr.Level, res.Levels[i])
		}
	}
	// Starting at x=80 with a downhill-capable neighbor, the best cost
	// must strictly improve at least once.
	if len(bests) == 0 {
		t.Fatal("no ProgressNewBest notifications")
	}
	prev := float64(80 * 80)
	for i, pr := range bests {
		if pr.BestCost >= prev {
			t.Errorf("best %d: cost %v did not improve on %v", i, pr.BestCost, prev)
		}
		prev = pr.BestCost
		if pr.Level.Duration != 0 {
			t.Errorf("best %d: in-progress level snapshot has Duration %v, want 0",
				i, pr.Level.Duration)
		}
	}
	if bests[len(bests)-1].BestCost != res.BestCost {
		t.Errorf("last ProgressNewBest cost %v != final best %v",
			bests[len(bests)-1].BestCost, res.BestCost)
	}
}

func TestLevelDurationPopulated(t *testing.T) {
	p := Problem[int]{
		Cost: func(x int) float64 { return float64(x) },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int {
			time.Sleep(10 * time.Microsecond)
			return cur
		},
	}
	res := Run(0, p, Schedule{T0: 10, Alpha: 0.5, Iters: 5, MaxLevels: 3},
		rand.New(rand.NewSource(1)))
	for i, l := range res.Levels {
		if l.Duration <= 0 {
			t.Errorf("level %d Duration = %v, want > 0", i, l.Duration)
		}
	}
}

// StopAny must evaluate every criterion on every level — even after
// one has fired — so stateful criteria like StopFrozen keep counting
// correctly when combined.
func TestStopAnyKeepsStatefulCriteriaCounting(t *testing.T) {
	frozen := StopFrozen(2)
	fired := func(l Level) bool { return true }
	stop := StopAny(fired, frozen)

	// Both calls fire (because of `fired`), but frozen must still see
	// both quiet levels and be ready to fire on its own.
	stop(Level{Accepted: 0})
	stop(Level{Accepted: 0})
	if !frozen(Level{Accepted: 0}) {
		t.Error("StopFrozen lost count inside StopAny: want quiet streak 3 >= 2")
	}
}

func TestStopFrozenSingleUse(t *testing.T) {
	// Two Runs sharing one StopFrozen would inherit the quiet streak;
	// fresh criteria must start from zero.
	s1 := StopFrozen(2)
	s1(Level{Accepted: 0})
	s1(Level{Accepted: 0})
	if !s1(Level{Accepted: 0}) {
		t.Fatal("streak of 3 quiet levels did not fire StopFrozen(2)")
	}
	s2 := StopFrozen(2)
	if s2(Level{Accepted: 0}) {
		t.Error("fresh StopFrozen fired after one quiet level")
	}
}

// allocsPerRun measures total allocations of one Run with the given
// inner-loop iteration count and no observer.
func allocsPerRun(iters int) float64 {
	p := Problem[int]{
		Cost:     func(x int) float64 { return float64(x * x) },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int { return cur - 1 },
	}
	rng := rand.New(rand.NewSource(1))
	return testing.AllocsPerRun(10, func() {
		Run(1000000, p, Schedule{T0: 1, Alpha: 0.5, Iters: iters, MaxLevels: 1}, rng)
	})
}

// A disabled (nil) Observer must add no per-iteration allocations to
// the inner loop: doubling the iteration count must not change the
// allocation count beyond noise.
func TestNilObserverZeroAllocInnerLoop(t *testing.T) {
	if d := allocsPerRun(2000) - allocsPerRun(1000); d > 1 {
		t.Errorf("inner loop allocates: +%v allocs for +1000 iterations", d)
	}
}

func BenchmarkRunNilObserver(b *testing.B) {
	p := Problem[int]{
		Cost:     func(x int) float64 { return float64(x * x) },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int { return cur - 1 },
	}
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Run(1000000, p, Schedule{T0: 1, Alpha: 0.5, Iters: 1000, MaxLevels: 1}, rng)
	}
}
