package anneal

import (
	"math"
	"math/rand"
	"testing"
)

func TestScheduleValidate(t *testing.T) {
	good := Schedule{T0: 100, Alpha: 0.9, Iters: 10}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Schedule{
		{T0: 0, Alpha: 0.9, Iters: 10},
		{T0: 100, Alpha: 1.0, Iters: 10},
		{T0: 100, Alpha: 0, Iters: 10},
		{T0: 100, Alpha: 0.9, Iters: 0},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad schedule %d accepted", i)
		}
	}
}

func TestDefaultMatchesPaper(t *testing.T) {
	s := Default(7) // the PCR case study has 7 modules
	if s.T0 != 10000 || s.Alpha != 0.9 || s.Iters != 2800 {
		t.Errorf("Default(7) = %+v, want T0=10000 alpha=0.9 iters=2800", s)
	}
}

// A 1-D quadratic with many local perturbations: SA must find the
// global minimum at x = 17 despite local minima from the sin term.
func TestRunFindsGlobalMinimum(t *testing.T) {
	cost := func(x int) float64 {
		d := float64(x - 17)
		return d*d + 10*math.Abs(math.Sin(float64(x)))
	}
	p := Problem[int]{
		Cost: cost,
		Neighbor: func(cur int, T float64, rng *rand.Rand) int {
			step := 1 + int(T/10)
			next := cur + rng.Intn(2*step+1) - step
			if next < -100 {
				next = -100
			}
			if next > 100 {
				next = 100
			}
			return next
		},
		Stop: StopBelow(0.01),
	}
	res := Run(-90, p, Schedule{T0: 100, Alpha: 0.9, Iters: 50}, rand.New(rand.NewSource(1)))
	wantX, wantCost := -100, cost(-100)
	for x := -100; x <= 100; x++ {
		if c := cost(x); c < wantCost {
			wantX, wantCost = x, c
		}
	}
	if res.Best != wantX {
		t.Errorf("Best = %d (cost %v), want %d (cost %v)", res.Best, res.BestCost, wantX, wantCost)
	}
	if res.BestCost != wantCost {
		t.Errorf("BestCost = %v, want %v", res.BestCost, wantCost)
	}
	if res.Evaluations < 100 {
		t.Errorf("suspiciously few evaluations: %d", res.Evaluations)
	}
}

func TestRunDeterministic(t *testing.T) {
	p := Problem[int]{
		Cost: func(x int) float64 { return float64(x * x) },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int {
			return cur + rng.Intn(11) - 5
		},
		Stop: StopBelow(0.5),
	}
	run := func(seed int64) Result[int] {
		return Run(50, p, Schedule{T0: 50, Alpha: 0.8, Iters: 20}, rand.New(rand.NewSource(seed)))
	}
	a, b := run(7), run(7)
	if a.Best != b.Best || a.BestCost != b.BestCost || a.Evaluations != b.Evaluations {
		t.Error("same seed gave different results")
	}
}

func TestRunTracksBestNotCurrent(t *testing.T) {
	// Neighbor always jumps randomly over a wide range; the final
	// current state is unlikely to be the best, but Best must be.
	p := Problem[int]{
		Cost: func(x int) float64 { return float64(x * x) },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int {
			return rng.Intn(201) - 100
		},
	}
	res := Run(100, p, Schedule{T0: 1e9, Alpha: 0.9, Iters: 100, MaxLevels: 5},
		rand.New(rand.NewSource(3)))
	// At T=1e9 everything is accepted; best must still be the minimum
	// cost over all visited states.
	for _, l := range res.Levels {
		if l.BestCost > res.BestCost {
			t.Error("per-level best not monotone")
		}
	}
	if res.BestCost != float64(res.Best*res.Best) {
		t.Error("BestCost inconsistent with Best")
	}
}

func TestHighTemperatureAcceptsEverything(t *testing.T) {
	p := Problem[int]{
		Cost:     func(x int) float64 { return float64(x) },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int { return cur + 1 }, // always worse
	}
	res := Run(0, p, Schedule{T0: 1e12, Alpha: 0.9, Iters: 200, MaxLevels: 1},
		rand.New(rand.NewSource(5)))
	if res.Levels[0].AcceptRate() < 0.99 {
		t.Errorf("accept rate at huge T = %v, want ~1", res.Levels[0].AcceptRate())
	}
}

func TestLowTemperatureRejectsUphill(t *testing.T) {
	p := Problem[int]{
		Cost:     func(x int) float64 { return float64(x) },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int { return cur + 100 },
	}
	res := Run(0, p, Schedule{T0: 1e-6, Alpha: 0.5, Iters: 200, MaxLevels: 1},
		rand.New(rand.NewSource(5)))
	if res.Levels[0].Accepted != 0 {
		t.Errorf("uphill moves accepted at T~0: %d", res.Levels[0].Accepted)
	}
	if res.Best != 0 {
		t.Errorf("Best = %d", res.Best)
	}
}

func TestStopFrozen(t *testing.T) {
	stop := StopFrozen(3)
	mk := func(acc int) Level { return Level{Accepted: acc} }
	seq := []struct {
		acc  int
		want bool
	}{{5, false}, {0, false}, {0, false}, {1, false}, {0, false}, {0, false}, {0, true}}
	for i, s := range seq {
		if got := stop(mk(s.acc)); got != s.want {
			t.Fatalf("step %d: stop = %v, want %v", i, got, s.want)
		}
	}
}

func TestStopAny(t *testing.T) {
	calls := 0
	counting := func(l Level) bool { calls++; return false }
	stop := StopAny(counting, StopBelow(10))
	if stop(Level{T: 100}) {
		t.Error("fired early")
	}
	if !stop(Level{T: 5}) {
		t.Error("did not fire")
	}
	if calls != 2 {
		t.Errorf("stateful criterion called %d times, want 2", calls)
	}
}

func TestMaxLevelsSafetyNet(t *testing.T) {
	p := Problem[int]{
		Cost:     func(x int) float64 { return 0 },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int { return cur },
		Stop:     func(Level) bool { return false }, // never stops voluntarily
	}
	res := Run(0, p, Schedule{T0: 10, Alpha: 0.99, Iters: 1, MaxLevels: 7},
		rand.New(rand.NewSource(1)))
	if len(res.Levels) != 7 {
		t.Errorf("levels = %d, want 7", len(res.Levels))
	}
}

func TestRunPanicsOnBadInput(t *testing.T) {
	p := Problem[int]{
		Cost:     func(x int) float64 { return 0 },
		Neighbor: func(cur int, T float64, rng *rand.Rand) int { return cur },
	}
	assertPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	assertPanic("bad schedule", func() {
		Run(0, p, Schedule{}, rand.New(rand.NewSource(1)))
	})
	assertPanic("nil rng", func() {
		Run(0, p, Schedule{T0: 1, Alpha: 0.5, Iters: 1}, nil)
	})
}
