package anneal

import (
	"math"
	"math/rand"
	"time"
)

// MoveProblem is the incremental counterpart of Problem: instead of
// cloning the whole state and re-deriving its cost on every proposal,
// the annealer asks the problem for a small move value, the exact cost
// change that move would cause, and an in-place commit or revert.
//
// The protocol per inner-loop iteration is strictly sequential:
//
//	m := Propose(T, rng)   // generate a move; no observable mutation
//	dC := Delta(m)         // stage m and return its exact cost change
//	Commit(m) or Revert(m) // exactly one of the two, immediately
//
// Delta may mutate internal caches speculatively (that is the whole
// point — computing a fault-tolerance delta requires applying the
// move to the incremental structures), but the pair Delta+Revert must
// restore the state exactly, and Delta+Commit must leave it exactly as
// if the move had been applied from scratch. Cost must return the
// exact cost of the current committed state in O(1); after a Commit it
// must equal the pre-move cost plus the value Delta returned, computed
// from the problem's own books rather than by floating-point
// accumulation, so that long runs cannot drift.
//
// S is the snapshot type used for best-state tracking; M is the move
// value, which should be small (it is passed by value).
type MoveProblem[S, M any] struct {
	// Cost returns the exact cost of the current committed state.
	// Called once before the first proposal and once after every
	// Commit; implementations should cache it.
	Cost func() float64
	// Propose generates a move at temperature T. It must not change
	// the observable state.
	Propose func(T float64, rng *rand.Rand) M
	// Delta stages m and returns the exact cost change Commit(m)
	// would make permanent.
	Delta func(m M) float64
	// Commit finalises the staged move.
	Commit func(m M)
	// Revert undoes the staged move exactly.
	Revert func(m M)
	// Snapshot captures the current state for best-state tracking.
	// Called on every strict best-cost improvement; it must return a
	// copy that later moves cannot mutate.
	Snapshot func() S
	// Stop, if non-nil, is consulted after each temperature level;
	// returning true ends the run (same semantics as Problem.Stop).
	Stop func(l Level) bool
	// Observer, if non-nil, receives progress notifications (same
	// semantics as Problem.Observer).
	Observer Observer
}

// RunMoves executes simulated annealing over a move-based problem and
// returns the best snapshot encountered. Scheduling, Metropolis
// acceptance, Level accounting, Observer notifications and Stop
// semantics are identical to Run — Run is in fact a thin adapter over
// this engine. It panics on an invalid schedule and requires a
// non-nil rng for reproducibility.
func RunMoves[S, M any](p MoveProblem[S, M], sched Schedule, rng *rand.Rand) Result[S] {
	if err := sched.Validate(); err != nil {
		panic(err)
	}
	if rng == nil {
		panic("anneal: nil rng")
	}
	maxLevels := sched.MaxLevels
	if maxLevels == 0 {
		maxLevels = 1000
	}

	curCost := p.Cost()
	best := p.Snapshot()
	bestCost := curCost
	res := Result[S]{Evaluations: 1}

	T := sched.T0
	for level := 0; level < maxLevels; level++ {
		l := Level{Index: level, T: T}
		levelStart := time.Now()
		for i := 0; i < sched.Iters; i++ {
			m := p.Propose(T, rng)
			dC := p.Delta(m)
			res.Evaluations++
			l.Proposed++
			if dC < 0 || rng.Float64() < math.Exp(-dC/T) {
				p.Commit(m)
				curCost = p.Cost()
				l.Accepted++
				if dC < 0 {
					l.Improved++
				}
				if curCost < bestCost {
					best = p.Snapshot()
					bestCost = curCost
					if p.Observer != nil {
						p.Observer(Progress{Kind: ProgressNewBest, Level: l,
							BestCost: bestCost, Evaluations: res.Evaluations})
					}
				}
			} else {
				p.Revert(m)
			}
		}
		l.BestCost = bestCost
		l.CurCost = curCost
		l.Duration = time.Since(levelStart)
		res.Levels = append(res.Levels, l)
		if p.Observer != nil {
			p.Observer(Progress{Kind: ProgressLevel, Level: l,
				BestCost: bestCost, Evaluations: res.Evaluations})
		}
		if p.Stop != nil && p.Stop(l) {
			break
		}
		T *= sched.Alpha
	}
	res.Best = best
	res.BestCost = bestCost
	return res
}
