// Package render draws placements, schedules and coverage maps as
// ASCII pictures (for terminals and golden tests) and standalone SVG
// documents (for reports), reproducing the visual content of the
// paper's Figures 6, 7 and 8.
package render

import (
	"fmt"
	"sort"
	"strings"

	"dmfb/internal/fti"
	"dmfb/internal/place"
	"dmfb/internal/schedule"
)

// moduleGlyph returns the single-character label for module i: digits
// then letters, '?' beyond 61 modules.
func moduleGlyph(i int) byte {
	const glyphs = "1234567890ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
	if i < 0 || i >= len(glyphs) {
		return '?'
	}
	return glyphs[i]
}

// PlacementASCII draws the placement on its bounding array, top row
// first. Cells used by several (time-disjoint) modules show the
// module that starts first; free cells are '.'.
func PlacementASCII(p *place.Placement) string {
	bb := p.BoundingBox()
	if bb.Empty() {
		return "(empty placement)"
	}
	rows := make([][]byte, bb.H)
	for y := range rows {
		rows[y] = []byte(strings.Repeat(".", bb.W))
	}
	order := make([]int, len(p.Modules))
	for i := range order {
		order[i] = i
	}
	// Later-starting modules drawn first so the earliest-starting one
	// ends up visible on shared cells.
	sort.Slice(order, func(a, b int) bool {
		return p.Modules[order[a]].Span.Start > p.Modules[order[b]].Span.Start
	})
	for _, i := range order {
		r := p.Rect(i)
		for _, pt := range r.Points() {
			rows[pt.Y-bb.Y][pt.X-bb.X] = moduleGlyph(i)
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "array %dx%d = %d cells\n", bb.W, bb.H, bb.Cells())
	for y := bb.H - 1; y >= 0; y-- {
		b.Write(rows[y])
		b.WriteByte('\n')
	}
	for i, m := range p.Modules {
		fmt.Fprintf(&b, "  %c = %-4s %v %s\n", moduleGlyph(i), m.Name, p.Rect(i), m.Span)
	}
	return b.String()
}

// CoverageASCII draws the C-coverage map of an FTI result: '+' for
// C-covered cells, 'x' for uncovered ones, top row first.
func CoverageASCII(r fti.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", r.String())
	for y := r.Array.H - 1; y >= 0; y-- {
		for x := 0; x < r.Array.W; x++ {
			if r.CoveredAt(x, y) {
				b.WriteByte('+')
			} else {
				b.WriteByte('x')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ScheduleASCII draws a Gantt chart of the bound operations, one row
// per module, one column per second.
func ScheduleASCII(s *schedule.Schedule) string {
	items := s.BoundItems()
	var b strings.Builder
	fmt.Fprintf(&b, "schedule %q, makespan %ds\n", s.Graph.Name, s.Makespan)
	fmt.Fprintf(&b, "%-8s|", "")
	for t := 0; t < s.Makespan; t++ {
		b.WriteByte("0123456789"[t%10])
	}
	b.WriteString("|\n")
	for i, it := range items {
		fmt.Fprintf(&b, "%-8s|", it.Op.Name)
		for t := 0; t < s.Makespan; t++ {
			if it.Span.Contains(t) {
				b.WriteByte(moduleGlyph(i))
			} else {
				b.WriteByte(' ')
			}
		}
		b.WriteString("|\n")
	}
	return b.String()
}

// svgPalette cycles distinguishable fills for modules.
var svgPalette = []string{
	"#4e79a7", "#f28e2b", "#e15759", "#76b7b2", "#59a14f",
	"#edc948", "#b07aa1", "#ff9da7", "#9c755f", "#bab0ac",
}

// PlacementSVG renders the placement as a standalone SVG document with
// one translucent rectangle per module over the array grid, in the
// style of the paper's Figure 7/8 drawings.
func PlacementSVG(p *place.Placement, cellPx int) string {
	if cellPx <= 0 {
		cellPx = 24
	}
	bb := p.BoundingBox()
	wPx, hPx := bb.W*cellPx, bb.H*cellPx
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		wPx+1, hPx+1, wPx+1, hPx+1)
	b.WriteString("\n")
	// Grid.
	for x := 0; x <= bb.W; x++ {
		fmt.Fprintf(&b, `<line x1="%d" y1="0" x2="%d" y2="%d" stroke="#ccc" stroke-width="1"/>`,
			x*cellPx, x*cellPx, hPx)
		b.WriteString("\n")
	}
	for y := 0; y <= bb.H; y++ {
		fmt.Fprintf(&b, `<line x1="0" y1="%d" x2="%d" y2="%d" stroke="#ccc" stroke-width="1"/>`,
			y*cellPx, wPx, y*cellPx)
		b.WriteString("\n")
	}
	// Modules (SVG y grows downward; flip).
	for i := range p.Modules {
		r := p.Rect(i)
		x := (r.X - bb.X) * cellPx
		y := (bb.MaxY() - r.MaxY()) * cellPx
		fill := svgPalette[i%len(svgPalette)]
		fmt.Fprintf(&b,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.55" stroke="#333"/>`,
			x, y, r.W*cellPx, r.H*cellPx, fill)
		b.WriteString("\n")
		fmt.Fprintf(&b,
			`<text x="%d" y="%d" font-family="monospace" font-size="%d" text-anchor="middle">%s %s</text>`,
			x+r.W*cellPx/2, y+r.H*cellPx/2+cellPx/6, cellPx/2,
			p.Modules[i].Name, p.Modules[i].Span)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// GanttSVG renders the bound operations of a schedule as a standalone
// SVG Gantt chart (one bar per module over a time axis in seconds) —
// the visual form of the paper's Figure 6.
func GanttSVG(s *schedule.Schedule, secPx int) string {
	if secPx <= 0 {
		secPx = 24
	}
	items := s.BoundItems()
	const rowH, labelW, pad = 28, 64, 4
	wPx := labelW + s.Makespan*secPx + 1
	hPx := (len(items)+1)*rowH + 1
	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%d" height="%d" viewBox="0 0 %d %d">`,
		wPx, hPx, wPx, hPx)
	b.WriteString("\n")
	// Time grid and axis labels along the bottom.
	for t := 0; t <= s.Makespan; t++ {
		x := labelW + t*secPx
		fmt.Fprintf(&b, `<line x1="%d" y1="0" x2="%d" y2="%d" stroke="#eee"/>`, x, x, hPx-rowH)
		b.WriteString("\n")
		if t%5 == 0 {
			fmt.Fprintf(&b,
				`<text x="%d" y="%d" font-family="monospace" font-size="11" text-anchor="middle">%ds</text>`,
				x, hPx-rowH+14, t)
			b.WriteString("\n")
		}
	}
	for i, it := range items {
		y := i * rowH
		fmt.Fprintf(&b,
			`<text x="%d" y="%d" font-family="monospace" font-size="12">%s</text>`,
			pad, y+rowH/2+4, it.Op.Name)
		b.WriteString("\n")
		fill := svgPalette[i%len(svgPalette)]
		x := labelW + it.Span.Start*secPx
		w := it.Span.Len() * secPx
		fmt.Fprintf(&b,
			`<rect x="%d" y="%d" width="%d" height="%d" fill="%s" fill-opacity="0.7" stroke="#333"/>`,
			x, y+pad, w, rowH-2*pad, fill)
		b.WriteString("\n")
		fmt.Fprintf(&b,
			`<text x="%d" y="%d" font-family="monospace" font-size="10" text-anchor="middle">%s %v</text>`,
			x+w/2, y+rowH/2+4, it.Device.Name, it.Device.Size)
		b.WriteString("\n")
	}
	b.WriteString("</svg>\n")
	return b.String()
}

// BetaTable formats a β sweep as the paper's Table 2: one column per
// β value, rows for area (mm²) and FTI.
func BetaTable(points []struct {
	Beta    float64
	AreaMM2 float64
	FTI     float64
}) string {
	var b strings.Builder
	b.WriteString("beta      ")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.0f", p.Beta)
	}
	b.WriteString("\narea(mm2) ")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.2f", p.AreaMM2)
	}
	b.WriteString("\nFTI       ")
	for _, p := range points {
		fmt.Fprintf(&b, "%10.4f", p.FTI)
	}
	b.WriteString("\n")
	return b.String()
}
