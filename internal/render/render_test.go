package render

import (
	"strings"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/pcr"
	"dmfb/internal/place"
)

func samplePlacement() *place.Placement {
	mods := []place.Module{
		{ID: 0, Name: "A", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 0, End: 5}},
		{ID: 1, Name: "B", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 5, End: 9}},
	}
	p := place.New(mods)
	p.Pos[1] = geom.Point{X: 2, Y: 0}
	return p
}

func TestPlacementASCII(t *testing.T) {
	p := samplePlacement()
	s := PlacementASCII(p)
	if !strings.Contains(s, "array 4x2 = 8 cells") {
		t.Errorf("header missing:\n%s", s)
	}
	if !strings.Contains(s, "1122") {
		t.Errorf("module rows wrong:\n%s", s)
	}
	if !strings.Contains(s, "1 = A") || !strings.Contains(s, "2 = B") {
		t.Errorf("legend missing:\n%s", s)
	}
	// Time-shared cells show the earlier module.
	q := place.New(p.Modules) // both at origin, disjoint spans
	s2 := PlacementASCII(q)
	if !strings.Contains(s2, "11") || strings.Contains(s2, "22") {
		t.Errorf("time-shared cells should show the earlier module:\n%s", s2)
	}
	if PlacementASCII(place.New(nil)) != "(empty placement)" {
		t.Error("empty placement rendering wrong")
	}
}

func TestCoverageASCII(t *testing.T) {
	p := place.New([]place.Module{
		{ID: 0, Name: "A", Size: geom.Size{W: 3, H: 3}, Span: geom.Interval{Start: 0, End: 5}},
	})
	r := fti.ComputeOn(p, geom.Rect{X: 0, Y: 0, W: 3, H: 3})
	s := CoverageASCII(r)
	if !strings.Contains(s, "FTI 0.0000") {
		t.Errorf("FTI header wrong:\n%s", s)
	}
	gridPart := s[strings.Index(s, "\n")+1:] // header contains "3x3"
	if strings.Count(gridPart, "x") != 9 {
		t.Errorf("want 9 uncovered cells:\n%s", s)
	}
}

func TestScheduleASCII(t *testing.T) {
	s := ScheduleASCII(pcr.MustSchedule())
	for _, name := range pcr.MixNames {
		if !strings.Contains(s, name) {
			t.Errorf("missing %s:\n%s", name, s)
		}
	}
	if !strings.Contains(s, "makespan 19s") {
		t.Errorf("makespan missing:\n%s", s)
	}
	// M1 runs 10 of the 19 columns.
	lines := strings.Split(s, "\n")
	var m1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "M1") {
			m1 = l
		}
	}
	bar := m1[strings.Index(m1, "|")+1:]
	if strings.Count(bar, "1") != 10 {
		t.Errorf("M1 row wrong: %q", m1)
	}
}

func TestPlacementSVG(t *testing.T) {
	p := samplePlacement()
	svg := PlacementSVG(p, 0) // default cell size
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Error("not a standalone SVG document")
	}
	if strings.Count(svg, "<rect") != 2 {
		t.Errorf("want 2 module rects:\n%s", svg)
	}
	if !strings.Contains(svg, ">A [0,5)</text>") || !strings.Contains(svg, ">B [5,9)</text>") {
		t.Errorf("labels missing:\n%s", svg)
	}
}

func TestBetaTable(t *testing.T) {
	pts := []struct {
		Beta    float64
		AreaMM2 float64
		FTI     float64
	}{
		{10, 141.75, 0.2857},
		{60, 222.75, 1.0},
	}
	s := BetaTable(pts)
	for _, want := range []string{"141.75", "222.75", "0.2857", "1.0000", "beta"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}

func TestGlyphsStayDistinctOnPCR(t *testing.T) {
	prob := core.FromSchedule(pcr.MustSchedule())
	g, err := core.Greedy(prob, true)
	if err != nil {
		t.Fatal(err)
	}
	s := PlacementASCII(g)
	for i := range g.Modules {
		if !strings.ContainsRune(s, rune(moduleGlyph(i))) {
			t.Errorf("glyph for module %d missing:\n%s", i, s)
		}
	}
	if moduleGlyph(99) != '?' {
		t.Error("overflow glyph wrong")
	}
}

func TestGanttSVG(t *testing.T) {
	s := pcr.MustSchedule()
	svg := GanttSVG(s, 0)
	if !strings.HasPrefix(svg, "<svg") || !strings.HasSuffix(strings.TrimSpace(svg), "</svg>") {
		t.Fatal("not a standalone SVG document")
	}
	if strings.Count(svg, "<rect") != 7 {
		t.Errorf("want 7 module bars, got %d", strings.Count(svg, "<rect"))
	}
	for _, name := range pcr.MixNames {
		if !strings.Contains(svg, ">"+name+"</text>") {
			t.Errorf("label %s missing", name)
		}
	}
	if !strings.Contains(svg, ">15s</text>") {
		t.Error("time axis labels missing")
	}
}
