// Package server is the dmfb compile-and-simulate service: an
// HTTP/JSON front end over the shared pipeline with a bounded annealer
// worker pool and the content-addressed placement cache.
//
// API:
//
//	POST /v1/compile   synthesise + place + analyse; returns the
//	                   placement JSON (byte-identical whether it came
//	                   from the cache or a fresh anneal — see pcache)
//	POST /v1/simulate  compile, then run the chip simulator with
//	                   optional fault injections and recovery mode
//	GET  /v1/jobs/{id} status of an async job, or its stored response
//	                   once finished
//
// plus the ops endpoints (/metrics, /healthz, /progress, /debug/pprof)
// mounted from internal/obs on the same mux.
//
// Every compile/simulate response carries an X-Dmfb-Job header naming
// the job and, on success, an X-Dmfb-Cache header reporting whether
// the placement stage was served from the cache ("hit") or annealed
// fresh ("miss"). Cache state never leaks into the body, so hit and
// miss responses for the same request are byte-identical.
//
// Admission control: at most Workers requests anneal concurrently and
// at most QueueDepth more may wait; beyond that the server answers 429
// immediately rather than building an unbounded backlog. A request
// body with "async": true is accepted with 202 and a job id instead of
// blocking the connection; its result is fetched from /v1/jobs/{id}.
// Drain stops admission (503) and waits for in-flight work, giving the
// binary a graceful SIGTERM path.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"

	"dmfb/internal/core"
	"dmfb/internal/format"
	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/obs"
	"dmfb/internal/pcache"
	"dmfb/internal/pipeline"
	"dmfb/internal/place"
	"dmfb/internal/sim"
	"dmfb/internal/telemetry"
)

// Defaults for zero-valued Options fields.
const (
	DefaultQueueDepth = 64
	DefaultMaxJobs    = 256
	maxBodyBytes      = 1 << 20
)

// Options configures New.
type Options struct {
	// Workers bounds concurrent pipeline runs (annealing is CPU-bound,
	// so this is the parallelism knob). 0 = GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker beyond the
	// Workers running; one more is answered 429. 0 = DefaultQueueDepth;
	// negative = no queue (reject whenever all workers are busy).
	QueueDepth int
	// CacheBytes is the placement cache budget (0 =
	// pcache.DefaultMaxBytes).
	CacheBytes int
	// MaxJobs bounds retained finished jobs (0 = DefaultMaxJobs).
	MaxJobs int
	// Metrics receives server, pipeline and cache metrics; a private
	// registry is created when nil so /metrics always has data.
	Metrics *telemetry.Registry
	// Tracer, when non-nil, records server.* and stage.* spans per
	// request.
	Tracer *telemetry.Tracer
}

// Server is the compile-and-simulate service. Build with New, mount
// via Handler, stop with Drain.
type Server struct {
	reg    *telemetry.Registry
	tracer *telemetry.Tracer
	cache  *pcache.Cache
	mux    *http.ServeMux

	slots chan struct{} // worker pool; holding a token = annealing
	adm   *Admission    // Workers + QueueDepth admission bound

	draining atomic.Bool
	inflight sync.WaitGroup

	// run executes the pipeline; swapped out by tests that need a
	// blocking or failing workload.
	run func(context.Context, pipeline.Request) (pipeline.Result, error)

	jobsMu   sync.Mutex
	jobs     map[string]*job
	jobOrder []string
	jobSeq   int64
	maxJobs  int
}

// job is one admitted compile/simulate request. Result fields are
// written once by execute and published by closing done; after that
// they are read-only.
type job struct {
	id, kind string
	running  atomic.Bool
	done     chan struct{}

	status int
	cache  string // "hit" | "miss" | "" (error)
	body   []byte
}

// New builds a ready-to-serve Server.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	switch {
	case opts.QueueDepth == 0:
		opts.QueueDepth = DefaultQueueDepth
	case opts.QueueDepth < 0:
		opts.QueueDepth = 0
	}
	if opts.MaxJobs <= 0 {
		opts.MaxJobs = DefaultMaxJobs
	}
	reg := opts.Metrics
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		reg:     reg,
		tracer:  opts.Tracer,
		cache:   pcache.New(opts.CacheBytes, reg),
		slots:   make(chan struct{}, opts.Workers),
		adm:     NewAdmission(opts.Workers + opts.QueueDepth),
		run:     pipeline.Run,
		jobs:    make(map[string]*job),
		maxJobs: opts.MaxJobs,
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/compile", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, "compile")
	})
	s.mux.HandleFunc("POST /v1/simulate", func(w http.ResponseWriter, r *http.Request) {
		s.handleRun(w, r, "simulate")
	})
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleJob)
	obs.NewHandler("dmfb-server", reg, s.progressSnapshot).Register(s.mux)
	return s
}

// Handler returns the service's HTTP handler (API + ops endpoints).
func (s *Server) Handler() http.Handler { return s.mux }

// Cache exposes the placement cache (for stats and tests).
func (s *Server) Cache() *pcache.Cache { return s.cache }

// Drain stops admitting requests (new ones get 503) and waits for
// in-flight work to finish or ctx to expire.
func (s *Server) Drain(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() {
		s.inflight.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// CompileRequest is the POST /v1/compile body. Zero-valued knobs take
// the same defaults as the CLIs.
type CompileRequest struct {
	// Assay selects the workload: "pcr" or "invitro".
	Assay string `json:"assay"`
	// Samples × Assays size the in-vitro workload; Budget caps
	// concurrent module area in cells.
	Samples int `json:"samples,omitempty"`
	Assays  int `json:"assays,omitempty"`
	Budget  int `json:"budget,omitempty"`

	// Placer: "greedy", "greedy-oblivious", "sa" (default), "twostage".
	Placer string `json:"placer,omitempty"`
	// Annealer knobs (defaults per core.Options).
	Seed           int64 `json:"seed,omitempty"`
	ItersPerModule int   `json:"iters_per_module,omitempty"`
	WindowPatience int   `json:"window_patience,omitempty"`
	// Multi-start search: Starts independent annealing starts with
	// derived seeds, best result wins. Starts participates in the
	// placement-cache key; AnnealWorkers only caps concurrency and
	// never changes the result (or the key).
	Starts        int `json:"starts,omitempty"`
	AnnealWorkers int `json:"anneal_workers,omitempty"`
	// Beta weights the fault-tolerance term of the twostage placer.
	Beta float64 `json:"beta,omitempty"`
	// Spares threads that many interstitial spare lines through the
	// finished placement (space redundancy for yield enhancement).
	// Applied downstream of the placement cache, so requests differing
	// only in Spares share one cache entry.
	Spares int `json:"spares,omitempty"`

	// Verify runs exhaustive single-fault injection; MonteCarlo runs
	// that many random single-fault trials seeded by FTISeed.
	Verify     bool  `json:"verify,omitempty"`
	MonteCarlo int   `json:"montecarlo,omitempty"`
	FTISeed    int64 `json:"fti_seed,omitempty"`

	// Async detaches the request: the response is 202 with a job id and
	// the result is fetched from /v1/jobs/{id}.
	Async bool `json:"async,omitempty"`
}

// FaultRequest is one injected fault in a simulate request.
type FaultRequest struct {
	TimeSec         int `json:"time_sec"`
	X               int `json:"x"`
	Y               int `json:"y"`
	TransientProbes int `json:"transient_probes,omitempty"`
}

// SimulateRequest is the POST /v1/simulate body: a compile plus the
// simulator configuration.
type SimulateRequest struct {
	CompileRequest
	Faults []FaultRequest `json:"faults,omitempty"`
	// Recovery: "l1" (default), "ladder" or "off".
	Recovery     string `json:"recovery,omitempty"`
	RecoverySeed int64  `json:"recovery_seed,omitempty"`
}

// CompileResponse is the POST /v1/compile result. All fields are
// deterministic functions of the request, so identical requests yield
// byte-identical bodies regardless of cache state.
type CompileResponse struct {
	Assay       string   `json:"assay"`
	Placer      string   `json:"placer"`
	MakespanSec int      `json:"makespan_sec"`
	ArrayW      int      `json:"array_w"`
	ArrayH      int      `json:"array_h"`
	ArrayCells  int      `json:"array_cells"`
	Utilization float64  `json:"utilization"`
	FTI         float64  `json:"fti"`
	Stage1FTI   *float64 `json:"stage1_fti,omitempty"`
	// VerifiedSurvival is the exhaustive single-fault survival rate
	// (equals FTI exactly); MonteCarloSurvival the sampled estimate.
	VerifiedSurvival   *float64 `json:"verified_survival,omitempty"`
	MonteCarloSurvival *float64 `json:"montecarlo_survival,omitempty"`
	CacheKey           string   `json:"cache_key"`
	// Placement is the dmfb-place JSON document, usable directly as a
	// -placement file for the CLIs.
	Placement json.RawMessage `json:"placement"`
}

// SimulateResponse is the POST /v1/simulate result.
type SimulateResponse struct {
	CompileResponse
	Outcome        string   `json:"outcome"`
	FailReason     string   `json:"fail_reason,omitempty"`
	SimMakespanSec int      `json:"sim_makespan_sec"`
	TransportSteps int      `json:"transport_steps"`
	TransportMS    int      `json:"transport_ms"`
	Relocations    int      `json:"relocations"`
	Events         int      `json:"events"`
	Recoveries     int      `json:"recoveries"`
	ProductFluids  []string `json:"product_fluids,omitempty"`
}

// errorResponse is the JSON body of every non-2xx API response.
type errorResponse struct {
	Error string `json:"error"`
	Stage string `json:"stage,omitempty"`
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request, kind string) {
	s.reg.Counter("server.requests").Add(1)
	if s.draining.Load() {
		s.reg.Counter("server.rejected").Add(1)
		s.fail(w, http.StatusServiceUnavailable, "", fmt.Errorf("server draining"))
		return
	}

	var sr SimulateRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&sr); err != nil {
		s.fail(w, http.StatusBadRequest, "", fmt.Errorf("decode request: %w", err))
		return
	}
	preq, err := s.buildRequest(kind, &sr)
	if err != nil {
		s.fail(w, http.StatusBadRequest, "", err)
		return
	}

	// Admission: Workers running + QueueDepth waiting, then shed load.
	n, ok := s.adm.Admit()
	if !ok {
		s.reg.Counter("server.rejected").Add(1)
		s.fail(w, http.StatusTooManyRequests, "",
			fmt.Errorf("server busy: %d requests in flight", n))
		return
	}
	s.reg.Gauge("server.pending").Set(float64(n))

	j := s.newJob(kind)
	s.inflight.Add(1)
	if sr.Async {
		go s.execute(context.Background(), j, kind, &sr, preq)
		w.Header().Set("X-Dmfb-Job", j.id)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\"job_id\":%q,\"state\":\"queued\",\"status_url\":\"/v1/jobs/%s\"}\n", j.id, j.id)
		return
	}
	s.execute(r.Context(), j, kind, &sr, preq)
	s.writeJob(w, j)
}

// execute waits for a worker slot, runs the pipeline and publishes the
// job result. It owns the pending/inflight accounting taken by
// handleRun.
func (s *Server) execute(ctx context.Context, j *job, kind string, sr *SimulateRequest, preq pipeline.Request) {
	defer s.inflight.Done()
	defer func() {
		s.reg.Gauge("server.pending").Set(float64(s.adm.Release()))
	}()

	select {
	case s.slots <- struct{}{}:
	case <-ctx.Done():
		s.finishError(j, http.StatusServiceUnavailable, ctx.Err())
		return
	}
	defer func() { <-s.slots }()
	j.running.Store(true)

	span := s.tracer.Start("server." + kind)
	prev := s.tracer.SwapDefaultParent(span.ID())
	clock := telemetry.StartStage("server." + kind)
	res, err := s.run(ctx, preq)
	st := clock.Stop()
	s.tracer.SwapDefaultParent(prev)
	cacheState := "miss"
	if res.CacheHit {
		cacheState = "hit"
	}
	span.End(telemetry.Fields{
		"kind":   kind,
		"cache":  cacheState,
		"error":  err != nil,
		"cpu_us": st.CPU.Microseconds(),
	})
	s.reg.Histogram("server.request_ms", telemetry.LatencyBuckets...).
		Observe(float64(st.Wall.Microseconds()) / 1000)

	if err != nil {
		s.finishError(j, http.StatusBadRequest, err)
		return
	}
	body, err := encodeResponse(kind, sr, res)
	if err != nil {
		s.finishError(j, http.StatusInternalServerError, err)
		return
	}
	s.reg.Counter("server.cache_" + cacheState).Add(1)
	j.status = http.StatusOK
	j.cache = cacheState
	j.body = body
	close(j.done)
}

func (s *Server) finishError(j *job, status int, err error) {
	s.reg.Counter("server.errors").Add(1)
	resp := errorResponse{Error: err.Error()}
	var se *pipeline.StageError
	if errors.As(err, &se) {
		resp.Stage = se.Stage
	}
	b, merr := json.Marshal(resp)
	if merr != nil {
		b = []byte(`{"error":"internal"}`)
	}
	j.status = status
	j.body = append(b, '\n')
	close(j.done)
}

// buildRequest translates the wire request into a pipeline request.
func (s *Server) buildRequest(kind string, sr *SimulateRequest) (pipeline.Request, error) {
	if kind == "compile" && (len(sr.Faults) > 0 || sr.Recovery != "" || sr.RecoverySeed != 0) {
		return pipeline.Request{}, fmt.Errorf("compile request carries simulate-only fields")
	}
	placer := sr.Placer
	if placer == "" {
		placer = "sa"
	}
	req := pipeline.Request{
		Tool: "dmfb-server",
		Synth: &pipeline.SynthSpec{
			Assay:   sr.Assay,
			Samples: sr.Samples,
			Assays:  sr.Assays,
			Budget:  sr.Budget,
		},
		Place: &pipeline.PlaceSpec{
			Placer: placer,
			Options: core.Options{
				Seed:           sr.Seed,
				ItersPerModule: sr.ItersPerModule,
				WindowPatience: sr.WindowPatience,
				Search:         place.SearchOptions{Starts: sr.Starts, Workers: sr.AnnealWorkers},
			},
			FT:     core.FTOptions{Beta: sr.Beta},
			Spares: sr.Spares,
		},
		FTI: &pipeline.FTISpec{
			Verify:     sr.Verify,
			MonteCarlo: sr.MonteCarlo,
			Seed:       sr.FTISeed,
		},
		Cache:   s.cache,
		Tracer:  s.tracer,
		Metrics: s.reg,
	}
	if kind == "simulate" {
		mode, err := sim.ParseRecoveryMode(orDefault(sr.Recovery, "l1"))
		if err != nil {
			return pipeline.Request{}, err
		}
		spec := &pipeline.SimSpec{
			Options: sim.Options{Recovery: mode, RecoverySeed: sr.RecoverySeed},
		}
		for _, f := range sr.Faults {
			spec.Faults = append(spec.Faults, sim.FaultInjection{
				TimeSec:         f.TimeSec,
				Cell:            geom.Point{X: f.X, Y: f.Y},
				TransientProbes: f.TransientProbes,
			})
		}
		req.Sim = spec
	}
	return req, nil
}

// encodeResponse renders the pipeline result. Everything here is a
// deterministic function of the request, keeping cached and fresh
// responses byte-identical.
func encodeResponse(kind string, sr *SimulateRequest, res pipeline.Result) ([]byte, error) {
	raw, err := format.MarshalPlacement(res.Placement)
	if err != nil {
		return nil, err
	}
	bb := res.Placement.BoundingBox()
	cr := CompileResponse{
		Assay:       sr.Assay,
		Placer:      orDefault(sr.Placer, "sa"),
		MakespanSec: res.Schedule.Makespan,
		ArrayW:      bb.W,
		ArrayH:      bb.H,
		ArrayCells:  res.Placement.ArrayCells(),
		Utilization: res.Placement.Utilization(),
		FTI:         res.FTI.FTI(),
		CacheKey:    string(res.CacheKey),
		Placement:   raw,
	}
	if res.TwoStage != nil {
		v := fti.Compute(res.TwoStage.Stage1).FTI()
		cr.Stage1FTI = &v
	}
	if res.Exhaustive != nil {
		v := res.Exhaustive.SurvivalRate()
		cr.VerifiedSurvival = &v
	}
	if res.MonteCarlo != nil {
		v := res.MonteCarlo.SurvivalRate()
		cr.MonteCarloSurvival = &v
	}
	var out any = cr
	if kind == "simulate" {
		out = SimulateResponse{
			CompileResponse: cr,
			Outcome:         res.Sim.Outcome.String(),
			FailReason:      res.Sim.FailReason,
			SimMakespanSec:  res.Sim.MakespanSec,
			TransportSteps:  res.Sim.TransportSteps,
			TransportMS:     res.Sim.TransportMS,
			Relocations:     len(res.Sim.Relocations),
			Events:          len(res.Sim.Events),
			Recoveries:      res.Sim.Recovery.Invocations,
			ProductFluids:   res.Sim.ProductFluids,
		}
	}
	b, err := json.Marshal(out)
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.jobsMu.Lock()
	j := s.jobs[r.PathValue("id")]
	s.jobsMu.Unlock()
	if j == nil {
		s.fail(w, http.StatusNotFound, "", fmt.Errorf("unknown job %q", r.PathValue("id")))
		return
	}
	select {
	case <-j.done:
		s.writeJob(w, j)
	default:
		state := "queued"
		if j.running.Load() {
			state = "running"
		}
		w.Header().Set("X-Dmfb-Job", j.id)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, "{\"job_id\":%q,\"state\":%q}\n", j.id, state)
	}
}

// writeJob renders a finished job. Used by both the synchronous path
// and /v1/jobs, so an async result is byte-identical to a sync one.
func (s *Server) writeJob(w http.ResponseWriter, j *job) {
	<-j.done
	w.Header().Set("X-Dmfb-Job", j.id)
	if j.cache != "" {
		w.Header().Set("X-Dmfb-Cache", j.cache)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(j.status)
	if _, err := w.Write(j.body); err != nil {
		return // client went away; the job record remains
	}
}

func (s *Server) fail(w http.ResponseWriter, status int, stage string, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	b, merr := json.Marshal(errorResponse{Error: err.Error(), Stage: stage})
	if merr != nil {
		b = []byte(`{"error":"internal"}`)
	}
	if _, err := w.Write(append(b, '\n')); err != nil {
		return
	}
}

// newJob registers a job, evicting the oldest finished jobs beyond
// MaxJobs.
func (s *Server) newJob(kind string) *job {
	s.jobsMu.Lock()
	defer s.jobsMu.Unlock()
	s.jobSeq++
	j := &job{
		id:   fmt.Sprintf("j%06d", s.jobSeq),
		kind: kind,
		done: make(chan struct{}),
	}
	s.jobs[j.id] = j
	s.jobOrder = append(s.jobOrder, j.id)
	for i := 0; len(s.jobs) > s.maxJobs && i < len(s.jobOrder); {
		old := s.jobs[s.jobOrder[i]]
		if old == nil {
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
			continue
		}
		select {
		case <-old.done:
			delete(s.jobs, old.id)
			s.jobOrder = append(s.jobOrder[:i], s.jobOrder[i+1:]...)
		default:
			i++ // still running; keep it and look further
		}
	}
	return j
}

// progressSnapshot feeds the /progress ops endpoint.
func (s *Server) progressSnapshot() any {
	s.jobsMu.Lock()
	jobs := len(s.jobs)
	s.jobsMu.Unlock()
	return map[string]any{
		"pending":  s.adm.Pending(),
		"workers":  cap(s.slots),
		"busy":     len(s.slots),
		"jobs":     jobs,
		"draining": s.draining.Load(),
		"cache":    s.cache.Stats(),
	}
}

func orDefault(s, def string) string {
	if s == "" {
		return def
	}
	return s
}
