package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dmfb/internal/pipeline"
	"dmfb/internal/telemetry"
)

func post(t *testing.T, ts *httptest.Server, path, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestCompileCacheByteIdentity is the ISSUE acceptance test: a cached
// POST /v1/compile response must be byte-identical to the uncached
// one and be served without re-running the annealer, verified by the
// placer-invocation counter.
func TestCompileCacheByteIdentity(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Options{Workers: 2, Metrics: reg})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"assay":"pcr","placer":"sa","seed":1}`
	resp1, b1 := post(t, ts, "/v1/compile", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first compile: %d %s", resp1.StatusCode, b1)
	}
	if h := resp1.Header.Get("X-Dmfb-Cache"); h != "miss" {
		t.Errorf("first compile X-Dmfb-Cache = %q, want miss", h)
	}
	if n := reg.Counter("pipeline.placer_runs").Value(); n != 1 {
		t.Fatalf("placer_runs after first compile = %d, want 1", n)
	}

	resp2, b2 := post(t, ts, "/v1/compile", body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second compile: %d %s", resp2.StatusCode, b2)
	}
	if h := resp2.Header.Get("X-Dmfb-Cache"); h != "hit" {
		t.Errorf("second compile X-Dmfb-Cache = %q, want hit", h)
	}
	if n := reg.Counter("pipeline.placer_runs").Value(); n != 1 {
		t.Errorf("placer_runs after cached compile = %d, want still 1 (annealer re-ran)", n)
	}
	if !bytes.Equal(b1, b2) {
		t.Errorf("cached response differs from fresh response:\n%s\nvs\n%s", b1, b2)
	}

	var cr CompileResponse
	if err := json.Unmarshal(b1, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.FTI <= 0 || cr.ArrayCells <= 0 || len(cr.Placement) == 0 {
		t.Errorf("implausible compile response: %+v", cr)
	}
	if cr.CacheKey == "" {
		t.Error("compile response has no cache key")
	}
}

func TestCompileTwoStageAndInvitro(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, b := post(t, ts, "/v1/compile",
		`{"assay":"pcr","placer":"twostage","seed":1,"beta":30,"verify":true}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("twostage compile: %d %s", resp.StatusCode, b)
	}
	var cr CompileResponse
	if err := json.Unmarshal(b, &cr); err != nil {
		t.Fatal(err)
	}
	if cr.Stage1FTI == nil {
		t.Error("twostage response missing stage1_fti")
	}
	if cr.VerifiedSurvival == nil {
		t.Error("verify=true response missing verified_survival")
	} else if *cr.VerifiedSurvival != cr.FTI {
		t.Errorf("verified survival %v != FTI %v", *cr.VerifiedSurvival, cr.FTI)
	}

	resp, b = post(t, ts, "/v1/compile",
		`{"assay":"invitro","samples":2,"assays":2,"seed":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invitro compile: %d %s", resp.StatusCode, b)
	}
}

// TestCompileMultiStart: "starts" splits the cache key (more starts is
// a different search, possibly a different winner) while
// "anneal_workers" is a concurrency cap that must neither split the
// key nor change the response bytes.
func TestCompileMultiStart(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp, single := post(t, ts, "/v1/compile",
		`{"assay":"pcr","placer":"twostage","seed":1,"beta":30,"iters_per_module":60,"window_patience":4}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-start compile: %d %s", resp.StatusCode, single)
	}
	var base CompileResponse
	if err := json.Unmarshal(single, &base); err != nil {
		t.Fatal(err)
	}

	resp, multi := post(t, ts, "/v1/compile",
		`{"assay":"pcr","placer":"twostage","seed":1,"beta":30,"iters_per_module":60,"window_patience":4,"starts":3}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("multi-start compile: %d %s", resp.StatusCode, multi)
	}
	if h := resp.Header.Get("X-Dmfb-Cache"); h != "miss" {
		t.Errorf("starts=3 compile X-Dmfb-Cache = %q, want miss (starts must split the key)", h)
	}
	var best CompileResponse
	if err := json.Unmarshal(multi, &best); err != nil {
		t.Fatal(err)
	}
	if best.CacheKey == base.CacheKey {
		t.Error("starts=3 compile produced the same cache key as the single-start compile")
	}

	resp, capped := post(t, ts, "/v1/compile",
		`{"assay":"pcr","placer":"twostage","seed":1,"beta":30,"iters_per_module":60,"window_patience":4,"starts":3,"anneal_workers":1}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("capped multi-start compile: %d %s", resp.StatusCode, capped)
	}
	if h := resp.Header.Get("X-Dmfb-Cache"); h != "hit" {
		t.Errorf("anneal_workers=1 repeat X-Dmfb-Cache = %q, want hit (workers must not split the key)", h)
	}
	if !bytes.Equal(multi, capped) {
		t.Error("anneal_workers changed the compile response bytes")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const body = `{"assay":"pcr","placer":"twostage","seed":1,"beta":40,` +
		`"faults":[{"time_sec":1,"x":2,"y":1}],"recovery":"l1"}`
	resp1, b1 := post(t, ts, "/v1/simulate", body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("simulate: %d %s", resp1.StatusCode, b1)
	}
	var sr SimulateResponse
	if err := json.Unmarshal(b1, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Outcome != "completed" {
		t.Errorf("outcome = %q, want completed (body %s)", sr.Outcome, b1)
	}
	if sr.Recoveries == 0 {
		t.Error("injected fault but no recovery invocations reported")
	}
	if len(sr.ProductFluids) == 0 {
		t.Error("no product fluids reported")
	}

	resp2, b2 := post(t, ts, "/v1/simulate", body)
	if h := resp2.Header.Get("X-Dmfb-Cache"); h != "hit" {
		t.Errorf("repeat simulate X-Dmfb-Cache = %q, want hit (placement cached)", h)
	}
	if !bytes.Equal(b1, b2) {
		t.Error("repeat simulate response differs")
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		path, body string
		want       int
		stage      string
	}{
		{"/v1/compile", `{not json`, http.StatusBadRequest, ""},
		{"/v1/compile", `{"assay":"warp"}`, http.StatusBadRequest, "synth"},
		{"/v1/compile", `{"assay":"pcr","placer":"magic"}`, http.StatusBadRequest, "place"},
		{"/v1/compile", `{"assay":"pcr","bogus_field":1}`, http.StatusBadRequest, ""},
		{"/v1/compile", `{"assay":"pcr","recovery":"l1"}`, http.StatusBadRequest, ""},
		{"/v1/simulate", `{"assay":"pcr","recovery":"yolo"}`, http.StatusBadRequest, ""},
	}
	for _, tc := range cases {
		resp, b := post(t, ts, tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("POST %s %s: status %d, want %d (body %s)",
				tc.path, tc.body, resp.StatusCode, tc.want, b)
			continue
		}
		var er struct {
			Error string `json:"error"`
			Stage string `json:"stage"`
		}
		if err := json.Unmarshal(b, &er); err != nil {
			t.Errorf("POST %s %s: non-JSON error body %q", tc.path, tc.body, b)
			continue
		}
		if er.Error == "" {
			t.Errorf("POST %s %s: empty error message", tc.path, tc.body)
		}
		if er.Stage != tc.stage {
			t.Errorf("POST %s %s: stage %q, want %q", tc.path, tc.body, er.Stage, tc.stage)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/nope")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// TestAdmissionControl fills every worker and queue slot with a
// blocking workload, then checks the next request is shed with 429.
func TestAdmissionControl(t *testing.T) {
	reg := telemetry.NewRegistry()
	s := New(Options{Workers: 1, QueueDepth: 1, Metrics: reg})
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	s.run = func(ctx context.Context, _ pipeline.Request) (pipeline.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
		case <-ctx.Done():
		}
		return pipeline.Result{}, fmt.Errorf("stub")
	}
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < 2; i++ { // 1 running + 1 queued = at capacity
		wg.Add(1)
		go func() {
			defer wg.Done()
			post(t, ts, "/v1/compile", `{"assay":"pcr"}`)
		}()
	}
	<-started // the worker slot is taken
	// Wait until the second request is admitted and queued.
	for i := 0; s.adm.Pending() < 2; i++ {
		if i > 1000 {
			t.Fatal("second request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	resp, b := post(t, ts, "/v1/compile", `{"assay":"pcr"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("over-capacity request: status %d, want 429 (body %s)", resp.StatusCode, b)
	}
	if n := reg.Counter("server.rejected").Value(); n != 1 {
		t.Errorf("server.rejected = %d, want 1", n)
	}
	close(release)
	wg.Wait()
}

func TestAsyncJobFlow(t *testing.T) {
	s := New(Options{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	_, syncBody := post(t, ts, "/v1/compile", `{"assay":"pcr","seed":5}`)

	resp, b := post(t, ts, "/v1/compile", `{"assay":"pcr","seed":5,"async":true}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("async compile: status %d, want 202 (body %s)", resp.StatusCode, b)
	}
	var acc struct {
		JobID     string `json:"job_id"`
		StatusURL string `json:"status_url"`
	}
	if err := json.Unmarshal(b, &acc); err != nil {
		t.Fatal(err)
	}
	if acc.JobID == "" || acc.JobID != resp.Header.Get("X-Dmfb-Job") {
		t.Fatalf("async accept: job id %q, header %q", acc.JobID, resp.Header.Get("X-Dmfb-Job"))
	}

	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + acc.StatusURL)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if !bytes.Equal(body, syncBody) {
				t.Errorf("async result differs from sync result:\n%s\nvs\n%s", body, syncBody)
			}
			if h := resp.Header.Get("X-Dmfb-Cache"); h != "hit" {
				t.Errorf("async job X-Dmfb-Cache = %q, want hit (sync run warmed the cache)", h)
			}
			return
		}
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("job poll: status %d (body %s)", resp.StatusCode, body)
		}
		if time.Now().After(deadline) {
			t.Fatal("async job never finished")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestDrain(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	if _, b := post(t, ts, "/v1/compile", `{"assay":"pcr"}`); len(b) == 0 {
		t.Fatal("warm-up compile failed")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	resp, _ := post(t, ts, "/v1/compile", `{"assay":"pcr"}`)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain request: status %d, want 503", resp.StatusCode)
	}
}

func TestOpsEndpointsMounted(t *testing.T) {
	s := New(Options{Workers: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	post(t, ts, "/v1/compile", `{"assay":"pcr"}`)

	for _, path := range []string{"/healthz", "/metrics", "/progress"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		switch path {
		case "/metrics":
			for _, want := range []string{"dmfb_server_requests", "dmfb_pcache_misses", "dmfb_stage_place_ms"} {
				if !strings.Contains(string(b), want) {
					t.Errorf("/metrics missing %s", want)
				}
			}
		case "/progress":
			if !strings.Contains(string(b), `"workers"`) {
				t.Errorf("/progress missing workers field: %s", b)
			}
		}
	}
}
