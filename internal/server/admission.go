package server

import "sync/atomic"

// Admission is the shared load-shedding gate of the dmfb services: a
// hard bound on admitted-but-unfinished work, beyond which a service
// answers 429 immediately instead of building an unbounded backlog.
// The compile-and-simulate server gates requests with it
// (Workers running + QueueDepth waiting) and the campaign dispatcher
// gates unfinished campaigns. Zero value is unusable; build with
// NewAdmission.
type Admission struct {
	limit   int64
	pending atomic.Int64
}

// NewAdmission returns a gate admitting at most limit concurrent
// units; limit < 1 is clamped to 1.
func NewAdmission(limit int) *Admission {
	if limit < 1 {
		limit = 1
	}
	return &Admission{limit: int64(limit)}
}

// Admit reserves one slot. It reports the number of units in flight
// after the call and whether the caller was admitted; on false the
// reservation was already rolled back and n is the in-flight count
// that caused the rejection.
func (a *Admission) Admit() (n int64, ok bool) {
	n = a.pending.Add(1)
	if n > a.limit {
		a.pending.Add(-1)
		return n - 1, false
	}
	return n, true
}

// Release returns one admitted slot and reports the remaining
// in-flight count.
func (a *Admission) Release() int64 { return a.pending.Add(-1) }

// Pending returns the current in-flight count.
func (a *Admission) Pending() int64 { return a.pending.Load() }

// Limit returns the admission bound.
func (a *Admission) Limit() int64 { return a.limit }
