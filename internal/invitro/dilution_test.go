package invitro

import (
	"strings"
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/core"
	"dmfb/internal/sim"
)

func TestDilutionSeriesStructure(t *testing.T) {
	for depth := 1; depth <= 4; depth++ {
		g, err := DilutionSeries(depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if got := g.CountKind(assay.Dilute); got != depth {
			t.Errorf("depth %d: %d dilutes", depth, got)
		}
		// One detect per level plus the extra at the bottom.
		if got := g.CountKind(assay.Detect); got != depth+1 {
			t.Errorf("depth %d: %d detects, want %d", depth, got, depth+1)
		}
		// sample + one buffer per level.
		if got := g.CountKind(assay.Dispense); got != depth+1 {
			t.Errorf("depth %d: %d dispenses, want %d", depth, got, depth+1)
		}
		// Every dilute has exactly two successors (its two halves).
		for _, op := range g.Ops() {
			if op.Kind == assay.Dilute {
				if got := len(g.Succ(op.ID)); got != 2 {
					t.Errorf("depth %d: dilute %s has %d successors", depth, op.Name, got)
				}
			}
		}
	}
}

func TestDilutionSeriesRejectsBadDepth(t *testing.T) {
	for _, d := range []int{0, 9, -1} {
		if _, err := DilutionSeries(d); err == nil {
			t.Errorf("depth %d accepted, want error", d)
		}
	}
}

func TestSynthesizeDilution(t *testing.T) {
	s, err := SynthesizeDilution(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Chain: each level's dilute (5 s) must precede the next; depth 3
	// critical path = 3*5 + 30 (final detect) = 45.
	if s.Makespan != 45 {
		t.Errorf("makespan = %d, want 45", s.Makespan)
	}
}

// TestDilutionSeriesSimulates runs the ladder end to end on the chip
// simulator: each detected droplet must carry the sample at halving
// concentration (volume bookkeeping: every split halves the droplet).
func TestDilutionSeriesSimulates(t *testing.T) {
	s, err := SynthesizeDilution(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	prob := core.FromSchedule(s)
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 2, ItersPerModule: 100, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	res := sim.Run(s, p, sim.Options{Trace: true})
	if !res.Completed {
		var log strings.Builder
		for _, e := range res.Events {
			log.WriteString(e.String() + "\n")
		}
		t.Fatalf("dilution simulation failed: %s\n%s", res.FailReason, log.String())
	}
	// depth 2 -> 3 detected product droplets, all containing sample.
	if len(res.ProductFluids) != 3 {
		t.Fatalf("products = %v, want 3", res.ProductFluids)
	}
	for _, f := range res.ProductFluids {
		if !strings.Contains(f, "sample") || !strings.Contains(f, "buffer") {
			t.Errorf("product %q is not a dilution", f)
		}
	}
}

func TestDilutionTreeStructure(t *testing.T) {
	for depth := 1; depth <= 4; depth++ {
		g, err := DilutionTree(depth)
		if err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("depth %d: %v", depth, err)
		}
		wantDil := 1<<depth - 1
		if got := g.CountKind(assay.Dilute); got != wantDil {
			t.Errorf("depth %d: %d dilutes, want %d", depth, got, wantDil)
		}
		if got := g.CountKind(assay.Detect); got != 1<<depth {
			t.Errorf("depth %d: %d detects, want %d", depth, got, 1<<depth)
		}
		for _, op := range g.Ops() {
			if op.Kind == assay.Dilute {
				if got := len(g.Succ(op.ID)); got != 2 {
					t.Errorf("depth %d: %s has %d successors", depth, op.Name, got)
				}
			}
		}
	}
}

func TestDilutionTreeSimulates(t *testing.T) {
	s, err := SynthesizeTree(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	prob := core.FromSchedule(s)
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 5, ItersPerModule: 100, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Four detect modules run concurrently on a tightly packed array;
	// a two-cell transport ring gives the six droplets room to pass
	// (routing-aware placement is future work beyond the paper).
	res := sim.Run(s, p, sim.Options{Border: 2})
	if !res.Completed {
		t.Fatalf("dilution tree failed: %s", res.FailReason)
	}
	// depth 2 -> 4 measured leaves.
	if len(res.ProductFluids) != 4 {
		t.Fatalf("products = %v, want 4", res.ProductFluids)
	}
	for _, f := range res.ProductFluids {
		if !strings.Contains(f, "protein-sample") {
			t.Errorf("leaf %q lost the sample", f)
		}
	}
}
