package invitro

import (
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/core"
)

func TestGraphStructure(t *testing.T) {
	g, err := Graph(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// 2x3 pairs x (2 dispenses + mix + detect).
	if g.NumOps() != 2*3*4 {
		t.Fatalf("NumOps = %d", g.NumOps())
	}
	if g.CountKind(assay.Mix) != 6 || g.CountKind(assay.Detect) != 6 || g.CountKind(assay.Dispense) != 12 {
		t.Fatal("kind counts wrong")
	}
	// Every detect is a sink; every chain has depth 2.
	depth, _ := g.Depth()
	for _, op := range g.Ops() {
		if op.Kind == assay.Detect {
			if len(g.Succ(op.ID)) != 0 || depth[op.ID] != 2 {
				t.Errorf("detect %s: succ=%d depth=%d", op.Name, len(g.Succ(op.ID)), depth[op.ID])
			}
		}
	}
}

func TestGraphRejectsBadSize(t *testing.T) {
	for _, d := range [][2]int{{0, 1}, {1, 0}, {5, 1}, {1, 5}} {
		if _, err := Graph(d[0], d[1]); err == nil {
			t.Errorf("Graph(%d,%d) accepted, want error", d[0], d[1])
		}
	}
}

func TestSynthesizeUnconstrained(t *testing.T) {
	s, err := Synthesize(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// All mixes in parallel (3 s), then detects (30 s): makespan 33.
	if s.Makespan != 33 {
		t.Errorf("makespan = %d, want 33", s.Makespan)
	}
	if len(s.BoundItems()) != 8 {
		t.Errorf("bound items = %d, want 8", len(s.BoundItems()))
	}
}

func TestSynthesizeBudgetSerialises(t *testing.T) {
	free, err := Synthesize(2, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Synthesize(2, 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if tight.Makespan < free.Makespan {
		t.Errorf("budgeted makespan %d beats unconstrained %d", tight.Makespan, free.Makespan)
	}
	if tight.PeakArea() > 30 {
		t.Errorf("peak area %d exceeds budget", tight.PeakArea())
	}
}

func TestInVitroPlacementEndToEnd(t *testing.T) {
	s := MustSynthesize(2, 2, 40)
	prob := core.FromSchedule(s)
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 1, ItersPerModule: 80, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if p.ArrayCells() < s.PeakArea() {
		t.Errorf("area %d below peak concurrency %d", p.ArrayCells(), s.PeakArea())
	}
}
