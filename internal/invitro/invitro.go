// Package invitro generates the second canonical digital-microfluidics
// workload: multiplexed in-vitro diagnostics on human physiological
// fluids (Srinivasan et al., µTAS 2003 — reference [4] of the paper).
// Each of a set of samples (plasma, serum, urine, saliva) is assayed
// against a set of enzymatic reagents (glucose, lactate, uric acid,
// pyruvate): sample and reagent droplets are dispensed, mixed, and the
// mixed droplet is measured at a detection site.
//
// The generator is parametric in the number of samples and assays, so
// it doubles as the scaling workload for the placement benchmarks:
// an s×a diagnostic produces s·a mix modules and s·a detect modules.
package invitro

import (
	"fmt"

	"dmfb/internal/assay"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
	"dmfb/internal/schedule"
)

// diluterSize is the footprint of the linear-array diluter (same
// geometry as the 4-electrode mixer of Table 1).
var diluterSize = geom.Size{W: 3, H: 6}

// Samples available to the generator, in dispensing order.
var Samples = [4]string{"plasma", "serum", "urine", "saliva"}

// Reagents available to the generator (colorimetric enzyme kits).
var Reagents = [4]string{"glucose-oxidase", "lactate-oxidase", "uricase", "pyruvate-oxidase"}

// Graph builds the sequencing graph for an nSamples × nAssays
// multiplexed diagnostic. Each sample/assay pair contributes
// dispense(sample), dispense(reagent), mix, detect. A size outside
// the sample/reagent catalogues is an error — the parameters arrive
// straight from CLI flags, so a bad request must surface as a usage
// error, not a stack trace.
func Graph(nSamples, nAssays int) (*assay.Graph, error) {
	if nSamples < 1 || nSamples > len(Samples) || nAssays < 1 || nAssays > len(Reagents) {
		return nil, fmt.Errorf("invitro: %dx%d outside the 1..%d x 1..%d catalogue",
			nSamples, nAssays, len(Samples), len(Reagents))
	}
	g := assay.New(fmt.Sprintf("invitro-%dx%d", nSamples, nAssays))
	for si := 0; si < nSamples; si++ {
		for ai := 0; ai < nAssays; ai++ {
			ds := g.AddOp(fmt.Sprintf("DS%d.%d", si+1, ai+1), assay.Dispense, Samples[si])
			dr := g.AddOp(fmt.Sprintf("DR%d.%d", si+1, ai+1), assay.Dispense, Reagents[ai])
			mx := g.AddOp(fmt.Sprintf("MIX%d.%d", si+1, ai+1), assay.Mix, "")
			dt := g.AddOp(fmt.Sprintf("DET%d.%d", si+1, ai+1), assay.Detect, "")
			g.MustEdge(ds, mx)
			g.MustEdge(dr, mx)
			g.MustEdge(mx, dt)
		}
	}
	return g, nil
}

// Synthesize builds and schedules the workload with the Table 1
// library: mixes bound to the fastest mixer, detections to the LED
// detector, under the given concurrent-area budget (0 = unlimited).
func Synthesize(nSamples, nAssays, areaBudget int) (*schedule.Schedule, error) {
	g, err := Graph(nSamples, nAssays)
	if err != nil {
		return nil, err
	}
	b, err := schedule.Bind(g, modlib.Table1(), schedule.BindFastest)
	if err != nil {
		return nil, err
	}
	return schedule.List(g, b, schedule.Options{AreaBudget: areaBudget})
}

// MustSynthesize is Synthesize panicking on error, for benchmarks and
// examples with static parameters.
func MustSynthesize(nSamples, nAssays, areaBudget int) *schedule.Schedule {
	s, err := Synthesize(nSamples, nAssays, areaBudget)
	if err != nil {
		panic(err)
	}
	return s
}

// DilutionSeries builds a serial-dilution ladder of the given depth:
// the sample is diluted 1:1 with buffer, one half is measured, the
// other half is diluted again, producing the 2^-1..2^-depth
// concentration series used for calibration curves. Each level
// contributes dispense(buffer), dilute, detect; the deepest level
// detects both halves. Exercises the Dilute/Split path of the flow.
// Depths outside 1..8 are an error (the flag-facing contract).
func DilutionSeries(depth int) (*assay.Graph, error) {
	if depth < 1 || depth > 8 {
		return nil, fmt.Errorf("invitro: dilution depth %d outside 1..8", depth)
	}
	g := assay.New(fmt.Sprintf("dilution-series-%d", depth))
	carry := g.AddOp("DS", assay.Dispense, "sample")
	for lvl := 1; lvl <= depth; lvl++ {
		buf := g.AddOp(fmt.Sprintf("DB%d", lvl), assay.Dispense, "buffer")
		dil := g.AddOp(fmt.Sprintf("DIL%d", lvl), assay.Dilute, "")
		g.MustEdge(carry, dil)
		g.MustEdge(buf, dil)
		det := g.AddOp(fmt.Sprintf("DET%d", lvl), assay.Detect, "")
		g.MustEdge(dil, det)
		if lvl == depth {
			final := g.AddOp(fmt.Sprintf("DET%d.b", lvl), assay.Detect, "")
			g.MustEdge(dil, final)
		} else {
			carry = dil // second output droplet feeds the next level...
		}
	}
	return g, nil
}

// DilutionTree builds the exponential-dilution benchmark: a complete
// binary tree of dilutions of the given depth producing 2^depth
// droplets at concentration 2^-depth, each measured at a detector —
// the protein-assay dilution pattern of the DMFB synthesis literature.
// Levels × 2^level dilute modules make it the largest workload in this
// repository, used for placement scaling studies. Depths outside 1..5
// are an error (the flag-facing contract).
func DilutionTree(depth int) (*assay.Graph, error) {
	if depth < 1 || depth > 5 {
		return nil, fmt.Errorf("invitro: dilution tree depth %d outside 1..5", depth)
	}
	g := assay.New(fmt.Sprintf("dilution-tree-%d", depth))
	sample := g.AddOp("DS", assay.Dispense, "protein-sample")
	frontier := []int{sample}
	for lvl := 1; lvl <= depth; lvl++ {
		var next []int
		for i, parent := range frontier {
			buf := g.AddOp(fmt.Sprintf("DB%d.%d", lvl, i+1), assay.Dispense, "buffer")
			dil := g.AddOp(fmt.Sprintf("DIL%d.%d", lvl, i+1), assay.Dilute, "")
			g.MustEdge(parent, dil)
			g.MustEdge(buf, dil)
			// Both halves continue (or, at the deepest level, both are
			// measured); each dilute therefore has exactly two
			// successors, matching the simulator's split semantics.
			next = append(next, dil, dil)
		}
		frontier = next
	}
	for i := 0; i < len(frontier); i += 2 {
		det1 := g.AddOp(fmt.Sprintf("DET%d", i+1), assay.Detect, "")
		det2 := g.AddOp(fmt.Sprintf("DET%d", i+2), assay.Detect, "")
		g.MustEdge(frontier[i], det1)
		g.MustEdge(frontier[i+1], det2)
	}
	return g, nil
}

// SynthesizeTree binds and schedules a dilution tree under the given
// area budget.
func SynthesizeTree(depth, areaBudget int) (*schedule.Schedule, error) {
	g, err := DilutionTree(depth)
	if err != nil {
		return nil, err
	}
	lib := modlib.Table1()
	b := make(schedule.Binding)
	diluter := modlib.Device{
		Name: "diluter-1x4", Hardware: "4-electrode linear array",
		Kind: assay.Dilute, Size: diluterSize, Duration: 5,
	}
	det, _ := lib.Get(modlib.DetectorLED)
	for _, op := range g.Ops() {
		switch op.Kind {
		case assay.Dilute:
			b[op.ID] = diluter
		case assay.Detect:
			b[op.ID] = det
		}
	}
	return schedule.List(g, b, schedule.Options{AreaBudget: areaBudget})
}

// SynthesizeDilution binds and schedules a dilution series: dilutes on
// the fastest linear mixer geometry, detections on the LED detector.
func SynthesizeDilution(depth, areaBudget int) (*schedule.Schedule, error) {
	g, err := DilutionSeries(depth)
	if err != nil {
		return nil, err
	}
	lib := modlib.Table1()
	b := make(schedule.Binding)
	diluter := modlib.Device{
		Name: "diluter-1x4", Hardware: "4-electrode linear array",
		Kind: assay.Dilute, Size: diluterSize, Duration: 5,
	}
	det, _ := lib.Get(modlib.DetectorLED)
	for _, op := range g.Ops() {
		switch op.Kind {
		case assay.Dilute:
			b[op.ID] = diluter
		case assay.Detect:
			b[op.ID] = det
		}
	}
	return schedule.List(g, b, schedule.Options{AreaBudget: areaBudget})
}
