package obs

import "sync"

// ProgressMux merges named progress sources into one /progress
// payload, for processes that track several workloads at once: the
// campaign dispatcher registers one source per campaign (each a
// campaign.ProgressTracker snapshot with rate/ETA) next to a fleet
// overview, and sources come and go as campaigns are submitted and
// retired. Safe for concurrent use; plug Snapshot into
// Options.Progress or Handler.SetProgress.
type ProgressMux struct {
	mu      sync.Mutex
	sources map[string]func() any
}

// NewProgressMux returns an empty mux.
func NewProgressMux() *ProgressMux {
	return &ProgressMux{sources: make(map[string]func() any)}
}

// Set installs (or replaces) the named source. A nil fn removes it.
func (m *ProgressMux) Set(name string, fn func() any) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if fn == nil {
		delete(m.sources, name)
		return
	}
	m.sources[name] = fn
}

// Delete removes the named source; unknown names are a no-op.
func (m *ProgressMux) Delete(name string) { m.Set(name, nil) }

// Snapshot polls every source and returns name → payload. The map
// marshals with sorted keys, so the JSON rendering is stable. Sources
// are called outside the mux lock — a slow source never blocks
// Set/Delete.
func (m *ProgressMux) Snapshot() any {
	m.mu.Lock()
	fns := make(map[string]func() any, len(m.sources))
	for name, fn := range m.sources {
		fns[name] = fn
	}
	m.mu.Unlock()
	out := make(map[string]any, len(fns))
	for name, fn := range fns {
		out[name] = fn()
	}
	return out
}
