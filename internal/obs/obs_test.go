package obs

import (
	"context"
	"io"
	"net/http"
	"regexp"
	"strings"
	"testing"
	"time"

	"dmfb/internal/telemetry"
)

func get(t *testing.T, url string) (int, string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header.Get("Content-Type")
}

// promLine matches every legal line of the Prometheus 0.0.4 text
// format that the server may emit: comments, and samples with an
// optional single le= or quantile= label.
var promLine = regexp.MustCompile(`^(# (HELP|TYPE) [a-zA-Z_:][a-zA-Z0-9_:]* .*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_]+="[^"]*"\})? [^ ]+)$`)

func TestServerEndpoints(t *testing.T) {
	reg := telemetry.NewRegistry()
	reg.Counter("campaign.trials").Add(5)
	reg.Gauge("anneal.temp").Set(0.25)
	for _, v := range []float64{1, 2, 3, 50, 900} {
		reg.Histogram("campaign.trial_ms", telemetry.LatencyBuckets...).Observe(v)
	}

	s, err := Serve(Options{
		Addr:    "127.0.0.1:0",
		Tool:    "obs-test",
		Metrics: reg,
		Progress: func() any {
			return map[string]int{"done": 3, "total": 10}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	if !strings.Contains(s.Addr(), ":") || strings.HasSuffix(s.Addr(), ":0") {
		t.Fatalf("Addr() = %q, want a resolved host:port", s.Addr())
	}

	code, body, ctype := get(t, s.URL()+"/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Errorf("/healthz = %d %q", code, body)
	}
	if !strings.HasPrefix(ctype, "text/plain") {
		t.Errorf("/healthz content-type = %q", ctype)
	}

	code, body, ctype = get(t, s.URL()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	if !strings.Contains(ctype, "version=0.0.4") {
		t.Errorf("/metrics content-type = %q", ctype)
	}
	for _, want := range []string{
		"dmfb_process_uptime_seconds ",
		"dmfb_process_cpu_seconds_total ",
		"dmfb_process_goroutines ",
		"dmfb_campaign_trials 5",
		"dmfb_anneal_temp 0.25",
		`dmfb_campaign_trial_ms_bucket{le="+Inf"} 5`,
		"dmfb_campaign_trial_ms_count 5",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if !promLine.MatchString(line) {
			t.Errorf("/metrics line fails exposition grammar: %q", line)
		}
	}

	code, body, ctype = get(t, s.URL()+"/progress")
	if code != http.StatusOK || ctype != "application/json" {
		t.Fatalf("/progress = %d %q", code, ctype)
	}
	for _, want := range []string{`"tool": "obs-test"`, `"uptime_ms"`, `"done": 3`, `"total": 10`} {
		if !strings.Contains(body, want) {
			t.Errorf("/progress missing %q in:\n%s", want, body)
		}
	}

	code, body, _ = get(t, s.URL()+"/debug/pprof/")
	if code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d (goroutine index present: %v)", code, strings.Contains(body, "goroutine"))
	}
}

func TestServerNilMetricsAndProgress(t *testing.T) {
	s, err := Serve(Options{Addr: "127.0.0.1:0", Tool: "bare"})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	code, body, _ := get(t, s.URL()+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "dmfb_process_uptime_seconds") {
		t.Errorf("/metrics with nil registry = %d:\n%s", code, body)
	}
	code, body, _ = get(t, s.URL()+"/progress")
	if code != http.StatusOK || strings.Contains(body, `"progress"`) {
		t.Errorf("/progress with no source = %d:\n%s", code, body)
	}

	s.SetProgress(func() any { return 7 })
	_, body, _ = get(t, s.URL()+"/progress")
	if !strings.Contains(body, `"progress": 7`) {
		t.Errorf("/progress after SetProgress:\n%s", body)
	}
}

func TestServerClose(t *testing.T) {
	s, err := Serve(Options{Addr: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.URL()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := http.Get(addr + "/healthz"); err == nil {
		t.Error("server still serving after Close")
	}
	// Idempotent, and nil-safe.
	if err := s.Close(ctx); err != nil {
		t.Errorf("second Close: %v", err)
	}
	var nilServer *Server
	if err := nilServer.Close(ctx); err != nil {
		t.Errorf("nil Close: %v", err)
	}
	if nilServer.Addr() != "" || nilServer.URL() != "" {
		t.Error("nil Addr/URL should be empty")
	}
	nilServer.SetProgress(nil)
}

func TestServeBadAddr(t *testing.T) {
	if _, err := Serve(Options{Addr: "not-an-address"}); err == nil {
		t.Fatal("Serve on a bad address should fail")
	}
}
