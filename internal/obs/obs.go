// Package obs is the embeddable ops HTTP server of the dmfb tools:
// the live observability surface a long campaign or anneal exposes
// while it runs, and the serving skeleton the compile-and-simulate
// service plugs into.
//
// Endpoints:
//
//	/healthz      liveness: "ok" and HTTP 200 while the process serves
//	/metrics      Prometheus text exposition of the telemetry registry
//	              (counters, gauges, histograms with estimated
//	              quantiles) plus process metrics
//	/progress     JSON progress payload from the registered source
//	              (campaign.ProgressTracker.Snapshot for campaigns)
//	/debug/pprof  the standard pprof handlers
//
// Two entry points share one implementation: Serve runs a standalone
// ops server on its own listener (the CLI -ops flag), while NewHandler
// + Register mount the same endpoints on a mux another server owns
// (dmfb-server serves them next to its /v1 API).
//
// The standalone server binds eagerly (so ":0" callers can read the
// resolved port from Addr before any request arrives), serves from a
// background goroutine, and shuts down gracefully via Close. It never
// mutates the registry or tracker it renders, so enabling it cannot
// perturb a campaign's deterministic summary.
package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync"
	"time"

	"dmfb/internal/telemetry"
)

// Options configures Serve.
type Options struct {
	// Addr is the TCP listen address, e.g. ":9090" or "127.0.0.1:0"
	// (port 0 picks a free port — read it back from Server.Addr).
	Addr string
	// Tool names the process in /healthz and /progress payloads.
	Tool string
	// Metrics is rendered by /metrics; nil serves process metrics only.
	Metrics *telemetry.Registry
	// Progress, when non-nil, supplies the /progress payload. The
	// returned value is JSON-marshaled per request; it must be safe to
	// call concurrently with the workload.
	Progress func() any
}

// Handler renders the ops endpoints. Zero value is unusable; build one
// with NewHandler and mount it with Register.
type Handler struct {
	tool  string
	start time.Time
	reg   *telemetry.Registry

	mu       sync.Mutex
	progress func() any
}

// NewHandler builds an ops endpoint handler for a process named tool,
// rendering reg on /metrics (nil reg serves process metrics only) and
// progress (may be nil) on /progress.
func NewHandler(tool string, reg *telemetry.Registry, progress func() any) *Handler {
	return &Handler{tool: tool, start: time.Now(), reg: reg, progress: progress}
}

// Register mounts /healthz, /metrics, /progress and /debug/pprof/* on
// mux.
func (h *Handler) Register(mux *http.ServeMux) {
	mux.HandleFunc("/healthz", h.handleHealthz)
	mux.HandleFunc("/metrics", h.handleMetrics)
	mux.HandleFunc("/progress", h.handleProgress)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// SetProgress installs (or replaces) the /progress payload source.
// Nil-safe, so inert sessions can call it unconditionally.
func (h *Handler) SetProgress(fn func() any) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.progress = fn
	h.mu.Unlock()
}

// Server is a running standalone ops server.
type Server struct {
	*Handler
	srv *http.Server
	ln  net.Listener

	mu       sync.Mutex
	serveErr error // fatal listener error, surfaced by Close

	done chan struct{} // closed when the serve goroutine exits
}

// Serve binds opts.Addr and starts serving in the background. The
// returned server is live: Addr reports the resolved address
// immediately.
func Serve(opts Options) (*Server, error) {
	ln, err := net.Listen("tcp", opts.Addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", opts.Addr, err)
	}
	s := &Server{
		Handler: NewHandler(opts.Tool, opts.Metrics, opts.Progress),
		ln:      ln,
		done:    make(chan struct{}),
	}
	mux := http.NewServeMux()
	s.Register(mux)
	s.srv = &http.Server{Handler: mux}
	go func() {
		defer close(s.done)
		// ErrServerClosed is the expected Shutdown result; anything
		// else means the listener died — the workload is unaffected,
		// so the error is held for Close to surface.
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.mu.Lock()
			s.serveErr = err
			s.mu.Unlock()
		}
	}()
	return s, nil
}

// Addr returns the resolved listen address (host:port).
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// URL returns the server's base URL.
func (s *Server) URL() string {
	if s == nil {
		return ""
	}
	return "http://" + s.Addr()
}

// SetProgress installs (or replaces) the /progress payload source.
// Nil-safe, so inert sessions can call it unconditionally.
func (s *Server) SetProgress(fn func() any) {
	if s == nil {
		return
	}
	s.Handler.SetProgress(fn)
}

// Close gracefully shuts the server down: in-flight requests finish,
// then the listener closes. It is nil-safe and idempotent.
func (s *Server) Close(ctx context.Context) error {
	if s == nil {
		return nil
	}
	err := s.srv.Shutdown(ctx)
	select {
	case <-s.done:
	case <-ctx.Done():
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		err = s.serveErr
	}
	return err
}

func (h *Handler) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

func (h *Handler) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Process metrics first, then the registry.
	fmt.Fprintf(w, "# TYPE dmfb_process_uptime_seconds gauge\ndmfb_process_uptime_seconds %g\n",
		time.Since(h.start).Seconds())
	fmt.Fprintf(w, "# TYPE dmfb_process_cpu_seconds_total counter\ndmfb_process_cpu_seconds_total %g\n",
		telemetry.ProcessCPUTime().Seconds())
	fmt.Fprintf(w, "# TYPE dmfb_process_goroutines gauge\ndmfb_process_goroutines %d\n",
		runtime.NumGoroutine())
	if err := h.reg.WritePrometheus(w); err != nil {
		// Headers are already out; the truncated body is all we can
		// offer the scraper.
		return
	}
}

// progressPayload is the /progress response envelope.
type progressPayload struct {
	Tool     string  `json:"tool"`
	UptimeMS float64 `json:"uptime_ms"`
	Progress any     `json:"progress,omitempty"`
}

func (h *Handler) handleProgress(w http.ResponseWriter, _ *http.Request) {
	h.mu.Lock()
	fn := h.progress
	h.mu.Unlock()
	p := progressPayload{
		Tool:     h.tool,
		UptimeMS: float64(time.Since(h.start).Microseconds()) / 1000,
	}
	if fn != nil {
		p.Progress = fn()
	}
	b, err := json.MarshalIndent(p, "", "  ")
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(append(b, '\n')); err != nil {
		return // client went away mid-response; nothing to clean up
	}
}
