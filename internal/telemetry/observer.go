package telemetry

import (
	"dmfb/internal/anneal"
)

// AnnealObserver adapts the tracer and metrics registry to the
// annealing engine's Observer hook. Per completed temperature level
// it emits one "anneal.level" span (duration = the level's wall time)
// and updates the anneal.* metrics; per best-cost improvement it
// emits an "anneal.best" event. stage tags the records so concurrent
// or staged runs (area annealing vs. LTSA refinement) stay
// distinguishable. Returns nil — the engine's fully disabled fast
// path — when both sinks are nil.
func AnnealObserver(tr *Tracer, reg *Registry, stage string) anneal.Observer {
	if tr == nil && reg == nil {
		return nil
	}
	return func(p anneal.Progress) {
		switch p.Kind {
		case anneal.ProgressLevel:
			l := p.Level
			tr.EmitSpan("anneal.level", l.Duration, Fields{
				"stage":     stage,
				"level":     l.Index,
				"T":         l.T,
				"proposed":  l.Proposed,
				"accepted":  l.Accepted,
				"improved":  l.Improved,
				"best_cost": l.BestCost,
				"cur_cost":  l.CurCost,
			})
			reg.Counter("anneal.levels").Inc()
			reg.Counter("anneal.proposed").Add(int64(l.Proposed))
			reg.Counter("anneal.accepted").Add(int64(l.Accepted))
			reg.Gauge("anneal.accept_rate").Set(l.AcceptRate())
			reg.Gauge("anneal.best_cost").Set(p.BestCost)
			reg.Histogram("anneal.level_ms", LatencyBuckets...).
				Observe(float64(l.Duration.Microseconds()) / 1000)
		case anneal.ProgressNewBest:
			tr.Event("anneal.best", Fields{
				"stage":       stage,
				"level":       p.Level.Index,
				"T":           p.Level.T,
				"best_cost":   p.BestCost,
				"evaluations": p.Evaluations,
			})
			reg.Counter("anneal.improvements").Inc()
			reg.Gauge("anneal.best_cost").Set(p.BestCost)
		}
	}
}
