package telemetry

import "time"

// StageTiming reports one pipeline stage's resource usage.
type StageTiming struct {
	Name string
	Wall time.Duration // elapsed wall-clock time
	CPU  time.Duration // process CPU time (user+system) consumed; 0 where unsupported
}

// ProcessCPUTime returns the process's cumulative user+system CPU
// time, or zero where the platform is unsupported. The ops server
// exports it as process_cpu_seconds_total.
func ProcessCPUTime() time.Duration { return processCPUTime() }

// StageClock measures a pipeline stage. Create with StartStage.
type StageClock struct {
	name string
	wall time.Time
	cpu  time.Duration
}

// StartStage starts measuring wall and process CPU time for a stage.
func StartStage(name string) *StageClock {
	return &StageClock{name: name, wall: time.Now(), cpu: processCPUTime()}
}

// Stop returns the stage's timing. It may be called multiple times;
// each call reports the time elapsed since StartStage.
func (c *StageClock) Stop() StageTiming {
	return StageTiming{Name: c.name, Wall: time.Since(c.wall), CPU: processCPUTime() - c.cpu}
}
