// Package cliflags provides the shared observability command-line
// surface of the dmfb tools. Every binary under cmd/ registers the
// same three flags:
//
//	-trace=<file>    structured JSONL trace (see telemetry package doc)
//	-metrics=<file>  JSON metrics snapshot written on exit
//	-profile=<dir>   CPU + heap pprof profiles written on exit
//
// Usage:
//
//	cfg := cliflags.Register()
//	flag.Parse()
//	ts, err := cfg.Start("dmfb-place")
//	if err != nil { ... }
//	defer ts.Close()
//
// All Session fields are nil-safe: when a flag is absent the
// corresponding sink is nil and instrumented code pays only a nil
// check.
package cliflags

import (
	"flag"
	"fmt"
	"os"

	"dmfb/internal/reconfig"
	"dmfb/internal/router"
	"dmfb/internal/telemetry"
)

// Config holds the parsed flag values.
type Config struct {
	TracePath   string
	MetricsPath string
	ProfileDir  string
}

// Register installs -trace, -metrics and -profile on the default
// flag set. Call before flag.Parse.
func Register() *Config {
	return RegisterOn(flag.CommandLine)
}

// RegisterOn installs the observability flags on an explicit flag set.
func RegisterOn(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.TracePath, "trace", "", "write a structured JSONL trace to `file`")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a JSON metrics snapshot to `file` on exit")
	fs.StringVar(&c.ProfileDir, "profile", "", "write cpu.pprof and heap.pprof to `dir` on exit")
	return c
}

// Session is the live observability state of one tool invocation.
type Session struct {
	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry

	tool        string
	root        telemetry.Span
	traceFile   *os.File
	metricsPath string
	profiler    *telemetry.Profiler
}

// Start opens the sinks requested by the parsed flags. It returns a
// Session whose Tracer/Metrics are nil when the corresponding flag was
// not given; Start with no flags set returns a fully inert Session,
// so callers never need to branch. On success the process-wide
// router/reconfig hooks are pointed at the session registry.
func (c *Config) Start(tool string) (*Session, error) {
	s := &Session{tool: tool, metricsPath: c.MetricsPath}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: open trace file: %w", err)
		}
		s.traceFile = f
		s.Tracer = telemetry.New(f)
	}
	if c.MetricsPath != "" {
		s.Metrics = telemetry.NewRegistry()
	}
	if c.ProfileDir != "" {
		p, err := telemetry.StartProfiles(c.ProfileDir)
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		s.profiler = p
	}
	router.Instrument(s.Metrics)
	reconfig.Instrument(s.Metrics)
	s.Tracer.Event("tool.start", telemetry.Fields{"tool": tool})
	s.root = s.Tracer.Start("tool.run")
	return s, nil
}

// Stage wraps a pipeline stage: it measures wall and CPU time,
// emits a "stage.<name>" span and observes a "stage.<name>_ms"
// histogram. Call the returned function when the stage completes.
func (s *Session) Stage(name string) func() {
	if s == nil {
		return func() {}
	}
	clock := telemetry.StartStage(name)
	span := s.Tracer.Start("stage." + name)
	return func() {
		st := clock.Stop()
		span.End(telemetry.Fields{
			"tool":   s.tool,
			"cpu_us": st.CPU.Microseconds(),
		})
		s.Metrics.Histogram("stage."+name+"_ms", telemetry.LatencyBuckets...).
			Observe(float64(st.Wall.Microseconds()) / 1000)
	}
}

// Close ends the root span, flushes the metrics snapshot, stops the
// profiler and closes the trace file. It reports the first error
// encountered (including any deferred trace-write error) and is safe
// to call on a nil or inert Session.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.root.End(nil)
	var first error
	if s.Metrics != nil && s.metricsPath != "" {
		if err := s.writeMetrics(); err != nil && first == nil {
			first = err
		}
	}
	if s.profiler != nil {
		if err := s.profiler.Stop(); err != nil && first == nil {
			first = err
		}
	}
	if s.Tracer != nil {
		if err := s.Tracer.Err(); err != nil && first == nil {
			first = fmt.Errorf("telemetry: trace write: %w", err)
		}
	}
	if err := s.closeFiles(); err != nil && first == nil {
		first = err
	}
	router.Instrument(nil)
	reconfig.Instrument(nil)
	return first
}

// writeMetrics renders the registry snapshot, augmented with span
// duration summaries when a tracer is active, to the -metrics file.
func (s *Session) writeMetrics() error {
	f, err := os.Create(s.metricsPath)
	if err != nil {
		return fmt.Errorf("telemetry: open metrics file: %w", err)
	}
	defer f.Close()
	snap := s.Metrics.Snapshot()
	if s.Tracer != nil {
		snap.Spans = s.Tracer.Summaries()
	}
	if err := snap.WriteJSON(f); err != nil {
		return fmt.Errorf("telemetry: write metrics: %w", err)
	}
	return f.Close()
}

func (s *Session) closeFiles() error {
	if s.traceFile == nil {
		return nil
	}
	err := s.traceFile.Close()
	s.traceFile = nil
	return err
}
