// Package cliflags provides the shared observability command-line
// surface of the dmfb tools. Every binary under cmd/ registers the
// same four flags:
//
//	-trace=<file>    structured JSONL trace (see telemetry package doc)
//	-metrics=<file>  JSON metrics snapshot written on exit
//	-profile=<dir>   CPU + heap pprof profiles written on exit
//	-ops=<addr>      live ops HTTP server (/metrics /healthz /progress
//	                 /debug/pprof) on addr; ":0" picks a free port and
//	                 the resolved URL is printed to stderr
//
// Usage:
//
//	cfg := cliflags.Register()
//	flag.Parse()
//	ts, err := cfg.Start("dmfb-place")
//	if err != nil { ... }
//	defer ts.Close()
//
// All Session fields are nil-safe: when a flag is absent the
// corresponding sink is nil and instrumented code pays only a nil
// check. -ops implies a metrics registry even without -metrics, so
// the live /metrics endpoint is never empty.
package cliflags

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"time"

	"dmfb/internal/obs"
	"dmfb/internal/place"
	"dmfb/internal/reconfig"
	"dmfb/internal/router"
	"dmfb/internal/telemetry"
)

// Config holds the parsed flag values.
type Config struct {
	TracePath   string
	MetricsPath string
	ProfileDir  string
	OpsAddr     string
}

// Register installs -trace, -metrics, -profile and -ops on the
// default flag set. Call before flag.Parse.
func Register() *Config {
	return RegisterOn(flag.CommandLine)
}

// RegisterOn installs the observability flags on an explicit flag set.
func RegisterOn(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.TracePath, "trace", "", "write a structured JSONL trace to `file`")
	fs.StringVar(&c.MetricsPath, "metrics", "", "write a JSON metrics snapshot to `file` on exit")
	fs.StringVar(&c.ProfileDir, "profile", "", "write cpu.pprof and heap.pprof to `dir` on exit")
	fs.StringVar(&c.OpsAddr, "ops", "", "serve live /metrics, /healthz, /progress and /debug/pprof on `addr` (\":0\" picks a free port)")
	return c
}

// SearchFlags installs the shared multi-start annealing group on the
// default flag set: -starts (independent annealing starts, best
// result wins) and -anneal-workers (concurrency cap). Every tool that
// anneals placements registers the same two flags, so the search
// surface reads identically across dmfb-place, dmfb-fti and
// dmfb-bench. The base seed stays the tool's own -seed flag. Call
// before flag.Parse; assign the result to PlacerOptions.Search.
func SearchFlags() *place.SearchOptions {
	return SearchFlagsOn(flag.CommandLine)
}

// SearchFlagsOn installs the multi-start search flags on an explicit
// flag set.
func SearchFlagsOn(fs *flag.FlagSet) *place.SearchOptions {
	s := &place.SearchOptions{}
	fs.IntVar(&s.Starts, "starts", 1,
		"run `n` independent annealing starts with derived seeds and keep the best result (deterministic at any worker count)")
	fs.IntVar(&s.Workers, "anneal-workers", 0,
		"cap concurrent annealing starts at `n` (0 = one per CPU; affects wall-clock only, never results)")
	return s
}

// Main is the shared entry point of the dmfb CLIs: it registers the
// observability flags, parses the command line (tool-specific flags
// must be declared before the call), starts the telemetry session and
// runs the tool body, closing the session afterwards. The returned
// code is run's — a session-close error is reported on stderr but
// does not override a successful run, matching the tools' historic
// behaviour. Use as:
//
//	func main() { os.Exit(cliflags.Main("dmfb-place", run)) }
func Main(tool string, run func(ts *Session) int) int {
	cfg := Register()
	flag.Parse()
	ts, err := cfg.Start(tool)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
		return 1
	}
	code := run(ts)
	if err := ts.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	}
	return code
}

// Session is the live observability state of one tool invocation.
type Session struct {
	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry

	tool        string
	root        telemetry.Span
	traceFile   *os.File
	metricsPath string
	profiler    *telemetry.Profiler
	ops         *obs.Server
}

// Start opens the sinks requested by the parsed flags. It returns a
// Session whose Tracer/Metrics are nil when the corresponding flag was
// not given; Start with no flags set returns a fully inert Session,
// so callers never need to branch. On success the process-wide
// router/reconfig hooks are pointed at the session registry, the root
// "tool.run" span is open and installed as the tracer's default
// parent (so stage spans and stage-nested library spans form a tree),
// and the ops server — when requested — is already listening.
func (c *Config) Start(tool string) (*Session, error) {
	s := &Session{tool: tool, metricsPath: c.MetricsPath}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return nil, fmt.Errorf("telemetry: open trace file: %w", err)
		}
		s.traceFile = f
		s.Tracer = telemetry.New(f)
	}
	if c.MetricsPath != "" || c.OpsAddr != "" {
		s.Metrics = telemetry.NewRegistry()
	}
	if c.ProfileDir != "" {
		p, err := telemetry.StartProfiles(c.ProfileDir)
		if err != nil {
			s.closeFiles()
			return nil, err
		}
		s.profiler = p
	}
	if c.OpsAddr != "" {
		srv, err := obs.Serve(obs.Options{Addr: c.OpsAddr, Tool: tool, Metrics: s.Metrics})
		if err != nil {
			if s.profiler != nil {
				_ = s.profiler.Stop()
			}
			_ = s.closeFiles()
			return nil, err
		}
		s.ops = srv
		fmt.Fprintf(os.Stderr, "%s: ops listening on %s\n", tool, srv.URL())
	}
	router.Instrument(s.Metrics)
	reconfig.Instrument(s.Metrics)
	s.Tracer.Event("tool.start", telemetry.Fields{"tool": tool})
	s.root = s.Tracer.Start("tool.run")
	s.Tracer.SwapDefaultParent(s.root.ID())
	return s, nil
}

// Fail reports err on stderr prefixed with the tool name and returns
// exit code 1 — the uniform error epilogue of the CLI run functions.
func (s *Session) Fail(err error) int {
	tool := "dmfb"
	if s != nil && s.tool != "" {
		tool = s.tool
	}
	fmt.Fprintf(os.Stderr, "%s: %v\n", tool, err)
	return 1
}

// Usage reports err on stderr prefixed with the tool name and returns
// exit code 2, the tools' convention for bad invocations.
func (s *Session) Usage(err error) int {
	s.Fail(err)
	return 2
}

// Ops returns the live ops server, or nil when -ops was not given.
func (s *Session) Ops() *obs.Server {
	if s == nil {
		return nil
	}
	return s.ops
}

// SetProgress installs the /progress payload source on the ops
// server. Nil-safe no-op when -ops was not given.
func (s *Session) SetProgress(fn func() any) {
	if s == nil {
		return
	}
	s.ops.SetProgress(fn)
}

// Stage wraps a pipeline stage: it measures wall and CPU time,
// emits a "stage.<name>" span and observes a "stage.<name>_ms"
// histogram. While the stage runs, its span is the tracer's default
// parent, so library spans emitted inside nest under it. Call the
// returned function when the stage completes.
func (s *Session) Stage(name string) func() {
	if s == nil {
		return func() {}
	}
	clock := telemetry.StartStage(name)
	span := s.Tracer.Start("stage." + name)
	prev := s.Tracer.SwapDefaultParent(span.ID())
	return func() {
		st := clock.Stop()
		s.Tracer.SwapDefaultParent(prev)
		span.End(telemetry.Fields{
			"tool":   s.tool,
			"cpu_us": st.CPU.Microseconds(),
		})
		s.Metrics.Histogram("stage."+name+"_ms", telemetry.LatencyBuckets...).
			Observe(float64(st.Wall.Microseconds()) / 1000)
	}
}

// Flush persists the observability state collected so far without
// ending the session: the metrics snapshot is (re)written to the
// -metrics file and the trace file is synced to disk. Safe to call
// from a signal handler before os.Exit, repeatedly, and on a nil or
// inert Session.
func (s *Session) Flush() error {
	if s == nil {
		return nil
	}
	var first error
	if s.Metrics != nil && s.metricsPath != "" {
		if err := s.writeMetrics(); err != nil {
			first = err
		}
	}
	if s.traceFile != nil {
		if err := s.traceFile.Sync(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// FlushOnSignal arranges for the process to Flush and os.Exit(code)
// on the first delivery of any of the given signals. Tools whose main
// loop does not watch a context use it to make ^C preserve partial
// traces; tools that cancel gracefully on the first signal install it
// after cancellation so a second ^C still flushes before dying.
func (s *Session) FlushOnSignal(code int, sigs ...os.Signal) {
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, sigs...)
	go func() {
		<-ch
		s.Flush()
		os.Exit(code)
	}()
}

// Close ends the root span, shuts down the ops server, flushes the
// metrics snapshot, stops the profiler and closes the trace file. It
// reports the first error encountered (including any deferred
// trace-write error) and is safe to call on a nil or inert Session.
func (s *Session) Close() error {
	if s == nil {
		return nil
	}
	s.Tracer.SwapDefaultParent(0)
	s.root.End(nil)
	var first error
	if s.ops != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		if err := s.ops.Close(ctx); err != nil && first == nil {
			first = err
		}
		cancel()
		s.ops = nil
	}
	if s.Metrics != nil && s.metricsPath != "" {
		if err := s.writeMetrics(); err != nil && first == nil {
			first = err
		}
	}
	if s.profiler != nil {
		if err := s.profiler.Stop(); err != nil && first == nil {
			first = err
		}
	}
	if s.Tracer != nil {
		if err := s.Tracer.Err(); err != nil && first == nil {
			first = fmt.Errorf("telemetry: trace write: %w", err)
		}
	}
	if err := s.closeFiles(); err != nil && first == nil {
		first = err
	}
	router.Instrument(nil)
	reconfig.Instrument(nil)
	return first
}

// writeMetrics renders the registry snapshot, augmented with span
// duration summaries when a tracer is active, to the -metrics file.
func (s *Session) writeMetrics() error {
	f, err := os.Create(s.metricsPath)
	if err != nil {
		return fmt.Errorf("telemetry: open metrics file: %w", err)
	}
	defer f.Close()
	snap := s.Metrics.Snapshot()
	if s.Tracer != nil {
		snap.Spans = s.Tracer.Summaries()
	}
	if err := snap.WriteJSON(f); err != nil {
		return fmt.Errorf("telemetry: write metrics: %w", err)
	}
	return f.Close()
}

func (s *Session) closeFiles() error {
	if s.traceFile == nil {
		return nil
	}
	err := s.traceFile.Close()
	s.traceFile = nil
	return err
}
