package cliflags

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRegisterOnAndStartInert(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	ts, err := cfg.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Tracer != nil || ts.Metrics != nil {
		t.Error("inert session has live sinks")
	}
	done := ts.Stage("noop") // must not panic with nil sinks
	done()
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionWritesTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	if err := fs.Parse([]string{"-trace", tracePath, "-metrics", metricsPath}); err != nil {
		t.Fatal(err)
	}
	ts, err := cfg.Start("dmfb-test")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Tracer == nil || ts.Metrics == nil {
		t.Fatal("sinks not opened")
	}
	ts.Metrics.Counter("work.items").Add(3)
	done := ts.Stage("work")
	time.Sleep(time.Millisecond)
	done()
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid trace line %q: %v", line, err)
		}
	}
	text := string(raw)
	for _, want := range []string{`"tool.start"`, `"stage.work"`, `"tool.run"`} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %s:\n%s", want, text)
		}
	}

	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
		Spans      map[string]any            `json:"spans"`
	}
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("invalid metrics JSON: %v\n%s", err, mraw)
	}
	if snap.Counters["work.items"] != 3 {
		t.Errorf("work.items = %d, want 3", snap.Counters["work.items"])
	}
	if _, ok := snap.Histograms["stage.work_ms"]; !ok {
		t.Errorf("no stage.work_ms histogram: %s", mraw)
	}
	if _, ok := snap.Spans["stage.work"]; !ok {
		t.Errorf("no stage.work span summary: %s", mraw)
	}
}

func TestSessionProfileCapture(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	if err := fs.Parse([]string{"-profile", filepath.Join(dir, "prof")}); err != nil {
		t.Fatal(err)
	}
	ts, err := cfg.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, "prof", name))
		if err != nil {
			t.Errorf("%s not written: %v", name, err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestStartFailsOnBadTracePath(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	bad := filepath.Join(t.TempDir(), "missing-dir", "trace.jsonl")
	if err := fs.Parse([]string{"-trace", bad}); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Start("tool"); err == nil {
		t.Error("Start succeeded with an uncreatable trace path")
	}
}

func TestNilSessionSafe(t *testing.T) {
	var ts *Session
	ts.Stage("x")()
	ts.SetProgress(func() any { return nil })
	if ts.Ops() != nil {
		t.Error("nil session has an ops server")
	}
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlagMatrix drives Start across the flag combination space and
// checks exactly the requested sinks come up.
func TestFlagMatrix(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		name             string
		args             func(i int) []string
		tracer, registry bool
		ops              bool
	}{
		{"none", func(int) []string { return nil }, false, false, false},
		{"trace only", func(i int) []string {
			return []string{"-trace", filepath.Join(dir, fmt.Sprintf("t%d.jsonl", i))}
		}, true, false, false},
		{"metrics only", func(i int) []string {
			return []string{"-metrics", filepath.Join(dir, fmt.Sprintf("m%d.json", i))}
		}, false, true, false},
		{"ops only", func(int) []string {
			return []string{"-ops", "127.0.0.1:0"}
		}, false, true, true}, // -ops implies a registry
		{"empty values are off", func(int) []string {
			return []string{"-trace", "", "-metrics", "", "-ops", ""}
		}, false, false, false},
		{"everything", func(i int) []string {
			return []string{
				"-trace", filepath.Join(dir, fmt.Sprintf("at%d.jsonl", i)),
				"-metrics", filepath.Join(dir, fmt.Sprintf("am%d.json", i)),
				"-ops", "127.0.0.1:0",
			}
		}, true, true, true},
	}
	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := flag.NewFlagSet("test", flag.ContinueOnError)
			cfg := RegisterOn(fs)
			if err := fs.Parse(tc.args(i)); err != nil {
				t.Fatal(err)
			}
			ts, err := cfg.Start("tool")
			if err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := ts.Close(); err != nil {
					t.Fatal(err)
				}
			}()
			if got := ts.Tracer != nil; got != tc.tracer {
				t.Errorf("tracer live = %v, want %v", got, tc.tracer)
			}
			if got := ts.Metrics != nil; got != tc.registry {
				t.Errorf("registry live = %v, want %v", got, tc.registry)
			}
			if got := ts.Ops() != nil; got != tc.ops {
				t.Errorf("ops server live = %v, want %v", got, tc.ops)
			}
		})
	}
}

// TestStartFailsOnBadOpsAddr covers malformed and unbindable -ops
// values; Start must fail cleanly rather than serve nothing.
func TestStartFailsOnBadOpsAddr(t *testing.T) {
	for _, addr := range []string{"not an address", "256.0.0.1:80", "127.0.0.1:99999"} {
		fs := flag.NewFlagSet("test", flag.ContinueOnError)
		cfg := RegisterOn(fs)
		if err := fs.Parse([]string{"-ops", addr}); err != nil {
			t.Fatal(err)
		}
		if _, err := cfg.Start("tool"); err == nil {
			t.Errorf("Start succeeded with -ops %q", addr)
		}
	}
}

func TestSessionOpsEndToEnd(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	if err := fs.Parse([]string{"-ops", "127.0.0.1:0", "-metrics", filepath.Join(dir, "m.json")}); err != nil {
		t.Fatal(err)
	}
	ts, err := cfg.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	ts.Metrics.Counter("work.items").Add(9)
	ts.SetProgress(func() any { return map[string]int{"done": 1} })

	url := ts.Ops().URL()
	for path, want := range map[string]string{
		"/healthz":  "ok",
		"/metrics":  "dmfb_work_items 9",
		"/progress": `"done": 1`,
	} {
		resp, err := http.Get(url + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), want) {
			t.Errorf("GET %s = %d, missing %q:\n%s", path, resp.StatusCode, want, body)
		}
	}

	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(url + "/healthz"); err == nil {
		t.Error("ops server still serving after Close")
	}
	if _, err := os.Stat(filepath.Join(dir, "m.json")); err != nil {
		t.Errorf("metrics snapshot not written on Close: %v", err)
	}
}

// TestFlushPersistsMidRun checks a Flush mid-session leaves a readable
// metrics snapshot and a synced trace without ending the session.
func TestFlushPersistsMidRun(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.jsonl")
	metricsPath := filepath.Join(dir, "m.json")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	if err := fs.Parse([]string{"-trace", tracePath, "-metrics", metricsPath}); err != nil {
		t.Fatal(err)
	}
	ts, err := cfg.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	ts.Metrics.Counter("work.items").Add(4)
	ts.Tracer.Event("work.tick", nil)
	if err := ts.Flush(); err != nil {
		t.Fatal(err)
	}

	var snap struct {
		Counters map[string]int64 `json:"counters"`
	}
	data, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("flushed metrics invalid: %v\n%s", err, data)
	}
	if snap.Counters["work.items"] != 4 {
		t.Errorf("flushed work.items = %d, want 4", snap.Counters["work.items"])
	}
	traced, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(traced), "work.tick") {
		t.Errorf("flushed trace missing work.tick:\n%s", traced)
	}
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestStageNestsSpans checks the default-parent plumbing: spans
// emitted by library code inside a Stage must carry the stage span as
// parent, and the stage span the root.
func TestStageNestsSpans(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "t.jsonl")
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	if err := fs.Parse([]string{"-trace", tracePath}); err != nil {
		t.Fatal(err)
	}
	ts, err := cfg.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	done := ts.Stage("work")
	ts.Tracer.EmitSpan("lib.inner", time.Millisecond, nil) // library code, no explicit parent
	done()
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	ids := map[string]uint64{}
	pars := map[string]uint64{}
	data, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		var rec struct {
			Kind string `json:"kind"`
			Name string `json:"name"`
			ID   uint64 `json:"id"`
			Par  uint64 `json:"par"`
		}
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatal(err)
		}
		if rec.Kind == "span" {
			ids[rec.Name] = rec.ID
			pars[rec.Name] = rec.Par
		}
	}
	if pars["lib.inner"] != ids["stage.work"] || ids["stage.work"] == 0 {
		t.Errorf("lib.inner parent = %d, want stage.work id %d", pars["lib.inner"], ids["stage.work"])
	}
	if pars["stage.work"] != ids["tool.run"] || ids["tool.run"] == 0 {
		t.Errorf("stage.work parent = %d, want tool.run id %d", pars["stage.work"], ids["tool.run"])
	}
	if pars["tool.run"] != 0 {
		t.Errorf("tool.run parent = %d, want root", pars["tool.run"])
	}
}
