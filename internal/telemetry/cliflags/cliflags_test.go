package cliflags

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRegisterOnAndStartInert(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	ts, err := cfg.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Tracer != nil || ts.Metrics != nil {
		t.Error("inert session has live sinks")
	}
	done := ts.Stage("noop") // must not panic with nil sinks
	done()
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSessionWritesTraceAndMetrics(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "trace.jsonl")
	metricsPath := filepath.Join(dir, "metrics.json")

	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	if err := fs.Parse([]string{"-trace", tracePath, "-metrics", metricsPath}); err != nil {
		t.Fatal(err)
	}
	ts, err := cfg.Start("dmfb-test")
	if err != nil {
		t.Fatal(err)
	}
	if ts.Tracer == nil || ts.Metrics == nil {
		t.Fatal("sinks not opened")
	}
	ts.Metrics.Counter("work.items").Add(3)
	done := ts.Stage("work")
	time.Sleep(time.Millisecond)
	done()
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	for _, line := range lines {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("invalid trace line %q: %v", line, err)
		}
	}
	text := string(raw)
	for _, want := range []string{`"tool.start"`, `"stage.work"`, `"tool.run"`} {
		if !strings.Contains(text, want) {
			t.Errorf("trace missing %s:\n%s", want, text)
		}
	}

	mraw, err := os.ReadFile(metricsPath)
	if err != nil {
		t.Fatal(err)
	}
	var snap struct {
		Counters   map[string]int64          `json:"counters"`
		Histograms map[string]map[string]any `json:"histograms"`
		Spans      map[string]any            `json:"spans"`
	}
	if err := json.Unmarshal(mraw, &snap); err != nil {
		t.Fatalf("invalid metrics JSON: %v\n%s", err, mraw)
	}
	if snap.Counters["work.items"] != 3 {
		t.Errorf("work.items = %d, want 3", snap.Counters["work.items"])
	}
	if _, ok := snap.Histograms["stage.work_ms"]; !ok {
		t.Errorf("no stage.work_ms histogram: %s", mraw)
	}
	if _, ok := snap.Spans["stage.work"]; !ok {
		t.Errorf("no stage.work span summary: %s", mraw)
	}
}

func TestSessionProfileCapture(t *testing.T) {
	dir := t.TempDir()
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	if err := fs.Parse([]string{"-profile", filepath.Join(dir, "prof")}); err != nil {
		t.Fatal(err)
	}
	ts, err := cfg.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has something to record.
	x := 0
	for i := 0; i < 1_000_000; i++ {
		x += i * i
	}
	_ = x
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"cpu.pprof", "heap.pprof"} {
		fi, err := os.Stat(filepath.Join(dir, "prof", name))
		if err != nil {
			t.Errorf("%s not written: %v", name, err)
		} else if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestStartFailsOnBadTracePath(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	cfg := RegisterOn(fs)
	bad := filepath.Join(t.TempDir(), "missing-dir", "trace.jsonl")
	if err := fs.Parse([]string{"-trace", bad}); err != nil {
		t.Fatal(err)
	}
	if _, err := cfg.Start("tool"); err == nil {
		t.Error("Start succeeded with an uncreatable trace path")
	}
}

func TestNilSessionSafe(t *testing.T) {
	var ts *Session
	ts.Stage("x")()
	if err := ts.Close(); err != nil {
		t.Fatal(err)
	}
}
