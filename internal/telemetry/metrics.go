package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dmfb/internal/stats"
)

// Registry holds named metrics. All methods are safe for concurrent
// use, including metric creation; Counter/Gauge/Histogram return the
// same instrument for the same name. A nil *Registry is a valid
// disabled registry: lookups return nil instruments whose methods
// no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bucket upper bounds on first use (LatencyBuckets when none are
// given). Bounds must be sorted ascending; an implicit +Inf bucket
// catches the overflow. Later calls ignore the bounds argument.
func (r *Registry) Histogram(name string, bounds ...float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value float metric.
type Gauge struct{ bits atomic.Uint64 }

// Set records the current value.
func (g *Gauge) Set(v float64) {
	if g != nil {
		g.bits.Store(math.Float64bits(v))
	}
}

// Value returns the last value set (0 for a nil gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram is a fixed-bucket distribution metric: counts per bucket
// plus running count, sum, min and max. Observe is lock-free.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1; last is the +Inf bucket
	count   atomic.Int64
	sumBits atomic.Uint64
	minBits atomic.Uint64
	maxBits atomic.Uint64
}

func newHistogram(bounds []float64) *Histogram {
	if len(bounds) == 0 {
		bounds = LatencyBuckets
	}
	bounds = append([]float64(nil), bounds...)
	if !sort.Float64sAreSorted(bounds) {
		panic(fmt.Sprintf("telemetry: histogram bounds not sorted: %v", bounds))
	}
	h := &Histogram{bounds: bounds, buckets: make([]atomic.Int64, len(bounds)+1)}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one sample. Bucket i counts samples v <= bounds[i];
// samples above every bound land in the implicit +Inf bucket.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			break
		}
	}
	for {
		old := h.minBits.Load()
		if v >= math.Float64frombits(old) || h.minBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
	for {
		old := h.maxBits.Load()
		if v <= math.Float64frombits(old) || h.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			break
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of all observed samples.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Standard bucket layouts.
var (
	// LatencyBuckets covers sub-millisecond to tens of seconds, for
	// *_ms histograms.
	LatencyBuckets = []float64{0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
	// PathLenBuckets covers droplet path lengths in cells.
	PathLenBuckets = []float64{1, 2, 4, 8, 12, 16, 24, 32, 48, 64, 96, 128}
)

// ExpBuckets returns n upper bounds start, start*factor, ...
func ExpBuckets(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic(fmt.Sprintf("telemetry: invalid ExpBuckets(%v, %v, %d)", start, factor, n))
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// BucketCount is one histogram bucket in a snapshot.
type BucketCount struct {
	LE float64 `json:"le"` // upper bound; +Inf encoded as "inf"
	N  int64   `json:"n"`
}

// MarshalJSON encodes the +Inf bound as the string "inf" (JSON has no
// infinity literal).
func (b BucketCount) MarshalJSON() ([]byte, error) {
	type alias struct {
		LE any   `json:"le"`
		N  int64 `json:"n"`
	}
	a := alias{LE: b.LE, N: b.N}
	if math.IsInf(b.LE, 1) {
		a.LE = "inf"
	}
	return json.Marshal(a)
}

// UnmarshalJSON is the inverse of MarshalJSON: it accepts both a
// numeric bound and the string "inf", so metrics snapshots round-trip
// (dmfb-report reads them back).
func (b *BucketCount) UnmarshalJSON(data []byte) error {
	var a struct {
		LE json.RawMessage `json:"le"`
		N  int64           `json:"n"`
	}
	if err := json.Unmarshal(data, &a); err != nil {
		return err
	}
	b.N = a.N
	var s string
	if err := json.Unmarshal(a.LE, &s); err == nil {
		if s != "inf" {
			return fmt.Errorf("telemetry: bucket bound %q is neither a number nor \"inf\"", s)
		}
		b.LE = math.Inf(1)
		return nil
	}
	return json.Unmarshal(a.LE, &b.LE)
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   int64         `json:"count"`
	Sum     float64       `json:"sum"`
	Mean    float64       `json:"mean"`
	Min     float64       `json:"min"`
	Max     float64       `json:"max"`
	Buckets []BucketCount `json:"buckets"`
}

// Snapshot is a point-in-time copy of every metric, JSON-marshalable.
// Spans is optionally filled in by the caller from Tracer.Summaries.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      map[string]stats.Summary     `json:"spans,omitempty"`
}

// WriteJSON writes the snapshot as indented JSON followed by a
// newline.
func (s Snapshot) WriteJSON(w io.Writer) error {
	b, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// Snapshot captures every metric. Concurrent writers may race with
// the capture; each individual value is read atomically.
func (r *Registry) Snapshot() Snapshot {
	var s Snapshot
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		s.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
			if hs.Count > 0 {
				hs.Mean = hs.Sum / float64(hs.Count)
				hs.Min = math.Float64frombits(h.minBits.Load())
				hs.Max = math.Float64frombits(h.maxBits.Load())
			}
			for i := range h.buckets {
				le := math.Inf(1)
				if i < len(h.bounds) {
					le = h.bounds[i]
				}
				hs.Buckets = append(hs.Buckets, BucketCount{LE: le, N: h.buckets[i].Load()})
			}
			s.Histograms[name] = hs
		}
	}
	return s
}

// WriteJSON writes an indented JSON snapshot of the registry. A nil
// registry writes an empty object.
func (r *Registry) WriteJSON(w io.Writer) error {
	return r.Snapshot().WriteJSON(w)
}
