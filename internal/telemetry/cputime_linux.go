//go:build linux

package telemetry

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's cumulative user+system CPU
// time via getrusage(2).
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
