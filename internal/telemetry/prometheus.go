package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (format version 0.0.4) rendered straight
// from the registry, for the embedded ops server's /metrics endpoint.
// Metric names are prefixed "dmfb_" and dots become underscores, so
// "campaign.trial_ms" is exported as the histogram
// dmfb_campaign_trial_ms with cumulative _bucket/_sum/_count series
// plus a companion dmfb_campaign_trial_ms_q gauge carrying estimated
// p50/p90/p95/p99 quantiles.

// promQuantiles are the quantile estimates exported per histogram.
var promQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// WritePrometheus renders every metric in Prometheus text exposition
// format. Output is sorted by metric name, so it is deterministic for
// a fixed registry state. A nil registry writes nothing and returns
// nil.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	var b strings.Builder

	names := make([]string, 0, len(snap.Counters))
	for name := range snap.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, snap.Counters[name])
	}

	names = names[:0]
	for name := range snap.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %s\n", pn, pn, promFloat(snap.Gauges[name]))
	}

	names = names[:0]
	for name := range snap.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := snap.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		cum := int64(0)
		for _, bk := range h.Buckets {
			cum += bk.N
			le := "+Inf"
			if !math.IsInf(bk.LE, 1) {
				le = promFloat(bk.LE)
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %s\n", pn, promFloat(h.Sum))
		fmt.Fprintf(&b, "%s_count %d\n", pn, h.Count)
		if h.Count > 0 {
			fmt.Fprintf(&b, "# TYPE %s_q gauge\n", pn)
			for _, q := range promQuantiles {
				fmt.Fprintf(&b, "%s_q{quantile=%q} %s\n", pn, promFloat(q), promFloat(h.Quantile(q)))
			}
		}
	}

	_, err := io.WriteString(w, b.String())
	return err
}

// Quantile estimates the q-quantile (q in [0,1]) from the bucket
// counts by linear interpolation inside the spanning bucket — the
// same estimator as Prometheus's histogram_quantile, sharpened with
// the tracked exact Min and Max. It returns NaN for an empty
// histogram.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count <= 0 {
		return math.NaN()
	}
	if q <= 0 {
		return h.Min
	}
	if q >= 1 {
		return h.Max
	}
	rank := q * float64(h.Count)
	cum := int64(0)
	for i, bk := range h.Buckets {
		prev := cum
		cum += bk.N
		if float64(cum) < rank || bk.N == 0 {
			continue
		}
		// The rank falls in bucket i: interpolate between its bounds.
		lo := h.Min
		if i > 0 {
			lo = h.Buckets[i-1].LE
			if lo < h.Min {
				lo = h.Min
			}
		}
		hi := bk.LE
		if math.IsInf(hi, 1) || hi > h.Max {
			hi = h.Max
		}
		if hi <= lo {
			return hi
		}
		frac := (rank - float64(prev)) / float64(bk.N)
		v := lo + (hi-lo)*frac
		if v > h.Max {
			v = h.Max
		}
		return v
	}
	return h.Max
}

// promName mangles a dotted metric name into the Prometheus
// identifier charset with the toolkit namespace prefix.
func promName(name string) string {
	var b strings.Builder
	b.WriteString("dmfb_")
	for _, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == ':':
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// promFloat renders a float the way the exposition format expects.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
