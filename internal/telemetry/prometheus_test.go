package telemetry

import (
	"encoding/json"
	"math"
	"regexp"
	"strings"
	"testing"
)

// promLine matches one exposition sample line: name{labels} value.
var promLine = regexp.MustCompile(
	`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? (\+Inf|-Inf|NaN|[-+0-9.eE]+)$`)

func TestWritePrometheusGrammar(t *testing.T) {
	r := NewRegistry()
	r.Counter("campaign.trials").Add(42)
	r.Gauge("anneal.best_cost").Set(141.75)
	h := r.Histogram("campaign.trial_ms", 1, 10, 100)
	for _, v := range []float64{0.5, 2, 3, 20, 250} {
		h.Observe(v)
	}

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, line := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("line does not parse as exposition format: %q", line)
		}
	}
	for _, want := range []string{
		"# TYPE dmfb_campaign_trials counter\ndmfb_campaign_trials 42\n",
		"# TYPE dmfb_anneal_best_cost gauge\ndmfb_anneal_best_cost 141.75\n",
		"# TYPE dmfb_campaign_trial_ms histogram\n",
		`dmfb_campaign_trial_ms_bucket{le="1"} 1`,
		`dmfb_campaign_trial_ms_bucket{le="10"} 3`,
		`dmfb_campaign_trial_ms_bucket{le="100"} 4`,
		`dmfb_campaign_trial_ms_bucket{le="+Inf"} 5`,
		"dmfb_campaign_trial_ms_count 5\n",
		`dmfb_campaign_trial_ms_q{quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestWritePrometheusNilAndEmpty(t *testing.T) {
	var b strings.Builder
	var nilReg *Registry
	if err := nilReg.WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("nil registry: err=%v, wrote %q", err, b.String())
	}
	if err := NewRegistry().WritePrometheus(&b); err != nil || b.Len() != 0 {
		t.Errorf("empty registry: err=%v, wrote %q", err, b.String())
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4, 8, 16})
	// 1000 samples uniform on (0, 10]: quantile(q) ≈ 10q.
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) / 100)
	}
	snap := snapshotOf(h)
	for _, c := range []struct{ q, want, tol float64 }{
		{0.5, 5, 1.0},
		{0.95, 9.5, 1.0},
		{0, 0.01, 1e-9},  // exact Min
		{1, 10, 1e-9},    // exact Max
		{0.05, 0.5, 0.5}, // first bucket interpolates from Min, not 0
	} {
		got := snap.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("Quantile(%v) = %v, want %v ± %v", c.q, got, c.want, c.tol)
		}
	}
	if !math.IsNaN((HistogramSnapshot{}).Quantile(0.5)) {
		t.Error("empty histogram quantile is not NaN")
	}
}

// snapshotOf captures a single histogram through the registry path.
func snapshotOf(h *Histogram) HistogramSnapshot {
	r := NewRegistry()
	r.hists["h"] = h
	return r.Snapshot().Histograms["h"]
}

func TestBucketCountRoundTrip(t *testing.T) {
	in := []BucketCount{{LE: 0.5, N: 3}, {LE: math.Inf(1), N: 7}}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out []BucketCount
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != in[0] || !math.IsInf(out[1].LE, 1) || out[1].N != 7 {
		t.Errorf("round trip: %v -> %s -> %v", in, data, out)
	}
	if err := json.Unmarshal([]byte(`{"le":"wat","n":1}`), &out[0]); err == nil {
		t.Error("bad bound string accepted")
	}
}
