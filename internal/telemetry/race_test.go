package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

// Concurrent writers hammer a shared registry; run with -race. Totals
// must be exact: every atomic update must land.
func TestRegistryConcurrentHammering(t *testing.T) {
	const goroutines = 16
	const perG = 2000

	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Metric creation races with updates on purpose.
				r.Counter("ops").Inc()
				r.Gauge("last").Set(float64(i))
				r.Histogram("lat", 1, 4, 16, 64).Observe(float64(i % 100))
				if i%64 == 0 {
					r.Snapshot() // concurrent readers
				}
			}
		}(g)
	}
	wg.Wait()

	const total = goroutines * perG
	if v := r.Counter("ops").Value(); v != total {
		t.Errorf("counter = %d, want %d", v, total)
	}
	h := r.Snapshot().Histograms["lat"]
	if h.Count != total {
		t.Errorf("histogram count = %d, want %d", h.Count, total)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b.N
	}
	if bucketSum != total {
		t.Errorf("bucket sum = %d, want %d", bucketSum, total)
	}
	// Each goroutine observes 0..99 repeatedly: min 0, max 99, and the
	// CAS-looped sum must equal the exact arithmetic total.
	if h.Min != 0 || h.Max != 99 {
		t.Errorf("min/max = %v/%v, want 0/99", h.Min, h.Max)
	}
	perCycle := 0.0
	for i := 0; i < 100; i++ {
		perCycle += float64(i)
	}
	if want := perCycle * total / 100; h.Sum != want {
		t.Errorf("sum = %v, want %v", h.Sum, want)
	}
}

// Concurrent span and event emission must keep seq contiguous and one
// record per line.
func TestTracerConcurrentEmission(t *testing.T) {
	var mu sync.Mutex
	var buf strings.Builder
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	tr := New(w)

	const goroutines = 8
	const perG = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				sp := tr.Start("work")
				tr.Event("tick", Fields{"i": i})
				sp.End(nil)
			}
		}()
	}
	wg.Wait()

	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	mu.Unlock()
	if len(lines) != goroutines*perG*2 {
		t.Fatalf("%d lines, want %d", len(lines), goroutines*perG*2)
	}
	sums := tr.Summaries()
	if s := sums["work"]; s.N != goroutines*perG {
		t.Errorf("work summary N = %d, want %d", s.N, goroutines*perG)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

// StartStage must tolerate concurrent use and Stop must be callable
// more than once.
func TestStageClockConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := StartStage("stage")
			time.Sleep(time.Millisecond)
			st1 := c.Stop()
			st2 := c.Stop()
			if st1.Wall <= 0 {
				t.Errorf("wall = %v, want > 0", st1.Wall)
			}
			if st2.Wall < st1.Wall {
				t.Errorf("second Stop went backwards: %v < %v", st2.Wall, st1.Wall)
			}
		}()
	}
	wg.Wait()
}
