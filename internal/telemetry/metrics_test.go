package telemetry

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	if r.Counter("x") != c {
		t.Error("same name returned a different counter")
	}
	g := r.Gauge("y")
	g.Set(2.5)
	g.Set(-1)
	if g.Value() != -1 {
		t.Errorf("gauge = %v, want -1", g.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", 1, 10, 100)
	for _, v := range []float64{0.5, 1, 5, 10, 99, 100, 101, 1e9} {
		h.Observe(v)
	}
	snap := r.Snapshot().Histograms["lat"]
	if snap.Count != 8 {
		t.Fatalf("count = %d, want 8", snap.Count)
	}
	// le semantics: bucket i counts v <= bounds[i] (and > bounds[i-1]).
	wantN := []int64{2, 2, 2, 2} // [<=1, <=10, <=100, +Inf]
	for i, b := range snap.Buckets {
		if b.N != wantN[i] {
			t.Errorf("bucket %d (le %v) = %d, want %d", i, b.LE, b.N, wantN[i])
		}
	}
	if snap.Min != 0.5 || snap.Max != 1e9 {
		t.Errorf("min/max = %v/%v, want 0.5/1e9", snap.Min, snap.Max)
	}
	if want := (0.5 + 1 + 5 + 10 + 99 + 100 + 101 + 1e9) / 8; snap.Mean != want {
		t.Errorf("mean = %v, want %v", snap.Mean, want)
	}
}

func TestHistogramDefaultsAndPanics(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("default")
	h.Observe(1)
	if got := len(r.Snapshot().Histograms["default"].Buckets); got != len(LatencyBuckets)+1 {
		t.Errorf("default buckets = %d, want %d", got, len(LatencyBuckets)+1)
	}
	defer func() {
		if recover() == nil {
			t.Error("unsorted bounds did not panic")
		}
	}()
	r.Histogram("bad", 10, 1)
}

func TestExpBuckets(t *testing.T) {
	got := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ExpBuckets = %v, want %v", got, want)
		}
	}
}

func TestNilRegistryAndInstrumentsNoOp(t *testing.T) {
	var r *Registry
	r.Counter("a").Inc()
	r.Gauge("b").Set(1)
	r.Histogram("c", 1, 2).Observe(5)
	if v := r.Counter("a").Value(); v != 0 {
		t.Errorf("nil counter value = %d", v)
	}
	if v := r.Gauge("b").Value(); v != 0 {
		t.Errorf("nil gauge value = %v", v)
	}
	if v := r.Histogram("c").Count(); v != 0 {
		t.Errorf("nil histogram count = %d", v)
	}
	snap := r.Snapshot()
	if snap.Counters != nil || snap.Gauges != nil || snap.Histograms != nil {
		t.Error("nil registry snapshot not empty")
	}
	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.TrimSpace(buf.String()) != "{}" {
		t.Errorf("nil registry JSON = %q, want {}", buf.String())
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits").Add(3)
	r.Gauge("rate").Set(0.25)
	r.Histogram("ms", 1, 10).Observe(5)

	var buf strings.Builder
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]float64
		Histograms map[string]struct {
			Count   int64
			Buckets []struct {
				LE any `json:"le"`
				N  int64
			}
		}
	}
	if err := json.Unmarshal([]byte(buf.String()), &decoded); err != nil {
		t.Fatalf("snapshot is not valid JSON: %v\n%s", err, buf.String())
	}
	if decoded.Counters["hits"] != 3 || decoded.Gauges["rate"] != 0.25 {
		t.Errorf("decoded %+v", decoded)
	}
	h := decoded.Histograms["ms"]
	if h.Count != 1 {
		t.Errorf("histogram count = %d", h.Count)
	}
	// The +Inf bucket must encode as the string "inf" (JSON has no
	// infinity literal).
	last := h.Buckets[len(h.Buckets)-1]
	if last.LE != "inf" {
		t.Errorf(`+Inf bucket le = %v (%T), want "inf"`, last.LE, last.LE)
	}
}

func TestBucketCountMarshalFinite(t *testing.T) {
	b, err := json.Marshal(BucketCount{LE: 2.5, N: 7})
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"le":2.5,"n":7}` {
		t.Errorf("marshal = %s", b)
	}
	if _, err := json.Marshal(BucketCount{LE: math.Inf(1), N: 0}); err != nil {
		t.Fatalf("+Inf bucket failed to marshal: %v", err)
	}
}
