// Package telemetry is the stdlib-only observability layer of the
// toolkit: a structured trace emitter (typed events and spans written
// as JSONL to any io.Writer), a metrics registry (named counters,
// gauges and fixed-bucket histograms, safe for concurrent use), and
// per-stage wall/CPU timing plus pprof capture hooks.
//
// Every entry point is nil-safe: a nil *Tracer, *Registry, *Counter,
// *Gauge or *Histogram turns the corresponding call into a no-op, so
// instrumented hot paths pay a single nil check when telemetry is
// disabled.
//
// Trace schema (one JSON object per line):
//
//		{"seq":3,"t_us":1042,"kind":"event","name":"sim.fault","fields":{...}}
//		{"seq":4,"t_us":1042,"kind":"span","name":"anneal.level","dur_us":981,"fields":{...}}
//
//	  - seq    strictly increasing emission sequence number
//	  - t_us   microseconds since the tracer was created (monotonic
//	           clock); for spans this is the span's start time
//	  - kind   "event" (a point in time) or "span" (a completed
//	           duration, carrying dur_us)
//	  - name   dotted stage.verb identifier, e.g. "anneal.level",
//	           "sim.reconfig", "cli.run"
//	  - fields free-form payload; keys are sorted by the JSON encoder,
//	           so output is deterministic given deterministic inputs
//
// Records are ordered by seq (emission order). Because a span is
// emitted when it ends, its t_us may precede that of an earlier line.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"time"

	"dmfb/internal/stats"
)

// Fields is the free-form payload of a trace record.
type Fields map[string]any

// maxSpanSamples bounds the per-name duration samples kept for
// Summaries, so long campaigns cannot grow memory without bound.
const maxSpanSamples = 8192

// Tracer writes structured trace records as JSONL. Create one with
// New (or NewWithClock for deterministic tests); the zero value is not
// usable, but a nil *Tracer is: every method no-ops.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	clock func() time.Duration // monotonic time since tracer creation
	seq   uint64
	err   error
	durs  map[string][]float64 // span duration samples in milliseconds
}

// New returns a Tracer emitting JSONL records to w. Timestamps are
// microseconds since this call, taken from the monotonic clock.
func New(w io.Writer) *Tracer {
	start := time.Now()
	return NewWithClock(w, func() time.Duration { return time.Since(start) })
}

// NewWithClock is New with an injectable monotonic clock, for
// deterministic (golden-output) tests.
func NewWithClock(w io.Writer, clock func() time.Duration) *Tracer {
	return &Tracer{w: w, clock: clock, durs: make(map[string][]float64)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Err returns the first write or encoding error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// record is the wire format of one JSONL line.
type record struct {
	Seq    uint64 `json:"seq"`
	TUS    int64  `json:"t_us"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	DurUS  int64  `json:"dur_us,omitempty"`
	Fields Fields `json:"fields,omitempty"`
}

// Event emits a point-in-time record.
func (t *Tracer) Event(name string, fields Fields) {
	if t == nil {
		return
	}
	t.emit(record{TUS: t.clock().Microseconds(), Kind: "event", Name: name, Fields: fields})
}

// EmitSpan emits a completed span retrospectively: a span of the
// given duration ending now. Used when the caller measured the
// duration itself (e.g. anneal.Level.Duration).
func (t *Tracer) EmitSpan(name string, dur time.Duration, fields Fields) {
	if t == nil {
		return
	}
	end := t.clock()
	start := end - dur
	if start < 0 {
		start = 0
	}
	t.emit(record{TUS: start.Microseconds(), Kind: "span", Name: name,
		DurUS: dur.Microseconds(), Fields: fields})
	t.sample(name, dur)
}

// Span is an in-flight span started by Start. The zero Span (from a
// nil tracer) is valid and End no-ops.
type Span struct {
	t     *Tracer
	name  string
	start time.Duration
}

// Start begins a span. End emits it as one "span" record.
func (t *Tracer) Start(name string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: t.clock()}
}

// End completes the span, attaching the given fields.
func (s Span) End(fields Fields) {
	if s.t == nil {
		return
	}
	dur := s.t.clock() - s.start
	s.t.emit(record{TUS: s.start.Microseconds(), Kind: "span", Name: s.name,
		DurUS: dur.Microseconds(), Fields: fields})
	s.t.sample(s.name, dur)
}

func (t *Tracer) emit(rec record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	rec.Seq = t.seq
	b, err := json.Marshal(rec)
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

func (t *Tracer) sample(name string, dur time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.durs[name]) < maxSpanSamples {
		t.durs[name] = append(t.durs[name], float64(dur)/float64(time.Millisecond))
	}
}

// Summaries returns descriptive statistics of span durations (in
// milliseconds) per span name, for end-of-run reporting. Only the
// first maxSpanSamples spans per name contribute.
func (t *Tracer) Summaries() map[string]stats.Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.durs) == 0 {
		return nil
	}
	out := make(map[string]stats.Summary, len(t.durs))
	for name, ds := range t.durs {
		out[name] = stats.Describe(ds)
	}
	return out
}
