// Package telemetry is the stdlib-only observability layer of the
// toolkit: a structured trace emitter (typed events and hierarchical
// spans written as JSONL to any io.Writer), a metrics registry (named
// counters, gauges and fixed-bucket histograms, safe for concurrent
// use), per-stage wall/CPU timing, pprof capture hooks, and a
// Prometheus text renderer for the embedded ops server.
//
// Every entry point is nil-safe: a nil *Tracer, *Registry, *Counter,
// *Gauge or *Histogram turns the corresponding call into a no-op, so
// instrumented hot paths pay a single nil check when telemetry is
// disabled.
//
// Trace schema (one JSON object per line):
//
//		{"seq":3,"t_us":1042,"kind":"event","name":"sim.fault","par":2,"fields":{...}}
//		{"seq":4,"t_us":1042,"kind":"span","name":"anneal.level","id":5,"par":2,"dur_us":981,"fields":{...}}
//
//	  - seq    strictly increasing emission sequence number
//	  - t_us   microseconds since the tracer was created (monotonic
//	           clock); for spans this is the span's start time
//	  - kind   "event" (a point in time) or "span" (a completed
//	           duration, carrying dur_us)
//	  - name   dotted stage.verb identifier, e.g. "anneal.level",
//	           "sim.reconfig", "cli.run"
//	  - id     the span's identifier, unique within the trace (spans
//	           only; ids start at 1)
//	  - par    id of the enclosing span, omitted at the root — the
//	           edge that makes the trace a reconstructable tree
//	           (anneal→place→fti, campaign→trial→recovery)
//	  - fields free-form payload; keys are sorted by the JSON encoder,
//	           so output is deterministic given deterministic inputs
//
// Records are ordered by seq (emission order). Because a span is
// emitted when it ends, its t_us may precede that of an earlier line,
// and a parent span always appears after its children.
package telemetry

import (
	"encoding/json"
	"io"
	"sync"
	"sync/atomic"
	"time"

	"dmfb/internal/stats"
)

// Fields is the free-form payload of a trace record.
type Fields map[string]any

// SpanID identifies one span within a trace. The zero SpanID means
// "no explicit span": as a parent argument it falls back to the
// tracer's default parent (see SwapDefaultParent).
type SpanID uint64

// maxSpanSamples bounds the per-name duration samples kept for
// Summaries, so long campaigns cannot grow memory without bound.
const maxSpanSamples = 8192

// Tracer writes structured trace records as JSONL. Create one with
// New (or NewWithClock for deterministic tests); the zero value is not
// usable, but a nil *Tracer is: every method no-ops.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	clock func() time.Duration // monotonic time since tracer creation
	seq   uint64
	err   error
	durs  map[string][]float64 // span duration samples in milliseconds

	ids    atomic.Uint64 // span id allocator
	parent atomic.Uint64 // default parent for zero-SpanID emissions
}

// New returns a Tracer emitting JSONL records to w. Timestamps are
// microseconds since this call, taken from the monotonic clock.
func New(w io.Writer) *Tracer {
	start := time.Now()
	return NewWithClock(w, func() time.Duration { return time.Since(start) })
}

// NewWithClock is New with an injectable monotonic clock, for
// deterministic (golden-output) tests.
func NewWithClock(w io.Writer, clock func() time.Duration) *Tracer {
	return &Tracer{w: w, clock: clock, durs: make(map[string][]float64)}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Err returns the first write or encoding error encountered, if any.
func (t *Tracer) Err() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.err
}

// SwapDefaultParent sets the parent attached to spans and events
// emitted without an explicit one and returns the previous default.
// Single-threaded pipeline drivers (the CLI stage wrappers) use it to
// nest instrumented library code under the current stage span;
// concurrent emitters must pass explicit parents instead.
func (t *Tracer) SwapDefaultParent(p SpanID) SpanID {
	if t == nil {
		return 0
	}
	return SpanID(t.parent.Swap(uint64(p)))
}

// resolve maps the zero SpanID to the tracer's default parent.
func (t *Tracer) resolve(p SpanID) SpanID {
	if p != 0 {
		return p
	}
	return SpanID(t.parent.Load())
}

// record is the wire format of one JSONL line.
type record struct {
	Seq    uint64 `json:"seq"`
	TUS    int64  `json:"t_us"`
	Kind   string `json:"kind"`
	Name   string `json:"name"`
	ID     uint64 `json:"id,omitempty"`
	Parent uint64 `json:"par,omitempty"`
	DurUS  int64  `json:"dur_us,omitempty"`
	Fields Fields `json:"fields,omitempty"`
}

// Event emits a point-in-time record under the default parent.
func (t *Tracer) Event(name string, fields Fields) {
	t.EventIn(name, 0, fields)
}

// EventIn emits a point-in-time record under the given span (zero:
// the default parent).
func (t *Tracer) EventIn(name string, parent SpanID, fields Fields) {
	if t == nil {
		return
	}
	t.emit(record{TUS: t.clock().Microseconds(), Kind: "event", Name: name,
		Parent: uint64(t.resolve(parent)), Fields: fields})
}

// EmitSpan emits a completed span retrospectively: a span of the
// given duration ending now, under the default parent. Used when the
// caller measured the duration itself (e.g. anneal.Level.Duration).
func (t *Tracer) EmitSpan(name string, dur time.Duration, fields Fields) {
	t.EmitSpanIn(name, 0, dur, fields)
}

// EmitSpanIn is EmitSpan under an explicit parent span (zero: the
// default parent).
func (t *Tracer) EmitSpanIn(name string, parent SpanID, dur time.Duration, fields Fields) {
	if t == nil {
		return
	}
	end := t.clock()
	start := end - dur
	if start < 0 {
		start = 0
	}
	t.emit(record{TUS: start.Microseconds(), Kind: "span", Name: name,
		ID: t.ids.Add(1), Parent: uint64(t.resolve(parent)),
		DurUS: dur.Microseconds(), Fields: fields})
	t.sample(name, dur)
}

// Span is an in-flight span started by Start or StartChild. The zero
// Span (from a nil tracer) is valid: End no-ops and ID returns 0, so
// a child started under it becomes a root.
type Span struct {
	t      *Tracer
	name   string
	start  time.Duration
	id     SpanID
	parent SpanID
}

// Start begins a span under the default parent. End emits it as one
// "span" record.
func (t *Tracer) Start(name string) Span { return t.StartChild(name, 0) }

// StartChild begins a span under an explicit parent (zero: the
// default parent). The span's id is allocated immediately, so nested
// work can reference it before End.
func (t *Tracer) StartChild(name string, parent SpanID) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, start: t.clock(), id: SpanID(t.ids.Add(1)), parent: t.resolve(parent)}
}

// ID returns the span's identifier (0 for the zero Span).
func (s Span) ID() SpanID { return s.id }

// StartChild begins a child span of s.
func (s Span) StartChild(name string) Span {
	if s.t == nil {
		return Span{}
	}
	return s.t.StartChild(name, s.id)
}

// Event emits a point-in-time record inside s.
func (s Span) Event(name string, fields Fields) {
	if s.t == nil {
		return
	}
	s.t.EventIn(name, s.id, fields)
}

// End completes the span, attaching the given fields.
func (s Span) End(fields Fields) {
	if s.t == nil {
		return
	}
	dur := s.t.clock() - s.start
	s.t.emit(record{TUS: s.start.Microseconds(), Kind: "span", Name: s.name,
		ID: uint64(s.id), Parent: uint64(s.parent),
		DurUS: dur.Microseconds(), Fields: fields})
	s.t.sample(s.name, dur)
}

func (t *Tracer) emit(rec record) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	rec.Seq = t.seq
	b, err := json.Marshal(rec)
	if err != nil {
		if t.err == nil {
			t.err = err
		}
		return
	}
	b = append(b, '\n')
	if _, err := t.w.Write(b); err != nil && t.err == nil {
		t.err = err
	}
}

func (t *Tracer) sample(name string, dur time.Duration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.durs[name]) < maxSpanSamples {
		t.durs[name] = append(t.durs[name], float64(dur)/float64(time.Millisecond))
	}
}

// Summaries returns descriptive statistics of span durations (in
// milliseconds) per span name, for end-of-run reporting. Only the
// first maxSpanSamples spans per name contribute.
func (t *Tracer) Summaries() map[string]stats.Summary {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.durs) == 0 {
		return nil
	}
	out := make(map[string]stats.Summary, len(t.durs))
	for name, ds := range t.durs {
		out[name] = stats.Describe(ds)
	}
	return out
}
