//go:build !linux && !darwin

package telemetry

import "time"

// processCPUTime is unsupported on this platform; stage CPU timings
// read as zero.
func processCPUTime() time.Duration { return 0 }
