//go:build linux || darwin

package telemetry

import (
	"syscall"
	"time"
)

// processCPUTime returns the process's cumulative user+system CPU
// time via getrusage(2). Linux and darwin share the call; both
// expose the rusage timevals through the syscall package.
func processCPUTime() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return time.Duration(ru.Utime.Nano() + ru.Stime.Nano())
}
