package telemetry

import (
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a clock advancing by step on every reading.
func fakeClock(step time.Duration) func() time.Duration {
	var now time.Duration
	return func() time.Duration {
		now += step
		return now
	}
}

// The golden JSONL output for a fixed clock: the full wire format is
// part of the tool contract (external consumers parse it).
func TestTracerGoldenOutput(t *testing.T) {
	var buf strings.Builder
	tr := NewWithClock(&buf, fakeClock(100*time.Microsecond))

	tr.Event("sim.fault", Fields{"t_sec": 1, "cell": "(3,4)"})
	sp := tr.Start("anneal.level")                 // reads clock: 200us
	sp.End(Fields{"level": 0})                     // reads clock: 300us -> dur 100us
	tr.EmitSpan("route", 50*time.Microsecond, nil) // reads clock: 400us -> start 350us
	tr.Event("done", nil)

	want := strings.Join([]string{
		`{"seq":1,"t_us":100,"kind":"event","name":"sim.fault","fields":{"cell":"(3,4)","t_sec":1}}`,
		`{"seq":2,"t_us":200,"kind":"span","name":"anneal.level","dur_us":100,"fields":{"level":0}}`,
		`{"seq":3,"t_us":350,"kind":"span","name":"route","dur_us":50}`,
		`{"seq":4,"t_us":500,"kind":"event","name":"done"}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("trace output mismatch:\ngot:\n%swant:\n%s", got, want)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Event("x", Fields{"a": 1}) // must not panic
	sp := tr.Start("y")
	sp.End(nil)
	tr.EmitSpan("z", time.Second, nil)
	if tr.Err() != nil {
		t.Error("nil tracer reports an error")
	}
	if tr.Summaries() != nil {
		t.Error("nil tracer reports summaries")
	}
}

type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestTracerErrSticky(t *testing.T) {
	wantErr := errors.New("disk full")
	tr := NewWithClock(failWriter{wantErr}, fakeClock(time.Microsecond))
	tr.Event("a", nil)
	tr.Event("b", nil)
	if !errors.Is(tr.Err(), wantErr) {
		t.Errorf("Err() = %v, want %v", tr.Err(), wantErr)
	}
}

func TestTracerEmitSpanClampsNegativeStart(t *testing.T) {
	var buf strings.Builder
	tr := NewWithClock(&buf, fakeClock(10*time.Microsecond))
	tr.EmitSpan("long", time.Hour, nil) // dur exceeds elapsed time
	if !strings.Contains(buf.String(), `"t_us":0`) {
		t.Errorf("span start not clamped to 0: %s", buf.String())
	}
}

func TestTracerSummaries(t *testing.T) {
	var buf strings.Builder
	tr := NewWithClock(&buf, fakeClock(time.Microsecond))
	for i := 0; i < 5; i++ {
		tr.EmitSpan("stage.place", 2*time.Millisecond, nil)
	}
	tr.EmitSpan("stage.route", 4*time.Millisecond, nil)

	sums := tr.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries for %d names, want 2", len(sums))
	}
	if s := sums["stage.place"]; s.N != 5 || s.Mean != 2 {
		t.Errorf("stage.place summary = %+v, want N=5 Mean=2ms", s)
	}
	if s := sums["stage.route"]; s.N != 1 || s.Max != 4 {
		t.Errorf("stage.route summary = %+v, want N=1 Max=4ms", s)
	}
}

func TestTracerSeqStrictlyIncreasing(t *testing.T) {
	var buf strings.Builder
	tr := NewWithClock(&buf, fakeClock(time.Microsecond))
	for i := 0; i < 10; i++ {
		tr.Event("tick", nil)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines, want 10", len(lines))
	}
	for i, l := range lines {
		if !strings.Contains(l, `"seq":`+strconv.Itoa(i+1)+`,`) {
			t.Errorf("line %d missing seq %d: %s", i, i+1, l)
		}
	}
}
