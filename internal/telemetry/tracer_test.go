package telemetry

import (
	"encoding/json"
	"errors"
	"strconv"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a clock advancing by step on every reading.
func fakeClock(step time.Duration) func() time.Duration {
	var now time.Duration
	return func() time.Duration {
		now += step
		return now
	}
}

// The golden JSONL output for a fixed clock: the full wire format is
// part of the tool contract (external consumers parse it).
func TestTracerGoldenOutput(t *testing.T) {
	var buf strings.Builder
	tr := NewWithClock(&buf, fakeClock(100*time.Microsecond))

	tr.Event("sim.fault", Fields{"t_sec": 1, "cell": "(3,4)"})
	sp := tr.Start("anneal.level")                 // reads clock: 200us
	sp.End(Fields{"level": 0})                     // reads clock: 300us -> dur 100us
	tr.EmitSpan("route", 50*time.Microsecond, nil) // reads clock: 400us -> start 350us
	tr.Event("done", nil)

	want := strings.Join([]string{
		`{"seq":1,"t_us":100,"kind":"event","name":"sim.fault","fields":{"cell":"(3,4)","t_sec":1}}`,
		`{"seq":2,"t_us":200,"kind":"span","name":"anneal.level","id":1,"dur_us":100,"fields":{"level":0}}`,
		`{"seq":3,"t_us":350,"kind":"span","name":"route","id":2,"dur_us":50}`,
		`{"seq":4,"t_us":500,"kind":"event","name":"done"}`,
	}, "\n") + "\n"
	if got := buf.String(); got != want {
		t.Errorf("trace output mismatch:\ngot:\n%swant:\n%s", got, want)
	}
	if err := tr.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestNilTracerNoOps(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Event("x", Fields{"a": 1}) // must not panic
	sp := tr.Start("y")
	sp.End(nil)
	tr.EmitSpan("z", time.Second, nil)
	tr.EventIn("w", 3, nil)
	tr.EmitSpanIn("v", 3, time.Second, nil)
	if tr.SwapDefaultParent(7) != 0 {
		t.Error("nil tracer has a default parent")
	}
	child := sp.StartChild("grandchild") // zero Span: child is inert too
	child.End(nil)
	sp.Event("inside", nil)
	if sp.ID() != 0 {
		t.Error("zero span has an id")
	}
	if tr.Err() != nil {
		t.Error("nil tracer reports an error")
	}
	if tr.Summaries() != nil {
		t.Error("nil tracer reports summaries")
	}
}

// TestNilTracerZeroAlloc pins the disabled-telemetry hot path: span
// bookkeeping on a nil tracer must not allocate, because it runs
// inside the annealing and campaign inner loops.
func TestNilTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	allocs := testing.AllocsPerRun(1000, func() {
		sp := tr.Start("hot")
		c := sp.StartChild("hotter")
		c.End(nil)
		sp.End(nil)
		tr.EmitSpanIn("loop", sp.ID(), time.Microsecond, nil)
	})
	if allocs != 0 {
		t.Errorf("nil-tracer span path allocated %.1f times per run, want 0", allocs)
	}
}

// TestSpanHierarchy checks that explicit parents, Span.StartChild and
// the default parent reconstruct into one tree.
func TestSpanHierarchy(t *testing.T) {
	var buf strings.Builder
	tr := NewWithClock(&buf, fakeClock(time.Microsecond))

	root := tr.Start("tool.run")
	prev := tr.SwapDefaultParent(root.ID())
	if prev != 0 {
		t.Fatalf("initial default parent = %d, want 0", prev)
	}
	stage := tr.Start("stage.place") // default parent -> root
	tr.EmitSpanIn("anneal.level", stage.ID(), time.Microsecond, nil)
	trial := stage.StartChild("campaign.trial")
	trial.Event("sim.fault", nil)
	trial.End(nil)
	stage.End(nil)
	tr.SwapDefaultParent(prev)
	root.End(nil)

	type rec struct {
		Kind string `json:"kind"`
		Name string `json:"name"`
		ID   uint64 `json:"id"`
		Par  uint64 `json:"par"`
	}
	parentOf := map[string]uint64{}
	idOf := map[string]uint64{}
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		parentOf[r.Name] = r.Par
		idOf[r.Name] = r.ID
	}
	if idOf["tool.run"] == 0 || parentOf["tool.run"] != 0 {
		t.Errorf("root span: id=%d par=%d, want id>0 par=0", idOf["tool.run"], parentOf["tool.run"])
	}
	for child, parent := range map[string]string{
		"stage.place":    "tool.run",
		"anneal.level":   "stage.place",
		"campaign.trial": "stage.place",
		"sim.fault":      "campaign.trial",
	} {
		if parentOf[child] != idOf[parent] {
			t.Errorf("%s has par=%d, want %s's id %d", child, parentOf[child], parent, idOf[parent])
		}
	}
}

type failWriter struct{ err error }

func (w failWriter) Write([]byte) (int, error) { return 0, w.err }

func TestTracerErrSticky(t *testing.T) {
	wantErr := errors.New("disk full")
	tr := NewWithClock(failWriter{wantErr}, fakeClock(time.Microsecond))
	tr.Event("a", nil)
	tr.Event("b", nil)
	if !errors.Is(tr.Err(), wantErr) {
		t.Errorf("Err() = %v, want %v", tr.Err(), wantErr)
	}
}

func TestTracerEmitSpanClampsNegativeStart(t *testing.T) {
	var buf strings.Builder
	tr := NewWithClock(&buf, fakeClock(10*time.Microsecond))
	tr.EmitSpan("long", time.Hour, nil) // dur exceeds elapsed time
	if !strings.Contains(buf.String(), `"t_us":0`) {
		t.Errorf("span start not clamped to 0: %s", buf.String())
	}
}

func TestTracerSummaries(t *testing.T) {
	var buf strings.Builder
	tr := NewWithClock(&buf, fakeClock(time.Microsecond))
	for i := 0; i < 5; i++ {
		tr.EmitSpan("stage.place", 2*time.Millisecond, nil)
	}
	tr.EmitSpan("stage.route", 4*time.Millisecond, nil)

	sums := tr.Summaries()
	if len(sums) != 2 {
		t.Fatalf("summaries for %d names, want 2", len(sums))
	}
	if s := sums["stage.place"]; s.N != 5 || s.Mean != 2 {
		t.Errorf("stage.place summary = %+v, want N=5 Mean=2ms", s)
	}
	if s := sums["stage.route"]; s.N != 1 || s.Max != 4 {
		t.Errorf("stage.route summary = %+v, want N=1 Max=4ms", s)
	}
}

func TestTracerSeqStrictlyIncreasing(t *testing.T) {
	var buf strings.Builder
	tr := NewWithClock(&buf, fakeClock(time.Microsecond))
	for i := 0; i < 10; i++ {
		tr.Event("tick", nil)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 10 {
		t.Fatalf("%d lines, want 10", len(lines))
	}
	for i, l := range lines {
		if !strings.Contains(l, `"seq":`+strconv.Itoa(i+1)+`,`) {
			t.Errorf("line %d missing seq %d: %s", i, i+1, l)
		}
	}
}
