package telemetry

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
)

// Profiler captures CPU and heap profiles for one run. Create with
// StartProfiles; Stop finishes both captures. A nil *Profiler is a
// valid disabled profiler.
type Profiler struct {
	dir     string
	cpuFile *os.File
}

// StartProfiles creates dir if needed and starts a CPU profile into
// dir/cpu.pprof. Stop completes it and writes dir/heap.pprof.
func StartProfiles(dir string) (*Profiler, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("telemetry: profile dir: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, "cpu.pprof"))
	if err != nil {
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("telemetry: cpu profile: %w", err)
	}
	return &Profiler{dir: dir, cpuFile: f}, nil
}

// Stop ends the CPU profile and writes a heap profile (after a GC, so
// it reflects live objects). Safe to call on a nil Profiler.
func (p *Profiler) Stop() error {
	if p == nil {
		return nil
	}
	pprof.StopCPUProfile()
	err := p.cpuFile.Close()
	hf, herr := os.Create(filepath.Join(p.dir, "heap.pprof"))
	if herr != nil {
		if err == nil {
			err = herr
		}
		return err
	}
	runtime.GC()
	if werr := pprof.WriteHeapProfile(hf); werr != nil && err == nil {
		err = werr
	}
	if cerr := hf.Close(); cerr != nil && err == nil {
		err = cerr
	}
	return err
}
