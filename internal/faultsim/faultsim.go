// Package faultsim evaluates fault-tolerance claims empirically by
// Monte-Carlo fault injection: random cells are declared faulty and
// partial reconfiguration is attempted, measuring the fraction of
// faults the configuration survives. Under the paper's uniform
// single-fault model this fraction is exactly what the fault tolerance
// index predicts, which the exhaustive variant verifies cell by cell.
// A sequential multi-fault mode extends the analysis beyond the
// paper's single-fault assumption (testing and reconfiguration between
// failures), measuring how placements degrade as faults accumulate.
//
// All campaigns execute on the internal/campaign engine. The
// functions in this file are the historical sequential entry points,
// kept bit-identical to their pre-engine implementations (pinned by
// golden tests): they draw trial randomness the way the old
// single-threaded loops did — one shared stream in trial order — and
// parallelise only where that stream's draw order cannot observe trial
// outcomes (SingleFault, Yield, the exhaustive sweep). For new code,
// build campaigns directly from the trial constructors in trials.go,
// which use per-trial streams and scale to any worker count.
package faultsim

import (
	"context"
	"fmt"
	"math/rand"

	"dmfb/internal/campaign"
	"dmfb/internal/core"
	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/reconfig"
	"dmfb/internal/stats"
)

// Summary reports a fault-injection campaign.
type Summary struct {
	Trials       int
	Survived     int
	PredictedFTI float64 // the placement's FTI before any fault
}

// SurvivalRate returns the measured fraction of survived trials.
func (s Summary) SurvivalRate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.Survived) / float64(s.Trials)
}

// ConfidenceInterval95 returns the Wilson 95% confidence interval on
// the measured survival rate; with the paper's uniform fault model the
// placement's FTI should fall inside it.
func (s Summary) ConfidenceInterval95() (lo, hi float64) {
	return stats.Wilson95(s.Survived, s.Trials)
}

// String summarises the campaign.
func (s Summary) String() string {
	return fmt.Sprintf("survived %d/%d (%.4f measured vs %.4f FTI predicted)",
		s.Survived, s.Trials, s.SurvivalRate(), s.PredictedFTI)
}

// run executes cfg on the campaign engine and converts the aggregate
// to the package's Summary. The context is Background and no timeout
// is set, so every preset remains a deterministic pure function of its
// arguments.
func run(p *place.Placement, cfg campaign.Config, fn campaign.TrialFunc) Summary {
	rep, err := campaign.Run(context.Background(), cfg, fn)
	if err != nil {
		// No checkpoint, no cancellable context: Run can only fail on
		// invalid configuration, which is a bug in this package.
		panic(fmt.Sprintf("faultsim: campaign engine rejected preset config: %v", err))
	}
	return Summary{
		Trials:       rep.Summary.Trials,
		Survived:     rep.Summary.Survived,
		PredictedFTI: fti.Compute(p).FTI(),
	}
}

// SingleFault samples `trials` uniform random cells of the placement's
// array and attempts partial reconfiguration for each, independently
// (the placement is not cumulatively modified). By the law of large
// numbers the survival rate converges to the FTI.
//
// The fault cells are drawn up front from the legacy shared stream —
// single-fault trials consume a fixed two draws each, so the inputs do
// not depend on outcomes — and the trials then run on the engine's
// worker pool: identical results to the historical sequential loop, at
// any worker count.
func SingleFault(p *place.Placement, trials int, seed int64) Summary {
	array := p.BoundingBox()
	rng := rand.New(rand.NewSource(seed))
	cells := make([]geom.Point, trials)
	for i := range cells {
		cells[i] = geom.Point{
			X: array.X + rng.Intn(array.W),
			Y: array.Y + rng.Intn(array.H),
		}
	}
	return run(p, campaign.Config{Name: "single-fault", Trials: trials, Seed: seed},
		func(_ context.Context, t campaign.Trial) campaign.Outcome {
			rels, err := reconfig.Plan(p, array, cells[t.Index])
			if err != nil {
				return campaign.Outcome{}
			}
			return campaign.Outcome{Survived: true, Value: float64(len(rels))}
		})
}

// ExhaustiveSingleFault attempts reconfiguration for every cell of the
// array. Its survival rate equals the FTI exactly.
func ExhaustiveSingleFault(p *place.Placement) Summary {
	array := p.BoundingBox()
	return run(p, campaign.Config{Name: "exhaustive", Trials: array.Cells()}, ExhaustiveTrial(p))
}

// MultiFault injects k distinct faults sequentially, reconfiguring
// after each (testing between failures localises them one at a time).
// Earlier faults remain as dead cells that later relocations must
// avoid. One trial survives if all k faults are recovered from.
//
// The historical draw order interleaves fault sampling with recovery
// outcomes (a failed trial stops drawing), so this preset runs in the
// engine's SharedRNG mode: one worker, one stream, bit-identical to
// the pre-engine loop. For a parallel variant use MultiFaultTrial.
func MultiFault(p *place.Placement, k, trials int, seed int64) Summary {
	return multiFault(p, k, trials, seed, false, core.Options{})
}

// MultiFaultFull is MultiFault with full reconfiguration as a
// fallback: when partial reconfiguration cannot absorb a fault, the
// entire module set is re-placed from scratch around the accumulated
// dead cells (core.FullReconfigure) within the original array bounds.
// The paper motivates partial reconfiguration by its speed; this
// campaign quantifies how much additional survivability the slower
// full variant buys. opts configures the re-placement annealer (light
// settings are fine; the instance is small).
func MultiFaultFull(p *place.Placement, k, trials int, seed int64, opts core.Options) Summary {
	return multiFault(p, k, trials, seed, true, opts)
}

func multiFault(p *place.Placement, k, trials int, seed int64, withFull bool, opts core.Options) Summary {
	array := p.BoundingBox()
	return run(p, campaign.Config{Name: "multi-fault", Trials: trials, Seed: seed, SharedRNG: true},
		func(_ context.Context, t campaign.Trial) campaign.Outcome {
			if k > array.Cells() {
				return campaign.Outcome{}
			}
			cur := p.Clone()
			var dead []geom.Point
			for j := 0; j < k; j++ {
				cell := geom.Point{
					X: array.X + t.RNG.Intn(array.W),
					Y: array.Y + t.RNG.Intn(array.H),
				}
				if containsPoint(dead, cell) {
					j--
					continue
				}
				if recoverWithObstacles(cur, array, cell, dead) {
					dead = append(dead, cell)
					continue
				}
				if withFull {
					// Frozen pre-engine seed arithmetic: golden-pinned.
					// New campaigns derive nested seeds with
					// campaign.DeriveSeed instead (see MultiFaultTrial).
					o := opts
					o.Seed = seed + int64(t.Index*1000+j)
					if full, err := core.FullReconfigure(cur, append(append([]geom.Point(nil), dead...), cell), o); err == nil {
						cur = full
						dead = append(dead, cell)
						continue
					}
				}
				return campaign.Outcome{Value: float64(len(dead))}
			}
			return campaign.Outcome{Survived: true, Value: float64(k)}
		})
}

// recoverWithObstacles relocates every module using cell, treating the
// previously failed cells as additional obstacles, and applies the
// relocations to cur.
func recoverWithObstacles(cur *place.Placement, array geom.Rect, cell geom.Point, dead []geom.Point) bool {
	var rels []reconfig.Relocation
	for _, mi := range cur.ModulesAt(cell) {
		rel, err := reconfig.PlanModule(cur, array, mi, cell, dead...)
		if err != nil {
			return false
		}
		rels = append(rels, rel)
	}
	return reconfig.Apply(cur, rels) == nil
}

// Yield estimates manufacturing/field yield under a defect-density
// model: every cell of the array fails independently with probability
// defectProb, and a chip is usable if the configuration absorbs all
// its defects — by sequential partial reconfiguration in scan order,
// with full re-placement as a fallback when withFull is set. This
// extends the paper's uniform single-fault model to the regime its
// Section 5.2 anticipates ("the failure model can be easily updated
// when statistical failure data becomes available").
//
// Defect maps are drawn up front from the legacy shared stream (each
// trial consumes exactly W·H draws, independent of outcomes) and the
// recovery trials run on the worker pool, bit-identical to the
// historical sequential loop at any worker count.
func Yield(p *place.Placement, defectProb float64, trials int, seed int64,
	withFull bool, opts core.Options) Summary {
	array := p.BoundingBox()
	rng := rand.New(rand.NewSource(seed))
	defectSets := make([][]geom.Point, trials)
	for i := range defectSets {
		for y := 0; y < array.H; y++ {
			for x := 0; x < array.W; x++ {
				if rng.Float64() < defectProb {
					defectSets[i] = append(defectSets[i], geom.Point{X: array.X + x, Y: array.Y + y})
				}
			}
		}
	}
	return run(p, campaign.Config{Name: "yield", Trials: trials, Seed: seed},
		func(_ context.Context, t campaign.Trial) campaign.Outcome {
			defects := defectSets[t.Index]
			cur := p.Clone()
			var dead []geom.Point
			for _, cell := range defects {
				if recoverWithObstacles(cur, array, cell, dead) {
					dead = append(dead, cell)
					continue
				}
				if withFull {
					// Frozen pre-engine seed arithmetic: golden-pinned.
					o := opts
					o.Seed = seed + int64(t.Index*8192+len(dead))
					if full, err := core.FullReconfigure(cur,
						append(append([]geom.Point(nil), dead...), cell), o); err == nil {
						cur = full
						dead = append(dead, cell)
						continue
					}
				}
				return campaign.Outcome{Value: float64(len(defects))}
			}
			return campaign.Outcome{Survived: true, Value: float64(len(defects))}
		})
}

// SweepPoint pairs a placement label with its measured survival.
type SweepPoint struct {
	Label    string
	FTI      float64
	Measured float64
}

// CompareSurvival runs the exhaustive single-fault campaign over
// several placements, for FTI-versus-survivability tables.
func CompareSurvival(placements map[string]*place.Placement) []SweepPoint {
	var out []SweepPoint
	for label, p := range placements {
		s := ExhaustiveSingleFault(p)
		out = append(out, SweepPoint{Label: label, FTI: s.PredictedFTI, Measured: s.SurvivalRate()})
	}
	return out
}
