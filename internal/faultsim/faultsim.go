// Package faultsim evaluates fault-tolerance claims empirically by
// Monte-Carlo fault injection: random cells are declared faulty and
// partial reconfiguration is attempted, measuring the fraction of
// faults the configuration survives. Under the paper's uniform
// single-fault model this fraction is exactly what the fault tolerance
// index predicts, which the exhaustive variant verifies cell by cell.
// A sequential multi-fault mode extends the analysis beyond the
// paper's single-fault assumption (testing and reconfiguration between
// failures), measuring how placements degrade as faults accumulate.
package faultsim

import (
	"fmt"
	"math/rand"

	"dmfb/internal/core"
	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/reconfig"
	"dmfb/internal/stats"
)

// Summary reports a fault-injection campaign.
type Summary struct {
	Trials       int
	Survived     int
	PredictedFTI float64 // the placement's FTI before any fault
}

// SurvivalRate returns the measured fraction of survived trials.
func (s Summary) SurvivalRate() float64 {
	if s.Trials == 0 {
		return 0
	}
	return float64(s.Survived) / float64(s.Trials)
}

// ConfidenceInterval95 returns the Wilson 95% confidence interval on
// the measured survival rate; with the paper's uniform fault model the
// placement's FTI should fall inside it.
func (s Summary) ConfidenceInterval95() (lo, hi float64) {
	return stats.Wilson95(s.Survived, s.Trials)
}

// String summarises the campaign.
func (s Summary) String() string {
	return fmt.Sprintf("survived %d/%d (%.4f measured vs %.4f FTI predicted)",
		s.Survived, s.Trials, s.SurvivalRate(), s.PredictedFTI)
}

// SingleFault samples `trials` uniform random cells of the placement's
// array and attempts partial reconfiguration for each, independently
// (the placement is not cumulatively modified). By the law of large
// numbers the survival rate converges to the FTI.
func SingleFault(p *place.Placement, trials int, seed int64) Summary {
	array := p.BoundingBox()
	rng := rand.New(rand.NewSource(seed))
	s := Summary{Trials: trials, PredictedFTI: fti.Compute(p).FTI()}
	for i := 0; i < trials; i++ {
		cell := geom.Point{
			X: array.X + rng.Intn(array.W),
			Y: array.Y + rng.Intn(array.H),
		}
		if _, err := reconfig.Plan(p, array, cell); err == nil {
			s.Survived++
		}
	}
	return s
}

// ExhaustiveSingleFault attempts reconfiguration for every cell of the
// array. Its survival rate equals the FTI exactly.
func ExhaustiveSingleFault(p *place.Placement) Summary {
	array := p.BoundingBox()
	s := Summary{Trials: array.Cells(), PredictedFTI: fti.Compute(p).FTI()}
	for y := 0; y < array.H; y++ {
		for x := 0; x < array.W; x++ {
			cell := geom.Point{X: array.X + x, Y: array.Y + y}
			if _, err := reconfig.Plan(p, array, cell); err == nil {
				s.Survived++
			}
		}
	}
	return s
}

// MultiFault injects k distinct faults sequentially, reconfiguring
// after each (testing between failures localises them one at a time).
// Earlier faults remain as dead cells that later relocations must
// avoid. One trial survives if all k faults are recovered from.
func MultiFault(p *place.Placement, k, trials int, seed int64) Summary {
	array := p.BoundingBox()
	rng := rand.New(rand.NewSource(seed))
	s := Summary{Trials: trials, PredictedFTI: fti.Compute(p).FTI()}
	if k > array.Cells() {
		return s
	}
trial:
	for i := 0; i < trials; i++ {
		cur := p.Clone()
		var dead []geom.Point
		for j := 0; j < k; j++ {
			cell := geom.Point{
				X: array.X + rng.Intn(array.W),
				Y: array.Y + rng.Intn(array.H),
			}
			dup := false
			for _, d := range dead {
				if d == cell {
					dup = true
					break
				}
			}
			if dup {
				j--
				continue
			}
			if !recoverWithObstacles(cur, array, cell, dead) {
				continue trial
			}
			dead = append(dead, cell)
		}
		s.Survived++
	}
	return s
}

// recoverWithObstacles relocates every module using cell, treating the
// previously failed cells as additional obstacles, and applies the
// relocations to cur.
func recoverWithObstacles(cur *place.Placement, array geom.Rect, cell geom.Point, dead []geom.Point) bool {
	var rels []reconfig.Relocation
	for _, mi := range cur.ModulesAt(cell) {
		rel, err := reconfig.PlanModule(cur, array, mi, cell, dead...)
		if err != nil {
			return false
		}
		rels = append(rels, rel)
	}
	return reconfig.Apply(cur, rels) == nil
}

// MultiFaultFull is MultiFault with full reconfiguration as a
// fallback: when partial reconfiguration cannot absorb a fault, the
// entire module set is re-placed from scratch around the accumulated
// dead cells (core.FullReconfigure) within the original array bounds.
// The paper motivates partial reconfiguration by its speed; this
// campaign quantifies how much additional survivability the slower
// full variant buys. opts configures the re-placement annealer (light
// settings are fine; the instance is small).
func MultiFaultFull(p *place.Placement, k, trials int, seed int64, opts core.Options) Summary {
	array := p.BoundingBox()
	rng := rand.New(rand.NewSource(seed))
	s := Summary{Trials: trials, PredictedFTI: fti.Compute(p).FTI()}
	if k > array.Cells() {
		return s
	}
trial:
	for i := 0; i < trials; i++ {
		cur := p.Clone()
		var dead []geom.Point
		for j := 0; j < k; j++ {
			cell := geom.Point{
				X: array.X + rng.Intn(array.W),
				Y: array.Y + rng.Intn(array.H),
			}
			dup := false
			for _, d := range dead {
				if d == cell {
					dup = true
					break
				}
			}
			if dup {
				j--
				continue
			}
			if recoverWithObstacles(cur, array, cell, dead) {
				dead = append(dead, cell)
				continue
			}
			// Partial reconfiguration failed: attempt full.
			o := opts
			o.Seed = seed + int64(i*1000+j)
			full, err := core.FullReconfigure(cur, append(append([]geom.Point(nil), dead...), cell), o)
			if err != nil {
				continue trial
			}
			cur = full
			dead = append(dead, cell)
		}
		s.Survived++
	}
	return s
}

// Yield estimates manufacturing/field yield under a defect-density
// model: every cell of the array fails independently with probability
// defectProb, and a chip is usable if the configuration absorbs all
// its defects — by sequential partial reconfiguration in scan order,
// with full re-placement as a fallback when withFull is set. This
// extends the paper's uniform single-fault model to the regime its
// Section 5.2 anticipates ("the failure model can be easily updated
// when statistical failure data becomes available").
func Yield(p *place.Placement, defectProb float64, trials int, seed int64,
	withFull bool, opts core.Options) Summary {
	array := p.BoundingBox()
	rng := rand.New(rand.NewSource(seed))
	s := Summary{Trials: trials, PredictedFTI: fti.Compute(p).FTI()}
trial:
	for i := 0; i < trials; i++ {
		var defects []geom.Point
		for y := 0; y < array.H; y++ {
			for x := 0; x < array.W; x++ {
				if rng.Float64() < defectProb {
					defects = append(defects, geom.Point{X: array.X + x, Y: array.Y + y})
				}
			}
		}
		cur := p.Clone()
		var dead []geom.Point
		for _, cell := range defects {
			if recoverWithObstacles(cur, array, cell, dead) {
				dead = append(dead, cell)
				continue
			}
			if withFull {
				o := opts
				o.Seed = seed + int64(i*8192+len(dead))
				full, err := core.FullReconfigure(cur,
					append(append([]geom.Point(nil), dead...), cell), o)
				if err == nil {
					cur = full
					dead = append(dead, cell)
					continue
				}
			}
			continue trial
		}
		s.Survived++
	}
	return s
}

// SweepPoint pairs a placement label with its measured survival.
type SweepPoint struct {
	Label    string
	FTI      float64
	Measured float64
}

// CompareSurvival runs the exhaustive single-fault campaign over
// several placements, for FTI-versus-survivability tables.
func CompareSurvival(placements map[string]*place.Placement) []SweepPoint {
	var out []SweepPoint
	for label, p := range placements {
		s := ExhaustiveSingleFault(p)
		out = append(out, SweepPoint{Label: label, FTI: s.PredictedFTI, Measured: s.SurvivalRate()})
	}
	return out
}
