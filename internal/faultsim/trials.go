package faultsim

import (
	"context"
	"fmt"

	"dmfb/internal/campaign"
	"dmfb/internal/core"
	"dmfb/internal/defect"
	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/reconfig"
	"dmfb/internal/schedule"
	"dmfb/internal/sim"
)

// Campaign-native trial functions. These are the parallel-deterministic
// presets: every random draw comes from the trial's private stream
// (campaign.TrialRNG) and every nested seed derives from the trial seed
// (campaign.DeriveSeed), so a campaign's aggregate is bit-identical at
// any worker count and across checkpoint resumes. The sequential
// entry points (SingleFault, MultiFault, ...) predate the engine and
// keep their historical shared-stream draw order instead; use these
// constructors for anything new.

// SingleFaultTrial returns the trial function of the uniform
// single-fault campaign on p: each trial draws one uniform array cell
// and attempts partial reconfiguration. Value is the number of module
// relocations the recovery plan needed.
func SingleFaultTrial(p *place.Placement) campaign.TrialFunc {
	array := p.BoundingBox()
	return func(_ context.Context, t campaign.Trial) campaign.Outcome {
		cell := geom.Point{
			X: array.X + t.RNG.Intn(array.W),
			Y: array.Y + t.RNG.Intn(array.H),
		}
		rels, err := reconfig.Plan(p, array, cell)
		if err != nil {
			return campaign.Outcome{}
		}
		return campaign.Outcome{Survived: true, Value: float64(len(rels))}
	}
}

// ExhaustiveTrial returns the trial function that sweeps every array
// cell: trial t injects the fault at cell t in scan order, so a
// campaign with exactly array.Cells() trials measures the FTI exactly.
func ExhaustiveTrial(p *place.Placement) campaign.TrialFunc {
	array := p.BoundingBox()
	return func(_ context.Context, t campaign.Trial) campaign.Outcome {
		cell := geom.Point{
			X: array.X + t.Index%array.W,
			Y: array.Y + t.Index/array.W,
		}
		rels, err := reconfig.Plan(p, array, cell)
		if err != nil {
			return campaign.Outcome{}
		}
		return campaign.Outcome{Survived: true, Value: float64(len(rels))}
	}
}

// MultiFaultTrial returns the trial function of the sequential k-fault
// campaign on p: k distinct faults injected one at a time, partial
// reconfiguration after each, with full re-placement as a fallback
// when withFull is set. Value is the number of faults absorbed before
// the first unrecoverable one (k when the trial survives).
func MultiFaultTrial(p *place.Placement, k int, withFull bool, opts core.Options) campaign.TrialFunc {
	array := p.BoundingBox()
	return func(ctx context.Context, t campaign.Trial) campaign.Outcome {
		if k > array.Cells() {
			return campaign.Outcome{}
		}
		cur := p.Clone()
		var dead []geom.Point
		for j := 0; j < k; j++ {
			if err := ctx.Err(); err != nil {
				return campaign.Outcome{Err: err}
			}
			cell := geom.Point{
				X: array.X + t.RNG.Intn(array.W),
				Y: array.Y + t.RNG.Intn(array.H),
			}
			if containsPoint(dead, cell) {
				j--
				continue
			}
			if recoverWithObstacles(cur, array, cell, dead) {
				dead = append(dead, cell)
				continue
			}
			if withFull {
				o := opts
				o.Seed = campaign.DeriveSeed(t.Seed, uint64(j))
				if full, err := core.FullReconfigure(cur, append(append([]geom.Point(nil), dead...), cell), o); err == nil {
					cur = full
					dead = append(dead, cell)
					continue
				}
			}
			return campaign.Outcome{Value: float64(len(dead))}
		}
		return campaign.Outcome{Survived: true, Value: float64(k)}
	}
}

// YieldTrial returns the trial function of the uniform defect-density
// yield campaign on p: every array cell fails independently with
// probability defectProb and the chip is usable if the configuration
// absorbs all its defects, with full re-placement as a fallback when
// withFull is set. Value is the number of defects on the die. It is
// DefectYieldTrial under the uniform model, draw-for-draw identical to
// its historical per-cell scan-order stream.
func YieldTrial(p *place.Placement, defectProb float64, withFull bool, opts core.Options) campaign.TrialFunc {
	return DefectYieldTrial(p, defect.Uniform{Prob: defectProb}, withFull, opts)
}

// DefectYieldTrial generalizes YieldTrial to any defect model: each
// trial draws one die's defect map from gen on the trial's private
// RNG stream and attempts to absorb the defects one at a time by
// partial reconfiguration, with full re-placement as a fallback when
// withFull is set. Value is the number of defects on the die.
func DefectYieldTrial(p *place.Placement, gen defect.Generator, withFull bool, opts core.Options) campaign.TrialFunc {
	array := p.BoundingBox()
	return func(ctx context.Context, t campaign.Trial) campaign.Outcome {
		defects := gen.Generate(array, t.RNG)
		n := float64(len(defects))
		cur := p.Clone()
		var dead []geom.Point
		for _, cell := range defects {
			if err := ctx.Err(); err != nil {
				return campaign.Outcome{Err: err}
			}
			if recoverWithObstacles(cur, array, cell, dead) {
				dead = append(dead, cell)
				continue
			}
			if withFull {
				o := opts
				o.Seed = campaign.DeriveSeed(t.Seed, uint64(len(dead)))
				if full, err := core.FullReconfigure(cur, append(append([]geom.Point(nil), dead...), cell), o); err == nil {
					cur = full
					dead = append(dead, cell)
					continue
				}
			}
			return campaign.Outcome{Value: n}
		}
		return campaign.Outcome{Survived: true, Value: n}
	}
}

// LadderYieldTrial returns the trial function of the design-time
// local-reconfiguration yield campaign: each trial draws one die's
// defect map from gen and asks defect.Reconfigure whether the full
// recovery ladder (L1 relocate, L2 downgrade, L3 defragment) absorbs
// every defect before the assay starts. Survived means the die runs
// the schedule as designed, possibly stretched; Value is the number
// of defects on the die.
func LadderYieldTrial(s *schedule.Schedule, p *place.Placement, gen defect.Generator, anneal core.Options) campaign.TrialFunc {
	array := p.BoundingBox()
	return func(ctx context.Context, t campaign.Trial) campaign.Outcome {
		if err := ctx.Err(); err != nil {
			return campaign.Outcome{Err: err}
		}
		defects := gen.Generate(array, t.RNG)
		o := anneal
		o.Seed = campaign.DeriveSeed(t.Seed, 0)
		rev := defect.Reconfigure(s, p, array, defects, defect.ReconfigureOptions{Anneal: o})
		return campaign.Outcome{Survived: rev.Survivable, Value: float64(len(defects))}
	}
}

// AssayTrial returns the trial function of the end-to-end assay
// campaign: each trial executes the full schedule on the chip
// simulator with k faults injected at trial-random cells and times,
// recovering with the given mode. Each fault is transient (healing
// under the simulator's bounded-retry re-test) with probability
// transientProb. Survived means the assay completed every operation;
// a degraded run (ladder mode, operations abandoned) counts as
// non-survival but not as an error. Value is the deepest recovery
// level any fault forced (0 when no ladder invocation was needed).
func AssayTrial(s *schedule.Schedule, p *place.Placement, k int,
	mode sim.RecoveryMode, transientProb float64) campaign.TrialFunc {
	array := p.BoundingBox()
	return func(_ context.Context, t campaign.Trial) campaign.Outcome {
		if k > array.Cells() {
			return campaign.Outcome{Err: fmt.Errorf("faultsim: %d faults exceed the %d-cell array", k, array.Cells())}
		}
		horizon := s.Makespan
		if horizon < 1 {
			horizon = 1
		}
		opts := sim.Options{
			Recovery:     mode,
			RecoverySeed: campaign.DeriveSeed(t.Seed, 0),
			Telemetry:    t.Tracer,
			Span:         t.Span,
		}
		var faults []sim.FaultInjection
		var cells []geom.Point
		for j := 0; j < k; j++ {
			cell := geom.Point{
				X: array.X + t.RNG.Intn(array.W),
				Y: array.Y + t.RNG.Intn(array.H),
			}
			if containsPoint(cells, cell) {
				j--
				continue
			}
			cells = append(cells, cell)
			f := sim.FaultInjection{
				TimeSec: t.RNG.Intn(horizon),
				Cell:    sim.ArrayCell(opts, cell),
			}
			if transientProb > 0 && t.RNG.Float64() < transientProb {
				f.TransientProbes = 1 + t.RNG.Intn(2)
			}
			faults = append(faults, f)
		}
		res := sim.Run(s, p, opts, faults...)
		out := campaign.Outcome{
			Survived: res.Outcome == sim.OutcomeCompleted,
			Value:    float64(res.Recovery.DeepestLevel),
		}
		if res.Outcome == sim.OutcomeFailed && res.FailReason == "" {
			out.Err = fmt.Errorf("faultsim: trial %d failed without a reason", t.Index)
		}
		return out
	}
}

func containsPoint(pts []geom.Point, p geom.Point) bool {
	for _, q := range pts {
		if q == p {
			return true
		}
	}
	return false
}
