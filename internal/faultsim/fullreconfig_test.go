package faultsim

import (
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/pcr"
)

func lightOpts(seed int64) core.Options {
	return core.Options{Seed: seed, ItersPerModule: 60, WindowPatience: 3}
}

// TestFullReconfigurationBeatsPartial: with full re-placement as a
// fallback, multi-fault survival can only improve.
func TestFullReconfigurationBeatsPartial(t *testing.T) {
	prob := core.FromSchedule(pcr.MustSchedule())
	res, err := core.TwoStage(prob, core.Options{Seed: 1, ItersPerModule: 120, WindowPatience: 4},
		core.FTOptions{Beta: 30})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Final
	const k, trials = 2, 40
	partial := MultiFault(p, k, trials, 5)
	full := MultiFaultFull(p, k, trials, 5, lightOpts(1))
	if full.Survived < partial.Survived {
		t.Errorf("full fallback survived %d < partial-only %d", full.Survived, partial.Survived)
	}
	if full.Trials != trials || partial.Trials != trials {
		t.Error("trial counts wrong")
	}
	t.Logf("k=%d: partial %.3f, with full fallback %.3f",
		k, partial.SurvivalRate(), full.SurvivalRate())
}

// TestFullFallbackOnMinimalPlacement: on the packed area-minimal
// design, partial reconfiguration absorbs few single faults while the
// full fallback absorbs substantially more — the headline gap between
// the two mechanisms.
func TestFullFallbackOnMinimalPlacement(t *testing.T) {
	prob := core.FromSchedule(pcr.MustSchedule())
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 1, ItersPerModule: 150, WindowPatience: 5})
	if err != nil {
		t.Fatal(err)
	}
	const trials = 30
	partial := MultiFault(p, 1, trials, 7)
	full := MultiFaultFull(p, 1, trials, 7, lightOpts(2))
	if full.SurvivalRate() < partial.SurvivalRate() {
		t.Errorf("full fallback (%.3f) below partial-only (%.3f)",
			full.SurvivalRate(), partial.SurvivalRate())
	}
	// On a placement this tight the fallback should rescue at least
	// some otherwise-fatal faults.
	if full.Survived == partial.Survived {
		t.Logf("note: full fallback rescued no extra faults in %d trials", trials)
	}
}
