package faultsim

import (
	"math"
	"strings"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/geom"
	"dmfb/internal/pcr"
	"dmfb/internal/place"
)

func mod(id int, w, h, s, e int) place.Module {
	return place.Module{ID: id, Name: "M", Size: geom.Size{W: w, H: h},
		Span: geom.Interval{Start: s, End: e}}
}

// spaced returns a 2x2 module placed in the corner of a roomy array.
func spaced() *place.Placement {
	mods := []place.Module{mod(0, 2, 2, 0, 10), mod(1, 2, 2, 0, 10)}
	p := place.New(mods)
	p.Pos[1] = geom.Point{X: 6, Y: 6}
	return p
}

func TestExhaustiveMatchesFTIExactly(t *testing.T) {
	placements := []*place.Placement{spaced()}
	// Add the PCR area-minimal and fault-tolerant placements.
	prob := core.FromSchedule(pcr.MustSchedule())
	s1, _, err := core.AnnealArea(prob, core.Options{Seed: 2, ItersPerModule: 120, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	placements = append(placements, s1)
	for i, p := range placements {
		s := ExhaustiveSingleFault(p)
		if math.Abs(s.SurvivalRate()-s.PredictedFTI) > 1e-12 {
			t.Errorf("placement %d: measured %.4f != FTI %.4f", i, s.SurvivalRate(), s.PredictedFTI)
		}
		if s.Trials != p.ArrayCells() {
			t.Errorf("placement %d: trials %d != cells %d", i, s.Trials, p.ArrayCells())
		}
	}
}

func TestSingleFaultConvergesToFTI(t *testing.T) {
	p := spaced()
	s := SingleFault(p, 4000, 1)
	if math.Abs(s.SurvivalRate()-s.PredictedFTI) > 0.05 {
		t.Errorf("Monte-Carlo %.4f too far from FTI %.4f", s.SurvivalRate(), s.PredictedFTI)
	}
	if !strings.Contains(s.String(), "survived") {
		t.Errorf("String = %q", s.String())
	}
}

func TestSingleFaultDeterministicPerSeed(t *testing.T) {
	p := spaced()
	a := SingleFault(p, 500, 7)
	b := SingleFault(p, 500, 7)
	if a != b {
		t.Error("same seed, different campaign results")
	}
}

func TestMultiFaultDegradesMonotonically(t *testing.T) {
	p := spaced()
	prev := 1.1
	for _, k := range []int{1, 3, 6} {
		s := MultiFault(p, k, 400, 3)
		rate := s.SurvivalRate()
		if rate > prev+0.05 { // sampling tolerance
			t.Errorf("survival increased with more faults: k=%d rate=%.3f prev=%.3f", k, rate, prev)
		}
		prev = rate
	}
	// Absurd k: zero trials survive (cannot even place k faults).
	s := MultiFault(p, 10000, 10, 1)
	if s.Survived != 0 {
		t.Error("k > cells should survive nothing")
	}
}

func TestMultiFaultSingleEqualsMonteCarloSingle(t *testing.T) {
	p := spaced()
	mf := MultiFault(p, 1, 3000, 11)
	if math.Abs(mf.SurvivalRate()-mf.PredictedFTI) > 0.05 {
		t.Errorf("MultiFault(k=1) %.4f far from FTI %.4f", mf.SurvivalRate(), mf.PredictedFTI)
	}
}

func TestCompareSurvival(t *testing.T) {
	pts := CompareSurvival(map[string]*place.Placement{"spaced": spaced()})
	if len(pts) != 1 || pts[0].Label != "spaced" {
		t.Fatalf("points = %v", pts)
	}
	if math.Abs(pts[0].FTI-pts[0].Measured) > 1e-12 {
		t.Error("exhaustive comparison should match FTI")
	}
}

func TestConfidenceIntervalCoversFTI(t *testing.T) {
	p := spaced()
	s := SingleFault(p, 2000, 3)
	lo, hi := s.ConfidenceInterval95()
	if s.PredictedFTI < lo || s.PredictedFTI > hi {
		t.Errorf("FTI %.4f outside 95%% interval [%.4f, %.4f]", s.PredictedFTI, lo, hi)
	}
	if hi <= lo {
		t.Error("degenerate interval")
	}
}
