package faultsim

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"dmfb/internal/campaign"
	"dmfb/internal/core"
)

// The determinism contract of the campaign engine, exercised on a real
// fault-injection workload: a 512-trial multi-fault campaign produces
// byte-identical aggregated JSON at every worker count, and a campaign
// killed mid-flight and resumed from its checkpoint matches an
// uninterrupted run exactly.

func runMulti512(t *testing.T, cfg campaign.Config, fn campaign.TrialFunc) campaign.Report {
	t.Helper()
	rep, err := campaign.Run(context.Background(), cfg, fn)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestDeterminism512AcrossWorkerCounts(t *testing.T) {
	p := tightPlacement(t)
	fn := MultiFaultTrial(p, 3, false, core.Options{})
	base := campaign.Config{Name: "det512", Trials: 512, Seed: 1}

	var jsons []string
	var survived int
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := base
		cfg.Workers = w
		rep := runMulti512(t, cfg, fn)
		b, err := rep.Summary.MarshalDeterministic()
		if err != nil {
			t.Fatal(err)
		}
		jsons = append(jsons, string(b))
		survived = rep.Summary.Survived
	}
	if jsons[0] != jsons[1] || jsons[1] != jsons[2] {
		t.Errorf("aggregated JSON differs across worker counts:\nw=1:\n%s\nw=4:\n%s\nw=max:\n%s",
			jsons[0], jsons[1], jsons[2])
	}
	// Golden pin: the multi-fault survival count on the tight fixture.
	// Drift means the per-trial RNG derivation or the recovery path
	// changed — both break every recorded campaign.
	const golden = 162
	if survived != golden {
		t.Errorf("512-trial campaign survived %d, golden %d", survived, golden)
	}
}

func TestDeterminismKillAndResumeMatchesUninterrupted(t *testing.T) {
	p := tightPlacement(t)
	fn := MultiFaultTrial(p, 3, false, core.Options{})

	uninterrupted := runMulti512(t, campaign.Config{Name: "det512", Trials: 512, Seed: 1}, fn)

	ckpt := filepath.Join(t.TempDir(), "det512.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	_, err := campaign.Run(ctx, campaign.Config{
		Name: "det512", Trials: 512, Seed: 1, Workers: 4, Checkpoint: ckpt,
		Progress: func(d, total int) {
			if done.Add(1) == 150 {
				cancel() // the "kill"
			}
		}}, fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected mid-campaign cancellation, got %v", err)
	}

	resumed, err := campaign.Run(context.Background(), campaign.Config{
		Name: "det512", Trials: 512, Seed: 1, Workers: 2, Checkpoint: ckpt, Resume: true}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed < 150 {
		t.Errorf("resume replayed only %d checkpointed trials", resumed.Resumed)
	}
	a, _ := uninterrupted.Summary.MarshalDeterministic()
	b, _ := resumed.Summary.MarshalDeterministic()
	if string(a) != string(b) {
		t.Errorf("killed-and-resumed campaign differs from uninterrupted run:\n%s\nvs\n%s", b, a)
	}
}
