package faultsim

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"dmfb/internal/campaign"
	"dmfb/internal/pcr"
	"dmfb/internal/sim"
)

// The end-to-end assay campaign (full chip simulation per trial, the
// recovery ladder on every injected fault) must keep the engine's
// determinism contract: byte-identical aggregates across worker counts
// and across a kill/resume, and a strictly better completion rate than
// L1-only recovery on the same fault stream.

func TestAssayLadderCampaignDeterministicAcrossWorkers(t *testing.T) {
	s := pcr.MustSchedule()
	p := pcrAreaPlacement(t)
	fn := AssayTrial(s, p, 1, sim.RecoveryLadder, 0.15)
	base := campaign.Config{Name: "assay-ladder", Trials: 192, Seed: 11}

	var jsons []string
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := base
		cfg.Workers = w
		rep, err := campaign.Run(context.Background(), cfg, fn)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Summary.Errors != 0 {
			t.Fatalf("w=%d: %d trials errored: %s", w, rep.Summary.Errors, rep.Summary)
		}
		b, err := rep.Summary.MarshalDeterministic()
		if err != nil {
			t.Fatal(err)
		}
		jsons = append(jsons, string(b))
	}
	if jsons[0] != jsons[1] || jsons[1] != jsons[2] {
		t.Errorf("assay-campaign JSON differs across worker counts:\nw=1:\n%s\nw=4:\n%s\nw=max:\n%s",
			jsons[0], jsons[1], jsons[2])
	}
}

func TestAssayLadderCampaignKillAndResume(t *testing.T) {
	s := pcr.MustSchedule()
	p := pcrAreaPlacement(t)
	fn := AssayTrial(s, p, 1, sim.RecoveryLadder, 0.15)

	uninterrupted, err := campaign.Run(context.Background(),
		campaign.Config{Name: "assay-ladder", Trials: 192, Seed: 11}, fn)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "assay.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	_, err = campaign.Run(ctx, campaign.Config{
		Name: "assay-ladder", Trials: 192, Seed: 11, Workers: 4, Checkpoint: ckpt,
		Progress: func(d, total int) {
			if done.Add(1) == 60 {
				cancel()
			}
		}}, fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected mid-campaign cancellation, got %v", err)
	}

	resumed, err := campaign.Run(context.Background(), campaign.Config{
		Name: "assay-ladder", Trials: 192, Seed: 11, Workers: 2,
		Checkpoint: ckpt, Resume: true}, fn)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := uninterrupted.Summary.MarshalDeterministic()
	b, _ := resumed.Summary.MarshalDeterministic()
	if string(a) != string(b) {
		t.Errorf("killed-and-resumed assay campaign differs from uninterrupted run:\n%s\nvs\n%s", b, a)
	}
}

// The ladder must strictly improve the completion rate over L1-only
// recovery on the same seeded fault stream, and no trial may end in a
// panic or an untyped failure in either mode.
func TestLadderImprovesCompletionOverL1(t *testing.T) {
	s := pcr.MustSchedule()
	p := pcrAreaPlacement(t)
	cfg := campaign.Config{Name: "assay", Trials: 256, Seed: 5}

	run := func(mode sim.RecoveryMode) campaign.Summary {
		rep, err := campaign.Run(context.Background(), cfg, AssayTrial(s, p, 1, mode, 0))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Summary
	}
	l1 := run(sim.RecoveryL1)
	ladder := run(sim.RecoveryLadder)
	if l1.Errors != 0 || ladder.Errors != 0 {
		t.Fatalf("untyped/errored trials: l1=%d ladder=%d", l1.Errors, ladder.Errors)
	}
	if ladder.Survived <= l1.Survived {
		t.Errorf("ladder completed %d/%d, not strictly better than L1's %d/%d",
			ladder.Survived, ladder.Trials, l1.Survived, l1.Trials)
	}
	t.Logf("survival: l1 %d/%d, ladder %d/%d", l1.Survived, l1.Trials, ladder.Survived, ladder.Trials)
}
