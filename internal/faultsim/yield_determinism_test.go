package faultsim

import (
	"context"
	"errors"
	"path/filepath"
	"runtime"
	"sync/atomic"
	"testing"

	"dmfb/internal/campaign"
	"dmfb/internal/core"
	"dmfb/internal/defect"
	"dmfb/internal/pcr"
)

// The determinism contract extended to defect-map yield campaigns: a
// 512-trial clustered-defect yield campaign produces byte-identical
// aggregated JSON at every worker count and across a kill/resume, and
// the uniform defect generator is draw-for-draw identical to the
// historical YieldTrial stream.

func clusteredGen() defect.Generator {
	return defect.Clustered{Prob: 0.04, ClusterSize: 4, Radius: 2}
}

func TestYieldDeterminism512AcrossWorkerCounts(t *testing.T) {
	p := tightPlacement(t)
	fn := DefectYieldTrial(p, clusteredGen(), false, core.Options{})
	base := campaign.Config{Name: "yield512", Trials: 512, Seed: 1}

	var jsons []string
	var survived int
	for _, w := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		cfg := base
		cfg.Workers = w
		rep, err := campaign.Run(context.Background(), cfg, fn)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rep.Summary.MarshalDeterministic()
		if err != nil {
			t.Fatal(err)
		}
		jsons = append(jsons, string(b))
		survived = rep.Summary.Survived
	}
	if jsons[0] != jsons[1] || jsons[1] != jsons[2] {
		t.Errorf("aggregated JSON differs across worker counts:\nw=1:\n%s\nw=4:\n%s\nw=max:\n%s",
			jsons[0], jsons[1], jsons[2])
	}
	// Golden pin: the clustered-defect yield survival count on the
	// tight fixture. Drift means the cluster draw order or the
	// recovery path changed — both break recorded yield campaigns.
	const golden = 450
	if survived != golden {
		t.Errorf("512-trial clustered yield campaign survived %d, golden %d", survived, golden)
	}
}

func TestYieldDeterminismKillAndResume(t *testing.T) {
	p := tightPlacement(t)
	fn := DefectYieldTrial(p, clusteredGen(), false, core.Options{})

	uninterrupted, err := campaign.Run(context.Background(),
		campaign.Config{Name: "yield512", Trials: 512, Seed: 1}, fn)
	if err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "yield512.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	_, err = campaign.Run(ctx, campaign.Config{
		Name: "yield512", Trials: 512, Seed: 1, Workers: 4, Checkpoint: ckpt,
		Progress: func(d, total int) {
			if done.Add(1) == 150 {
				cancel() // the "kill"
			}
		}}, fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected mid-campaign cancellation, got %v", err)
	}

	resumed, err := campaign.Run(context.Background(), campaign.Config{
		Name: "yield512", Trials: 512, Seed: 1, Workers: 2, Checkpoint: ckpt, Resume: true}, fn)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed < 150 {
		t.Errorf("resume replayed only %d checkpointed trials", resumed.Resumed)
	}
	a, _ := uninterrupted.Summary.MarshalDeterministic()
	b, _ := resumed.Summary.MarshalDeterministic()
	if string(a) != string(b) {
		t.Errorf("killed-and-resumed yield campaign differs from uninterrupted run:\n%s\nvs\n%s", b, a)
	}
}

// TestUniformDelegationIsBitIdentical pins YieldTrial to
// DefectYieldTrial under the uniform model: both constructors must
// aggregate to the same bytes, so the generalization cannot have
// changed any recorded uniform campaign.
func TestUniformDelegationIsBitIdentical(t *testing.T) {
	p := tightPlacement(t)
	const q = 0.05
	legacy := YieldTrial(p, q, false, core.Options{})
	general := DefectYieldTrial(p, defect.Uniform{Prob: q}, false, core.Options{})

	cfg := campaign.Config{Name: "yield-delegate", Trials: 256, Seed: 9}
	a, err := campaign.Run(context.Background(), cfg, legacy)
	if err != nil {
		t.Fatal(err)
	}
	b, err := campaign.Run(context.Background(), cfg, general)
	if err != nil {
		t.Fatal(err)
	}
	ja, _ := a.Summary.MarshalDeterministic()
	jb, _ := b.Summary.MarshalDeterministic()
	if string(ja) != string(jb) {
		t.Errorf("YieldTrial and uniform DefectYieldTrial diverge:\n%s\nvs\n%s", ja, jb)
	}
}

// TestLadderYieldDeterministicAcrossWorkers runs the design-time
// local-reconfiguration yield workload on the annealed PCR fixture:
// worker counts must not change the aggregate (the L3 anneal seeds
// derive from the trial seed, never from shared state).
func TestLadderYieldDeterministicAcrossWorkers(t *testing.T) {
	sched := pcr.MustSchedule()
	p := pcrAreaPlacement(t)
	fn := LadderYieldTrial(sched, p, clusteredGen(), core.Options{Seed: 3, ItersPerModule: 40, WindowPatience: 2})
	var jsons []string
	for _, w := range []int{1, 4} {
		rep, err := campaign.Run(context.Background(),
			campaign.Config{Name: "yield-ladder", Trials: 48, Seed: 5, Workers: w}, fn)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := rep.Summary.MarshalDeterministic()
		jsons = append(jsons, string(b))
	}
	if jsons[0] != jsons[1] {
		t.Errorf("ladder yield differs across worker counts:\n%s\nvs\n%s", jsons[0], jsons[1])
	}
}

// TestFileModelYieldIsTrialIndependent checks the file model: every
// trial sees the same die, so a campaign's survival is all-or-nothing.
func TestFileModelYieldIsTrialIndependent(t *testing.T) {
	p := tightPlacement(t)
	f, err := defect.ParseMap("......\nX.....\n......\n......\n")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := campaign.Run(context.Background(),
		campaign.Config{Name: "yield-file", Trials: 64, Seed: 2},
		DefectYieldTrial(p, f, false, core.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if s := rep.Summary.Survived; s != 0 && s != 64 {
		t.Errorf("fixed-map campaign survived %d/64 trials, want all-or-nothing", s)
	}
}
