package faultsim

import (
	"math"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/geom"
	"dmfb/internal/pcr"
	"dmfb/internal/place"
)

// Golden pins: the sequential presets were rebased onto the
// internal/campaign engine, and these values were captured from the
// pre-engine single-threaded implementations immediately before the
// rebase. Any drift here means the presets are no longer bit-identical
// to the historical campaigns — a breaking change for every seeded
// experiment recorded in EXPERIMENTS.md.

// tightPlacement packs four always-on 2x2 modules into a 6x4 array
// with a thin free fringe, so multi-fault and yield campaigns have
// discriminating (non-saturated) survival rates.
func tightPlacement(t *testing.T) *place.Placement {
	t.Helper()
	mods := []place.Module{
		mod(0, 2, 2, 0, 10), mod(1, 2, 2, 0, 10),
		mod(2, 2, 2, 0, 10), mod(3, 2, 2, 0, 10),
		mod(4, 1, 1, 0, 10),
	}
	p := place.New(mods)
	p.Pos[0] = geom.Point{X: 0, Y: 0}
	p.Pos[1] = geom.Point{X: 2, Y: 0}
	p.Pos[2] = geom.Point{X: 0, Y: 2}
	p.Pos[3] = geom.Point{X: 2, Y: 2}
	p.Pos[4] = geom.Point{X: 5, Y: 3}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// pcrAreaPlacement is the deterministic seed-2 area-minimal PCR
// placement the pre-engine goldens were captured on.
func pcrAreaPlacement(t *testing.T) *place.Placement {
	t.Helper()
	prob := core.FromSchedule(pcr.MustSchedule())
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 2, ItersPerModule: 120, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestGoldenSequentialPresets(t *testing.T) {
	light := core.Options{Seed: 3, ItersPerModule: 40, WindowPatience: 2}
	cases := []struct {
		name string
		p    *place.Placement
		// captured pre-engine values
		single, multi, multiFull, yield, yieldFull, exhaustive, exhaustiveTrials int
		fti                                                                      float64
	}{
		{
			name: "tight", p: tightPlacement(t),
			single: 256, multi: 90, multiFull: 24, yield: 110, yieldFull: 23,
			exhaustive: 24, exhaustiveTrials: 24, fti: 1.0,
		},
		{
			name: "pcr-area", p: pcrAreaPlacement(t),
			single: 199, multi: 56, multiFull: 20, yield: 25, yieldFull: 13,
			exhaustive: 60, exhaustiveTrials: 77, fti: 0.779221,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if s := SingleFault(c.p, 256, 7); s.Survived != c.single || s.Trials != 256 {
				t.Errorf("SingleFault(256,7) = %d/%d, golden %d/256", s.Survived, s.Trials, c.single)
			} else if math.Abs(s.PredictedFTI-c.fti) > 1e-6 {
				t.Errorf("PredictedFTI = %.6f, golden %.6f", s.PredictedFTI, c.fti)
			}
			if s := MultiFault(c.p, 2, 128, 5); s.Survived != c.multi || s.Trials != 128 {
				t.Errorf("MultiFault(2,128,5) = %d/%d, golden %d/128", s.Survived, s.Trials, c.multi)
			}
			if s := MultiFaultFull(c.p, 2, 24, 5, light); s.Survived != c.multiFull || s.Trials != 24 {
				t.Errorf("MultiFaultFull(2,24,5) = %d/%d, golden %d/24", s.Survived, s.Trials, c.multiFull)
			}
			if s := Yield(c.p, 0.05, 128, 9, false, core.Options{}); s.Survived != c.yield || s.Trials != 128 {
				t.Errorf("Yield(0.05,128,9,false) = %d/%d, golden %d/128", s.Survived, s.Trials, c.yield)
			}
			if s := Yield(c.p, 0.05, 24, 9, true, light); s.Survived != c.yieldFull || s.Trials != 24 {
				t.Errorf("Yield(0.05,24,9,true) = %d/%d, golden %d/24", s.Survived, s.Trials, c.yieldFull)
			}
			if s := ExhaustiveSingleFault(c.p); s.Survived != c.exhaustive || s.Trials != c.exhaustiveTrials {
				t.Errorf("ExhaustiveSingleFault = %d/%d, golden %d/%d",
					s.Survived, s.Trials, c.exhaustive, c.exhaustiveTrials)
			}
		})
	}
}
