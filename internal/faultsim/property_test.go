package faultsim

import (
	"context"
	"math/rand"
	"testing"

	"dmfb/internal/campaign"
	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/reconfig"
)

// Differential property test for the recovery layer, extending the
// >30k-move differential pattern of the placement kernel tests: for
// any placement and any single fault cell, survival as measured
// through the campaign engine must equal a brute-force oracle that
// enumerates every candidate relocation site cell by cell, and every
// recovered placement must re-validate cell by cell.

// randomPlacement builds a valid random placement of 3–6 small
// modules inside an 8×8 core, or nil when rejection sampling fails.
func randomPlacement(rng *rand.Rand) *place.Placement {
	for attempt := 0; attempt < 40; attempt++ {
		n := 3 + rng.Intn(4)
		mods := make([]place.Module, n)
		for i := range mods {
			start := rng.Intn(10)
			mods[i] = place.Module{
				ID:   i,
				Name: "R",
				Size: geom.Size{W: 1 + rng.Intn(3), H: 1 + rng.Intn(3)},
				Span: geom.Interval{Start: start, End: start + 1 + rng.Intn(6)},
			}
		}
		p := place.New(mods)
		for i := range mods {
			sz := p.Size(i)
			if rng.Intn(2) == 0 && !mods[i].Size.IsSquare() {
				p.Rot[i] = true
				sz = p.Size(i)
			}
			p.Pos[i] = geom.Point{X: rng.Intn(9 - sz.W), Y: rng.Intn(9 - sz.H)}
		}
		if p.Validate() == nil {
			return p
		}
	}
	return nil
}

// bruteRecoverable is the oracle: the fault is survivable iff every
// module whose rectangle contains the fault has at least one
// relocation site — enumerated origin by origin, orientation by
// orientation — that stays inside the array, avoids the fault cell,
// and overlaps no time-conflicting module (checked cell by cell, no
// geometry shortcuts).
func bruteRecoverable(p *place.Placement, array geom.Rect, fault geom.Point) bool {
	for _, mi := range p.ModulesAt(fault) {
		if !bruteSiteExists(p, array, mi, fault) {
			return false
		}
	}
	return true
}

func bruteSiteExists(p *place.Placement, array geom.Rect, mi int, fault geom.Point) bool {
	m := p.Modules[mi]
	orients := []geom.Size{m.Size}
	if !m.Size.IsSquare() {
		orients = append(orients, m.Size.Transpose())
	}
	for _, sz := range orients {
		for y := array.Y; y+sz.H <= array.MaxY(); y++ {
			for x := array.X; x+sz.W <= array.MaxX(); x++ {
				site := geom.Rect{X: x, Y: y, W: sz.W, H: sz.H}
				if site.Contains(fault) {
					continue
				}
				if !overlapsConflicting(p, mi, site) {
					return true
				}
			}
		}
	}
	return false
}

// overlapsConflicting reports, cell by cell, whether site shares a
// cell with any module time-conflicting with module mi.
func overlapsConflicting(p *place.Placement, mi int, site geom.Rect) bool {
	for j := range p.Modules {
		if j == mi || !p.Modules[j].Span.Overlaps(p.Modules[mi].Span) {
			continue
		}
		r := p.Rect(j)
		for y := site.Y; y < site.MaxY(); y++ {
			for x := site.X; x < site.MaxX(); x++ {
				if r.Contains(geom.Point{X: x, Y: y}) {
					return true
				}
			}
		}
	}
	return false
}

// revalidateCellByCell rebuilds the occupancy of the recovered
// placement one time unit at a time and asserts that no cell is
// claimed twice at the same instant and that the fault cell is never
// claimed at all.
func revalidateCellByCell(t *testing.T, p *place.Placement, array geom.Rect, fault geom.Point) {
	t.Helper()
	minT, maxT := p.Modules[0].Span.Start, p.Modules[0].Span.End
	for _, m := range p.Modules {
		if m.Span.Start < minT {
			minT = m.Span.Start
		}
		if m.Span.End > maxT {
			maxT = m.Span.End
		}
	}
	for tick := minT; tick < maxT; tick++ {
		claims := make(map[geom.Point]int)
		for i, m := range p.Modules {
			iv := geom.Interval{Start: tick, End: tick + 1}
			if !m.Span.Overlaps(iv) {
				continue
			}
			r := p.Rect(i)
			if !array.ContainsRect(r) {
				t.Fatalf("recovered module %d rect %v escapes array %v", i, r, array)
			}
			for y := r.Y; y < r.MaxY(); y++ {
				for x := r.X; x < r.MaxX(); x++ {
					pt := geom.Point{X: x, Y: y}
					if pt == fault {
						t.Fatalf("recovered placement uses fault cell %v at t=%d", fault, tick)
					}
					claims[pt]++
					if claims[pt] > 1 {
						t.Fatalf("cell %v claimed twice at t=%d", pt, tick)
					}
				}
			}
		}
	}
}

func TestRecoveryMatchesBruteForceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(20260806))
	pairs := 0
	mismatches := 0
	for pi := 0; pairs < 31000 && pi < 2000; pi++ {
		p := randomPlacement(rng)
		if p == nil {
			continue
		}
		array := p.BoundingBox()
		cells := array.Cells()

		// Engine-side verdicts: one trial per array cell, full recovery
		// (plan + apply) on a private clone.
		verdict := make([]bool, cells)
		_, err := campaign.Run(context.Background(),
			campaign.Config{Name: "oracle", Trials: cells},
			func(_ context.Context, tr campaign.Trial) campaign.Outcome {
				fault := geom.Point{
					X: array.X + tr.Index%array.W,
					Y: array.Y + tr.Index/array.W,
				}
				cur := p.Clone()
				if _, rerr := reconfig.Recover(cur, array, fault); rerr != nil {
					return campaign.Outcome{}
				}
				revalidateCellByCell(t, cur, array, fault)
				verdict[tr.Index] = true
				return campaign.Outcome{Survived: true}
			})
		if err != nil {
			t.Fatal(err)
		}

		for idx := 0; idx < cells; idx++ {
			fault := geom.Point{X: array.X + idx%array.W, Y: array.Y + idx/array.W}
			want := bruteRecoverable(p, array, fault)
			if verdict[idx] != want {
				mismatches++
				if mismatches <= 5 {
					t.Errorf("placement %d fault %v: engine survived=%v, oracle=%v\n%v",
						pi, fault, verdict[idx], want, p)
				}
			}
			pairs++
		}
	}
	if pairs < 31000 {
		t.Fatalf("only %d (placement, fault) pairs exercised; want > 30k", pairs)
	}
	if mismatches > 0 {
		t.Fatalf("%d/%d pairs disagree with the brute-force oracle", mismatches, pairs)
	}
	t.Logf("verified %d (placement, fault) pairs against the oracle", pairs)
}
