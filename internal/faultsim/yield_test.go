package faultsim

import (
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/pcr"
)

func TestYieldAtZeroDefectDensity(t *testing.T) {
	p := spaced()
	s := Yield(p, 0, 50, 1, false, core.Options{})
	if s.SurvivalRate() != 1 {
		t.Errorf("yield at q=0 is %.3f, want 1", s.SurvivalRate())
	}
}

func TestYieldDecreasesWithDefectDensity(t *testing.T) {
	prob := core.FromSchedule(pcr.MustSchedule())
	res, err := core.TwoStage(prob, core.Options{Seed: 1, ItersPerModule: 120, WindowPatience: 4},
		core.FTOptions{Beta: 40})
	if err != nil {
		t.Fatal(err)
	}
	p := res.Final
	prev := 1.1
	for _, q := range []float64{0.005, 0.02, 0.08} {
		s := Yield(p, q, 60, 3, false, core.Options{})
		rate := s.SurvivalRate()
		if rate > prev+0.1 { // sampling tolerance
			t.Errorf("yield increased with defect density: q=%.3f rate=%.3f prev=%.3f",
				q, rate, prev)
		}
		prev = rate
	}
}

func TestYieldFullFallbackHelps(t *testing.T) {
	prob := core.FromSchedule(pcr.MustSchedule())
	p, _, err := core.AnnealArea(prob, core.Options{Seed: 1, ItersPerModule: 150, WindowPatience: 5})
	if err != nil {
		t.Fatal(err)
	}
	const q, trials = 0.02, 30
	partial := Yield(p, q, trials, 5, false, core.Options{})
	full := Yield(p, q, trials, 5, true, lightOpts(1))
	if full.Survived < partial.Survived {
		t.Errorf("full fallback yield %d below partial-only %d", full.Survived, partial.Survived)
	}
	t.Logf("q=%.3f: partial-only yield %.3f, with full fallback %.3f",
		q, partial.SurvivalRate(), full.SurvivalRate())
}

func TestYieldDeterministicPerSeed(t *testing.T) {
	p := spaced()
	a := Yield(p, 0.05, 100, 9, false, core.Options{})
	b := Yield(p, 0.05, 100, 9, false, core.Options{})
	if a != b {
		t.Error("same seed gave different yield")
	}
}
