package pcache

import (
	"container/list"
	"sync"
	"sync/atomic"

	"dmfb/internal/core"
	"dmfb/internal/telemetry"
)

// Entry is one cached placement result: the serialised artifacts, not
// live structs, so a hit can be written straight to a response body and
// is byte-identical to the bytes a fresh run would have produced.
type Entry struct {
	// Placement is format.MarshalPlacement output for the final
	// placement.
	Placement []byte
	// Stage1 is the marshalled stage-1 placement of a two-stage run
	// (nil for single-stage placers).
	Stage1 []byte
	// Stats are the annealing statistics of the run that produced the
	// entry.
	Stats core.Stats
	// FTI is the fault-tolerance index of the final placement, and
	// Stage1FTI the stage-1 index (two-stage runs only).
	FTI       float64
	Stage1FTI float64
	// ArrayMM2 is the stage-1 array area in mm² (two-stage runs only).
	ArrayMM2 float64
}

func (e Entry) bytes() int {
	return len(e.Placement) + len(e.Stage1) + 64 // struct overhead estimate
}

// clone deep-copies the byte slices so callers can't mutate cached data.
func (e Entry) clone() Entry {
	e.Placement = append([]byte(nil), e.Placement...)
	e.Stage1 = append([]byte(nil), e.Stage1...)
	return e
}

// Stats is a point-in-time snapshot of cache effectiveness.
type Stats struct {
	Hits      int64
	Misses    int64
	Evictions int64
	Entries   int
	Bytes     int
}

// Cache is a concurrency-safe, content-addressed placement cache with
// an LRU byte budget. The zero value is not usable; construct with New.
type Cache struct {
	mu     sync.Mutex
	max    int
	bytes  int
	order  *list.List // front = most recently used; values are *cacheItem
	items  map[Key]*list.Element
	reg    *telemetry.Registry
	hits   atomic.Int64
	misses atomic.Int64
	evicts atomic.Int64
}

type cacheItem struct {
	key   Key
	entry Entry
}

// DefaultMaxBytes is the cache budget used when New is given a
// non-positive limit: enough for a few thousand placements.
const DefaultMaxBytes = 64 << 20

// New returns a cache holding at most maxBytes of serialised
// placements (DefaultMaxBytes if maxBytes <= 0). The registry may be
// nil; when set, the cache maintains pcache.hits / pcache.misses /
// pcache.evictions counters and pcache.bytes / pcache.entries gauges.
func New(maxBytes int, reg *telemetry.Registry) *Cache {
	if maxBytes <= 0 {
		maxBytes = DefaultMaxBytes
	}
	return &Cache{
		max:   maxBytes,
		order: list.New(),
		items: make(map[Key]*list.Element),
		reg:   reg,
	}
}

// Get returns the entry cached under key, if any, marking it most
// recently used.
func (c *Cache) Get(key Key) (Entry, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses.Add(1)
		c.reg.Counter("pcache.misses").Add(1)
		return Entry{}, false
	}
	c.order.MoveToFront(el)
	c.hits.Add(1)
	c.reg.Counter("pcache.hits").Add(1)
	return el.Value.(*cacheItem).entry.clone(), true
}

// Put stores entry under key, evicting least-recently-used entries as
// needed to stay within the byte budget. An entry larger than the
// entire budget is not cached at all.
func (c *Cache) Put(key Key, entry Entry) {
	entry = entry.clone()
	size := entry.bytes()
	if size > c.max {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		it := el.Value.(*cacheItem)
		c.bytes += size - it.entry.bytes()
		it.entry = entry
		c.order.MoveToFront(el)
	} else {
		c.items[key] = c.order.PushFront(&cacheItem{key: key, entry: entry})
		c.bytes += size
	}
	for c.bytes > c.max {
		back := c.order.Back()
		if back == nil {
			break
		}
		it := back.Value.(*cacheItem)
		c.order.Remove(back)
		delete(c.items, it.key)
		c.bytes -= it.entry.bytes()
		c.evicts.Add(1)
		c.reg.Counter("pcache.evictions").Add(1)
	}
	c.reg.Gauge("pcache.bytes").Set(float64(c.bytes))
	c.reg.Gauge("pcache.entries").Set(float64(len(c.items)))
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	entries, bytes := len(c.items), c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evicts.Load(),
		Entries:   entries,
		Bytes:     bytes,
	}
}
