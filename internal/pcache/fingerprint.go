// Package pcache is the content-addressed placement cache of the
// compile-and-simulate pipeline. Placements are fully deterministic
// given (assay graph, module library, array size, placer, options,
// seed), so a repeated synthesis of a common assay — PCR, a
// multiplexed in-vitro panel — need not re-run the annealer: the
// cache serves the previously computed placement bytes, which are
// guaranteed byte-identical to a fresh run.
//
// Keys are canonical SHA-256 fingerprints (see Fingerprint for the
// canonicalization rules); values are the serialised placement plus
// annealing stats, held under an LRU byte budget. All operations are
// safe for concurrent use and every hit/miss/eviction is counted in
// the telemetry registry (pcache.* metrics).
package pcache

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"sort"

	"dmfb/internal/core"
	"dmfb/internal/modlib"
	"dmfb/internal/schedule"
)

// Key is a content-addressed cache key: the hex SHA-256 of the
// canonical encoding of everything a placement depends on.
type Key string

// Input bundles the placement-determining inputs of one pipeline run.
type Input struct {
	// Schedule is the synthesis result the placement problem was
	// extracted from; its sequencing graph and bound devices are part
	// of the key. Optional for raw placement problems.
	Schedule *schedule.Schedule
	// Library is the module catalogue used for binding. Optional; when
	// present its devices are part of the key, so the same assay bound
	// against a different library never aliases.
	Library *modlib.Library
	// Problem is the placement problem: modules, core area, obstacles.
	Problem core.Problem
	// Placer names the placement algorithm ("greedy",
	// "greedy-oblivious", "sa", "twostage").
	Placer string
	// Options configures the annealing placers. Canonicalized before
	// hashing: defaults are filled in, telemetry sinks are ignored.
	Options core.Options
	// FT configures stage 2. Hashed only for the "twostage" placer —
	// the other placers never read it, so it must not split their keys.
	FT core.FTOptions
}

// Fingerprint computes the content-addressed key of a placement
// request. Canonicalization rules (documented in DESIGN.md §12):
//
//   - The sequencing graph is encoded in operation-ID order with its
//     edge list; the schedule adds each item's time span and bound
//     device name.
//   - Library devices are encoded sorted by name.
//   - Placer options are canonicalized first (zero fields take the
//     paper's defaults, so an explicit default and a zero hash
//     identically); Observer/Metrics never participate.
//   - Multi-start search participates through Starts and the seed
//     override only; Workers is a concurrency cap that never changes
//     the result, so it must never split (or alias) a key.
//   - FT options participate only when the placer is "twostage".
//   - The encoding is versioned ("pcache/v2"): change the encoding,
//     bump the version, and every old key misses rather than aliasing.
func Fingerprint(in Input) Key {
	h := sha256.New()
	fmt.Fprintln(h, "dmfb pcache/v2")
	fmt.Fprintf(h, "placer %s\n", in.Placer)

	if s := in.Schedule; s != nil {
		fmt.Fprintf(h, "graph %q makespan=%d\n", s.Graph.Name, s.Makespan)
		for _, op := range s.Graph.Ops() {
			fmt.Fprintf(h, "op %d %q %s %q\n", op.ID, op.Name, op.Kind, op.Fluid)
			for _, succ := range s.Graph.Succ(op.ID) {
				fmt.Fprintf(h, "edge %d %d\n", op.ID, succ)
			}
		}
		for i, it := range s.Items {
			dev := ""
			if it.Bound {
				dev = it.Device.Name
			}
			fmt.Fprintf(h, "item %d [%d,%d) bound=%t dev=%q\n",
				i, it.Span.Start, it.Span.End, it.Bound, dev)
		}
	}
	if in.Library != nil {
		devs := in.Library.Devices()
		sort.Slice(devs, func(a, b int) bool { return devs[a].Name < devs[b].Name })
		for _, d := range devs {
			fmt.Fprintf(h, "lib %q %s %dx%d %ds\n", d.Name, d.Kind, d.Size.W, d.Size.H, d.Duration)
		}
	}

	fmt.Fprintf(h, "core %dx%d\n", in.Problem.MaxW, in.Problem.MaxH)
	for _, m := range in.Problem.Modules {
		fmt.Fprintf(h, "module %d %q %dx%d [%d,%d)\n",
			m.ID, m.Name, m.Size.W, m.Size.H, m.Span.Start, m.Span.End)
	}
	for _, o := range in.Problem.Obstacles {
		fmt.Fprintf(h, "obstacle %d,%d\n", o.X, o.Y)
	}

	writeOptions(h, in.Options.Canonicalized())
	if in.Placer == "twostage" {
		ft := in.FT.Canonicalized()
		fmt.Fprintf(h, "ft beta=%g t0=%g margin=%d restarts=%d\n",
			ft.Beta, ft.T0, ft.MarginCells, ft.Restarts)
	}
	return Key(hex.EncodeToString(h.Sum(nil)))
}

func writeOptions(w io.Writer, o core.Options) {
	fmt.Fprintf(w, "opts seed=%d t0=%g alpha=%g iters=%d psingle=%g overlap=%g wt0=%g patience=%d\n",
		o.Seed, o.T0, o.Alpha, o.ItersPerModule, o.PSingle,
		o.OverlapPenalty, o.WindowT0, o.WindowPatience)
	// o.Search is already Normalized by Canonicalized: Starts ≥ 1 and
	// Workers cleared, so the worker count can never split a key.
	fmt.Fprintf(w, "search starts=%d seed=%d\n", o.Search.Starts, o.Search.Seed)
}
