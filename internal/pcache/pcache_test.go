package pcache

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/format"
	"dmfb/internal/telemetry"
)

func TestCacheBasics(t *testing.T) {
	reg := telemetry.NewRegistry()
	c := New(0, reg)

	if _, ok := c.Get("missing"); ok {
		t.Fatal("hit on empty cache")
	}
	e := Entry{Placement: []byte("placement-bytes"), FTI: 0.5}
	c.Put("k1", e)
	got, ok := c.Get("k1")
	if !ok {
		t.Fatal("miss after Put")
	}
	if !bytes.Equal(got.Placement, e.Placement) || got.FTI != e.FTI {
		t.Fatalf("entry mismatch: %+v", got)
	}

	// Returned slices are copies: mutating one must not poison the cache.
	got.Placement[0] = 'X'
	again, _ := c.Get("k1")
	if again.Placement[0] == 'X' {
		t.Fatal("Get returned an aliased slice")
	}

	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 || s.Entries != 1 {
		t.Fatalf("stats = %+v, want 2 hits / 1 miss / 1 entry", s)
	}
	if v := reg.Counter("pcache.hits").Value(); v != 2 {
		t.Errorf("pcache.hits counter = %d, want 2", v)
	}
	if v := reg.Counter("pcache.misses").Value(); v != 1 {
		t.Errorf("pcache.misses counter = %d, want 1", v)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	entrySize := Entry{Placement: make([]byte, 100)}.bytes()
	c := New(3*entrySize, nil) // room for exactly three entries

	for i := 0; i < 3; i++ {
		c.Put(Key(fmt.Sprintf("k%d", i)), Entry{Placement: make([]byte, 100)})
	}
	c.Get("k0") // refresh k0: k1 becomes least recently used
	c.Put("k3", Entry{Placement: make([]byte, 100)})

	if _, ok := c.Get("k1"); ok {
		t.Error("k1 should have been evicted as LRU")
	}
	for _, k := range []Key{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Errorf("%s should have survived eviction", k)
		}
	}
	if s := c.Stats(); s.Evictions != 1 || s.Entries != 3 {
		t.Errorf("stats = %+v, want 1 eviction / 3 entries", s)
	}

	// An entry larger than the whole budget is refused outright.
	c.Put("huge", Entry{Placement: make([]byte, 10*entrySize)})
	if _, ok := c.Get("huge"); ok {
		t.Error("over-budget entry was cached")
	}
}

// TestCacheByteIdentity is the layer-2 acceptance test: the bytes
// served from cache are exactly the bytes a fresh placement run
// produces.
func TestCacheByteIdentity(t *testing.T) {
	in := pcrInput(t)
	run := func() []byte {
		p, _, err := core.AnnealArea(in.Problem, in.Options)
		if err != nil {
			t.Fatal(err)
		}
		raw, err := format.MarshalPlacement(p)
		if err != nil {
			t.Fatal(err)
		}
		return raw
	}

	c := New(0, nil)
	key := Fingerprint(in)
	fresh := run()
	c.Put(key, Entry{Placement: fresh})

	cached, ok := c.Get(key)
	if !ok {
		t.Fatal("placement not found under its own fingerprint")
	}
	if !bytes.Equal(cached.Placement, fresh) {
		t.Fatal("cached placement differs from stored bytes")
	}
	if rerun := run(); !bytes.Equal(cached.Placement, rerun) {
		t.Fatal("fresh re-run differs from cached placement — placer is nondeterministic")
	}
}

// TestCacheConcurrent hammers the cache from many goroutines; run
// under -race (make race / CI) this is the concurrency acceptance test.
func TestCacheConcurrent(t *testing.T) {
	entrySize := Entry{Placement: make([]byte, 64)}.bytes()
	c := New(8*entrySize, telemetry.NewRegistry()) // small budget forces evictions
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := Key(fmt.Sprintf("k%d", (g+i)%16))
				if _, ok := c.Get(key); !ok {
					c.Put(key, Entry{Placement: make([]byte, 64)})
				}
				if i%97 == 0 {
					c.Stats()
					c.Len()
				}
			}
		}(g)
	}
	wg.Wait()

	s := c.Stats()
	if s.Hits+s.Misses != 8*500 {
		t.Errorf("hits+misses = %d, want %d", s.Hits+s.Misses, 8*500)
	}
	if s.Entries > 8 || s.Bytes > 8*entrySize {
		t.Errorf("budget exceeded: %+v", s)
	}
}
