package pcache

import (
	"testing"

	"dmfb/internal/anneal"
	"dmfb/internal/assay"
	"dmfb/internal/core"
	"dmfb/internal/geom"
	"dmfb/internal/invitro"
	"dmfb/internal/modlib"
	"dmfb/internal/pcr"
)

// Golden fingerprints for the paper's two reference assays. These pin
// the canonical encoding: if either changes, every cache entry in the
// wild silently misses, so a change here must be deliberate (and must
// bump the "pcache/v2" version string).
const (
	goldenPCRKey     = Key("e63b0f1bb33a86bbc5e12c5907f6edbf43015b5829d9b078bf836731fcec533e")
	goldenInvitroKey = Key("76949f143f3104c24b5119f8276d2ed3fc95a86f54419ad4f96442ceb835446d")
)

func pcrInput(t *testing.T) Input {
	t.Helper()
	s, err := pcr.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	return Input{
		Schedule: s,
		Library:  modlib.Table1(),
		Problem:  core.FromSchedule(s),
		Placer:   "sa",
		Options:  core.Options{Seed: 1},
	}
}

func invitroInput(t *testing.T) Input {
	t.Helper()
	s := invitro.MustSynthesize(2, 2, 0)
	return Input{
		Schedule: s,
		Library:  modlib.Table1(),
		Problem:  core.FromSchedule(s),
		Placer:   "twostage",
		Options:  core.Options{Seed: 1},
		FT:       core.FTOptions{Beta: 30},
	}
}

func TestFingerprintGolden(t *testing.T) {
	if got := Fingerprint(pcrInput(t)); got != goldenPCRKey {
		t.Errorf("PCR fingerprint = %s, want %s", got, goldenPCRKey)
	}
	if got := Fingerprint(invitroInput(t)); got != goldenInvitroKey {
		t.Errorf("in-vitro fingerprint = %s, want %s", got, goldenInvitroKey)
	}
}

// TestFingerprintCanonicalization: zero-valued options and their
// explicit paper defaults must hash identically, and telemetry sinks
// must not participate in the key.
func TestFingerprintCanonicalization(t *testing.T) {
	base := pcrInput(t)
	key := Fingerprint(base)

	explicit := base
	explicit.Options = core.Options{Seed: 1}.Canonicalized()
	if got := Fingerprint(explicit); got != key {
		t.Errorf("explicit-default options changed the key: %s vs %s", got, key)
	}

	observed := base
	observed.Options.Observer = func(anneal.Progress) {}
	if got := Fingerprint(observed); got != key {
		t.Errorf("attaching an Observer changed the key")
	}

	// Workers only caps concurrency — the multi-start winner is
	// byte-identical at any worker count, so Workers must never split
	// a key; "no search options" and "one start" mean the same run.
	workers := base
	workers.Options.Search.Workers = 7
	if got := Fingerprint(workers); got != key {
		t.Errorf("Search.Workers changed the key")
	}
	oneStart := base
	oneStart.Options.Search.Starts = 1
	if got := Fingerprint(oneStart); got != key {
		t.Errorf("Search.Starts=1 changed the key of a single-start run")
	}

	// FT options are irrelevant to single-stage placers...
	ft := base
	ft.FT = core.FTOptions{Beta: 99}
	if got := Fingerprint(ft); got != key {
		t.Errorf("FT options changed a non-twostage key")
	}
	// ...but do participate for twostage.
	ts1, ts2 := invitroInput(t), invitroInput(t)
	ts2.FT.Beta = 60
	if Fingerprint(ts1) == Fingerprint(ts2) {
		t.Errorf("twostage beta mutation did not change the key")
	}
}

// TestFingerprintMutations: every placement-relevant mutation of the
// input must produce a distinct key. Mutations are to non-default
// values, since canonicalization deliberately folds zero → default.
func TestFingerprintMutations(t *testing.T) {
	mutations := []struct {
		name string
		mut  func(*Input)
	}{
		{"placer", func(in *Input) { in.Placer = "greedy" }},
		{"seed", func(in *Input) { in.Options.Seed = 2 }},
		{"t0", func(in *Input) { in.Options.T0 = 5000 }},
		{"alpha", func(in *Input) { in.Options.Alpha = 0.95 }},
		{"iters", func(in *Input) { in.Options.ItersPerModule = 100 }},
		{"psingle", func(in *Input) { in.Options.PSingle = 0.5 }},
		{"overlap", func(in *Input) { in.Options.OverlapPenalty = 50 }},
		{"window_t0", func(in *Input) { in.Options.WindowT0 = 77 }},
		{"patience", func(in *Input) { in.Options.WindowPatience = 3 }},
		{"starts", func(in *Input) { in.Options.Search.Starts = 8 }},
		{"search_seed", func(in *Input) { in.Options.Search.Seed = 5 }},
		{"array_w", func(in *Input) { in.Problem.MaxW++ }},
		{"array_h", func(in *Input) { in.Problem.MaxH++ }},
		{"obstacle", func(in *Input) {
			in.Problem.Obstacles = append(in.Problem.Obstacles, geom.Point{X: 1, Y: 1})
		}},
		{"module_size", func(in *Input) { in.Problem.Modules[0].Size.W++ }},
		{"module_span", func(in *Input) { in.Problem.Modules[0].Span.End++ }},
		{"schedule_span", func(in *Input) { in.Schedule.Items[2].Span.End++ }},
		{"schedule_device", func(in *Input) {
			for i := range in.Schedule.Items {
				if in.Schedule.Items[i].Bound {
					in.Schedule.Items[i].Device.Name = "other"
					return
				}
			}
			t.Fatal("no bound item to mutate")
		}},
		{"library_device", func(in *Input) {
			lib, err := modlib.NewLibrary(modlib.Device{
				Name: "mixer-tiny", Kind: assay.Mix,
				Size: geom.Size{W: 2, H: 2}, Duration: 9,
			})
			if err != nil {
				t.Fatal(err)
			}
			in.Library = lib
		}},
		{"no_schedule", func(in *Input) { in.Schedule = nil }},
		{"no_library", func(in *Input) { in.Library = nil }},
	}

	seen := map[Key]string{Fingerprint(pcrInput(t)): "base"}
	for _, m := range mutations {
		in := pcrInput(t) // fresh input: mutations must not accumulate
		m.mut(&in)
		key := Fingerprint(in)
		if prev, dup := seen[key]; dup {
			t.Errorf("mutation %q collides with %q: %s", m.name, prev, key)
		}
		seen[key] = m.name
	}
}
