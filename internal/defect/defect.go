// Package defect models fabrication defect maps for yield analysis —
// the companion direction to the source paper ("Yield Enhancement of
// Digital Microfluidics-Based Biochips Using Space Redundancy and
// Local Reconfiguration", arXiv:0710.4672). A defect map is the set of
// cells of a fabricated array that came out of manufacturing dead;
// yield is the fraction of dies whose configuration absorbs all of its
// defects through local reconfiguration.
//
// Three models are provided:
//
//   - uniform: every cell fails independently with probability Prob —
//     the classical single-parameter model the original yield trials
//     used. Draw-for-draw compatible with the historical per-cell
//     scan-order Float64 stream, so existing campaign goldens hold.
//   - clustered: a Poisson-cluster (Neyman–Scott) process. Fabrication
//     defects arrive in spatially correlated clumps, not as salt and
//     pepper: cluster centers fall as a Poisson process over the array
//     with the rate chosen so the mean defect density is Prob, each
//     cluster holds 1 + Poisson(ClusterSize−1) defects, and the extras
//     scatter uniformly within a Chebyshev radius of the center.
//   - file: an explicit map, parsed from the textual grid format of
//     ParseMap ('.' good, 'X' defective, '#' comments).
//
// Determinism contract: Generate draws exclusively from the *rand.Rand
// it is handed and returns cells sorted in scan order (y then x),
// deduplicated and clipped to the array. Campaign trials pass their
// private per-trial stream (campaign.TrialRNG), which makes every
// defect map byte-identical at any worker count, across kill/resume,
// and between single-process and dispatcher/simd runs.
package defect

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"dmfb/internal/geom"
)

// Model names accepted by Params.Model and the -defect-model flag.
const (
	ModelUniform   = "uniform"
	ModelClustered = "clustered"
	ModelFile      = "file"
)

// Generator produces one die's defect map. Implementations must be
// pure functions of (array, rng): all randomness comes from rng and
// the returned cells are sorted in scan order, deduplicated, and
// inside the array.
type Generator interface {
	// Name returns the model name ("uniform", "clustered", "file").
	Name() string
	// Generate draws the defect cells of one fabricated die.
	Generate(array geom.Rect, rng *rand.Rand) []geom.Point
}

// Params is the portable, fingerprintable description of a defect
// model — the document that travels inside a campaign spec so a
// distributed fleet generates byte-identical maps. The zero value
// normalizes to the uniform model at the dmfb-campaign default
// density.
type Params struct {
	// Model selects the generator: uniform | clustered | file.
	Model string `json:"model,omitempty"`
	// Prob is the mean per-cell defect probability (uniform and
	// clustered models).
	Prob float64 `json:"prob,omitempty"`
	// ClusterSize is the mean number of defects per cluster
	// (clustered model; >= 1).
	ClusterSize float64 `json:"cluster_size,omitempty"`
	// ClusterRadius is the Chebyshev scatter radius of a cluster's
	// defects around its center, in cells (clustered model).
	ClusterRadius int `json:"cluster_radius,omitempty"`
	// Map is the serialized defect map (file model) in ParseMap
	// format. The content — not a filename — is carried here, so a
	// remote worker needs no shared filesystem.
	Map string `json:"map,omitempty"`
}

// Normalized fills in the defaults, mirroring the dmfb-campaign flag
// surface: empty model means uniform, zero cluster parameters take the
// flag defaults.
func (pr Params) Normalized() Params {
	if pr.Model == "" {
		pr.Model = ModelUniform
	}
	if pr.Prob == 0 {
		pr.Prob = 0.01
	}
	if pr.ClusterSize == 0 {
		pr.ClusterSize = 4
	}
	if pr.ClusterRadius == 0 {
		pr.ClusterRadius = 2
	}
	return pr
}

// Validate checks the parameters describe a generatable model. It
// validates the normalized form, so a zero value passes (it is the
// default uniform model); callers that must reject unset flags (the
// CLI's strict -defect-prob check) should validate the raw values
// before normalizing.
func (pr Params) Validate() error {
	pr = pr.Normalized()
	switch pr.Model {
	case ModelUniform, ModelClustered:
		if pr.Prob <= 0 || pr.Prob >= 1 {
			return fmt.Errorf("defect: probability %g outside (0,1)", pr.Prob)
		}
		if pr.Model == ModelClustered {
			if pr.ClusterSize < 1 || pr.ClusterSize > 64 {
				return fmt.Errorf("defect: cluster size %g outside [1,64]", pr.ClusterSize)
			}
			if pr.ClusterRadius < 0 || pr.ClusterRadius > 64 {
				return fmt.Errorf("defect: cluster radius %d outside [0,64]", pr.ClusterRadius)
			}
		}
	case ModelFile:
		if pr.Map == "" {
			return fmt.Errorf("defect: file model needs a map (-defect-file)")
		}
		if _, err := ParseMap(pr.Map); err != nil {
			return err
		}
	default:
		return fmt.Errorf("defect: unknown model %q (want uniform, clustered or file)", pr.Model)
	}
	return nil
}

// Generator builds the generator the parameters describe.
func (pr Params) Generator() (Generator, error) {
	if err := pr.Validate(); err != nil {
		return nil, err
	}
	pr = pr.Normalized()
	switch pr.Model {
	case ModelUniform:
		return Uniform{Prob: pr.Prob}, nil
	case ModelClustered:
		return Clustered{Prob: pr.Prob, ClusterSize: pr.ClusterSize, Radius: pr.ClusterRadius}, nil
	default:
		return ParseMap(pr.Map)
	}
}

// FingerprintParts returns the values that must participate in a
// campaign's config fingerprint: everything that changes which defect
// map a trial sees. Passed to campaign.ConfigFingerprint so two specs
// with different defect models never share a checkpoint or a builder
// cache entry.
func (pr Params) FingerprintParts() []any {
	pr = pr.Normalized()
	return []any{pr.Model, pr.Prob, pr.ClusterSize, pr.ClusterRadius, pr.Map}
}

// Uniform is the independent per-cell defect model: every array cell
// fails with probability Prob. The draw order (one Float64 per cell,
// y-major scan) is the historical yield-trial stream and must never
// change — recorded campaigns and determinism goldens pin it.
type Uniform struct {
	Prob float64
}

// Name implements Generator.
func (u Uniform) Name() string { return ModelUniform }

// Generate implements Generator.
func (u Uniform) Generate(array geom.Rect, rng *rand.Rand) []geom.Point {
	var out []geom.Point
	for y := 0; y < array.H; y++ {
		for x := 0; x < array.W; x++ {
			if rng.Float64() < u.Prob {
				out = append(out, geom.Point{X: array.X + x, Y: array.Y + y})
			}
		}
	}
	return out
}

// Clustered is the Poisson-cluster defect model: cluster centers fall
// uniformly with Poisson-distributed count rate Prob·cells/ClusterSize
// (so the mean defect density stays Prob), each cluster holds
// 1 + Poisson(ClusterSize−1) defects, and the extras scatter within
// Chebyshev distance Radius of the center. Defects landing outside the
// array are lost (edge clusters are smaller, as on real wafers).
type Clustered struct {
	// Prob is the mean per-cell defect density.
	Prob float64
	// ClusterSize is the mean defects per cluster (>= 1).
	ClusterSize float64
	// Radius is the Chebyshev scatter radius in cells.
	Radius int
}

// Name implements Generator.
func (c Clustered) Name() string { return ModelClustered }

// Generate implements Generator.
func (c Clustered) Generate(array geom.Rect, rng *rand.Rand) []geom.Point {
	cells := array.Cells()
	if cells == 0 || c.Prob <= 0 {
		return nil
	}
	mean := c.ClusterSize
	if mean < 1 {
		mean = 1
	}
	radius := c.Radius
	if radius < 0 {
		radius = 0
	}
	clusters := poisson(rng, c.Prob*float64(cells)/mean)
	var out []geom.Point
	for i := 0; i < clusters; i++ {
		center := geom.Point{
			X: array.X + rng.Intn(array.W),
			Y: array.Y + rng.Intn(array.H),
		}
		out = append(out, center)
		size := 1 + poisson(rng, mean-1)
		for j := 1; j < size; j++ {
			pt := geom.Point{
				X: center.X + rng.Intn(2*radius+1) - radius,
				Y: center.Y + rng.Intn(2*radius+1) - radius,
			}
			if array.Contains(pt) {
				out = append(out, pt)
			}
		}
	}
	return canonicalize(out)
}

// poisson draws from a Poisson distribution with the given mean, via
// Knuth's product-of-uniforms method. Every draw consumes Float64
// calls from rng only, keeping cluster generation on the trial's
// private stream. The lambdas in play are small (a handful of clusters
// per die), where this method is both exact and fast.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	limit := math.Exp(-lambda)
	k, p := 0, 1.0
	for {
		p *= rng.Float64()
		if p <= limit {
			return k
		}
		k++
	}
}

// canonicalize sorts cells in scan order (y then x) and removes
// duplicates, establishing the canonical map representation every
// generator returns.
func canonicalize(cells []geom.Point) []geom.Point {
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Y != cells[j].Y {
			return cells[i].Y < cells[j].Y
		}
		return cells[i].X < cells[j].X
	})
	out := cells[:0]
	for i, c := range cells {
		if i > 0 && c == cells[i-1] {
			continue
		}
		out = append(out, c)
	}
	return out
}
