package defect

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"dmfb/internal/geom"
)

// TestUniformMatchesHistoricalDraws pins the uniform generator to the
// historical yield-trial stream: one Float64 per cell in y-major scan
// order. YieldTrial delegates to this generator, so any drift here
// breaks every recorded uniform yield campaign.
func TestUniformMatchesHistoricalDraws(t *testing.T) {
	array := geom.Rect{X: 0, Y: 0, W: 9, H: 7}
	for _, prob := range []float64{0.01, 0.05, 0.3} {
		got := Uniform{Prob: prob}.Generate(array, rand.New(rand.NewSource(42)))

		rng := rand.New(rand.NewSource(42))
		var want []geom.Point
		for y := 0; y < array.H; y++ {
			for x := 0; x < array.W; x++ {
				if rng.Float64() < prob {
					want = append(want, geom.Point{X: array.X + x, Y: array.Y + y})
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("prob %g: %d defects, historical loop drew %d", prob, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("prob %g: defect %d is %v, historical loop drew %v", prob, i, got[i], want[i])
			}
		}
	}
}

func checkCanonical(t *testing.T, array geom.Rect, cells []geom.Point) {
	t.Helper()
	for i, c := range cells {
		if !array.Contains(c) {
			t.Fatalf("defect %v outside array %v", c, array)
		}
		if i == 0 {
			continue
		}
		prev := cells[i-1]
		if c.Y < prev.Y || (c.Y == prev.Y && c.X <= prev.X) {
			t.Fatalf("cells not in strict scan order: %v after %v", c, prev)
		}
	}
}

func TestClusteredDeterministicAndCanonical(t *testing.T) {
	array := geom.Rect{X: 0, Y: 0, W: 12, H: 10}
	gen := Clustered{Prob: 0.05, ClusterSize: 4, Radius: 2}
	a := gen.Generate(array, rand.New(rand.NewSource(9)))
	b := gen.Generate(array, rand.New(rand.NewSource(9)))
	if len(a) != len(b) {
		t.Fatalf("same seed drew %d and %d defects", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed drew different maps at %d: %v vs %v", i, a[i], b[i])
		}
	}
	checkCanonical(t, array, a)
}

// TestClusteredMeanDensity checks the cluster rate compensation: the
// mean defect density over many dies must track Prob, not
// Prob*ClusterSize.
func TestClusteredMeanDensity(t *testing.T) {
	array := geom.Rect{X: 0, Y: 0, W: 20, H: 20}
	const prob = 0.03
	gen := Clustered{Prob: prob, ClusterSize: 4, Radius: 2}
	rng := rand.New(rand.NewSource(5))
	total := 0
	const dies = 2000
	for i := 0; i < dies; i++ {
		total += len(gen.Generate(array, rng))
	}
	mean := float64(total) / float64(dies) / float64(array.Cells())
	// Dedup and edge clipping push the density slightly below Prob;
	// an empirical mean in [prob/2, 1.2*prob] means the rate is
	// compensated (uncompensated would sit near ClusterSize*prob).
	if mean < prob/2 || mean > 1.2*prob {
		t.Errorf("mean density %.4f not tracking prob %.4f", mean, prob)
	}
}

func TestClusteredZeroProb(t *testing.T) {
	array := geom.Rect{X: 0, Y: 0, W: 8, H: 8}
	if got := (Clustered{Prob: 0, ClusterSize: 4, Radius: 2}).Generate(array, rand.New(rand.NewSource(1))); len(got) != 0 {
		t.Errorf("zero prob drew %d defects", len(got))
	}
}

func TestParseMapRoundTrip(t *testing.T) {
	text := "# die 24\n..........\n..X....X..\n.....x....\n..........\n"
	f, err := ParseMap(text)
	if err != nil {
		t.Fatal(err)
	}
	if f.W != 10 || f.H != 4 {
		t.Fatalf("parsed %dx%d, want 10x4", f.W, f.H)
	}
	want := []geom.Point{{X: 2, Y: 1}, {X: 7, Y: 1}, {X: 5, Y: 2}}
	if len(f.Cells) != len(want) {
		t.Fatalf("parsed %d defects, want %d", len(f.Cells), len(want))
	}
	for i := range want {
		if f.Cells[i] != want[i] {
			t.Fatalf("defect %d is %v, want %v", i, f.Cells[i], want[i])
		}
	}
	back, err := ParseMap(FormatMap(f))
	if err != nil {
		t.Fatal(err)
	}
	if back.W != f.W || back.H != f.H || len(back.Cells) != len(f.Cells) {
		t.Fatalf("roundtrip changed the map: %+v vs %+v", back, f)
	}
	for i := range f.Cells {
		if back.Cells[i] != f.Cells[i] {
			t.Fatalf("roundtrip changed defect %d: %v vs %v", i, back.Cells[i], f.Cells[i])
		}
	}
}

func TestParseMapErrors(t *testing.T) {
	cases := []struct {
		name, text, want string
	}{
		{"empty", "", "no rows"},
		{"comments only", "# nothing\n\n", "no rows"},
		{"ragged", "....\n...\n", "want 4"},
		{"invalid cell", "..?.\n", "invalid cell"},
		{"too wide", strings.Repeat(".", MaxMapDim+1) + "\n", "exceeds"},
	}
	for _, c := range cases {
		if _, err := ParseMap(c.text); err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want containing %q", c.name, err, c.want)
		}
	}
}

func TestFixedGenerateAnchorsAndClips(t *testing.T) {
	f := Fixed{W: 4, H: 4, Cells: []geom.Point{{X: 1, Y: 1}, {X: 3, Y: 3}}}
	array := geom.Rect{X: 2, Y: 5, W: 3, H: 3} // smaller than the map: (3,3) clips
	got := f.Generate(array, nil)
	want := []geom.Point{{X: 3, Y: 6}}
	if len(got) != 1 || got[0] != want[0] {
		t.Errorf("Generate = %v, want %v", got, want)
	}
}

func TestParamsValidate(t *testing.T) {
	cases := []struct {
		name string
		pr   Params
		ok   bool
	}{
		{"zero value (default uniform)", Params{}, true},
		{"uniform", Params{Model: ModelUniform, Prob: 0.05}, true},
		{"uniform prob too high", Params{Model: ModelUniform, Prob: 1}, false},
		{"uniform prob negative", Params{Model: ModelUniform, Prob: -0.1}, false},
		{"clustered", Params{Model: ModelClustered, Prob: 0.02, ClusterSize: 4, ClusterRadius: 2}, true},
		{"clustered bad size", Params{Model: ModelClustered, Prob: 0.02, ClusterSize: 100}, false},
		{"clustered bad radius", Params{Model: ModelClustered, Prob: 0.02, ClusterRadius: 100}, false},
		{"file", Params{Model: ModelFile, Map: "..X.\n....\n"}, true},
		{"file without map", Params{Model: ModelFile}, false},
		{"file with bad map", Params{Model: ModelFile, Map: "..?\n"}, false},
		{"unknown model", Params{Model: "salt-and-pepper"}, false},
	}
	for _, c := range cases {
		err := c.pr.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
		if gen, gerr := c.pr.Generator(); (gerr == nil) != c.ok {
			t.Errorf("%s: Generator() = %v, want ok=%v", c.name, gerr, c.ok)
		} else if c.ok && gen == nil {
			t.Errorf("%s: Generator() returned nil without error", c.name)
		}
	}
}

func TestFingerprintPartsDistinguishModels(t *testing.T) {
	key := func(pr Params) string { return fmt.Sprintf("%v", pr.FingerprintParts()) }
	a := key(Params{Model: ModelUniform, Prob: 0.02})
	b := key(Params{Model: ModelClustered, Prob: 0.02})
	c := key(Params{Model: ModelClustered, Prob: 0.02, ClusterSize: 8})
	d := key(Params{Model: ModelFile, Map: "X.\n..\n"})
	if a == b || b == c || c == d || a == d {
		t.Errorf("fingerprint parts collide: %q %q %q %q", a, b, c, d)
	}
}
