package defect

import (
	"fmt"
	"math/rand"
	"strings"

	"dmfb/internal/geom"
)

// MaxMapDim bounds the width and height of a parsed defect map. Real
// arrays are tens of cells on a side; the bound keeps a hostile map
// file from allocating unbounded memory.
const MaxMapDim = 512

// Fixed is an explicit defect map: the cells of a W×H die that are
// known dead, in die-local coordinates. It is the generator behind the
// "file" model — Generate anchors the map at the array origin and
// ignores the RNG entirely, so every trial sees the same die.
type Fixed struct {
	// W, H are the die dimensions the map was drawn for.
	W, H int
	// Cells are the defective cells in die-local coordinates, sorted
	// in scan order and deduplicated.
	Cells []geom.Point
}

// Name implements Generator.
func (f Fixed) Name() string { return ModelFile }

// Generate implements Generator: the map anchored at the array
// origin, clipped to the array. The RNG is untouched.
func (f Fixed) Generate(array geom.Rect, _ *rand.Rand) []geom.Point {
	var out []geom.Point
	for _, c := range f.Cells {
		pt := geom.Point{X: array.X + c.X, Y: array.Y + c.Y}
		if array.Contains(pt) {
			out = append(out, pt)
		}
	}
	return out
}

// ParseMap parses the textual defect-map format:
//
//	# lines starting with '#' are comments, blank lines are skipped
//	..........
//	..X....X..
//	..........
//
// '.' (or '0') is a good cell, 'X' (or 'x', '1') a defective one. The
// first map line fixes the width; every following line must match it.
// Rows are given top-to-bottom and stored with row 0 first, matching
// the renderer's orientation everywhere else in the repo.
func ParseMap(text string) (Fixed, error) {
	var f Fixed
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimRight(line, "\r")
		trimmed := strings.TrimSpace(line)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		if f.H == 0 {
			f.W = len(trimmed)
			if f.W > MaxMapDim {
				return Fixed{}, fmt.Errorf("defect: map row of %d cells exceeds the %d-cell limit", f.W, MaxMapDim)
			}
		} else if len(trimmed) != f.W {
			return Fixed{}, fmt.Errorf("defect: map line %d is %d cells wide, want %d", ln+1, len(trimmed), f.W)
		}
		y := f.H
		for x, ch := range trimmed {
			switch ch {
			case '.', '0':
			case 'X', 'x', '1':
				f.Cells = append(f.Cells, geom.Point{X: x, Y: y})
			default:
				return Fixed{}, fmt.Errorf("defect: map line %d has invalid cell %q (want . 0 X x 1)", ln+1, string(ch))
			}
		}
		f.H++
		if f.H > MaxMapDim {
			return Fixed{}, fmt.Errorf("defect: map of %d rows exceeds the %d-row limit", f.H, MaxMapDim)
		}
	}
	if f.H == 0 {
		return Fixed{}, fmt.Errorf("defect: map has no rows")
	}
	return f, nil
}

// FormatMap renders the map in the canonical ParseMap format ('.' and
// 'X', one row per line). ParseMap(FormatMap(f)) reproduces f exactly.
func FormatMap(f Fixed) string {
	dead := make(map[geom.Point]bool, len(f.Cells))
	for _, c := range f.Cells {
		dead[c] = true
	}
	var b strings.Builder
	for y := 0; y < f.H; y++ {
		for x := 0; x < f.W; x++ {
			if dead[geom.Point{X: x, Y: y}] {
				b.WriteByte('X')
			} else {
				b.WriteByte('.')
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
