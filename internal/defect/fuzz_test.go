package defect

import (
	"testing"
)

// FuzzDefectMap fuzzes the textual defect-map parser: arbitrary text
// either fails to parse, or yields a map whose cells are in-bounds,
// strictly scan-ordered (hence deduplicated), and that survives a
// FormatMap/ParseMap round trip exactly — the canonicalization the
// file model's fingerprint stability depends on.
func FuzzDefectMap(f *testing.F) {
	f.Add("")
	f.Add("....\n.XX.\n....\n")
	f.Add("# comment\nX.\n.x\n")
	f.Add("0101\n1010\n")
	f.Add("...\n..\n") // ragged
	f.Add(".?.\n")     // invalid cell
	f.Add("..X.\r\n....\r\n")
	f.Fuzz(func(t *testing.T, text string) {
		m, err := ParseMap(text)
		if err != nil {
			return
		}
		if m.W < 1 || m.W > MaxMapDim || m.H < 1 || m.H > MaxMapDim {
			t.Fatalf("parsed dimensions %dx%d out of bounds", m.W, m.H)
		}
		for i, c := range m.Cells {
			if c.X < 0 || c.X >= m.W || c.Y < 0 || c.Y >= m.H {
				t.Fatalf("cell %v outside %dx%d map", c, m.W, m.H)
			}
			if i > 0 {
				prev := m.Cells[i-1]
				if c.Y < prev.Y || (c.Y == prev.Y && c.X <= prev.X) {
					t.Fatalf("cells not in strict scan order: %v after %v", c, prev)
				}
			}
		}
		back, err := ParseMap(FormatMap(m))
		if err != nil {
			t.Fatalf("canonical render does not re-parse: %v", err)
		}
		if back.W != m.W || back.H != m.H || len(back.Cells) != len(m.Cells) {
			t.Fatalf("round trip changed the map: %dx%d/%d cells vs %dx%d/%d cells",
				back.W, back.H, len(back.Cells), m.W, m.H, len(m.Cells))
		}
		for i := range m.Cells {
			if back.Cells[i] != m.Cells[i] {
				t.Fatalf("round trip changed cell %d: %v vs %v", i, back.Cells[i], m.Cells[i])
			}
		}
	})
}
