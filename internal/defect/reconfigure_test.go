package defect

import (
	"bytes"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/format"
	"dmfb/internal/geom"
	"dmfb/internal/pcr"
	"dmfb/internal/place"
	"dmfb/internal/recovery"
	"dmfb/internal/schedule"
)

// pcrFixture is the seed-2 area-minimal PCR placement with its
// schedule — origin-anchored, as Reconfigure requires.
func pcrFixture(t *testing.T) (*schedule.Schedule, *place.Placement) {
	t.Helper()
	s := pcr.MustSchedule()
	p, _, err := core.AnnealArea(core.FromSchedule(s),
		core.Options{Seed: 2, ItersPerModule: 120, WindowPatience: 4})
	if err != nil {
		t.Fatal(err)
	}
	return s, p
}

func reconfOpts() ReconfigureOptions {
	return ReconfigureOptions{Anneal: core.Options{Seed: 1, ItersPerModule: 60, WindowPatience: 2}}
}

func TestReconfigureEmptyMapSurvives(t *testing.T) {
	s, p := pcrFixture(t)
	rev := Reconfigure(s, p, p.BoundingBox(), nil, reconfOpts())
	if !rev.Survivable {
		t.Fatal("defect-free die reported unsurvivable")
	}
	if len(rev.Levels) != 0 || rev.Deepest != recovery.LevelNone || rev.StretchSec != 0 {
		t.Errorf("defect-free review carries work: %+v", rev)
	}
	if rev.Placement != p || rev.Sched != s {
		t.Error("defect-free review must return the inputs unchanged")
	}
}

func TestReconfigureUnusedCellIsFree(t *testing.T) {
	s, p := pcrFixture(t)
	array := p.BoundingBox()
	var free *geom.Point
	for y := 0; y < array.H && free == nil; y++ {
		for x := 0; x < array.W; x++ {
			cell := geom.Point{X: array.X + x, Y: array.Y + y}
			if len(p.ModulesAt(cell)) == 0 {
				free = &cell
				break
			}
		}
	}
	if free == nil {
		t.Skip("fixture placement has no unused cell")
	}
	rev := Reconfigure(s, p, array, []geom.Point{*free}, reconfOpts())
	if !rev.Survivable {
		t.Fatalf("defect on unused cell %v unsurvivable", *free)
	}
	if len(rev.Levels) != 1 || rev.Levels[0] != recovery.LevelNone {
		t.Errorf("levels = %v, want [none]", rev.Levels)
	}
}

func TestReconfigureModuleCellRelocates(t *testing.T) {
	s, p := pcrFixture(t)
	array := p.BoundingBox()
	var hit geom.Point
	found := false
	for y := 0; y < array.H && !found; y++ {
		for x := 0; x < array.W; x++ {
			cell := geom.Point{X: array.X + x, Y: array.Y + y}
			if len(p.ModulesAt(cell)) > 0 {
				hit, found = cell, true
				break
			}
		}
	}
	if !found {
		t.Fatal("fixture placement has no module cell")
	}
	rev := Reconfigure(s, p, array, []geom.Point{hit}, reconfOpts())
	if !rev.Survivable {
		t.Fatalf("single module-cell defect at %v unsurvivable", hit)
	}
	if rev.Deepest < recovery.LevelRelocate {
		t.Errorf("deepest level %v, want at least relocate", rev.Deepest)
	}
	// No module may still occupy the defective cell at the time any
	// module uses it; the ladder guarantees this, spot-check it.
	for _, m := range rev.Placement.ModulesAt(hit) {
		t.Errorf("module %d still covers the defect at %v", m, hit)
	}
	if err := rev.Placement.Validate(); err != nil {
		t.Errorf("reconfigured placement invalid: %v", err)
	}
}

func TestReconfigureSaturatedDieFails(t *testing.T) {
	s, p := pcrFixture(t)
	array := p.BoundingBox()
	// Every cell dead: no rung can host anything anywhere.
	var all []geom.Point
	for y := 0; y < array.H; y++ {
		for x := 0; x < array.W; x++ {
			all = append(all, geom.Point{X: array.X + x, Y: array.Y + y})
		}
	}
	rev := Reconfigure(s, p, array, all, reconfOpts())
	if rev.Survivable {
		t.Fatal("fully dead die reported survivable")
	}
	if !array.Contains(rev.Failed) {
		t.Errorf("failed defect %v outside the array", rev.Failed)
	}
}

func TestReconfigureDeterministic(t *testing.T) {
	s, p := pcrFixture(t)
	array := p.BoundingBox()
	defects := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 1}, {X: 4, Y: 3}}
	a := Reconfigure(s, p, array, defects, reconfOpts())
	b := Reconfigure(s, p, array, defects, reconfOpts())
	if a.Survivable != b.Survivable || a.Deepest != b.Deepest || a.StretchSec != b.StretchSec {
		t.Fatalf("reviews differ: %+v vs %+v", a, b)
	}
	ra, err := format.MarshalPlacement(a.Placement)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := format.MarshalPlacement(b.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ra, rb) {
		t.Error("same inputs produced different reconfigured placements")
	}
}
