package defect

import (
	"dmfb/internal/core"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
	"dmfb/internal/place"
	"dmfb/internal/recovery"
	"dmfb/internal/schedule"
)

// ReconfigureOptions configures the design-time survivability pass.
type ReconfigureOptions struct {
	// MaxLevel caps the recovery ladder rung the pass may climb. Zero
	// means LevelDefragment; anything above is clamped to it, because
	// L4 (abandoning operations) is re-synthesis territory — a die
	// that needs it is not survivable as designed.
	MaxLevel recovery.Level
	// Anneal configures the L3 defragmentation anneal; set Seed from
	// campaign.DeriveSeed inside campaign trials.
	Anneal core.Options
	// StretchLimit caps the total makespan increase (schedule seconds)
	// L2 downgrades may introduce. Zero means unlimited.
	StretchLimit int
	// Library is the device catalogue searched for L2 downgrades
	// (modlib.Table1 when nil).
	Library *modlib.Library
}

// Review is the verdict of the design-time pass on one defect map.
type Review struct {
	// Survivable reports whether every defect was absorbed without
	// abandoning operations — the die works as designed, possibly on a
	// stretched schedule.
	Survivable bool
	// Levels is the ladder rung that absorbed each defect, in input
	// order (LevelNone for defects on cells no module uses). On a
	// non-survivable die it stops at the defect that failed.
	Levels []recovery.Level
	// Deepest is the deepest rung any defect forced.
	Deepest recovery.Level
	// StretchSec is the total makespan change from L2 downgrades.
	StretchSec int
	// Failed is the first unsurvivable defect (meaningful only when
	// Survivable is false).
	Failed geom.Point
	// Placement and Sched are the reconfigured design: where each
	// module ended up and the (possibly stretched) schedule. They
	// equal the inputs when the map needed no reconfiguration.
	Placement *place.Placement
	Sched     *schedule.Schedule
}

// Reconfigure decides at design time whether a fabricated die with the
// given defect map can run the assay without re-synthesis, by
// replaying the recovery ladder over the defects before the assay
// starts (Now = 0): L1 relocates every module off a defect by partial
// reconfiguration, L2 re-hosts modules that fit nowhere on smaller
// same-kind devices with a local schedule stretch, and L3 re-places
// the whole module set around the accumulated defects with a short
// seeded anneal. A map survives exactly when every defect yields to
// one of those three rungs — the "local reconfiguration" of the yield
// companion paper, reusing the run-time machinery unchanged.
//
// Defects are processed in the given order; pass the canonical scan
// order (what every Generator returns) for deterministic results. The
// array must be anchored at the origin (the L3 anneal core area), as
// every placement produced by the pipeline is.
func Reconfigure(s *schedule.Schedule, p *place.Placement, array geom.Rect,
	defects []geom.Point, opts ReconfigureOptions) Review {
	if opts.MaxLevel == recovery.LevelNone || opts.MaxLevel > recovery.LevelDefragment {
		opts.MaxLevel = recovery.LevelDefragment
	}
	ladder := recovery.New(recovery.Options{
		MaxLevel:     opts.MaxLevel,
		Library:      opts.Library,
		Anneal:       opts.Anneal,
		StretchLimit: opts.StretchLimit,
	})
	rev := Review{Survivable: true, Placement: p, Sched: s}
	var known []geom.Point
	for _, d := range defects {
		known = append(known, d)
		if len(rev.Placement.ModulesAt(d)) == 0 {
			// A defect on a cell no module ever uses costs nothing now,
			// but stays in the obstacle set for every later defect.
			rev.Levels = append(rev.Levels, recovery.LevelNone)
			continue
		}
		plan, _ := ladder.Recover(recovery.State{
			Sched:     rev.Sched,
			Placement: rev.Placement,
			Array:     array,
			Now:       0,
			Fault:     d,
			Faults:    known,
		})
		if plan == nil {
			rev.Survivable = false
			rev.Failed = d
			return rev
		}
		rev.Levels = append(rev.Levels, plan.Level)
		if plan.Level > rev.Deepest {
			rev.Deepest = plan.Level
		}
		rev.StretchSec += plan.StretchSec
		rev.Placement = plan.Placement
		rev.Sched = plan.Sched
	}
	return rev
}
