// Package optsched is an exact, exponential-time scheduler for small
// instances of the resource-constrained scheduling problem solved
// heuristically by package schedule. It validates the list scheduler:
// on instances it can solve it returns the provably minimum makespan,
// giving the test suite a ground truth for the optimality gap.
//
// The search branches, at every event time, on the subset of ready
// operations to start (delaying an operation can be optimal under an
// area budget, so greedy subsets are not enough), pruning with the
// critical-path lower bound against the incumbent makespan.
package optsched

import (
	"fmt"
	"sort"

	"dmfb/internal/assay"
	"dmfb/internal/schedule"
)

// Limits bounds the search.
type Limits struct {
	// MaxOps caps the instance size (default 14).
	MaxOps int
	// MaxNodes caps search nodes (default 2e6).
	MaxNodes int
}

func (l Limits) withDefaults() Limits {
	if l.MaxOps == 0 {
		l.MaxOps = 14
	}
	if l.MaxNodes == 0 {
		l.MaxNodes = 2_000_000
	}
	return l
}

// Result reports the exact optimum.
type Result struct {
	Makespan int
	Starts   []int // per op ID
	Nodes    int
}

type searcher struct {
	g        *assay.Graph
	dur      []int
	foot     []int
	tail     []int // critical-path time from op start to sink
	budget   int
	maxNodes int

	start   []int
	finish  []int
	best    int
	bestSet []int
	nodes   int
}

// Minimize returns the minimum-makespan schedule of g under binding b
// and options o (only AreaBudget and the boundary durations are used).
func Minimize(g *assay.Graph, b schedule.Binding, o schedule.Options, limits Limits) (Result, error) {
	l := limits.withDefaults()
	if err := g.Validate(); err != nil {
		return Result{}, err
	}
	n := g.NumOps()
	if n > l.MaxOps {
		return Result{}, fmt.Errorf("optsched: %d ops exceeds limit %d", n, l.MaxOps)
	}
	s := &searcher{g: g, budget: o.AreaBudget, maxNodes: l.MaxNodes}
	s.dur = make([]int, n)
	s.foot = make([]int, n)
	for i := 0; i < n; i++ {
		op := g.Op(i)
		switch op.Kind {
		case assay.Dispense:
			s.dur[i] = o.DispenseTime
		case assay.Output:
			s.dur[i] = o.OutputTime
		default:
			d, ok := b[i]
			if !ok {
				return Result{}, fmt.Errorf("optsched: op %s unbound", op.Name)
			}
			s.dur[i] = d.Duration
			s.foot[i] = d.Size.Cells()
			if s.budget > 0 && s.foot[i] > s.budget {
				return Result{}, fmt.Errorf("optsched: op %s exceeds the area budget", op.Name)
			}
		}
	}
	order, _ := g.TopoOrder()
	s.tail = make([]int, n)
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := 0
		for _, sc := range g.Succ(v) {
			if s.tail[sc] > best {
				best = s.tail[sc]
			}
		}
		s.tail[v] = best + s.dur[v]
	}

	s.start = make([]int, n)
	s.finish = make([]int, n)
	for i := range s.start {
		s.start[i] = -1
		s.finish[i] = -1
	}
	// Incumbent from the list scheduler: exact search only improves it.
	ls, err := schedule.List(g, b, o)
	if err != nil {
		return Result{}, err
	}
	s.best = ls.Makespan
	s.bestSet = make([]int, n)
	for i, it := range ls.Items {
		s.bestSet[i] = it.Span.Start
	}

	if err := s.search(0, 0, 0); err != nil {
		return Result{}, err
	}
	return Result{Makespan: s.best, Starts: s.bestSet, Nodes: s.nodes}, nil
}

// search explores decisions at time `now` with `usedArea` in flight and
// `done` ops finished.
func (s *searcher) search(now, usedArea, done int) error {
	s.nodes++
	if s.nodes > s.maxNodes {
		return fmt.Errorf("optsched: node budget exhausted")
	}
	n := s.g.NumOps()
	if done == n {
		makespan := 0
		for i := 0; i < n; i++ {
			if s.finish[i] > makespan {
				makespan = s.finish[i]
			}
		}
		if makespan < s.best {
			s.best = makespan
			copy(s.bestSet, s.start)
		}
		return nil
	}
	// Lower bound: an unstarted op cannot start before now (or before
	// its started predecessors finish) and then still needs its
	// critical-path tail; a running op pins the makespan to its finish.
	lb := now
	for i := 0; i < n; i++ {
		if s.start[i] < 0 {
			est := now
			for _, p := range s.g.Pred(i) {
				if s.finish[p] > est {
					est = s.finish[p]
				}
			}
			if est+s.tail[i] > lb {
				lb = est + s.tail[i]
			}
		} else if s.finish[i] > lb {
			lb = s.finish[i]
		}
	}
	if lb >= s.best {
		return nil
	}

	ready := s.readyAt(now)
	// Free ops (zero duration, zero footprint — pre-loaded dispenses)
	// never benefit from delay: start them unconditionally. They may
	// release new ready ops at the same instant.
	var freeStarted []int
	for _, v := range ready {
		if s.dur[v] == 0 && s.foot[v] == 0 {
			s.start[v] = now
			s.finish[v] = now
			freeStarted = append(freeStarted, v)
		}
	}
	if len(freeStarted) > 0 {
		err := s.search(now, s.areaAt(now), s.doneAt(now))
		for _, v := range freeStarted {
			s.start[v] = -1
			s.finish[v] = -1
		}
		return err
	}
	running := false
	nextFinish := -1
	for i := 0; i < n; i++ {
		if s.start[i] >= 0 && s.finish[i] > now {
			running = true
			if nextFinish < 0 || s.finish[i] < nextFinish {
				nextFinish = s.finish[i]
			}
		}
	}

	if len(ready) == 0 {
		if !running {
			return nil // stuck: infeasible branch
		}
		return s.search(nextFinish, s.areaAt(nextFinish), s.doneAt(nextFinish))
	}

	// Branch on every feasible subset of ready ops (including the empty
	// subset when something is running, modelling deliberate delay).
	subsets := 1 << len(ready)
	for mask := subsets - 1; mask >= 0; mask-- {
		if mask == 0 && !running {
			continue // must make progress
		}
		area := usedArea
		ok := true
		for bi, v := range ready {
			if mask&(1<<bi) != 0 {
				area += s.foot[v]
				if s.budget > 0 && area > s.budget {
					ok = false
					break
				}
			}
		}
		if !ok {
			continue
		}
		var started []int
		zeroDur := false
		for bi, v := range ready {
			if mask&(1<<bi) != 0 {
				s.start[v] = now
				s.finish[v] = now + s.dur[v]
				started = append(started, v)
				if s.dur[v] == 0 {
					zeroDur = true
				}
			}
		}
		var err error
		if zeroDur {
			// Zero-duration ops may release new ready ops at `now`.
			err = s.search(now, s.areaAt(now), s.doneAt(now))
		} else if mask == 0 {
			err = s.search(nextFinish, s.areaAt(nextFinish), s.doneAt(nextFinish))
		} else {
			nf := nextFinish
			for _, v := range started {
				if nf < 0 || s.finish[v] < nf {
					nf = s.finish[v]
				}
			}
			err = s.search(nf, s.areaAt(nf), s.doneAt(nf))
		}
		for _, v := range started {
			s.start[v] = -1
			s.finish[v] = -1
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// readyAt lists unstarted ops whose predecessors have all finished by
// time t, in ID order.
func (s *searcher) readyAt(t int) []int {
	var out []int
	for i := 0; i < s.g.NumOps(); i++ {
		if s.start[i] >= 0 {
			continue
		}
		ok := true
		for _, p := range s.g.Pred(i) {
			if s.finish[p] < 0 || s.finish[p] > t {
				ok = false
				break
			}
		}
		if ok {
			out = append(out, i)
		}
	}
	sort.Ints(out)
	return out
}

// areaAt returns the module footprint in flight at time t.
func (s *searcher) areaAt(t int) int {
	area := 0
	for i := 0; i < s.g.NumOps(); i++ {
		if s.start[i] >= 0 && s.start[i] <= t && s.finish[i] > t {
			area += s.foot[i]
		}
	}
	return area
}

// doneAt counts ops finished by time t.
func (s *searcher) doneAt(t int) int {
	done := 0
	for i := 0; i < s.g.NumOps(); i++ {
		if s.start[i] >= 0 && s.finish[i] <= t {
			done++
		}
	}
	return done
}
