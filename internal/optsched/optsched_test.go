package optsched

import (
	"math/rand"
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/modlib"
	"dmfb/internal/pcr"
	"dmfb/internal/schedule"
)

func TestUnconstrainedEqualsCriticalPath(t *testing.T) {
	g, mix := pcr.Graph()
	b, err := pcr.Binding(mix)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Minimize(g, b, schedule.Options{}, Limits{MaxOps: 15})
	if err != nil {
		t.Fatal(err)
	}
	// Unconstrained optimum = critical path = M3(6)+M6(10)+M7(3) = 19.
	if res.Makespan != 19 {
		t.Errorf("makespan = %d, want 19", res.Makespan)
	}
}

func TestPCRBudget63IsOptimallyScheduledByList(t *testing.T) {
	g, mix := pcr.Graph()
	b, err := pcr.Binding(mix)
	if err != nil {
		t.Fatal(err)
	}
	o := schedule.Options{AreaBudget: pcr.DefaultAreaBudget}
	res, err := Minimize(g, b, o, Limits{MaxOps: 15, MaxNodes: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	ls, err := schedule.List(g, b, o)
	if err != nil {
		t.Fatal(err)
	}
	if ls.Makespan < res.Makespan {
		t.Fatalf("list scheduler (%d) beat the proven optimum (%d)", ls.Makespan, res.Makespan)
	}
	// On the PCR case study the critical-path list scheduler is in
	// fact optimal — the regenerated Figure 6 loses nothing.
	if ls.Makespan != res.Makespan {
		t.Errorf("list %d vs optimal %d: Figure 6 schedule is suboptimal", ls.Makespan, res.Makespan)
	}
}

func TestDelayCanBeOptimal(t *testing.T) {
	// Two chains under a tight budget where greedy-start can hurt:
	// A (10 cells, 10 s) -> C (10 cells, 1 s); B (10 cells, 2 s).
	// Budget 10: only one module at a time. Both orders give the same
	// makespan here; the point of this test is that the searcher's
	// delay branch explores them without error and never exceeds the
	// budget.
	lib := modlib.Table1()
	_ = lib
	g := assay.New("delay")
	d1 := g.AddOp("d1", assay.Dispense, "x")
	d2 := g.AddOp("d2", assay.Dispense, "y")
	d3 := g.AddOp("d3", assay.Dispense, "z")
	d4 := g.AddOp("d4", assay.Dispense, "w")
	a := g.AddOp("A", assay.Mix, "")
	bb := g.AddOp("B", assay.Mix, "")
	g.MustEdge(d1, a)
	g.MustEdge(d2, a)
	g.MustEdge(d3, bb)
	g.MustEdge(d4, bb)
	mixer, _ := modlib.Table1().Get(modlib.Mixer2x2) // 16 cells, 10 s
	fast, _ := modlib.Table1().Get(modlib.Mixer2x4)  // 24 cells, 3 s
	bind := schedule.Binding{a: mixer, bb: fast}
	res, err := Minimize(g, bind, schedule.Options{AreaBudget: 24}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	// Budget 24 forces serialisation (16+24 > 24): optimum 13.
	if res.Makespan != 13 {
		t.Errorf("makespan = %d, want 13", res.Makespan)
	}
}

func TestLimitsEnforced(t *testing.T) {
	g, mix := pcr.Graph()
	b, err := pcr.Binding(mix)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Minimize(g, b, schedule.Options{}, Limits{MaxOps: 5}); err == nil {
		t.Error("op limit not enforced")
	}
	if _, err := Minimize(g, b, schedule.Options{AreaBudget: 10}, Limits{MaxOps: 15}); err == nil {
		t.Error("oversized op not rejected")
	}
	delete(b, mix[0])
	if _, err := Minimize(g, b, schedule.Options{}, Limits{MaxOps: 15}); err == nil {
		t.Error("unbound op accepted")
	}
}

// Property: on random small instances the list scheduler never beats
// the exact optimum, and the optimal starts respect precedence and
// budget.
func TestListNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	lib := modlib.Table1()
	for trial := 0; trial < 25; trial++ {
		g := assay.New("rand")
		nMix := 2 + rng.Intn(3)
		var prev []int
		for i := 0; i < nMix; i++ {
			m := g.AddOp("m", assay.Mix, "")
			nin := 0
			for _, p := range rng.Perm(len(prev)) {
				if nin == 2 || rng.Intn(2) == 0 {
					break
				}
				g.MustEdge(prev[p], m)
				nin++
			}
			for ; nin < 2; nin++ {
				d := g.AddOp("d", assay.Dispense, "r")
				g.MustEdge(d, m)
			}
			prev = append(prev, m)
		}
		b, err := schedule.Bind(g, lib, schedule.BindPolicy(rng.Intn(2)))
		if err != nil {
			t.Fatal(err)
		}
		budget := 18 + rng.Intn(30)
		o := schedule.Options{AreaBudget: budget}
		tooBig := false
		for _, d := range b {
			if d.Size.Cells() > budget {
				tooBig = true
			}
		}
		if tooBig {
			continue
		}
		opt, err := Minimize(g, b, o, Limits{MaxNodes: 10_000_000})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		ls, err := schedule.List(g, b, o)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if ls.Makespan < opt.Makespan {
			t.Fatalf("trial %d: list (%d) beat optimum (%d)", trial, ls.Makespan, opt.Makespan)
		}
		// Verify the optimal starts are a feasible schedule.
		verifyFeasible(t, g, b, o, opt.Starts)
	}
}

func verifyFeasible(t *testing.T, g *assay.Graph, b schedule.Binding, o schedule.Options, starts []int) {
	t.Helper()
	dur := func(i int) int {
		op := g.Op(i)
		switch op.Kind {
		case assay.Dispense:
			return o.DispenseTime
		case assay.Output:
			return o.OutputTime
		}
		return b[i].Duration
	}
	horizon := 0
	for i := range starts {
		if starts[i] < 0 {
			t.Fatal("op unscheduled in optimal solution")
		}
		if end := starts[i] + dur(i); end > horizon {
			horizon = end
		}
		for _, p := range g.Pred(i) {
			if starts[p]+dur(p) > starts[i] {
				t.Fatalf("precedence violated: %d before %d", i, p)
			}
		}
	}
	if o.AreaBudget > 0 {
		for tt := 0; tt < horizon; tt++ {
			area := 0
			for i := range starts {
				if starts[i] <= tt && tt < starts[i]+dur(i) {
					if g.Op(i).Kind.Reconfigurable() {
						area += b[i].Size.Cells()
					}
				}
			}
			if area > o.AreaBudget {
				t.Fatalf("budget violated at t=%d: %d > %d", tt, area, o.AreaBudget)
			}
		}
	}
}
