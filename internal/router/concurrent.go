package router

import (
	"fmt"
	"sort"
	"time"

	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
	"dmfb/internal/telemetry"
)

// Concurrent droplet routing: several droplets move simultaneously,
// one cell per control step, under the standard electrowetting routing
// constraints (formalised in the droplet-routing literature that grew
// out of this paper's reconfigurable-module model):
//
//   - static:  at any step t, two droplets must not occupy adjacent
//     cells (Chebyshev distance ≥ 2), or they would coalesce;
//   - dynamic: a droplet's position at step t+1 must not be adjacent
//     to another droplet's position at step t (and vice versa), or
//     they could merge mid-transition.
//
// The planner is prioritised time-extended A*: droplets are planned
// one at a time against a reservation table of already-planned
// trajectories; waiting in place is a legal move. If an ordering
// fails, rotated priority orders are tried.

// ConcurrentOptions configures PlanConcurrent.
type ConcurrentOptions struct {
	// Horizon caps the plan length in control steps. Zero derives a
	// generous default from the array size and droplet count.
	Horizon int
	// KeepOut lists rectangles no droplet may enter (active modules).
	KeepOut []geom.Rect
	// MaxOrders bounds how many priority orders are attempted
	// (default: one per droplet).
	MaxOrders int
	// Metrics, if non-nil, receives router.plan_ms, router.path_len
	// and router.plan_orders observations for this planning call. The
	// registry is safe for use from concurrent planners.
	Metrics *telemetry.Registry
}

// ConcurrentPlan is a synchronised trajectory set: Paths[i][t] is
// droplet i's cell at control step t. All paths share the same length
// Makespan+1; droplets that arrive early hold their target.
type ConcurrentPlan struct {
	Paths    [][]geom.Point
	Makespan int
}

// Steps returns the total number of non-waiting single-cell moves.
func (p *ConcurrentPlan) Steps() int {
	n := 0
	for _, path := range p.Paths {
		for t := 1; t < len(path); t++ {
			if path[t] != path[t-1] {
				n++
			}
		}
	}
	return n
}

// Endpoint is one droplet's routing demand.
type Endpoint struct {
	From, To geom.Point
}

// PlanConcurrent routes every droplet from its source to its target
// simultaneously. Sources and targets must be pairwise separated
// (Chebyshev ≥ 2) — a physical requirement, since the droplets coexist
// before and after the transport phase.
func PlanConcurrent(chip *fluidics.Chip, eps []Endpoint, opts ConcurrentOptions) (*ConcurrentPlan, error) {
	n := len(eps)
	if n == 0 {
		return &ConcurrentPlan{}, nil
	}
	for i, e := range eps {
		if !chip.In(e.From) || !chip.In(e.To) {
			return nil, fmt.Errorf("router: endpoint %d (%v -> %v) off array", i, e.From, e.To)
		}
		if chip.IsFaulty(e.From) || chip.IsFaulty(e.To) {
			return nil, fmt.Errorf("router: endpoint %d uses a faulty cell", i)
		}
		if inAny(opts.KeepOut, e.From) || inAny(opts.KeepOut, e.To) {
			return nil, fmt.Errorf("router: endpoint %d inside a keep-out region", i)
		}
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if cheb(eps[i].From, eps[j].From) < 2 {
				return nil, fmt.Errorf("router: sources %d and %d violate separation", i, j)
			}
			if cheb(eps[i].To, eps[j].To) < 2 {
				return nil, fmt.Errorf("router: targets %d and %d violate separation", i, j)
			}
		}
	}

	horizon := opts.Horizon
	if horizon == 0 {
		horizon = 2*(chip.W()+chip.H()) + 4*n + 8
	}
	maxOrders := opts.MaxOrders
	if maxOrders == 0 {
		maxOrders = n
	}

	// Base priority: longest distance first (hardest demands claim the
	// reservation table early).
	base := make([]int, n)
	for i := range base {
		base[i] = i
	}
	sort.Slice(base, func(a, b int) bool {
		da := eps[base[a]].From.Manhattan(eps[base[a]].To)
		db := eps[base[b]].From.Manhattan(eps[base[b]].To)
		if da != db {
			return da > db
		}
		return base[a] < base[b]
	})

	planStart := time.Now()
	var lastErr error
	for rot := 0; rot < maxOrders; rot++ {
		order := append(base[rot:], base[:rot]...)
		plan, err := planInOrder(chip, eps, order, horizon, opts.KeepOut)
		if err == nil {
			if reg := opts.Metrics; reg != nil {
				reg.Histogram("router.plan_ms", telemetry.LatencyBuckets...).
					Observe(float64(time.Since(planStart).Microseconds()) / 1000)
				reg.Counter("router.plan_orders").Add(int64(rot + 1))
				h := reg.Histogram("router.path_len", telemetry.PathLenBuckets...)
				for _, path := range plan.Paths {
					moves := 0
					for t := 1; t < len(path); t++ {
						if path[t] != path[t-1] {
							moves++
						}
					}
					h.Observe(float64(moves))
				}
			}
			return plan, nil
		}
		lastErr = err
	}
	if reg := opts.Metrics; reg != nil {
		reg.Counter("router.plan_failures").Inc()
	}
	return nil, fmt.Errorf("router: concurrent planning failed after %d orders: %w", maxOrders, lastErr)
}

// planInOrder plans droplets in the given priority order against a
// growing reservation table.
func planInOrder(chip *fluidics.Chip, eps []Endpoint, order []int, horizon int, keepOut []geom.Rect) (*ConcurrentPlan, error) {
	n := len(eps)
	paths := make([][]geom.Point, n)
	var reserved [][]geom.Point // trajectories already planned (padded to horizon+1)

	for _, i := range order {
		path, err := timedAStar(chip, eps[i], horizon, keepOut, reserved)
		if err != nil {
			return nil, fmt.Errorf("droplet %d: %w", i, err)
		}
		paths[i] = path
		reserved = append(reserved, pad(path, horizon+1))
	}

	makespan := 0
	for _, p := range paths {
		for t := len(p) - 1; t > 0; t-- {
			if p[t] != p[t-1] {
				if t > makespan {
					makespan = t
				}
				break
			}
		}
	}
	for i := range paths {
		paths[i] = pad(paths[i], makespan+1)
	}
	return &ConcurrentPlan{Paths: paths, Makespan: makespan}, nil
}

type tstate struct {
	p geom.Point
	t int
}

// timedAStar searches (cell, step) space. Moves: the four orthogonal
// steps plus waiting. The droplet must hold its target from arrival to
// the horizon without violating constraints against reserved
// trajectories (checked during search by treating arrival as waiting).
// Earlier-planned droplets are unaware of later ones; any resulting
// conflict surfaces as an admissibility failure for the later droplet
// (its own waiting-at-source prefix is part of its trajectory), which
// the priority-order rotation in PlanConcurrent then works around.
func timedAStar(chip *fluidics.Chip, ep Endpoint, horizon int, keepOut []geom.Rect,
	reserved [][]geom.Point) ([]geom.Point, error) {

	admissible := func(p geom.Point, t int) bool {
		if !chip.In(p) || chip.IsFaulty(p) || inAny(keepOut, p) {
			return false
		}
		for _, r := range reserved {
			// static at t; dynamic against t-1 and t+1.
			if cheb(p, r[min(t, len(r)-1)]) < 2 {
				return false
			}
			if t > 0 && cheb(p, r[min(t-1, len(r)-1)]) < 2 {
				return false
			}
			if cheb(p, r[min(t+1, len(r)-1)]) < 2 {
				return false
			}
		}
		return true
	}

	if !admissible(ep.From, 0) {
		return nil, fmt.Errorf("router: source %v blocked at t=0", ep.From)
	}

	// holdOK reports whether the droplet can sit at the target from
	// step t to the horizon.
	holdOK := func(t int) bool {
		for tt := t; tt <= horizon; tt++ {
			if !admissible(ep.To, tt) {
				return false
			}
		}
		return true
	}

	type node struct {
		s    tstate
		f, g int
	}
	open := []node{{tstate{ep.From, 0}, ep.From.Manhattan(ep.To), 0}}
	came := map[tstate]tstate{}
	seen := map[tstate]bool{{ep.From, 0}: true}

	for len(open) > 0 {
		// Pop the lowest f (ties: lowest t) — linear scan keeps the
		// implementation simple; frontiers here are small.
		bi := 0
		for i := 1; i < len(open); i++ {
			if open[i].f < open[bi].f || (open[i].f == open[bi].f && open[i].g < open[bi].g) {
				bi = i
			}
		}
		cur := open[bi]
		open = append(open[:bi], open[bi+1:]...)

		if cur.s.p == ep.To && holdOK(cur.s.t) {
			var rev []geom.Point
			s := cur.s
			for {
				rev = append(rev, s.p)
				prev, ok := came[s]
				if !ok {
					break
				}
				s = prev
			}
			for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
				rev[l], rev[r] = rev[r], rev[l]
			}
			return rev, nil
		}
		if cur.s.t >= horizon {
			continue
		}
		cands := cur.s.p.Neighbors4()
		next := append(cands[:], cur.s.p) // waiting is a move
		for _, np := range next {
			ns := tstate{np, cur.s.t + 1}
			if seen[ns] || !admissible(np, ns.t) {
				continue
			}
			seen[ns] = true
			came[ns] = cur.s
			open = append(open, node{ns, ns.t + np.Manhattan(ep.To), ns.t})
		}
	}
	return nil, fmt.Errorf("router: no trajectory %v -> %v within %d steps", ep.From, ep.To, horizon)
}

// ValidateConcurrent checks a plan against every routing constraint;
// the test suite uses it as the ground-truth referee.
func ValidateConcurrent(chip *fluidics.Chip, eps []Endpoint, plan *ConcurrentPlan, keepOut []geom.Rect) error {
	if len(plan.Paths) != len(eps) {
		return fmt.Errorf("router: %d paths for %d endpoints", len(plan.Paths), len(eps))
	}
	for i, path := range plan.Paths {
		if len(path) != plan.Makespan+1 {
			return fmt.Errorf("router: path %d has %d steps, want %d", i, len(path), plan.Makespan+1)
		}
		if path[0] != eps[i].From || path[len(path)-1] != eps[i].To {
			return fmt.Errorf("router: path %d endpoints wrong", i)
		}
		for t, p := range path {
			if !chip.In(p) || chip.IsFaulty(p) || inAny(keepOut, p) {
				return fmt.Errorf("router: path %d enters bad cell %v at t=%d", i, p, t)
			}
			if t > 0 && path[t-1].Manhattan(p) > 1 {
				return fmt.Errorf("router: path %d jumps at t=%d", i, t)
			}
		}
	}
	for i := 0; i < len(plan.Paths); i++ {
		for j := i + 1; j < len(plan.Paths); j++ {
			a, b := plan.Paths[i], plan.Paths[j]
			for t := 0; t <= plan.Makespan; t++ {
				if cheb(a[t], b[t]) < 2 {
					return fmt.Errorf("router: static violation between %d and %d at t=%d", i, j, t)
				}
				if t < plan.Makespan {
					if cheb(a[t+1], b[t]) < 2 || cheb(b[t+1], a[t]) < 2 {
						return fmt.Errorf("router: dynamic violation between %d and %d at t=%d", i, j, t)
					}
				}
			}
		}
	}
	return nil
}

func pad(path []geom.Point, length int) []geom.Point {
	for len(path) < length {
		path = append(path, path[len(path)-1])
	}
	return path
}

func inAny(rects []geom.Rect, p geom.Point) bool {
	for _, r := range rects {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

func cheb(a, b geom.Point) int {
	dx := a.X - b.X
	if dx < 0 {
		dx = -dx
	}
	dy := a.Y - b.Y
	if dy < 0 {
		dy = -dy
	}
	if dx > dy {
		return dx
	}
	return dy
}
