// Package router plans droplet transport paths on the microfluidic
// array. Cells in the microfluidic array double as transport paths —
// the programmability the paper contrasts with DRFPGAs ("the cells ...
// can be used for storage, functional operations, as well as for
// transporting fluid droplets").
//
// Routing is breadth-first search over healthy, unreserved cells:
// shortest paths under unit step cost, which is exact for single
// droplet transport (one cell per control step). Obstacles are faulty
// cells, the segregation regions of concurrently active modules
// (except the droplet's own source/target module) and the separation
// halo of other droplets.
package router

import (
	"fmt"

	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
	"dmfb/internal/telemetry"
)

// Request describes one routing query.
type Request struct {
	From, To geom.Point
	// KeepOut lists rectangles the path must not enter (active
	// modules' segregation regions). A rectangle containing From or To
	// is implicitly permitted at those cells only... not at all:
	// callers should exclude the droplet's own module from KeepOut.
	KeepOut []geom.Rect
	// AvoidDroplets lists positions of other droplets; the path keeps
	// Chebyshev distance ≥ 2 from each (static fluidic constraint).
	AvoidDroplets []geom.Point
	// ExtraBlocked lists additional blocked cells.
	ExtraBlocked []geom.Point
}

// Route returns a shortest admissible path from From to To inclusive,
// or an error when no path exists. The path's first element is From
// and its last is To; consecutive elements are orthogonally adjacent.
func Route(chip *fluidics.Chip, req Request) ([]geom.Point, error) {
	path, err := routeBFS(chip, req)
	if reg := instrumented(); reg != nil {
		if err != nil {
			reg.Counter("router.route_failures").Inc()
		} else {
			reg.Counter("router.routes").Inc()
			reg.Histogram("router.path_len", telemetry.PathLenBuckets...).
				Observe(float64(Steps(path)))
		}
	}
	return path, err
}

// routeBFS is the uninstrumented breadth-first search behind Route.
func routeBFS(chip *fluidics.Chip, req Request) ([]geom.Point, error) {
	w, h := chip.W(), chip.H()
	if !chip.In(req.From) || !chip.In(req.To) {
		return nil, fmt.Errorf("router: endpoints %v -> %v outside %dx%d array",
			req.From, req.To, w, h)
	}
	blocked := buildBlocked(chip, req)
	if blocked[idx(req.From, w)] && req.From != req.To {
		return nil, fmt.Errorf("router: source %v is blocked", req.From)
	}
	if blocked[idx(req.To, w)] {
		return nil, fmt.Errorf("router: target %v is blocked", req.To)
	}
	if req.From == req.To {
		return []geom.Point{req.From}, nil
	}

	prev := make([]geom.Point, w*h)
	seen := make([]bool, w*h)
	queue := []geom.Point{req.From}
	seen[idx(req.From, w)] = true
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range cur.Neighbors4() {
			if !chip.In(nb) {
				continue
			}
			i := idx(nb, w)
			if seen[i] || blocked[i] {
				continue
			}
			seen[i] = true
			prev[i] = cur
			if nb == req.To {
				return reconstruct(req.From, req.To, prev, w), nil
			}
			queue = append(queue, nb)
		}
	}
	return nil, fmt.Errorf("router: no path %v -> %v", req.From, req.To)
}

// Steps returns the number of control steps a path takes (cells moved).
func Steps(path []geom.Point) int {
	if len(path) == 0 {
		return 0
	}
	return len(path) - 1
}

// Reachable returns all cells reachable from origin under the same
// admissibility rules, including origin itself (if unblocked).
func Reachable(chip *fluidics.Chip, req Request) []geom.Point {
	w := chip.W()
	blocked := buildBlocked(chip, req)
	if !chip.In(req.From) || blocked[idx(req.From, w)] {
		return nil
	}
	seen := make([]bool, w*chip.H())
	seen[idx(req.From, w)] = true
	queue := []geom.Point{req.From}
	out := []geom.Point{req.From}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, nb := range cur.Neighbors4() {
			if !chip.In(nb) {
				continue
			}
			i := idx(nb, w)
			if seen[i] || blocked[i] {
				continue
			}
			seen[i] = true
			out = append(out, nb)
			queue = append(queue, nb)
		}
	}
	return out
}

func idx(p geom.Point, w int) int { return p.Y*w + p.X }

func buildBlocked(chip *fluidics.Chip, req Request) []bool {
	w, h := chip.W(), chip.H()
	blocked := make([]bool, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			p := geom.Point{X: x, Y: y}
			if chip.IsFaulty(p) {
				blocked[idx(p, w)] = true
			}
		}
	}
	for _, r := range req.KeepOut {
		c := r.Intersect(chip.Bounds())
		for yy := c.Y; yy < c.MaxY(); yy++ {
			for xx := c.X; xx < c.MaxX(); xx++ {
				blocked[yy*w+xx] = true
			}
		}
	}
	for _, d := range req.AvoidDroplets {
		// Separation halo: the droplet cell and its 8 neighbours.
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				p := geom.Point{X: d.X + dx, Y: d.Y + dy}
				if chip.In(p) {
					blocked[idx(p, w)] = true
				}
			}
		}
	}
	for _, p := range req.ExtraBlocked {
		if chip.In(p) {
			blocked[idx(p, w)] = true
		}
	}
	return blocked
}

func reconstruct(from, to geom.Point, prev []geom.Point, w int) []geom.Point {
	var rev []geom.Point
	for cur := to; cur != from; cur = prev[idx(cur, w)] {
		rev = append(rev, cur)
	}
	rev = append(rev, from)
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}
