package router

import (
	"math/rand"
	"testing"

	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
)

func TestRouteStraightLine(t *testing.T) {
	chip := fluidics.NewChip(8, 8)
	path, err := Route(chip, Request{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 5, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	if Steps(path) != 5 {
		t.Errorf("steps = %d, want 5", Steps(path))
	}
	checkPath(t, path, geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 0})
}

func TestRouteTrivial(t *testing.T) {
	chip := fluidics.NewChip(4, 4)
	p := geom.Point{X: 2, Y: 2}
	path, err := Route(chip, Request{From: p, To: p})
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 1 || path[0] != p {
		t.Errorf("path = %v", path)
	}
	if Steps(path) != 0 || Steps(nil) != 0 {
		t.Error("Steps wrong for trivial paths")
	}
}

func TestRouteAroundFaults(t *testing.T) {
	chip := fluidics.NewChip(5, 3)
	// Wall of faults at x=2, with a gap at y=2.
	chip.InjectFault(geom.Point{X: 2, Y: 0})
	chip.InjectFault(geom.Point{X: 2, Y: 1})
	path, err := Route(chip, Request{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 4, Y: 0}})
	if err != nil {
		t.Fatal(err)
	}
	// Must detour through (2,2): 0,0 -> up to y2 -> across -> down.
	if Steps(path) != 8 {
		t.Errorf("steps = %d, want 8", Steps(path))
	}
	for _, p := range path {
		if chip.IsFaulty(p) {
			t.Errorf("path crosses faulty cell %v", p)
		}
	}
	// Complete wall: unroutable.
	chip.InjectFault(geom.Point{X: 2, Y: 2})
	if _, err := Route(chip, Request{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 4, Y: 0}}); err == nil {
		t.Error("route through a fault wall accepted")
	}
}

func TestRouteKeepOut(t *testing.T) {
	chip := fluidics.NewChip(7, 5)
	mod := geom.Rect{X: 2, Y: 0, W: 3, H: 4} // active module blocks lower middle
	path, err := Route(chip, Request{
		From:    geom.Point{X: 0, Y: 0},
		To:      geom.Point{X: 6, Y: 0},
		KeepOut: []geom.Rect{mod},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range path {
		if mod.Contains(p) {
			t.Errorf("path enters keep-out at %v", p)
		}
	}
	// Detour over the top: up 4, across 6, down 4 = 14 steps.
	if Steps(path) != 14 {
		t.Errorf("steps = %d, want 14", Steps(path))
	}
	// Blocked target reported.
	if _, err := Route(chip, Request{
		From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 3, Y: 2},
		KeepOut: []geom.Rect{mod},
	}); err == nil {
		t.Error("target inside keep-out accepted")
	}
}

func TestRouteDropletHalo(t *testing.T) {
	chip := fluidics.NewChip(9, 3)
	other := geom.Point{X: 4, Y: 1} // droplet in the middle: halo blocks x3..5 y0..2 entirely
	_, err := Route(chip, Request{
		From:          geom.Point{X: 0, Y: 1},
		To:            geom.Point{X: 8, Y: 1},
		AvoidDroplets: []geom.Point{other},
	})
	if err == nil {
		t.Fatal("route through droplet halo accepted (3-row array is fully cut)")
	}
	// A taller array allows a detour.
	chip2 := fluidics.NewChip(9, 5)
	path, err := Route(chip2, Request{
		From:          geom.Point{X: 0, Y: 1},
		To:            geom.Point{X: 8, Y: 1},
		AvoidDroplets: []geom.Point{other},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range path {
		if abs(p.X-other.X) <= 1 && abs(p.Y-other.Y) <= 1 {
			t.Errorf("path at %v violates separation from %v", p, other)
		}
	}
}

func TestRouteEndpointErrors(t *testing.T) {
	chip := fluidics.NewChip(4, 4)
	if _, err := Route(chip, Request{From: geom.Point{X: -1, Y: 0}, To: geom.Point{X: 1, Y: 1}}); err == nil {
		t.Error("out-of-bounds source accepted")
	}
	chip.InjectFault(geom.Point{X: 1, Y: 1})
	if _, err := Route(chip, Request{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 1, Y: 1}}); err == nil {
		t.Error("faulty target accepted")
	}
	if _, err := Route(chip, Request{
		From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 3, Y: 3},
		ExtraBlocked: []geom.Point{{X: 0, Y: 0}},
	}); err == nil {
		t.Error("blocked source accepted")
	}
}

func TestReachable(t *testing.T) {
	chip := fluidics.NewChip(4, 4)
	// Wall splitting the array in two 2-column halves.
	chip.InjectFault(geom.Point{X: 2, Y: 0})
	chip.InjectFault(geom.Point{X: 2, Y: 1})
	chip.InjectFault(geom.Point{X: 2, Y: 2})
	chip.InjectFault(geom.Point{X: 2, Y: 3})
	got := Reachable(chip, Request{From: geom.Point{X: 0, Y: 0}})
	if len(got) != 8 {
		t.Errorf("reachable = %d cells, want 8", len(got))
	}
	if Reachable(chip, Request{From: geom.Point{X: 2, Y: 0}}) != nil {
		t.Error("reachable from faulty cell should be nil")
	}
}

// Property: BFS paths are shortest — compare against Manhattan
// distance on an empty chip, and against a reference flood fill with
// random obstacles.
func TestRouteShortestProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	empty := fluidics.NewChip(10, 10)
	for trial := 0; trial < 100; trial++ {
		from := geom.Point{X: rng.Intn(10), Y: rng.Intn(10)}
		to := geom.Point{X: rng.Intn(10), Y: rng.Intn(10)}
		path, err := Route(empty, Request{From: from, To: to})
		if err != nil {
			t.Fatal(err)
		}
		if Steps(path) != from.Manhattan(to) {
			t.Fatalf("steps %d != manhattan %d", Steps(path), from.Manhattan(to))
		}
		checkPath(t, path, from, to)
	}
	// With obstacles: verify optimality by BFS distance recomputation.
	for trial := 0; trial < 100; trial++ {
		chip := fluidics.NewChip(8, 8)
		for i := 0; i < 12; i++ {
			chip.InjectFault(geom.Point{X: rng.Intn(8), Y: rng.Intn(8)})
		}
		from := geom.Point{X: rng.Intn(8), Y: rng.Intn(8)}
		to := geom.Point{X: rng.Intn(8), Y: rng.Intn(8)}
		if chip.IsFaulty(from) || chip.IsFaulty(to) {
			continue
		}
		path, err := Route(chip, Request{From: from, To: to})
		dist := bfsDist(chip, from, to)
		if dist < 0 {
			if err == nil {
				t.Fatal("found path where none exists")
			}
			continue
		}
		if err != nil {
			t.Fatalf("missed existing path: %v", err)
		}
		if Steps(path) != dist {
			t.Fatalf("steps %d != optimal %d", Steps(path), dist)
		}
		checkPath(t, path, from, to)
		for _, p := range path {
			if chip.IsFaulty(p) {
				t.Fatal("path crosses fault")
			}
		}
	}
}

func checkPath(t *testing.T, path []geom.Point, from, to geom.Point) {
	t.Helper()
	if len(path) == 0 || path[0] != from || path[len(path)-1] != to {
		t.Fatalf("path endpoints wrong: %v", path)
	}
	for i := 1; i < len(path); i++ {
		if path[i-1].Manhattan(path[i]) != 1 {
			t.Fatalf("path not contiguous at %d: %v -> %v", i, path[i-1], path[i])
		}
	}
}

func bfsDist(chip *fluidics.Chip, from, to geom.Point) int {
	type node struct {
		p geom.Point
		d int
	}
	seen := map[geom.Point]bool{from: true}
	q := []node{{from, 0}}
	for len(q) > 0 {
		n := q[0]
		q = q[1:]
		if n.p == to {
			return n.d
		}
		for _, nb := range n.p.Neighbors4() {
			if chip.In(nb) && !chip.IsFaulty(nb) && !seen[nb] {
				seen[nb] = true
				q = append(q, node{nb, n.d + 1})
			}
		}
	}
	return -1
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
