package router

import (
	"sync/atomic"

	"dmfb/internal/telemetry"
)

// instr is the package-level metrics hook for the single-droplet
// Route path. Route is called deep inside the simulator and the
// Monte-Carlo fault campaigns, far from any options struct, so the
// hook is process-wide; an atomic pointer keeps the disabled cost at
// one load + nil check and makes enabling race-free.
var instr atomic.Pointer[telemetry.Registry]

// Instrument directs Route metrics (router.routes,
// router.route_failures, router.path_len) to reg; nil disables them.
// The registry itself is safe for concurrent use.
func Instrument(reg *telemetry.Registry) { instr.Store(reg) }

func instrumented() *telemetry.Registry { return instr.Load() }
