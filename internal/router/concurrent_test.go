package router

import (
	"math/rand"
	"testing"

	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
)

func TestConcurrentSingleDroplet(t *testing.T) {
	chip := fluidics.NewChip(8, 8)
	eps := []Endpoint{{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 7, Y: 7}}}
	plan, err := PlanConcurrent(chip, eps, ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateConcurrent(chip, eps, plan, nil); err != nil {
		t.Fatal(err)
	}
	if plan.Makespan != 14 {
		t.Errorf("makespan = %d, want manhattan 14", plan.Makespan)
	}
	if plan.Steps() != 14 {
		t.Errorf("steps = %d", plan.Steps())
	}
}

func TestConcurrentEmpty(t *testing.T) {
	chip := fluidics.NewChip(4, 4)
	plan, err := PlanConcurrent(chip, nil, ConcurrentOptions{})
	if err != nil || plan.Makespan != 0 {
		t.Fatalf("empty plan: %v %v", plan, err)
	}
}

func TestConcurrentParallelLanes(t *testing.T) {
	// Two droplets moving east in separated rows: no interference,
	// both at shortest length.
	chip := fluidics.NewChip(10, 6)
	eps := []Endpoint{
		{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 9, Y: 0}},
		{From: geom.Point{X: 0, Y: 4}, To: geom.Point{X: 9, Y: 4}},
	}
	plan, err := PlanConcurrent(chip, eps, ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateConcurrent(chip, eps, plan, nil); err != nil {
		t.Fatal(err)
	}
	if plan.Makespan != 9 {
		t.Errorf("makespan = %d, want 9", plan.Makespan)
	}
}

func TestConcurrentHeadOnSwap(t *testing.T) {
	// Two droplets swapping ends of the same corridor must detour or
	// wait — impossible on a 1-row array, solvable on a wider one.
	narrow := fluidics.NewChip(8, 1)
	eps := []Endpoint{
		{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 7, Y: 0}},
		{From: geom.Point{X: 7, Y: 0}, To: geom.Point{X: 0, Y: 0}},
	}
	if _, err := PlanConcurrent(narrow, eps, ConcurrentOptions{}); err == nil {
		t.Fatal("head-on swap on a 1-row array should be unroutable")
	}

	wide := fluidics.NewChip(8, 5)
	plan, err := PlanConcurrent(wide, eps, ConcurrentOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateConcurrent(wide, eps, plan, nil); err != nil {
		t.Fatal(err)
	}
	if plan.Makespan < 7 {
		t.Errorf("swap makespan %d below distance bound", plan.Makespan)
	}
}

func TestConcurrentRespectsKeepOutAndFaults(t *testing.T) {
	chip := fluidics.NewChip(9, 7)
	chip.InjectFault(geom.Point{X: 4, Y: 0})
	keepOut := []geom.Rect{{X: 3, Y: 2, W: 3, H: 3}}
	eps := []Endpoint{
		{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 8, Y: 0}},
		{From: geom.Point{X: 0, Y: 6}, To: geom.Point{X: 8, Y: 6}},
	}
	plan, err := PlanConcurrent(chip, eps, ConcurrentOptions{KeepOut: keepOut})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateConcurrent(chip, eps, plan, keepOut); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentRejectsBadEndpoints(t *testing.T) {
	chip := fluidics.NewChip(6, 6)
	cases := [][]Endpoint{
		{{From: geom.Point{X: -1, Y: 0}, To: geom.Point{X: 1, Y: 1}}},
		// Adjacent sources.
		{
			{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 5, Y: 0}},
			{From: geom.Point{X: 1, Y: 0}, To: geom.Point{X: 5, Y: 5}},
		},
		// Adjacent targets.
		{
			{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 5, Y: 4}},
			{From: geom.Point{X: 0, Y: 4}, To: geom.Point{X: 5, Y: 5}},
		},
	}
	for i, eps := range cases {
		if _, err := PlanConcurrent(chip, eps, ConcurrentOptions{}); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	chip.InjectFault(geom.Point{X: 2, Y: 2})
	if _, err := PlanConcurrent(chip,
		[]Endpoint{{From: geom.Point{X: 2, Y: 2}, To: geom.Point{X: 0, Y: 0}}},
		ConcurrentOptions{}); err == nil {
		t.Error("faulty source accepted")
	}
}

// Property: random multi-droplet instances either fail honestly or
// produce plans that pass the full constraint referee.
func TestConcurrentRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	solved := 0
	for trial := 0; trial < 120; trial++ {
		w, h := 7+rng.Intn(5), 7+rng.Intn(5)
		chip := fluidics.NewChip(w, h)
		for i := 0; i < rng.Intn(4); i++ {
			chip.InjectFault(geom.Point{X: rng.Intn(w), Y: rng.Intn(h)})
		}
		n := 1 + rng.Intn(3)
		var eps []Endpoint
		ok := true
		for i := 0; i < n && ok; i++ {
			var e Endpoint
			found := false
			for try := 0; try < 50; try++ {
				e = Endpoint{
					From: geom.Point{X: rng.Intn(w), Y: rng.Intn(h)},
					To:   geom.Point{X: rng.Intn(w), Y: rng.Intn(h)},
				}
				if chip.IsFaulty(e.From) || chip.IsFaulty(e.To) {
					continue
				}
				clash := false
				for _, o := range eps {
					if cheb(e.From, o.From) < 2 || cheb(e.To, o.To) < 2 {
						clash = true
						break
					}
				}
				if !clash {
					found = true
					break
				}
			}
			if !found {
				ok = false
			}
			eps = append(eps, e)
		}
		if !ok {
			continue
		}
		plan, err := PlanConcurrent(chip, eps, ConcurrentOptions{})
		if err != nil {
			continue // honestly unroutable (walls of faults etc.)
		}
		solved++
		if err := ValidateConcurrent(chip, eps, plan, nil); err != nil {
			t.Fatalf("trial %d: invalid plan: %v", trial, err)
		}
		// Makespan at least the largest individual distance.
		for i, e := range eps {
			if d := e.From.Manhattan(e.To); plan.Makespan < d {
				t.Fatalf("trial %d: makespan %d below droplet %d distance %d",
					trial, plan.Makespan, i, d)
			}
		}
	}
	if solved < 60 {
		t.Errorf("only %d/120 random instances solved — planner too weak", solved)
	}
}

func BenchmarkConcurrentFourDroplets(b *testing.B) {
	chip := fluidics.NewChip(12, 12)
	eps := []Endpoint{
		{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 11, Y: 11}},
		{From: geom.Point{X: 11, Y: 0}, To: geom.Point{X: 0, Y: 11}},
		{From: geom.Point{X: 0, Y: 5}, To: geom.Point{X: 11, Y: 5}},
		{From: geom.Point{X: 11, Y: 8}, To: geom.Point{X: 0, Y: 8}},
	}
	for i := 0; i < b.N; i++ {
		plan, err := PlanConcurrent(chip, eps, ConcurrentOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if err := ValidateConcurrent(chip, eps, plan, nil); err != nil {
			b.Fatal(err)
		}
	}
}
