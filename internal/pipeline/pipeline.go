// Package pipeline is the shared synthesis flow of the dmfb tools:
// bind → schedule → place → analyse → route/test/simulate, as one
// reusable Run call. Every CLI under cmd/ and the dmfb-server service
// build a Request describing which stages to run and render the typed
// Result; the stage wiring, telemetry spans, placement caching and
// error tagging live here exactly once.
//
// Stages execute in a fixed order — synth, place, fti, route, test,
// sim — and each is skipped unless its spec is present (or its input
// is given pre-computed, e.g. Request.Placement skips the placer).
// Each stage runs under a "stage.<name>" telemetry span nested in the
// caller's current default parent and observes a "stage.<name>_ms"
// histogram, matching the span hierarchy the CLIs established before
// this package existed. The context is checked between stages, so a
// cancelled request stops at the next stage boundary.
//
// Failures are returned as *StageError wrapping the cause, so callers
// can switch on the stage tag (errors.As) or the underlying error
// (errors.Is) instead of string-matching; ExitCode derives the
// conventional process exit status from a Result/error pair.
package pipeline

import (
	"context"
	"fmt"

	"dmfb/internal/actuation"
	"dmfb/internal/assay"
	"dmfb/internal/core"
	"dmfb/internal/faultsim"
	"dmfb/internal/fluidics"
	"dmfb/internal/format"
	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/invitro"
	"dmfb/internal/modlib"
	"dmfb/internal/pcache"
	"dmfb/internal/pcr"
	"dmfb/internal/place"
	"dmfb/internal/router"
	"dmfb/internal/schedule"
	"dmfb/internal/sim"
	"dmfb/internal/telemetry"
	"dmfb/internal/testdrop"
)

// Stage tags carried by StageError.
const (
	StageSynth = "synth"
	StagePlace = "place"
	StageFTI   = "fti"
	StageRoute = "route"
	StageTest  = "test"
	StageSim   = "sim"
)

// StageError tags a pipeline failure with the stage that caused it.
type StageError struct {
	Stage string // one of the Stage* constants
	Err   error
}

func (e *StageError) Error() string { return e.Stage + ": " + e.Err.Error() }

func (e *StageError) Unwrap() error { return e.Err }

// SynthSpec configures architectural-level synthesis.
type SynthSpec struct {
	// Assay selects a built-in workload: "pcr" or "invitro". Ignored
	// when Graph is set.
	Assay string
	// Graph is an explicit sequencing graph to bind and schedule.
	Graph *assay.Graph
	// Bind is the binding policy for Graph (schedule.BindFastest when
	// zero-valued it defaults to the fastest-device policy).
	Bind schedule.BindPolicy
	// Samples and Assays size the in-vitro workload.
	Samples, Assays int
	// Budget is the concurrent module area budget in cells (0 =
	// unlimited for Graph/invitro; the PCR case study fixes its own).
	Budget int
	// Library is the module catalogue (Table 1 when nil).
	Library *modlib.Library
}

// PlaceSpec configures module placement.
type PlaceSpec struct {
	// Placer selects the algorithm: "greedy", "greedy-oblivious",
	// "sa" or "twostage".
	Placer string
	// Options configures the annealing placers. When Observer is nil
	// and the request has telemetry sinks, Run attaches the standard
	// "place"-stage anneal observer; Metrics likewise defaults to the
	// request registry. Neither affects the annealer's RNG, so
	// placements are bit-identical with or without telemetry.
	Options core.Options
	// FT configures stage 2 of the "twostage" placer.
	FT core.FTOptions
	// Spares threads that many interstitial spare lines through the
	// finished placement (place.InsertSpares, columns first — see
	// place.SpareSplit), the space-redundancy transform for yield
	// enhancement. Applied downstream of the placement cache: it is a
	// deterministic arithmetic transform, so requests differing only
	// in Spares share one cache entry and one anneal.
	Spares int
}

// FTISpec requests fault-tolerance analysis of the placement.
type FTISpec struct {
	// Verify additionally runs exhaustive single-fault injection
	// (Result.Exhaustive); its survival rate equals the FTI exactly.
	Verify bool
	// MonteCarlo, when positive, runs that many random single-fault
	// trials (Result.MonteCarlo).
	MonteCarlo int
	// Seed drives the Monte-Carlo trials.
	Seed int64
}

// SimSpec requests a chip-simulator run of the schedule on the
// placement.
type SimSpec struct {
	// Options configures the simulator. Telemetry and Metrics default
	// to the request's sinks when nil.
	Options sim.Options
	// Faults are injected at their scheduled times.
	Faults []sim.FaultInjection
}

// RouteSpec requests standalone droplet routing on a fresh chip.
type RouteSpec struct {
	W, H      int
	Faults    []geom.Point // injected before planning
	Endpoints []router.Endpoint
	Options   router.ConcurrentOptions
	// Frames compiles the plan into an electrode actuation program
	// (Result.Route.Program). Always done by the route CLI; spec'd so
	// service callers can skip it.
	Frames bool
}

// TestSpec requests a droplet structural test of a chip.
type TestSpec struct {
	W, H   int
	Faults []geom.Point
	// Online additionally sweeps with the placement's module regions
	// masked (testing concurrent with assay execution); requires a
	// placement from an earlier stage or Request.Placement.
	Online bool
}

// Request describes one pipeline run. Specs select stages; nil specs
// are skipped. Pre-computed inputs (Schedule, Placement) short-circuit
// the corresponding stage.
type Request struct {
	// Tool names the invoking binary for telemetry span fields.
	Tool string

	Synth *SynthSpec
	// Schedule, when set, is used instead of running synthesis.
	Schedule *schedule.Schedule

	Place *PlaceSpec
	// Placement, when set, is used instead of running the placer.
	Placement *place.Placement

	FTI   *FTISpec
	Route *RouteSpec
	Test  *TestSpec
	Sim   *SimSpec

	// Cache, when set, serves placements by content-addressed
	// fingerprint: a hit skips the placer entirely and unmarshals the
	// cached bytes, which are guaranteed byte-identical to a fresh
	// run's marshalled placement.
	Cache *pcache.Cache

	Tracer  *telemetry.Tracer
	Metrics *telemetry.Registry
}

// RouteResult is the routing stage's output.
type RouteResult struct {
	Plan    *router.ConcurrentPlan
	Program *actuation.Program
}

// TestResult is the structural-test stage's output.
type TestResult struct {
	Online  *testdrop.Report // nil unless TestSpec.Online
	Offline testdrop.Report
	// Located lists every faulty cell when the offline sweep detects a
	// fault (repeated localising sweeps).
	Located []geom.Point
}

// Result is the typed output of a pipeline run. Fields are populated
// by the stages the request selected.
type Result struct {
	Schedule  *schedule.Schedule
	Placement *place.Placement
	// TwoStage holds both stages of the "twostage" placer.
	TwoStage    *core.TwoStageResult
	PlacerStats core.Stats
	// CacheKey is the placement fingerprint when a cache was attached;
	// CacheHit reports whether the placer was skipped.
	CacheKey pcache.Key
	CacheHit bool

	FTI        *fti.Result
	Exhaustive *faultsim.Summary
	MonteCarlo *faultsim.Summary

	Route *RouteResult
	Test  *TestResult
	Sim   *sim.Result
}

// ExitCode maps a pipeline outcome to the conventional process exit
// status of the dmfb tools: 1 on any error or a failed assay, 2 when
// the assay completed degraded (some operations abandoned), 0
// otherwise.
func ExitCode(res Result, err error) int {
	if err != nil {
		return 1
	}
	if res.Sim != nil {
		switch res.Sim.Outcome {
		case sim.OutcomeFailed:
			return 1
		case sim.OutcomeDegraded:
			return 2
		}
	}
	return 0
}

// Run executes the requested stages in order. On error the returned
// Result holds everything completed before the failing stage and the
// error is a *StageError (or the context's error between stages).
func Run(ctx context.Context, req Request) (Result, error) {
	var res Result

	if err := ctx.Err(); err != nil {
		return res, err
	}
	if req.Schedule != nil {
		res.Schedule = req.Schedule
	} else if req.Synth != nil {
		done := req.stage(StageSynth)
		s, err := synthesize(*req.Synth)
		done()
		if err != nil {
			return res, &StageError{StageSynth, err}
		}
		res.Schedule = s
		req.Metrics.Gauge("synth.makespan_sec").Set(float64(s.Makespan))
		req.Metrics.Gauge("synth.peak_area_cells").Set(float64(s.PeakArea()))
	}

	if err := ctx.Err(); err != nil {
		return res, err
	}
	if req.Placement != nil {
		res.Placement = req.Placement
	} else if req.Place != nil {
		if err := req.runPlace(&res); err != nil {
			return res, err
		}
	}
	if res.Placement != nil {
		req.Metrics.Gauge("place.array_cells").Set(float64(res.Placement.ArrayCells()))
		req.Metrics.Gauge("place.utilization").Set(res.Placement.Utilization())
	}

	if err := ctx.Err(); err != nil {
		return res, err
	}
	if req.FTI != nil {
		if err := req.runFTI(&res); err != nil {
			return res, err
		}
	}

	if err := ctx.Err(); err != nil {
		return res, err
	}
	if req.Route != nil {
		if err := req.runRoute(&res); err != nil {
			return res, err
		}
	}

	if err := ctx.Err(); err != nil {
		return res, err
	}
	if req.Test != nil {
		if err := req.runTest(&res); err != nil {
			return res, err
		}
	}

	if err := ctx.Err(); err != nil {
		return res, err
	}
	if req.Sim != nil {
		if res.Schedule == nil || res.Placement == nil {
			return res, &StageError{StageSim, fmt.Errorf("simulation needs a schedule and a placement")}
		}
		opts := req.Sim.Options
		if opts.Telemetry == nil {
			opts.Telemetry = req.Tracer
		}
		if opts.Metrics == nil {
			opts.Metrics = req.Metrics
		}
		done := req.stage(StageSim)
		r := sim.Run(res.Schedule, res.Placement, opts, req.Sim.Faults...)
		done()
		res.Sim = &r
	}
	return res, nil
}

// LoadSchedule reads a schedule JSON file produced by dmfb-synth,
// decoding against the Table 1 library when lib is nil; an empty path
// synthesises the built-in PCR case study. Shared by every CLI that
// accepts a -schedule flag.
func LoadSchedule(path string, lib *modlib.Library, read func(string) ([]byte, error)) (*schedule.Schedule, error) {
	if path == "" {
		return pcr.Schedule()
	}
	data, err := read(path)
	if err != nil {
		return nil, err
	}
	if lib == nil {
		lib = modlib.Table1()
	}
	return format.UnmarshalSchedule(data, lib)
}

// LoadPlacement reads a placement JSON file produced by dmfb-place.
func LoadPlacement(path string, read func(string) ([]byte, error)) (*place.Placement, error) {
	data, err := read(path)
	if err != nil {
		return nil, err
	}
	return format.UnmarshalPlacement(data)
}

func synthesize(spec SynthSpec) (*schedule.Schedule, error) {
	if spec.Graph != nil {
		lib := spec.Library
		if lib == nil {
			lib = modlib.Table1()
		}
		b, err := schedule.Bind(spec.Graph, lib, spec.Bind)
		if err != nil {
			return nil, err
		}
		return schedule.List(spec.Graph, b, schedule.Options{AreaBudget: spec.Budget})
	}
	switch spec.Assay {
	case "pcr":
		return pcr.Schedule()
	case "invitro":
		return invitro.Synthesize(spec.Samples, spec.Assays, spec.Budget)
	default:
		return nil, fmt.Errorf("unknown assay %q (want pcr or invitro)", spec.Assay)
	}
}

// runPlace executes the placement stage, consulting the cache first.
func (req *Request) runPlace(res *Result) error {
	if res.Schedule == nil {
		return &StageError{StagePlace, fmt.Errorf("placement needs a schedule")}
	}
	spec := *req.Place
	prob := core.FromSchedule(res.Schedule)

	if req.Cache != nil {
		res.CacheKey = pcache.Fingerprint(pcache.Input{
			Schedule: res.Schedule,
			Problem:  prob,
			Placer:   spec.Placer,
			Options:  spec.Options,
			FT:       spec.FT,
		})
		if e, ok := req.Cache.Get(res.CacheKey); ok {
			if err := req.adoptCached(res, e); err != nil {
				return err
			}
			spec.applySpares(res)
			return nil
		}
	}

	opts := spec.Options
	if opts.Observer == nil {
		opts.Observer = telemetry.AnnealObserver(req.Tracer, req.Metrics, "place")
	}
	if opts.Metrics == nil {
		opts.Metrics = req.Metrics
	}

	done := req.stage(StagePlace)
	defer done()
	req.Metrics.Counter("pipeline.placer_runs").Add(1)
	var err error
	switch spec.Placer {
	case "greedy":
		res.Placement, err = core.Greedy(prob, true)
	case "greedy-oblivious":
		res.Placement, err = core.Greedy(prob, false)
	case "sa":
		res.Placement, res.PlacerStats, err = core.AnnealArea(prob, opts)
	case "twostage":
		var ts core.TwoStageResult
		ts, err = core.TwoStage(prob, opts, spec.FT)
		if err == nil {
			res.TwoStage = &ts
			res.Placement = ts.Final
			res.PlacerStats = ts.Stage2Stats
		}
	default:
		err = fmt.Errorf("unknown placer %q", spec.Placer)
	}
	if err != nil {
		return &StageError{StagePlace, err}
	}

	if req.Cache != nil {
		if err := req.fillCache(res); err != nil {
			return &StageError{StagePlace, err}
		}
	}
	spec.applySpares(res)
	return nil
}

// applySpares applies the space-redundancy transform after the cache
// (both the hit and the fill path cache the spare-free placement).
func (spec *PlaceSpec) applySpares(res *Result) {
	if spec.Spares <= 0 || res.Placement == nil {
		return
	}
	cols, rows := place.SpareSplit(spec.Spares)
	res.Placement = place.InsertSpares(res.Placement, cols, rows)
}

// adoptCached reconstructs the placement stage's result from a cache
// entry: the stored bytes are unmarshalled, so downstream stages see
// exactly the placement a fresh run would have produced.
func (req *Request) adoptCached(res *Result, e pcache.Entry) error {
	p, err := format.UnmarshalPlacement(e.Placement)
	if err != nil {
		return &StageError{StagePlace, fmt.Errorf("corrupt cache entry: %w", err)}
	}
	res.Placement = p
	res.PlacerStats = e.Stats
	res.CacheHit = true
	if len(e.Stage1) > 0 {
		s1, err := format.UnmarshalPlacement(e.Stage1)
		if err != nil {
			return &StageError{StagePlace, fmt.Errorf("corrupt cache entry: %w", err)}
		}
		res.TwoStage = &core.TwoStageResult{Stage1: s1, Final: p, Stage2Stats: res.PlacerStats}
	}
	return nil
}

// fillCache stores the freshly computed placement under its
// fingerprint.
func (req *Request) fillCache(res *Result) error {
	raw, err := format.MarshalPlacement(res.Placement)
	if err != nil {
		return err
	}
	e := pcache.Entry{Placement: raw, Stats: res.PlacerStats}
	if res.TwoStage != nil {
		if e.Stage1, err = format.MarshalPlacement(res.TwoStage.Stage1); err != nil {
			return err
		}
		e.Stage1FTI = fti.Compute(res.TwoStage.Stage1).FTI()
		e.ArrayMM2 = modlib.AreaMM2(res.TwoStage.Stage1.ArrayCells())
	}
	e.FTI = fti.Compute(res.Placement).FTI()
	req.Cache.Put(res.CacheKey, e)
	return nil
}

func (req *Request) runFTI(res *Result) error {
	if res.Placement == nil {
		return &StageError{StageFTI, fmt.Errorf("FTI analysis needs a placement")}
	}
	done := req.stage(StageFTI)
	r := fti.Compute(res.Placement)
	done()
	res.FTI = &r
	req.Metrics.Gauge("fti.value").Set(r.FTI())

	if req.FTI.Verify {
		done := req.stage("exhaustive")
		ex := faultsim.ExhaustiveSingleFault(res.Placement)
		done()
		res.Exhaustive = &ex
	}
	if n := req.FTI.MonteCarlo; n > 0 {
		done := req.stage("montecarlo")
		mc := faultsim.SingleFault(res.Placement, n, req.FTI.Seed)
		done()
		res.MonteCarlo = &mc
	}
	return nil
}

func (req *Request) runRoute(res *Result) error {
	spec := *req.Route
	chip := fluidics.NewChip(spec.W, spec.H)
	for _, f := range spec.Faults {
		if err := chip.InjectFault(f); err != nil {
			return &StageError{StageRoute, err}
		}
	}
	opts := spec.Options
	if opts.Metrics == nil {
		opts.Metrics = req.Metrics
	}
	done := req.stage(StageRoute)
	plan, err := router.PlanConcurrent(chip, spec.Endpoints, opts)
	done()
	if err != nil {
		return &StageError{StageRoute, err}
	}
	if err := router.ValidateConcurrent(chip, spec.Endpoints, plan, nil); err != nil {
		return &StageError{StageRoute, fmt.Errorf("plan failed validation: %w", err)}
	}
	res.Route = &RouteResult{Plan: plan}

	frames, err := actuation.CompileTransport(plan)
	if err != nil {
		return &StageError{StageRoute, err}
	}
	prog := &actuation.Program{W: spec.W, H: spec.H, Frames: frames}
	if err := prog.Validate(); err != nil {
		return &StageError{StageRoute, err}
	}
	res.Route.Program = prog
	return nil
}

func (req *Request) runTest(res *Result) error {
	spec := *req.Test
	chip := fluidics.NewChip(spec.W, spec.H)
	for _, f := range spec.Faults {
		if err := chip.InjectFault(f); err != nil {
			return &StageError{StageTest, err}
		}
	}
	res.Test = &TestResult{}
	if spec.Online {
		if res.Placement == nil {
			return &StageError{StageTest, fmt.Errorf("online test needs a placement")}
		}
		var keepOut []geom.Rect
		for i := range res.Placement.Modules {
			keepOut = append(keepOut, res.Placement.Rect(i))
		}
		done := req.stage("sweep_online")
		rep := testdrop.Online(chip, keepOut)
		done()
		res.Test.Online = &rep
	}
	done := req.stage("sweep_offline")
	res.Test.Offline = testdrop.Offline(chip)
	done()
	if res.Test.Offline.Faulty {
		res.Test.Located = testdrop.LocalizeAll(chip)
	}
	return nil
}

// stage wraps one pipeline stage in the standard telemetry: a
// "stage.<name>" span (nested under the tracer's current default
// parent, which it becomes for the stage's duration) and a
// "stage.<name>_ms" latency histogram. Mirrors cliflags.Session.Stage
// so pipeline spans slot into the same tool.run→stage.* hierarchy.
func (req *Request) stage(name string) func() {
	if req.Tracer == nil && req.Metrics == nil {
		return func() {}
	}
	clock := telemetry.StartStage(name)
	span := req.Tracer.Start("stage." + name)
	prev := req.Tracer.SwapDefaultParent(span.ID())
	return func() {
		st := clock.Stop()
		req.Tracer.SwapDefaultParent(prev)
		span.End(telemetry.Fields{
			"tool":   req.Tool,
			"cpu_us": st.CPU.Microseconds(),
		})
		req.Metrics.Histogram("stage."+name+"_ms", telemetry.LatencyBuckets...).
			Observe(float64(st.Wall.Microseconds()) / 1000)
	}
}
