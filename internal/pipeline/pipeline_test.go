package pipeline

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/format"
	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/pcache"
	"dmfb/internal/pcr"
	"dmfb/internal/router"
	"dmfb/internal/sim"
	"dmfb/internal/telemetry"
)

// TestRunParity: the pipeline must produce bit-identical results to
// the direct library calls it replaced in the CLIs.
func TestRunParity(t *testing.T) {
	res, err := Run(context.Background(), Request{
		Synth: &SynthSpec{Assay: "pcr"},
		Place: &PlaceSpec{Placer: "sa", Options: core.Options{Seed: 1}},
		FTI:   &FTISpec{},
	})
	if err != nil {
		t.Fatal(err)
	}

	s, err := pcr.Schedule()
	if err != nil {
		t.Fatal(err)
	}
	direct, _, err := core.AnnealArea(core.FromSchedule(s), core.Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Placement.String() != direct.String() {
		t.Errorf("pipeline placement differs from direct AnnealArea:\n%s\nvs\n%s",
			res.Placement, direct)
	}
	if got, want := res.FTI.FTI(), fti.Compute(direct).FTI(); got != want {
		t.Errorf("pipeline FTI %v != direct %v", got, want)
	}
	if res.Schedule.Makespan != s.Makespan {
		t.Errorf("makespan %d != %d", res.Schedule.Makespan, s.Makespan)
	}
}

// TestRunTelemetryInert: attaching telemetry sinks must not change the
// placement (the anneal observer never touches the RNG).
func TestRunTelemetryInert(t *testing.T) {
	req := Request{
		Synth: &SynthSpec{Assay: "pcr"},
		Place: &PlaceSpec{Placer: "twostage", Options: core.Options{Seed: 1},
			FT: core.FTOptions{Beta: 30}},
	}
	bare, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	req.Tracer = telemetry.New(&buf)
	req.Metrics = telemetry.NewRegistry()
	observed, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if bare.Placement.String() != observed.Placement.String() {
		t.Error("telemetry sinks changed the placement")
	}
	if buf.Len() == 0 {
		t.Error("tracer attached but no spans emitted")
	}
}

// TestRunCache is the tentpole acceptance test for layer 2: a second
// identical request must be served from cache — byte-identical
// placement, no annealer invocation (pipeline.placer_runs counter).
func TestRunCache(t *testing.T) {
	reg := telemetry.NewRegistry()
	cache := pcache.New(0, reg)
	req := Request{
		Synth:   &SynthSpec{Assay: "pcr"},
		Place:   &PlaceSpec{Placer: "sa", Options: core.Options{Seed: 1}},
		Cache:   cache,
		Metrics: reg,
	}

	first, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Fatal("first run reported a cache hit")
	}
	if n := reg.Counter("pipeline.placer_runs").Value(); n != 1 {
		t.Fatalf("placer_runs after first run = %d, want 1", n)
	}

	second, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("second identical run missed the cache")
	}
	if n := reg.Counter("pipeline.placer_runs").Value(); n != 1 {
		t.Fatalf("placer_runs after cached run = %d, want still 1 (annealer re-ran)", n)
	}
	if second.CacheKey != first.CacheKey {
		t.Errorf("cache keys differ: %s vs %s", first.CacheKey, second.CacheKey)
	}

	fresh, err := format.MarshalPlacement(first.Placement)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := format.MarshalPlacement(second.Placement)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fresh, cached) {
		t.Error("cached placement is not byte-identical to the fresh one")
	}

	// A different seed must miss.
	req.Place = &PlaceSpec{Placer: "sa", Options: core.Options{Seed: 2}}
	third, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if third.CacheHit {
		t.Error("different seed hit the cache")
	}
}

// TestRunCacheTwoStage: twostage entries round-trip the stage-1
// placement through the cache too.
func TestRunCacheTwoStage(t *testing.T) {
	cache := pcache.New(0, nil)
	req := Request{
		Synth: &SynthSpec{Assay: "pcr"},
		Place: &PlaceSpec{Placer: "twostage", Options: core.Options{Seed: 1},
			FT: core.FTOptions{Beta: 30}},
		Cache: cache,
	}
	first, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	second, err := Run(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit || second.TwoStage == nil {
		t.Fatalf("cached twostage run: hit=%v twoStage=%v", second.CacheHit, second.TwoStage)
	}
	if first.TwoStage.Stage1.String() != second.TwoStage.Stage1.String() {
		t.Error("stage-1 placement did not survive the cache round-trip")
	}
}

func TestStageErrors(t *testing.T) {
	cases := []struct {
		name  string
		req   Request
		stage string
	}{
		{"synth", Request{Synth: &SynthSpec{Assay: "warp"}}, StageSynth},
		{"place", Request{Synth: &SynthSpec{Assay: "pcr"},
			Place: &PlaceSpec{Placer: "magic"}}, StagePlace},
		{"place_no_schedule", Request{Place: &PlaceSpec{Placer: "sa"}}, StagePlace},
		{"fti_no_placement", Request{FTI: &FTISpec{}}, StageFTI},
		{"route", Request{Route: &RouteSpec{W: 4, H: 4,
			Endpoints: []router.Endpoint{{From: geom.Point{X: 0, Y: 0}, To: geom.Point{X: 99, Y: 99}}}}},
			StageRoute},
		{"test_fault_off_chip", Request{Test: &TestSpec{W: 4, H: 4,
			Faults: []geom.Point{{X: 77, Y: 0}}}}, StageTest},
		{"sim_no_inputs", Request{Sim: &SimSpec{}}, StageSim},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			res, err := Run(context.Background(), tc.req)
			if err == nil {
				t.Fatal("want error")
			}
			var se *StageError
			if !errors.As(err, &se) {
				t.Fatalf("error %v is not a *StageError", err)
			}
			if se.Stage != tc.stage {
				t.Errorf("stage = %q, want %q", se.Stage, tc.stage)
			}
			if se.Unwrap() == nil {
				t.Error("StageError wraps nothing")
			}
			if code := ExitCode(res, err); code != 1 {
				t.Errorf("ExitCode on error = %d, want 1", code)
			}
		})
	}
}

func TestExitCode(t *testing.T) {
	if c := ExitCode(Result{}, nil); c != 0 {
		t.Errorf("empty success = %d, want 0", c)
	}
	for outcome, want := range map[sim.Outcome]int{
		sim.OutcomeCompleted: 0,
		sim.OutcomeDegraded:  2,
		sim.OutcomeFailed:    1,
	} {
		res := Result{Sim: &sim.Result{Outcome: outcome}}
		if c := ExitCode(res, nil); c != want {
			t.Errorf("ExitCode(%v) = %d, want %d", outcome, c, want)
		}
	}
}

func TestRunCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(ctx, Request{Synth: &SynthSpec{Assay: "pcr"}})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run returned %v, want context.Canceled", err)
	}
}
