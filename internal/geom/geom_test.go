package geom

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointBasics(t *testing.T) {
	p := Point{2, 3}
	if got := p.String(); got != "(2,3)" {
		t.Errorf("String = %q", got)
	}
	if got := p.Add(Point{-1, 4}); got != (Point{1, 7}) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Manhattan(Point{5, 1}); got != 5 {
		t.Errorf("Manhattan = %d, want 5", got)
	}
	if got := p.Manhattan(p); got != 0 {
		t.Errorf("Manhattan self = %d", got)
	}
}

func TestPointNeighbors4(t *testing.T) {
	n := Point{0, 0}.Neighbors4()
	want := [4]Point{{1, 0}, {-1, 0}, {0, 1}, {0, -1}}
	if n != want {
		t.Errorf("Neighbors4 = %v, want %v", n, want)
	}
	for _, q := range n {
		if q.Manhattan(Point{0, 0}) != 1 {
			t.Errorf("neighbor %v not at distance 1", q)
		}
	}
}

func TestSize(t *testing.T) {
	s := Size{3, 6}
	if s.Cells() != 18 {
		t.Errorf("Cells = %d", s.Cells())
	}
	if s.Transpose() != (Size{6, 3}) {
		t.Errorf("Transpose = %v", s.Transpose())
	}
	if s.IsSquare() {
		t.Error("3x6 reported square")
	}
	if !(Size{4, 4}).IsSquare() {
		t.Error("4x4 not reported square")
	}
	if s.String() != "3x6" {
		t.Errorf("String = %q", s.String())
	}
	if !s.Valid() || (Size{0, 2}).Valid() || (Size{2, -1}).Valid() {
		t.Error("Valid misclassifies")
	}
}

func TestSizeFits(t *testing.T) {
	cases := []struct {
		s, c             Size
		fits, fitsEither bool
	}{
		{Size{3, 6}, Size{3, 6}, true, true},
		{Size{3, 6}, Size{6, 3}, false, true},
		{Size{3, 6}, Size{2, 9}, false, false},
		{Size{4, 4}, Size{4, 4}, true, true},
		{Size{4, 4}, Size{3, 9}, false, false},
		{Size{1, 1}, Size{1, 1}, true, true},
		{Size{5, 2}, Size{10, 10}, true, true},
	}
	for _, c := range cases {
		if got := c.s.Fits(c.c); got != c.fits {
			t.Errorf("%v.Fits(%v) = %v, want %v", c.s, c.c, got, c.fits)
		}
		if got := c.s.FitsEither(c.c); got != c.fitsEither {
			t.Errorf("%v.FitsEither(%v) = %v, want %v", c.s, c.c, got, c.fitsEither)
		}
	}
}

func TestRectBasics(t *testing.T) {
	r := Rect{1, 2, 3, 4}
	if r.Size() != (Size{3, 4}) || r.Origin() != (Point{1, 2}) {
		t.Errorf("Size/Origin wrong: %v %v", r.Size(), r.Origin())
	}
	if r.MaxX() != 4 || r.MaxY() != 6 {
		t.Errorf("MaxX/MaxY = %d/%d", r.MaxX(), r.MaxY())
	}
	if r.Cells() != 12 {
		t.Errorf("Cells = %d", r.Cells())
	}
	if r.Empty() || !(Rect{0, 0, 0, 5}).Empty() || !(Rect{0, 0, 5, -1}).Empty() {
		t.Error("Empty misclassifies")
	}
	if r.String() != "[1,2 3x4]" {
		t.Errorf("String = %q", r.String())
	}
	if RectAt(Point{1, 2}, Size{3, 4}) != r {
		t.Error("RectAt mismatch")
	}
}

func TestRectContains(t *testing.T) {
	r := Rect{1, 1, 2, 2} // cells (1,1),(2,1),(1,2),(2,2)
	in := []Point{{1, 1}, {2, 1}, {1, 2}, {2, 2}}
	out := []Point{{0, 1}, {3, 1}, {1, 0}, {1, 3}, {3, 3}, {0, 0}}
	for _, p := range in {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false", p)
		}
	}
	for _, p := range out {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true", p)
		}
	}
}

func TestRectContainsRect(t *testing.T) {
	r := Rect{0, 0, 10, 8}
	if !r.ContainsRect(Rect{0, 0, 10, 8}) {
		t.Error("self-containment failed")
	}
	if !r.ContainsRect(Rect{3, 2, 4, 4}) {
		t.Error("inner rect not contained")
	}
	if r.ContainsRect(Rect{7, 2, 4, 4}) {
		t.Error("overhanging rect reported contained")
	}
	if !r.ContainsRect(Rect{}) {
		t.Error("empty rect should be contained anywhere")
	}
}

func TestRectOverlapsIntersect(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	cases := []struct {
		b    Rect
		want Rect // empty => no overlap
	}{
		{Rect{4, 0, 2, 2}, Rect{}},           // touching edges
		{Rect{0, 4, 2, 2}, Rect{}},           // touching top
		{Rect{3, 3, 3, 3}, Rect{3, 3, 1, 1}}, // corner overlap
		{Rect{-2, -2, 3, 3}, Rect{0, 0, 1, 1}},
		{Rect{1, 1, 2, 2}, Rect{1, 1, 2, 2}}, // nested
		{Rect{10, 10, 2, 2}, Rect{}},         // far away
		{Rect{0, 0, 0, 4}, Rect{}},           // empty operand
	}
	for _, c := range cases {
		got := a.Intersect(c.b)
		if got != c.want {
			t.Errorf("Intersect(%v,%v) = %v, want %v", a, c.b, got, c.want)
		}
		if a.Overlaps(c.b) != !c.want.Empty() {
			t.Errorf("Overlaps(%v,%v) inconsistent with Intersect", a, c.b)
		}
		if a.Overlaps(c.b) != c.b.Overlaps(a) {
			t.Errorf("Overlaps not symmetric for %v,%v", a, c.b)
		}
	}
}

func TestRectUnion(t *testing.T) {
	a := Rect{0, 0, 2, 2}
	b := Rect{5, 5, 1, 1}
	if got := a.Union(b); got != (Rect{0, 0, 6, 6}) {
		t.Errorf("Union = %v", got)
	}
	if got := a.Union(Rect{}); got != a {
		t.Errorf("Union with empty = %v", got)
	}
	if got := (Rect{}).Union(b); got != b {
		t.Errorf("empty Union b = %v", got)
	}
}

func TestRectTranslatePointsCanon(t *testing.T) {
	r := Rect{1, 1, 2, 3}
	if got := r.Translate(2, -1); got != (Rect{3, 0, 2, 3}) {
		t.Errorf("Translate = %v", got)
	}
	pts := r.Points()
	if len(pts) != 6 {
		t.Fatalf("Points len = %d", len(pts))
	}
	if pts[0] != (Point{1, 1}) || pts[5] != (Point{2, 3}) {
		t.Errorf("Points order wrong: %v", pts)
	}
	if (Rect{0, 0, -3, 2}).Canon() != (Rect{0, 0, 0, 2}) {
		t.Error("Canon failed")
	}
	if (Rect{}).Points() != nil {
		t.Error("empty Points should be nil")
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := Interval{0, 5}
	if iv.Len() != 5 || iv.Empty() {
		t.Errorf("Len/Empty wrong: %d %v", iv.Len(), iv.Empty())
	}
	if !(Interval{5, 5}).Empty() || !(Interval{6, 5}).Empty() {
		t.Error("empty interval misclassified")
	}
	if (Interval{6, 5}).Len() != 0 {
		t.Error("inverted interval Len != 0")
	}
	if !iv.Contains(0) || !iv.Contains(4) || iv.Contains(5) || iv.Contains(-1) {
		t.Error("Contains boundary wrong")
	}
	if iv.String() != "[0,5)" {
		t.Errorf("String = %q", iv.String())
	}
}

func TestIntervalOverlaps(t *testing.T) {
	cases := []struct {
		a, b Interval
		want bool
	}{
		{Interval{0, 5}, Interval{5, 10}, false}, // back-to-back: reconfigurable
		{Interval{0, 5}, Interval{4, 10}, true},
		{Interval{0, 10}, Interval{3, 4}, true},
		{Interval{0, 5}, Interval{0, 5}, true},
		{Interval{0, 0}, Interval{0, 5}, false}, // empty never overlaps
		{Interval{3, 3}, Interval{0, 9}, false},
		{Interval{0, 5}, Interval{6, 9}, false},
	}
	for _, c := range cases {
		if got := c.a.Overlaps(c.b); got != c.want {
			t.Errorf("Overlaps(%v,%v) = %v, want %v", c.a, c.b, got, c.want)
		}
		if got := c.b.Overlaps(c.a); got != c.want {
			t.Errorf("Overlaps not symmetric for %v,%v", c.a, c.b)
		}
	}
}

func TestIntervalIntersectUnion(t *testing.T) {
	a := Interval{0, 10}
	b := Interval{5, 15}
	if got := a.Intersect(b); got != (Interval{5, 10}) {
		t.Errorf("Intersect = %v", got)
	}
	if got := a.Union(b); got != (Interval{0, 15}) {
		t.Errorf("Union = %v", got)
	}
	c := Interval{20, 30}
	if got := a.Intersect(c); !got.Empty() {
		t.Errorf("disjoint Intersect not empty: %v", got)
	}
	if got := a.Union(Interval{}); got != a {
		t.Errorf("Union with empty = %v", got)
	}
}

// Property: Intersect is the set intersection — a cell is in
// Intersect(a,b) iff it is in both.
func TestRectIntersectProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func() bool {
		a := randRect(rng)
		b := randRect(rng)
		got := a.Intersect(b)
		for x := -2; x < 14; x++ {
			for y := -2; y < 14; y++ {
				p := Point{x, y}
				if got.Contains(p) != (a.Contains(p) && b.Contains(p)) {
					return false
				}
			}
		}
		return true
	}
	for i := 0; i < 300; i++ {
		if !f() {
			t.Fatal("Intersect property violated")
		}
	}
}

// Property: Union contains both operands and is minimal on each axis.
func TestRectUnionProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 300; i++ {
		a := randRect(rng)
		b := randRect(rng)
		u := a.Union(b)
		if !u.ContainsRect(a) || !u.ContainsRect(b) {
			t.Fatalf("Union(%v,%v)=%v does not contain operands", a, b, u)
		}
		if !a.Empty() && !b.Empty() {
			if u.X != min(a.X, b.X) || u.Y != min(a.Y, b.Y) ||
				u.MaxX() != max(a.MaxX(), b.MaxX()) || u.MaxY() != max(a.MaxY(), b.MaxY()) {
				t.Fatalf("Union(%v,%v)=%v not tight", a, b, u)
			}
		}
	}
}

// Property: interval overlap matches existence of a shared time step.
func TestIntervalOverlapProperty(t *testing.T) {
	f := func(s1, l1, s2, l2 uint8) bool {
		a := Interval{int(s1 % 20), int(s1%20) + int(l1%10)}
		b := Interval{int(s2 % 20), int(s2%20) + int(l2%10)}
		shared := false
		for t := 0; t < 40; t++ {
			if a.Contains(t) && b.Contains(t) {
				shared = true
			}
		}
		return a.Overlaps(b) == shared && a.Intersect(b).Len() > 0 == shared
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func randRect(rng *rand.Rand) Rect {
	if rng.Intn(10) == 0 {
		return Rect{}
	}
	return Rect{rng.Intn(12), rng.Intn(12), rng.Intn(6), rng.Intn(6)}
}
