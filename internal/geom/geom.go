// Package geom provides the small geometry kernel used throughout the
// biochip CAD flow: integer points, sizes, axis-aligned rectangles on
// the cell grid, and half-open time intervals.
//
// Coordinates follow the paper's convention: the microfluidic array is
// an m×n grid of unit cells. Internally cells are addressed with
// zero-based (x, y) where x grows rightward (columns) and y grows
// upward (rows); the paper's cell (1,1) is our (0,0). A Rect occupies
// the half-open cell range [X, X+W) × [Y, Y+H).
package geom

import "fmt"

// Point is a cell coordinate on the array (zero-based).
type Point struct {
	X, Y int
}

// String returns "(x,y)".
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Add returns the translation of p by q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Manhattan returns the L1 distance between p and q.
func (p Point) Manhattan(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// Neighbors4 returns the four orthogonal neighbours of p in fixed
// order (east, west, north, south). Callers clip to array bounds.
func (p Point) Neighbors4() [4]Point {
	return [4]Point{
		{p.X + 1, p.Y},
		{p.X - 1, p.Y},
		{p.X, p.Y + 1},
		{p.X, p.Y - 1},
	}
}

// Size is the width×height footprint of a module in cells.
type Size struct {
	W, H int
}

// String returns "WxH".
func (s Size) String() string { return fmt.Sprintf("%dx%d", s.W, s.H) }

// Cells returns the number of cells covered by the footprint.
func (s Size) Cells() int { return s.W * s.H }

// Transpose returns the footprint rotated by 90 degrees.
func (s Size) Transpose() Size { return Size{s.H, s.W} }

// IsSquare reports whether rotating the footprint changes nothing.
func (s Size) IsSquare() bool { return s.W == s.H }

// Fits reports whether a footprint of this size fits inside a
// container of size c without rotation.
func (s Size) Fits(c Size) bool { return s.W <= c.W && s.H <= c.H }

// FitsEither reports whether the footprint fits inside c in at least
// one of its two orientations.
func (s Size) FitsEither(c Size) bool { return s.Fits(c) || s.Transpose().Fits(c) }

// Valid reports whether both dimensions are positive.
func (s Size) Valid() bool { return s.W > 0 && s.H > 0 }

// Rect is an axis-aligned rectangle of cells: the half-open range
// [X, X+W) × [Y, Y+H).
type Rect struct {
	X, Y, W, H int
}

// RectAt builds a Rect with origin p and size s.
func RectAt(p Point, s Size) Rect { return Rect{p.X, p.Y, s.W, s.H} }

// String returns "[x,y WxH]".
func (r Rect) String() string { return fmt.Sprintf("[%d,%d %dx%d]", r.X, r.Y, r.W, r.H) }

// Size returns the rectangle's footprint.
func (r Rect) Size() Size { return Size{r.W, r.H} }

// Origin returns the bottom-left cell of the rectangle.
func (r Rect) Origin() Point { return Point{r.X, r.Y} }

// MaxX returns the exclusive right edge X+W.
func (r Rect) MaxX() int { return r.X + r.W }

// MaxY returns the exclusive top edge Y+H.
func (r Rect) MaxY() int { return r.Y + r.H }

// Cells returns the number of cells covered.
func (r Rect) Cells() int { return r.W * r.H }

// Empty reports whether the rectangle covers no cells.
func (r Rect) Empty() bool { return r.W <= 0 || r.H <= 0 }

// Contains reports whether cell p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.X && p.X < r.MaxX() && p.Y >= r.Y && p.Y < r.MaxY()
}

// ContainsRect reports whether s lies entirely inside r.
func (r Rect) ContainsRect(s Rect) bool {
	if s.Empty() {
		return true
	}
	return s.X >= r.X && s.Y >= r.Y && s.MaxX() <= r.MaxX() && s.MaxY() <= r.MaxY()
}

// Overlaps reports whether r and s share at least one cell.
func (r Rect) Overlaps(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.X < s.MaxX() && s.X < r.MaxX() && r.Y < s.MaxY() && s.Y < r.MaxY()
}

// Intersect returns the common cells of r and s; the zero Rect (empty)
// if they are disjoint.
func (r Rect) Intersect(s Rect) Rect {
	x0 := max(r.X, s.X)
	y0 := max(r.Y, s.Y)
	x1 := min(r.MaxX(), s.MaxX())
	y1 := min(r.MaxY(), s.MaxY())
	if x1 <= x0 || y1 <= y0 {
		return Rect{}
	}
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Union returns the smallest rectangle containing both r and s. An
// empty operand is ignored.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	x0 := min(r.X, s.X)
	y0 := min(r.Y, s.Y)
	x1 := max(r.MaxX(), s.MaxX())
	y1 := max(r.MaxY(), s.MaxY())
	return Rect{x0, y0, x1 - x0, y1 - y0}
}

// Translate returns r moved by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect { return Rect{r.X + dx, r.Y + dy, r.W, r.H} }

// Points returns every cell in the rectangle in row-major order
// (y outer, x inner). Intended for tests and rendering, not hot paths.
func (r Rect) Points() []Point {
	if r.Empty() {
		return nil
	}
	pts := make([]Point, 0, r.Cells())
	for y := r.Y; y < r.MaxY(); y++ {
		for x := r.X; x < r.MaxX(); x++ {
			pts = append(pts, Point{x, y})
		}
	}
	return pts
}

// Canon returns the rectangle with negative extents normalised to
// empty (W, H clamped at 0).
func (r Rect) Canon() Rect {
	if r.W < 0 {
		r.W = 0
	}
	if r.H < 0 {
		r.H = 0
	}
	return r
}

// Interval is a half-open time interval [Start, End) in discrete time
// units (the flow uses seconds from architectural-level synthesis and
// control-step ticks inside the simulator).
type Interval struct {
	Start, End int
}

// String returns "[start,end)".
func (iv Interval) String() string { return fmt.Sprintf("[%d,%d)", iv.Start, iv.End) }

// Len returns End-Start (0 for empty or inverted intervals).
func (iv Interval) Len() int {
	if iv.End <= iv.Start {
		return 0
	}
	return iv.End - iv.Start
}

// Empty reports whether the interval contains no time step.
func (iv Interval) Empty() bool { return iv.End <= iv.Start }

// Contains reports whether time t lies within [Start, End).
func (iv Interval) Contains(t int) bool { return t >= iv.Start && t < iv.End }

// Overlaps reports whether the two half-open intervals intersect.
// Back-to-back intervals ([0,5) and [5,10)) do not overlap, which is
// exactly the condition for two modules to share cells via dynamic
// reconfiguration.
func (iv Interval) Overlaps(o Interval) bool {
	if iv.Empty() || o.Empty() {
		return false
	}
	return iv.Start < o.End && o.Start < iv.End
}

// Intersect returns the overlap of the two intervals (empty if none).
func (iv Interval) Intersect(o Interval) Interval {
	s := max(iv.Start, o.Start)
	e := min(iv.End, o.End)
	if e < s {
		e = s
	}
	return Interval{s, e}
}

// Union returns the smallest interval covering both operands; empty
// operands are ignored.
func (iv Interval) Union(o Interval) Interval {
	if iv.Empty() {
		return o
	}
	if o.Empty() {
		return iv
	}
	return Interval{min(iv.Start, o.Start), max(iv.End, o.End)}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
