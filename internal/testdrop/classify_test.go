package testdrop

import (
	"testing"

	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
)

func TestClassifyPermanentFault(t *testing.T) {
	chip := fluidics.NewChip(6, 6)
	cell := geom.Point{X: 2, Y: 3}
	if err := chip.InjectFault(cell); err != nil {
		t.Fatal(err)
	}
	cl := ClassifyFault(chip, cell, RetryPolicy{})
	if cl.Class != FaultPermanent {
		t.Fatalf("class = %v, want permanent", cl.Class)
	}
	if cl.Probes != 3 {
		t.Fatalf("probes = %d, want the default 3 retries", cl.Probes)
	}
	// Backoff doubles: 8 + 16 + 32.
	if cl.WaitSteps != 56 {
		t.Fatalf("wait steps = %d, want 56", cl.WaitSteps)
	}
	if !chip.IsFaulty(cell) {
		t.Fatal("permanent fault must survive classification")
	}
}

func TestClassifyTransientFaultHeals(t *testing.T) {
	chip := fluidics.NewChip(6, 6)
	cell := geom.Point{X: 1, Y: 1}
	// Fails 2 probes, passes the third — inside the default budget.
	if err := chip.InjectTransientFault(cell, 2); err != nil {
		t.Fatal(err)
	}
	if !chip.IsFaulty(cell) {
		t.Fatal("transient fault must read faulty before classification")
	}
	cl := ClassifyFault(chip, cell, RetryPolicy{})
	if cl.Class != FaultTransient {
		t.Fatalf("class = %v, want transient", cl.Class)
	}
	if cl.Probes != 3 {
		t.Fatalf("probes = %d, want 3 (two failures then a pass)", cl.Probes)
	}
	if chip.IsFaulty(cell) {
		t.Fatal("transient fault must be healed after a passing probe")
	}
}

func TestClassifyStubbornTransientReadsPermanent(t *testing.T) {
	chip := fluidics.NewChip(6, 6)
	cell := geom.Point{X: 4, Y: 4}
	// Outlives the retry budget: indistinguishable from permanent.
	if err := chip.InjectTransientFault(cell, 10); err != nil {
		t.Fatal(err)
	}
	cl := ClassifyFault(chip, cell, RetryPolicy{MaxRetries: 2, BackoffSteps: 4})
	if cl.Class != FaultPermanent {
		t.Fatalf("class = %v, want permanent (budget exhausted)", cl.Class)
	}
	if !chip.IsFaulty(cell) {
		t.Fatal("unhealed transient fault must stay faulty")
	}
}

func TestClassifyIsDeterministic(t *testing.T) {
	run := func() Classification {
		chip := fluidics.NewChip(4, 4)
		cell := geom.Point{X: 0, Y: 2}
		if err := chip.InjectTransientFault(cell, 1); err != nil {
			t.Fatal(err)
		}
		return ClassifyFault(chip, cell, RetryPolicy{})
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("classification not deterministic: %v vs %v", a, b)
	}
}
