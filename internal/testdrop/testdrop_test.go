package testdrop

import (
	"math/rand"
	"sort"
	"strings"
	"testing"

	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
)

func TestSerpentineCoversEveryCellOnce(t *testing.T) {
	for _, d := range [][2]int{{1, 1}, {4, 3}, {7, 9}, {10, 10}} {
		w, h := d[0], d[1]
		path := SerpentinePath(w, h)
		if len(path) != w*h {
			t.Fatalf("%dx%d: path length %d", w, h, len(path))
		}
		seen := map[geom.Point]bool{}
		for i, p := range path {
			if seen[p] {
				t.Fatalf("%dx%d: cell %v visited twice", w, h, p)
			}
			seen[p] = true
			if i > 0 && path[i-1].Manhattan(p) != 1 {
				t.Fatalf("%dx%d: path not contiguous at %d", w, h, i)
			}
		}
	}
}

func TestOfflinePassOnHealthyArray(t *testing.T) {
	chip := fluidics.NewChip(7, 9)
	rep := Offline(chip)
	if rep.Faulty {
		t.Fatalf("healthy array reported faulty: %v", rep)
	}
	if rep.Tested != 63 || rep.Planned != 63 {
		t.Errorf("tested %d/%d, want 63/63", rep.Tested, rep.Planned)
	}
	if !strings.Contains(rep.String(), "PASS") {
		t.Errorf("String = %q", rep.String())
	}
}

func TestOfflineDetectsAndLocalizesSingleFault(t *testing.T) {
	for _, fault := range []geom.Point{{X: 0, Y: 0}, {X: 3, Y: 4}, {X: 6, Y: 8}, {X: 6, Y: 0}} {
		chip := fluidics.NewChip(7, 9)
		chip.InjectFault(fault)
		rep := Offline(chip)
		if !rep.Faulty {
			t.Fatalf("fault at %v not detected", fault)
		}
		if rep.FaultCell != fault {
			t.Errorf("fault localised to %v, want %v", rep.FaultCell, fault)
		}
		if !strings.Contains(rep.String(), "FAULT") {
			t.Errorf("String = %q", rep.String())
		}
	}
}

func TestOnlineSkipsActiveModules(t *testing.T) {
	chip := fluidics.NewChip(9, 7)
	// A module occupies the middle; a fault inside it must NOT be
	// detected (those cells are in use and not testable online)...
	module := geom.Rect{X: 3, Y: 2, W: 4, H: 4}
	chip.InjectFault(geom.Point{X: 4, Y: 3})
	rep := Online(chip, []geom.Rect{module})
	if rep.Faulty {
		t.Fatalf("online test entered an active module: %v", rep)
	}
	if rep.Tested != 9*7-module.Cells() {
		t.Errorf("tested %d cells, want %d", rep.Tested, 9*7-module.Cells())
	}
	// ...but a fault outside the module is found.
	chip.InjectFault(geom.Point{X: 0, Y: 6})
	rep = Online(chip, []geom.Rect{module})
	if !rep.Faulty || rep.FaultCell != (geom.Point{X: 0, Y: 6}) {
		t.Fatalf("online test missed outside fault: %v", rep)
	}
}

func TestLocalizeAllFindsEveryFault(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		chip := fluidics.NewChip(8, 8)
		want := map[geom.Point]bool{}
		for i := 0; i < 1+rng.Intn(5); i++ {
			p := geom.Point{X: rng.Intn(8), Y: rng.Intn(8)}
			chip.InjectFault(p)
			want[p] = true
		}
		got := LocalizeAll(chip)
		if len(got) != len(want) {
			t.Fatalf("trial %d: found %v, want %d faults", trial, got, len(want))
		}
		for _, p := range got {
			if !want[p] {
				t.Fatalf("trial %d: false positive at %v", trial, p)
			}
		}
	}
}

// Property: the first fault reported by Offline is the first faulty
// cell in serpentine order.
func TestOfflineFindsFirstInPathOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 50; trial++ {
		chip := fluidics.NewChip(6, 6)
		path := SerpentinePath(6, 6)
		pos := map[geom.Point]int{}
		for i, p := range path {
			pos[p] = i
		}
		var idxs []int
		for i := 0; i < 3; i++ {
			p := geom.Point{X: rng.Intn(6), Y: rng.Intn(6)}
			chip.InjectFault(p)
			idxs = append(idxs, pos[p])
		}
		sort.Ints(idxs)
		rep := Offline(chip)
		if !rep.Faulty {
			t.Fatal("faults not detected")
		}
		if pos[rep.FaultCell] != idxs[0] {
			t.Fatalf("reported fault at path index %d, want first at %d",
				pos[rep.FaultCell], idxs[0])
		}
	}
}
