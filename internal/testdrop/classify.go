package testdrop

import (
	"fmt"

	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
)

// FaultClass distinguishes permanent cell defects (electrode stuck
// open/short, dielectric breakdown) from transient ones (droplet
// residue, trapped charge) that clear under repeated actuation. The
// distinction matters operationally: a permanent fault forces
// reconfiguration, a transient one only costs the retry budget.
type FaultClass int

const (
	// FaultPermanent marks a cell that failed every re-test probe.
	FaultPermanent FaultClass = iota
	// FaultTransient marks a cell that passed a re-test probe after
	// initially refusing a droplet; the cell is healed and usable.
	FaultTransient
)

// String names the class.
func (c FaultClass) String() string {
	if c == FaultTransient {
		return "transient"
	}
	return "permanent"
}

// RetryPolicy bounds the re-test loop of ClassifyFault. The backoff is
// deterministic — an exponentially growing number of control steps
// between probes, not wall-clock time — so classification never makes
// a seeded simulation machine-dependent.
type RetryPolicy struct {
	// MaxRetries is the number of re-test probes before the fault is
	// declared permanent. Default 3.
	MaxRetries int
	// BackoffSteps is the control-step wait before the first retry,
	// doubling on each subsequent one. Default 8 (80 ms at the 10 ms
	// control period).
	BackoffSteps int
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxRetries <= 0 {
		p.MaxRetries = 3
	}
	if p.BackoffSteps <= 0 {
		p.BackoffSteps = 8
	}
	return p
}

// Classification is the outcome of a bounded-retry re-test of one
// suspected-faulty cell.
type Classification struct {
	Cell      geom.Point
	Class     FaultClass
	Probes    int // re-test probes issued
	WaitSteps int // control steps spent backing off between probes
}

// String summarises the classification.
func (c Classification) String() string {
	return fmt.Sprintf("%v: %s after %d probes (%d backoff steps)",
		c.Cell, c.Class, c.Probes, c.WaitSteps)
}

// ClassifyFault re-tests a cell that just refused a droplet: up to
// pol.MaxRetries probes, separated by deterministic exponential
// backoff. A probe that passes classifies the fault as transient (the
// cell has healed and needs no reconfiguration); exhausting the budget
// classifies it as permanent. The zero policy uses the defaults.
func ClassifyFault(chip *fluidics.Chip, cell geom.Point, pol RetryPolicy) Classification {
	pol = pol.withDefaults()
	cl := Classification{Cell: cell, Class: FaultPermanent}
	wait := pol.BackoffSteps
	for i := 0; i < pol.MaxRetries; i++ {
		cl.WaitSteps += wait
		wait *= 2
		cl.Probes++
		if chip.Probe(cell) {
			cl.Class = FaultTransient
			return cl
		}
	}
	return cl
}
