// Package testdrop implements droplet-based structural testing of the
// microfluidic array, following the methodology the paper relies on
// for fault detection (Su et al., ITC 2003; concurrent testing, ITC
// 2004): a test droplet is dispensed from a test source, routed along
// a path that covers the cells under test, and observed at a
// capacitive sensing circuit at the sink. If the droplet arrives
// within the expected number of control steps, the traversed cells are
// fault-free; if it gets stuck (a faulty electrode cannot pull the
// droplet), the array is faulty and the stuck position localises the
// defect to the first faulty cell of the path.
//
// Two modes are provided:
//
//   - Offline: a serpentine sweep covering the entire array (run
//     before the assay, or after fabrication).
//   - Online: a sweep restricted to the cells not occupied by active
//     modules, so testing runs concurrently with the assay; this is
//     what enables the paper's "testing and reconfiguration carried
//     out frequently" single-fault regime.
package testdrop

import (
	"fmt"

	"dmfb/internal/fluidics"
	"dmfb/internal/geom"
)

// Report is the outcome of a test pass.
type Report struct {
	Tested    int  // cells the droplet actually visited
	Planned   int  // cells the plan intended to visit
	Faulty    bool // a fault was detected
	FaultCell geom.Point
	Steps     int // control steps consumed by the walk
}

// String summarises the report.
func (r Report) String() string {
	if r.Faulty {
		return fmt.Sprintf("FAULT at %v after testing %d/%d cells (%d steps)",
			r.FaultCell, r.Tested, r.Planned, r.Steps)
	}
	return fmt.Sprintf("PASS: %d/%d cells fault-free (%d steps)", r.Tested, r.Planned, r.Steps)
}

// SerpentinePath returns a boustrophedon walk over every cell of the
// w×h array starting at (0,0): left-to-right on even rows, back on odd
// rows. Consecutive cells are orthogonally adjacent, so a single test
// droplet can follow it.
func SerpentinePath(w, h int) []geom.Point {
	path := make([]geom.Point, 0, w*h)
	for y := 0; y < h; y++ {
		if y%2 == 0 {
			for x := 0; x < w; x++ {
				path = append(path, geom.Point{X: x, Y: y})
			}
		} else {
			for x := w - 1; x >= 0; x-- {
				path = append(path, geom.Point{X: x, Y: y})
			}
		}
	}
	return path
}

// walk drives a test droplet along the path on a fresh droplet state,
// reporting the first cell that refuses the droplet. Cells in skip are
// stepped around by detouring through the path order (they are simply
// not entered; the droplet jumps over them via re-dispensing, which
// physically corresponds to splitting the sweep into several passes).
func walk(chip *fluidics.Chip, path []geom.Point, skip func(geom.Point) bool) Report {
	rep := Report{Planned: len(path)}
	state := fluidics.NewState(chip)
	var cur *int // droplet id currently walking, nil between segments
	var id int
	for _, cell := range path {
		if skip != nil && skip(cell) {
			// Segment break: the droplet is routed off (test pass ends
			// here) and a new one starts after the skipped stretch.
			if cur != nil {
				state.Remove(id)
				cur = nil
			}
			continue
		}
		if cur == nil {
			d, err := state.Dispense("test", cell)
			if err != nil {
				// The first cell of a segment refuses the droplet:
				// detected immediately by the dispense sensor.
				rep.Faulty = true
				rep.FaultCell = cell
				rep.Steps++
				return rep
			}
			id = d.ID
			cur = &id
			rep.Tested++
			rep.Steps++
			continue
		}
		if err := state.Move(id, cell); err != nil {
			// Stuck droplet: capacitive sensing never sees it arrive.
			rep.Faulty = true
			rep.FaultCell = cell
			rep.Steps++
			return rep
		}
		rep.Tested++
		rep.Steps++
	}
	if cur != nil {
		state.Remove(id)
	}
	return rep
}

// Offline sweeps the whole array with a serpentine test droplet and
// reports the first fault found (single-fault assumption: testing is
// run frequently enough that at most one new fault appears between
// passes, per Section 5.2).
func Offline(chip *fluidics.Chip) Report {
	return walk(chip, SerpentinePath(chip.W(), chip.H()), nil)
}

// Online sweeps only the cells outside the given keep-out rectangles
// (the segregation regions of currently operating modules), allowing
// fault testing concurrently with assay execution.
func Online(chip *fluidics.Chip, keepOut []geom.Rect) Report {
	skip := func(p geom.Point) bool {
		for _, r := range keepOut {
			if r.Contains(p) {
				return true
			}
		}
		return false
	}
	return walk(chip, SerpentinePath(chip.W(), chip.H()), skip)
}

// LocalizeAll repeatedly sweeps the array, masking each found fault,
// until the sweep passes; it returns every faulty cell reachable by
// the serpentine. This models the multi-pass localisation flow used
// when more than one fault has accumulated.
func LocalizeAll(chip *fluidics.Chip) []geom.Point {
	var found []geom.Point
	mask := map[geom.Point]bool{}
	for {
		skip := func(p geom.Point) bool { return mask[p] }
		rep := walk(chip, SerpentinePath(chip.W(), chip.H()), skip)
		if !rep.Faulty {
			return found
		}
		found = append(found, rep.FaultCell)
		mask[rep.FaultCell] = true
	}
}
