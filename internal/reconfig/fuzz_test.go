package reconfig

import (
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/place"
)

// Native fuzz targets for the recovery layer. The byte stream is
// decoded into an arbitrary placement scenario (array, modules,
// positions, fault, obstacle cells); undecodable or infeasible inputs
// are discarded. On every successful plan the fuzzer asserts the
// relocation invariants the whole fault-tolerance story rests on:
// relocations stay inside the array, never cover the fault cell or an
// obstacle, preserve the module footprint, and the applied placement
// passes full overlap validation.

// byteReader consumes fuzz bytes one at a time, yielding zero once
// exhausted so every prefix decodes to something.
type byteReader struct {
	data []byte
	pos  int
}

func (r *byteReader) next() int {
	if r.pos >= len(r.data) {
		return 0
	}
	b := r.data[r.pos]
	r.pos++
	return int(b)
}

// fuzzScenario is one decoded fault-recovery instance.
type fuzzScenario struct {
	p         *place.Placement
	array     geom.Rect
	fault     geom.Point
	obstacles []geom.Point
}

// decodeScenario builds a valid scenario from raw fuzz bytes, or
// returns ok=false when the bytes decode to an infeasible one.
func decodeScenario(data []byte) (fuzzScenario, bool) {
	r := &byteReader{data: data}
	w := 2 + r.next()%11
	h := 2 + r.next()%11
	array := geom.Rect{X: 0, Y: 0, W: w, H: h}

	n := 1 + r.next()%5
	mods := make([]place.Module, n)
	for i := range mods {
		start := r.next() % 8
		mods[i] = place.Module{
			ID:   i,
			Name: "F",
			Size: geom.Size{W: 1 + r.next()%4, H: 1 + r.next()%4},
			Span: geom.Interval{Start: start, End: start + 1 + r.next()%6},
		}
	}
	p := place.New(mods)
	for i := range mods {
		if r.next()%2 == 1 && !mods[i].Size.IsSquare() {
			p.Rot[i] = true
		}
		sz := p.Size(i)
		if sz.W > w || sz.H > h {
			return fuzzScenario{}, false
		}
		p.Pos[i] = geom.Point{X: r.next() % (w - sz.W + 1), Y: r.next() % (h - sz.H + 1)}
	}
	if p.Validate() != nil {
		return fuzzScenario{}, false
	}
	s := fuzzScenario{
		p:     p,
		array: array,
		fault: geom.Point{X: r.next() % w, Y: r.next() % h},
	}
	for k := r.next() % 4; k > 0; k-- {
		o := geom.Point{X: r.next() % w, Y: r.next() % h}
		if o != s.fault {
			s.obstacles = append(s.obstacles, o)
		}
	}
	return s, true
}

// checkRelocation asserts the site invariants of one relocation.
func checkRelocation(t *testing.T, s fuzzScenario, mi int, rel Relocation) {
	t.Helper()
	if !s.array.ContainsRect(rel.To) {
		t.Fatalf("relocation %v escapes array %v", rel, s.array)
	}
	if rel.To.Contains(s.fault) {
		t.Fatalf("relocation %v covers the fault cell %v", rel, s.fault)
	}
	for _, o := range s.obstacles {
		if rel.To.Contains(o) {
			t.Fatalf("relocation %v covers obstacle %v", rel, o)
		}
	}
	m := s.p.Modules[mi]
	if sz := rel.To.Size(); sz != m.Size && sz != m.Size.Transpose() {
		t.Fatalf("relocation %v does not preserve footprint %v", rel, m.Size)
	}
}

func FuzzPlanModule(f *testing.F) {
	f.Add([]byte("plan-module"))
	f.Add([]byte{8, 8, 2, 0, 2, 2, 3, 1, 3, 3, 0, 0, 0, 1, 4, 4, 4, 5, 2, 1, 1, 6, 6})
	f.Add([]byte{4, 4, 1, 0, 2, 2, 4, 0, 0, 0, 1, 1, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, ok := decodeScenario(data)
		if !ok {
			return
		}
		for mi := range s.p.Modules {
			rel, err := PlanModule(s.p, s.array, mi, s.fault, s.obstacles...)
			if err != nil {
				continue
			}
			checkRelocation(t, s, mi, rel)
			// Planning is deterministic: replanning yields the same site.
			again, err2 := PlanModule(s.p, s.array, mi, s.fault, s.obstacles...)
			if err2 != nil || again != rel {
				t.Fatalf("replan diverged: %v / %v (err %v)", rel, again, err2)
			}
			// Applying the single relocation yields a valid placement
			// (modules time-sharing the fault are planned independently,
			// so apply one at a time).
			cur := s.p.Clone()
			if aerr := Apply(cur, []Relocation{rel}); aerr != nil {
				t.Fatalf("planned relocation %v does not apply: %v", rel, aerr)
			}
			if verr := cur.Validate(); verr != nil {
				t.Fatalf("applied placement invalid: %v", verr)
			}
		}
	})
}

func FuzzRecover(f *testing.F) {
	f.Add([]byte("recover-seed"))
	f.Add([]byte{9, 7, 3, 0, 2, 2, 5, 2, 1, 2, 4, 1, 3, 1, 2, 0, 0, 0, 2, 2, 1, 5, 3, 4, 2})
	f.Add([]byte{6, 6, 2, 0, 3, 3, 6, 3, 2, 2, 4, 0, 0, 0, 0, 3, 3, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, ok := decodeScenario(data)
		if !ok {
			return
		}
		cur := s.p.Clone()
		rels, err := Recover(cur, s.array, s.fault)
		if err != nil {
			// Failed recovery must leave the placement untouched.
			for i := range s.p.Modules {
				if cur.Pos[i] != s.p.Pos[i] || cur.Rot[i] != s.p.Rot[i] {
					t.Fatalf("failed Recover mutated module %d", i)
				}
			}
			return
		}
		if verr := cur.Validate(); verr != nil {
			t.Fatalf("recovered placement invalid: %v", verr)
		}
		if len(cur.ModulesAt(s.fault)) != 0 {
			t.Fatalf("fault cell %v still covered after recovery", s.fault)
		}
		for i := range cur.Modules {
			if !s.array.ContainsRect(cur.Rect(i)) {
				t.Fatalf("module %d escaped the array after recovery", i)
			}
		}
		for _, rel := range rels {
			checkRelocation(t, fuzzScenario{p: s.p, array: s.array, fault: s.fault}, rel.Module, rel)
		}
	})
}
