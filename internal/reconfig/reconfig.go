// Package reconfig implements the paper's partial reconfiguration
// (Section 5.1): when a cell is detected faulty during field
// operation, the module containing it is relocated to fault-free
// unused cells by reprogramming control voltages, while the rest of
// the configuration is left untouched. The relocation search is the
// fast maximal-empty-rectangle procedure also used by the fault
// tolerance index, so a placement's FTI exactly predicts which faults
// this package can recover from.
package reconfig

import (
	"fmt"
	"sync/atomic"
	"time"

	"dmfb/internal/emptyrect"
	"dmfb/internal/geom"
	"dmfb/internal/place"
	"dmfb/internal/telemetry"
)

// instr is the package-level metrics hook. Reconfiguration planning
// is invoked deep inside the simulator and the fault-injection
// campaigns, with no options struct to thread a registry through, so
// the hook is process-wide; the disabled cost is one atomic load.
var instr atomic.Pointer[telemetry.Registry]

// Instrument directs reconfiguration metrics (reconfig.plan_ms,
// reconfig.relocations, reconfig.plan_failures, reconfig.applies) to
// reg; nil disables them.
func Instrument(reg *telemetry.Registry) { instr.Store(reg) }

// Relocation describes one successful partial reconfiguration.
type Relocation struct {
	Module int       // index of the relocated module
	From   geom.Rect // original site
	To     geom.Rect // new site (possibly rotated footprint)
	Fault  geom.Point
}

// String summarises the relocation.
func (r Relocation) String() string {
	return fmt.Sprintf("module %d: %v -> %v (fault at %v)", r.Module, r.From, r.To, r.Fault)
}

// Rotated reports whether the relocation changed the module's
// orientation.
func (r Relocation) Rotated() bool {
	return r.From.Size() != r.To.Size()
}

// Plan computes the partial reconfiguration for a fault at cell pt on
// the given array. It returns the relocations needed — one per module
// whose rectangle contains pt (several modules may time-share the
// faulty cell) — without modifying the placement. An error is
// returned when some affected module cannot be relocated; in that case
// the fault is not C-covered and the assay must be aborted or the chip
// taken offline.
//
// Obstacles are previously detected faulty cells that must also stay
// uncovered: when faults accumulate over a chip's lifetime, every
// earlier fault is as dead as the new one, so relocation sites must
// avoid them all, not just the newest cell.
//
// Each relocation is chosen best-fit: the accommodating maximal empty
// rectangle wasting the fewest cells, with the module anchored inside
// it so as to avoid the faulty cell.
func Plan(p *place.Placement, array geom.Rect, fault geom.Point, obstacles ...geom.Point) ([]Relocation, error) {
	if !array.Contains(fault) {
		return nil, fmt.Errorf("reconfig: fault %v outside array %v", fault, array)
	}
	var out []Relocation
	for _, mi := range p.ModulesAt(fault) {
		r, err := PlanModule(p, array, mi, fault, obstacles...)
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// PlanModule computes the relocation of a single module for a fault at
// cell fault, regardless of whether the fault lies inside the module
// (a site avoiding the faulty cell is required either way). Extra
// obstacle cells — typically previously detected faults — are treated
// as occupied when searching for a site. The placement is not
// modified.
func PlanModule(p *place.Placement, array geom.Rect, mi int, fault geom.Point, obstacles ...geom.Point) (Relocation, error) {
	if mi < 0 || mi >= len(p.Modules) {
		return Relocation{}, fmt.Errorf("reconfig: unknown module %d", mi)
	}
	return PlanModuleSized(p, array, mi, p.Modules[mi].Size, fault, obstacles...)
}

// PlanModuleSized is PlanModule with an explicit footprint for the
// relocated module, which may differ from the module's catalogue size.
// The recovery ladder uses it to plan a *downgrade*: re-hosting an
// operation on a smaller (typically slower) library device when no
// site accommodates the original footprint.
func PlanModuleSized(p *place.Placement, array geom.Rect, mi int, size geom.Size, fault geom.Point, obstacles ...geom.Point) (Relocation, error) {
	reg := instr.Load()
	var start time.Time
	if reg != nil {
		start = time.Now()
	}
	if mi < 0 || mi >= len(p.Modules) {
		return Relocation{}, fmt.Errorf("reconfig: unknown module %d", mi)
	}
	m := p.Modules[mi]
	g := p.OccupancyDuring(array, m.Span, mi)
	for _, o := range obstacles {
		g.Set(geom.Point{X: o.X - array.X, Y: o.Y - array.Y}, true)
	}
	mers := emptyrect.Maximal(g)
	local := geom.Point{X: fault.X - array.X, Y: fault.Y - array.Y}
	to, ok := emptyrect.BestFitAvoiding(mers, size, local)
	if reg != nil {
		reg.Histogram("reconfig.plan_ms", telemetry.LatencyBuckets...).
			Observe(float64(time.Since(start).Microseconds()) / 1000)
		if ok {
			reg.Counter("reconfig.relocations").Inc()
		} else {
			reg.Counter("reconfig.plan_failures").Inc()
		}
	}
	if !ok {
		return Relocation{}, fmt.Errorf(
			"reconfig: module %s (%v) cannot be relocated for fault at %v: no accommodating empty rectangle",
			m.Name, size, fault)
	}
	return Relocation{
		Module: mi,
		From:   p.Rect(mi),
		To:     to.Translate(array.X, array.Y),
		Fault:  fault,
	}, nil
}

// Apply executes the relocations on the placement, updating module
// positions and orientations. It validates the result and reports an
// error (leaving p modified only on success) if the relocations
// conflict with the placement.
func Apply(p *place.Placement, rels []Relocation) error {
	next := p.Clone()
	for _, r := range rels {
		if r.Module < 0 || r.Module >= len(next.Modules) {
			return fmt.Errorf("reconfig: relocation references unknown module %d", r.Module)
		}
		m := next.Modules[r.Module]
		sz := r.To.Size()
		switch {
		case sz == m.Size:
			next.Rot[r.Module] = false
		case sz == m.Size.Transpose():
			next.Rot[r.Module] = true
		default:
			return fmt.Errorf("reconfig: site %v does not match module %s footprint %v",
				r.To, m.Name, m.Size)
		}
		next.Pos[r.Module] = r.To.Origin()
	}
	if err := next.Validate(); err != nil {
		return fmt.Errorf("reconfig: relocations produce overlap: %w", err)
	}
	copy(p.Pos, next.Pos)
	copy(p.Rot, next.Rot)
	if reg := instr.Load(); reg != nil {
		reg.Counter("reconfig.applies").Add(int64(len(rels)))
	}
	return nil
}

// Recover plans and applies the reconfiguration for a fault in one
// step, returning the relocations performed. Obstacles are previously
// detected faults the new sites must also avoid (see Plan).
func Recover(p *place.Placement, array geom.Rect, fault geom.Point, obstacles ...geom.Point) ([]Relocation, error) {
	rels, err := Plan(p, array, fault, obstacles...)
	if err != nil {
		return nil, err
	}
	if err := Apply(p, rels); err != nil {
		return nil, err
	}
	return rels, nil
}
