package reconfig

import (
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/place"
)

// TestRecoverSequentialFaultsAvoidPrior is the golden test for fault
// accumulation: when a second fault strikes a module that was already
// relocated once, the new site must avoid BOTH dead cells. Planning
// with only the newest fault used to park the module right on top of
// the first one.
func TestRecoverSequentialFaultsAvoidPrior(t *testing.T) {
	p := place.New([]place.Module{mod(0, "M", 2, 2, 0, 10)})
	array := geom.Rect{X: 0, Y: 0, W: 6, H: 2}

	// Fault 1 hits the module at its initial site (0,0)-(2,2).
	f1 := geom.Point{X: 1, Y: 1}
	rels1, err := Recover(p, array, f1)
	if err != nil {
		t.Fatalf("first recovery: %v", err)
	}
	want1 := geom.Rect{X: 2, Y: 0, W: 2, H: 2}
	if len(rels1) != 1 || rels1[0].To != want1 {
		t.Fatalf("first relocation = %v, want single move to %v", rels1, want1)
	}

	// Fault 2 hits the relocated module. Without the first fault as an
	// obstacle the planner picks the lowest-(y,x) site — which is the
	// dead cell f1's neighbourhood. This pins the gap the variadic
	// obstacle parameter closes.
	f2 := geom.Point{X: 2, Y: 0}
	buggy, err := PlanModule(p, array, 0, f2)
	if err != nil {
		t.Fatalf("obstacle-less plan: %v", err)
	}
	if !buggy.To.Contains(f1) {
		t.Fatalf("expected the obstacle-less plan to cover prior fault %v, got site %v", f1, buggy.To)
	}

	rels2, err := Recover(p, array, f2, f1)
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	want2 := geom.Rect{X: 3, Y: 0, W: 2, H: 2}
	if len(rels2) != 1 || rels2[0].To != want2 {
		t.Fatalf("second relocation = %v, want single move to %v", rels2, want2)
	}
	for _, r := range rels2 {
		if r.To.Contains(f1) || r.To.Contains(f2) {
			t.Errorf("relocation %v covers an accumulated fault (%v, %v)", r, f1, f2)
		}
	}
}
