package reconfig

import (
	"math/rand"
	"strings"
	"testing"

	"dmfb/internal/fti"
	"dmfb/internal/geom"
	"dmfb/internal/place"
)

func mod(id int, name string, w, h, s, e int) place.Module {
	return place.Module{ID: id, Name: name, Size: geom.Size{W: w, H: h},
		Span: geom.Interval{Start: s, End: e}}
}

func TestPlanFaultInFreeCell(t *testing.T) {
	p := place.New([]place.Module{mod(0, "A", 2, 2, 0, 10)})
	array := geom.Rect{X: 0, Y: 0, W: 6, H: 6}
	rels, err := Plan(p, array, geom.Point{X: 5, Y: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 0 {
		t.Fatalf("fault in unused cell should need no relocation, got %v", rels)
	}
}

func TestPlanOutsideArray(t *testing.T) {
	p := place.New([]place.Module{mod(0, "A", 2, 2, 0, 10)})
	array := geom.Rect{X: 0, Y: 0, W: 6, H: 6}
	if _, err := Plan(p, array, geom.Point{X: 6, Y: 0}); err == nil {
		t.Error("fault outside array accepted")
	}
}

func TestRecoverSimpleRelocation(t *testing.T) {
	p := place.New([]place.Module{mod(0, "A", 2, 2, 0, 10)})
	array := geom.Rect{X: 0, Y: 0, W: 6, H: 6}
	fault := geom.Point{X: 0, Y: 0}
	rels, err := Recover(p, array, fault)
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 {
		t.Fatalf("relocations = %v", rels)
	}
	if p.Rect(0).Contains(fault) {
		t.Errorf("module still uses the faulty cell: %v", p.Rect(0))
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(rels[0].String(), "module 0") {
		t.Errorf("String = %q", rels[0].String())
	}
}

func TestRecoverFailsWhenNoSpace(t *testing.T) {
	// 3x3 module fills the whole array.
	p := place.New([]place.Module{mod(0, "A", 3, 3, 0, 10)})
	array := geom.Rect{X: 0, Y: 0, W: 3, H: 3}
	if _, err := Recover(p, array, geom.Point{X: 1, Y: 1}); err == nil {
		t.Error("impossible relocation accepted")
	}
	// Placement untouched on failure.
	if p.Pos[0] != (geom.Point{X: 0, Y: 0}) {
		t.Error("failed recovery mutated the placement")
	}
}

func TestRecoverTimeSharedCell(t *testing.T) {
	// Two modules with disjoint spans share the origin cell. Both must
	// be relocated.
	mods := []place.Module{mod(0, "A", 2, 2, 0, 5), mod(1, "B", 2, 2, 5, 10)}
	p := place.New(mods)
	array := geom.Rect{X: 0, Y: 0, W: 4, H: 4}
	rels, err := Recover(p, array, geom.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 2 {
		t.Fatalf("want 2 relocations, got %v", rels)
	}
	for i := 0; i < 2; i++ {
		if p.Rect(i).Contains(geom.Point{X: 0, Y: 0}) {
			t.Errorf("module %d still uses the faulty cell", i)
		}
	}
}

func TestRelocationUsesRotationWhenNeeded(t *testing.T) {
	// A 2x3 module; the only free pocket is 3x2.
	mods := []place.Module{
		mod(0, "A", 2, 3, 0, 10),
		mod(1, "B", 3, 1, 0, 10), // blocks (2..4, 2)
	}
	p := place.New(mods)
	p.Pos[0] = geom.Point{X: 0, Y: 0}
	p.Pos[1] = geom.Point{X: 2, Y: 2}
	// Array 5x3: free cells are x2..4 y0..1 (3x2). A (2x3) fits only
	// rotated.
	array := geom.Rect{X: 0, Y: 0, W: 5, H: 3}
	rels, err := Recover(p, array, geom.Point{X: 0, Y: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rels) != 1 || !rels[0].Rotated() {
		t.Fatalf("expected one rotated relocation, got %v", rels)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestApplyRejectsGarbage(t *testing.T) {
	p := place.New([]place.Module{mod(0, "A", 2, 2, 0, 10)})
	if err := Apply(p, []Relocation{{Module: 5, To: geom.Rect{W: 2, H: 2}}}); err == nil {
		t.Error("unknown module accepted")
	}
	if err := Apply(p, []Relocation{{Module: 0, To: geom.Rect{W: 3, H: 2}}}); err == nil {
		t.Error("wrong footprint accepted")
	}
}

// Property: Plan succeeds exactly on the C-covered cells reported by
// the fault tolerance index — the FTI is a faithful predictor of
// on-line recoverability.
func TestPlanMatchesFTICoverage(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 120; trial++ {
		n := 1 + rng.Intn(4)
		mods := make([]place.Module, n)
		for i := range mods {
			st := rng.Intn(8)
			mods[i] = mod(i, "M", 1+rng.Intn(3), 1+rng.Intn(3), st, st+1+rng.Intn(8))
		}
		p := place.New(mods)
		aw, ah := 4+rng.Intn(4), 4+rng.Intn(4)
		for i := range mods {
			p.Pos[i] = geom.Point{X: rng.Intn(aw - 1), Y: rng.Intn(ah - 1)}
		}
		if !p.Valid() {
			continue
		}
		array := geom.Rect{X: 0, Y: 0, W: aw, H: ah}
		cov := fti.ComputeOn(p, array)
		for y := 0; y < ah; y++ {
			for x := 0; x < aw; x++ {
				_, err := Plan(p.Clone(), array, geom.Point{X: x, Y: y})
				if (err == nil) != cov.CoveredAt(x, y) {
					t.Fatalf("trial %d: cell (%d,%d) Plan err=%v but covered=%v\n%s",
						trial, x, y, err, cov.CoveredAt(x, y), p)
				}
			}
		}
	}
}

// Property: after a successful Recover, the placement is valid, no
// module of the affected set uses the faulty cell, and untouched
// modules did not move.
func TestRecoverPostconditions(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 150; trial++ {
		n := 2 + rng.Intn(3)
		mods := make([]place.Module, n)
		for i := range mods {
			st := rng.Intn(6)
			mods[i] = mod(i, "M", 1+rng.Intn(3), 1+rng.Intn(3), st, st+1+rng.Intn(6))
		}
		p := place.New(mods)
		aw, ah := 6+rng.Intn(4), 6+rng.Intn(4)
		for i := range mods {
			p.Pos[i] = geom.Point{X: rng.Intn(4), Y: rng.Intn(4)}
		}
		if !p.Valid() {
			continue
		}
		array := geom.Rect{X: 0, Y: 0, W: aw, H: ah}
		fault := geom.Point{X: rng.Intn(aw), Y: rng.Intn(ah)}
		affected := map[int]bool{}
		for _, mi := range p.ModulesAt(fault) {
			affected[mi] = true
		}
		before := p.Clone()
		rels, err := Recover(p, array, fault)
		if err != nil {
			continue // uncovered fault; tested elsewhere
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("trial %d: invalid after recover: %v", trial, err)
		}
		if len(rels) != len(affected) {
			t.Fatalf("trial %d: %d relocations for %d affected modules",
				trial, len(rels), len(affected))
		}
		for i := range mods {
			if affected[i] {
				if p.Rect(i).Contains(fault) {
					t.Fatalf("trial %d: module %d still on fault", trial, i)
				}
			} else if p.Pos[i] != before.Pos[i] || p.Rot[i] != before.Rot[i] {
				t.Fatalf("trial %d: partial reconfiguration moved unaffected module %d", trial, i)
			}
		}
		// Relocated modules stay within the array.
		for _, r := range rels {
			if !array.ContainsRect(r.To) {
				t.Fatalf("trial %d: relocation %v escapes array", trial, r)
			}
		}
	}
}
