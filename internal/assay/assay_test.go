package assay

import (
	"math/rand"
	"strings"
	"testing"
)

// chain builds dispense -> mix(with second dispense) -> output.
func smallGraph(t *testing.T) (*Graph, []int) {
	t.Helper()
	g := New("small")
	d1 := g.AddOp("D1", Dispense, "sample")
	d2 := g.AddOp("D2", Dispense, "reagent")
	m := g.AddOp("M", Mix, "")
	o := g.AddOp("O", Output, "")
	g.MustEdge(d1, m)
	g.MustEdge(d2, m)
	g.MustEdge(m, o)
	return g, []int{d1, d2, m, o}
}

func TestOpKindString(t *testing.T) {
	if Mix.String() != "mix" || Dispense.String() != "dispense" {
		t.Error("kind names wrong")
	}
	if !strings.Contains(OpKind(99).String(), "99") {
		t.Error("unknown kind not flagged")
	}
}

func TestReconfigurable(t *testing.T) {
	for _, k := range []OpKind{Mix, Dilute, Store, Detect} {
		if !k.Reconfigurable() {
			t.Errorf("%v should be reconfigurable", k)
		}
	}
	for _, k := range []OpKind{Dispense, Output} {
		if k.Reconfigurable() {
			t.Errorf("%v should not be reconfigurable", k)
		}
	}
}

func TestBuildAndQuery(t *testing.T) {
	g, ids := smallGraph(t)
	if g.NumOps() != 4 {
		t.Fatalf("NumOps = %d", g.NumOps())
	}
	m := ids[2]
	if got := g.Pred(m); len(got) != 2 {
		t.Errorf("Pred(M) = %v", got)
	}
	if got := g.Succ(m); len(got) != 1 || got[0] != ids[3] {
		t.Errorf("Succ(M) = %v", got)
	}
	if got := g.Sources(); len(got) != 2 {
		t.Errorf("Sources = %v", got)
	}
	if got := g.Sinks(); len(got) != 1 || got[0] != ids[3] {
		t.Errorf("Sinks = %v", got)
	}
	if op := g.Op(m); op.Name != "M" || op.Kind != Mix || op.ID != m {
		t.Errorf("Op(M) = %+v", op)
	}
	// Returned slices are copies.
	g.Succ(m)[0] = 999
	if g.Succ(m)[0] == 999 {
		t.Error("Succ returns aliased slice")
	}
	ops := g.Ops()
	ops[0].Name = "mutated"
	if g.Op(0).Name == "mutated" {
		t.Error("Ops returns aliased slice")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g, ids := smallGraph(t)
	if err := g.AddEdge(-1, 0); err == nil {
		t.Error("negative id accepted")
	}
	if err := g.AddEdge(0, 99); err == nil {
		t.Error("unknown id accepted")
	}
	if err := g.AddEdge(ids[2], ids[2]); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(ids[0], ids[2]); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestMustEdgePanics(t *testing.T) {
	g, _ := smallGraph(t)
	defer func() {
		if recover() == nil {
			t.Error("MustEdge did not panic")
		}
	}()
	g.MustEdge(0, 0)
}

func TestValidate(t *testing.T) {
	g, _ := smallGraph(t)
	if err := g.Validate(); err != nil {
		t.Fatalf("valid graph rejected: %v", err)
	}

	// Mix with three inputs.
	g2 := New("bad-fanin")
	a := g2.AddOp("a", Dispense, "x")
	b := g2.AddOp("b", Dispense, "y")
	c := g2.AddOp("c", Dispense, "z")
	m := g2.AddOp("m", Mix, "")
	g2.MustEdge(a, m)
	g2.MustEdge(b, m)
	g2.MustEdge(c, m)
	if err := g2.Validate(); err == nil {
		t.Error("3-input mix accepted")
	}

	// Dispense with an input.
	g3 := New("bad-dispense")
	d1 := g3.AddOp("d1", Dispense, "x")
	d2 := g3.AddOp("d2", Dispense, "y")
	g3.MustEdge(d1, d2)
	if err := g3.Validate(); err == nil {
		t.Error("dispense with input accepted")
	}

	// Orphan mix (no inputs).
	g4 := New("orphan")
	g4.AddOp("m", Mix, "")
	if err := g4.Validate(); err == nil {
		t.Error("input-less mix accepted")
	}
}

func TestTopoOrderAndCycle(t *testing.T) {
	g, ids := smallGraph(t)
	order, err := g.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	pos := make(map[int]int)
	for i, v := range order {
		pos[v] = i
	}
	for _, v := range order {
		for _, s := range g.Succ(v) {
			if pos[s] < pos[v] {
				t.Fatalf("topo order violated: %d before %d", s, v)
			}
		}
	}
	_ = ids

	// A cycle must be detected.
	gc := New("cyclic")
	a := gc.AddOp("a", Mix, "")
	b := gc.AddOp("b", Mix, "")
	gc.MustEdge(a, b)
	gc.MustEdge(b, a)
	if _, err := gc.TopoOrder(); err == nil {
		t.Error("cycle not detected")
	}
	if err := gc.Validate(); err == nil {
		t.Error("Validate missed the cycle")
	}
}

func TestDepth(t *testing.T) {
	g, ids := smallGraph(t)
	depth, err := g.Depth()
	if err != nil {
		t.Fatal(err)
	}
	want := []int{0, 0, 1, 2}
	for i, id := range ids {
		if depth[id] != want[i] {
			t.Errorf("depth[%s] = %d, want %d", g.Op(id).Name, depth[id], want[i])
		}
	}
}

func TestCriticalPathLen(t *testing.T) {
	g, _ := smallGraph(t)
	dur := func(op Op) int {
		switch op.Kind {
		case Dispense:
			return 2
		case Mix:
			return 10
		default:
			return 1
		}
	}
	got, err := g.CriticalPathLen(dur)
	if err != nil {
		t.Fatal(err)
	}
	if got != 13 { // 2 + 10 + 1
		t.Errorf("critical path = %d, want 13", got)
	}
}

func TestCountKind(t *testing.T) {
	g, _ := smallGraph(t)
	if g.CountKind(Dispense) != 2 || g.CountKind(Mix) != 1 || g.CountKind(Detect) != 0 {
		t.Error("CountKind wrong")
	}
}

// Property: for random DAGs (edges only low->high ID), TopoOrder
// succeeds and respects every edge; Depth is consistent with preds.
func TestTopoOrderRandomDAGProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(20)
		g := New("rand")
		for i := 0; i < n; i++ {
			g.AddOp("op", Mix, "")
		}
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if rng.Intn(4) == 0 {
					g.MustEdge(i, j)
				}
			}
		}
		order, err := g.TopoOrder()
		if err != nil {
			t.Fatalf("DAG rejected: %v", err)
		}
		pos := make([]int, n)
		for i, v := range order {
			pos[v] = i
		}
		for v := 0; v < n; v++ {
			for _, s := range g.Succ(v) {
				if pos[s] <= pos[v] {
					t.Fatal("edge violated in topo order")
				}
			}
		}
		depth, err := g.Depth()
		if err != nil {
			t.Fatal(err)
		}
		for v := 0; v < n; v++ {
			wantD := 0
			for _, p := range g.Pred(v) {
				if depth[p]+1 > wantD {
					wantD = depth[p] + 1
				}
			}
			if depth[v] != wantD {
				t.Fatalf("depth[%d] = %d, want %d", v, depth[v], wantD)
			}
		}
	}
}
