// Package assay models biochemical assays as sequencing graphs, the
// behavioural input to the synthesis flow (paper Section 1: "A
// behavioral model for a biochemical assay is first generated from the
// laboratory protocol for that assay").
//
// A sequencing graph is a directed acyclic graph whose nodes are
// fluidic operations (dispense, mix, dilute, store, detect, output)
// and whose edges are droplet dependencies: an edge u→v means the
// droplet produced by u is consumed by v.
package assay

import (
	"fmt"
	"sort"
)

// OpKind classifies a fluidic operation.
type OpKind int

// Operation kinds supported by the flow. Reconfigurable operations
// (Mix, Dilute, Store, Detect) occupy a module on the array;
// Dispense and Output use reservoir/IO ports on the chip boundary.
const (
	Dispense OpKind = iota // emit a droplet from an on-chip reservoir
	Mix                    // merge two droplets and mix to homogeneity
	Dilute                 // mix sample with buffer and split
	Store                  // hold a droplet for a period of time
	Detect                 // optical/electrical readout of a droplet
	Output                 // move a droplet to a waste/collection port
)

var kindNames = [...]string{"dispense", "mix", "dilute", "store", "detect", "output"}

// String returns the lower-case kind name.
func (k OpKind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("opkind(%d)", int(k))
	}
	return kindNames[k]
}

// Reconfigurable reports whether the operation executes on a virtual
// module of array cells (true) or on a boundary port (false).
func (k OpKind) Reconfigurable() bool {
	switch k {
	case Mix, Dilute, Store, Detect:
		return true
	}
	return false
}

// maxInputs returns the maximum in-degree allowed for the kind.
func (k OpKind) maxInputs() int {
	switch k {
	case Dispense:
		return 0
	case Mix, Dilute:
		return 2
	default:
		return 1
	}
}

// Op is a node of the sequencing graph.
type Op struct {
	ID    int    // index within the graph, assigned by AddOp
	Name  string // human-readable label, e.g. "M1" or "DisposeSample"
	Kind  OpKind
	Fluid string // reagent/sample name for dispense ops; informational otherwise
}

// Graph is a sequencing graph under construction or analysis.
// The zero value is an empty graph ready for use.
type Graph struct {
	Name string
	ops  []Op
	succ [][]int
	pred [][]int
}

// New returns an empty sequencing graph with the given name.
func New(name string) *Graph { return &Graph{Name: name} }

// AddOp appends an operation and returns its ID.
func (g *Graph) AddOp(name string, kind OpKind, fluid string) int {
	id := len(g.ops)
	g.ops = append(g.ops, Op{ID: id, Name: name, Kind: kind, Fluid: fluid})
	g.succ = append(g.succ, nil)
	g.pred = append(g.pred, nil)
	return id
}

// AddEdge records that the droplet produced by from is consumed by to.
// It returns an error for unknown IDs, self-loops or duplicate edges.
func (g *Graph) AddEdge(from, to int) error {
	if from < 0 || from >= len(g.ops) || to < 0 || to >= len(g.ops) {
		return fmt.Errorf("assay: edge %d->%d references unknown op", from, to)
	}
	if from == to {
		return fmt.Errorf("assay: self-loop on op %d (%s)", from, g.ops[from].Name)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("assay: duplicate edge %d->%d", from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// MustEdge is AddEdge that panics on error; for hand-built graphs in
// case studies and tests.
func (g *Graph) MustEdge(from, to int) {
	if err := g.AddEdge(from, to); err != nil {
		panic(err)
	}
}

// NumOps returns the number of operations.
func (g *Graph) NumOps() int { return len(g.ops) }

// Op returns the operation with the given ID. It panics on an unknown
// ID, which is always a caller bug.
func (g *Graph) Op(id int) Op {
	return g.ops[id]
}

// Ops returns all operations in ID order. The returned slice is a
// copy.
func (g *Graph) Ops() []Op {
	out := make([]Op, len(g.ops))
	copy(out, g.ops)
	return out
}

// Succ returns the successor IDs of op id (copy).
func (g *Graph) Succ(id int) []int { return append([]int(nil), g.succ[id]...) }

// Pred returns the predecessor IDs of op id (copy).
func (g *Graph) Pred(id int) []int { return append([]int(nil), g.pred[id]...) }

// Sources returns ops with no predecessors, in ID order.
func (g *Graph) Sources() []int {
	var out []int
	for i := range g.ops {
		if len(g.pred[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Sinks returns ops with no successors, in ID order.
func (g *Graph) Sinks() []int {
	var out []int
	for i := range g.ops {
		if len(g.succ[i]) == 0 {
			out = append(out, i)
		}
	}
	return out
}

// Validate checks structural well-formedness: acyclicity, in-degree
// limits per kind (a mix consumes at most two droplets, a dispense
// none), and that every non-dispense operation has at least one input.
func (g *Graph) Validate() error {
	if _, err := g.TopoOrder(); err != nil {
		return err
	}
	for i, op := range g.ops {
		in := len(g.pred[i])
		if maxIn := op.Kind.maxInputs(); in > maxIn {
			return fmt.Errorf("assay: op %s (%s) has %d inputs, max %d", op.Name, op.Kind, in, maxIn)
		}
		if op.Kind != Dispense && in == 0 {
			return fmt.Errorf("assay: op %s (%s) has no input droplet", op.Name, op.Kind)
		}
	}
	return nil
}

// TopoOrder returns a topological ordering of the operation IDs
// (Kahn's algorithm, smallest-ID-first for determinism) or an error if
// the graph has a cycle.
func (g *Graph) TopoOrder() ([]int, error) {
	n := len(g.ops)
	indeg := make([]int, n)
	for i := range g.ops {
		indeg[i] = len(g.pred[i])
	}
	ready := make([]int, 0, n)
	for i := 0; i < n; i++ {
		if indeg[i] == 0 {
			ready = append(ready, i)
		}
	}
	order := make([]int, 0, n)
	for len(ready) > 0 {
		sort.Ints(ready)
		v := ready[0]
		ready = ready[1:]
		order = append(order, v)
		for _, s := range g.succ[v] {
			indeg[s]--
			if indeg[s] == 0 {
				ready = append(ready, s)
			}
		}
	}
	if len(order) != n {
		return nil, fmt.Errorf("assay: graph %q contains a cycle", g.Name)
	}
	return order, nil
}

// Depth returns, for every op, the length (in edges) of the longest
// path from any source to that op. Useful for drawing levels of the
// sequencing graph.
func (g *Graph) Depth() ([]int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	depth := make([]int, len(g.ops))
	for _, v := range order {
		for _, p := range g.pred[v] {
			if depth[p]+1 > depth[v] {
				depth[v] = depth[p] + 1
			}
		}
	}
	return depth, nil
}

// CriticalPathLen returns the longest source-to-sink path length
// weighted by the supplied per-op durations. This is the lower bound
// on assay completion time regardless of resources.
func (g *Graph) CriticalPathLen(duration func(Op) int) (int, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	finish := make([]int, len(g.ops))
	best := 0
	for _, v := range order {
		start := 0
		for _, p := range g.pred[v] {
			if finish[p] > start {
				start = finish[p]
			}
		}
		finish[v] = start + duration(g.ops[v])
		if finish[v] > best {
			best = finish[v]
		}
	}
	return best, nil
}

// CountKind returns the number of operations of the given kind.
func (g *Graph) CountKind(k OpKind) int {
	n := 0
	for _, op := range g.ops {
		if op.Kind == k {
			n++
		}
	}
	return n
}
