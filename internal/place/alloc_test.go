package place

import (
	"testing"

	"dmfb/internal/geom"
	"dmfb/internal/grid"
)

// TestAppendActiveDuringMatchesActiveDuring cross-checks the
// allocation-free variant against the allocating one.
func TestAppendActiveDuringMatchesActiveDuring(t *testing.T) {
	mods := []Module{
		{ID: 0, Name: "A", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 0, End: 5}},
		{ID: 1, Name: "B", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 3, End: 8}},
		{ID: 2, Name: "C", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 6, End: 9}},
		{ID: 3, Name: "D", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 0, End: 9}},
	}
	p := New(mods)
	iv := geom.Interval{Start: 2, End: 7}
	for _, exclude := range [][]int{nil, {1}, {0, 3}, {0, 1, 2, 3}} {
		want := p.ActiveDuring(iv, exclude...)
		got := p.AppendActiveDuring(make([]int, 0, len(mods)), iv, exclude...)
		if len(got) != len(want) {
			t.Fatalf("exclude %v: got %v, want %v", exclude, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("exclude %v: got %v, want %v", exclude, got, want)
			}
		}
	}
}

// TestAppendActiveDuringZeroAlloc asserts the inner-loop variant does
// not allocate when the destination has capacity — the per-call
// map[int]bool of the old implementation is gone.
func TestAppendActiveDuringZeroAlloc(t *testing.T) {
	mods := make([]Module, 12)
	for i := range mods {
		mods[i] = Module{ID: i, Size: geom.Size{W: 2, H: 2},
			Span: geom.Interval{Start: i, End: i + 4}}
	}
	p := New(mods)
	dst := make([]int, 0, len(mods))
	iv := geom.Interval{Start: 3, End: 9}

	allocs := testing.AllocsPerRun(100, func() {
		dst = p.AppendActiveDuring(dst[:0], iv, 2, 7)
	})
	if allocs != 0 {
		t.Errorf("AppendActiveDuring allocated %.1f times per call, want 0", allocs)
	}
}

// TestFillOccupancyDuringZeroAlloc asserts the grid-reusing occupancy
// fill is allocation-free, and panics on a size mismatch.
func TestFillOccupancyDuringZeroAlloc(t *testing.T) {
	mods := make([]Module, 8)
	for i := range mods {
		mods[i] = Module{ID: i, Size: geom.Size{W: 2, H: 2},
			Span: geom.Interval{Start: i, End: i + 3}}
	}
	p := New(mods)
	for i := range mods {
		p.Pos[i] = geom.Point{X: (i % 4) * 2, Y: (i / 4) * 2}
	}
	array := p.BoundingBox()
	g := grid.New(array.W, array.H)

	allocs := testing.AllocsPerRun(100, func() {
		p.FillOccupancyDuring(g, array, geom.Interval{Start: 2, End: 6}, 3)
	})
	if allocs != 0 {
		t.Errorf("FillOccupancyDuring allocated %.1f times per call, want 0", allocs)
	}

	func() {
		defer func() {
			if recover() == nil {
				t.Errorf("FillOccupancyDuring accepted a mismatched grid")
			}
		}()
		p.FillOccupancyDuring(grid.New(1, 1), array, geom.Interval{Start: 0, End: 1})
	}()
}

// TestStringGolden pins the exact String rendering; the
// strings.Builder rewrite must stay byte-identical to the historical
// string-concatenation output.
func TestStringGolden(t *testing.T) {
	mods := []Module{
		{ID: 0, Name: "M2", Size: geom.Size{W: 3, H: 2}, Span: geom.Interval{Start: 4, End: 9}},
		{ID: 1, Name: "M1", Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 0, End: 5}},
		{ID: 2, Name: "Mixer3", Size: geom.Size{W: 2, H: 4}, Span: geom.Interval{Start: 4, End: 12}},
	}
	p := New(mods)
	p.Pos[0] = geom.Point{X: 2, Y: 0}
	p.Pos[1] = geom.Point{X: 0, Y: 0}
	p.Pos[2] = geom.Point{X: 5, Y: 1}
	p.Rot[2] = true

	want := "placement: array 9x3 = 27 cells\n" +
		"  M1   [0,0 2x2] [0,5)\n" +
		"  M2   [2,0 3x2] [4,9)\n" +
		"  Mixer3 [5,1 4x2] [4,12)\n"
	if got := p.String(); got != want {
		t.Errorf("String() diverged:\ngot:\n%q\nwant:\n%q", got, want)
	}
}

func BenchmarkActiveDuring(b *testing.B) {
	mods := make([]Module, 16)
	for i := range mods {
		mods[i] = Module{ID: i, Size: geom.Size{W: 2, H: 2},
			Span: geom.Interval{Start: i, End: i + 5}}
	}
	p := New(mods)
	iv := geom.Interval{Start: 4, End: 11}

	b.Run("Alloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = p.ActiveDuring(iv, 3, 9)
		}
	})
	b.Run("Append", func(b *testing.B) {
		b.ReportAllocs()
		dst := make([]int, 0, len(mods))
		for i := 0; i < b.N; i++ {
			dst = p.AppendActiveDuring(dst[:0], iv, 3, 9)
		}
	})
}
