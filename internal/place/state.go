package place

import (
	"fmt"

	"dmfb/internal/geom"
)

// ConflictAdjacency returns, for each module, the indices of the
// modules whose time spans overlap its own — the neighbours it must
// never share cells with. This is ConflictPairs in adjacency-list
// form, the shape the incremental cost kernel consumes.
func ConflictAdjacency(mods []Module) [][]int {
	adj := make([][]int, len(mods))
	for _, pr := range ConflictPairs(mods) {
		i, j := pr[0], pr[1]
		adj[i] = append(adj[i], j)
		adj[j] = append(adj[j], i)
	}
	return adj
}

// State wraps a Placement with incrementally maintained cost
// quantities, so a simulated-annealing move can be priced in O(degree)
// instead of rescanning every module and conflict pair:
//
//   - the forbidden-overlap cell count (Placement.OverlapCells) is
//     kept as a running sum, adjusted per move over the moved module's
//     conflict adjacency list;
//   - the bounding box (Placement.BoundingBox) is maintained from
//     per-coordinate occupancy counts of module edges, so boundary
//     shrinks are found by a short scan instead of a full pass.
//
// All bookkeeping is integer-exact: after any sequence of MoveModule
// calls, Overlap and BoundingBox equal the from-scratch values bit for
// bit (the differential tests assert this over long random move
// sequences). Mutate the placement only through MoveModule; positions
// must stay non-negative.
type State struct {
	P   *Placement
	adj [][]int // conflict adjacency lists, index-aligned with modules

	overlap int

	// Edge occupancy counts: loX[v] counts modules whose rectangle
	// starts at x = v, hiX[v] counts modules whose exclusive right
	// edge is at x = v; likewise for y. The bounding box is the span
	// between the extreme non-zero counts.
	loX, hiX, loY, hiY []int
	bbox               geom.Rect
}

// NewState builds the incremental view of p, deriving every cached
// quantity from scratch. It panics if any module sits at a negative
// coordinate (the annealing placers clamp positions to the core area,
// so a negative position is a caller bug).
func NewState(p *Placement) *State {
	s := &State{P: p, adj: ConflictAdjacency(p.Modules)}
	maxX, maxY := 1, 1
	for i := range p.Modules {
		r := p.Rect(i)
		if r.X < 0 || r.Y < 0 {
			panic(fmt.Sprintf("place: module %s at negative position %v",
				p.Modules[i].Name, r.Origin()))
		}
		maxX = max(maxX, r.MaxX())
		maxY = max(maxY, r.MaxY())
	}
	s.loX = make([]int, maxX+1)
	s.hiX = make([]int, maxX+1)
	s.loY = make([]int, maxY+1)
	s.hiY = make([]int, maxY+1)
	for i := range p.Modules {
		r := p.Rect(i)
		s.loX[r.X]++
		s.hiX[r.MaxX()]++
		s.loY[r.Y]++
		s.hiY[r.MaxY()]++
	}
	s.overlap = p.OverlapCells()
	s.bbox = p.BoundingBox()
	return s
}

// Overlap returns the cached forbidden-overlap cell count; it equals
// P.OverlapCells().
func (s *State) Overlap() int { return s.overlap }

// BoundingBox returns the cached bounding box; it equals
// P.BoundingBox().
func (s *State) BoundingBox() geom.Rect { return s.bbox }

// ArrayCells returns the cached bounding-array cell count; it equals
// P.ArrayCells().
func (s *State) ArrayCells() int { return s.bbox.Cells() }

// Adjacent returns module i's conflict adjacency list (do not mutate).
func (s *State) Adjacent(i int) []int { return s.adj[i] }

// MoveModule relocates module i to pos with orientation rot, updating
// the cached overlap count and bounding box in O(degree + boundary
// scan). Calling it again with the previous position and orientation
// reverts the move exactly — the incremental quantities are integers,
// so there is no drift.
func (s *State) MoveModule(i int, pos geom.Point, rot bool) {
	p := s.P
	old := p.Rect(i)
	for _, j := range s.adj[i] {
		s.overlap -= old.Intersect(p.Rect(j)).Cells()
	}
	s.dropEdges(old)

	p.Pos[i] = pos
	p.Rot[i] = rot
	now := p.Rect(i)
	if now.X < 0 || now.Y < 0 {
		panic(fmt.Sprintf("place: module %s moved to negative position %v",
			p.Modules[i].Name, pos))
	}
	s.addEdges(now)
	for _, j := range s.adj[i] {
		s.overlap += now.Intersect(p.Rect(j)).Cells()
	}
	s.refitBBox(old, now)
}

// dropEdges removes a rectangle's edge contributions.
func (s *State) dropEdges(r geom.Rect) {
	s.loX[r.X]--
	s.hiX[r.MaxX()]--
	s.loY[r.Y]--
	s.hiY[r.MaxY()]--
}

// addEdges records a rectangle's edge contributions, growing the
// coordinate count arrays when the rectangle extends past them.
func (s *State) addEdges(r geom.Rect) {
	if n := r.MaxX() + 1; n > len(s.loX) {
		s.loX = append(s.loX, make([]int, n-len(s.loX))...)
		s.hiX = append(s.hiX, make([]int, n-len(s.hiX))...)
	}
	if n := r.MaxY() + 1; n > len(s.loY) {
		s.loY = append(s.loY, make([]int, n-len(s.loY))...)
		s.hiY = append(s.hiY, make([]int, n-len(s.hiY))...)
	}
	s.loX[r.X]++
	s.hiX[r.MaxX()]++
	s.loY[r.Y]++
	s.hiY[r.MaxY()]++
}

// refitBBox re-derives the bounding box after one rectangle changed
// from old to now. Extremes that moved outward are adopted directly;
// extremes that may have retreated are rediscovered by scanning the
// edge counts inward from the previous boundary. Every scanned
// coordinate is backed by at least one module edge, so the scans
// terminate inside the array.
func (s *State) refitBBox(old, now geom.Rect) {
	b := s.bbox
	// Outward growth.
	if now.X < b.X {
		b = geom.Rect{X: now.X, Y: b.Y, W: b.MaxX() - now.X, H: b.H}
	}
	if now.Y < b.Y {
		b = geom.Rect{X: b.X, Y: now.Y, W: b.W, H: b.MaxY() - now.Y}
	}
	if now.MaxX() > b.MaxX() {
		b.W = now.MaxX() - b.X
	}
	if now.MaxY() > b.MaxY() {
		b.H = now.MaxY() - b.Y
	}
	// Inward shrink: only possible when the old rectangle defined the
	// boundary and no other module still holds it.
	if old.X == b.X && s.loX[b.X] == 0 {
		v := b.X
		for s.loX[v] == 0 {
			v++
		}
		b = geom.Rect{X: v, Y: b.Y, W: b.MaxX() - v, H: b.H}
	}
	if old.Y == b.Y && s.loY[b.Y] == 0 {
		v := b.Y
		for s.loY[v] == 0 {
			v++
		}
		b = geom.Rect{X: b.X, Y: v, W: b.W, H: b.MaxY() - v}
	}
	if old.MaxX() == b.MaxX() && s.hiX[b.MaxX()] == 0 {
		v := b.MaxX()
		for s.hiX[v] == 0 {
			v--
		}
		b.W = v - b.X
	}
	if old.MaxY() == b.MaxY() && s.hiY[b.MaxY()] == 0 {
		v := b.MaxY()
		for s.hiY[v] == 0 {
			v--
		}
		b.H = v - b.Y
	}
	s.bbox = b
}
