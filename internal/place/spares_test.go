package place

import (
	"math/rand"
	"testing"

	"dmfb/internal/geom"
)

// densePlacement packs n always-on square modules in a grid, leaving
// no free interior space — the hardest case for a transform that must
// never create overlaps.
func densePlacement(t *testing.T, n, side int) *Placement {
	t.Helper()
	mods := make([]Module, n)
	for i := range mods {
		mods[i] = Module{ID: i, Size: geom.Size{W: side, H: side}, Span: geom.Interval{Start: 0, End: 10}}
	}
	p := New(mods)
	cols := 3
	for i := range mods {
		p.Pos[i] = geom.Point{X: (i % cols) * side, Y: (i / cols) * side}
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestInsertSparesPreservesValidity(t *testing.T) {
	p := densePlacement(t, 9, 2)
	for cols := 0; cols <= 4; cols++ {
		for rows := 0; rows <= 4; rows++ {
			c := InsertSpares(p, cols, rows)
			if err := c.Validate(); err != nil {
				t.Fatalf("cols=%d rows=%d: invalid after spares: %v", cols, rows, err)
			}
			bb, orig := c.BoundingBox(), p.BoundingBox()
			if bb.W > orig.W+cols || bb.H > orig.H+rows {
				t.Fatalf("cols=%d rows=%d: bounding box %v grew past %v plus the budget", cols, rows, bb, orig)
			}
			if cols > 0 && rows > 0 && bb.W <= orig.W && bb.H <= orig.H {
				t.Fatalf("cols=%d rows=%d: bounding box %v did not grow from %v", cols, rows, bb, orig)
			}
		}
	}
}

func TestInsertSparesLeavesInputUntouched(t *testing.T) {
	p := densePlacement(t, 4, 2)
	before := append([]geom.Point(nil), p.Pos...)
	InsertSpares(p, 2, 2)
	for i := range before {
		if p.Pos[i] != before[i] {
			t.Fatalf("module %d moved in the input placement", i)
		}
	}
}

func TestInsertSparesOpensSpareCells(t *testing.T) {
	p := densePlacement(t, 9, 2)
	c := InsertSpares(p, 1, 1)
	free := c.BoundingBox().Cells()
	for _, m := range c.Modules {
		free -= m.Size.W * m.Size.H
	}
	orig := p.BoundingBox().Cells()
	used := 0
	for _, m := range p.Modules {
		used += m.Size.W * m.Size.H
	}
	if free <= orig-used {
		t.Errorf("spare insertion opened no extra cells: %d free vs %d before", free, orig-used)
	}
}

func TestInsertSparesRandomizedNeverOverlaps(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		mods := make([]Module, n)
		for i := range mods {
			mods[i] = Module{ID: i,
				Size: geom.Size{W: 1 + rng.Intn(4), H: 1 + rng.Intn(4)},
				Span: geom.Interval{Start: 0, End: 10}}
		}
		p := New(mods)
		// Place by stacking along x so any sizes are valid.
		x := 0
		for i := range mods {
			p.Pos[i] = geom.Point{X: x, Y: rng.Intn(3)}
			x += mods[i].Size.W
		}
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
		cols, rows := rng.Intn(4), rng.Intn(4)
		if c := InsertSpares(p, cols, rows); c.Validate() != nil {
			t.Fatalf("trial %d cols=%d rows=%d: %v", trial, cols, rows, c.Validate())
		}
	}
}

func TestSpareSplit(t *testing.T) {
	cases := []struct{ budget, cols, rows int }{
		{-1, 0, 0}, {0, 0, 0}, {1, 1, 0}, {2, 1, 1}, {3, 2, 1}, {4, 2, 2}, {5, 3, 2},
	}
	for _, c := range cases {
		if cols, rows := SpareSplit(c.budget); cols != c.cols || rows != c.rows {
			t.Errorf("SpareSplit(%d) = %d,%d, want %d,%d", c.budget, cols, rows, c.cols, c.rows)
		}
	}
}
