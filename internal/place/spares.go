package place

// InsertSpares returns a copy of p with cols spare columns and rows
// spare rows threaded through the interior of its bounding box — the
// space-redundancy transform of the yield companion paper: fabricate
// a slightly larger array whose extra cells sit between the modules,
// so every module has a local relocation target when a fabrication
// defect lands on it.
//
// Cut lines are spread evenly across the bounding box; at each cut,
// every module whose origin lies at or beyond it shifts away by one
// cell, opening a free line. A module straddling a cut keeps its
// position (modules are never split), so the spare line threads
// around it — interstitial where possible, edge slack otherwise. The
// transform is pure arithmetic: deterministic, never invalidates a
// placement (module pairs only move apart or stay put), and preserves
// module order, sizes and spans, so schedule bindings are untouched.
func InsertSpares(p *Placement, cols, rows int) *Placement {
	c := p.Clone()
	bb := p.BoundingBox()
	if cols > 0 && bb.W > 1 {
		// Highest cut first: shifts at a lower cut then move the
		// already-shifted modules again, compounding correctly.
		for i := cols; i >= 1; i-- {
			cut := bb.X + clampInterior(i*bb.W/(cols+1), bb.W)
			for m := range c.Pos {
				if c.Pos[m].X >= cut {
					c.Pos[m].X++
				}
			}
		}
	}
	if rows > 0 && bb.H > 1 {
		for i := rows; i >= 1; i-- {
			cut := bb.Y + clampInterior(i*bb.H/(rows+1), bb.H)
			for m := range c.Pos {
				if c.Pos[m].Y >= cut {
					c.Pos[m].Y++
				}
			}
		}
	}
	return c
}

// clampInterior clamps a cut offset to the interior (0, extent) so a
// cut always lands between two cells of the original box.
func clampInterior(off, extent int) int {
	if off < 1 {
		return 1
	}
	if off > extent-1 {
		return extent - 1
	}
	return off
}

// SpareSplit splits a single spare-line budget between columns and
// rows, columns first — the convention every layer (campaign spec,
// compile endpoint, CLI flags) uses so one knob means the same
// placement everywhere.
func SpareSplit(budget int) (cols, rows int) {
	if budget <= 0 {
		return 0, 0
	}
	return (budget + 1) / 2, budget / 2
}
