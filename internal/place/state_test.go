package place

import (
	"math/rand"
	"testing"

	"dmfb/internal/geom"
)

func randomModules(rng *rand.Rand, n int) []Module {
	mods := make([]Module, n)
	for i := range mods {
		start := rng.Intn(20)
		mods[i] = Module{
			ID:   i,
			Name: "M",
			Size: geom.Size{W: 1 + rng.Intn(5), H: 1 + rng.Intn(5)},
			Span: geom.Interval{Start: start, End: start + 1 + rng.Intn(10)},
		}
	}
	return mods
}

// TestStateDifferential drives State through long random move
// sequences and asserts, at every step, that the incrementally
// maintained overlap count and bounding box exactly equal the
// from-scratch values.
func TestStateDifferential(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const rounds = 20
	const movesPerRound = 600 // 20 × 600 = 12000 checked moves

	for round := 0; round < rounds; round++ {
		mods := randomModules(rng, 3+rng.Intn(8))
		p := New(mods)
		for i := range mods {
			p.Pos[i] = geom.Point{X: rng.Intn(12), Y: rng.Intn(12)}
			p.Rot[i] = rng.Intn(2) == 0
		}
		s := NewState(p)

		for mv := 0; mv < movesPerRound; mv++ {
			i := rng.Intn(len(mods))
			s.MoveModule(i, geom.Point{X: rng.Intn(14), Y: rng.Intn(14)}, rng.Intn(2) == 0)

			if got, want := s.Overlap(), p.OverlapCells(); got != want {
				t.Fatalf("round %d move %d: overlap = %d, scratch %d", round, mv, got, want)
			}
			if got, want := s.BoundingBox(), p.BoundingBox(); got != want {
				t.Fatalf("round %d move %d: bbox = %v, scratch %v", round, mv, got, want)
			}
			if got, want := s.ArrayCells(), p.ArrayCells(); got != want {
				t.Fatalf("round %d move %d: cells = %d, scratch %d", round, mv, got, want)
			}
		}
	}
}

// TestStateMoveRevert checks that re-issuing a move with the previous
// position and orientation restores the incremental quantities exactly.
func TestStateMoveRevert(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	mods := randomModules(rng, 6)
	p := New(mods)
	for i := range mods {
		p.Pos[i] = geom.Point{X: rng.Intn(10), Y: rng.Intn(10)}
	}
	s := NewState(p)

	for mv := 0; mv < 2000; mv++ {
		i := rng.Intn(len(mods))
		oldPos, oldRot := p.Pos[i], p.Rot[i]
		wantOverlap, wantBB := s.Overlap(), s.BoundingBox()

		s.MoveModule(i, geom.Point{X: rng.Intn(14), Y: rng.Intn(14)}, rng.Intn(2) == 0)
		s.MoveModule(i, oldPos, oldRot)

		if s.Overlap() != wantOverlap || s.BoundingBox() != wantBB {
			t.Fatalf("move %d: revert drifted: overlap %d→%d bbox %v→%v",
				mv, wantOverlap, s.Overlap(), wantBB, s.BoundingBox())
		}
	}
}

func TestConflictAdjacency(t *testing.T) {
	mods := []Module{
		{ID: 0, Span: geom.Interval{Start: 0, End: 5}},
		{ID: 1, Span: geom.Interval{Start: 3, End: 8}},
		{ID: 2, Span: geom.Interval{Start: 6, End: 9}},
	}
	adj := ConflictAdjacency(mods)
	want := [][]int{{1}, {0, 2}, {1}}
	for i := range want {
		if len(adj[i]) != len(want[i]) {
			t.Fatalf("adj[%d] = %v, want %v", i, adj[i], want[i])
		}
		for k := range want[i] {
			if adj[i][k] != want[i][k] {
				t.Fatalf("adj[%d] = %v, want %v", i, adj[i], want[i])
			}
		}
	}
}

func TestNewStatePanicsOnNegative(t *testing.T) {
	mods := randomModules(rand.New(rand.NewSource(1)), 2)
	p := New(mods)
	p.Pos[1] = geom.Point{X: -1, Y: 0}
	defer func() {
		if recover() == nil {
			t.Fatalf("NewState accepted a negative position")
		}
	}()
	NewState(p)
}
