package place

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dmfb/internal/geom"
	"dmfb/internal/pcr"
)

func twoModules() []Module {
	return []Module{
		{ID: 0, Name: "A", Size: geom.Size{W: 2, H: 3}, Span: geom.Interval{Start: 0, End: 5}},
		{ID: 1, Name: "B", Size: geom.Size{W: 3, H: 2}, Span: geom.Interval{Start: 3, End: 8}},
	}
}

func TestConflictPairs(t *testing.T) {
	mods := []Module{
		{ID: 0, Span: geom.Interval{Start: 0, End: 5}},
		{ID: 1, Span: geom.Interval{Start: 5, End: 10}}, // back-to-back: no conflict
		{ID: 2, Span: geom.Interval{Start: 4, End: 6}},  // conflicts both
	}
	got := ConflictPairs(mods)
	want := [][2]int{{0, 2}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("ConflictPairs = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ConflictPairs = %v, want %v", got, want)
		}
	}
}

func TestRectAndRotation(t *testing.T) {
	p := New(twoModules())
	p.Pos[0] = geom.Point{X: 1, Y: 2}
	if got := p.Rect(0); got != (geom.Rect{X: 1, Y: 2, W: 2, H: 3}) {
		t.Errorf("Rect = %v", got)
	}
	p.Rot[0] = true
	if got := p.Rect(0); got != (geom.Rect{X: 1, Y: 2, W: 3, H: 2}) {
		t.Errorf("rotated Rect = %v", got)
	}
	if p.Size(0) != (geom.Size{W: 3, H: 2}) {
		t.Errorf("Size after rotation = %v", p.Size(0))
	}
}

func TestOverlapAndValidity(t *testing.T) {
	p := New(twoModules())
	// Both at origin: spans [0,5) and [3,8) conflict; footprints 2x3
	// and 3x2 overlap in a 2x2 region.
	if got := p.OverlapCells(); got != 4 {
		t.Errorf("OverlapCells = %d, want 4", got)
	}
	if p.Valid() {
		t.Error("overlapping placement reported valid")
	}
	if err := p.Validate(); err == nil || !strings.Contains(err.Error(), "overlap") {
		t.Errorf("Validate = %v", err)
	}
	// Separate them.
	p.Pos[1] = geom.Point{X: 2, Y: 0}
	if !p.Valid() {
		t.Errorf("separated placement invalid: %v", p.Validate())
	}
	// Same cells, disjoint spans: valid (dynamic reconfiguration).
	mods := twoModules()
	mods[1].Span = geom.Interval{Start: 5, End: 8}
	q := New(mods)
	if !q.Valid() {
		t.Error("time-disjoint overlap should be allowed")
	}
}

func TestBoundingBoxAndArea(t *testing.T) {
	p := New(twoModules())
	p.Pos[0] = geom.Point{X: 0, Y: 0} // 2x3
	p.Pos[1] = geom.Point{X: 2, Y: 0} // 3x2
	bb := p.BoundingBox()
	if bb != (geom.Rect{X: 0, Y: 0, W: 5, H: 3}) {
		t.Errorf("BoundingBox = %v", bb)
	}
	if p.ArrayCells() != 15 {
		t.Errorf("ArrayCells = %d", p.ArrayCells())
	}
	if !p.FitsIn(5, 3) || p.FitsIn(4, 3) {
		t.Error("FitsIn wrong")
	}
}

func TestNormalize(t *testing.T) {
	p := New(twoModules())
	p.Pos[0] = geom.Point{X: 3, Y: 4}
	p.Pos[1] = geom.Point{X: 6, Y: 5}
	p.Normalize()
	bb := p.BoundingBox()
	if bb.X != 0 || bb.Y != 0 {
		t.Errorf("Normalize left bbox at %v", bb)
	}
	// Relative geometry preserved.
	if p.Pos[1].X-p.Pos[0].X != 3 || p.Pos[1].Y-p.Pos[0].Y != 1 {
		t.Error("Normalize broke relative positions")
	}
}

func TestActiveDuringAndOccupancy(t *testing.T) {
	p := New(twoModules())
	p.Pos[1] = geom.Point{X: 2, Y: 0}
	if got := p.ActiveDuring(geom.Interval{Start: 0, End: 1}); len(got) != 1 || got[0] != 0 {
		t.Errorf("ActiveDuring[0,1) = %v", got)
	}
	if got := p.ActiveDuring(geom.Interval{Start: 4, End: 5}); len(got) != 2 {
		t.Errorf("ActiveDuring[4,5) = %v", got)
	}
	if got := p.ActiveDuring(geom.Interval{Start: 4, End: 5}, 0); len(got) != 1 || got[0] != 1 {
		t.Errorf("ActiveDuring exclude = %v", got)
	}
	g := p.OccupancyDuring(geom.Rect{X: 0, Y: 0, W: 5, H: 3}, geom.Interval{Start: 4, End: 5})
	if g.CountOccupied() != 2*3+3*2 {
		t.Errorf("occupied = %d", g.CountOccupied())
	}
	// Excluding module 0 leaves only B's 6 cells.
	g = p.OccupancyDuring(geom.Rect{X: 0, Y: 0, W: 5, H: 3}, geom.Interval{Start: 4, End: 5}, 0)
	if g.CountOccupied() != 6 {
		t.Errorf("occupied with exclusion = %d", g.CountOccupied())
	}
	// Array offset translates coordinates.
	g = p.OccupancyDuring(geom.Rect{X: 2, Y: 0, W: 3, H: 2}, geom.Interval{Start: 4, End: 5}, 0)
	if g.CountOccupied() != 6 {
		t.Errorf("translated occupancy = %d", g.CountOccupied())
	}
	if !g.Occupied(geom.Point{X: 0, Y: 0}) {
		t.Error("translation wrong")
	}
}

func TestModulesAt(t *testing.T) {
	mods := twoModules()
	mods[1].Span = geom.Interval{Start: 5, End: 8} // allow stacking
	p := New(mods)
	got := p.ModulesAt(geom.Point{X: 0, Y: 0})
	if len(got) != 2 {
		t.Errorf("ModulesAt origin = %v", got)
	}
	if got := p.ModulesAt(geom.Point{X: 2, Y: 2}); len(got) != 0 {
		t.Errorf("ModulesAt(2,2) = %v", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	p := New(twoModules())
	c := p.Clone()
	c.Pos[0] = geom.Point{X: 9, Y: 9}
	c.Rot[1] = true
	if p.Pos[0] == c.Pos[0] || p.Rot[1] {
		t.Error("Clone shares state")
	}
}

func TestFromSchedulePCR(t *testing.T) {
	s := pcr.MustSchedule()
	mods := FromSchedule(s)
	if len(mods) != 7 {
		t.Fatalf("modules = %d", len(mods))
	}
	totalCells := 0
	for i, m := range mods {
		if m.ID != i {
			t.Errorf("ID %d at index %d", m.ID, i)
		}
		if m.Span.Empty() || !m.Size.Valid() {
			t.Errorf("module %s malformed: %v %v", m.Name, m.Size, m.Span)
		}
		totalCells += m.Size.Cells()
	}
	if totalCells != 130 {
		t.Errorf("total module cells = %d, want 130 (Table 1)", totalCells)
	}
	// The PCR conflict structure: M7 (last) conflicts with nothing.
	pairs := ConflictPairs(mods)
	for _, pr := range pairs {
		if mods[pr[0]].Name == "M7" || mods[pr[1]].Name == "M7" {
			t.Errorf("M7 should be conflict-free, got pair %v", pr)
		}
	}
	if len(pairs) == 0 {
		t.Error("PCR should have conflicting modules")
	}
}

// Property: OverlapCells is exactly the number of (cell, conflicting
// pair) incidences counted by brute force.
func TestOverlapCellsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(5)
		mods := make([]Module, n)
		for i := range mods {
			st := rng.Intn(10)
			mods[i] = Module{
				ID:   i,
				Size: geom.Size{W: 1 + rng.Intn(4), H: 1 + rng.Intn(4)},
				Span: geom.Interval{Start: st, End: st + 1 + rng.Intn(8)},
			}
		}
		p := New(mods)
		for i := range mods {
			p.Pos[i] = geom.Point{X: rng.Intn(8), Y: rng.Intn(8)}
			p.Rot[i] = rng.Intn(2) == 0
		}
		want := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if !mods[i].Span.Overlaps(mods[j].Span) {
					continue
				}
				for _, pt := range p.Rect(i).Points() {
					if p.Rect(j).Contains(pt) {
						want++
					}
				}
			}
		}
		if got := p.OverlapCells(); got != want {
			t.Fatalf("OverlapCells = %d, want %d", got, want)
		}
		if p.Valid() != (want == 0) || (p.Validate() == nil) != (want == 0) {
			t.Fatal("Valid/Validate inconsistent with overlap count")
		}
	}
}

// Property (testing/quick): rotating a module twice is the identity,
// and rotation preserves cell count.
func TestRotationInvolutionQuick(t *testing.T) {
	f := func(w, h uint8, x, y int8, rot bool) bool {
		mods := []Module{{ID: 0, Name: "A",
			Size: geom.Size{W: int(w%6) + 1, H: int(h%6) + 1},
			Span: geom.Interval{Start: 0, End: 5}}}
		p := New(mods)
		p.Pos[0] = geom.Point{X: int(x % 16), Y: int(y % 16)}
		p.Rot[0] = rot
		before := p.Rect(0)
		p.Rot[0] = !p.Rot[0]
		mid := p.Rect(0)
		p.Rot[0] = !p.Rot[0]
		after := p.Rect(0)
		return before == after && before.Cells() == mid.Cells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): Normalize is idempotent and preserves
// validity, area and overlap count.
func TestNormalizeIdempotentQuick(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		mods := make([]Module, n)
		for i := range mods {
			st := rng.Intn(6)
			mods[i] = Module{ID: i,
				Size: geom.Size{W: 1 + rng.Intn(4), H: 1 + rng.Intn(4)},
				Span: geom.Interval{Start: st, End: st + 1 + rng.Intn(6)}}
		}
		p := New(mods)
		for i := range mods {
			p.Pos[i] = geom.Point{X: rng.Intn(10) - 3, Y: rng.Intn(10) - 3}
		}
		area, overlap := p.ArrayCells(), p.OverlapCells()
		p.Normalize()
		first := p.String()
		p.Normalize()
		return p.String() == first && p.ArrayCells() == area && p.OverlapCells() == overlap
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoveredCellsAndUtilization(t *testing.T) {
	// Two 2x2 modules side by side inside a 4x2 bounding box: full
	// coverage.
	mods := []Module{
		{ID: 0, Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 0, End: 2}},
		{ID: 1, Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 0, End: 2}},
	}
	p := New(mods)
	p.Pos[1] = geom.Point{X: 2, Y: 0}
	if got := p.CoveredCells(); got != 8 {
		t.Errorf("CoveredCells = %d, want 8", got)
	}
	if got := p.Utilization(); got != 1 {
		t.Errorf("Utilization = %v, want 1", got)
	}

	// Spread the second module out: bounding box 6x2 = 12 cells, 8
	// covered.
	p.Pos[1] = geom.Point{X: 4, Y: 0}
	if got := p.CoveredCells(); got != 8 {
		t.Errorf("CoveredCells = %d, want 8", got)
	}
	if got, want := p.Utilization(), 8.0/12.0; got != want {
		t.Errorf("Utilization = %v, want %v", got, want)
	}

	// Time-disjoint overlap counts each cell once.
	disjoint := []Module{
		{ID: 0, Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 0, End: 1}},
		{ID: 1, Size: geom.Size{W: 2, H: 2}, Span: geom.Interval{Start: 1, End: 2}},
	}
	q := New(disjoint)
	if got := q.CoveredCells(); got != 4 {
		t.Errorf("stacked CoveredCells = %d, want 4", got)
	}
	if got := q.Utilization(); got != 1 {
		t.Errorf("stacked Utilization = %v, want 1", got)
	}

	empty := New(nil)
	if empty.CoveredCells() != 0 || empty.Utilization() != 0 {
		t.Errorf("empty placement: covered %d, utilization %v",
			empty.CoveredCells(), empty.Utilization())
	}
}
