// Package place defines the module-placement model of the paper's
// Section 4: the "modified 2-D placement" obtained by reducing the 3-D
// packing problem (rectangle × time-span boxes) to 2-D configurations
// on fixed cutting planes. Every module's start time is fixed by
// architectural-level synthesis; placement chooses its position and
// orientation. Two modules may overlap in space only when their time
// spans are disjoint — that is the dynamic reconfigurability the chip
// provides.
package place

import (
	"fmt"
	"sort"
	"strings"

	"dmfb/internal/geom"
	"dmfb/internal/grid"
	"dmfb/internal/schedule"
)

// Module is one microfluidic module to place: a footprint operating
// over a fixed time span.
type Module struct {
	ID   int           // index within the problem
	Name string        // e.g. "M1"
	Size geom.Size     // canonical footprint (width × height as bound)
	Span geom.Interval // operation interval fixed by synthesis
}

// FromSchedule extracts the placement problem from a synthesis result:
// one module per scheduled reconfigurable operation, in op-ID order.
func FromSchedule(s *schedule.Schedule) []Module {
	var out []Module
	for _, it := range s.BoundItems() {
		out = append(out, Module{
			ID:   len(out),
			Name: it.Op.Name,
			Size: it.Device.Size,
			Span: it.Span,
		})
	}
	return out
}

// ConflictPairs returns the index pairs (i < j) of modules whose time
// spans overlap and therefore must not share cells.
func ConflictPairs(mods []Module) [][2]int {
	var out [][2]int
	for i := 0; i < len(mods); i++ {
		for j := i + 1; j < len(mods); j++ {
			if mods[i].Span.Overlaps(mods[j].Span) {
				out = append(out, [2]int{i, j})
			}
		}
	}
	return out
}

// SearchOptions configures multi-start annealing search: how many
// independent starts to run, how wide to fan them out, and the base
// seed the per-start seeds derive from. The struct is shared by every
// layer that exposes the search knobs — the core placers, the facade,
// the CLI flag group, and the compile endpoint — so the options mean
// the same thing everywhere.
//
// Determinism contract: for a fixed Starts and base seed, the winning
// placement is byte-identical at any Workers value. Start 0 runs the
// base seed unchanged (so Starts ≤ 1 reproduces a plain single-start
// run exactly), start i ≥ 1 runs a splitmix64-derived stream seed, and
// the best result is selected by lowest final cost with ties broken by
// lowest start index. Workers only bounds concurrency.
type SearchOptions struct {
	// Starts is the number of independent annealing starts; 0 and 1
	// both mean a single start.
	Starts int
	// Workers caps how many starts run concurrently; 0 means one per
	// available CPU. Workers never affects the result, only wall-clock
	// time, and is therefore excluded from placement-cache keys.
	Workers int
	// Seed, when non-zero, overrides the placer's base seed for the
	// multi-start derivation (useful to vary the start family without
	// touching the single-start seed).
	Seed int64
}

// Normalized returns the options with the "single start" encodings
// collapsed (Starts < 1 becomes 1) and the result-neutral Workers
// field cleared — the form placement caches fingerprint.
func (s SearchOptions) Normalized() SearchOptions {
	if s.Starts < 1 {
		s.Starts = 1
	}
	s.Workers = 0
	return s
}

// Placement assigns each module an origin and an orientation.
// Positions refer to a core area anchored at (0,0); the fabricated
// array is the bounding box of the placed modules.
type Placement struct {
	Modules []Module     // shared, immutable problem definition
	Pos     []geom.Point // origin (bottom-left cell) per module
	Rot     []bool       // true: footprint transposed (90° rotation)

	conflicts [][2]int // cached ConflictPairs of Modules
}

// New returns a placement with all modules at the origin, unrotated.
func New(mods []Module) *Placement {
	return &Placement{
		Modules:   mods,
		Pos:       make([]geom.Point, len(mods)),
		Rot:       make([]bool, len(mods)),
		conflicts: ConflictPairs(mods),
	}
}

// Clone returns an independent copy sharing the module definitions.
func (p *Placement) Clone() *Placement {
	c := &Placement{
		Modules:   p.Modules,
		Pos:       append([]geom.Point(nil), p.Pos...),
		Rot:       append([]bool(nil), p.Rot...),
		conflicts: p.conflicts,
	}
	return c
}

// Size returns module i's footprint in its current orientation.
func (p *Placement) Size(i int) geom.Size {
	if p.Rot[i] {
		return p.Modules[i].Size.Transpose()
	}
	return p.Modules[i].Size
}

// Rect returns module i's occupied rectangle.
func (p *Placement) Rect(i int) geom.Rect {
	return geom.RectAt(p.Pos[i], p.Size(i))
}

// BoundingBox returns the smallest rectangle containing every module —
// the microfluidic array that must be fabricated (or reserved) for
// this placement.
func (p *Placement) BoundingBox() geom.Rect {
	var bb geom.Rect
	for i := range p.Modules {
		bb = bb.Union(p.Rect(i))
	}
	return bb
}

// ArrayCells returns the cell count of the bounding array, the area
// metric of the paper (reported in mm² via modlib.AreaMM2).
func (p *Placement) ArrayCells() int { return p.BoundingBox().Cells() }

// CoveredCells returns the number of array cells covered by at least
// one module at some time during the assay.
func (p *Placement) CoveredCells() int {
	bb := p.BoundingBox()
	if bb.Empty() {
		return 0
	}
	g := grid.New(bb.W, bb.H)
	for i := range p.Modules {
		g.SetRect(p.Rect(i).Translate(-bb.X, -bb.Y), true)
	}
	return g.CountOccupied()
}

// Utilization returns CoveredCells/ArrayCells: the fraction of the
// fabricated array ever claimed by a module. The remainder is spare
// area, useful only as relocation headroom for reconfiguration — a
// key quantity for the telemetry layer's placement-quality gauges.
func (p *Placement) Utilization() float64 {
	cells := p.ArrayCells()
	if cells == 0 {
		return 0
	}
	return float64(p.CoveredCells()) / float64(cells)
}

// OverlapCells returns the total number of doubly-claimed cells over
// all time-conflicting module pairs: the forbidden-overlap penalty
// term of the annealer's cost function. Zero means feasible.
func (p *Placement) OverlapCells() int {
	total := 0
	for _, pr := range p.conflicts {
		total += p.Rect(pr[0]).Intersect(p.Rect(pr[1])).Cells()
	}
	return total
}

// Valid reports whether the placement has no forbidden overlap.
func (p *Placement) Valid() bool { return p.OverlapCells() == 0 }

// FitsIn reports whether every module lies inside the core area
// [0,w)×[0,h).
func (p *Placement) FitsIn(w, h int) bool {
	core := geom.Rect{X: 0, Y: 0, W: w, H: h}
	for i := range p.Modules {
		if !core.ContainsRect(p.Rect(i)) {
			return false
		}
	}
	return true
}

// ActiveDuring returns the indices of modules whose spans overlap iv,
// excluding the listed indices.
func (p *Placement) ActiveDuring(iv geom.Interval, exclude ...int) []int {
	return p.AppendActiveDuring(nil, iv, exclude...)
}

// AppendActiveDuring appends to dst the indices of modules whose spans
// overlap iv, excluding the listed indices, and returns the extended
// slice. The exclude list is scanned directly (it is one or two
// entries everywhere in the flow), so a caller that reuses dst runs
// allocation-free — this sits in the inner loop of the FTI and
// reconfiguration engines.
func (p *Placement) AppendActiveDuring(dst []int, iv geom.Interval, exclude ...int) []int {
	for i := range p.Modules {
		if containsIdx(exclude, i) || !p.Modules[i].Span.Overlaps(iv) {
			continue
		}
		dst = append(dst, i)
	}
	return dst
}

func containsIdx(s []int, v int) bool {
	for _, e := range s {
		if e == v {
			return true
		}
	}
	return false
}

// OccupancyDuring builds the occupancy grid of the given array for the
// interval iv: cells of every module active during iv are occupied,
// except the excluded modules. Module rectangles are clipped to the
// array; coordinates are translated so the array's origin maps to
// grid cell (0,0).
func (p *Placement) OccupancyDuring(array geom.Rect, iv geom.Interval, exclude ...int) *grid.Grid {
	g := grid.New(array.W, array.H)
	p.FillOccupancyDuring(g, array, iv, exclude...)
	return g
}

// FillOccupancyDuring clears g and fills it with the occupancy of the
// array during iv, exactly as OccupancyDuring, but into a caller-owned
// grid so hot loops (incremental FTI, reconfiguration planning) can
// reuse one buffer. g's dimensions must match the array's.
func (p *Placement) FillOccupancyDuring(g *grid.Grid, array geom.Rect, iv geom.Interval, exclude ...int) {
	if g.W() != array.W || g.H() != array.H {
		panic(fmt.Sprintf("place: %dx%d grid cannot hold %dx%d array occupancy",
			g.W(), g.H(), array.W, array.H))
	}
	g.Clear()
	for i := range p.Modules {
		if containsIdx(exclude, i) || !p.Modules[i].Span.Overlaps(iv) {
			continue
		}
		g.SetRect(p.Rect(i).Translate(-array.X, -array.Y), true)
	}
}

// ModulesAt returns the indices of modules whose rectangle contains
// cell pt (in core coordinates), in index order.
func (p *Placement) ModulesAt(pt geom.Point) []int {
	var out []int
	for i := range p.Modules {
		if p.Rect(i).Contains(pt) {
			out = append(out, i)
		}
	}
	return out
}

// Normalize translates all modules so the bounding box is anchored at
// the origin. Relative geometry is unchanged.
func (p *Placement) Normalize() {
	bb := p.BoundingBox()
	if bb.Empty() || (bb.X == 0 && bb.Y == 0) {
		return
	}
	for i := range p.Pos {
		p.Pos[i] = p.Pos[i].Add(geom.Point{X: -bb.X, Y: -bb.Y})
	}
}

// Validate performs a full consistency check, returning a descriptive
// error for the first violation found: negative coordinates after
// normalisation are allowed, but forbidden overlaps are not.
func (p *Placement) Validate() error {
	if len(p.Pos) != len(p.Modules) || len(p.Rot) != len(p.Modules) {
		return fmt.Errorf("place: %d modules but %d positions / %d rotations",
			len(p.Modules), len(p.Pos), len(p.Rot))
	}
	for _, pr := range p.conflicts {
		i, j := pr[0], pr[1]
		if ov := p.Rect(i).Intersect(p.Rect(j)); !ov.Empty() {
			return fmt.Errorf("place: modules %s%v and %s%v overlap at %v during %v",
				p.Modules[i].Name, p.Rect(i), p.Modules[j].Name, p.Rect(j),
				ov, p.Modules[i].Span.Intersect(p.Modules[j].Span))
		}
	}
	return nil
}

// String renders each module's assignment, sorted by start time.
func (p *Placement) String() string {
	idx := make([]int, len(p.Modules))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ma, mb := p.Modules[idx[a]], p.Modules[idx[b]]
		if ma.Span.Start != mb.Span.Start {
			return ma.Span.Start < mb.Span.Start
		}
		return idx[a] < idx[b]
	})
	bb := p.BoundingBox()
	var b strings.Builder
	fmt.Fprintf(&b, "placement: array %dx%d = %d cells\n", bb.W, bb.H, bb.Cells())
	for _, i := range idx {
		fmt.Fprintf(&b, "  %-4s %v %s\n", p.Modules[i].Name, p.Rect(i), p.Modules[i].Span)
	}
	return b.String()
}
