// Package format serialises the flow's artefacts — sequencing graphs,
// schedules and placements — as JSON, so the cmd/ tools can exchange
// them on disk and downstream users can bring their own assays.
package format

import (
	"encoding/json"
	"fmt"

	"dmfb/internal/assay"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
	"dmfb/internal/place"
	"dmfb/internal/schedule"
)

// GraphJSON is the on-disk form of a sequencing graph.
type GraphJSON struct {
	Name  string   `json:"name"`
	Ops   []OpJSON `json:"ops"`
	Edges [][2]int `json:"edges"`
}

// OpJSON is one operation.
type OpJSON struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Fluid string `json:"fluid,omitempty"`
}

var kindByName = map[string]assay.OpKind{
	"dispense": assay.Dispense,
	"mix":      assay.Mix,
	"dilute":   assay.Dilute,
	"store":    assay.Store,
	"detect":   assay.Detect,
	"output":   assay.Output,
}

// MarshalGraph encodes a sequencing graph.
func MarshalGraph(g *assay.Graph) ([]byte, error) {
	out := GraphJSON{Name: g.Name}
	for _, op := range g.Ops() {
		out.Ops = append(out.Ops, OpJSON{Name: op.Name, Kind: op.Kind.String(), Fluid: op.Fluid})
		for _, s := range g.Succ(op.ID) {
			out.Edges = append(out.Edges, [2]int{op.ID, s})
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalGraph decodes and validates a sequencing graph.
func UnmarshalGraph(data []byte) (*assay.Graph, error) {
	var in GraphJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("format: %w", err)
	}
	g := assay.New(in.Name)
	for i, op := range in.Ops {
		kind, ok := kindByName[op.Kind]
		if !ok {
			return nil, fmt.Errorf("format: op %d has unknown kind %q", i, op.Kind)
		}
		g.AddOp(op.Name, kind, op.Fluid)
	}
	for _, e := range in.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("format: %w", err)
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// PlacementJSON is the on-disk form of a placement.
type PlacementJSON struct {
	Modules []ModuleJSON `json:"modules"`
}

// ModuleJSON is one placed module.
type ModuleJSON struct {
	Name  string `json:"name"`
	W     int    `json:"w"`
	H     int    `json:"h"`
	Start int    `json:"start"`
	End   int    `json:"end"`
	X     int    `json:"x"`
	Y     int    `json:"y"`
	Rot   bool   `json:"rot,omitempty"`
}

// MarshalPlacement encodes a placement.
func MarshalPlacement(p *place.Placement) ([]byte, error) {
	out := PlacementJSON{}
	for i, m := range p.Modules {
		out.Modules = append(out.Modules, ModuleJSON{
			Name: m.Name, W: m.Size.W, H: m.Size.H,
			Start: m.Span.Start, End: m.Span.End,
			X: p.Pos[i].X, Y: p.Pos[i].Y, Rot: p.Rot[i],
		})
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalPlacement decodes and validates a placement.
func UnmarshalPlacement(data []byte) (*place.Placement, error) {
	var in PlacementJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("format: %w", err)
	}
	mods := make([]place.Module, len(in.Modules))
	for i, m := range in.Modules {
		mods[i] = place.Module{
			ID:   i,
			Name: m.Name,
			Size: geom.Size{W: m.W, H: m.H},
			Span: geom.Interval{Start: m.Start, End: m.End},
		}
		if !mods[i].Size.Valid() {
			return nil, fmt.Errorf("format: module %d has invalid size %dx%d", i, m.W, m.H)
		}
	}
	p := place.New(mods)
	for i, m := range in.Modules {
		p.Pos[i] = geom.Point{X: m.X, Y: m.Y}
		p.Rot[i] = m.Rot
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ScheduleJSON is the on-disk form of a synthesis result.
type ScheduleJSON struct {
	Graph    GraphJSON  `json:"graph"`
	Items    []ItemJSON `json:"items"`
	Makespan int        `json:"makespan"`
}

// ItemJSON is one scheduled operation.
type ItemJSON struct {
	Op     int    `json:"op"`
	Start  int    `json:"start"`
	End    int    `json:"end"`
	Device string `json:"device,omitempty"`
}

// MarshalSchedule encodes a schedule; devices are referenced by
// library name.
func MarshalSchedule(s *schedule.Schedule) ([]byte, error) {
	gj, err := MarshalGraph(s.Graph)
	if err != nil {
		return nil, err
	}
	var graph GraphJSON
	if err := json.Unmarshal(gj, &graph); err != nil {
		return nil, err
	}
	out := ScheduleJSON{Graph: graph, Makespan: s.Makespan}
	for i, it := range s.Items {
		ij := ItemJSON{Op: i, Start: it.Span.Start, End: it.Span.End}
		if it.Bound {
			ij.Device = it.Device.Name
		}
		out.Items = append(out.Items, ij)
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalSchedule decodes a schedule, resolving devices against the
// given library.
func UnmarshalSchedule(data []byte, lib *modlib.Library) (*schedule.Schedule, error) {
	var in ScheduleJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("format: %w", err)
	}
	graphBytes, err := json.Marshal(in.Graph)
	if err != nil {
		return nil, err
	}
	g, err := UnmarshalGraph(graphBytes)
	if err != nil {
		return nil, err
	}
	if len(in.Items) != g.NumOps() {
		return nil, fmt.Errorf("format: %d items for %d ops", len(in.Items), g.NumOps())
	}
	s := &schedule.Schedule{Graph: g, Items: make([]schedule.Item, g.NumOps()), Makespan: in.Makespan}
	for _, ij := range in.Items {
		if ij.Op < 0 || ij.Op >= g.NumOps() {
			return nil, fmt.Errorf("format: item references unknown op %d", ij.Op)
		}
		item := schedule.Item{Op: g.Op(ij.Op), Span: geom.Interval{Start: ij.Start, End: ij.End}}
		if ij.Device != "" {
			d, ok := lib.Get(ij.Device)
			if !ok {
				return nil, fmt.Errorf("format: unknown device %q", ij.Device)
			}
			item.Device = d
			item.Bound = true
		}
		s.Items[ij.Op] = item
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}
