package format

import (
	"strings"
	"testing"

	"dmfb/internal/core"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
	"dmfb/internal/pcr"
	"dmfb/internal/place"
)

func TestGraphRoundTrip(t *testing.T) {
	g, _ := pcr.Graph()
	data, err := MarshalGraph(g)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalGraph(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != g.Name || back.NumOps() != g.NumOps() {
		t.Fatal("graph identity lost")
	}
	for i := 0; i < g.NumOps(); i++ {
		a, b := g.Op(i), back.Op(i)
		if a.Name != b.Name || a.Kind != b.Kind || a.Fluid != b.Fluid {
			t.Fatalf("op %d differs: %+v vs %+v", i, a, b)
		}
		sa, sb := g.Succ(i), back.Succ(i)
		if len(sa) != len(sb) {
			t.Fatalf("op %d successor count differs", i)
		}
		for j := range sa {
			if sa[j] != sb[j] {
				t.Fatalf("op %d successors differ", i)
			}
		}
	}
}

func TestUnmarshalGraphErrors(t *testing.T) {
	cases := []string{
		`{not json`,
		`{"name":"x","ops":[{"name":"a","kind":"frobnicate"}]}`,
		`{"name":"x","ops":[{"name":"a","kind":"mix"}],"edges":[[0,5]]}`,
		// Cycle.
		`{"name":"x","ops":[{"name":"a","kind":"mix"},{"name":"b","kind":"mix"}],"edges":[[0,1],[1,0]]}`,
	}
	for i, c := range cases {
		if _, err := UnmarshalGraph([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestPlacementRoundTrip(t *testing.T) {
	prob := core.FromSchedule(pcr.MustSchedule())
	p, err := core.Greedy(prob, true)
	if err != nil {
		t.Fatal(err)
	}
	p.Rot[1] = !p.Rot[1] // exercise the rot field... may overlap; revert if invalid
	if !p.Valid() {
		p.Rot[1] = !p.Rot[1]
	}
	data, err := MarshalPlacement(p)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalPlacement(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != p.String() {
		t.Fatalf("placement round trip differs:\n%s\nvs\n%s", back, p)
	}
}

func TestUnmarshalPlacementRejectsInvalid(t *testing.T) {
	// Overlapping, time-conflicting modules.
	bad := `{"modules":[
		{"name":"A","w":2,"h":2,"start":0,"end":5,"x":0,"y":0},
		{"name":"B","w":2,"h":2,"start":0,"end":5,"x":0,"y":0}]}`
	if _, err := UnmarshalPlacement([]byte(bad)); err == nil {
		t.Error("overlapping placement accepted")
	}
	if _, err := UnmarshalPlacement([]byte(`{"modules":[{"name":"A","w":0,"h":2,"start":0,"end":5}]}`)); err == nil {
		t.Error("zero-width module accepted")
	}
	if _, err := UnmarshalPlacement([]byte(`nope`)); err == nil {
		t.Error("garbage accepted")
	}
}

func TestScheduleRoundTrip(t *testing.T) {
	s := pcr.MustSchedule()
	data, err := MarshalSchedule(s)
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalSchedule(data, modlib.Table1())
	if err != nil {
		t.Fatal(err)
	}
	if back.Makespan != s.Makespan {
		t.Errorf("makespan %d vs %d", back.Makespan, s.Makespan)
	}
	bi, si := back.BoundItems(), s.BoundItems()
	if len(bi) != len(si) {
		t.Fatalf("bound items %d vs %d", len(bi), len(si))
	}
	for i := range bi {
		if bi[i].Op.Name != si[i].Op.Name || bi[i].Span != si[i].Span ||
			bi[i].Device.Name != si[i].Device.Name {
			t.Errorf("item %d differs: %+v vs %+v", i, bi[i], si[i])
		}
	}
	// Placement problems extracted from both match.
	a := place.FromSchedule(s)
	b := place.FromSchedule(back)
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("module %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestUnmarshalScheduleErrors(t *testing.T) {
	lib := modlib.Table1()
	if _, err := UnmarshalSchedule([]byte(`bad`), lib); err == nil {
		t.Error("garbage accepted")
	}
	// Unknown device.
	s := pcr.MustSchedule()
	data, _ := MarshalSchedule(s)
	broken := strings.Replace(string(data), modlib.Mixer2x2, "warp-drive", 1)
	if _, err := UnmarshalSchedule([]byte(broken), lib); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestMarshalledGraphIsReadableJSON(t *testing.T) {
	g, _ := pcr.Graph()
	data, _ := MarshalGraph(g)
	s := string(data)
	for _, want := range []string{`"pcr-mixing-stage"`, `"dispense"`, `"mix"`, `"tris-hcl"`} {
		if !strings.Contains(s, want) {
			t.Errorf("JSON missing %s", want)
		}
	}
	_ = geom.Point{} // keep geom import for the helper types
}
