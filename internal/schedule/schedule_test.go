package schedule

import (
	"math/rand"
	"strings"
	"testing"

	"dmfb/internal/assay"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
)

// diamond builds dispense×2 -> mix -> detect -> output.
func diamond(t *testing.T) (*assay.Graph, Binding) {
	t.Helper()
	g := assay.New("diamond")
	d1 := g.AddOp("D1", assay.Dispense, "a")
	d2 := g.AddOp("D2", assay.Dispense, "b")
	m := g.AddOp("M", assay.Mix, "")
	det := g.AddOp("Det", assay.Detect, "")
	o := g.AddOp("O", assay.Output, "")
	g.MustEdge(d1, m)
	g.MustEdge(d2, m)
	g.MustEdge(m, det)
	g.MustEdge(det, o)
	b, err := Bind(g, modlib.Table1(), BindFastest)
	if err != nil {
		t.Fatal(err)
	}
	return g, b
}

func TestBindPolicies(t *testing.T) {
	g, _ := diamond(t)
	lib := modlib.Table1()

	fast, err := Bind(g, lib, BindFastest)
	if err != nil {
		t.Fatal(err)
	}
	if fast[2].Name != modlib.Mixer2x4 {
		t.Errorf("fastest mix binding = %s", fast[2].Name)
	}
	small, err := Bind(g, lib, BindSmallest)
	if err != nil {
		t.Fatal(err)
	}
	if small[2].Name != modlib.Mixer2x2 {
		t.Errorf("smallest mix binding = %s", small[2].Name)
	}
	// Non-reconfigurable ops must not be bound.
	if _, ok := fast[0]; ok {
		t.Error("dispense op bound to a device")
	}

	// Library without a detector fails.
	empty, _ := modlib.NewLibrary(modlib.Device{
		Name: "m", Kind: assay.Mix, Size: geom.Size{W: 2, H: 2}, Duration: 1})
	if _, err := Bind(g, empty, BindFastest); err == nil {
		t.Error("Bind succeeded without detector device")
	}
}

func TestASAPALAP(t *testing.T) {
	g, b := diamond(t)
	o := Options{DispenseTime: 2, OutputTime: 1}
	asap, err := ASAP(g, b, o)
	if err != nil {
		t.Fatal(err)
	}
	// D1,D2 at 0; M at 2; Det at 2+3=5; O at 5+30=35.
	want := []int{0, 0, 2, 5, 35}
	for i, w := range want {
		if asap[i] != w {
			t.Errorf("ASAP[%d] = %d, want %d", i, asap[i], w)
		}
	}
	cp := 36 // O finishes at 36
	alap, err := ALAP(g, b, o, cp)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if alap[i] < asap[i] {
			t.Errorf("ALAP[%d]=%d < ASAP[%d]=%d", i, alap[i], i, asap[i])
		}
	}
	// Zero slack on the critical path: every op here is critical.
	for i := range want {
		if alap[i] != asap[i] {
			t.Errorf("slack on critical path: op %d asap %d alap %d", i, asap[i], alap[i])
		}
	}
	if _, err := ALAP(g, b, o, cp-1); err == nil {
		t.Error("infeasible deadline accepted")
	}
}

func TestListUnconstrained(t *testing.T) {
	g, b := diamond(t)
	s, err := List(g, b, Options{DispenseTime: 2, OutputTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if s.Makespan != 36 {
		t.Errorf("makespan = %d, want 36", s.Makespan)
	}
	if got := len(s.BoundItems()); got != 2 {
		t.Errorf("BoundItems = %d, want 2 (mix, detect)", got)
	}
	if s.PeakArea() == 0 {
		t.Error("PeakArea = 0")
	}
	if !strings.Contains(s.String(), "makespan") {
		t.Error("String missing makespan")
	}
}

func TestListAreaBudgetSerialisesOps(t *testing.T) {
	// Two independent mixes, each 16 cells; budget 20 forces
	// serialisation, budget 32 allows parallelism.
	lib := modlib.Table1()
	mixer, _ := lib.Get(modlib.Mixer2x2)
	g := assay.New("parallel")
	var mixes []int
	for i := 0; i < 2; i++ {
		d1 := g.AddOp("d", assay.Dispense, "x")
		d2 := g.AddOp("d", assay.Dispense, "y")
		m := g.AddOp("m", assay.Mix, "")
		g.MustEdge(d1, m)
		g.MustEdge(d2, m)
		mixes = append(mixes, m)
	}
	b := Binding{mixes[0]: mixer, mixes[1]: mixer}

	par, err := List(g, b, Options{AreaBudget: 32})
	if err != nil {
		t.Fatal(err)
	}
	if par.Makespan != 10 {
		t.Errorf("parallel makespan = %d, want 10", par.Makespan)
	}
	ser, err := List(g, b, Options{AreaBudget: 20})
	if err != nil {
		t.Fatal(err)
	}
	if ser.Makespan != 20 {
		t.Errorf("serial makespan = %d, want 20", ser.Makespan)
	}
	if err := ser.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := ser.PeakArea(); got > 20 {
		t.Errorf("PeakArea = %d exceeds budget", got)
	}
}

func TestListRejectsOversizedOp(t *testing.T) {
	g, b := diamond(t)
	if _, err := List(g, b, Options{AreaBudget: 5}); err == nil {
		t.Error("op larger than budget accepted")
	}
}

func TestListRejectsBrokenBinding(t *testing.T) {
	g, b := diamond(t)
	delete(b, 2) // unbind the mix
	if _, err := List(g, b, Options{}); err == nil {
		t.Error("missing binding accepted")
	}
	// Kind-mismatched binding.
	g2, b2 := diamond(t)
	store, _ := modlib.Table1().Get(modlib.StorageUnit)
	b2[2] = store
	if _, err := List(g2, b2, Options{}); err == nil {
		t.Error("kind-mismatched binding accepted")
	}
}

func TestScheduleValidateCatchesViolations(t *testing.T) {
	g, b := diamond(t)
	s, err := List(g, b, Options{DispenseTime: 1, OutputTime: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt: make detect start before mix ends.
	s.Items[3].Span = geom.Interval{Start: 0, End: 3}
	if err := s.Validate(); err == nil {
		t.Error("precedence violation not caught")
	}
}

// Property: random series-parallel-ish DAGs scheduled under random
// budgets always validate, never beat ASAP, and meet ASAP when
// unconstrained.
func TestListRandomProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	lib := modlib.Table1()
	for trial := 0; trial < 120; trial++ {
		g := assay.New("rand")
		nMix := 2 + rng.Intn(8)
		var prev []int
		for i := 0; i < nMix; i++ {
			m := g.AddOp("m", assay.Mix, "")
			nin := 0
			// Consume up to two earlier droplets.
			for _, p := range rng.Perm(len(prev)) {
				if nin == 2 || rng.Intn(2) == 0 {
					break
				}
				g.MustEdge(prev[p], m)
				nin++
			}
			for ; nin < 2; nin++ {
				d := g.AddOp("d", assay.Dispense, "r")
				g.MustEdge(d, m)
			}
			prev = append(prev, m)
		}
		b, err := Bind(g, lib, BindPolicy(rng.Intn(2)))
		if err != nil {
			t.Fatal(err)
		}
		o := Options{DispenseTime: rng.Intn(3)}
		un, err := List(g, b, o)
		if err != nil {
			t.Fatal(err)
		}
		if err := un.Validate(); err != nil {
			t.Fatalf("unconstrained schedule invalid: %v", err)
		}
		asap, _ := ASAP(g, b, o)
		wantMakespan := 0
		for i, st := range asap {
			if f := st + un.Items[i].Duration(); f > wantMakespan {
				// recompute via asap + duration
				_ = f
			}
		}
		for i, st := range asap {
			if un.Items[i].Span.Start != st {
				t.Fatalf("unconstrained list != ASAP for op %d: %d vs %d",
					i, un.Items[i].Span.Start, st)
			}
		}

		budget := 20 + rng.Intn(40)
		con, err := List(g, b, Options{AreaBudget: budget, DispenseTime: o.DispenseTime})
		if err != nil {
			// Only acceptable when some op exceeds the budget.
			tooBig := false
			for _, d := range b {
				if d.Size.Cells() > budget {
					tooBig = true
				}
			}
			if !tooBig {
				t.Fatalf("constrained scheduling failed: %v", err)
			}
			continue
		}
		if err := con.Validate(); err != nil {
			t.Fatalf("constrained schedule invalid: %v", err)
		}
		if con.PeakArea() > budget {
			t.Fatalf("peak area %d exceeds budget %d", con.PeakArea(), budget)
		}
		if con.Makespan < un.Makespan {
			t.Fatalf("constrained makespan %d beats unconstrained %d", con.Makespan, un.Makespan)
		}
	}
}

func TestSlack(t *testing.T) {
	g, b := diamond(t)
	o := Options{DispenseTime: 2, OutputTime: 1}
	slack, err := Slack(g, b, o, 36)
	if err != nil {
		t.Fatal(err)
	}
	// The diamond is a single chain: everything is critical.
	for i, s := range slack {
		if s != 0 {
			t.Errorf("op %d slack = %d, want 0", i, s)
		}
	}
	// A looser deadline gives everyone exactly the extra time.
	slack, err = Slack(g, b, o, 40)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range slack {
		if s != 4 {
			t.Errorf("op %d slack = %d, want 4", i, s)
		}
	}
	if _, err := Slack(g, b, o, 10); err == nil {
		t.Error("infeasible deadline accepted")
	}
}
