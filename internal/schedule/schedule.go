// Package schedule implements architectural-level synthesis for
// digital microfluidic biochips: resource binding (assigning assay
// operations to module-library devices) and scheduling (assigning
// start times). Its output — a set of modules, each with a footprint
// and a fixed time span — is exactly the input the paper's placement
// step consumes ("the starting times for each operation corresponding
// to a module ... are pre-determined", Section 4).
//
// The scheduler is a resource-constrained list scheduler: operations
// become ready when their predecessors finish and are started greedily
// in priority order (longest remaining path first) subject to an array
// area budget on the concurrently active module footprints. ASAP and
// ALAP analyses are provided for slack computation and as bounds.
package schedule

import (
	"fmt"
	"sort"

	"dmfb/internal/assay"
	"dmfb/internal/geom"
	"dmfb/internal/modlib"
)

// Binding maps a reconfigurable operation ID to the library device
// that implements it.
type Binding map[int]modlib.Device

// BindPolicy selects a device for an operation kind during automatic
// binding.
type BindPolicy int

const (
	// BindFastest picks the device with the shortest operation time.
	BindFastest BindPolicy = iota
	// BindSmallest picks the device with the smallest footprint.
	BindSmallest
)

// Bind assigns a device to every reconfigurable operation of g
// according to the policy. It fails if the library lacks a device for
// some required operation kind.
func Bind(g *assay.Graph, lib *modlib.Library, policy BindPolicy) (Binding, error) {
	b := make(Binding)
	for _, op := range g.Ops() {
		if !op.Kind.Reconfigurable() {
			continue
		}
		var d modlib.Device
		var ok bool
		switch policy {
		case BindSmallest:
			d, ok = lib.SmallestForKind(op.Kind)
		default:
			d, ok = lib.FastestForKind(op.Kind)
		}
		if !ok {
			return nil, fmt.Errorf("schedule: no %v device in library for op %s", op.Kind, op.Name)
		}
		b[op.ID] = d
	}
	return b, nil
}

// Options configures the list scheduler.
type Options struct {
	// AreaBudget caps the total footprint cells of concurrently
	// executing reconfigurable modules. Zero means unconstrained.
	AreaBudget int
	// DispenseTime and OutputTime are the durations of boundary-port
	// operations in seconds. They may be zero (pre-loaded reservoirs,
	// immediate disposal), which is the convention for the paper's PCR
	// mixing-stage case study.
	DispenseTime int
	OutputTime   int
}

// Item is one scheduled operation.
type Item struct {
	Op     assay.Op
	Device modlib.Device // zero value for non-reconfigurable ops
	Span   geom.Interval // [start, start+duration)
	Bound  bool          // whether Device is meaningful
}

// Duration returns the item's scheduled duration.
func (it Item) Duration() int { return it.Span.Len() }

// Schedule is the result of architectural-level synthesis.
type Schedule struct {
	Graph    *assay.Graph
	Items    []Item // indexed by op ID
	Makespan int
	Options  Options
}

// opDuration returns the duration of op under binding b and options o.
func opDuration(op assay.Op, b Binding, o Options) int {
	switch op.Kind {
	case assay.Dispense:
		return o.DispenseTime
	case assay.Output:
		return o.OutputTime
	default:
		return b[op.ID].Duration
	}
}

// checkBinding verifies b covers every reconfigurable op of g.
func checkBinding(g *assay.Graph, b Binding) error {
	for _, op := range g.Ops() {
		if op.Kind.Reconfigurable() {
			d, ok := b[op.ID]
			if !ok {
				return fmt.Errorf("schedule: op %s (%v) has no bound device", op.Name, op.Kind)
			}
			if d.Kind != op.Kind {
				return fmt.Errorf("schedule: op %s (%v) bound to %v device %s",
					op.Name, op.Kind, d.Kind, d.Name)
			}
		}
	}
	return nil
}

// ASAP returns the as-soon-as-possible start time of every op with
// unlimited resources.
func ASAP(g *assay.Graph, b Binding, o Options) ([]int, error) {
	if err := checkBinding(g, b); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	start := make([]int, g.NumOps())
	for _, v := range order {
		for _, p := range g.Pred(v) {
			f := start[p] + opDuration(g.Op(p), b, o)
			if f > start[v] {
				start[v] = f
			}
		}
	}
	return start, nil
}

// ALAP returns the as-late-as-possible start times for the given
// deadline. An error is returned if the deadline is shorter than the
// critical path.
func ALAP(g *assay.Graph, b Binding, o Options, deadline int) ([]int, error) {
	if err := checkBinding(g, b); err != nil {
		return nil, err
	}
	order, err := g.TopoOrder()
	if err != nil {
		return nil, err
	}
	start := make([]int, g.NumOps())
	for i := range start {
		start[i] = deadline - opDuration(g.Op(i), b, o)
	}
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, s := range g.Succ(v) {
			latest := start[s] - opDuration(g.Op(v), b, o)
			if latest < start[v] {
				start[v] = latest
			}
		}
		if start[v] < 0 {
			return nil, fmt.Errorf("schedule: deadline %d infeasible (op %s would start at %d)",
				deadline, g.Op(v).Name, start[v])
		}
	}
	return start, nil
}

// Slack returns, per operation, the scheduling slack ALAP−ASAP at the
// given deadline: zero-slack operations are on the critical path.
func Slack(g *assay.Graph, b Binding, o Options, deadline int) ([]int, error) {
	asap, err := ASAP(g, b, o)
	if err != nil {
		return nil, err
	}
	alap, err := ALAP(g, b, o, deadline)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(asap))
	for i := range out {
		out[i] = alap[i] - asap[i]
	}
	return out, nil
}

// List runs resource-constrained list scheduling and returns the
// schedule. Priority is the longest remaining path to a sink
// (critical-path scheduling); ties break on smaller op ID for
// determinism.
func List(g *assay.Graph, b Binding, o Options) (*Schedule, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := checkBinding(g, b); err != nil {
		return nil, err
	}
	n := g.NumOps()
	dur := make([]int, n)
	for i := 0; i < n; i++ {
		dur[i] = opDuration(g.Op(i), b, o)
		if dur[i] < 0 {
			return nil, fmt.Errorf("schedule: negative duration for op %s", g.Op(i).Name)
		}
	}

	// Priority: longest path (sum of durations) from each op to a sink.
	prio := make([]int, n)
	order, _ := g.TopoOrder()
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		best := 0
		for _, s := range g.Succ(v) {
			if prio[s] > best {
				best = prio[s]
			}
		}
		prio[v] = best + dur[v]
	}

	footprint := func(id int) int {
		if g.Op(id).Kind.Reconfigurable() {
			return b[id].Size.Cells()
		}
		return 0
	}
	if o.AreaBudget > 0 {
		for i := 0; i < n; i++ {
			if fp := footprint(i); fp > o.AreaBudget {
				return nil, fmt.Errorf("schedule: op %s footprint %d exceeds area budget %d",
					g.Op(i).Name, fp, o.AreaBudget)
			}
		}
	}

	start := make([]int, n)
	finish := make([]int, n)
	for i := range start {
		start[i] = -1
		finish[i] = -1
	}
	unfinishedPreds := make([]int, n)
	for i := 0; i < n; i++ {
		unfinishedPreds[i] = len(g.Pred(i))
	}

	var ready []int // ops whose preds all finished, not yet started
	for i := 0; i < n; i++ {
		if unfinishedPreds[i] == 0 {
			ready = append(ready, i)
		}
	}
	running := map[int]bool{}
	scheduled := 0
	now := 0
	usedArea := 0

	for scheduled < n {
		// Start ready ops highest-priority first until none fits.
		// Zero-duration ops (e.g. pre-loaded dispenses) complete
		// instantly and may release new ready ops within the same time
		// step, so iterate start attempts to a fixpoint.
		for {
			sort.Slice(ready, func(i, j int) bool {
				if prio[ready[i]] != prio[ready[j]] {
					return prio[ready[i]] > prio[ready[j]]
				}
				return ready[i] < ready[j]
			})
			started := -1
			for i, v := range ready {
				fp := footprint(v)
				if o.AreaBudget > 0 && usedArea+fp > o.AreaBudget {
					continue
				}
				start[v] = now
				finish[v] = now + dur[v]
				scheduled++
				if dur[v] == 0 {
					for _, s := range g.Succ(v) {
						unfinishedPreds[s]--
						if unfinishedPreds[s] == 0 {
							ready = append(ready, s)
						}
					}
				} else {
					usedArea += fp
					running[v] = true
				}
				started = i
				break
			}
			if started < 0 {
				break
			}
			ready = append(ready[:started], ready[started+1:]...)
		}

		if scheduled == n {
			break
		}
		if len(running) == 0 {
			// Ready ops exist but none fits even on an idle array —
			// the per-op budget pre-check rules this out; guard anyway.
			return nil, fmt.Errorf("schedule: deadlock at t=%d with %d ops pending", now, n-scheduled)
		}
		// Advance time to the earliest completion.
		nextT := -1
		for v := range running {
			if nextT < 0 || finish[v] < nextT {
				nextT = finish[v]
			}
		}
		now = nextT
		for v := range running {
			if finish[v] == now {
				delete(running, v)
				usedArea -= footprint(v)
				for _, s := range g.Succ(v) {
					unfinishedPreds[s]--
					if unfinishedPreds[s] == 0 {
						ready = append(ready, s)
					}
				}
			}
		}
	}

	s := &Schedule{Graph: g, Items: make([]Item, n), Options: o}
	for i := 0; i < n; i++ {
		it := Item{Op: g.Op(i), Span: geom.Interval{Start: start[i], End: finish[i]}}
		if g.Op(i).Kind.Reconfigurable() {
			it.Device = b[i]
			it.Bound = true
		}
		s.Items[i] = it
		if finish[i] > s.Makespan {
			s.Makespan = finish[i]
		}
	}
	return s, nil
}

// Clone returns an independent copy of the schedule sharing the
// immutable sequencing graph. The recovery ladder mutates cloned
// schedules (device downgrades, span stretches) without touching the
// caller's synthesis result.
func (s *Schedule) Clone() *Schedule {
	c := *s
	c.Items = append([]Item(nil), s.Items...)
	return &c
}

// Validate checks that the schedule respects precedence and, if an
// area budget was set, the concurrent-footprint cap.
func (s *Schedule) Validate() error {
	g := s.Graph
	for i := range s.Items {
		it := s.Items[i]
		if it.Span.Start < 0 {
			return fmt.Errorf("schedule: op %s unscheduled", it.Op.Name)
		}
		for _, p := range g.Pred(i) {
			if s.Items[p].Span.End > it.Span.Start {
				return fmt.Errorf("schedule: op %s starts at %d before pred %s finishes at %d",
					it.Op.Name, it.Span.Start, s.Items[p].Op.Name, s.Items[p].Span.End)
			}
		}
	}
	if s.Options.AreaBudget > 0 {
		for t := 0; t < s.Makespan; t++ {
			area := 0
			for _, it := range s.Items {
				if it.Bound && it.Span.Contains(t) {
					area += it.Device.Size.Cells()
				}
			}
			if area > s.Options.AreaBudget {
				return fmt.Errorf("schedule: area %d exceeds budget %d at t=%d",
					area, s.Options.AreaBudget, t)
			}
		}
	}
	return nil
}

// PeakArea returns the maximum total footprint of concurrently
// executing reconfigurable modules — a lower bound on the array area
// any placement can achieve.
func (s *Schedule) PeakArea() int {
	peak := 0
	for t := 0; t < s.Makespan; t++ {
		area := 0
		for _, it := range s.Items {
			if it.Bound && it.Span.Contains(t) {
				area += it.Device.Size.Cells()
			}
		}
		if area > peak {
			peak = area
		}
	}
	return peak
}

// BoundItems returns the scheduled reconfigurable operations — the
// module set handed to placement — in op-ID order.
func (s *Schedule) BoundItems() []Item {
	var out []Item
	for _, it := range s.Items {
		if it.Bound {
			out = append(out, it)
		}
	}
	return out
}

// String renders the schedule as a Gantt-style table in time order.
func (s *Schedule) String() string {
	idx := make([]int, len(s.Items))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := s.Items[idx[a]], s.Items[idx[b]]
		if ia.Span.Start != ib.Span.Start {
			return ia.Span.Start < ib.Span.Start
		}
		return idx[a] < idx[b]
	})
	out := fmt.Sprintf("schedule %q: makespan %ds\n", s.Graph.Name, s.Makespan)
	for _, i := range idx {
		it := s.Items[i]
		dev := "-"
		if it.Bound {
			dev = fmt.Sprintf("%s %v", it.Device.Name, it.Device.Size)
		}
		out += fmt.Sprintf("  %-12s %-9s %7s  %s\n", it.Op.Name, it.Op.Kind, it.Span, dev)
	}
	return out
}
