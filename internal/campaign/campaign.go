// Package campaign is the fault-injection campaign engine: it runs
// large numbers of randomized, independent end-to-end trials (place →
// inject faults → recover) across a worker pool and aggregates the
// outcomes into survival statistics.
//
// The engine's contract is determinism at scale. Trial t of a campaign
// seeded with S always executes with the RNG stream TrialRNG(S, t),
// derived by a splitmix64 splitter, never with a stream shared between
// trials — so the campaign's aggregate is bit-identical whether it ran
// on one worker or sixty-four, locally or resumed from a checkpoint
// after a kill. Trials are scheduled in chunks through a lock-free
// cursor, completed trials stream to an append-only JSONL checkpoint,
// and cancellation (context or per-trial timeout) is honoured between
// and — cooperatively — within trials.
//
// The legacy sequential entry points of internal/faultsim predate this
// engine and drew all trials from one shared RNG stream; they are kept
// bit-identical via Config.SharedRNG, which pins the campaign to one
// worker and threads a single stream through the trials in index
// order. New campaigns should never set it.
package campaign

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"runtime/debug"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"dmfb/internal/stats"
	"dmfb/internal/telemetry"
)

// Trial is the per-trial context handed to a TrialFunc.
type Trial struct {
	// Index is the trial number in [0, Config.Trials).
	Index int
	// Seed is the derived per-trial seed, DeriveSeed(campaign seed,
	// Index). Trial functions that seed nested stochastic stages (a
	// full-reconfiguration annealer, say) must derive sub-seeds from it
	// with DeriveSeed rather than inventing arithmetic on the campaign
	// seed.
	Seed int64
	// RNG is the trial's private random stream, already positioned at
	// its start. In SharedRNG mode it is the campaign-wide stream
	// instead (and trials run strictly in index order).
	RNG *rand.Rand
	// Tracer is the campaign's tracer (nil when tracing is disabled)
	// and Span the id of this trial's "campaign.trial" span. Trial
	// functions thread them into nested stages (simulator, recovery
	// ladder) so traces form a campaign→trial→recovery hierarchy.
	Tracer *telemetry.Tracer
	Span   telemetry.SpanID
}

// Outcome is what one trial reports back.
type Outcome struct {
	// Survived records whether the configuration absorbed the injected
	// fault(s).
	Survived bool
	// Value is an optional per-trial measurement (faults absorbed,
	// relocations performed, defects on the die, ...) aggregated into
	// Summary.Values quantiles.
	Value float64
	// Err marks an infrastructure failure (timeout, invalid input) as
	// opposed to a plain non-survival. Erroneous trials count in
	// Summary.Errors and never in Survived.
	Err error
}

// TrialFunc executes one independent trial. It must be safe for
// concurrent invocation (each call owns its Trial.RNG) and should poll
// ctx in long loops so per-trial timeouts and campaign cancellation
// take effect; the engine also enforces both between trials.
type TrialFunc func(ctx context.Context, t Trial) Outcome

// Config parameterises a campaign run.
type Config struct {
	// Name identifies the campaign in checkpoints and summaries.
	Name string
	// Trials is the number of independent trials (required, > 0).
	Trials int
	// Workers sizes the pool; 0 means GOMAXPROCS.
	Workers int
	// Seed is the campaign seed from which every trial stream derives.
	Seed int64
	// TrialTimeout bounds each trial's wall time; 0 disables. A timed
	// out trial is recorded as an error, which makes the aggregate
	// dependent on machine speed — leave timeouts off when
	// bit-reproducibility matters.
	TrialTimeout time.Duration
	// Checkpoint is the JSONL checkpoint path; "" disables
	// checkpointing.
	Checkpoint string
	// Resume replays completed trials from the checkpoint file instead
	// of re-running them. Requires Checkpoint; incompatible with
	// SharedRNG (a shared stream cannot skip trials).
	Resume bool
	// Fingerprint identifies the campaign configuration beyond
	// (Name, Seed, Trials) — typically ConfigFingerprint over the
	// parameters that change what a trial computes (placement seed,
	// fault counts, recovery mode). It is pinned in the checkpoint
	// header, so Resume refuses to replay trials recorded under a
	// different configuration. Empty disables the check against files
	// that predate fingerprints.
	Fingerprint string
	// SharedRNG runs all trials in index order on one worker, sharing
	// a single legacy math/rand stream seeded with Seed. It exists so
	// the pre-engine sequential campaigns in internal/faultsim stay
	// bit-identical; new campaigns should never set it.
	SharedRNG bool
	// Metrics, if non-nil, receives campaign.* counters and the
	// campaign.trial_ms histogram.
	Metrics *telemetry.Registry
	// Tracer, if non-nil, receives a campaign.run span.
	Tracer *telemetry.Tracer
	// Progress, if non-nil, is called after every completed trial with
	// the running completion count. It is called from worker
	// goroutines under a lock; keep it fast.
	Progress func(done, total int)
	// Tracker, if non-nil, receives per-trial outcomes for the live
	// /progress surface (done/total, rate, ETA, Wilson interval,
	// recovery-depth counts). It never affects the Summary.
	Tracker *ProgressTracker
}

// Summary is the deterministic aggregate of a campaign: for a given
// (trial function, Name, Seed, Trials) it is bit-identical at any
// worker count, across checkpoint resumes, and across platforms —
// which is what the determinism golden tests pin. Wall-clock facts
// live in Report, never here.
type Summary struct {
	Name         string         `json:"name,omitempty"`
	Seed         int64          `json:"seed"`
	Trials       int            `json:"trials"`
	Survived     int            `json:"survived"`
	Errors       int            `json:"errors,omitempty"`
	SurvivalRate float64        `json:"survival_rate"`
	Wilson95Lo   float64        `json:"wilson95_lo"`
	Wilson95Hi   float64        `json:"wilson95_hi"`
	Values       *stats.Summary `json:"values,omitempty"`
}

// String renders the summary's headline numbers.
func (s Summary) String() string {
	return fmt.Sprintf("%s: survived %d/%d (%.4f, 95%% CI [%.4f, %.4f], %d errors)",
		s.Name, s.Survived, s.Trials, s.SurvivalRate, s.Wilson95Lo, s.Wilson95Hi, s.Errors)
}

// MarshalDeterministic returns the canonical JSON encoding of the
// summary — the byte string the determinism tests compare across
// worker counts and resumes.
func (s Summary) MarshalDeterministic() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// Report is the full outcome of Run: the deterministic Summary plus
// the run's wall-clock facts, which vary machine to machine.
type Report struct {
	Summary Summary
	// Workers is the realised pool size.
	Workers int
	// Elapsed is the campaign wall time.
	Elapsed time.Duration
	// TrialMS summarises per-trial wall times in milliseconds
	// (executed trials only; zero-valued when every trial was replayed
	// from a checkpoint).
	TrialMS stats.Summary
	// Resumed counts trials replayed from the checkpoint rather than
	// executed.
	Resumed int
}

// trialResult is one slot of the in-memory result table.
type trialResult struct {
	done     bool
	survived bool
	value    float64
	errMsg   string
}

// Run executes the campaign and returns its report. The error is
// non-nil only for infrastructure failures: invalid configuration,
// checkpoint I/O, or cancellation before every trial completed (the
// partial Report still describes the completed trials, and the
// checkpoint — if any — holds them for a later Resume).
func Run(ctx context.Context, cfg Config, fn TrialFunc) (Report, error) {
	if fn == nil {
		return Report{}, fmt.Errorf("campaign: nil trial function")
	}
	if cfg.Trials <= 0 {
		return Report{}, fmt.Errorf("campaign: need at least one trial, got %d", cfg.Trials)
	}
	if cfg.Resume && cfg.Checkpoint == "" {
		return Report{}, fmt.Errorf("campaign: Resume requires a Checkpoint path")
	}
	if cfg.Resume && cfg.SharedRNG {
		return Report{}, fmt.Errorf("campaign: SharedRNG campaigns cannot resume (the stream cannot skip trials)")
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if cfg.SharedRNG || workers > cfg.Trials {
		if cfg.SharedRNG {
			workers = 1
		} else {
			workers = cfg.Trials
		}
	}

	start := time.Now()
	span := cfg.Tracer.Start("campaign.run")

	results := make([]trialResult, cfg.Trials)
	resumed := 0
	hdr := checkpointHeader{V: checkpointVersion, Campaign: cfg.Name, Seed: cfg.Seed,
		Trials: cfg.Trials, Config: cfg.Fingerprint}
	if cfg.Resume {
		done, err := loadCheckpoint(cfg.Checkpoint, hdr)
		if err != nil {
			return Report{}, err
		}
		for idx, line := range done {
			results[idx] = trialResult{done: true, survived: line.Survived, value: line.Value, errMsg: line.Err}
			resumed++
		}
		cfg.Tracker.noteResumed(resumed)
	}
	var cw *checkpointWriter
	if cfg.Checkpoint != "" {
		var err error
		if cw, err = newCheckpointWriter(cfg.Checkpoint, hdr); err != nil {
			return Report{}, err
		}
		defer cw.close()
	}

	var (
		mu        sync.Mutex
		completed = resumed
		durations []float64
		writeErr  error
	)
	finish := func(idx int, out Outcome, elapsed time.Duration) {
		errMsg := ""
		if out.Err != nil {
			errMsg = out.Err.Error()
		}
		line := checkpointLine{Trial: idx, Survived: out.Survived && out.Err == nil, Value: out.Value, Err: errMsg}
		var werr error
		if cw != nil {
			werr = cw.record(line)
		}
		ms := float64(elapsed.Microseconds()) / 1000
		cfg.Metrics.Counter("campaign.trials").Inc()
		if line.Survived {
			cfg.Metrics.Counter("campaign.trials_survived").Inc()
		}
		if errMsg != "" {
			cfg.Metrics.Counter("campaign.trial_errors").Inc()
		}
		cfg.Metrics.Histogram("campaign.trial_ms", telemetry.LatencyBuckets...).Observe(ms)
		cfg.Tracker.observe(line.Survived, errMsg != "", line.Value)

		mu.Lock()
		results[idx] = trialResult{done: true, survived: line.Survived, value: line.Value, errMsg: errMsg}
		completed++
		durations = append(durations, ms)
		if werr != nil && writeErr == nil {
			writeErr = werr
		}
		if cfg.Progress != nil {
			cfg.Progress(completed, cfg.Trials)
		}
		mu.Unlock()
	}

	safeFn := panicSafe(cfg.Name, fn)
	runOne := func(ctx context.Context, t Trial) {
		tsp := cfg.Tracer.StartChild("campaign.trial", span.ID())
		t.Tracer = cfg.Tracer
		t.Span = tsp.ID()
		t0 := time.Now()
		out := execTrial(ctx, cfg.TrialTimeout, safeFn, t)
		if cerr := ctx.Err(); cerr != nil && errors.Is(out.Err, cerr) {
			// The campaign was cancelled while this trial was in
			// flight: the outcome reflects the kill, not the trial.
			// Leave the slot incomplete (and out of the checkpoint) so
			// a resume re-runs the trial instead of replaying a
			// phantom error — the resumed summary must be
			// bit-identical to an uninterrupted run.
			tsp.End(telemetry.Fields{"trial": t.Index, "cancelled": true})
			return
		}
		tsp.End(telemetry.Fields{
			"trial":    t.Index,
			"survived": out.Survived && out.Err == nil,
			"value":    out.Value,
			"errored":  out.Err != nil,
		})
		finish(t.Index, out, time.Since(t0))
	}

	if cfg.SharedRNG {
		// Legacy mode: one worker, one stream, strict index order.
		rng := rand.New(rand.NewSource(cfg.Seed))
		for i := 0; i < cfg.Trials && ctx.Err() == nil; i++ {
			runOne(ctx, Trial{Index: i, Seed: cfg.Seed, RNG: rng})
		}
	} else {
		// Chunked dispatch: workers claim contiguous trial ranges from
		// an atomic cursor, so per-trial scheduling overhead stays far
		// below the cost of a trial even for microsecond-scale trials.
		chunk := cfg.Trials / (workers * 8)
		if chunk < 1 {
			chunk = 1
		}
		if chunk > 256 {
			chunk = 256
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					lo := int(cursor.Add(int64(chunk))) - chunk
					if lo >= cfg.Trials {
						return
					}
					hi := lo + chunk
					if hi > cfg.Trials {
						hi = cfg.Trials
					}
					for i := lo; i < hi; i++ {
						if results[i].done { // replayed from checkpoint
							continue
						}
						if ctx.Err() != nil {
							return
						}
						runOne(ctx, Trial{Index: i, Seed: DeriveSeed(cfg.Seed, uint64(i)), RNG: TrialRNG(cfg.Seed, i)})
					}
				}
			}()
		}
		wg.Wait()
	}

	rep := Report{Workers: workers, Elapsed: time.Since(start), Resumed: resumed}
	if len(durations) > 0 {
		rep.TrialMS = stats.Describe(durations)
	}
	rep.Summary = summarize(cfg, results)
	span.End(telemetry.Fields{
		"campaign": cfg.Name,
		"trials":   rep.Summary.Trials,
		"survived": rep.Summary.Survived,
		"workers":  workers,
		"resumed":  resumed,
	})
	if writeErr != nil {
		return rep, writeErr
	}
	if err := ctx.Err(); err != nil {
		return rep, fmt.Errorf("campaign: interrupted after %d/%d trials: %w",
			rep.Summary.Trials, cfg.Trials, err)
	}
	return rep, nil
}

// panicSafe wraps a trial function so a panicking trial is recorded as
// an erroneous outcome — campaign name, trial index and seed, panic
// value and stack — instead of killing the whole campaign (and, under
// a per-trial timeout, the worker goroutine with it). The panic is
// a deterministic property of the trial, so the summary stays
// bit-identical at any worker count.
func panicSafe(name string, fn TrialFunc) TrialFunc {
	return func(ctx context.Context, t Trial) (out Outcome) {
		defer func() {
			if r := recover(); r != nil {
				out = Outcome{Err: fmt.Errorf("campaign %q: trial %d (seed %d) panicked: %v\n%s",
					name, t.Index, t.Seed, r, debug.Stack())}
			}
		}()
		return fn(ctx, t)
	}
}

// execTrial runs one trial under the per-trial timeout. Timeouts are
// enforced both cooperatively (the trial sees an expiring ctx) and
// preemptively: a trial that overruns is abandoned to finish in the
// background and recorded as a timeout error.
func execTrial(ctx context.Context, timeout time.Duration, fn TrialFunc, t Trial) Outcome {
	if timeout <= 0 {
		return fn(ctx, t)
	}
	tctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	ch := make(chan Outcome, 1)
	go func() { ch <- fn(tctx, t) }()
	select {
	case out := <-ch:
		if tctx.Err() != nil && ctx.Err() == nil {
			return Outcome{Err: fmt.Errorf("campaign: trial %d timed out after %v", t.Index, timeout)}
		}
		return out
	case <-tctx.Done():
		if ctx.Err() != nil {
			return Outcome{Err: ctx.Err()}
		}
		return Outcome{Err: fmt.Errorf("campaign: trial %d timed out after %v", t.Index, timeout)}
	}
}

// summarize folds the result table, in trial-index order, into the
// deterministic Summary. Incomplete trials (cancelled run) are
// excluded from every aggregate.
func summarize(cfg Config, results []trialResult) Summary {
	rs := make([]TrialResult, 0, len(results))
	for i := range results {
		r := &results[i]
		if !r.done {
			continue
		}
		rs = append(rs, TrialResult{Trial: i, Survived: r.survived, Value: r.value, Err: r.errMsg})
	}
	return Summarize(cfg.Name, cfg.Seed, rs)
}

// Summarize is the canonical merge: it folds completed-trial results —
// from any number of workers, machines, or checkpoint replays, in any
// order — into the deterministic Summary. It sorts by trial index
// before folding (ignoring duplicate records for a trial, which are
// identical by construction for a deterministic trial function), so
// for a fixed result set the output is byte-identical to the
// single-process engine's: Run itself aggregates through this
// function. This is the spine of the distributed dispatcher's
// byte-identity guarantee.
func Summarize(name string, seed int64, results []TrialResult) Summary {
	sorted := append([]TrialResult(nil), results...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Trial < sorted[j].Trial })
	s := Summary{Name: name, Seed: seed}
	var values []float64
	prev := -1
	for _, r := range sorted {
		if r.Trial == prev {
			continue
		}
		prev = r.Trial
		s.Trials++
		switch {
		case r.Err != "":
			s.Errors++
		case r.Survived:
			s.Survived++
		}
		values = append(values, r.Value)
	}
	if s.Trials > 0 {
		s.SurvivalRate = float64(s.Survived) / float64(s.Trials)
		s.Wilson95Lo, s.Wilson95Hi = stats.Wilson95(s.Survived, s.Trials)
		vs := stats.Describe(values)
		s.Values = &vs
	}
	return s
}

// RunRange executes the contiguous trial range [lo, hi) of the
// campaign described by cfg and returns the completed trials in index
// order — the worker-side half of a distributed campaign. Because
// every trial's RNG stream derives only from (cfg.Seed, index), a
// range runs identically wherever it executes; merging the ranges of
// any partition of [0, cfg.Trials) through Summarize reproduces
// Run's summary byte for byte.
//
// Checkpointing, Resume and SharedRNG are whole-campaign concerns and
// are rejected here; Metrics, Tracer, Tracker, Progress and
// TrialTimeout apply as in Run. On cancellation the completed prefix
// of results is returned along with the context error — partial
// results are valid and may still be reported upstream.
func RunRange(ctx context.Context, cfg Config, fn TrialFunc, lo, hi int) ([]TrialResult, error) {
	if fn == nil {
		return nil, fmt.Errorf("campaign: nil trial function")
	}
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("campaign: need at least one trial, got %d", cfg.Trials)
	}
	if lo < 0 || hi > cfg.Trials || lo >= hi {
		return nil, fmt.Errorf("campaign: range [%d,%d) outside campaign of %d trials", lo, hi, cfg.Trials)
	}
	if cfg.SharedRNG {
		return nil, fmt.Errorf("campaign: shared-stream campaigns cannot run as ranges")
	}
	if cfg.Checkpoint != "" || cfg.Resume {
		return nil, fmt.Errorf("campaign: RunRange does not checkpoint; record results upstream")
	}
	n := hi - lo
	workers := cfg.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	span := cfg.Tracer.Start("campaign.range")
	type slot struct {
		done bool
		res  TrialResult
	}
	results := make([]slot, n)
	var mu sync.Mutex
	safeFn := panicSafe(cfg.Name, fn)
	record := func(out Outcome, t Trial) {
		errMsg := ""
		if out.Err != nil {
			errMsg = out.Err.Error()
		}
		res := TrialResult{Trial: t.Index, Survived: out.Survived && out.Err == nil, Value: out.Value, Err: errMsg}
		cfg.Metrics.Counter("campaign.trials").Inc()
		if res.Survived {
			cfg.Metrics.Counter("campaign.trials_survived").Inc()
		}
		if errMsg != "" {
			cfg.Metrics.Counter("campaign.trial_errors").Inc()
		}
		cfg.Tracker.observe(res.Survived, errMsg != "", res.Value)
		mu.Lock()
		results[t.Index-lo] = slot{done: true, res: res}
		mu.Unlock()
	}

	chunk := n / (workers * 8)
	if chunk < 1 {
		chunk = 1
	}
	if chunk > 256 {
		chunk = 256
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				o := int(cursor.Add(int64(chunk))) - chunk
				if o >= n {
					return
				}
				end := o + chunk
				if end > n {
					end = n
				}
				for i := lo + o; i < lo+end; i++ {
					if ctx.Err() != nil {
						return
					}
					t := Trial{Index: i, Seed: DeriveSeed(cfg.Seed, uint64(i)), RNG: TrialRNG(cfg.Seed, i)}
					tsp := cfg.Tracer.StartChild("campaign.trial", span.ID())
					t.Tracer = cfg.Tracer
					t.Span = tsp.ID()
					out := execTrial(ctx, cfg.TrialTimeout, safeFn, t)
					if cerr := ctx.Err(); cerr != nil && errors.Is(out.Err, cerr) {
						// Cancelled in flight: the outcome reflects the
						// kill, not the trial — leave the slot empty so
						// the range is re-runnable without a phantom
						// error, exactly as Run does.
						tsp.End(telemetry.Fields{"trial": i, "cancelled": true})
						return
					}
					tsp.End(telemetry.Fields{
						"trial":    i,
						"survived": out.Survived && out.Err == nil,
						"value":    out.Value,
						"errored":  out.Err != nil,
					})
					record(out, t)
				}
			}
		}()
	}
	wg.Wait()

	out := make([]TrialResult, 0, n)
	for i := range results {
		if results[i].done {
			out = append(out, results[i].res)
		}
	}
	span.End(telemetry.Fields{"campaign": cfg.Name, "lo": lo, "hi": hi, "completed": len(out)})
	if err := ctx.Err(); err != nil {
		return out, fmt.Errorf("campaign: range [%d,%d) interrupted after %d trials: %w", lo, hi, len(out), err)
	}
	return out, nil
}
