package campaign

import "testing"

func TestDeriveSeedDistinctStreams(t *testing.T) {
	seen := make(map[int64]uint64)
	for s := uint64(0); s < 10000; s++ {
		d := DeriveSeed(42, s)
		if prev, dup := seen[d]; dup {
			t.Fatalf("streams %d and %d derive the same seed %d", prev, s, d)
		}
		seen[d] = s
	}
}

func TestDeriveSeedDependsOnCampaignSeed(t *testing.T) {
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("different campaign seeds derived the same stream seed")
	}
}

func TestTrialRNGDeterministicAndIndependent(t *testing.T) {
	a := TrialRNG(7, 3)
	b := TrialRNG(7, 3)
	c := TrialRNG(7, 4)
	same, diff := true, true
	for i := 0; i < 64; i++ {
		x, y, z := a.Int63(), b.Int63(), c.Int63()
		if x != y {
			same = false
		}
		if x != z {
			diff = false
		}
	}
	if !same {
		t.Error("same (seed, trial) produced different streams")
	}
	if diff {
		t.Error("different trials produced identical streams")
	}
}

func TestTrialRNGUniformity(t *testing.T) {
	// Coarse sanity: Intn(2) over many per-trial streams is balanced.
	ones := 0
	const n = 20000
	for i := 0; i < n; i++ {
		ones += TrialRNG(1, i).Intn(2)
	}
	if ones < n/2-n/10 || ones > n/2+n/10 {
		t.Errorf("first draw of %d streams gave %d ones; splitter is biased", n, ones)
	}
}

func TestSplitSourceSeedResets(t *testing.T) {
	s := &splitSource{state: 123}
	first := s.Uint64()
	s.Seed(123)
	if got := s.Uint64(); got != first {
		t.Errorf("Seed did not reset the stream: %d != %d", got, first)
	}
}
