package campaign

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dmfb/internal/telemetry"
)

// coinTrial is a deterministic pseudo-workload: survival and value are
// pure functions of the trial's RNG stream.
func coinTrial(_ context.Context, t Trial) Outcome {
	v := t.RNG.Intn(100)
	return Outcome{Survived: v < 70, Value: float64(v)}
}

func TestRunRejectsBadConfig(t *testing.T) {
	ctx := context.Background()
	if _, err := Run(ctx, Config{Trials: 10}, nil); err == nil {
		t.Error("nil trial function accepted")
	}
	if _, err := Run(ctx, Config{Trials: 0}, coinTrial); err == nil {
		t.Error("zero trials accepted")
	}
	if _, err := Run(ctx, Config{Trials: 1, Resume: true}, coinTrial); err == nil {
		t.Error("Resume without Checkpoint accepted")
	}
	if _, err := Run(ctx, Config{Trials: 1, Resume: true, Checkpoint: "x", SharedRNG: true}, coinTrial); err == nil {
		t.Error("Resume with SharedRNG accepted")
	}
}

func TestRunAggregates(t *testing.T) {
	rep, err := Run(context.Background(), Config{Name: "coin", Trials: 1000, Seed: 5}, coinTrial)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.Trials != 1000 || s.Errors != 0 {
		t.Fatalf("summary = %+v", s)
	}
	if s.SurvivalRate < 0.6 || s.SurvivalRate > 0.8 {
		t.Errorf("survival %.3f far from 0.7", s.SurvivalRate)
	}
	if !(s.Wilson95Lo < s.SurvivalRate && s.SurvivalRate < s.Wilson95Hi) {
		t.Errorf("rate %.3f outside its own CI [%.3f, %.3f]", s.SurvivalRate, s.Wilson95Lo, s.Wilson95Hi)
	}
	if s.Values == nil || s.Values.N != 1000 || s.Values.Min < 0 || s.Values.Max > 99 {
		t.Errorf("values summary = %+v", s.Values)
	}
	if rep.Workers != runtime.GOMAXPROCS(0) && rep.Workers != 1000 {
		t.Errorf("workers = %d", rep.Workers)
	}
	if rep.TrialMS.N != 1000 {
		t.Errorf("trial timing over %d trials, want 1000", rep.TrialMS.N)
	}
	if !strings.Contains(s.String(), "survived") {
		t.Errorf("String = %q", s.String())
	}
}

func TestRunErrorsCounted(t *testing.T) {
	rep, err := Run(context.Background(), Config{Trials: 10, Seed: 1},
		func(_ context.Context, t Trial) Outcome {
			if t.Index%2 == 0 {
				return Outcome{Survived: true, Err: errors.New("broken rig")}
			}
			return Outcome{Survived: true}
		})
	if err != nil {
		t.Fatal(err)
	}
	// An erroneous trial never counts as survived, even if the trial
	// function claimed both.
	if rep.Summary.Errors != 5 || rep.Summary.Survived != 5 {
		t.Errorf("errors=%d survived=%d, want 5/5", rep.Summary.Errors, rep.Summary.Survived)
	}
}

func TestSharedRNGModeIsSequential(t *testing.T) {
	var maxInFlight, inFlight, order atomic.Int32
	lastIdx := -1
	ok := true
	rep, err := Run(context.Background(), Config{Trials: 64, Seed: 3, SharedRNG: true, Workers: 8},
		func(_ context.Context, tr Trial) Outcome {
			if n := inFlight.Add(1); n > maxInFlight.Load() {
				maxInFlight.Store(n)
			}
			if tr.Index != lastIdx+1 {
				ok = false
			}
			lastIdx = tr.Index
			order.Add(1)
			inFlight.Add(-1)
			return Outcome{Survived: tr.RNG.Intn(2) == 0}
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Workers != 1 || maxInFlight.Load() != 1 || !ok {
		t.Errorf("shared mode ran concurrently: workers=%d maxInFlight=%d inOrder=%v",
			rep.Workers, maxInFlight.Load(), ok)
	}
}

func TestPerTrialTimeout(t *testing.T) {
	rep, err := Run(context.Background(), Config{Trials: 8, Seed: 1, TrialTimeout: 20 * time.Millisecond},
		func(ctx context.Context, tr Trial) Outcome {
			if tr.Index == 3 {
				<-ctx.Done() // a hung trial, released by the timeout
				time.Sleep(time.Millisecond)
				return Outcome{Survived: true}
			}
			return Outcome{Survived: true}
		})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Errors != 1 || rep.Summary.Survived != 7 {
		t.Errorf("errors=%d survived=%d, want 1 timeout and 7 survivals",
			rep.Summary.Errors, rep.Summary.Survived)
	}
}

func TestCancellationStopsEarlyAndKeepsCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "c.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	rep, err := Run(ctx, Config{Name: "stop", Trials: 10000, Seed: 2, Workers: 2, Checkpoint: ckpt,
		Progress: func(d, total int) {
			if done.Add(1) == 50 {
				cancel()
			}
		}}, coinTrial)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep.Summary.Trials >= 10000 || rep.Summary.Trials < 50 {
		t.Errorf("completed %d trials, want partial >= 50", rep.Summary.Trials)
	}
	data, rerr := os.ReadFile(ckpt)
	if rerr != nil {
		t.Fatal(rerr)
	}
	lines := strings.Count(string(data), "\n")
	if lines != rep.Summary.Trials+1 { // header + one line per completed trial
		t.Errorf("checkpoint has %d lines for %d completed trials", lines, rep.Summary.Trials)
	}
}

func TestResumeCompletesPartialCampaign(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "c.jsonl")
	full, err := Run(context.Background(), Config{Name: "r", Trials: 300, Seed: 9}, coinTrial)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	var done atomic.Int32
	_, err = Run(ctx, Config{Name: "r", Trials: 300, Seed: 9, Workers: 2, Checkpoint: ckpt,
		Progress: func(d, total int) {
			if done.Add(1) == 100 {
				cancel()
			}
		}}, coinTrial)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected cancellation, got %v", err)
	}

	resumed, err := Run(context.Background(),
		Config{Name: "r", Trials: 300, Seed: 9, Checkpoint: ckpt, Resume: true}, coinTrial)
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Resumed < 100 {
		t.Errorf("resumed only %d trials from checkpoint", resumed.Resumed)
	}
	a, _ := full.Summary.MarshalDeterministic()
	b, _ := resumed.Summary.MarshalDeterministic()
	if string(a) != string(b) {
		t.Errorf("resumed summary differs from uninterrupted run:\n%s\nvs\n%s", b, a)
	}
}

func TestResumeRefusesForeignCheckpoint(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "c.jsonl")
	if _, err := Run(context.Background(),
		Config{Name: "a", Trials: 10, Seed: 1, Checkpoint: ckpt}, coinTrial); err != nil {
		t.Fatal(err)
	}
	_, err := Run(context.Background(),
		Config{Name: "b", Trials: 10, Seed: 1, Checkpoint: ckpt, Resume: true}, coinTrial)
	if err == nil || !strings.Contains(err.Error(), "refusing to resume") {
		t.Errorf("foreign checkpoint accepted: %v", err)
	}
	_, err = Run(context.Background(),
		Config{Name: "a", Trials: 20, Seed: 1, Checkpoint: ckpt, Resume: true}, coinTrial)
	if err == nil {
		t.Error("trial-count mismatch accepted")
	}
}

func TestResumeToleratesTornTail(t *testing.T) {
	ckpt := filepath.Join(t.TempDir(), "c.jsonl")
	if _, err := Run(context.Background(),
		Config{Name: "torn", Trials: 20, Seed: 4, Checkpoint: ckpt}, coinTrial); err != nil {
		t.Fatal(err)
	}
	// Simulate a kill mid-write: truncate the last record in half.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(ckpt, data[:len(data)-9], 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(context.Background(),
		Config{Name: "torn", Trials: 20, Seed: 4, Checkpoint: ckpt, Resume: true}, coinTrial)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Summary.Trials != 20 {
		t.Errorf("resume after torn tail completed %d/20 trials", rep.Summary.Trials)
	}
}

func TestMetricsWired(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, err := Run(context.Background(),
		Config{Trials: 50, Seed: 1, Metrics: reg}, coinTrial); err != nil {
		t.Fatal(err)
	}
	if n := reg.Counter("campaign.trials").Value(); n != 50 {
		t.Errorf("campaign.trials = %d, want 50", n)
	}
	if n := reg.Histogram("campaign.trial_ms").Count(); n != 50 {
		t.Errorf("campaign.trial_ms count = %d, want 50", n)
	}
	surv := reg.Counter("campaign.trials_survived").Value()
	if surv <= 0 || surv > 50 {
		t.Errorf("campaign.trials_survived = %d", surv)
	}
}

func TestProgressMonotonic(t *testing.T) {
	var last atomic.Int32
	mono := atomic.Bool{}
	mono.Store(true)
	_, err := Run(context.Background(), Config{Trials: 200, Seed: 1,
		Progress: func(done, total int) {
			if total != 200 {
				mono.Store(false)
			}
			if int32(done) <= last.Load() {
				mono.Store(false)
			}
			last.Store(int32(done))
		}}, coinTrial)
	if err != nil {
		t.Fatal(err)
	}
	if !mono.Load() || last.Load() != 200 {
		t.Errorf("progress not monotonic to completion: last=%d", last.Load())
	}
}

func TestValuesQuantilesDeterministic(t *testing.T) {
	run := func(workers int) string {
		rep, err := Run(context.Background(), Config{Name: "q", Trials: 400, Seed: 11, Workers: workers},
			func(_ context.Context, tr Trial) Outcome {
				return Outcome{Survived: true, Value: float64(tr.RNG.Intn(1000))}
			})
		if err != nil {
			t.Fatal(err)
		}
		b, _ := rep.Summary.MarshalDeterministic()
		return string(b)
	}
	if run(1) != run(7) {
		t.Error("values quantiles depend on worker count")
	}
}

func TestExampleUsage(t *testing.T) {
	// The doc-comment contract in one place: trial seeds derive from
	// the campaign seed and are observable inside the trial.
	_, err := Run(context.Background(), Config{Trials: 3, Seed: 21},
		func(_ context.Context, tr Trial) Outcome {
			want := DeriveSeed(21, uint64(tr.Index))
			if tr.Seed != want {
				return Outcome{Err: fmt.Errorf("trial seed %d, want %d", tr.Seed, want)}
			}
			return Outcome{Survived: true}
		})
	if err != nil {
		t.Fatal(err)
	}
}
