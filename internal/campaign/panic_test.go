package campaign

import (
	"context"
	"strings"
	"testing"
)

// panickyTrial survives even trials and panics on every third one —
// a deterministic per-trial property, exactly what the panic-safety
// contract requires for summaries to stay worker-count independent.
func panickyTrial(_ context.Context, t Trial) Outcome {
	if t.Index%3 == 0 {
		panic("deliberate test panic")
	}
	return Outcome{Survived: t.Index%2 == 0, Value: float64(t.Index)}
}

func TestPanickingTrialRecordedAsError(t *testing.T) {
	rep, err := Run(context.Background(), Config{
		Name: "panic-regression", Trials: 30, Workers: 4, Seed: 7,
	}, panickyTrial)
	if err != nil {
		t.Fatalf("campaign must survive panicking trials, got %v", err)
	}
	s := rep.Summary
	if s.Trials != 30 {
		t.Fatalf("trials = %d, want 30", s.Trials)
	}
	if want := 10; s.Errors != want { // indices 0,3,...,27
		t.Fatalf("errors = %d, want %d", s.Errors, want)
	}
	// Survivors: even, not divisible by 3 -> 2,4,8,10,14,16,20,22,26,28.
	if want := 10; s.Survived != want {
		t.Fatalf("survived = %d, want %d", s.Survived, want)
	}
}

func TestPanicMessageCarriesIdentityAndStack(t *testing.T) {
	ckpt := t.TempDir() + "/panic.jsonl"
	_, err := Run(context.Background(), Config{
		Name: "panic-id", Trials: 1, Workers: 1, Seed: 42, Checkpoint: ckpt,
	}, func(_ context.Context, t Trial) Outcome { panic("boom") })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lines, err := loadCheckpoint(ckpt, checkpointHeader{
		V: checkpointVersion, Campaign: "panic-id", Seed: 42, Trials: 1,
	})
	if err != nil {
		t.Fatalf("load checkpoint: %v", err)
	}
	msg := lines[0].Err
	for _, want := range []string{`campaign "panic-id"`, "trial 0", "boom", "goroutine"} {
		if !strings.Contains(msg, want) {
			t.Errorf("recorded panic %q missing %q", msg, want)
		}
	}
}

func TestPanicSummaryIdenticalAcrossWorkerCounts(t *testing.T) {
	var blobs [][]byte
	for _, w := range []int{1, 4, 16} {
		rep, err := Run(context.Background(), Config{
			Name: "panic-workers", Trials: 64, Workers: w, Seed: 11,
		}, panickyTrial)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		b, err := rep.Summary.MarshalDeterministic()
		if err != nil {
			t.Fatal(err)
		}
		blobs = append(blobs, b)
	}
	for i := 1; i < len(blobs); i++ {
		if string(blobs[i]) != string(blobs[0]) {
			t.Fatalf("summary differs between worker counts:\n%s\nvs\n%s", blobs[0], blobs[i])
		}
	}
}
