package campaign

import (
	"context"
	"encoding/json"
	"math"
	"testing"
	"time"
)

func TestProgressTrackerCounts(t *testing.T) {
	clock := time.Duration(0)
	p := newProgressTracker("assay", 10, func() time.Duration { return clock })
	p.noteResumed(2)
	clock = 100 * time.Millisecond
	p.observe(true, false, 0)
	p.observe(true, false, 3)
	p.observe(false, true, 0)
	p.observe(false, false, 99) // depth clamps into the tail bucket

	s := p.Snapshot()
	if s.Campaign != "assay" || s.Done != 6 || s.Total != 10 || s.Resumed != 2 {
		t.Errorf("snapshot counts = %+v", s)
	}
	if s.Survived != 2 || s.Errors != 1 {
		t.Errorf("survived/errors = %d/%d, want 2/1", s.Survived, s.Errors)
	}
	if s.SurvivalRate != 2.0/6 {
		t.Errorf("survival rate = %v", s.SurvivalRate)
	}
	if s.Wilson95Lo <= 0 && s.Wilson95Hi <= s.Wilson95Lo {
		t.Errorf("wilson interval [%v,%v]", s.Wilson95Lo, s.Wilson95Hi)
	}
	// 4 executed trials in 100 ms -> 40 trials/s; 4 remaining -> 100 ms.
	if math.Abs(s.TrialsPerSec-40) > 1e-9 {
		t.Errorf("rate = %v trials/s, want 40", s.TrialsPerSec)
	}
	if math.Abs(s.ETAMS-100) > 1e-9 {
		t.Errorf("eta = %v ms, want 100", s.ETAMS)
	}
	want := []int{2, 0, 0, 1, 0, 0, 0, 0, 1}
	if len(s.DepthCounts) != len(want) {
		t.Fatalf("depth counts = %v, want %v", s.DepthCounts, want)
	}
	for i := range want {
		if s.DepthCounts[i] != want[i] {
			t.Fatalf("depth counts = %v, want %v", s.DepthCounts, want)
		}
	}
}

func TestProgressTrackerNilSafe(t *testing.T) {
	var p *ProgressTracker
	p.noteResumed(3)
	p.observe(true, false, 0)
	if s := p.Snapshot(); s.Done != 0 {
		t.Errorf("nil tracker snapshot = %+v", s)
	}
}

func TestProgressTrackerMarshalsCompact(t *testing.T) {
	p := NewProgressTracker("x", 4)
	b, err := json.Marshal(p.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for _, absent := range []string{"resumed", "errors", "depth_counts"} {
		if string(b) != "" && json.Valid(b) && containsKey(b, absent) {
			t.Errorf("zero snapshot should omit %q: %s", absent, b)
		}
	}
}

func containsKey(b []byte, key string) bool {
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	_, ok := m[key]
	return ok
}

// TestProgressTrackerETAConverges runs a real (tiny-trial) campaign
// and checks mid-run ETA + elapsed stays within 20% of the actual
// completion time once half the trials are in — the acceptance bar
// for the /progress endpoint.
func TestProgressTrackerETAConverges(t *testing.T) {
	const trials = 512
	tracker := NewProgressTracker("eta", trials)
	var predicted float64 // eta+elapsed captured at ~50% completion
	cfg := Config{
		Name:    "eta",
		Trials:  trials,
		Workers: 4,
		Seed:    11,
		Tracker: tracker,
		Progress: func(done, total int) {
			if predicted == 0 && done >= total/2 {
				s := tracker.Snapshot()
				predicted = s.ElapsedMS + s.ETAMS
			}
		},
	}
	start := time.Now()
	_, err := Run(context.Background(), cfg, func(_ context.Context, tr Trial) Outcome {
		// ~200 µs of deterministic busywork per trial.
		x := tr.Seed
		for i := 0; i < 20000; i++ {
			x = x*6364136223846793005 + 1442695040888963407
		}
		return Outcome{Survived: x%2 == 0}
	})
	if err != nil {
		t.Fatal(err)
	}
	actual := float64(time.Since(start).Microseconds()) / 1000
	if predicted == 0 {
		t.Fatal("progress callback never saw 50% completion")
	}
	if ratio := predicted / actual; ratio < 0.8 || ratio > 1.2 {
		t.Errorf("predicted completion %0.1f ms vs actual %0.1f ms (ratio %.2f), want within 20%%",
			predicted, actual, ratio)
	}
	s := tracker.Snapshot()
	if s.Done != trials || s.ETAMS != 0 {
		t.Errorf("final snapshot done=%d eta=%v, want %d/0", s.Done, s.ETAMS, trials)
	}
}
