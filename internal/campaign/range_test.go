package campaign

import (
	"context"
	"errors"
	"math/rand"
	"testing"
)

// rangeTrialFn is a deterministic-but-messy trial function: outcomes
// depend only on the trial's private RNG stream, with survivals,
// values and occasional errors mixed in, so summary byte-identity
// across chunkings exercises every aggregation path (counters, Wilson
// interval, values quantiles and their float fold order).
func rangeTrialFn(_ context.Context, t Trial) Outcome {
	v := t.RNG.Float64()
	out := Outcome{
		Survived: v < 0.7,
		Value:    float64(t.RNG.Intn(7)),
	}
	if t.RNG.Float64() < 0.05 {
		out.Err = errors.New("synthetic infrastructure failure")
		out.Survived = false
	}
	return out
}

// runWhole runs the campaign single-process and returns its summary's
// deterministic bytes — the reference every chunking must reproduce.
func runWhole(t *testing.T, cfg Config) []byte {
	t.Helper()
	rep, err := Run(context.Background(), cfg, rangeTrialFn)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	raw, err := rep.Summary.MarshalDeterministic()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return raw
}

// mergeChunks runs the given [lo,hi) chunks through RunRange in the
// order supplied and merges with Summarize.
func mergeChunks(t *testing.T, cfg Config, chunks [][2]int) []byte {
	t.Helper()
	var all []TrialResult
	for _, c := range chunks {
		res, err := RunRange(context.Background(), cfg, rangeTrialFn, c[0], c[1])
		if err != nil {
			t.Fatalf("RunRange[%d,%d): %v", c[0], c[1], err)
		}
		all = append(all, res...)
	}
	sum := Summarize(cfg.Name, cfg.Seed, all)
	raw, err := sum.MarshalDeterministic()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return raw
}

// chunkings cuts [0,n) into runs of width <= chunk.
func chunking(n, chunk int) [][2]int {
	var out [][2]int
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		out = append(out, [2]int{lo, hi})
	}
	return out
}

func TestRunRangeFullRangeMatchesRun(t *testing.T) {
	cfg := Config{Name: "range-full", Trials: 200, Seed: 42, Workers: 4}
	want := runWhole(t, cfg)
	got := mergeChunks(t, cfg, [][2]int{{0, 200}})
	if string(got) != string(want) {
		t.Errorf("full-range summary differs from Run:\n got %s\nwant %s", got, want)
	}
}

// TestChunkMergeProperty is the dispatcher's byte-identity argument as
// a property test: for random campaign seeds and random chunk sizes —
// with the chunks executed in a random order, as a fleet of workers
// would — merging the per-chunk results always reproduces the
// single-process summary byte for byte.
func TestChunkMergeProperty(t *testing.T) {
	const trials = 157 // awkward non-multiple of any chunk size
	meta := rand.New(rand.NewSource(7))
	for round := 0; round < 12; round++ {
		seed := meta.Int63n(1 << 30)
		chunk := 1 + meta.Intn(trials+10) // occasionally one chunk covers everything
		cfg := Config{Name: "range-prop", Trials: trials, Seed: seed, Workers: 3}
		want := runWhole(t, cfg)
		chunks := chunking(trials, chunk)
		meta.Shuffle(len(chunks), func(i, j int) { chunks[i], chunks[j] = chunks[j], chunks[i] })
		got := mergeChunks(t, cfg, chunks)
		if string(got) != string(want) {
			t.Fatalf("seed %d chunk %d: merged summary differs\n got %s\nwant %s",
				seed, chunk, got, want)
		}
	}
}

// TestChunkMergeDuplicates checks the dispatcher's idempotence rule:
// a chunk reported twice (an expired lease whose worker kept going)
// changes nothing, because Summarize keeps the first result per index.
func TestChunkMergeDuplicates(t *testing.T) {
	cfg := Config{Name: "range-dup", Trials: 96, Seed: 9, Workers: 2}
	want := runWhole(t, cfg)
	chunks := chunking(96, 32)
	chunks = append(chunks, chunks[1]) // chunk [32,64) reported twice
	got := mergeChunks(t, cfg, chunks)
	if string(got) != string(want) {
		t.Errorf("duplicate chunk changed the summary:\n got %s\nwant %s", got, want)
	}
}

func TestRunRangeRejects(t *testing.T) {
	ctx := context.Background()
	base := Config{Name: "r", Trials: 10, Seed: 1}
	cases := []struct {
		name   string
		cfg    Config
		lo, hi int
	}{
		{"empty range", base, 5, 5},
		{"inverted range", base, 6, 2},
		{"beyond trials", base, 0, 11},
		{"negative lo", base, -1, 4},
		{"shared rng", Config{Name: "r", Trials: 10, Seed: 1, SharedRNG: true}, 0, 10},
		{"checkpoint", Config{Name: "r", Trials: 10, Seed: 1, Checkpoint: "x.jsonl"}, 0, 10},
	}
	for _, tc := range cases {
		if _, err := RunRange(ctx, tc.cfg, rangeTrialFn, tc.lo, tc.hi); err == nil {
			t.Errorf("%s: RunRange accepted invalid input", tc.name)
		}
	}
}

// FuzzChunkMerge fuzzes the byte-identity property over campaign seed
// and chunk size.
func FuzzChunkMerge(f *testing.F) {
	f.Add(int64(1), uint8(16))
	f.Add(int64(5), uint8(1))
	f.Add(int64(-3), uint8(64))
	f.Add(int64(1<<40), uint8(255))
	f.Fuzz(func(t *testing.T, seed int64, chunk uint8) {
		const trials = 61
		c := int(chunk)
		if c == 0 {
			c = 1
		}
		cfg := Config{Name: "range-fuzz", Trials: trials, Seed: seed, Workers: 2}
		want := runWhole(t, cfg)
		got := mergeChunks(t, cfg, chunking(trials, c))
		if string(got) != string(want) {
			t.Fatalf("seed %d chunk %d: merged summary differs\n got %s\nwant %s",
				seed, c, got, want)
		}
	})
}
