package campaign

import (
	"sync"
	"time"

	"dmfb/internal/stats"
)

// maxTrackedDepth bounds the per-depth outcome counters kept by the
// tracker; the recovery ladder has 5 levels (0 = no recovery needed),
// so anything above that is an aggregate tail bucket.
const maxTrackedDepth = 8

// ProgressTracker aggregates live campaign state for the ops surface:
// trials done/total, trial rate, ETA, the running Wilson interval and
// per-depth outcome counts. Hook one into a run via Config.Tracker;
// Snapshot is safe to call concurrently with the run (HTTP handlers
// poll it), and the tracker never influences the campaign's
// deterministic Summary.
type ProgressTracker struct {
	name  string
	total int
	clock func() time.Duration // monotonic time since construction

	mu       sync.Mutex
	done     int // completed trials, including resumed ones
	resumed  int // trials replayed from a checkpoint (instant, excluded from the rate)
	survived int
	errors   int
	depths   [maxTrackedDepth + 1]int // trial Value as small int: ladder depth in assay campaigns
}

// NewProgressTracker returns a tracker for a campaign of total trials.
func NewProgressTracker(name string, total int) *ProgressTracker {
	start := time.Now()
	return newProgressTracker(name, total, func() time.Duration { return time.Since(start) })
}

// newProgressTracker injects the clock, for deterministic ETA tests.
func newProgressTracker(name string, total int, clock func() time.Duration) *ProgressTracker {
	return &ProgressTracker{name: name, total: total, clock: clock}
}

// noteResumed records trials replayed from a checkpoint before the
// worker pool starts. Nil-safe.
func (p *ProgressTracker) noteResumed(n int) {
	if p == nil || n <= 0 {
		return
	}
	p.mu.Lock()
	p.done += n
	p.resumed += n
	p.mu.Unlock()
}

// Record notes one completed trial observed outside a Run — the
// dispatch service records results streamed in from remote workers
// through it. Nil-safe and concurrency-safe.
func (p *ProgressTracker) Record(survived bool, errored bool, value float64) {
	p.observe(survived, errored, value)
}

// RecordReplayed notes n trials recovered from a durable store rather
// than executed, so they count as done but not toward the trial rate
// (and hence the ETA). Nil-safe.
func (p *ProgressTracker) RecordReplayed(n int) { p.noteResumed(n) }

// observe records one executed trial. Nil-safe; called from worker
// goroutines.
func (p *ProgressTracker) observe(survived bool, errored bool, value float64) {
	if p == nil {
		return
	}
	depth := int(value)
	if depth < 0 {
		depth = 0
	}
	if depth > maxTrackedDepth {
		depth = maxTrackedDepth
	}
	p.mu.Lock()
	p.done++
	if survived {
		p.survived++
	}
	if errored {
		p.errors++
	}
	p.depths[depth]++
	p.mu.Unlock()
}

// ProgressSnapshot is the JSON payload of the /progress endpoint.
type ProgressSnapshot struct {
	Campaign     string  `json:"campaign,omitempty"`
	Done         int     `json:"done"`
	Total        int     `json:"total"`
	Resumed      int     `json:"resumed,omitempty"`
	Survived     int     `json:"survived"`
	Errors       int     `json:"errors,omitempty"`
	SurvivalRate float64 `json:"survival_rate"`
	Wilson95Lo   float64 `json:"wilson95_lo"`
	Wilson95Hi   float64 `json:"wilson95_hi"`
	ElapsedMS    float64 `json:"elapsed_ms"`
	TrialsPerSec float64 `json:"trials_per_sec"`
	ETAMS        float64 `json:"eta_ms"`
	// DepthCounts[d] counts completed trials whose Value was d — the
	// deepest recovery-ladder level forced, for assay campaigns (the
	// last slot aggregates everything deeper than it).
	DepthCounts []int `json:"depth_counts,omitempty"`
}

// Snapshot returns the current progress. The ETA extrapolates the
// observed trial rate (resumed trials excluded — they replay
// instantly) over the remaining trials.
func (p *ProgressTracker) Snapshot() ProgressSnapshot {
	if p == nil {
		return ProgressSnapshot{}
	}
	elapsed := p.clock()
	p.mu.Lock()
	defer p.mu.Unlock()
	s := ProgressSnapshot{
		Campaign:  p.name,
		Done:      p.done,
		Total:     p.total,
		Resumed:   p.resumed,
		Survived:  p.survived,
		Errors:    p.errors,
		ElapsedMS: float64(elapsed.Microseconds()) / 1000,
	}
	if p.done > 0 {
		s.SurvivalRate = float64(p.survived) / float64(p.done)
		s.Wilson95Lo, s.Wilson95Hi = stats.Wilson95(p.survived, p.done)
	}
	executed := p.done - p.resumed
	if executed > 0 && elapsed > 0 {
		s.TrialsPerSec = float64(executed) / elapsed.Seconds()
		if remaining := p.total - p.done; remaining > 0 {
			s.ETAMS = float64(remaining) / s.TrialsPerSec * 1000
		}
	}
	for d := len(p.depths) - 1; d >= 0; d-- {
		if p.depths[d] > 0 {
			s.DepthCounts = append([]int(nil), p.depths[:d+1]...)
			break
		}
	}
	return s
}
