package campaign

import "math/rand"

// Seed derivation. Every stochastic entry point of the toolkit feeds a
// campaign seed and a stream index through DeriveSeed, so a seed means
// the same thing everywhere: campaign seed S, trial t always sees the
// RNG stream DeriveSeed(S, t) regardless of worker count, scheduling
// order, or which binary launched the campaign. The derivation is the
// splitmix64 finalizer of Steele et al. ("Fast splittable pseudorandom
// number generators", OOPSLA 2014): a bijective avalanche mix, so
// adjacent trial indices yield statistically independent streams and
// two distinct (seed, stream) pairs never collide by construction of
// the golden-ratio increment.

// splitmix64 returns the splitmix64 finalizer of z.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// goldenGamma is the splitmix64 stream increment (2^64 / φ, odd).
const goldenGamma = 0x9e3779b97f4a7c15

// DeriveSeed derives the sub-seed of stream `stream` of a campaign
// seeded with `seed`. Trial functions use it to seed nested stochastic
// stages (e.g. the full-reconfiguration annealer on the j-th fault of
// a trial: DeriveSeed(trialSeed, j)).
func DeriveSeed(seed int64, stream uint64) int64 {
	return int64(splitmix64(uint64(seed) + goldenGamma*(stream+1)))
}

// TrialRNG returns the deterministic RNG stream of trial `trial` in a
// campaign seeded with `seed`. The stream is independent of worker
// count and execution order, which is what makes parallel campaigns
// bit-reproducible. The underlying source is splitmix64: seeding is
// O(1) (unlike the 607-word lagged-Fibonacci state of the default
// math/rand source), so constructing one RNG per trial costs nanoseconds
// and a few bytes.
func TrialRNG(seed int64, trial int) *rand.Rand {
	return rand.New(&splitSource{state: uint64(DeriveSeed(seed, uint64(trial)))})
}

// splitSource is a splitmix64 rand.Source64.
type splitSource struct{ state uint64 }

func (s *splitSource) Uint64() uint64 {
	s.state += goldenGamma
	return splitmix64(s.state)
}

func (s *splitSource) Int63() int64 { return int64(s.Uint64() >> 1) }

func (s *splitSource) Seed(seed int64) { s.state = uint64(seed) }
