package campaign

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
)

// A trial caught in flight by a campaign cancellation must not be
// checkpointed as an errored trial: the cancellation is a fact about
// the kill, not about the trial, and a resume must re-run it so the
// resumed summary is bit-identical to an uninterrupted run.
func TestCancelledInFlightTrialIsNotCheckpointed(t *testing.T) {
	const trials = 10
	release := make(chan struct{})
	fn := func(ctx context.Context, tr Trial) Outcome {
		if tr.Index == 5 {
			select {
			case <-release: // resume path: run normally
			case <-ctx.Done(): // first run: caught by the kill
				return Outcome{Err: ctx.Err()}
			}
		}
		return Outcome{Survived: true, Value: 1}
	}

	ckpt := filepath.Join(t.TempDir(), "cancel.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err := Run(ctx, Config{
		Name: "cancel", Trials: trials, Seed: 7, Workers: 4, Checkpoint: ckpt,
		Progress: func(done, total int) {
			if done == trials-1 { // everything but the blocked trial
				cancel()
			}
		}}, fn)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("expected cancellation, got %v", err)
	}

	close(release)
	rep, err := Run(context.Background(), Config{
		Name: "cancel", Trials: trials, Seed: 7, Workers: 2,
		Checkpoint: ckpt, Resume: true}, fn)
	if err != nil {
		t.Fatal(err)
	}
	s := rep.Summary
	if s.Errors != 0 {
		t.Errorf("resumed campaign replayed %d phantom cancellation error(s)", s.Errors)
	}
	if s.Survived != trials {
		t.Errorf("resumed campaign survived %d/%d", s.Survived, trials)
	}
	if rep.Resumed != trials-1 {
		t.Errorf("resume replayed %d checkpointed trials, want %d", rep.Resumed, trials-1)
	}
}
