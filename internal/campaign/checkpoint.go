package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"sort"
	"sync"
)

// Checkpoint file format (JSONL, append-only):
//
//	{"v":1,"campaign":"pcr-multi","seed":1,"trials":10000}   header
//	{"trial":17,"survived":true,"value":2}                   one line per trial
//	{"trial":18,"survived":false,"err":"timeout"}
//
// The header pins the campaign identity; Resume refuses a checkpoint
// whose name, seed, trial count or config fingerprint differ, since
// replaying trials from a different campaign would silently corrupt
// the aggregate. Trial lines may appear in any order (workers finish
// out of order) and the file tolerates a torn final line — the write
// that was interrupted by the kill that the resume is recovering from.
//
// The same format is the dispatcher's durable result store: ResultLog
// appends TrialResult lines as workers stream them in, and
// ReadResultLog replays them on restart.

const checkpointVersion = 1

type checkpointHeader struct {
	V        int    `json:"v"`
	Campaign string `json:"campaign,omitempty"`
	Seed     int64  `json:"seed"`
	Trials   int    `json:"trials"`
	// Config is the campaign's config fingerprint (ConfigFingerprint);
	// empty in files written before fingerprints existed.
	Config string `json:"config,omitempty"`
}

func (h checkpointHeader) identity() string {
	return fmt.Sprintf("campaign %q seed=%d trials=%d config=%q",
		h.Campaign, h.Seed, h.Trials, h.Config)
}

// TrialResult is the recorded outcome of one completed trial — the
// unit of the checkpoint file and of the dispatcher's result stream.
// Survived is already gated on Err being empty (an erroneous trial
// never counts as survived), matching what Run records.
type TrialResult struct {
	Trial    int     `json:"trial"`
	Survived bool    `json:"survived"`
	Value    float64 `json:"value,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// checkpointLine predates the exported TrialResult; they are the same
// record.
type checkpointLine = TrialResult

// ConfigFingerprint hashes the campaign-defining parameters (mode,
// fault counts, placement seed, ...) into a short stable string for
// Config.Fingerprint. Seed and trial count are pinned separately by
// the checkpoint header, so callers should pass only the parameters
// that change what a trial computes.
func ConfigFingerprint(parts ...any) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", parts)
	return fmt.Sprintf("%016x", h.Sum64())
}

// loadCheckpoint reads a checkpoint file and returns the recorded
// trial outcomes. A missing file is an empty checkpoint, not an
// error; a header mismatch is.
func loadCheckpoint(path string, want checkpointHeader) (map[int]checkpointLine, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, nil // empty file: nothing recorded yet
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: corrupt header: %w", path, err)
	}
	if hdr.V != want.V || hdr.Campaign != want.Campaign || hdr.Seed != want.Seed ||
		hdr.Trials != want.Trials || hdr.Config != want.Config {
		return nil, fmt.Errorf(
			"campaign: checkpoint %s was written by %s; refusing to resume %s",
			path, hdr.identity(), want.identity())
	}

	done := make(map[int]checkpointLine)
	for sc.Scan() {
		var line checkpointLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// A torn trailing line is expected after a kill; anything
			// unparsable is simply not counted as completed.
			continue
		}
		if line.Trial < 0 || line.Trial >= want.Trials {
			return nil, fmt.Errorf("campaign: checkpoint %s: trial %d out of range [0,%d)",
				path, line.Trial, want.Trials)
		}
		done[line.Trial] = line
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	return done, nil
}

// CheckpointInfo is the read-only summary of a checkpoint file, for
// reporting tools (dmfb-report) that inspect a run they did not
// start.
type CheckpointInfo struct {
	// Campaign, Seed and Trials are the header identity: the campaign
	// the file belongs to and its planned trial count.
	Campaign string
	Seed     int64
	Trials   int
	// Done is the number of recorded (completed) trials.
	Done int
	// Survived and Errors count recorded outcomes.
	Survived int
	Errors   int
	// Values holds each recorded trial's value in trial-index order.
	Values []float64
	// Results holds the full recorded outcomes in trial-index order,
	// so reporters can pair each trial's value with its survival (the
	// yield-by-defect-count buckets of dmfb-report).
	Results []TrialResult
	// ErrorCounts maps error text to occurrence count.
	ErrorCounts map[string]int
}

// ReadCheckpoint reads any campaign checkpoint file and summarises
// its recorded outcomes. Unlike resume, it accepts any header (it is
// not replaying trials, only reporting them); a torn trailing line is
// skipped as usual.
func ReadCheckpoint(path string) (*CheckpointInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("campaign: checkpoint %s is empty", path)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: corrupt header: %w", path, err)
	}
	info := &CheckpointInfo{Campaign: hdr.Campaign, Seed: hdr.Seed, Trials: hdr.Trials}
	lines := make(map[int]checkpointLine)
	for sc.Scan() {
		var line checkpointLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			continue // torn trailing line
		}
		lines[line.Trial] = line
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	idx := make([]int, 0, len(lines))
	for i := range lines {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		line := lines[i]
		info.Done++
		if line.Survived {
			info.Survived++
		}
		if line.Err != "" {
			info.Errors++
			if info.ErrorCounts == nil {
				info.ErrorCounts = make(map[string]int)
			}
			info.ErrorCounts[line.Err]++
		}
		info.Values = append(info.Values, line.Value)
		info.Results = append(info.Results, line)
	}
	return info, nil
}

// checkpointWriter appends completed-trial records to the checkpoint
// file. Writes are serialised by a mutex and flushed per record, so a
// killed process loses at most the record being written.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// newCheckpointWriter opens path for appending, writing the header
// when the file is new or empty.
func newCheckpointWriter(path string, hdr checkpointHeader) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: stat checkpoint: %w", err)
	}
	cw := &checkpointWriter{f: f, w: bufio.NewWriter(f)}
	if st.Size() == 0 {
		if err := cw.writeJSON(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return cw, nil
}

func (cw *checkpointWriter) writeJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if _, err := cw.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	return cw.w.Flush()
}

// record appends one completed trial.
func (cw *checkpointWriter) record(line checkpointLine) error {
	return cw.writeJSON(line)
}

func (cw *checkpointWriter) close() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	err := cw.w.Flush()
	if cerr := cw.f.Close(); err == nil {
		err = cerr
	}
	return err
}

// CheckpointID is the identity a checkpoint file is pinned to: the
// header the file starts with, and what ResultLog/ReadResultLog (and
// Resume, via Config) refuse to mix.
type CheckpointID struct {
	Campaign    string
	Seed        int64
	Trials      int
	Fingerprint string
}

func (id CheckpointID) header() checkpointHeader {
	return checkpointHeader{
		V: checkpointVersion, Campaign: id.Campaign, Seed: id.Seed,
		Trials: id.Trials, Config: id.Fingerprint,
	}
}

// ResultLog is an append-only trial-result store in the campaign
// checkpoint format, for processes (the dispatch service) that record
// results they did not execute themselves. Appends are serialised and
// flushed per record, so a killed process loses at most the record
// being written.
type ResultLog struct {
	cw *checkpointWriter
}

// NewResultLog opens (or creates) the result log at path, writing the
// id header when the file is new.
func NewResultLog(path string, id CheckpointID) (*ResultLog, error) {
	cw, err := newCheckpointWriter(path, id.header())
	if err != nil {
		return nil, err
	}
	return &ResultLog{cw: cw}, nil
}

// Append records one completed trial.
func (l *ResultLog) Append(r TrialResult) error { return l.cw.record(r) }

// Close flushes and closes the log file.
func (l *ResultLog) Close() error { return l.cw.close() }

// ReadResultLog replays a result log written under the same id and
// returns the recorded trials sorted by trial index (duplicate
// records for a trial collapse; a torn trailing line is skipped). A
// missing file is an empty log. An id mismatch is an error — results
// from a different campaign must never be merged.
func ReadResultLog(path string, id CheckpointID) ([]TrialResult, error) {
	done, err := loadCheckpoint(path, id.header())
	if err != nil {
		return nil, err
	}
	idx := make([]int, 0, len(done))
	for i := range done {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	results := make([]TrialResult, 0, len(done))
	for _, i := range idx {
		results = append(results, done[i])
	}
	return results, nil
}
