package campaign

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"sync"
)

// Checkpoint file format (JSONL, append-only):
//
//	{"v":1,"campaign":"pcr-multi","seed":1,"trials":10000}   header
//	{"trial":17,"survived":true,"value":2}                   one line per trial
//	{"trial":18,"survived":false,"err":"timeout"}
//
// The header pins the campaign identity; Resume refuses a checkpoint
// whose name, seed or trial count differ, since replaying trials from
// a different campaign would silently corrupt the aggregate. Trial
// lines may appear in any order (workers finish out of order) and the
// file tolerates a torn final line — the write that was interrupted by
// the kill that the resume is recovering from.

const checkpointVersion = 1

type checkpointHeader struct {
	V        int    `json:"v"`
	Campaign string `json:"campaign,omitempty"`
	Seed     int64  `json:"seed"`
	Trials   int    `json:"trials"`
}

type checkpointLine struct {
	Trial    int     `json:"trial"`
	Survived bool    `json:"survived"`
	Value    float64 `json:"value,omitempty"`
	Err      string  `json:"err,omitempty"`
}

// loadCheckpoint reads a checkpoint file and returns the recorded
// trial outcomes. A missing file is an empty checkpoint, not an
// error; a header mismatch is.
func loadCheckpoint(path string, want checkpointHeader) (map[int]checkpointLine, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, nil // empty file: nothing recorded yet
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: corrupt header: %w", path, err)
	}
	if hdr.V != want.V || hdr.Campaign != want.Campaign || hdr.Seed != want.Seed || hdr.Trials != want.Trials {
		return nil, fmt.Errorf(
			"campaign: checkpoint %s was written by campaign %q seed=%d trials=%d; refusing to resume %q seed=%d trials=%d",
			path, hdr.Campaign, hdr.Seed, hdr.Trials, want.Campaign, want.Seed, want.Trials)
	}

	done := make(map[int]checkpointLine)
	for sc.Scan() {
		var line checkpointLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			// A torn trailing line is expected after a kill; anything
			// unparsable is simply not counted as completed.
			continue
		}
		if line.Trial < 0 || line.Trial >= want.Trials {
			return nil, fmt.Errorf("campaign: checkpoint %s: trial %d out of range [0,%d)",
				path, line.Trial, want.Trials)
		}
		done[line.Trial] = line
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	return done, nil
}

// CheckpointInfo is the read-only summary of a checkpoint file, for
// reporting tools (dmfb-report) that inspect a run they did not
// start.
type CheckpointInfo struct {
	// Campaign, Seed and Trials are the header identity: the campaign
	// the file belongs to and its planned trial count.
	Campaign string
	Seed     int64
	Trials   int
	// Done is the number of recorded (completed) trials.
	Done int
	// Survived and Errors count recorded outcomes.
	Survived int
	Errors   int
	// Values holds each recorded trial's value in trial-index order.
	Values []float64
	// ErrorCounts maps error text to occurrence count.
	ErrorCounts map[string]int
}

// ReadCheckpoint reads any campaign checkpoint file and summarises
// its recorded outcomes. Unlike resume, it accepts any header (it is
// not replaying trials, only reporting them); a torn trailing line is
// skipped as usual.
func ReadCheckpoint(path string) (*CheckpointInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	if !sc.Scan() {
		return nil, fmt.Errorf("campaign: checkpoint %s is empty", path)
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("campaign: checkpoint %s: corrupt header: %w", path, err)
	}
	info := &CheckpointInfo{Campaign: hdr.Campaign, Seed: hdr.Seed, Trials: hdr.Trials}
	lines := make(map[int]checkpointLine)
	for sc.Scan() {
		var line checkpointLine
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			continue // torn trailing line
		}
		lines[line.Trial] = line
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("campaign: read checkpoint: %w", err)
	}
	idx := make([]int, 0, len(lines))
	for i := range lines {
		idx = append(idx, i)
	}
	sort.Ints(idx)
	for _, i := range idx {
		line := lines[i]
		info.Done++
		if line.Survived {
			info.Survived++
		}
		if line.Err != "" {
			info.Errors++
			if info.ErrorCounts == nil {
				info.ErrorCounts = make(map[string]int)
			}
			info.ErrorCounts[line.Err]++
		}
		info.Values = append(info.Values, line.Value)
	}
	return info, nil
}

// checkpointWriter appends completed-trial records to the checkpoint
// file. Writes are serialised by a mutex and flushed per record, so a
// killed process loses at most the record being written.
type checkpointWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// newCheckpointWriter opens path for appending, writing the header
// when the file is new or empty.
func newCheckpointWriter(path string, hdr checkpointHeader) (*checkpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("campaign: open checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("campaign: stat checkpoint: %w", err)
	}
	cw := &checkpointWriter{f: f, w: bufio.NewWriter(f)}
	if st.Size() == 0 {
		if err := cw.writeJSON(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return cw, nil
}

func (cw *checkpointWriter) writeJSON(v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	cw.mu.Lock()
	defer cw.mu.Unlock()
	if _, err := cw.w.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("campaign: write checkpoint: %w", err)
	}
	return cw.w.Flush()
}

// record appends one completed trial.
func (cw *checkpointWriter) record(line checkpointLine) error {
	return cw.writeJSON(line)
}

func (cw *checkpointWriter) close() error {
	cw.mu.Lock()
	defer cw.mu.Unlock()
	err := cw.w.Flush()
	if cerr := cw.f.Close(); err == nil {
		err = cerr
	}
	return err
}
