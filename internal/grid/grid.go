// Package grid implements the dense occupancy matrix used to model a
// configuration of the microfluidic array: occupied cells (cells of
// currently operating modules, plus any cell marked faulty) are 1s and
// free cells are 0s, exactly as in the encoding step of the paper's
// fast fault-tolerance-index algorithm (Section 5.3).
//
// The matrix is bit-packed: each row is a run of 64-cell words, so
// the hot geometric predicates — RectFree, SetRect, CountOccupied —
// are word operations (mask tests, popcounts) instead of per-cell
// byte loads. Scanline consumers (the maximal-empty-rectangle miner)
// read rows through RowWords; BoolGrid retains the historical []bool
// implementation as a differential-testing oracle.
package grid

import (
	"fmt"
	"math/bits"
	"strings"

	"dmfb/internal/geom"
)

// wordBits is the cell capacity of one occupancy word.
const wordBits = 64

// WordsPerRow returns the number of uint64 words needed to hold one
// row of w cells.
func WordsPerRow(w int) int { return (w + wordBits - 1) / wordBits }

// Grid is a W×H occupancy matrix, bit-packed one row per run of
// 64-cell words. The zero value is unusable; construct with New.
// Cells outside the grid are treated as occupied by the query
// helpers, which is the natural boundary condition for
// empty-rectangle mining and droplet routing. Bits of the last word
// of a row beyond the grid width are always zero (free), an invariant
// every mutator preserves so word-level readers need no edge masking.
type Grid struct {
	w, h  int
	wpr   int      // words per row
	words []uint64 // row-major: row y = words[y*wpr : (y+1)*wpr]
}

// New returns an empty (all-free) grid of the given dimensions.
// It panics if either dimension is not positive, since a biochip array
// with no cells is always a caller bug.
func New(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	wpr := WordsPerRow(w)
	return &Grid{w: w, h: h, wpr: wpr, words: make([]uint64, wpr*h)}
}

// FromRects returns a grid the size of bounds with the given rects
// marked occupied (rects are clipped to the grid).
func FromRects(w, h int, rs ...geom.Rect) *Grid {
	g := New(w, h)
	for _, r := range rs {
		g.SetRect(r, true)
	}
	return g
}

// W returns the grid width in cells.
func (g *Grid) W() int { return g.w }

// H returns the grid height in cells.
func (g *Grid) H() int { return g.h }

// Bounds returns the grid extent as a Rect anchored at the origin.
func (g *Grid) Bounds() geom.Rect { return geom.Rect{X: 0, Y: 0, W: g.w, H: g.h} }

// Cells returns the total number of cells.
func (g *Grid) Cells() int { return g.w * g.h }

// In reports whether p lies inside the grid.
func (g *Grid) In(p geom.Point) bool {
	return p.X >= 0 && p.X < g.w && p.Y >= 0 && p.Y < g.h
}

// Occupied reports whether cell p is occupied. Out-of-bounds cells
// read as occupied.
func (g *Grid) Occupied(p geom.Point) bool {
	if !g.In(p) {
		return true
	}
	return g.words[p.Y*g.wpr+p.X/wordBits]&(1<<(uint(p.X)%wordBits)) != 0
}

// Free reports whether cell p is inside the grid and unoccupied.
func (g *Grid) Free(p geom.Point) bool { return !g.Occupied(p) }

// WordsPerRow returns the number of words each row occupies in Words.
func (g *Grid) WordsPerRow() int { return g.wpr }

// Words returns the whole occupancy matrix as a shared word slice (do
// not mutate; it aliases the grid's storage): row y occupies
// Words()[y*WordsPerRow() : (y+1)*WordsPerRow()], bit x%64 of word
// x/64 is cell (x, y). Bits past the grid width are always zero.
func (g *Grid) Words() []uint64 { return g.words }

// RowWords returns row y of the occupancy matrix as a shared word
// slice (do not mutate; it aliases the grid's storage). Bit x%64 of
// word x/64 is cell (x, y); bits past the grid width are always zero.
// It panics if y is out of range. Scanline algorithms iterate this
// instead of per-cell Occupied calls.
func (g *Grid) RowWords(y int) []uint64 {
	return g.words[y*g.wpr : (y+1)*g.wpr]
}

// Row returns row y of the occupancy matrix as a freshly allocated
// []bool. It panics if y is out of range.
//
// Deprecated: Row is the pre-bit-packing read surface, kept as a
// compatibility shim; it allocates on every call. Hot paths should
// read RowWords (or Words) instead.
func (g *Grid) Row(y int) []bool {
	row := g.RowWords(y)
	out := make([]bool, g.w)
	for x := range out {
		out[x] = row[x/wordBits]&(1<<(uint(x)%wordBits)) != 0
	}
	return out
}

// Resize reshapes the grid to w×h and marks every cell free, reusing
// the backing storage when it is large enough. It panics on
// non-positive dimensions, like New.
func (g *Grid) Resize(w, h int) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	wpr := WordsPerRow(w)
	n := wpr * h
	if cap(g.words) < n {
		g.words = make([]uint64, n)
	} else {
		g.words = g.words[:n]
		clear(g.words)
	}
	g.w, g.h, g.wpr = w, h, wpr
}

// Set marks cell p occupied (true) or free (false). Out-of-bounds
// writes are ignored.
func (g *Grid) Set(p geom.Point, occupied bool) {
	if !g.In(p) {
		return
	}
	bit := uint64(1) << (uint(p.X) % wordBits)
	if occupied {
		g.words[p.Y*g.wpr+p.X/wordBits] |= bit
	} else {
		g.words[p.Y*g.wpr+p.X/wordBits] &^= bit
	}
}

// rowMask returns the masks covering columns [x0, x1) of a row: one
// mask per word from word x0/64 through word (x1-1)/64. first and
// last are the partial masks of the boundary words; full words in
// between are all-ones. When the span fits one word, first == last ==
// the single mask and wFirst == wLast.
func rowMask(x0, x1 int) (wFirst, wLast int, first, last uint64) {
	wFirst = x0 / wordBits
	wLast = (x1 - 1) / wordBits
	first = ^uint64(0) << (uint(x0) % wordBits)
	last = ^uint64(0) >> (uint(wordBits-1-(x1-1)%wordBits) % wordBits)
	if wFirst == wLast {
		first &= last
		last = first
	}
	return wFirst, wLast, first, last
}

// SetRect marks every cell of r (clipped to the grid) occupied or free.
func (g *Grid) SetRect(r geom.Rect, occupied bool) {
	c := r.Intersect(g.Bounds())
	if c.Empty() {
		return
	}
	wFirst, wLast, first, last := rowMask(c.X, c.MaxX())
	for y := c.Y; y < c.MaxY(); y++ {
		row := g.words[y*g.wpr : (y+1)*g.wpr : (y+1)*g.wpr]
		if occupied {
			if wFirst == wLast {
				row[wFirst] |= first
				continue
			}
			row[wFirst] |= first
			for w := wFirst + 1; w < wLast; w++ {
				row[w] = ^uint64(0)
			}
			row[wLast] |= last
		} else {
			if wFirst == wLast {
				row[wFirst] &^= first
				continue
			}
			row[wFirst] &^= first
			for w := wFirst + 1; w < wLast; w++ {
				row[w] = 0
			}
			row[wLast] &^= last
		}
	}
}

// RectFree reports whether r lies entirely inside the grid and every
// cell of r is free.
func (g *Grid) RectFree(r geom.Rect) bool {
	if r.Empty() {
		return true
	}
	if !g.Bounds().ContainsRect(r) {
		return false
	}
	wFirst, wLast, first, last := rowMask(r.X, r.MaxX())
	for y := r.Y; y < r.MaxY(); y++ {
		row := g.words[y*g.wpr : (y+1)*g.wpr : (y+1)*g.wpr]
		if wFirst == wLast {
			if row[wFirst]&first != 0 {
				return false
			}
			continue
		}
		if row[wFirst]&first != 0 || row[wLast]&last != 0 {
			return false
		}
		for w := wFirst + 1; w < wLast; w++ {
			if row[w] != 0 {
				return false
			}
		}
	}
	return true
}

// CountOccupied returns the number of occupied cells.
func (g *Grid) CountOccupied() int { return g.PopCount() }

// PopCount returns the number of occupied cells as the popcount of
// the word matrix (padding bits are zero by invariant).
func (g *Grid) PopCount() int {
	n := 0
	for _, w := range g.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// CountFree returns the number of free cells.
func (g *Grid) CountFree() int { return g.Cells() - g.CountOccupied() }

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	c := &Grid{w: g.w, h: g.h, wpr: g.wpr, words: make([]uint64, len(g.words))}
	copy(c.words, g.words)
	return c
}

// Clear marks every cell free.
func (g *Grid) Clear() {
	clear(g.words)
}

// Equal reports whether the two grids have identical dimensions and
// contents.
func (g *Grid) Equal(o *Grid) bool {
	if g.w != o.w || g.h != o.h {
		return false
	}
	for i := range g.words {
		if g.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// String renders the grid with '#' for occupied and '.' for free,
// top row (largest y) first, matching how the paper draws arrays.
func (g *Grid) String() string {
	var b strings.Builder
	for y := g.h - 1; y >= 0; y-- {
		row := g.RowWords(y)
		for x := 0; x < g.w; x++ {
			if row[x/wordBits]&(1<<(uint(x)%wordBits)) != 0 {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if y > 0 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Parse builds a grid from a String-style picture: lines of '#'
// (occupied) and '.' (free), first line = top row. All lines must have
// equal length. Intended for tests.
func Parse(s string) (*Grid, error) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("grid: empty picture")
	}
	h := len(lines)
	w := len(strings.TrimSpace(lines[0]))
	g := New(w, h)
	for i, ln := range lines {
		ln = strings.TrimSpace(ln)
		if len(ln) != w {
			return nil, fmt.Errorf("grid: line %d has width %d, want %d", i, len(ln), w)
		}
		y := h - 1 - i
		for x := 0; x < w; x++ {
			switch ln[x] {
			case '#':
				g.Set(geom.Point{X: x, Y: y}, true)
			case '.':
			default:
				return nil, fmt.Errorf("grid: bad cell %q at line %d col %d", ln[x], i, x)
			}
		}
	}
	return g, nil
}
