// Package grid implements the dense occupancy matrix used to model a
// configuration of the microfluidic array: occupied cells (cells of
// currently operating modules, plus any cell marked faulty) are 1s and
// free cells are 0s, exactly as in the encoding step of the paper's
// fast fault-tolerance-index algorithm (Section 5.3).
package grid

import (
	"fmt"
	"strings"

	"dmfb/internal/geom"
)

// Grid is a W×H boolean occupancy matrix. The zero value is unusable;
// construct with New. Cells outside the grid are treated as occupied
// by the query helpers, which is the natural boundary condition for
// empty-rectangle mining and droplet routing.
type Grid struct {
	w, h  int
	cells []bool // row-major: index = y*w + x
}

// New returns an empty (all-free) grid of the given dimensions.
// It panics if either dimension is not positive, since a biochip array
// with no cells is always a caller bug.
func New(w, h int) *Grid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	return &Grid{w: w, h: h, cells: make([]bool, w*h)}
}

// FromRect returns a grid the size of bounds with the given rects
// marked occupied (rects are clipped to the grid).
func FromRects(w, h int, rs ...geom.Rect) *Grid {
	g := New(w, h)
	for _, r := range rs {
		g.SetRect(r, true)
	}
	return g
}

// W returns the grid width in cells.
func (g *Grid) W() int { return g.w }

// H returns the grid height in cells.
func (g *Grid) H() int { return g.h }

// Bounds returns the grid extent as a Rect anchored at the origin.
func (g *Grid) Bounds() geom.Rect { return geom.Rect{X: 0, Y: 0, W: g.w, H: g.h} }

// Cells returns the total number of cells.
func (g *Grid) Cells() int { return g.w * g.h }

// In reports whether p lies inside the grid.
func (g *Grid) In(p geom.Point) bool {
	return p.X >= 0 && p.X < g.w && p.Y >= 0 && p.Y < g.h
}

// Occupied reports whether cell p is occupied. Out-of-bounds cells
// read as occupied.
func (g *Grid) Occupied(p geom.Point) bool {
	if !g.In(p) {
		return true
	}
	return g.cells[p.Y*g.w+p.X]
}

// Free reports whether cell p is inside the grid and unoccupied.
func (g *Grid) Free(p geom.Point) bool { return !g.Occupied(p) }

// Row returns row y of the occupancy matrix as a shared slice (do not
// mutate; it aliases the grid's storage). It panics if y is out of
// range. Scanline algorithms iterate this instead of per-cell
// Occupied calls.
func (g *Grid) Row(y int) []bool {
	return g.cells[y*g.w : (y+1)*g.w]
}

// Resize reshapes the grid to w×h and marks every cell free, reusing
// the backing storage when it is large enough. It panics on
// non-positive dimensions, like New.
func (g *Grid) Resize(w, h int) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	n := w * h
	if cap(g.cells) < n {
		g.cells = make([]bool, n)
	} else {
		g.cells = g.cells[:n]
		for i := range g.cells {
			g.cells[i] = false
		}
	}
	g.w, g.h = w, h
}

// Set marks cell p occupied (true) or free (false). Out-of-bounds
// writes are ignored.
func (g *Grid) Set(p geom.Point, occupied bool) {
	if !g.In(p) {
		return
	}
	g.cells[p.Y*g.w+p.X] = occupied
}

// SetRect marks every cell of r (clipped to the grid) occupied or free.
func (g *Grid) SetRect(r geom.Rect, occupied bool) {
	c := r.Intersect(g.Bounds())
	for y := c.Y; y < c.MaxY(); y++ {
		row := y * g.w
		for x := c.X; x < c.MaxX(); x++ {
			g.cells[row+x] = occupied
		}
	}
}

// RectFree reports whether r lies entirely inside the grid and every
// cell of r is free.
func (g *Grid) RectFree(r geom.Rect) bool {
	if r.Empty() {
		return true
	}
	if !g.Bounds().ContainsRect(r) {
		return false
	}
	for y := r.Y; y < r.MaxY(); y++ {
		row := y * g.w
		for x := r.X; x < r.MaxX(); x++ {
			if g.cells[row+x] {
				return false
			}
		}
	}
	return true
}

// CountOccupied returns the number of occupied cells.
func (g *Grid) CountOccupied() int {
	n := 0
	for _, c := range g.cells {
		if c {
			n++
		}
	}
	return n
}

// CountFree returns the number of free cells.
func (g *Grid) CountFree() int { return g.Cells() - g.CountOccupied() }

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	c := &Grid{w: g.w, h: g.h, cells: make([]bool, len(g.cells))}
	copy(c.cells, g.cells)
	return c
}

// Clear marks every cell free.
func (g *Grid) Clear() {
	for i := range g.cells {
		g.cells[i] = false
	}
}

// Equal reports whether the two grids have identical dimensions and
// contents.
func (g *Grid) Equal(o *Grid) bool {
	if g.w != o.w || g.h != o.h {
		return false
	}
	for i := range g.cells {
		if g.cells[i] != o.cells[i] {
			return false
		}
	}
	return true
}

// String renders the grid with '#' for occupied and '.' for free,
// top row (largest y) first, matching how the paper draws arrays.
func (g *Grid) String() string {
	var b strings.Builder
	for y := g.h - 1; y >= 0; y-- {
		for x := 0; x < g.w; x++ {
			if g.cells[y*g.w+x] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if y > 0 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Parse builds a grid from a String-style picture: lines of '#'
// (occupied) and '.' (free), first line = top row. All lines must have
// equal length. Intended for tests.
func Parse(s string) (*Grid, error) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) == 0 {
		return nil, fmt.Errorf("grid: empty picture")
	}
	h := len(lines)
	w := len(strings.TrimSpace(lines[0]))
	g := New(w, h)
	for i, ln := range lines {
		ln = strings.TrimSpace(ln)
		if len(ln) != w {
			return nil, fmt.Errorf("grid: line %d has width %d, want %d", i, len(ln), w)
		}
		y := h - 1 - i
		for x := 0; x < w; x++ {
			switch ln[x] {
			case '#':
				g.Set(geom.Point{X: x, Y: y}, true)
			case '.':
			default:
				return nil, fmt.Errorf("grid: bad cell %q at line %d col %d", ln[x], i, x)
			}
		}
	}
	return g, nil
}
