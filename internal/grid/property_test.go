package grid

import (
	"math/rand"
	"testing"

	"dmfb/internal/geom"
)

// The bit-packed grid is differentially tested against BoolGrid, the
// retained []bool implementation: both are driven through the same
// randomized op sequence (Set, SetRect, RectFree, CountOccupied,
// Clear, Resize) and every observation must agree, including the
// Parse/String round trip of the final state. A word-masking bug in
// SetRect or RectFree — the classic off-by-one at a 64-bit word
// boundary — cannot survive this: widths straddle 1, 2 and 3 words.

// checkAgree asserts the two implementations observe the same state.
func checkAgree(t *testing.T, g *Grid, o *BoolGrid, step int) {
	t.Helper()
	if g.W() != o.W() || g.H() != o.H() {
		t.Fatalf("step %d: dimensions %dx%d vs oracle %dx%d", step, g.W(), g.H(), o.W(), o.H())
	}
	if got, want := g.CountOccupied(), o.CountOccupied(); got != want {
		t.Fatalf("step %d: CountOccupied %d, oracle %d\n%s", step, got, want, g)
	}
	if got, want := g.String(), o.String(); got != want {
		t.Fatalf("step %d: state diverged\npacked:\n%s\noracle:\n%s", step, got, want)
	}
}

// randRect returns a random rect roughly within (and sometimes
// hanging off) a w×h grid, so clipping paths are exercised too.
func randRect(rng *rand.Rand, w, h int) geom.Rect {
	return geom.Rect{
		X: rng.Intn(w+4) - 2,
		Y: rng.Intn(h+4) - 2,
		W: rng.Intn(w + 2),
		H: rng.Intn(h + 2),
	}
}

func TestGridOpSequenceOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	// Widths on either side of the 64- and 128-cell word boundaries.
	dims := []struct{ w, h int }{
		{1, 1}, {7, 11}, {12, 5}, {31, 3}, {63, 2}, {64, 4}, {65, 3}, {100, 2}, {130, 2},
	}
	for _, d := range dims {
		g := New(d.w, d.h)
		o := NewBool(d.w, d.h)
		w, h := d.w, d.h
		for step := 0; step < 2000; step++ {
			switch op := rng.Intn(10); {
			case op < 3: // Set
				p := geom.Point{X: rng.Intn(w+2) - 1, Y: rng.Intn(h+2) - 1}
				occ := rng.Intn(2) == 0
				g.Set(p, occ)
				o.Set(p, occ)
			case op < 6: // SetRect
				r := randRect(rng, w, h)
				occ := rng.Intn(3) > 0
				g.SetRect(r, occ)
				o.SetRect(r, occ)
			case op < 8: // RectFree
				r := randRect(rng, w, h)
				if got, want := g.RectFree(r), o.RectFree(r); got != want {
					t.Fatalf("%dx%d step %d: RectFree(%v) = %v, oracle %v\n%s",
						w, h, step, r, got, want, g)
				}
			case op < 9: // Occupied point probe
				p := geom.Point{X: rng.Intn(w+4) - 2, Y: rng.Intn(h+4) - 2}
				if got, want := g.Occupied(p), o.Occupied(p); got != want {
					t.Fatalf("%dx%d step %d: Occupied(%v) = %v, oracle %v", w, h, step, p, got, want)
				}
			default:
				switch rng.Intn(8) {
				case 0: // Resize (rare: it wipes the state)
					w, h = 1+rng.Intn(70), 1+rng.Intn(8)
					g.Resize(w, h)
					o.Resize(w, h)
				case 1:
					g.Clear()
					o.Clear()
				}
			}
			if step%97 == 0 {
				checkAgree(t, g, o, step)
			}
		}
		checkAgree(t, g, o, 2000)

		// Parse/String round trip of the final randomized state.
		rt, err := Parse(g.String())
		if err != nil {
			t.Fatalf("%dx%d: Parse(String) failed: %v", w, h, err)
		}
		if !rt.Equal(g) {
			t.Fatalf("%dx%d: Parse(String) round trip diverged:\n%s\nvs\n%s", w, h, rt, g)
		}
	}
}

// TestRowShimMatchesWords pins the deprecated Row shim to the word
// API: both must describe the same cells.
func TestRowShimMatchesWords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, w := range []int{1, 9, 63, 64, 65, 129} {
		g := New(w, 4)
		for i := 0; i < w*4/3; i++ {
			g.Set(geom.Point{X: rng.Intn(w), Y: rng.Intn(4)}, true)
		}
		for y := 0; y < g.H(); y++ {
			row := g.Row(y)
			words := g.RowWords(y)
			if len(row) != w || len(words) != WordsPerRow(w) {
				t.Fatalf("w=%d y=%d: len(Row)=%d len(RowWords)=%d", w, y, len(row), len(words))
			}
			for x := 0; x < w; x++ {
				fromWord := words[x/64]&(1<<(uint(x)%64)) != 0
				if row[x] != fromWord {
					t.Fatalf("w=%d cell (%d,%d): Row says %v, RowWords says %v", w, x, y, row[x], fromWord)
				}
			}
		}
	}
}

// TestWordPaddingInvariant checks that no mutation leaves stray bits
// past the grid width, the invariant PopCount and word-level readers
// rely on.
func TestWordPaddingInvariant(t *testing.T) {
	for _, w := range []int{1, 63, 64, 65, 100} {
		g := New(w, 3)
		g.SetRect(geom.Rect{X: -5, Y: -5, W: w + 10, H: 13}, true)
		g.SetRect(geom.Rect{X: w - 1, Y: 0, W: 1, H: 1}, false)
		g.Set(geom.Point{X: w - 1, Y: 1}, true)
		pad := uint(w) % 64
		if pad == 0 {
			continue
		}
		mask := ^uint64(0) << pad
		for y := 0; y < g.H(); y++ {
			words := g.RowWords(y)
			if last := words[len(words)-1]; last&mask != 0 {
				t.Fatalf("w=%d row %d: padding bits set: %064b", w, y, last)
			}
		}
		if got, want := g.PopCount(), g.Cells()-1; got != want {
			t.Fatalf("w=%d: PopCount %d, want %d", w, got, want)
		}
	}
}
