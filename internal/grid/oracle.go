package grid

import (
	"fmt"
	"strings"

	"dmfb/internal/geom"
)

// BoolGrid is the historical []bool occupancy matrix, retained as the
// differential-testing oracle for the bit-packed Grid: it implements
// the same operations cell by cell, with no word-level cleverness to
// share a bug with. Property tests drive both implementations through
// identical op sequences and assert identical observations. It is not
// used outside tests and carries no performance guarantees.
type BoolGrid struct {
	w, h  int
	cells []bool // row-major: index = y*w + x
}

// NewBool returns an empty (all-free) bool grid of the given
// dimensions, panicking on non-positive dimensions like New.
func NewBool(w, h int) *BoolGrid {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	return &BoolGrid{w: w, h: h, cells: make([]bool, w*h)}
}

// W returns the grid width in cells.
func (g *BoolGrid) W() int { return g.w }

// H returns the grid height in cells.
func (g *BoolGrid) H() int { return g.h }

// Bounds returns the grid extent as a Rect anchored at the origin.
func (g *BoolGrid) Bounds() geom.Rect { return geom.Rect{X: 0, Y: 0, W: g.w, H: g.h} }

// Cells returns the total number of cells.
func (g *BoolGrid) Cells() int { return g.w * g.h }

// In reports whether p lies inside the grid.
func (g *BoolGrid) In(p geom.Point) bool {
	return p.X >= 0 && p.X < g.w && p.Y >= 0 && p.Y < g.h
}

// Occupied reports whether cell p is occupied; out-of-bounds cells
// read as occupied.
func (g *BoolGrid) Occupied(p geom.Point) bool {
	if !g.In(p) {
		return true
	}
	return g.cells[p.Y*g.w+p.X]
}

// Set marks cell p occupied or free; out-of-bounds writes are ignored.
func (g *BoolGrid) Set(p geom.Point, occupied bool) {
	if !g.In(p) {
		return
	}
	g.cells[p.Y*g.w+p.X] = occupied
}

// SetRect marks every cell of r (clipped to the grid) occupied or free.
func (g *BoolGrid) SetRect(r geom.Rect, occupied bool) {
	c := r.Intersect(g.Bounds())
	for y := c.Y; y < c.MaxY(); y++ {
		for x := c.X; x < c.MaxX(); x++ {
			g.cells[y*g.w+x] = occupied
		}
	}
}

// RectFree reports whether r lies entirely inside the grid and every
// cell of r is free.
func (g *BoolGrid) RectFree(r geom.Rect) bool {
	if r.Empty() {
		return true
	}
	if !g.Bounds().ContainsRect(r) {
		return false
	}
	for y := r.Y; y < r.MaxY(); y++ {
		for x := r.X; x < r.MaxX(); x++ {
			if g.cells[y*g.w+x] {
				return false
			}
		}
	}
	return true
}

// CountOccupied returns the number of occupied cells.
func (g *BoolGrid) CountOccupied() int {
	n := 0
	for _, c := range g.cells {
		if c {
			n++
		}
	}
	return n
}

// Resize reshapes the grid to w×h and marks every cell free.
func (g *BoolGrid) Resize(w, h int) {
	if w <= 0 || h <= 0 {
		panic(fmt.Sprintf("grid: invalid dimensions %dx%d", w, h))
	}
	g.w, g.h = w, h
	g.cells = make([]bool, w*h)
}

// Clear marks every cell free.
func (g *BoolGrid) Clear() {
	for i := range g.cells {
		g.cells[i] = false
	}
}

// Row returns row y as a []bool, one entry per cell.
func (g *BoolGrid) Row(y int) []bool {
	return g.cells[y*g.w : (y+1)*g.w]
}

// String renders the grid exactly like Grid.String.
func (g *BoolGrid) String() string {
	var b strings.Builder
	for y := g.h - 1; y >= 0; y-- {
		for x := 0; x < g.w; x++ {
			if g.cells[y*g.w+x] {
				b.WriteByte('#')
			} else {
				b.WriteByte('.')
			}
		}
		if y > 0 {
			b.WriteByte('\n')
		}
	}
	return b.String()
}
