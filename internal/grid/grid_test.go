package grid

import (
	"math/rand"
	"testing"
	"testing/quick"

	"dmfb/internal/geom"
)

func TestNewPanics(t *testing.T) {
	for _, d := range [][2]int{{0, 4}, {4, 0}, {-1, 3}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%d,%d) did not panic", d[0], d[1])
				}
			}()
			New(d[0], d[1])
		}()
	}
}

func TestSetAndQuery(t *testing.T) {
	g := New(5, 4)
	if g.W() != 5 || g.H() != 4 || g.Cells() != 20 {
		t.Fatalf("dims wrong: %dx%d", g.W(), g.H())
	}
	p := geom.Point{X: 2, Y: 3}
	if g.Occupied(p) {
		t.Error("fresh grid cell occupied")
	}
	g.Set(p, true)
	if !g.Occupied(p) || g.Free(p) {
		t.Error("Set(true) not visible")
	}
	g.Set(p, false)
	if g.Occupied(p) {
		t.Error("Set(false) not visible")
	}
	// Out-of-bounds reads occupied, writes ignored.
	out := geom.Point{X: 5, Y: 0}
	if !g.Occupied(out) || g.Free(out) || g.In(out) {
		t.Error("out-of-bounds semantics wrong")
	}
	g.Set(out, true) // must not panic
	if g.CountOccupied() != 0 {
		t.Error("out-of-bounds write affected grid")
	}
}

func TestSetRectClipping(t *testing.T) {
	g := New(4, 4)
	g.SetRect(geom.Rect{X: 2, Y: 2, W: 5, H: 5}, true) // overhangs
	if got := g.CountOccupied(); got != 4 {
		t.Errorf("clipped SetRect occupied %d cells, want 4", got)
	}
	g.SetRect(geom.Rect{X: 0, Y: 0, W: 4, H: 4}, false)
	if g.CountOccupied() != 0 {
		t.Error("SetRect(false) did not clear")
	}
}

func TestRectFree(t *testing.T) {
	g := New(6, 6)
	g.SetRect(geom.Rect{X: 2, Y: 2, W: 2, H: 2}, true)
	cases := []struct {
		r    geom.Rect
		want bool
	}{
		{geom.Rect{X: 0, Y: 0, W: 2, H: 6}, true},
		{geom.Rect{X: 0, Y: 0, W: 3, H: 3}, false}, // touches occupied (2,2)
		{geom.Rect{X: 4, Y: 0, W: 2, H: 6}, true},
		{geom.Rect{X: 5, Y: 5, W: 2, H: 1}, false}, // out of bounds
		{geom.Rect{}, true},                        // empty rect trivially free
		{geom.Rect{X: 2, Y: 2, W: 1, H: 1}, false},
	}
	for _, c := range cases {
		if got := g.RectFree(c.r); got != c.want {
			t.Errorf("RectFree(%v) = %v, want %v", c.r, got, c.want)
		}
	}
}

func TestCountCloneEqualClear(t *testing.T) {
	g := New(5, 5)
	g.SetRect(geom.Rect{X: 0, Y: 0, W: 2, H: 3}, true)
	if g.CountOccupied() != 6 || g.CountFree() != 19 {
		t.Fatalf("counts wrong: %d/%d", g.CountOccupied(), g.CountFree())
	}
	c := g.Clone()
	if !g.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Set(geom.Point{X: 4, Y: 4}, true)
	if g.Equal(c) {
		t.Fatal("clone shares storage with original")
	}
	if g.Equal(New(5, 4)) {
		t.Fatal("Equal ignores dimensions")
	}
	g.Clear()
	if g.CountOccupied() != 0 {
		t.Fatal("Clear left occupied cells")
	}
}

func TestStringParseRoundTrip(t *testing.T) {
	g := New(4, 3)
	g.SetRect(geom.Rect{X: 1, Y: 0, W: 2, H: 2}, true)
	s := g.String()
	want := "....\n.##.\n.##."
	if s != want {
		t.Fatalf("String = %q, want %q", s, want)
	}
	p, err := Parse(s)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Equal(g) {
		t.Fatalf("Parse(String) != original:\n%s\nvs\n%s", p, g)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("..\n..."); err == nil {
		t.Error("ragged picture accepted")
	}
	if _, err := Parse(".x\n.."); err == nil {
		t.Error("bad character accepted")
	}
}

func TestFromRects(t *testing.T) {
	g := FromRects(6, 5, geom.Rect{X: 0, Y: 0, W: 2, H: 2}, geom.Rect{X: 4, Y: 3, W: 2, H: 2})
	if g.CountOccupied() != 8 {
		t.Fatalf("FromRects occupied = %d", g.CountOccupied())
	}
	if !g.Occupied(geom.Point{X: 0, Y: 0}) || !g.Occupied(geom.Point{X: 5, Y: 4}) {
		t.Fatal("FromRects corners wrong")
	}
}

// Property: random Set operations — CountOccupied always equals the
// size of the reference set, and String/Parse round-trips.
func TestGridRandomOpsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		w, h := 1+rng.Intn(12), 1+rng.Intn(12)
		g := New(w, h)
		ref := map[geom.Point]bool{}
		for i := 0; i < 200; i++ {
			p := geom.Point{X: rng.Intn(w), Y: rng.Intn(h)}
			occ := rng.Intn(2) == 0
			g.Set(p, occ)
			if occ {
				ref[p] = true
			} else {
				delete(ref, p)
			}
		}
		if g.CountOccupied() != len(ref) {
			t.Fatalf("count mismatch: %d vs %d", g.CountOccupied(), len(ref))
		}
		for p := range ref {
			if !g.Occupied(p) {
				t.Fatalf("cell %v lost", p)
			}
		}
		rt, err := Parse(g.String())
		if err != nil || !rt.Equal(g) {
			t.Fatalf("round-trip failed: %v", err)
		}
	}
}

// Property (testing/quick): SetRect marks exactly the clipped area.
func TestSetRectCountQuick(t *testing.T) {
	f := func(x, y int8, w, h uint8) bool {
		g := New(10, 10)
		r := geom.Rect{X: int(x % 12), Y: int(y % 12), W: int(w % 12), H: int(h % 12)}
		g.SetRect(r, true)
		return g.CountOccupied() == r.Canon().Intersect(g.Bounds()).Cells()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property (testing/quick): RectFree agrees with a per-cell scan.
func TestRectFreeQuick(t *testing.T) {
	f := func(seed int64, x, y int8, w, h uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := New(8, 8)
		for i := 0; i < 10; i++ {
			g.Set(geom.Point{X: rng.Intn(8), Y: rng.Intn(8)}, true)
		}
		r := geom.Rect{X: int(x % 10), Y: int(y % 10), W: int(w%5) + 1, H: int(h%5) + 1}
		want := g.Bounds().ContainsRect(r)
		if want {
			for _, p := range r.Points() {
				if g.Occupied(p) {
					want = false
					break
				}
			}
		}
		return g.RectFree(r) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
