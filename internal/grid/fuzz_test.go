package grid

import (
	"testing"

	"dmfb/internal/geom"
)

// FuzzRowWords differentially fuzzes the bit-packed word API against
// the BoolGrid oracle: arbitrary bytes decode into a grid (built
// through SetRect spans so the word-masking paths run, not just Set),
// and every row read through RowWords must agree cell for cell with
// the oracle, as must RectFree and the popcount. Widths reach past 64
// so the multi-word masks are exercised.
func FuzzRowWords(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{64, 2, 10, 0, 30, 1, 63, 1, 2, 0})
	f.Add([]byte{65, 3, 0, 0, 65, 1, 64, 2, 1, 1})
	f.Add([]byte{100, 4, 90, 3, 20, 0, 0, 2, 50, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		b := func(i int) int {
			if i < len(data) {
				return int(data[i])
			}
			return 0
		}
		w := 1 + b(0)%100
		h := 1 + b(1)%8
		g := New(w, h)
		o := NewBool(w, h)
		// Each subsequent byte pair paints a horizontal span.
		for i := 2; i+1 < len(data); i += 2 {
			x := b(i) % (w + 2)
			y := b(i+1) % h
			span := 1 + b(i)%17
			occ := b(i+1)%4 != 0
			r := geom.Rect{X: x - 1, Y: y, W: span, H: 1 + b(i+1)%2}
			g.SetRect(r, occ)
			o.SetRect(r, occ)
		}
		for y := 0; y < h; y++ {
			words := g.RowWords(y)
			row := o.Row(y)
			for x := 0; x < w; x++ {
				got := words[x/64]&(1<<(uint(x)%64)) != 0
				if got != row[x] {
					t.Fatalf("%dx%d cell (%d,%d): words %v, oracle %v\n%s", w, h, x, y, got, row[x], g)
				}
			}
			if pad := uint(w) % 64; pad != 0 {
				if last := words[len(words)-1]; last&(^uint64(0)<<pad) != 0 {
					t.Fatalf("%dx%d row %d: padding bits set", w, h, y)
				}
			}
		}
		if g.PopCount() != o.CountOccupied() {
			t.Fatalf("%dx%d: PopCount %d, oracle %d", w, h, g.PopCount(), o.CountOccupied())
		}
		probe := geom.Rect{X: b(2) % w, Y: b(3) % h, W: 1 + b(4)%70, H: 1 + b(5)%4}
		if got, want := g.RectFree(probe), o.RectFree(probe); got != want {
			t.Fatalf("%dx%d: RectFree(%v) = %v, oracle %v\n%s", w, h, probe, got, want, g)
		}
	})
}
